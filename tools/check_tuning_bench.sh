#!/usr/bin/env bash
# CI gate over BENCH_tuning.json (ROADMAP item 5): every record of the
# current run must hold
#   warm_speedup    >= 2.0   (memoized re-tune at the fleet's fixed point;
#                             the speedup is algorithmic — rung scores come
#                             from the memo instead of refits — so the floor
#                             binds on any host, 1-core containers included)
#   winners_match   == true  (the warm re-tune reproduces the settled
#                             winners exactly — the determinism contract)
#   hold_on_steady  == true  (re-tuning on unchanged telemetry is a fixed
#                             point: no config churn past the hysteresis)
#   switch_on_regime == true (the permanent level shift demotes the
#                             periodic incumbent — the ISSUE's e2e scenario)
#
# Usage: check_tuning_bench.sh [BENCH_tuning.json]
set -u

FILE="${1:-BENCH_tuning.json}"
if [ ! -s "$FILE" ]; then
  echo "check_tuning_bench: $FILE missing or empty" >&2
  exit 1
fi

fail=0
lineno=0
while IFS= read -r line; do
  lineno=$((lineno + 1))
  [ -z "$line" ] && continue

  field() {
    printf '%s\n' "$line" | sed -n "s/.*\"$1\":\([^,}]*\).*/\1/p" | tr -d '"'
  }
  speedup=$(field warm_speedup)
  winners=$(field winners_match)
  regime=$(field switch_on_regime)
  steady=$(field hold_on_steady)

  ok=1
  if [ "$winners" != "true" ]; then
    echo "FAIL line $lineno: winners_match=$winners (warm re-tune diverged)" >&2
    ok=0
  fi
  if [ "$steady" != "true" ]; then
    echo "FAIL line $lineno: hold_on_steady=$steady (config churn on unchanged telemetry)" >&2
    ok=0
  fi
  if [ "$regime" != "true" ]; then
    echo "FAIL line $lineno: switch_on_regime=$regime (level shift did not demote the incumbent)" >&2
    ok=0
  fi
  if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 2.0) }'; then
    echo "FAIL line $lineno: warm_speedup $speedup < 2.0 (memo not serving re-tunes)" >&2
    ok=0
  fi

  if [ "$ok" -eq 1 ]; then
    echo "ok   line $lineno: warm_speedup $speedup, winners_match/hold/switch all true"
  else
    fail=1
  fi
done < "$FILE"

if [ "$fail" -ne 0 ]; then
  echo "check_tuning_bench: gate FAILED for $FILE" >&2
  exit 1
fi
echo "check_tuning_bench: all records pass"
