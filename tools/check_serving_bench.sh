#!/usr/bin/env bash
# CI gate over BENCH_serving.json (ROADMAP item 2): every record of the run
# must be clean (zero failed requests, zero client/server protocol errors),
# and the sharded serving path must actually pay off on the Zipf multi-pool
# shard sweep:
#   zipf/zipf-mixed, 16 shards: throughput >= 200000 req/s (the tentpole
#                               target for pipelined loopback reads)
#   16-shard vs 1-shard:        throughput ratio >= 3.0, and p99 no worse
#                               than 1.25x the 1-shard record
#   read-mostly (unsharded-era scenario): throughput >= 30000 req/s (the
#                               pre-shard baseline floor, ~50k historically)
#
# The floors only bind when the host can run server threads and clients in
# parallel (hw_threads >= 4). On a 1-core dev container every configuration
# timeslices through one core, shard count cannot change wall-clock
# throughput, and absolute numbers are ~10x below a CI runner's — so the
# gate degrades to "still serving": throughput >= 5000 req/s per record
# plus the zero-error checks. Same pattern as tools/check_parallel_bench.sh.
#
# Usage: check_serving_bench.sh [BENCH_serving.json]
set -u

FILE="${1:-BENCH_serving.json}"
if [ ! -s "$FILE" ]; then
  echo "check_serving_bench: $FILE missing or empty" >&2
  exit 1
fi

fail=0
lineno=0
# 1-shard / 16-shard zipf reference records for the sweep comparison.
zipf1_tput="" zipf1_p99=""
zipf16_tput="" zipf16_p99="" zipf16_line=0

while IFS= read -r line; do
  lineno=$((lineno + 1))
  [ -z "$line" ] && continue

  field() {
    printf '%s\n' "$line" | sed -n "s/.*\"$1\":\([^,}]*\).*/\1/p" | tr -d '"'
  }
  scenario=$(field scenario)
  [ -z "$scenario" ] && scenario="read-mostly"  # pre-field records
  shards=$(field shards)
  tput=$(field throughput_rps)
  p99=$(field p99_ms)
  failed=$(field requests_failed)
  cerr=$(field client_protocol_errors)
  serr=$(field server_protocol_errors)
  hw=$(field hw_threads)
  [ -z "$hw" ] && hw=4  # pre-field records came from multi-core runs

  if [ "$failed" != "0" ] || [ "$cerr" != "0" ] || \
     ! awk -v e="$serr" 'BEGIN { exit !(e == 0) }'; then
    echo "FAIL line $lineno: $scenario failed=$failed" \
         "protocol_errors=$cerr/$serr" >&2
    fail=1
    continue
  fi

  if [ "$hw" -ge 4 ]; then
    floor=0
    case "$scenario" in
      read-mostly) floor=30000 ;;
      zipf|zipf-mixed) [ "${shards:-0}" -ge 16 ] && floor=200000 ;;
    esac
  else
    floor=5000  # 1-core host: the server must still serve, that is all
  fi
  if ! awk -v t="$tput" -v f="$floor" 'BEGIN { exit !(t >= f) }'; then
    echo "FAIL line $lineno: $scenario shards=${shards:-?} throughput" \
         "$tput < floor $floor (hw_threads=$hw)" >&2
    fail=1
  else
    echo "ok   line $lineno: $scenario shards=${shards:-?} throughput" \
         "$tput >= $floor (hw_threads=$hw)"
  fi

  # Track the sweep endpoints (last record per shard count wins, multi-core
  # records only — a timesliced sweep measures the scheduler, not the
  # shards).
  if [ "$hw" -ge 4 ]; then
    case "$scenario" in
      zipf|zipf-mixed)
        if [ "${shards:-0}" = "1" ]; then
          zipf1_tput=$tput zipf1_p99=$p99
        elif [ "${shards:-0}" -ge 16 ]; then
          zipf16_tput=$tput zipf16_p99=$p99 zipf16_line=$lineno
        fi
        ;;
    esac
  fi
done < "$FILE"

if [ -n "$zipf1_tput" ] && [ -n "$zipf16_tput" ]; then
  if ! awk -v a="$zipf16_tput" -v b="$zipf1_tput" \
       'BEGIN { exit !(a >= 3.0 * b) }'; then
    echo "FAIL line $zipf16_line: 16-shard throughput $zipf16_tput <" \
         "3.0x the 1-shard record ($zipf1_tput)" >&2
    fail=1
  else
    echo "ok   shard sweep: 16-shard $zipf16_tput >= 3.0x 1-shard" \
         "$zipf1_tput"
  fi
  if ! awk -v a="$zipf16_p99" -v b="$zipf1_p99" \
       'BEGIN { exit !(a <= 1.25 * b) }'; then
    echo "FAIL line $zipf16_line: 16-shard p99 ${zipf16_p99}ms worse than" \
         "1.25x the 1-shard record (${zipf1_p99}ms)" >&2
    fail=1
  else
    echo "ok   shard sweep: 16-shard p99 ${zipf16_p99}ms <= 1.25x 1-shard" \
         "${zipf1_p99}ms"
  fi
fi

if [ "$fail" -ne 0 ]; then
  echo "check_serving_bench: gate FAILED for $FILE" >&2
  exit 1
fi
echo "check_serving_bench: all records pass"
