// ipool_cli: operator command line for the Intelligent Pooling library.
//
//   ipool_cli generate  --profile west-small|east-medium|...|spiky
//                       [--days 2] [--seed 7] --out demand.csv
//   ipool_cli recommend --demand demand.csv [--model ssa+] [--alpha 0.3]
//                       [--loss-alpha 0.9] [--bins 120] [--smooth-sf 0]
//                       [--threads 0] --out schedule.csv
//   ipool_cli evaluate  --demand demand.csv --schedule schedule.csv
//                       [--tau-bins 3]
//   ipool_cli simulate  --demand demand.csv --schedule schedule.csv
//                       [--latency 90] [--latency-cv 0.2] [--seed 1]
//   ipool_cli sweep     --demand demand.csv [--tau-bins 3] [--threads 0]
//   ipool_cli loop      --demand demand.csv | --profile east-medium
//                       [--days 2] [--seed 7] [--model ssa+]
//                       [--run-interval 1800] [--latency 90] [--threads 0]
//   ipool_cli serve     [--port 7070] [--threads 4] [--drain-timeout 5]
//                       [--profile east-medium | --demand demand.csv]
//                       [--days 2] [--seed 7] [--model ssa+] [--key NAME]
//                       [--max-seconds 0] [--max-inflight 64]
//
// `serve` hosts the control plane over loopback TCP (the ipool::net framed
// binary protocol): it fits a recommendation for the given profile/demand,
// publishes it in the document store under --key (default: the profile
// name), and answers GetRecommendation / PublishTelemetry / Health /
// Metrics until SIGINT/SIGTERM (or --max-seconds), then drains gracefully
// for --drain-timeout seconds. `--threads N` sizes the handler pool (0 =
// handle on the event loop).
//
// Unknown flags are rejected with an error naming the command's accepted
// flags — a typo must not silently fall back to a default.
//
// `--threads N` (recommend, sweep, loop; default 0 = serial) runs the
// command's independent work — deep-model training kernels, per-alpha'
// sweep solves — on an N-thread pool. Results are bit-identical to the
// serial run (the determinism contract of DESIGN.md).
//
// `recommend` fits on the whole input and emits the next `--bins` bins;
// `evaluate` scores a schedule with the analytical queueing model (§4.1);
// `simulate` replays the demand through the event-driven pool simulator;
// `sweep` prints the alpha' Pareto frontier of SAA-on-history;
// `loop` drives the full control plane (telemetry ingest -> periodic
// pipeline runs -> pooling worker -> simulator) end to end.
//
// Observability (recommend, simulate and loop): `--metrics-out FILE`
// writes Prometheus text exposition, `--trace-out FILE` writes one JSON
// span per line, `--obs-summary 1` prints a human-readable latency table.
// FILE may be "-" for stdout.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "core/recommendation_engine.h"
#include "exec/thread_pool.h"
#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/control_loop.h"
#include "service/document_store.h"
#include "service/monitoring.h"
#include "service/recommendation_io.h"
#include "service/telemetry_store.h"
#include "sim/pool_simulator.h"
#include "solver/saa_optimizer.h"
#include "tsdata/csv.h"
#include "workload/demand_generator.h"

namespace {

using namespace ipool;

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "ipool_cli: %s\n", message.c_str());
  std::exit(1);
}

template <typename T>
T DieOnError(Result<T> result, const char* what) {
  if (!result.ok()) {
    Die(std::string(what) + ": " + result.status().ToString());
  }
  return std::move(result).value();
}

// Every flag a command accepts; ParseFlags rejects anything else so a
// typo'd flag errors out instead of silently meaning its default.
const std::map<std::string, std::vector<std::string>>& CommandFlags() {
  static const std::map<std::string, std::vector<std::string>> kFlags = {
      {"generate", {"profile", "days", "seed", "out"}},
      {"recommend",
       {"demand", "model", "window", "horizon", "loss-alpha", "alpha",
        "tau-bins", "max-pool", "bins", "smooth-sf", "threads", "out",
        "metrics-out", "trace-out", "obs-summary"}},
      {"evaluate", {"demand", "schedule", "tau-bins"}},
      {"simulate",
       {"demand", "schedule", "latency", "latency-cv", "seed", "metrics-out",
        "trace-out", "obs-summary"}},
      {"sweep", {"demand", "tau-bins", "max-pool", "threads"}},
      {"loop",
       {"demand", "profile", "days", "seed", "model", "window", "horizon",
        "loss-alpha", "alpha", "tau-bins", "max-pool", "history-bins",
        "run-interval", "latency", "latency-cv", "threads", "metrics-out",
        "trace-out", "obs-summary"}},
      {"serve",
       {"port", "threads", "drain-timeout", "profile", "demand", "days",
        "seed", "model", "key", "max-seconds", "max-inflight", "window",
        "horizon", "loss-alpha", "alpha", "tau-bins", "max-pool", "bins"}},
      {"get", {"host", "port", "key", "timeout", "retries"}},
      {"scrape", {"host", "port", "timeout", "retries"}},
  };
  return kFlags;
}

// "--key value" pairs into a map; bare tokens and flags the command does
// not define are rejected.
std::map<std::string, std::string> ParseFlags(int argc, char** argv, int begin,
                                              const std::string& command) {
  const auto allowed_it = CommandFlags().find(command);
  if (allowed_it == CommandFlags().end()) Die("unknown command: " + command);
  const std::vector<std::string>& allowed = allowed_it->second;
  std::map<std::string, std::string> flags;
  for (int i = begin; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) Die("unexpected argument: " + key);
    std::string name = key.substr(2);
    if (std::find(allowed.begin(), allowed.end(), name) == allowed.end()) {
      Die("unknown flag --" + name + " for command '" + command +
          "' (accepted: --" + Join(allowed, ", --") + ")");
    }
    if (i + 1 >= argc) Die("flag needs a value: " + key);
    flags[std::move(name)] = argv[++i];
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

double NumFlag(const std::map<std::string, std::string>& flags,
               const std::string& key, double fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : std::atof(it->second.c_str());
}

std::string RequiredFlag(const std::map<std::string, std::string>& flags,
                         const std::string& key) {
  auto it = flags.find(key);
  if (it == flags.end()) Die("missing required flag --" + key);
  return it->second;
}

WorkloadConfig ProfileByName(const std::string& name, uint64_t seed) {
  if (name == "spiky") return SpikyRegionProfile(seed);
  const auto dash = name.find('-');
  if (dash != std::string::npos) {
    const std::string region_name = name.substr(0, dash);
    const std::string size_name = name.substr(dash + 1);
    Region region;
    if (region_name == "west") {
      region = Region::kWestUs2;
    } else if (region_name == "east") {
      region = Region::kEastUs2;
    } else {
      Die("unknown region in profile: " + name);
    }
    NodeSize size;
    if (size_name == "small") {
      size = NodeSize::kSmall;
    } else if (size_name == "medium") {
      size = NodeSize::kMedium;
    } else if (size_name == "large") {
      size = NodeSize::kLarge;
    } else {
      Die("unknown node size in profile: " + name);
    }
    return RegionNodeProfile(region, size, seed);
  }
  Die("unknown profile '" + name +
      "' (use west-small, east-medium, ..., or spiky)");
}

ModelKind ModelByName(const std::string& name) {
  if (name == "baseline") return ModelKind::kBaseline;
  if (name == "ssa") return ModelKind::kSsa;
  if (name == "ssa+") return ModelKind::kSsaPlus;
  if (name == "mwdn") return ModelKind::kMwdn;
  if (name == "tst") return ModelKind::kTst;
  if (name == "incpt") return ModelKind::kInceptionTime;
  Die("unknown model '" + name +
      "' (use baseline, ssa, ssa+, mwdn, tst, incpt)");
}

// --threads N: the command's shared thread pool, null (serial) by default.
std::unique_ptr<exec::ThreadPool> PoolFromFlags(
    const std::map<std::string, std::string>& flags) {
  const size_t n = static_cast<size_t>(NumFlag(flags, "threads", 0));
  return n > 0 ? std::make_unique<exec::ThreadPool>(n) : nullptr;
}

// Metrics registry + tracer pair owned by a command, plus flag-driven
// export: --metrics-out (Prometheus text), --trace-out (span JSONL),
// --obs-summary 1 (human-readable table). "-" writes to stdout.
struct ObsBundle {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;

  ObsContext Context() { return ObsContext{&registry, &tracer}; }
};

void WriteTextTo(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return;
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) Die("cannot open for writing: " + path);
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

void ExportObs(const std::map<std::string, std::string>& flags,
               ObsBundle& obs) {
  if (auto it = flags.find("metrics-out"); it != flags.end()) {
    WriteTextTo(it->second, obs::PrometheusText(obs.registry));
  }
  if (auto it = flags.find("trace-out"); it != flags.end()) {
    WriteTextTo(it->second, obs::SpansJsonl(obs.tracer));
  }
  if (NumFlag(flags, "obs-summary", 0) != 0) {
    std::fputs(obs::HumanSummary(obs.registry, &obs.tracer).c_str(), stdout);
  }
}

// Scatters binned demand counts into arrival-event times, uniformly within
// each bin (deterministic given the seed), re-based so the first bin is t=0.
std::vector<double> ScatterEvents(const TimeSeries& demand, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> events;
  for (size_t i = 0; i < demand.size(); ++i) {
    const int64_t count = static_cast<int64_t>(std::llround(demand.value(i)));
    for (int64_t k = 0; k < count; ++k) {
      events.push_back(demand.TimeAt(i) + rng.NextDouble() * demand.interval());
    }
  }
  std::sort(events.begin(), events.end());
  const double base = demand.start();
  for (double& t : events) t -= base;
  return events;
}

void PrintMetrics(const PoolMetrics& metrics) {
  CogsModel cogs;
  std::printf("requests            %ld\n", metrics.total_requests);
  std::printf("pool hit rate       %.2f%%\n", 100.0 * metrics.hit_rate);
  std::printf("avg wait            %.2f s (capped at on-demand latency)\n",
              metrics.avg_wait_seconds_capped);
  std::printf("avg pool size       %.2f (max %.0f)\n", metrics.avg_pool_size,
              metrics.max_pool_size);
  std::printf("idle cluster time   %s\n",
              HumanDuration(metrics.idle_cluster_seconds).c_str());
  std::printf("idle COGS           $%.2f\n",
              cogs.IdleDollars(metrics.idle_cluster_seconds));
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  WorkloadConfig config = ProfileByName(
      FlagOr(flags, "profile", "east-medium"),
      static_cast<uint64_t>(NumFlag(flags, "seed", 7)));
  config.duration_days = NumFlag(flags, "days", 2.0);
  auto generator = DieOnError(DemandGenerator::Create(config), "generate");
  TimeSeries series = generator.GenerateBinned();
  const std::string out = RequiredFlag(flags, "out");
  if (Status s = SaveTimeSeriesCsv(series, out); !s.ok()) Die(s.ToString());
  std::printf("wrote %zu bins (%.0f requests) to %s\n", series.size(),
              series.Sum(), out.c_str());
  return 0;
}

int CmdRecommend(const std::map<std::string, std::string>& flags) {
  TimeSeries demand = DieOnError(
      LoadTimeSeriesCsv(RequiredFlag(flags, "demand")), "load demand");
  PipelineConfig config;
  config.model = ModelByName(FlagOr(flags, "model", "ssa+"));
  config.forecast.window = static_cast<size_t>(NumFlag(flags, "window", 96));
  config.forecast.horizon = static_cast<size_t>(NumFlag(flags, "horizon", 48));
  config.forecast.alpha_prime = NumFlag(flags, "loss-alpha", 0.9);
  config.saa.alpha_prime = NumFlag(flags, "alpha", 0.3);
  config.saa.pool.tau_bins = static_cast<size_t>(NumFlag(flags, "tau-bins", 3));
  config.saa.pool.max_pool_size =
      static_cast<int64_t>(NumFlag(flags, "max-pool", 500));
  config.recommendation_bins = static_cast<size_t>(NumFlag(flags, "bins", 120));
  config.smoothing_factor_bins =
      static_cast<size_t>(NumFlag(flags, "smooth-sf", 0));
  ObsBundle obs;
  config.obs = obs.Context();
  const auto thread_pool = PoolFromFlags(flags);
  config.forecast.exec.pool = thread_pool.get();
  auto engine = DieOnError(RecommendationEngine::Create(config), "config");
  auto rec = DieOnError(engine.Run(demand), "pipeline");
  if (thread_pool != nullptr) thread_pool->PublishTo(&obs.registry);
  ExportObs(flags, obs);

  StoredSchedule stored;
  stored.start_time =
      demand.TimeAt(demand.size() - 1) + demand.interval();
  stored.interval_seconds = demand.interval();
  stored.pool_size_per_bin = rec.pool_size_per_bin;
  const std::string out = RequiredFlag(flags, "out");
  if (Status s = SaveScheduleCsv(stored, out); !s.ok()) Die(s.ToString());
  double mean = 0;
  for (int64_t n : rec.pool_size_per_bin) mean += static_cast<double>(n);
  std::printf("model %s: wrote %zu-bin schedule (avg pool %.1f) to %s\n",
              rec.model_name.c_str(), rec.pool_size_per_bin.size(),
              mean / static_cast<double>(rec.pool_size_per_bin.size()),
              out.c_str());
  return 0;
}

int CmdEvaluate(const std::map<std::string, std::string>& flags) {
  TimeSeries demand = DieOnError(
      LoadTimeSeriesCsv(RequiredFlag(flags, "demand")), "load demand");
  StoredSchedule schedule = DieOnError(
      LoadScheduleCsv(RequiredFlag(flags, "schedule")), "load schedule");
  if (schedule.pool_size_per_bin.size() != demand.size()) {
    Die(StrFormat("schedule has %zu bins but demand has %zu",
                  schedule.pool_size_per_bin.size(), demand.size()));
  }
  PoolModelConfig pool;
  pool.tau_bins = static_cast<size_t>(NumFlag(flags, "tau-bins", 3));
  pool.max_pool_size = 1'000'000;  // the schedule is taken as-is
  auto metrics = DieOnError(
      EvaluateSchedule(demand, schedule.pool_size_per_bin, pool), "evaluate");
  PrintMetrics(metrics);
  return 0;
}

int CmdSimulate(const std::map<std::string, std::string>& flags) {
  TimeSeries demand = DieOnError(
      LoadTimeSeriesCsv(RequiredFlag(flags, "demand")), "load demand");
  StoredSchedule schedule = DieOnError(
      LoadScheduleCsv(RequiredFlag(flags, "schedule")), "load schedule");
  if (schedule.pool_size_per_bin.size() != demand.size()) {
    Die("schedule/demand bin counts differ");
  }
  // Scatter the binned counts into arrival events (deterministic seed).
  std::vector<double> events =
      ScatterEvents(demand, static_cast<uint64_t>(NumFlag(flags, "seed", 1)));

  SimConfig config;
  config.creation_latency_mean_seconds = NumFlag(flags, "latency", 90.0);
  config.creation_latency_cv = NumFlag(flags, "latency-cv", 0.2);
  config.seed = static_cast<uint64_t>(NumFlag(flags, "seed", 1));
  ObsBundle obs;
  config.obs = obs.Context();
  auto simulator = DieOnError(PoolSimulator::Create(config), "sim config");
  const double horizon =
      demand.interval() * static_cast<double>(demand.size());
  auto result = DieOnError(
      simulator.Run(events, schedule.pool_size_per_bin, demand.interval(),
                    horizon),
      "simulate");
  ExportObs(flags, obs);
  CogsModel cogs;
  std::printf("requests            %ld\n", result.total_requests);
  std::printf("pool hit rate       %.2f%%\n", 100.0 * result.hit_rate);
  std::printf("avg / p99 wait      %.2f / %.1f s\n", result.avg_wait_seconds,
              result.p99_wait_seconds);
  std::printf("clusters created    %ld (+%ld on-demand, %ld cancelled)\n",
              result.clusters_created, result.on_demand_created,
              result.hydrations_cancelled);
  std::printf("idle cluster time   %s ($%.2f)\n",
              HumanDuration(result.idle_cluster_seconds).c_str(),
              cogs.IdleDollars(result.idle_cluster_seconds));
  return 0;
}

int CmdSweep(const std::map<std::string, std::string>& flags) {
  TimeSeries demand = DieOnError(
      LoadTimeSeriesCsv(RequiredFlag(flags, "demand")), "load demand");
  PoolModelConfig pool;
  pool.tau_bins = static_cast<size_t>(NumFlag(flags, "tau-bins", 3));
  pool.max_pool_size = static_cast<int64_t>(NumFlag(flags, "max-pool", 500));
  const std::vector<double> alphas = {0.95, 0.8, 0.6, 0.4, 0.2,
                                      0.1,  0.05, 0.02, 0.005};
  const auto thread_pool = PoolFromFlags(flags);
  auto points = DieOnError(
      SweepPareto(demand, demand, pool, alphas, {}, {thread_pool.get()}),
      "sweep");
  CogsModel cogs;
  std::printf("%8s %14s %12s %10s %14s\n", "alpha'", "avg wait(s)",
              "hit rate", "avg pool", "idle $");
  for (const ParetoPoint& p : points) {
    std::printf("%8.3f %14.2f %11.1f%% %10.1f %14.2f\n", p.alpha_prime,
                p.metrics.avg_wait_seconds_capped, 100.0 * p.metrics.hit_rate,
                p.metrics.avg_pool_size,
                cogs.IdleDollars(p.metrics.idle_cluster_seconds));
  }
  return 0;
}

int CmdLoop(const std::map<std::string, std::string>& flags) {
  const uint64_t seed = static_cast<uint64_t>(NumFlag(flags, "seed", 7));
  TimeSeries demand = [&] {
    if (flags.count("demand") != 0) {
      return DieOnError(LoadTimeSeriesCsv(flags.at("demand")), "load demand");
    }
    WorkloadConfig workload =
        ProfileByName(FlagOr(flags, "profile", "east-medium"), seed);
    workload.duration_days = NumFlag(flags, "days", 1.0);
    auto generator = DieOnError(DemandGenerator::Create(workload), "generate");
    return generator.GenerateBinned();
  }();
  std::vector<double> events = ScatterEvents(demand, seed);
  // Re-base the demand trace itself so worker virtual time matches events.
  demand = TimeSeries(0.0, demand.interval(),
                      std::vector<double>(demand.values()));

  ObsBundle obs;
  PipelineConfig pipeline;
  pipeline.obs = obs.Context();
  pipeline.model = ModelByName(FlagOr(flags, "model", "ssa+"));
  pipeline.forecast.window = static_cast<size_t>(NumFlag(flags, "window", 96));
  pipeline.forecast.horizon =
      static_cast<size_t>(NumFlag(flags, "horizon", 48));
  pipeline.forecast.alpha_prime = NumFlag(flags, "loss-alpha", 0.9);
  pipeline.saa.alpha_prime = NumFlag(flags, "alpha", 0.3);
  pipeline.saa.pool.tau_bins =
      static_cast<size_t>(NumFlag(flags, "tau-bins", 3));
  pipeline.saa.pool.max_pool_size =
      static_cast<int64_t>(NumFlag(flags, "max-pool", 500));
  const auto thread_pool = PoolFromFlags(flags);
  pipeline.forecast.exec.pool = thread_pool.get();
  auto engine = DieOnError(RecommendationEngine::Create(pipeline), "config");

  ControlLoopConfig config;
  config.run_interval_seconds = NumFlag(flags, "run-interval", 1800.0);
  config.worker.interval_seconds = demand.interval();
  config.worker.history_bins = static_cast<size_t>(
      NumFlag(flags, "history-bins",
              static_cast<double>(std::max<size_t>(8, demand.size() / 2))));
  config.sim.creation_latency_mean_seconds = NumFlag(flags, "latency", 90.0);
  config.sim.creation_latency_cv = NumFlag(flags, "latency-cv", 0.2);
  config.sim.seed = seed;
  config.obs = obs.Context();
  auto result = DieOnError(
      ControlLoop::Run(engine, config, demand, events), "control loop");
  if (thread_pool != nullptr) thread_pool->PublishTo(&obs.registry);

  // Bridge the §7.5 dashboard into the same registry before exporting.
  const double horizon =
      demand.interval() * static_cast<double>(demand.size());
  auto monitor =
      DieOnError(Monitor::Create(AlertConfig{}, CogsModel{},
                                 config.pooling.default_pool_size),
                 "monitor");
  const size_t successes = result.pipeline_runs - result.pipeline_failures -
                           result.guardrail_rejections;
  for (size_t i = 0; i < result.pipeline_failures; ++i) {
    monitor.RecordPipelineRun(horizon, PipelineStatus::kFailed);
  }
  for (size_t i = 0; i < result.guardrail_rejections; ++i) {
    monitor.RecordPipelineRun(horizon, PipelineStatus::kGuardrailRejected);
  }
  for (size_t i = 0; i < successes; ++i) {
    monitor.RecordPipelineRun(horizon, PipelineStatus::kSucceeded);
  }
  monitor.RecordClusterIdle(horizon, result.sim.idle_cluster_seconds);
  if (!result.applied_schedule.empty()) {
    monitor.RecordRecommendation(
        horizon, static_cast<double>(result.applied_schedule.back()));
  }
  monitor.PublishTo(&obs.registry, horizon);

  CogsModel cogs;
  std::printf("pipeline runs       %zu (%zu failed, %zu guardrail-rejected)\n",
              result.pipeline_runs, result.pipeline_failures,
              result.guardrail_rejections);
  std::printf("fallback bins       %zu\n", result.fallback_bins);
  std::printf("requests            %ld\n", result.sim.total_requests);
  std::printf("pool hit rate       %.2f%%\n", 100.0 * result.sim.hit_rate);
  std::printf("avg / p99 wait      %.2f / %.1f s\n",
              result.sim.avg_wait_seconds, result.sim.p99_wait_seconds);
  std::printf("idle cluster time   %s ($%.2f)\n",
              HumanDuration(result.sim.idle_cluster_seconds).c_str(),
              cogs.IdleDollars(result.sim.idle_cluster_seconds));
  ExportObs(flags, obs);
  return 0;
}

volatile std::sig_atomic_t g_serve_stop = 0;

void HandleStopSignal(int) { g_serve_stop = 1; }

int CmdServe(const std::map<std::string, std::string>& flags) {
  const uint64_t seed = static_cast<uint64_t>(NumFlag(flags, "seed", 7));
  const std::string profile = FlagOr(flags, "profile", "east-medium");

  // Fit a recommendation for the profile (or a supplied trace) and publish
  // it as the document GetRecommendation serves.
  TimeSeries demand = [&] {
    if (flags.count("demand") != 0) {
      return DieOnError(LoadTimeSeriesCsv(flags.at("demand")), "load demand");
    }
    WorkloadConfig workload = ProfileByName(profile, seed);
    workload.duration_days = NumFlag(flags, "days", 1.0);
    auto generator = DieOnError(DemandGenerator::Create(workload), "generate");
    return generator.GenerateBinned();
  }();
  PipelineConfig pipeline;
  pipeline.model = ModelByName(FlagOr(flags, "model", "ssa+"));
  pipeline.forecast.window = static_cast<size_t>(NumFlag(flags, "window", 96));
  pipeline.forecast.horizon =
      static_cast<size_t>(NumFlag(flags, "horizon", 48));
  pipeline.forecast.alpha_prime = NumFlag(flags, "loss-alpha", 0.9);
  pipeline.saa.alpha_prime = NumFlag(flags, "alpha", 0.3);
  pipeline.saa.pool.tau_bins =
      static_cast<size_t>(NumFlag(flags, "tau-bins", 3));
  pipeline.saa.pool.max_pool_size =
      static_cast<int64_t>(NumFlag(flags, "max-pool", 500));
  pipeline.recommendation_bins =
      static_cast<size_t>(NumFlag(flags, "bins", 120));
  obs::MetricsRegistry registry;
  pipeline.obs = ObsContext{&registry, nullptr};
  auto engine = DieOnError(RecommendationEngine::Create(pipeline), "config");
  auto rec = DieOnError(engine.Run(demand), "pipeline");

  StoredRecommendation stored;
  stored.recommendation = rec;
  stored.start_time = demand.TimeAt(demand.size() - 1) + demand.interval();
  stored.interval_seconds = demand.interval();
  const std::string key = FlagOr(flags, "key", profile);
  DocumentStore documents;
  documents.Put(key, SerializeRecommendation(stored), stored.start_time);
  TelemetryStore telemetry;

  const size_t threads = static_cast<size_t>(NumFlag(flags, "threads", 4));
  std::unique_ptr<exec::ThreadPool> pool =
      threads > 0 ? std::make_unique<exec::ThreadPool>(threads) : nullptr;

  net::Router router(
      net::RouterConfig{&documents, &telemetry, &registry});
  net::ServerConfig server_config;
  server_config.port = static_cast<uint16_t>(NumFlag(flags, "port", 7070));
  server_config.pool = pool.get();
  server_config.max_inflight_per_conn =
      static_cast<size_t>(NumFlag(flags, "max-inflight", 64));
  server_config.metrics = &registry;
  const double drain_timeout = NumFlag(flags, "drain-timeout", 5.0);
  server_config.default_drain_timeout_seconds = drain_timeout;
  auto server = DieOnError(
      net::Server::Start(server_config,
                         [&router](const net::Frame& request) {
                           return router.Handle(request);
                         }),
      "serve");

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::printf("serving %s (document '%s', %zu bins) on 127.0.0.1:%u\n",
              profile.c_str(), key.c_str(), rec.pool_size_per_bin.size(),
              server->port());
  std::printf("methods: GetRecommendation PublishTelemetry Health Metrics; "
              "%zu handler threads; ctrl-c to drain\n",
              threads);
  std::fflush(stdout);

  const double max_seconds = NumFlag(flags, "max-seconds", 0.0);
  const auto started = std::chrono::steady_clock::now();
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (max_seconds > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
                .count() >= max_seconds) {
      break;
    }
  }
  std::printf("draining (up to %.1fs)...\n", drain_timeout);
  std::fflush(stdout);
  server->Shutdown(drain_timeout);
  if (pool != nullptr) pool->PublishTo(&registry);
  std::printf(
      "served %llu requests (%llu shed, %llu protocol errors) on %llu "
      "connections\n",
      static_cast<unsigned long long>(server->requests_handled()),
      static_cast<unsigned long long>(server->requests_shed()),
      static_cast<unsigned long long>(server->protocol_errors()),
      static_cast<unsigned long long>(server->connections_accepted()));
  return 0;
}

net::ClientConfig ClientFromFlags(
    const std::map<std::string, std::string>& flags) {
  net::ClientConfig config;
  config.host = FlagOr(flags, "host", "127.0.0.1");
  config.port = static_cast<uint16_t>(NumFlag(flags, "port", 7070));
  config.request_timeout_seconds = NumFlag(flags, "timeout", 2.0);
  config.max_attempts = static_cast<int>(NumFlag(flags, "retries", 3)) + 1;
  return config;
}

int CmdGet(const std::map<std::string, std::string>& flags) {
  net::Client client(ClientFromFlags(flags));
  const std::string key = FlagOr(flags, "key", "east-medium");
  auto document = client.GetRecommendation(key);
  if (!document.ok()) Die("get: " + document.status().ToString());
  auto stored = DieOnError(ParseRecommendation(*document), "parse");
  const auto& schedule = stored.recommendation.pool_size_per_bin;
  double mean = 0;
  for (int64_t n : schedule) mean += static_cast<double>(n);
  std::printf("document '%s': model %s, %zu bins from t=%.0f (avg pool %.1f, "
              "now->target %ld)\n",
              key.c_str(), stored.recommendation.model_name.c_str(),
              schedule.size(), stored.start_time,
              mean / static_cast<double>(schedule.size()),
              static_cast<long>(stored.TargetAt(stored.start_time)));
  return 0;
}

int CmdScrape(const std::map<std::string, std::string>& flags) {
  net::Client client(ClientFromFlags(flags));
  auto text = client.ScrapeMetrics();
  if (!text.ok()) Die("scrape: " + text.status().ToString());
  std::fwrite(text->data(), 1, text->size(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: ipool_cli <generate|recommend|evaluate|simulate|"
                 "sweep|loop|serve|get|scrape> [--flag value ...]\n"
                 "  serve:  --port 7070 --threads 4 --drain-timeout 5\n"
                 "          (plus --profile/--demand/--model/--key/"
                 "--max-seconds)\n"
                 "  get:    --port 7070 [--host 127.0.0.1] --key east-medium\n"
                 "  scrape: --port 7070 [--host 127.0.0.1]\n");
    return 1;
  }
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2, command);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "recommend") return CmdRecommend(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "simulate") return CmdSimulate(flags);
  if (command == "sweep") return CmdSweep(flags);
  if (command == "loop") return CmdLoop(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "get") return CmdGet(flags);
  if (command == "scrape") return CmdScrape(flags);
  Die("unknown command: " + command);
}
