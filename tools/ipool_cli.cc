// ipool_cli: operator command line for the Intelligent Pooling library.
//
//   ipool_cli generate  --profile west-small|east-medium|...|spiky
//                       [--days 2] [--seed 7] --out demand.csv
//   ipool_cli recommend --demand demand.csv [--model ssa+] [--alpha 0.3]
//                       [--loss-alpha 0.9] [--bins 120] [--smooth-sf 0]
//                       [--threads 0] --out schedule.csv
//   ipool_cli evaluate  --demand demand.csv --schedule schedule.csv
//                       [--tau-bins 3]
//   ipool_cli simulate  --demand demand.csv --schedule schedule.csv
//                       [--latency 90] [--latency-cv 0.2] [--seed 1]
//   ipool_cli sweep     --demand demand.csv [--tau-bins 3] [--threads 0]
//   ipool_cli loop      --demand demand.csv | --profile east-medium
//                       [--days 2] [--seed 7] [--model ssa+]
//                       [--run-interval 1800] [--latency 90] [--threads 0]
//
// `--threads N` (recommend, sweep, loop; default 0 = serial) runs the
// command's independent work — deep-model training kernels, per-alpha'
// sweep solves — on an N-thread pool. Results are bit-identical to the
// serial run (the determinism contract of DESIGN.md).
//
// `recommend` fits on the whole input and emits the next `--bins` bins;
// `evaluate` scores a schedule with the analytical queueing model (§4.1);
// `simulate` replays the demand through the event-driven pool simulator;
// `sweep` prints the alpha' Pareto frontier of SAA-on-history;
// `loop` drives the full control plane (telemetry ingest -> periodic
// pipeline runs -> pooling worker -> simulator) end to end.
//
// Observability (recommend, simulate and loop): `--metrics-out FILE`
// writes Prometheus text exposition, `--trace-out FILE` writes one JSON
// span per line, `--obs-summary 1` prints a human-readable latency table.
// FILE may be "-" for stdout.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "core/recommendation_engine.h"
#include "exec/thread_pool.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/control_loop.h"
#include "service/monitoring.h"
#include "sim/pool_simulator.h"
#include "solver/saa_optimizer.h"
#include "tsdata/csv.h"
#include "workload/demand_generator.h"

namespace {

using namespace ipool;

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "ipool_cli: %s\n", message.c_str());
  std::exit(1);
}

template <typename T>
T DieOnError(Result<T> result, const char* what) {
  if (!result.ok()) {
    Die(std::string(what) + ": " + result.status().ToString());
  }
  return std::move(result).value();
}

// "--key value" pairs into a map; bare tokens are rejected.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int begin) {
  std::map<std::string, std::string> flags;
  for (int i = begin; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) Die("unexpected argument: " + key);
    if (i + 1 >= argc) Die("flag needs a value: " + key);
    flags[key.substr(2)] = argv[++i];
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

double NumFlag(const std::map<std::string, std::string>& flags,
               const std::string& key, double fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : std::atof(it->second.c_str());
}

std::string RequiredFlag(const std::map<std::string, std::string>& flags,
                         const std::string& key) {
  auto it = flags.find(key);
  if (it == flags.end()) Die("missing required flag --" + key);
  return it->second;
}

WorkloadConfig ProfileByName(const std::string& name, uint64_t seed) {
  if (name == "spiky") return SpikyRegionProfile(seed);
  const auto dash = name.find('-');
  if (dash != std::string::npos) {
    const std::string region_name = name.substr(0, dash);
    const std::string size_name = name.substr(dash + 1);
    Region region;
    if (region_name == "west") {
      region = Region::kWestUs2;
    } else if (region_name == "east") {
      region = Region::kEastUs2;
    } else {
      Die("unknown region in profile: " + name);
    }
    NodeSize size;
    if (size_name == "small") {
      size = NodeSize::kSmall;
    } else if (size_name == "medium") {
      size = NodeSize::kMedium;
    } else if (size_name == "large") {
      size = NodeSize::kLarge;
    } else {
      Die("unknown node size in profile: " + name);
    }
    return RegionNodeProfile(region, size, seed);
  }
  Die("unknown profile '" + name +
      "' (use west-small, east-medium, ..., or spiky)");
}

ModelKind ModelByName(const std::string& name) {
  if (name == "baseline") return ModelKind::kBaseline;
  if (name == "ssa") return ModelKind::kSsa;
  if (name == "ssa+") return ModelKind::kSsaPlus;
  if (name == "mwdn") return ModelKind::kMwdn;
  if (name == "tst") return ModelKind::kTst;
  if (name == "incpt") return ModelKind::kInceptionTime;
  Die("unknown model '" + name +
      "' (use baseline, ssa, ssa+, mwdn, tst, incpt)");
}

// --threads N: the command's shared thread pool, null (serial) by default.
std::unique_ptr<exec::ThreadPool> PoolFromFlags(
    const std::map<std::string, std::string>& flags) {
  const size_t n = static_cast<size_t>(NumFlag(flags, "threads", 0));
  return n > 0 ? std::make_unique<exec::ThreadPool>(n) : nullptr;
}

// Metrics registry + tracer pair owned by a command, plus flag-driven
// export: --metrics-out (Prometheus text), --trace-out (span JSONL),
// --obs-summary 1 (human-readable table). "-" writes to stdout.
struct ObsBundle {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;

  ObsContext Context() { return ObsContext{&registry, &tracer}; }
};

void WriteTextTo(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return;
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) Die("cannot open for writing: " + path);
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

void ExportObs(const std::map<std::string, std::string>& flags,
               ObsBundle& obs) {
  if (auto it = flags.find("metrics-out"); it != flags.end()) {
    WriteTextTo(it->second, obs::PrometheusText(obs.registry));
  }
  if (auto it = flags.find("trace-out"); it != flags.end()) {
    WriteTextTo(it->second, obs::SpansJsonl(obs.tracer));
  }
  if (NumFlag(flags, "obs-summary", 0) != 0) {
    std::fputs(obs::HumanSummary(obs.registry, &obs.tracer).c_str(), stdout);
  }
}

// Scatters binned demand counts into arrival-event times, uniformly within
// each bin (deterministic given the seed), re-based so the first bin is t=0.
std::vector<double> ScatterEvents(const TimeSeries& demand, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> events;
  for (size_t i = 0; i < demand.size(); ++i) {
    const int64_t count = static_cast<int64_t>(std::llround(demand.value(i)));
    for (int64_t k = 0; k < count; ++k) {
      events.push_back(demand.TimeAt(i) + rng.NextDouble() * demand.interval());
    }
  }
  std::sort(events.begin(), events.end());
  const double base = demand.start();
  for (double& t : events) t -= base;
  return events;
}

void PrintMetrics(const PoolMetrics& metrics) {
  CogsModel cogs;
  std::printf("requests            %ld\n", metrics.total_requests);
  std::printf("pool hit rate       %.2f%%\n", 100.0 * metrics.hit_rate);
  std::printf("avg wait            %.2f s (capped at on-demand latency)\n",
              metrics.avg_wait_seconds_capped);
  std::printf("avg pool size       %.2f (max %.0f)\n", metrics.avg_pool_size,
              metrics.max_pool_size);
  std::printf("idle cluster time   %s\n",
              HumanDuration(metrics.idle_cluster_seconds).c_str());
  std::printf("idle COGS           $%.2f\n",
              cogs.IdleDollars(metrics.idle_cluster_seconds));
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  WorkloadConfig config = ProfileByName(
      FlagOr(flags, "profile", "east-medium"),
      static_cast<uint64_t>(NumFlag(flags, "seed", 7)));
  config.duration_days = NumFlag(flags, "days", 2.0);
  auto generator = DieOnError(DemandGenerator::Create(config), "generate");
  TimeSeries series = generator.GenerateBinned();
  const std::string out = RequiredFlag(flags, "out");
  if (Status s = SaveTimeSeriesCsv(series, out); !s.ok()) Die(s.ToString());
  std::printf("wrote %zu bins (%.0f requests) to %s\n", series.size(),
              series.Sum(), out.c_str());
  return 0;
}

int CmdRecommend(const std::map<std::string, std::string>& flags) {
  TimeSeries demand = DieOnError(
      LoadTimeSeriesCsv(RequiredFlag(flags, "demand")), "load demand");
  PipelineConfig config;
  config.model = ModelByName(FlagOr(flags, "model", "ssa+"));
  config.forecast.window = static_cast<size_t>(NumFlag(flags, "window", 96));
  config.forecast.horizon = static_cast<size_t>(NumFlag(flags, "horizon", 48));
  config.forecast.alpha_prime = NumFlag(flags, "loss-alpha", 0.9);
  config.saa.alpha_prime = NumFlag(flags, "alpha", 0.3);
  config.saa.pool.tau_bins = static_cast<size_t>(NumFlag(flags, "tau-bins", 3));
  config.saa.pool.max_pool_size =
      static_cast<int64_t>(NumFlag(flags, "max-pool", 500));
  config.recommendation_bins = static_cast<size_t>(NumFlag(flags, "bins", 120));
  config.smoothing_factor_bins =
      static_cast<size_t>(NumFlag(flags, "smooth-sf", 0));
  ObsBundle obs;
  config.obs = obs.Context();
  const auto thread_pool = PoolFromFlags(flags);
  config.forecast.exec.pool = thread_pool.get();
  auto engine = DieOnError(RecommendationEngine::Create(config), "config");
  auto rec = DieOnError(engine.Run(demand), "pipeline");
  if (thread_pool != nullptr) thread_pool->PublishTo(&obs.registry);
  ExportObs(flags, obs);

  StoredSchedule stored;
  stored.start_time =
      demand.TimeAt(demand.size() - 1) + demand.interval();
  stored.interval_seconds = demand.interval();
  stored.pool_size_per_bin = rec.pool_size_per_bin;
  const std::string out = RequiredFlag(flags, "out");
  if (Status s = SaveScheduleCsv(stored, out); !s.ok()) Die(s.ToString());
  double mean = 0;
  for (int64_t n : rec.pool_size_per_bin) mean += static_cast<double>(n);
  std::printf("model %s: wrote %zu-bin schedule (avg pool %.1f) to %s\n",
              rec.model_name.c_str(), rec.pool_size_per_bin.size(),
              mean / static_cast<double>(rec.pool_size_per_bin.size()),
              out.c_str());
  return 0;
}

int CmdEvaluate(const std::map<std::string, std::string>& flags) {
  TimeSeries demand = DieOnError(
      LoadTimeSeriesCsv(RequiredFlag(flags, "demand")), "load demand");
  StoredSchedule schedule = DieOnError(
      LoadScheduleCsv(RequiredFlag(flags, "schedule")), "load schedule");
  if (schedule.pool_size_per_bin.size() != demand.size()) {
    Die(StrFormat("schedule has %zu bins but demand has %zu",
                  schedule.pool_size_per_bin.size(), demand.size()));
  }
  PoolModelConfig pool;
  pool.tau_bins = static_cast<size_t>(NumFlag(flags, "tau-bins", 3));
  pool.max_pool_size = 1'000'000;  // the schedule is taken as-is
  auto metrics = DieOnError(
      EvaluateSchedule(demand, schedule.pool_size_per_bin, pool), "evaluate");
  PrintMetrics(metrics);
  return 0;
}

int CmdSimulate(const std::map<std::string, std::string>& flags) {
  TimeSeries demand = DieOnError(
      LoadTimeSeriesCsv(RequiredFlag(flags, "demand")), "load demand");
  StoredSchedule schedule = DieOnError(
      LoadScheduleCsv(RequiredFlag(flags, "schedule")), "load schedule");
  if (schedule.pool_size_per_bin.size() != demand.size()) {
    Die("schedule/demand bin counts differ");
  }
  // Scatter the binned counts into arrival events (deterministic seed).
  std::vector<double> events =
      ScatterEvents(demand, static_cast<uint64_t>(NumFlag(flags, "seed", 1)));

  SimConfig config;
  config.creation_latency_mean_seconds = NumFlag(flags, "latency", 90.0);
  config.creation_latency_cv = NumFlag(flags, "latency-cv", 0.2);
  config.seed = static_cast<uint64_t>(NumFlag(flags, "seed", 1));
  ObsBundle obs;
  config.obs = obs.Context();
  auto simulator = DieOnError(PoolSimulator::Create(config), "sim config");
  const double horizon =
      demand.interval() * static_cast<double>(demand.size());
  auto result = DieOnError(
      simulator.Run(events, schedule.pool_size_per_bin, demand.interval(),
                    horizon),
      "simulate");
  ExportObs(flags, obs);
  CogsModel cogs;
  std::printf("requests            %ld\n", result.total_requests);
  std::printf("pool hit rate       %.2f%%\n", 100.0 * result.hit_rate);
  std::printf("avg / p99 wait      %.2f / %.1f s\n", result.avg_wait_seconds,
              result.p99_wait_seconds);
  std::printf("clusters created    %ld (+%ld on-demand, %ld cancelled)\n",
              result.clusters_created, result.on_demand_created,
              result.hydrations_cancelled);
  std::printf("idle cluster time   %s ($%.2f)\n",
              HumanDuration(result.idle_cluster_seconds).c_str(),
              cogs.IdleDollars(result.idle_cluster_seconds));
  return 0;
}

int CmdSweep(const std::map<std::string, std::string>& flags) {
  TimeSeries demand = DieOnError(
      LoadTimeSeriesCsv(RequiredFlag(flags, "demand")), "load demand");
  PoolModelConfig pool;
  pool.tau_bins = static_cast<size_t>(NumFlag(flags, "tau-bins", 3));
  pool.max_pool_size = static_cast<int64_t>(NumFlag(flags, "max-pool", 500));
  const std::vector<double> alphas = {0.95, 0.8, 0.6, 0.4, 0.2,
                                      0.1,  0.05, 0.02, 0.005};
  const auto thread_pool = PoolFromFlags(flags);
  auto points = DieOnError(
      SweepPareto(demand, demand, pool, alphas, {}, {thread_pool.get()}),
      "sweep");
  CogsModel cogs;
  std::printf("%8s %14s %12s %10s %14s\n", "alpha'", "avg wait(s)",
              "hit rate", "avg pool", "idle $");
  for (const ParetoPoint& p : points) {
    std::printf("%8.3f %14.2f %11.1f%% %10.1f %14.2f\n", p.alpha_prime,
                p.metrics.avg_wait_seconds_capped, 100.0 * p.metrics.hit_rate,
                p.metrics.avg_pool_size,
                cogs.IdleDollars(p.metrics.idle_cluster_seconds));
  }
  return 0;
}

int CmdLoop(const std::map<std::string, std::string>& flags) {
  const uint64_t seed = static_cast<uint64_t>(NumFlag(flags, "seed", 7));
  TimeSeries demand = [&] {
    if (flags.count("demand") != 0) {
      return DieOnError(LoadTimeSeriesCsv(flags.at("demand")), "load demand");
    }
    WorkloadConfig workload =
        ProfileByName(FlagOr(flags, "profile", "east-medium"), seed);
    workload.duration_days = NumFlag(flags, "days", 1.0);
    auto generator = DieOnError(DemandGenerator::Create(workload), "generate");
    return generator.GenerateBinned();
  }();
  std::vector<double> events = ScatterEvents(demand, seed);
  // Re-base the demand trace itself so worker virtual time matches events.
  demand = TimeSeries(0.0, demand.interval(),
                      std::vector<double>(demand.values()));

  ObsBundle obs;
  PipelineConfig pipeline;
  pipeline.obs = obs.Context();
  pipeline.model = ModelByName(FlagOr(flags, "model", "ssa+"));
  pipeline.forecast.window = static_cast<size_t>(NumFlag(flags, "window", 96));
  pipeline.forecast.horizon =
      static_cast<size_t>(NumFlag(flags, "horizon", 48));
  pipeline.forecast.alpha_prime = NumFlag(flags, "loss-alpha", 0.9);
  pipeline.saa.alpha_prime = NumFlag(flags, "alpha", 0.3);
  pipeline.saa.pool.tau_bins =
      static_cast<size_t>(NumFlag(flags, "tau-bins", 3));
  pipeline.saa.pool.max_pool_size =
      static_cast<int64_t>(NumFlag(flags, "max-pool", 500));
  const auto thread_pool = PoolFromFlags(flags);
  pipeline.forecast.exec.pool = thread_pool.get();
  auto engine = DieOnError(RecommendationEngine::Create(pipeline), "config");

  ControlLoopConfig config;
  config.run_interval_seconds = NumFlag(flags, "run-interval", 1800.0);
  config.worker.interval_seconds = demand.interval();
  config.worker.history_bins = static_cast<size_t>(
      NumFlag(flags, "history-bins",
              static_cast<double>(std::max<size_t>(8, demand.size() / 2))));
  config.sim.creation_latency_mean_seconds = NumFlag(flags, "latency", 90.0);
  config.sim.creation_latency_cv = NumFlag(flags, "latency-cv", 0.2);
  config.sim.seed = seed;
  config.obs = obs.Context();
  auto result = DieOnError(
      ControlLoop::Run(engine, config, demand, events), "control loop");
  if (thread_pool != nullptr) thread_pool->PublishTo(&obs.registry);

  // Bridge the §7.5 dashboard into the same registry before exporting.
  const double horizon =
      demand.interval() * static_cast<double>(demand.size());
  auto monitor =
      DieOnError(Monitor::Create(AlertConfig{}, CogsModel{},
                                 config.pooling.default_pool_size),
                 "monitor");
  const size_t successes = result.pipeline_runs - result.pipeline_failures -
                           result.guardrail_rejections;
  for (size_t i = 0; i < result.pipeline_failures; ++i) {
    monitor.RecordPipelineRun(horizon, PipelineStatus::kFailed);
  }
  for (size_t i = 0; i < result.guardrail_rejections; ++i) {
    monitor.RecordPipelineRun(horizon, PipelineStatus::kGuardrailRejected);
  }
  for (size_t i = 0; i < successes; ++i) {
    monitor.RecordPipelineRun(horizon, PipelineStatus::kSucceeded);
  }
  monitor.RecordClusterIdle(horizon, result.sim.idle_cluster_seconds);
  if (!result.applied_schedule.empty()) {
    monitor.RecordRecommendation(
        horizon, static_cast<double>(result.applied_schedule.back()));
  }
  monitor.PublishTo(&obs.registry, horizon);

  CogsModel cogs;
  std::printf("pipeline runs       %zu (%zu failed, %zu guardrail-rejected)\n",
              result.pipeline_runs, result.pipeline_failures,
              result.guardrail_rejections);
  std::printf("fallback bins       %zu\n", result.fallback_bins);
  std::printf("requests            %ld\n", result.sim.total_requests);
  std::printf("pool hit rate       %.2f%%\n", 100.0 * result.sim.hit_rate);
  std::printf("avg / p99 wait      %.2f / %.1f s\n",
              result.sim.avg_wait_seconds, result.sim.p99_wait_seconds);
  std::printf("idle cluster time   %s ($%.2f)\n",
              HumanDuration(result.sim.idle_cluster_seconds).c_str(),
              cogs.IdleDollars(result.sim.idle_cluster_seconds));
  ExportObs(flags, obs);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: ipool_cli <generate|recommend|evaluate|simulate|"
                 "sweep|loop> [--flag value ...]\n");
    return 1;
  }
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "recommend") return CmdRecommend(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "simulate") return CmdSimulate(flags);
  if (command == "sweep") return CmdSweep(flags);
  if (command == "loop") return CmdLoop(flags);
  Die("unknown command: " + command);
}
