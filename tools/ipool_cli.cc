// ipool_cli: operator command line for the Intelligent Pooling library.
//
//   ipool_cli generate  --profile west-small|east-medium|...|spiky
//                       [--days 2] [--seed 7] --out demand.csv
//   ipool_cli recommend --demand demand.csv [--model ssa+] [--alpha 0.3]
//                       [--loss-alpha 0.9] [--bins 120] [--smooth-sf 0]
//                       [--threads 0] --out schedule.csv
//   ipool_cli evaluate  --demand demand.csv --schedule schedule.csv
//                       [--tau-bins 3]
//   ipool_cli simulate  --demand demand.csv --schedule schedule.csv
//                       [--latency 90] [--latency-cv 0.2] [--seed 1]
//   ipool_cli sweep     --demand demand.csv [--tau-bins 3] [--threads 0]
//   ipool_cli tune      --demand demand.csv | --profile regime-shift
//                       [--days 10] [--seed 7] [--pool NAME]
//                       [--models baseline,ssa,ssa+] [--alphas 0.1,...]
//                       [--windows 48,96] [--rungs 3] [--eta 3]
//                       [--eval-bins 120] [--min-train 32]
//                       [--hysteresis 5] [--target-wait 1]
//                       [--refine-steps 3] [--idle-weight 2e-4]
//                       [--threads 0] [--repeat 1]
//   ipool_cli loop      --demand demand.csv | --profile east-medium
//                       [--days 2] [--seed 7] [--model ssa+]
//                       [--run-interval 1800] [--latency 90] [--threads 0]
//   ipool_cli serve     [--port 7070] [--threads 4] [--drain-timeout 5]
//                       [--profile east-medium | --demand demand.csv]
//                       [--days 2] [--seed 7] [--model ssa+] [--key NAME]
//                       [--max-seconds 0] [--max-inflight 64]
//                       [--loop-interval 0] [--min-history 64]
//                       [--warm-refit 1] [--history-bins 480] [--shards 16]
//                       [--tune-interval 0] [--tune-models baseline,ssa,ssa+]
//                       [--tune-alphas ...] [--tune-windows ...]
//                       [--tune-eval-bins 120] [--tune-min-train 32]
//                       [--tune-hysteresis 5]
//   ipool_cli get       --port 7070 [--key NAME] [--trace 1] [--raw 1]
//   ipool_cli publish   --port 7070 --metric demand.POOL [--start 0]
//                       [--interval 30] [--count N --value V |
//                       --values v0,v1,...]
//   ipool_cli trace     --port 7070 [--limit 256]
//   ipool_cli profile   --bench table1|fig5 [--threads 4] [--repeat 3]
//                       [--days 1] [--epochs 2] [--max-overhead-pct 3]
//                       [--overhead-out BENCH_obs_overhead.json]
//                       [--tasks-out tasks.jsonl] [--trace-out FILE]
//                       [--metrics-out FILE]
//
// `serve` hosts the control plane over loopback TCP (the ipool::net framed
// binary protocol): it fits a recommendation for the given profile/demand,
// publishes it in the document store under --key (default: the profile
// name), and answers GetRecommendation / PublishTelemetry / Health /
// Metrics / Trace until SIGINT/SIGTERM (or --max-seconds), then drains
// gracefully for --drain-timeout seconds. `--threads N` sizes the handler
// pool (0 = handle on the event loop). The server keeps a Tracer: every
// request's spans are recorded under the client-stamped trace id.
//
// `serve --loop-interval T` (T > 0) additionally runs the in-process
// streaming control plane (src/live): every tick it discovers pools from
// `demand.<pool>` telemetry metrics, warm-refits each pool's forecaster,
// solves, and atomically republishes the fleet's recommendation documents
// — PublishTelemetry traffic continuously reshapes what GetRecommendation
// returns. `publish` injects synthetic telemetry into a running server
// (the spike half of the spike -> resize demo; see README).
//
// `serve --tune-interval T` (T > 0, needs --loop-interval) additionally
// runs the fleet auto-tuner inside the live loop: each pool's (model,
// alpha', window) search re-runs every T seconds over its telemetry, the
// winning config is published as document `tuning.<pool>` and the next
// tick serves with it. `tune` runs the same search once, offline, over a
// demand trace — the operator's what-would-the-tuner-pick probe; with
// --repeat > 1 it re-tunes over the unchanged trace and reports the memo
// warm-hit speedup.
//
// `get --trace 1` runs the fetch with client-side tracing, then pulls the
// server's recent spans and prints both halves of the request's trace —
// the cross-process view of one GetRecommendation. `trace` dumps the
// server's recent spans (JSONL) without issuing any other request.
//
// `profile` replays a bench workload (table1: 6 datasets x 5 forecast
// models; fig5: tradeoff-grid pipeline sweeps) on an N-thread pool,
// alternating untraced and traced+profiled parallel passes (min over
// --repeat repeats of each), prints the per-task-label utilization
// breakdown from the exec-pool TaskProfiler, reconciles the task timeline
// against wall clock, and gates on the tracing+profiling overhead
// (--max-overhead-pct, <= 0 disables; the verdict lands in
// --overhead-out as JSON).
//
// Unknown flags are rejected with an error naming the command's accepted
// flags — a typo must not silently fall back to a default.
//
// `--threads N` (recommend, sweep, loop; default 0 = serial) runs the
// command's independent work — deep-model training kernels, per-alpha'
// sweep solves — on an N-thread pool. Results are bit-identical to the
// serial run (the determinism contract of DESIGN.md).
//
// `recommend` fits on the whole input and emits the next `--bins` bins;
// `evaluate` scores a schedule with the analytical queueing model (§4.1);
// `simulate` replays the demand through the event-driven pool simulator;
// `sweep` prints the alpha' Pareto frontier of SAA-on-history;
// `loop` drives the full control plane (telemetry ingest -> periodic
// pipeline runs -> pooling worker -> simulator) end to end.
//
// Observability (recommend, simulate and loop): `--metrics-out FILE`
// writes Prometheus text exposition, `--trace-out FILE` writes one JSON
// span per line, `--obs-summary 1` prints a human-readable latency table.
// FILE may be "-" for stdout.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "autotune/fleet_tuner.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/recommendation_engine.h"
#include "live/live_control_plane.h"
#include "exec/task_profiler.h"
#include "exec/thread_pool.h"
#include "forecast/forecaster.h"
#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/control_loop.h"
#include "service/document_store.h"
#include "service/sharded_document_store.h"
#include "service/sharded_telemetry_store.h"
#include "service/monitoring.h"
#include "service/recommendation_io.h"
#include "service/telemetry_store.h"
#include "service/tuning_io.h"
#include "sim/pool_simulator.h"
#include "solver/saa_optimizer.h"
#include "tsdata/csv.h"
#include "tsdata/metrics.h"
#include "workload/demand_generator.h"

namespace {

using namespace ipool;

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "ipool_cli: %s\n", message.c_str());
  std::exit(1);
}

template <typename T>
T DieOnError(Result<T> result, const char* what) {
  if (!result.ok()) {
    Die(std::string(what) + ": " + result.status().ToString());
  }
  return std::move(result).value();
}

// Every flag a command accepts; ParseFlags rejects anything else so a
// typo'd flag errors out instead of silently meaning its default.
const std::map<std::string, std::vector<std::string>>& CommandFlags() {
  static const std::map<std::string, std::vector<std::string>> kFlags = {
      {"generate", {"profile", "days", "seed", "out"}},
      {"recommend",
       {"demand", "model", "window", "horizon", "loss-alpha", "alpha",
        "tau-bins", "max-pool", "bins", "smooth-sf", "threads", "out",
        "metrics-out", "trace-out", "obs-summary"}},
      {"evaluate", {"demand", "schedule", "tau-bins"}},
      {"simulate",
       {"demand", "schedule", "latency", "latency-cv", "seed", "metrics-out",
        "trace-out", "obs-summary"}},
      {"sweep", {"demand", "tau-bins", "max-pool", "threads"}},
      {"tune",
       {"demand", "profile", "days", "seed", "pool", "models", "alphas",
        "windows", "rungs", "eta", "eval-bins", "min-train", "hysteresis",
        "target-wait", "refine-steps", "idle-weight", "tau-bins", "max-pool",
        "threads", "repeat"}},
      {"loop",
       {"demand", "profile", "days", "seed", "model", "window", "horizon",
        "loss-alpha", "alpha", "tau-bins", "max-pool", "history-bins",
        "run-interval", "latency", "latency-cv", "threads", "metrics-out",
        "trace-out", "obs-summary"}},
      {"serve",
       {"port", "threads", "drain-timeout", "profile", "demand", "days",
        "seed", "model", "key", "max-seconds", "max-inflight", "window",
        "horizon", "loss-alpha", "alpha", "tau-bins", "max-pool", "bins",
        "loop-interval", "min-history", "warm-refit", "history-bins",
        "shards", "tune-interval", "tune-models", "tune-alphas",
        "tune-windows", "tune-eval-bins", "tune-min-train",
        "tune-hysteresis"}},
      {"get", {"host", "port", "key", "timeout", "retries", "trace", "raw"}},
      {"publish",
       {"host", "port", "metric", "start", "interval", "count", "value",
        "values", "timeout", "retries"}},
      {"scrape", {"host", "port", "timeout", "retries"}},
      {"trace", {"host", "port", "timeout", "retries", "limit"}},
      {"profile",
       {"bench", "threads", "repeat", "days", "epochs", "max-overhead-pct",
        "overhead-out", "tasks-out", "trace-out", "metrics-out"}},
  };
  return kFlags;
}

// "--key value" pairs into a map; bare tokens and flags the command does
// not define are rejected.
std::map<std::string, std::string> ParseFlags(int argc, char** argv, int begin,
                                              const std::string& command) {
  const auto allowed_it = CommandFlags().find(command);
  if (allowed_it == CommandFlags().end()) Die("unknown command: " + command);
  const std::vector<std::string>& allowed = allowed_it->second;
  std::map<std::string, std::string> flags;
  for (int i = begin; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) Die("unexpected argument: " + key);
    std::string name = key.substr(2);
    if (std::find(allowed.begin(), allowed.end(), name) == allowed.end()) {
      Die("unknown flag --" + name + " for command '" + command +
          "' (accepted: --" + Join(allowed, ", --") + ")");
    }
    if (i + 1 >= argc) Die("flag needs a value: " + key);
    flags[std::move(name)] = argv[++i];
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

double NumFlag(const std::map<std::string, std::string>& flags,
               const std::string& key, double fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : std::atof(it->second.c_str());
}

std::string RequiredFlag(const std::map<std::string, std::string>& flags,
                         const std::string& key) {
  auto it = flags.find(key);
  if (it == flags.end()) Die("missing required flag --" + key);
  return it->second;
}

WorkloadConfig ProfileByName(const std::string& name, uint64_t seed) {
  if (name == "spiky") return SpikyRegionProfile(seed);
  if (name == "regime-shift") return RegimeShiftProfile(seed);
  const auto dash = name.find('-');
  if (dash != std::string::npos) {
    const std::string region_name = name.substr(0, dash);
    const std::string size_name = name.substr(dash + 1);
    Region region;
    if (region_name == "west") {
      region = Region::kWestUs2;
    } else if (region_name == "east") {
      region = Region::kEastUs2;
    } else {
      Die("unknown region in profile: " + name);
    }
    NodeSize size;
    if (size_name == "small") {
      size = NodeSize::kSmall;
    } else if (size_name == "medium") {
      size = NodeSize::kMedium;
    } else if (size_name == "large") {
      size = NodeSize::kLarge;
    } else {
      Die("unknown node size in profile: " + name);
    }
    return RegionNodeProfile(region, size, seed);
  }
  Die("unknown profile '" + name +
      "' (use west-small, east-medium, ..., spiky, or regime-shift)");
}

ModelKind ModelByName(const std::string& name) {
  if (name == "baseline") return ModelKind::kBaseline;
  if (name == "ssa") return ModelKind::kSsa;
  if (name == "ssa+") return ModelKind::kSsaPlus;
  if (name == "mwdn") return ModelKind::kMwdn;
  if (name == "tst") return ModelKind::kTst;
  if (name == "incpt") return ModelKind::kInceptionTime;
  Die("unknown model '" + name +
      "' (use baseline, ssa, ssa+, mwdn, tst, incpt)");
}

// --threads N: the command's shared thread pool, null (serial) by default.
std::unique_ptr<exec::ThreadPool> PoolFromFlags(
    const std::map<std::string, std::string>& flags) {
  const size_t n = static_cast<size_t>(NumFlag(flags, "threads", 0));
  return n > 0 ? std::make_unique<exec::ThreadPool>(n) : nullptr;
}

// Metrics registry + tracer pair owned by a command, plus flag-driven
// export: --metrics-out (Prometheus text), --trace-out (span JSONL),
// --obs-summary 1 (human-readable table). "-" writes to stdout.
struct ObsBundle {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;

  ObsContext Context() { return ObsContext{&registry, &tracer}; }
};

void WriteTextTo(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return;
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) Die("cannot open for writing: " + path);
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

void ExportObs(const std::map<std::string, std::string>& flags,
               ObsBundle& obs) {
  if (auto it = flags.find("metrics-out"); it != flags.end()) {
    WriteTextTo(it->second, obs::PrometheusText(obs.registry));
  }
  if (auto it = flags.find("trace-out"); it != flags.end()) {
    WriteTextTo(it->second, obs::SpansJsonl(obs.tracer));
  }
  if (NumFlag(flags, "obs-summary", 0) != 0) {
    std::fputs(obs::HumanSummary(obs.registry, &obs.tracer).c_str(), stdout);
  }
}

// Scatters binned demand counts into arrival-event times, uniformly within
// each bin (deterministic given the seed), re-based so the first bin is t=0.
std::vector<double> ScatterEvents(const TimeSeries& demand, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> events;
  for (size_t i = 0; i < demand.size(); ++i) {
    const int64_t count = static_cast<int64_t>(std::llround(demand.value(i)));
    for (int64_t k = 0; k < count; ++k) {
      events.push_back(demand.TimeAt(i) + rng.NextDouble() * demand.interval());
    }
  }
  std::sort(events.begin(), events.end());
  const double base = demand.start();
  for (double& t : events) t -= base;
  return events;
}

void PrintMetrics(const PoolMetrics& metrics) {
  CogsModel cogs;
  std::printf("requests            %ld\n", metrics.total_requests);
  std::printf("pool hit rate       %.2f%%\n", 100.0 * metrics.hit_rate);
  std::printf("avg wait            %.2f s (capped at on-demand latency)\n",
              metrics.avg_wait_seconds_capped);
  std::printf("avg pool size       %.2f (max %.0f)\n", metrics.avg_pool_size,
              metrics.max_pool_size);
  std::printf("idle cluster time   %s\n",
              HumanDuration(metrics.idle_cluster_seconds).c_str());
  std::printf("idle COGS           $%.2f\n",
              cogs.IdleDollars(metrics.idle_cluster_seconds));
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  WorkloadConfig config = ProfileByName(
      FlagOr(flags, "profile", "east-medium"),
      static_cast<uint64_t>(NumFlag(flags, "seed", 7)));
  config.duration_days = NumFlag(flags, "days", 2.0);
  auto generator = DieOnError(DemandGenerator::Create(config), "generate");
  TimeSeries series = generator.GenerateBinned();
  const std::string out = RequiredFlag(flags, "out");
  if (Status s = SaveTimeSeriesCsv(series, out); !s.ok()) Die(s.ToString());
  std::printf("wrote %zu bins (%.0f requests) to %s\n", series.size(),
              series.Sum(), out.c_str());
  return 0;
}

int CmdRecommend(const std::map<std::string, std::string>& flags) {
  TimeSeries demand = DieOnError(
      LoadTimeSeriesCsv(RequiredFlag(flags, "demand")), "load demand");
  PipelineConfig config;
  config.model = ModelByName(FlagOr(flags, "model", "ssa+"));
  config.forecast.window = static_cast<size_t>(NumFlag(flags, "window", 96));
  config.forecast.horizon = static_cast<size_t>(NumFlag(flags, "horizon", 48));
  config.forecast.alpha_prime = NumFlag(flags, "loss-alpha", 0.9);
  config.saa.alpha_prime = NumFlag(flags, "alpha", 0.3);
  config.saa.pool.tau_bins = static_cast<size_t>(NumFlag(flags, "tau-bins", 3));
  config.saa.pool.max_pool_size =
      static_cast<int64_t>(NumFlag(flags, "max-pool", 500));
  config.recommendation_bins = static_cast<size_t>(NumFlag(flags, "bins", 120));
  config.smoothing_factor_bins =
      static_cast<size_t>(NumFlag(flags, "smooth-sf", 0));
  ObsBundle obs;
  config.obs = obs.Context();
  const auto thread_pool = PoolFromFlags(flags);
  config.forecast.exec.pool = thread_pool.get();
  auto engine = DieOnError(RecommendationEngine::Create(config), "config");
  auto rec = DieOnError(engine.Run(demand), "pipeline");
  if (thread_pool != nullptr) thread_pool->PublishTo(&obs.registry);
  ExportObs(flags, obs);

  StoredSchedule stored;
  stored.start_time =
      demand.TimeAt(demand.size() - 1) + demand.interval();
  stored.interval_seconds = demand.interval();
  stored.pool_size_per_bin = rec.pool_size_per_bin;
  const std::string out = RequiredFlag(flags, "out");
  if (Status s = SaveScheduleCsv(stored, out); !s.ok()) Die(s.ToString());
  double mean = 0;
  for (int64_t n : rec.pool_size_per_bin) mean += static_cast<double>(n);
  std::printf("model %s: wrote %zu-bin schedule (avg pool %.1f) to %s\n",
              rec.model_name.c_str(), rec.pool_size_per_bin.size(),
              mean / static_cast<double>(rec.pool_size_per_bin.size()),
              out.c_str());
  return 0;
}

int CmdEvaluate(const std::map<std::string, std::string>& flags) {
  TimeSeries demand = DieOnError(
      LoadTimeSeriesCsv(RequiredFlag(flags, "demand")), "load demand");
  StoredSchedule schedule = DieOnError(
      LoadScheduleCsv(RequiredFlag(flags, "schedule")), "load schedule");
  if (schedule.pool_size_per_bin.size() != demand.size()) {
    Die(StrFormat("schedule has %zu bins but demand has %zu",
                  schedule.pool_size_per_bin.size(), demand.size()));
  }
  PoolModelConfig pool;
  pool.tau_bins = static_cast<size_t>(NumFlag(flags, "tau-bins", 3));
  pool.max_pool_size = 1'000'000;  // the schedule is taken as-is
  auto metrics = DieOnError(
      EvaluateSchedule(demand, schedule.pool_size_per_bin, pool), "evaluate");
  PrintMetrics(metrics);
  return 0;
}

int CmdSimulate(const std::map<std::string, std::string>& flags) {
  TimeSeries demand = DieOnError(
      LoadTimeSeriesCsv(RequiredFlag(flags, "demand")), "load demand");
  StoredSchedule schedule = DieOnError(
      LoadScheduleCsv(RequiredFlag(flags, "schedule")), "load schedule");
  if (schedule.pool_size_per_bin.size() != demand.size()) {
    Die("schedule/demand bin counts differ");
  }
  // Scatter the binned counts into arrival events (deterministic seed).
  std::vector<double> events =
      ScatterEvents(demand, static_cast<uint64_t>(NumFlag(flags, "seed", 1)));

  SimConfig config;
  config.creation_latency_mean_seconds = NumFlag(flags, "latency", 90.0);
  config.creation_latency_cv = NumFlag(flags, "latency-cv", 0.2);
  config.seed = static_cast<uint64_t>(NumFlag(flags, "seed", 1));
  ObsBundle obs;
  config.obs = obs.Context();
  auto simulator = DieOnError(PoolSimulator::Create(config), "sim config");
  const double horizon =
      demand.interval() * static_cast<double>(demand.size());
  auto result = DieOnError(
      simulator.Run(events, schedule.pool_size_per_bin, demand.interval(),
                    horizon),
      "simulate");
  ExportObs(flags, obs);
  CogsModel cogs;
  std::printf("requests            %ld\n", result.total_requests);
  std::printf("pool hit rate       %.2f%%\n", 100.0 * result.hit_rate);
  std::printf("avg / p99 wait      %.2f / %.1f s\n", result.avg_wait_seconds,
              result.p99_wait_seconds);
  std::printf("clusters created    %ld (+%ld on-demand, %ld cancelled)\n",
              result.clusters_created, result.on_demand_created,
              result.hydrations_cancelled);
  std::printf("idle cluster time   %s ($%.2f)\n",
              HumanDuration(result.idle_cluster_seconds).c_str(),
              cogs.IdleDollars(result.idle_cluster_seconds));
  return 0;
}

int CmdSweep(const std::map<std::string, std::string>& flags) {
  TimeSeries demand = DieOnError(
      LoadTimeSeriesCsv(RequiredFlag(flags, "demand")), "load demand");
  PoolModelConfig pool;
  pool.tau_bins = static_cast<size_t>(NumFlag(flags, "tau-bins", 3));
  pool.max_pool_size = static_cast<int64_t>(NumFlag(flags, "max-pool", 500));
  const std::vector<double> alphas = {0.95, 0.8, 0.6, 0.4, 0.2,
                                      0.1,  0.05, 0.02, 0.005};
  const auto thread_pool = PoolFromFlags(flags);
  auto points = DieOnError(
      SweepPareto(demand, demand, pool, alphas, {}, {thread_pool.get()}),
      "sweep");
  CogsModel cogs;
  std::printf("%8s %14s %12s %10s %14s\n", "alpha'", "avg wait(s)",
              "hit rate", "avg pool", "idle $");
  for (const ParetoPoint& p : points) {
    std::printf("%8.3f %14.2f %11.1f%% %10.1f %14.2f\n", p.alpha_prime,
                p.metrics.avg_wait_seconds_capped, 100.0 * p.metrics.hit_rate,
                p.metrics.avg_pool_size,
                cogs.IdleDollars(p.metrics.idle_cluster_seconds));
  }
  return 0;
}

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> items;
  std::string item;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i < text.size() && text[i] != ',') {
      item += text[i];
      continue;
    }
    if (!item.empty()) items.push_back(item);
    item.clear();
  }
  return items;
}

// Comma-list flag parsers for the tuner grid; absent flags keep the
// FleetTunerConfig defaults.
void ApplyTunerGridFlags(const std::map<std::string, std::string>& flags,
                         const std::string& models_flag,
                         const std::string& alphas_flag,
                         const std::string& windows_flag,
                         autotune::FleetTunerConfig* tuner) {
  if (auto it = flags.find(models_flag); it != flags.end()) {
    tuner->models.clear();
    for (const std::string& name : SplitCsv(it->second)) {
      tuner->models.push_back(ModelByName(name));
    }
  }
  if (auto it = flags.find(alphas_flag); it != flags.end()) {
    tuner->alphas.clear();
    for (const std::string& item : SplitCsv(it->second)) {
      tuner->alphas.push_back(DieOnError(ParseDouble(item), alphas_flag.c_str()));
    }
  }
  if (auto it = flags.find(windows_flag); it != flags.end()) {
    tuner->windows.clear();
    for (const std::string& item : SplitCsv(it->second)) {
      tuner->windows.push_back(static_cast<size_t>(
          DieOnError(ParseDouble(item), windows_flag.c_str())));
    }
  }
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The offline what-would-the-tuner-pick probe: one FleetTuner search over a
// demand trace, printed as the winner plus the exact `tuning.<pool>`
// document a live tune would publish. --repeat N re-tunes over the same
// trace, so the second run exercises the memo cache (warm) and the command
// reports the speedup — a quick local read on the warm >= 2x bench gate.
int CmdTune(const std::map<std::string, std::string>& flags) {
  const uint64_t seed = static_cast<uint64_t>(NumFlag(flags, "seed", 7));
  const std::string profile = FlagOr(flags, "profile", "regime-shift");
  TimeSeries demand = [&] {
    if (flags.count("demand") != 0) {
      return DieOnError(LoadTimeSeriesCsv(flags.at("demand")), "load demand");
    }
    WorkloadConfig workload = ProfileByName(profile, seed);
    workload.duration_days = NumFlag(flags, "days", 10.0);
    auto generator = DieOnError(DemandGenerator::Create(workload), "generate");
    return generator.GenerateBinned();
  }();
  const std::string pool_name = FlagOr(flags, "pool", profile);

  autotune::FleetTunerConfig config;
  ApplyTunerGridFlags(flags, "models", "alphas", "windows", &config);
  config.rungs = static_cast<size_t>(NumFlag(flags, "rungs", 3));
  config.eta = static_cast<size_t>(NumFlag(flags, "eta", 3));
  config.eval_bins = static_cast<size_t>(NumFlag(flags, "eval-bins", 120));
  config.min_train_bins =
      static_cast<size_t>(NumFlag(flags, "min-train", 32));
  config.hysteresis_pct = NumFlag(flags, "hysteresis", 5.0);
  config.target_wait_seconds = NumFlag(flags, "target-wait", 1.0);
  config.refine_steps =
      static_cast<size_t>(NumFlag(flags, "refine-steps", 3));
  config.idle_cost_weight = NumFlag(flags, "idle-weight", 2e-4);
  config.pool.tau_bins = static_cast<size_t>(NumFlag(flags, "tau-bins", 3));
  config.pool.max_pool_size =
      static_cast<int64_t>(NumFlag(flags, "max-pool", 500));
  ObsBundle obs;
  config.obs = obs.Context();
  const auto thread_pool = PoolFromFlags(flags);
  config.exec.pool = thread_pool.get();
  auto tuner = DieOnError(autotune::FleetTuner::Create(config), "tune config");

  const int repeat = std::max(1, static_cast<int>(NumFlag(flags, "repeat", 1)));
  autotune::PoolTuneResult result;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  for (int r = 0; r < repeat; ++r) {
    const double begin = MonotonicSeconds();
    // Later repeats hand the previous winner in as the incumbent — the same
    // contract the live loop follows tick over tick.
    const autotune::TuningCandidate incumbent = result.winner;
    result = tuner->TunePool(pool_name, demand,
                             r == 0 || !result.ok ? nullptr : &incumbent);
    const double elapsed = MonotonicSeconds() - begin;
    if (r == 0) cold_seconds = elapsed;
    warm_seconds = elapsed;
  }
  if (!result.ok) Die("tune failed: " + result.error);

  std::printf("pool '%s': %zu bins, %zu candidates, %zu evaluations "
              "(%zu memo hits)\n",
              pool_name.c_str(), demand.size(), result.candidates,
              result.evaluations, result.memo_hits);
  std::printf("winner %s  score %.6f%s\n",
              autotune::TuningCandidateName(result.winner).c_str(),
              result.winner_score,
              result.switched ? "" : "  (incumbent kept)");
  if (repeat > 1) {
    std::printf("cold %.3fs -> warm %.3fs (%.2fx)\n", cold_seconds,
                warm_seconds,
                warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0);
  }
  StoredTuning stored;
  stored.pool = pool_name;
  stored.model = result.winner.model;
  stored.alpha_prime = result.winner.alpha_prime;
  stored.window = result.winner.window;
  std::printf("-- tuning document --\n%s", SerializeTuning(stored).c_str());
  return 0;
}

int CmdLoop(const std::map<std::string, std::string>& flags) {
  const uint64_t seed = static_cast<uint64_t>(NumFlag(flags, "seed", 7));
  TimeSeries demand = [&] {
    if (flags.count("demand") != 0) {
      return DieOnError(LoadTimeSeriesCsv(flags.at("demand")), "load demand");
    }
    WorkloadConfig workload =
        ProfileByName(FlagOr(flags, "profile", "east-medium"), seed);
    workload.duration_days = NumFlag(flags, "days", 1.0);
    auto generator = DieOnError(DemandGenerator::Create(workload), "generate");
    return generator.GenerateBinned();
  }();
  std::vector<double> events = ScatterEvents(demand, seed);
  // Re-base the demand trace itself so worker virtual time matches events.
  demand = TimeSeries(0.0, demand.interval(),
                      std::vector<double>(demand.values()));

  ObsBundle obs;
  PipelineConfig pipeline;
  pipeline.obs = obs.Context();
  pipeline.model = ModelByName(FlagOr(flags, "model", "ssa+"));
  pipeline.forecast.window = static_cast<size_t>(NumFlag(flags, "window", 96));
  pipeline.forecast.horizon =
      static_cast<size_t>(NumFlag(flags, "horizon", 48));
  pipeline.forecast.alpha_prime = NumFlag(flags, "loss-alpha", 0.9);
  pipeline.saa.alpha_prime = NumFlag(flags, "alpha", 0.3);
  pipeline.saa.pool.tau_bins =
      static_cast<size_t>(NumFlag(flags, "tau-bins", 3));
  pipeline.saa.pool.max_pool_size =
      static_cast<int64_t>(NumFlag(flags, "max-pool", 500));
  const auto thread_pool = PoolFromFlags(flags);
  pipeline.forecast.exec.pool = thread_pool.get();
  auto engine = DieOnError(RecommendationEngine::Create(pipeline), "config");

  ControlLoopConfig config;
  config.run_interval_seconds = NumFlag(flags, "run-interval", 1800.0);
  config.worker.interval_seconds = demand.interval();
  config.worker.history_bins = static_cast<size_t>(
      NumFlag(flags, "history-bins",
              static_cast<double>(std::max<size_t>(8, demand.size() / 2))));
  config.sim.creation_latency_mean_seconds = NumFlag(flags, "latency", 90.0);
  config.sim.creation_latency_cv = NumFlag(flags, "latency-cv", 0.2);
  config.sim.seed = seed;
  config.obs = obs.Context();
  auto result = DieOnError(
      ControlLoop::Run(engine, config, demand, events), "control loop");
  if (thread_pool != nullptr) thread_pool->PublishTo(&obs.registry);

  // Bridge the §7.5 dashboard into the same registry before exporting.
  const double horizon =
      demand.interval() * static_cast<double>(demand.size());
  auto monitor =
      DieOnError(Monitor::Create(AlertConfig{}, CogsModel{},
                                 config.pooling.default_pool_size),
                 "monitor");
  const size_t successes = result.pipeline_runs - result.pipeline_failures -
                           result.guardrail_rejections;
  for (size_t i = 0; i < result.pipeline_failures; ++i) {
    monitor.RecordPipelineRun(horizon, PipelineStatus::kFailed);
  }
  for (size_t i = 0; i < result.guardrail_rejections; ++i) {
    monitor.RecordPipelineRun(horizon, PipelineStatus::kGuardrailRejected);
  }
  for (size_t i = 0; i < successes; ++i) {
    monitor.RecordPipelineRun(horizon, PipelineStatus::kSucceeded);
  }
  monitor.RecordClusterIdle(horizon, result.sim.idle_cluster_seconds);
  if (!result.applied_schedule.empty()) {
    monitor.RecordRecommendation(
        horizon, static_cast<double>(result.applied_schedule.back()));
  }
  monitor.PublishTo(&obs.registry, horizon);

  CogsModel cogs;
  std::printf("pipeline runs       %zu (%zu failed, %zu guardrail-rejected)\n",
              result.pipeline_runs, result.pipeline_failures,
              result.guardrail_rejections);
  std::printf("fallback bins       %zu\n", result.fallback_bins);
  std::printf("requests            %ld\n", result.sim.total_requests);
  std::printf("pool hit rate       %.2f%%\n", 100.0 * result.sim.hit_rate);
  std::printf("avg / p99 wait      %.2f / %.1f s\n",
              result.sim.avg_wait_seconds, result.sim.p99_wait_seconds);
  std::printf("idle cluster time   %s ($%.2f)\n",
              HumanDuration(result.sim.idle_cluster_seconds).c_str(),
              cogs.IdleDollars(result.sim.idle_cluster_seconds));
  ExportObs(flags, obs);
  return 0;
}

volatile std::sig_atomic_t g_serve_stop = 0;

void HandleStopSignal(int) { g_serve_stop = 1; }

int CmdServe(const std::map<std::string, std::string>& flags) {
  const uint64_t seed = static_cast<uint64_t>(NumFlag(flags, "seed", 7));
  const std::string profile = FlagOr(flags, "profile", "east-medium");

  // Fit a recommendation for the profile (or a supplied trace) and publish
  // it as the document GetRecommendation serves.
  TimeSeries demand = [&] {
    if (flags.count("demand") != 0) {
      return DieOnError(LoadTimeSeriesCsv(flags.at("demand")), "load demand");
    }
    WorkloadConfig workload = ProfileByName(profile, seed);
    workload.duration_days = NumFlag(flags, "days", 1.0);
    auto generator = DieOnError(DemandGenerator::Create(workload), "generate");
    return generator.GenerateBinned();
  }();
  PipelineConfig pipeline;
  pipeline.model = ModelByName(FlagOr(flags, "model", "ssa+"));
  pipeline.forecast.window = static_cast<size_t>(NumFlag(flags, "window", 96));
  pipeline.forecast.horizon =
      static_cast<size_t>(NumFlag(flags, "horizon", 48));
  pipeline.forecast.alpha_prime = NumFlag(flags, "loss-alpha", 0.9);
  pipeline.saa.alpha_prime = NumFlag(flags, "alpha", 0.3);
  pipeline.saa.pool.tau_bins =
      static_cast<size_t>(NumFlag(flags, "tau-bins", 3));
  pipeline.saa.pool.max_pool_size =
      static_cast<int64_t>(NumFlag(flags, "max-pool", 500));
  pipeline.recommendation_bins =
      static_cast<size_t>(NumFlag(flags, "bins", 120));
  obs::MetricsRegistry registry;
  pipeline.obs = ObsContext{&registry, nullptr};
  auto engine = DieOnError(RecommendationEngine::Create(pipeline), "config");
  auto rec = DieOnError(engine.Run(demand), "pipeline");

  StoredRecommendation stored;
  stored.recommendation = rec;
  stored.start_time = demand.TimeAt(demand.size() - 1) + demand.interval();
  stored.interval_seconds = demand.interval();
  const std::string key = FlagOr(flags, "key", profile);
  const size_t shards = static_cast<size_t>(NumFlag(flags, "shards", 16));
  ShardedDocumentStore documents(shards);
  documents.Put(key, SerializeRecommendation(stored), stored.start_time);
  ShardedTelemetryStore telemetry(shards);

  const size_t threads = static_cast<size_t>(NumFlag(flags, "threads", 4));
  std::unique_ptr<exec::ThreadPool> pool =
      threads > 0 ? std::make_unique<exec::ThreadPool>(threads) : nullptr;

  // One tracer spans the whole serving stack: the server's per-request
  // spans, the router's per-method children and the store accesses all land
  // here, keyed by the trace id each client stamps into its frames.
  // `ipool_cli trace` (the Trace method) reads them back.
  obs::Tracer tracer;

  // --loop-interval > 0 runs the streaming control plane inside the server:
  // every `demand.<pool>` telemetry metric becomes a pool whose document is
  // re-published each tick. The sharded stores make each tick's publish
  // atomic per shard under concurrent reads.
  std::unique_ptr<live::LiveControlPlane> live_plane;
  const double loop_interval = NumFlag(flags, "loop-interval", 0.0);

  net::Router router(
      net::RouterConfig{&documents, &telemetry, &registry, &tracer});
  if (loop_interval > 0.0) {
    live::LiveControlPlaneConfig live_config;
    live_config.tick_interval_seconds = loop_interval;
    live_config.bin_interval_seconds = demand.interval();
    live_config.history_bins = static_cast<size_t>(
        NumFlag(flags, "history-bins", 480));
    live_config.min_history_points =
        static_cast<size_t>(NumFlag(flags, "min-history", 64));
    live_config.warm_refit = NumFlag(flags, "warm-refit", 1) != 0;
    live_config.exec.pool = pool.get();
    live_config.obs = ObsContext{&registry, &tracer};
    // --tune-interval > 0 adds the fleet auto-tuner to the loop: each
    // pool's (model, alpha', window) search re-runs on this cadence and
    // publishes `tuning.<pool>`; the next tick serves with the winner.
    live_config.tune_interval_seconds = NumFlag(flags, "tune-interval", 0.0);
    if (live_config.tune_interval_seconds > 0.0) {
      ApplyTunerGridFlags(flags, "tune-models", "tune-alphas", "tune-windows",
                          &live_config.tuner);
      live_config.tuner.eval_bins =
          static_cast<size_t>(NumFlag(flags, "tune-eval-bins", 120));
      // Rung-0 training slices are clamped up to this floor; SSA-family
      // windows clamp to half the slice, so the floor must be at least 2x
      // the largest window in the grid or the cheap rungs cut those
      // candidates on a handicapped fit.
      live_config.tuner.min_train_bins =
          static_cast<size_t>(NumFlag(flags, "tune-min-train", 32));
      live_config.tuner.hysteresis_pct = NumFlag(flags, "tune-hysteresis", 5.0);
    }
    live_plane = DieOnError(
        live::LiveControlPlane::Create(&engine, &telemetry, &documents,
                                       live_config),
        "live control plane");
    router.set_live(live_plane.get());
  }
  net::ServerConfig server_config;
  server_config.port = static_cast<uint16_t>(NumFlag(flags, "port", 7070));
  server_config.pool = pool.get();
  server_config.max_inflight_per_conn =
      static_cast<size_t>(NumFlag(flags, "max-inflight", 64));
  server_config.metrics = &registry;
  server_config.tracer = &tracer;
  const double drain_timeout = NumFlag(flags, "drain-timeout", 5.0);
  server_config.default_drain_timeout_seconds = drain_timeout;
  auto server = DieOnError(
      net::Server::Start(server_config,
                         [&router](const net::Frame& request) {
                           return router.Handle(request);
                         }),
      "serve");

  if (live_plane != nullptr) live_plane->Start();

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::printf("serving %s (document '%s', %zu bins) on 127.0.0.1:%u\n",
              profile.c_str(), key.c_str(), rec.pool_size_per_bin.size(),
              server->port());
  std::printf("methods: GetRecommendation PublishTelemetry Health Metrics "
              "Trace; %zu handler threads; ctrl-c to drain\n",
              threads);
  if (live_plane != nullptr) {
    std::printf("live loop: tick every %.2fs, pools from telemetry metrics "
                "'%s<pool>' (>= %zu points), %zu history bins\n",
                loop_interval,
                live_plane->config().demand_metric_prefix.c_str(),
                live_plane->config().min_history_points,
                live_plane->config().history_bins);
    if (live_plane->config().tune_interval_seconds > 0.0) {
      std::printf("auto-tune: per-pool search every %.2fs, winners under "
                  "'%s<pool>'\n",
                  live_plane->config().tune_interval_seconds,
                  live_plane->config().tuning_doc_prefix.c_str());
    }
  }
  std::fflush(stdout);

  const double max_seconds = NumFlag(flags, "max-seconds", 0.0);
  const auto started = std::chrono::steady_clock::now();
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (max_seconds > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
                .count() >= max_seconds) {
      break;
    }
  }
  std::printf("draining (up to %.1fs)...\n", drain_timeout);
  std::fflush(stdout);
  // The live loop stops before the server so no tick publishes into a
  // draining control plane; the in-flight tick finishes first.
  if (live_plane != nullptr) {
    live_plane->Stop();
    const live::LiveStatus live_status = live_plane->Snapshot();
    std::printf(
        "live loop: %llu ticks (%llu ok, %llu failed, %llu idle), "
        "%zu pools published\n",
        static_cast<unsigned long long>(live_status.ticks_total),
        static_cast<unsigned long long>(live_status.ticks_ok),
        static_cast<unsigned long long>(live_status.ticks_failed),
        static_cast<unsigned long long>(live_status.ticks_idle),
        live_status.pools_published);
    if (live_plane->config().tune_interval_seconds > 0.0) {
      std::printf(
          "auto-tune: %llu tunes (%llu switched, %llu failed), "
          "%zu pools on tuned configs\n",
          static_cast<unsigned long long>(live_status.tunes_total),
          static_cast<unsigned long long>(live_status.tunes_switched),
          static_cast<unsigned long long>(live_status.tunes_failed),
          live_status.pools_tuned);
    }
  }
  server->Shutdown(drain_timeout);
  if (pool != nullptr) pool->PublishTo(&registry);
  std::printf(
      "served %llu requests (%llu shed, %llu protocol errors) on %llu "
      "connections\n",
      static_cast<unsigned long long>(server->requests_handled()),
      static_cast<unsigned long long>(server->requests_shed()),
      static_cast<unsigned long long>(server->protocol_errors()),
      static_cast<unsigned long long>(server->connections_accepted()));
  return 0;
}

net::ClientConfig ClientFromFlags(
    const std::map<std::string, std::string>& flags) {
  net::ClientConfig config;
  config.host = FlagOr(flags, "host", "127.0.0.1");
  config.port = static_cast<uint16_t>(NumFlag(flags, "port", 7070));
  config.request_timeout_seconds = NumFlag(flags, "timeout", 2.0);
  config.max_attempts = static_cast<int>(NumFlag(flags, "retries", 3)) + 1;
  // The library default seed is deterministic (tests reproduce
  // byte-for-byte), but each CLI one-shot is a distinct caller and must
  // stamp distinct trace ids — otherwise every `get` in a script lands its
  // spans under the same trace in the server's ring.
  config.jitter_seed =
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()) ^
      (static_cast<uint64_t>(getpid()) << 32);
  return config;
}

// Keeps only the JSONL lines belonging to `trace_id` (the exported span
// format carries an exact `"trace":N,` field).
std::string FilterSpansByTrace(const std::string& jsonl, uint64_t trace_id) {
  const std::string needle = StrFormat(
      "\"trace\":%llu,", static_cast<unsigned long long>(trace_id));
  std::string out;
  size_t begin = 0;
  while (begin < jsonl.size()) {
    size_t end = jsonl.find('\n', begin);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(begin, end - begin);
    if (line.find(needle) != std::string::npos) {
      out += line;
      out += '\n';
    }
    begin = end + 1;
  }
  return out;
}

// Publishes a synthetic telemetry series (metric,time,value lines) to a
// running server — the injection half of the live-loop workflow: publish a
// demand spike under `demand.<pool>`, then watch `get --key <pool>` move
// within a few ticks.
int CmdPublish(const std::map<std::string, std::string>& flags) {
  net::Client client(ClientFromFlags(flags));
  const std::string metric = RequiredFlag(flags, "metric");
  const double start = NumFlag(flags, "start", 0.0);
  const double interval = NumFlag(flags, "interval", 30.0);
  std::vector<double> values;
  if (auto it = flags.find("values"); it != flags.end()) {
    // --values "v0,v1,..." — one point per item, `interval` apart.
    std::string item;
    for (size_t i = 0; i <= it->second.size(); ++i) {
      if (i < it->second.size() && it->second[i] != ',') {
        item += it->second[i];
        continue;
      }
      values.push_back(DieOnError(ParseDouble(item), "values"));
      item.clear();
    }
  } else {
    const size_t count = static_cast<size_t>(NumFlag(flags, "count", 1));
    values.assign(count, NumFlag(flags, "value", 1.0));
  }
  if (values.empty()) Die("publish: no points");
  // Batches stay under the router's per-request telemetry-line cap.
  size_t sent = 0;
  while (sent < values.size()) {
    const size_t batch = std::min<size_t>(4096, values.size() - sent);
    std::string payload;
    for (size_t i = 0; i < batch; ++i) {
      payload += StrFormat("%s,%.6f,%.6f\n", metric.c_str(),
                           start + interval * static_cast<double>(sent + i),
                           values[sent + i]);
    }
    auto response =
        client.Call(net::Method::kPublishTelemetry, std::move(payload));
    if (!response.ok()) Die("publish: " + response.status().ToString());
    if (response->status != net::WireStatus::kOk) {
      Die("publish rejected: " + response->payload);
    }
    sent += batch;
  }
  std::printf("published %zu points to %s (t = [%.1f, %.1f] step %.1f)\n",
              values.size(), metric.c_str(), start,
              start + interval * static_cast<double>(values.size() - 1),
              interval);
  return 0;
}

int CmdGet(const std::map<std::string, std::string>& flags) {
  const bool want_trace = NumFlag(flags, "trace", 0) != 0;
  obs::Tracer tracer;
  net::ClientConfig config = ClientFromFlags(flags);
  if (want_trace) config.tracer = &tracer;
  net::Client client(config);
  const std::string key = FlagOr(flags, "key", "east-medium");
  auto document = client.GetRecommendation(key);
  if (!document.ok()) Die("get: " + document.status().ToString());
  if (NumFlag(flags, "raw", 0) != 0) {
    // Verbatim payload bytes — the escape hatch for documents that are not
    // recommendations (tuning.<pool> configs, future formats). Scripts
    // parse this output, so nothing else is printed.
    std::fwrite(document->data(), 1, document->size(), stdout);
    return 0;
  }
  // The id this Call stamped links the client spans below to the server's.
  const uint64_t trace_id = client.stats().last_trace_id;
  auto stored = DieOnError(ParseRecommendation(*document), "parse");
  const auto& schedule = stored.recommendation.pool_size_per_bin;
  double mean = 0;
  for (int64_t n : schedule) mean += static_cast<double>(n);
  std::printf("document '%s': model %s, %zu bins from t=%.0f (avg pool %.1f, "
              "now->target %ld)\n",
              key.c_str(), stored.recommendation.model_name.c_str(),
              schedule.size(), stored.start_time,
              mean / static_cast<double>(schedule.size()),
              static_cast<long>(stored.TargetAt(stored.start_time)));
  if (want_trace) {
    // Both halves of the exchange, joined by the trace id: our spans from
    // the local tracer, the server's via the Trace method (that fetch gets
    // its own trace id, so it never pollutes the one we filter on).
    auto server_spans = client.FetchTrace();
    if (!server_spans.ok()) Die("trace: " + server_spans.status().ToString());
    std::printf("\ntrace %llu\n-- client spans --\n",
                static_cast<unsigned long long>(trace_id));
    std::fputs(FilterSpansByTrace(obs::SpansJsonl(tracer), trace_id).c_str(),
               stdout);
    std::printf("-- server spans --\n");
    const std::string matched = FilterSpansByTrace(*server_spans, trace_id);
    if (matched.empty()) {
      std::printf("(none — is the server running with tracing enabled?)\n");
    } else {
      std::fputs(matched.c_str(), stdout);
    }
  }
  return 0;
}

int CmdTrace(const std::map<std::string, std::string>& flags) {
  net::Client client(ClientFromFlags(flags));
  auto text =
      client.FetchTrace(static_cast<size_t>(NumFlag(flags, "limit", 0)));
  if (!text.ok()) Die("trace: " + text.status().ToString());
  std::fwrite(text->data(), 1, text->size(), stdout);
  return 0;
}

int CmdScrape(const std::map<std::string, std::string>& flags) {
  net::Client client(ClientFromFlags(flags));
  auto text = client.ScrapeMetrics();
  if (!text.ok()) Die("scrape: " + text.status().ToString());
  std::fwrite(text->data(), 1, text->size(), stdout);
  return 0;
}

// One bench workload as a pure function of (exec, obs): returns a checksum
// over its outputs so every pass's result can be compared bit-for-bit
// against the serial reference (the determinism contract).
using ProfilePass =
    std::function<double(const exec::ExecContext&, const ObsContext&)>;

// table1: the 6-dataset x 5-model forecast-accuracy matrix, one cell per
// pool task (mirrors bench/table1_model_comparison.cpp at reduced scale).
ProfilePass MakeTable1Pass(double days, size_t epochs) {
  struct Dataset {
    TimeSeries train;
    std::vector<double> truth;
  };
  auto prepared = std::make_shared<std::vector<Dataset>>();
  const std::vector<std::pair<Region, NodeSize>> datasets = {
      {Region::kWestUs2, NodeSize::kSmall},
      {Region::kEastUs2, NodeSize::kSmall},
      {Region::kWestUs2, NodeSize::kMedium},
      {Region::kEastUs2, NodeSize::kMedium},
      {Region::kWestUs2, NodeSize::kLarge},
      {Region::kEastUs2, NodeSize::kLarge},
  };
  uint64_t seed = 100;
  for (const auto& [region, size] : datasets) {
    WorkloadConfig workload = RegionNodeProfile(region, size, seed++);
    workload.duration_days = days;
    auto generator = DieOnError(DemandGenerator::Create(workload), "workload");
    TimeSeries all = generator.GenerateBinned();
    auto [train, test] = all.Split(0.8);
    const size_t horizon = std::min<size_t>(120, test.size());
    std::vector<double> truth(
        test.values().begin(),
        test.values().begin() + static_cast<ptrdiff_t>(horizon));
    prepared->push_back({std::move(train), std::move(truth)});
  }
  auto models = std::make_shared<std::vector<ModelKind>>(
      std::vector<ModelKind>{ModelKind::kSsaPlus, ModelKind::kSsa,
                             ModelKind::kMwdn, ModelKind::kTst,
                             ModelKind::kInceptionTime});
  ForecastParams params;
  params.window = 96;
  params.horizon = 48;
  params.epochs = epochs;
  params.stride = 32;
  params.batch_size = 8;
  params.alpha_prime = 0.5;
  params.seed = 7;
  return [prepared, models, params](const exec::ExecContext& exec,
                                    const ObsContext& obs) {
    const auto maes = exec::ParallelMap(
        exec, prepared->size() * models->size(),
        [&](size_t cell) {
          const Dataset& d = (*prepared)[cell / models->size()];
          ForecastParams p = params;
          p.obs = obs;
          auto forecaster = DieOnError(
              CreateForecaster((*models)[cell % models->size()], p), "create");
          if (Status s = forecaster->Fit(d.train); !s.ok()) {
            Die("fit: " + s.ToString());
          }
          auto prediction =
              DieOnError(forecaster->Forecast(d.truth.size()), "forecast");
          return DieOnError(Mae(d.truth, prediction), "mae");
        },
        {.label = "profile.table1_cell"});
    double sum = 0;
    for (double v : maes) sum += v;
    return sum;
  };
}

// fig5: tradeoff-grid sweeps — per model a grid of (loss alpha', SAA
// alpha') full pipeline runs, each grid point one pool task (mirrors
// bench/fig5_pareto.cpp's quick grid).
ProfilePass MakeFig5Pass(double days, size_t epochs) {
  WorkloadConfig workload =
      RegionNodeProfile(Region::kEastUs2, NodeSize::kMedium, 21);
  workload.hourly_spike_requests = 25.0;
  workload.duration_days = days;
  auto generator = DieOnError(DemandGenerator::Create(workload), "workload");
  TimeSeries all = generator.GenerateBinned();
  auto [train_ts, eval_full] = all.Split(0.8);
  const size_t eval_bins = std::min<size_t>(240, eval_full.size());
  auto eval = std::make_shared<TimeSeries>(
      eval_full.Slice(eval_full.size() - eval_bins, eval_full.size()));
  // Training prefix extends to the eval window's edge (no lookahead).
  std::vector<double> pre(train_ts.values());
  for (size_t i = 0; i + eval_bins < eval_full.size(); ++i) {
    pre.push_back(eval_full.value(i));
  }
  auto train = std::make_shared<TimeSeries>(
      train_ts.start(), train_ts.interval(), std::move(pre));

  return [train, eval, epochs](const exec::ExecContext& exec,
                               const ObsContext& obs) {
    double sum = 0;
    for (ModelKind model :
         {ModelKind::kBaseline, ModelKind::kSsa, ModelKind::kSsaPlus}) {
      const std::vector<double> loss_alphas =
          model == ModelKind::kBaseline ? std::vector<double>{0.5, 1.0}
                                        : std::vector<double>{0.5, 0.9};
      const std::vector<double> saa_alphas = {0.5, 0.1};
      std::vector<std::pair<double, double>> grid;
      for (double loss_alpha : loss_alphas) {
        for (double saa_alpha : saa_alphas) {
          grid.emplace_back(loss_alpha, saa_alpha);
        }
      }
      std::vector<double> scores(grid.size());
      exec::ParallelFor(
          exec, 0, grid.size(),
          [&](size_t lo, size_t hi) {
            for (size_t idx = lo; idx < hi; ++idx) {
              const auto [loss_alpha, saa_alpha] = grid[idx];
              PipelineConfig config;
              config.kind = PipelineKind::k2Step;
              config.model = model;
              config.obs = obs;
              config.forecast.window = 144;
              config.forecast.horizon = 120;
              config.forecast.epochs = epochs;
              config.forecast.stride = 48;
              config.forecast.batch_size = 8;
              config.recommendation_bins = eval->size();
              config.saa.pool.tau_bins = 3;
              config.saa.pool.stableness_bins = 10;
              config.saa.pool.max_pool_size = 500;
              config.saa.alpha_prime = saa_alpha;
              if (model == ModelKind::kBaseline) {
                config.forecast.gamma = loss_alpha;
              } else {
                config.forecast.alpha_prime = loss_alpha;
              }
              auto engine = DieOnError(RecommendationEngine::Create(config),
                                       "engine");
              auto rec = DieOnError(engine.Run(*train), "pipeline");
              auto metrics = DieOnError(
                  EvaluateSchedule(*eval, rec.pool_size_per_bin,
                                   config.saa.pool),
                  "evaluate");
              scores[idx] = metrics.avg_wait_seconds_capped +
                            metrics.idle_cluster_seconds * 1e-6;
            }
          },
          {.label = "profile.tradeoff_grid"});
      for (double s : scores) sum += s;
    }
    return sum;
  };
}

int CmdProfile(const std::map<std::string, std::string>& flags) {
  const std::string bench = FlagOr(flags, "bench", "table1");
  const size_t threads = static_cast<size_t>(NumFlag(flags, "threads", 4));
  if (threads == 0) Die("profile needs --threads >= 1 (the pool under test)");
  const int repeat = std::max(1, static_cast<int>(NumFlag(flags, "repeat", 3)));
  const double days = NumFlag(flags, "days", 1.0);
  const size_t epochs =
      std::max<size_t>(1, static_cast<size_t>(NumFlag(flags, "epochs", 2)));
  const double gate_pct = NumFlag(flags, "max-overhead-pct", 3.0);

  ProfilePass run_pass;
  if (bench == "table1") {
    run_pass = MakeTable1Pass(days, epochs);
  } else if (bench == "fig5") {
    run_pass = MakeFig5Pass(days, epochs);
  } else {
    Die("unknown --bench '" + bench + "' (use table1 or fig5)");
  }

  // Serial reference: no pool, no observability.
  const double serial_begin = MonotonicSeconds();
  const double serial_checksum = run_pass({}, {});
  const double serial_seconds = MonotonicSeconds() - serial_begin;

  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  exec::TaskProfiler profiler;
  profiler.AttachMetrics(&registry);
  // The pool is declared after the instruments so it is destroyed first: a
  // ParallelFor returns when its chunks are done, but its driver tasks can
  // still be winding down, and a straggler must never outlive the profiler
  // and registry it records into.
  exec::ThreadPool pool(threads);
  const exec::ExecContext exec{&pool};

  // Alternating untraced / traced+profiled parallel passes; min over the
  // repeats absorbs scheduler noise, interleaving absorbs thermal drift.
  double untraced_min = 1e300;
  double traced_min = 1e300;
  double traced_wall_last = 0.0;
  bool outputs_match = true;
  for (int r = 0; r < repeat; ++r) {
    double begin = MonotonicSeconds();
    const double untraced_checksum = run_pass(exec, {});
    untraced_min = std::min(untraced_min, MonotonicSeconds() - begin);
    pool.Wait();  // drain driver stragglers before attaching the profiler

    profiler.Clear();  // keep only the final pass's timeline
    pool.AttachProfiler(&profiler);
    begin = MonotonicSeconds();
    const double traced_checksum =
        run_pass(exec, ObsContext{&registry, &tracer});
    traced_wall_last = MonotonicSeconds() - begin;
    traced_min = std::min(traced_min, traced_wall_last);
    // Quiesce before detaching: driver tasks submitted by the traced pass
    // may still be winding down, and they record into the profiler.
    pool.Wait();
    pool.AttachProfiler(nullptr);

    outputs_match = outputs_match && untraced_checksum == serial_checksum &&
                    traced_checksum == serial_checksum;
  }

  std::printf("profile %s: %zu threads, %d repeats\n", bench.c_str(), threads,
              repeat);
  std::printf("serial %.3fs | parallel untraced %.3fs (%.2fx) | "
              "traced+profiled %.3fs (%.2fx)\n",
              serial_seconds, untraced_min, serial_seconds / untraced_min,
              traced_min, serial_seconds / traced_min);
  std::printf("outputs %s\n", outputs_match
                                  ? "bit-identical across all passes"
                                  : "DIFFER ACROSS PASSES (bug!)");

  // Per-(label, kind) utilization breakdown of the last traced pass.
  const auto records = profiler.Records();
  struct Agg {
    size_t count = 0;
    size_t stolen = 0;
    double queue_seconds = 0;
    double run_seconds = 0;
  };
  std::map<std::pair<std::string, std::string>, Agg> by_label;
  double min_enqueue = 1e300;
  double max_end = 0;
  double chunk_run_seconds = 0;
  for (const auto& rec : records) {
    Agg& agg = by_label[{rec.label, exec::TaskKindToString(rec.kind)}];
    ++agg.count;
    agg.stolen += rec.stolen ? 1 : 0;
    agg.queue_seconds += rec.queue_seconds();
    agg.run_seconds += rec.run_seconds();
    min_enqueue = std::min(min_enqueue, rec.enqueue_seconds);
    max_end = std::max(max_end, rec.end_seconds);
    if (rec.kind == exec::TaskKind::kChunk) {
      chunk_run_seconds += rec.run_seconds();
    }
  }
  std::printf("\n%-24s %-6s %6s %7s %12s %12s\n", "label", "kind", "tasks",
              "stolen", "queue(ms)", "run(ms)");
  for (const auto& [key, agg] : by_label) {
    std::printf("%-24s %-6s %6zu %7zu %12.2f %12.2f\n", key.first.c_str(),
                key.second.c_str(), agg.count, agg.stolen,
                agg.queue_seconds * 1e3, agg.run_seconds * 1e3);
  }
  if (profiler.dropped() > 0) {
    std::printf("(%zu task records dropped: buffer full)\n",
                profiler.dropped());
  }

  // Reconcile the timeline against the wall clock: the records of the last
  // traced pass must span (enqueue of the first task .. end of the last)
  // within 5% of the measured wall, and the chunk run-time sum bounds the
  // executors' busy fraction.
  double coverage = 0.0;
  if (!records.empty() && traced_wall_last > 0.0) {
    coverage = (max_end - min_enqueue) / traced_wall_last;
    const double busy =
        chunk_run_seconds /
        (static_cast<double>(threads + 1) * traced_wall_last);
    std::printf("\ntimeline covers %.1f%% of the traced wall clock "
                "(%s within 5%%); executors %.1f%% busy on chunk bodies\n",
                100.0 * coverage, std::abs(coverage - 1.0) <= 0.05 ? "OK:" :
                "NOT", 100.0 * busy);
  } else {
    std::printf("\nno task records captured — is the pool idle?\n");
  }

  // The overhead gate: tracing + profiling must stay within --max-overhead-
  // pct of the untraced pass (<= 0 disables). Written as JSON either way so
  // CI keeps a history.
  const double overhead_pct =
      untraced_min > 0.0 ? 100.0 * (traced_min - untraced_min) / untraced_min
                         : 0.0;
  const bool gate_enabled = gate_pct > 0.0;
  const bool gate_pass = !gate_enabled || overhead_pct <= gate_pct;
  std::printf("\nobs overhead: %+.2f%% (gate %s%.1f%%): %s\n", overhead_pct,
              gate_enabled ? "<= " : "disabled at ", gate_pct,
              gate_pass ? "PASS" : "FAIL");
  WriteTextTo(
      FlagOr(flags, "overhead-out", "BENCH_obs_overhead.json"),
      StrFormat("{\"benchmark\":\"profile_%s\",\"threads\":%zu,"
                "\"repeat\":%d,\"serial_seconds\":%.6f,"
                "\"untraced_seconds\":%.6f,\"traced_seconds\":%.6f,"
                "\"overhead_pct\":%.3f,\"gate_pct\":%.3f,"
                "\"timeline_coverage\":%.4f,\"outputs_match\":%s,"
                "\"pass\":%s}\n",
                bench.c_str(), threads, repeat, serial_seconds, untraced_min,
                traced_min, overhead_pct, gate_pct, coverage,
                outputs_match ? "true" : "false",
                gate_pass ? "true" : "false"));

  if (auto it = flags.find("tasks-out"); it != flags.end()) {
    WriteTextTo(it->second, exec::TaskTimelineJsonl(profiler));
  }
  if (auto it = flags.find("trace-out"); it != flags.end()) {
    WriteTextTo(it->second, obs::SpansJsonl(tracer));
  }
  if (auto it = flags.find("metrics-out"); it != flags.end()) {
    pool.PublishTo(&registry);
    tracer.PublishTo(&registry);
    WriteTextTo(it->second, obs::PrometheusText(registry));
  }
  return gate_pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: ipool_cli <generate|recommend|evaluate|simulate|"
                 "sweep|tune|loop|serve|get|publish|scrape|trace|profile> "
                 "[--flag value ...]\n"
                 "  tune:    --demand demand.csv | --profile regime-shift"
                 " [--models baseline,ssa,ssa+] [--alphas ...]\n"
                 "           [--windows 48,96] [--rungs 3] [--eval-bins 120]"
                 " [--hysteresis 5] [--threads 0] [--repeat 1]\n"
                 "  serve:   --port 7070 --threads 4 --drain-timeout 5\n"
                 "           (plus --profile/--demand/--model/--key/"
                 "--max-seconds)\n"
                 "           --loop-interval 5 runs the live control plane "
                 "(--min-history 64, --warm-refit 1, --history-bins 480)\n"
                 "           --tune-interval T adds the fleet auto-tuner "
                 "(--tune-models, --tune-alphas, --tune-windows, ...)\n"
                 "  get:     --port 7070 [--host 127.0.0.1] --key east-medium"
                 " [--trace 1] [--raw 1]\n"
                 "  publish: --port 7070 --metric demand.POOL [--start 0]"
                 " [--interval 30] [--count N --value V | --values v0,v1,..]\n"
                 "  scrape:  --port 7070 [--host 127.0.0.1]\n"
                 "  trace:   --port 7070 [--limit 256]\n"
                 "  profile: --bench table1|fig5 --threads 4 [--repeat 3]"
                 " [--max-overhead-pct 3]\n");
    return 1;
  }
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2, command);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "recommend") return CmdRecommend(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "simulate") return CmdSimulate(flags);
  if (command == "sweep") return CmdSweep(flags);
  if (command == "tune") return CmdTune(flags);
  if (command == "loop") return CmdLoop(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "get") return CmdGet(flags);
  if (command == "publish") return CmdPublish(flags);
  if (command == "scrape") return CmdScrape(flags);
  if (command == "trace") return CmdTrace(flags);
  if (command == "profile") return CmdProfile(flags);
  Die("unknown command: " + command);
}
