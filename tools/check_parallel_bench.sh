#!/usr/bin/env bash
# CI gate over BENCH_parallel.json (ROADMAP item 1): every record of the
# current run must hold speedup >= 1.0 and outputs_match == true, and the
# flagship benches must clear their speedup floors at 4 threads:
#   table1_model_comparison >= 3.0
#   fig5_pareto             >= 3.0
#   fig6_training_time      >= 1.5
#
# The floors only bind when the machine can actually run the requested
# threads in parallel (hw_threads >= threads). On an oversubscribed host —
# e.g. a 1-core dev container running `--threads 4` — a wall-clock speedup
# is physically impossible and the OS timeslicing between N+1 executors
# adds noisy scheduling overhead (measured 0.75-0.93x run to run), so the
# gate degrades to "no real regression": speedup >= 0.70 and outputs_match
# still required. CI runners are multi-core, so the full floors apply there.
#
# Usage: check_parallel_bench.sh [BENCH_parallel.json]
set -u

FILE="${1:-BENCH_parallel.json}"
if [ ! -s "$FILE" ]; then
  echo "check_parallel_bench: $FILE missing or empty" >&2
  exit 1
fi

fail=0
lineno=0
while IFS= read -r line; do
  lineno=$((lineno + 1))
  [ -z "$line" ] && continue

  field() {
    printf '%s\n' "$line" | sed -n "s/.*\"$1\":\([^,}]*\).*/\1/p" | tr -d '"'
  }
  bench=$(field benchmark)
  threads=$(field threads)
  speedup=$(field speedup)
  match=$(field outputs_match)
  hw=$(field hw_threads)
  [ -z "$hw" ] && hw=$threads  # pre-field records: assume floors apply

  if [ "$match" != "true" ]; then
    echo "FAIL line $lineno: $bench outputs_match=$match (determinism broken)" >&2
    fail=1
    continue
  fi

  floor="1.0"
  if [ "$hw" -ge "$threads" ]; then
    case "$bench" in
      table1_model_comparison) floor="3.0" ;;
      fig5_pareto) floor="3.0" ;;
      fig6_training_time) floor="1.5" ;;
    esac
  else
    floor="0.70"  # oversubscribed host: parallel must not regress materially
  fi

  if ! awk -v s="$speedup" -v f="$floor" 'BEGIN { exit !(s >= f) }'; then
    echo "FAIL line $lineno: $bench speedup $speedup < floor $floor" \
         "(threads=$threads hw_threads=$hw)" >&2
    fail=1
  else
    echo "ok   line $lineno: $bench speedup $speedup >= $floor" \
         "(threads=$threads hw_threads=$hw)"
  fi
done < "$FILE"

if [ "$fail" -ne 0 ]; then
  echo "check_parallel_bench: gate FAILED for $FILE" >&2
  exit 1
fi
echo "check_parallel_bench: all records pass"
