// Table 1 / §7.2: forecast MAE of the five models (SSA+, SSA, mWDN, TST,
// InceptionTime) on six datasets (two regions x three node sizes), 80/20
// train-test split, multi-step-ahead prediction.
//
// Paper (Table 1): mWDN best on average (4.59), then IncpT (4.73), TST
// (4.79), SSA+ (4.91), SSA worst (5.78). Absolute MAEs depend on the traces;
// the reproduction targets the *ordering*: deep models and the hybrid beat
// plain SSA on average, and busier datasets (Small node pools, West US 2)
// have larger errors.
#include <map>

#include "bench/bench_util.h"
#include "forecast/forecaster.h"

int main(int argc, char** argv) {
  using namespace ipool;
  using namespace ipool::bench;
  PrintHeader("Table 1: model comparison (MAE, lower is better)",
              "Paper averages: mWDN 4.59 < IncpT 4.73 < TST 4.79 < SSA+ 4.91 "
              "< SSA 5.78.");

  const bool quick = QuickMode();
  // Paper: 14 days of history, 1200-step horizon, window 150. Scaled to the
  // single-core budget: 2 days (1 in quick mode), 240-step eval horizon,
  // window 96.
  const double days = quick ? 1.0 : 2.0;
  const size_t eval_bins = quick ? 120 : 240;

  const std::vector<std::pair<Region, NodeSize>> datasets = {
      {Region::kWestUs2, NodeSize::kSmall}, {Region::kEastUs2, NodeSize::kSmall},
      {Region::kWestUs2, NodeSize::kMedium}, {Region::kEastUs2, NodeSize::kMedium},
      {Region::kWestUs2, NodeSize::kLarge}, {Region::kEastUs2, NodeSize::kLarge},
  };
  const std::vector<ModelKind> models = {
      ModelKind::kSsaPlus, ModelKind::kSsa, ModelKind::kMwdn, ModelKind::kTst,
      ModelKind::kInceptionTime};

  ForecastParams params;
  params.window = 96;
  params.horizon = 48;
  params.epochs = quick ? 2 : 4;
  params.stride = quick ? 32 : 16;
  params.batch_size = 8;
  params.alpha_prime = 0.5;  // symmetric: Table 1 measures pure accuracy
  params.seed = 7;

  // Per-dataset train/truth windows, generated once and shared by the
  // serial table pass and the fanned-out parallel pass.
  struct Dataset {
    std::string label;
    TimeSeries train;
    std::vector<double> truth;
  };
  std::vector<Dataset> prepared;
  uint64_t seed = 100;
  for (const auto& [region, size] : datasets) {
    WorkloadConfig workload = RegionNodeProfile(region, size, seed++);
    workload.duration_days = days;
    auto generator = CheckOk(DemandGenerator::Create(workload), "workload");
    TimeSeries all = generator.GenerateBinned();
    // 80/20 split; evaluate the first eval_bins of the test window.
    auto [train, test] = all.Split(0.8);
    const size_t horizon = std::min(eval_bins, test.size());
    std::vector<double> truth(test.values().begin(),
                              test.values().begin() + static_cast<ptrdiff_t>(horizon));
    prepared.push_back({RegionToString(region) + " / " + NodeSizeToString(size),
                        std::move(train), std::move(truth)});
  }

  // One dataset x model cell: fit, forecast, score. Seeded training makes
  // each cell a pure function of its inputs, so the parallel pass must
  // reproduce the serial numbers bit for bit.
  auto eval_cell = [&](size_t di, size_t mi) {
    const Dataset& d = prepared[di];
    auto forecaster = CheckOk(CreateForecaster(models[mi], params), "create");
    CheckOk(forecaster->Fit(d.train), "fit");
    auto prediction = CheckOk(forecaster->Forecast(d.truth.size()), "forecast");
    return std::pair<double, double>(CheckOk(Mae(d.truth, prediction), "mae"),
                                     CheckOk(Rmse(d.truth, prediction), "rmse"));
  };

  // The paper reports both MAE and RMSE; collect both per cell.
  std::map<ModelKind, double> total_mae;
  std::map<ModelKind, double> total_rmse;
  std::vector<std::string> row_labels;
  std::vector<std::vector<double>> mae_rows;
  std::vector<std::vector<double>> rmse_rows;
  // Measured per-cell serial times seed the parallel pass's cost model: the
  // deep-model cells cost ~10x the SSA cells, and cost-weighted chunks keep
  // that skew from serializing the fan-out behind one hot chunk.
  std::vector<double> cell_costs(prepared.size() * models.size(), 0.0);
  WallTimer serial_timer;
  for (size_t di = 0; di < prepared.size(); ++di) {
    row_labels.push_back(prepared[di].label);
    mae_rows.emplace_back();
    rmse_rows.emplace_back();
    for (size_t mi = 0; mi < models.size(); ++mi) {
      WallTimer cell_timer;
      const auto [mae, rmse] = eval_cell(di, mi);
      cell_costs[di * models.size() + mi] = cell_timer.Seconds();
      total_mae[models[mi]] += mae;
      total_rmse[models[mi]] += rmse;
      mae_rows.back().push_back(mae);
      rmse_rows.back().push_back(rmse);
    }
  }
  const double serial_seconds = serial_timer.Seconds();

  auto print_table = [&](const char* metric,
                         const std::vector<std::vector<double>>& rows,
                         std::map<ModelKind, double>& totals) {
    std::printf("\n%s\n%-22s", metric, "Dataset");
    for (ModelKind m : models) {
      std::printf(" %8s", ModelKindToString(m).c_str());
    }
    std::printf("\n");
    for (size_t r = 0; r < rows.size(); ++r) {
      std::printf("%-22s", row_labels[r].c_str());
      for (double v : rows[r]) std::printf(" %8.2f", v);
      std::printf("\n");
    }
    std::printf("%-22s", "Average");
    for (ModelKind m : models) {
      std::printf(" %8.2f", totals[m] / static_cast<double>(datasets.size()));
    }
    std::printf("\n");
  };
  print_table("MAE (lower is better):", mae_rows, total_mae);
  print_table("RMSE (lower is better):", rmse_rows, total_rmse);

  // Parallel pass: all dataset x model cells fanned out over the pool,
  // scores checked for exact equality against the serial table.
  const size_t threads = ThreadsOption(argc, argv);
  if (threads > 0) {
    exec::ThreadPool pool(threads);
    const exec::ExecContext exec{&pool};
    exec::TaskProfiler profiler;
    pool.AttachProfiler(&profiler);
    WallTimer parallel_timer;
    const auto redo = exec::ParallelMap(
        exec, prepared.size() * models.size(),
        [&](size_t cell) {
          return eval_cell(cell / models.size(), cell % models.size());
        },
        {.label = "bench.table1_cells", .costs = cell_costs.data()});
    const double parallel_seconds = parallel_timer.Seconds();
    pool.Wait();
    pool.AttachProfiler(nullptr);
    bool match = true;
    for (size_t cell = 0; cell < redo.size(); ++cell) {
      const size_t di = cell / models.size();
      const size_t mi = cell % models.size();
      match = match && redo[cell].first == mae_rows[di][mi] &&
              redo[cell].second == rmse_rows[di][mi];
    }
    ParallelBenchRecord record;
    record.benchmark = "table1_model_comparison";
    record.threads = threads;
    record.serial_seconds = serial_seconds;
    record.parallel_seconds = parallel_seconds;
    record.outputs_match = match;
    record.chunking = "cost";
    record.grain = 1;
    record.queue_wait_over_run = QueueWaitOverRun(profiler.Records());
    PrintParallelSummary(record);
    AppendParallelBench(record);
  }
  std::printf("\nExpected orderings: (1) trainable models (mWDN/TST/IncpT/SSA+)"
              " <= plain SSA on\naverage; (2) Small-node (busiest) datasets "
              "have the largest MAE, Large the smallest;\n(3) West US 2 "
              "(noisier) >= East US 2 at equal node size.\n");
  return 0;
}
