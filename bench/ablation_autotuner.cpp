// §6 (ablation): the self-adaptive hyper-parameter tuner closes the loop
// between the observed wait time and alpha'. Starting from a deliberately
// bad alpha', the tuner steers the system to the wait-time SLA within a few
// (simulated) days, with no engineering input.
#include "bench/bench_util.h"
#include "tuning/auto_tuner.h"

int main() {
  using namespace ipool;
  using namespace ipool::bench;
  PrintHeader("Ablation: auto-tuning alpha' toward a wait-time SLA (§6)",
              "Paper: a piece-wise-linear fit over the last 10 observations "
              "iteratively tunes alpha' to the SLA.");

  const double target_wait = 2.0;  // seconds, average
  AutoTunerConfig tuner_config;
  tuner_config.target_wait_seconds = target_wait;
  tuner_config.initial_alpha = 0.9;  // way too stingy: long waits at first
  auto tuner = CheckOk(AutoTuner::Create(tuner_config), "tuner");

  PoolModelConfig pool = EvalPool();
  std::printf("\nSLA: average wait <= %.1f s. Starting alpha' = %.2f\n\n",
              target_wait, tuner_config.initial_alpha);
  std::printf("%6s %8s %14s %12s %12s\n", "day", "alpha'", "avg wait(s)",
              "hit rate", "idle (h)");

  double alpha = tuner.alpha();
  double final_wait = 0.0;
  const size_t days = QuickMode() ? 10 : 20;
  for (size_t day = 0; day < days; ++day) {
    // Each simulated day: plan on yesterday's demand with the current
    // alpha', observe the wait on today's demand, feed the tuner.
    WorkloadConfig workload = RegionNodeProfile(Region::kEastUs2,
                                                NodeSize::kMedium,
                                                100 + day);
    workload.duration_days = 2.0;
    auto generator = CheckOk(DemandGenerator::Create(workload), "workload");
    TimeSeries both = generator.GenerateBinned();
    auto [yesterday, today] = both.Split(0.5);

    SaaConfig saa;
    saa.pool = pool;
    saa.alpha_prime = alpha;
    auto optimizer = CheckOk(SaaOptimizer::Create(saa), "saa");
    PoolSchedule schedule =
        CheckOk(optimizer.Optimize(MaxFilter(yesterday, 10)), "optimize");
    auto metrics = CheckOk(
        EvaluateSchedule(today, schedule.pool_size_per_bin, pool), "eval");

    std::printf("%6zu %8.3f %14.2f %11.1f%% %12.2f\n", day, alpha,
                metrics.avg_wait_seconds_capped, 100.0 * metrics.hit_rate,
                metrics.idle_cluster_seconds / 3600.0);
    final_wait = metrics.avg_wait_seconds_capped;
    alpha = tuner.Observe(alpha, metrics.avg_wait_seconds_capped);
  }

  std::printf("\nFinal: alpha' = %.3f, wait %.2f s vs SLA %.1f s — the loop "
              "converges without\nmanual tuning (day-to-day noise comes from "
              "fresh demand realizations).\n",
              alpha, final_wait, target_wait);
  return 0;
}
