// Figure 7 / §7.5: raw versus max-filtered demand. The SMOOTHING FACTOR
// widens ("fattens") demand spikes before ML training so the predicted pool
// size stays raised long enough around irregular surges.
#include "bench/bench_util.h"

int main() {
  using namespace ipool;
  using namespace ipool::bench;
  PrintHeader("Figure 7: raw vs max-filtered demand (Eq 18)",
              "Paper: the max filter produces 'fatter' spikes; peaks are "
              "preserved, width grows with SF.");

  WorkloadConfig workload = SpikyRegionProfile(/*seed=*/55);
  workload.duration_days = 0.5;
  auto generator = CheckOk(DemandGenerator::Create(workload), "workload");
  TimeSeries raw = generator.GenerateBinned();

  const std::vector<size_t> factors = {4, 10, 20};
  std::vector<TimeSeries> filtered;
  for (size_t sf : factors) filtered.push_back(MaxFilter(raw, sf));

  // Locate the biggest spike and print the surrounding window.
  size_t peak = 0;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw.value(i) > raw.value(peak)) peak = i;
  }
  const size_t begin = peak >= 15 ? peak - 15 : 0;
  const size_t end = std::min(raw.size(), peak + 16);
  std::printf("\nDemand around the largest spike (bin %zu):\n", peak);
  std::printf("%8s %8s", "bin", "raw");
  for (size_t sf : factors) std::printf("   SF=%-4zu", sf);
  std::printf("\n");
  for (size_t i = begin; i < end; ++i) {
    std::printf("%8zu %8.0f", i, raw.value(i));
    for (const TimeSeries& f : filtered) std::printf(" %8.0f", f.value(i));
    std::printf("\n");
  }

  // Quantify: spike width (bins above half the peak) grows with SF while the
  // peak value is preserved exactly.
  auto width_above = [&](const TimeSeries& ts, double level) {
    size_t width = 0;
    for (size_t i = begin; i < end; ++i) {
      if (ts.value(i) >= level) ++width;
    }
    return width;
  };
  const double half_peak = raw.value(peak) / 2.0;
  std::printf("\n%10s %12s %12s\n", "series", "peak", "width>=peak/2");
  std::printf("%10s %12.0f %12zu\n", "raw", raw.Max(), width_above(raw, half_peak));
  for (size_t i = 0; i < factors.size(); ++i) {
    std::printf("%9s%zu %12.0f %12zu\n", "SF=", factors[i], filtered[i].Max(),
                width_above(filtered[i], half_peak));
  }
  std::printf("\nThe peak is identical in every row (max filter) while the "
              "spike fattens with SF —\nexactly the Figure 7 picture.\n");
  return 0;
}
