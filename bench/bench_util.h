// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures. Each bench binary prints the series/rows of one
// table or figure plus a short "paper says / we measure" note; absolute
// numbers differ (synthetic traces, laptop substrate) but orderings and
// crossovers should match. See EXPERIMENTS.md.
#ifndef IPOOL_BENCH_BENCH_UTIL_H_
#define IPOOL_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/strings.h"
#include "core/recommendation_engine.h"
#include "exec/task_profiler.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "solver/pool_model.h"
#include "solver/saa_optimizer.h"
#include "tsdata/metrics.h"
#include "tsdata/smoothing.h"
#include "tsdata/time_series.h"
#include "workload/demand_generator.h"

namespace ipool::bench {

/// Aborts with a message if a Status/Result is an error: benches have no
/// recovery story, a failed setup should be loud.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}
template <typename T>
T CheckOk(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Wall-clock timer for training-latency measurements (Fig 6, §7.4).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// True when the environment asks for a fast, reduced-scale pass
/// (IPOOL_QUICK=1). The printed note reports which mode ran.
inline bool QuickMode() {
  const char* env = std::getenv("IPOOL_QUICK");
  return env != nullptr && env[0] == '1';
}

inline void PrintHeader(const char* title, const char* paper_note) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title);
  std::printf("%s\n", paper_note);
  if (QuickMode()) std::printf("(IPOOL_QUICK=1: reduced scale)\n");
  std::printf("==================================================================\n");
}

/// The pool structure used throughout the evaluation section: 30 s bins,
/// tau = 90 s, 5 min STABLENESS.
inline PoolModelConfig EvalPool() {
  PoolModelConfig pool;
  pool.tau_bins = 3;
  pool.stableness_bins = 10;
  pool.min_pool_size = 0;
  pool.max_pool_size = 500;
  return pool;
}

/// A fitted-forecast evaluation split: fit on `train`, score the schedule
/// produced for the `eval` window against the actual `eval` demand.
struct TrainEvalSplit {
  TimeSeries train;
  TimeSeries eval;
};

inline TrainEvalSplit MakeSplit(const WorkloadConfig& config,
                                double train_fraction = 0.8) {
  auto generator = CheckOk(DemandGenerator::Create(config), "workload");
  TimeSeries all = generator.GenerateBinned();
  auto [train, eval] = all.Split(train_fraction);
  return {std::move(train), std::move(eval)};
}

/// Smallest static pool whose evaluated metric meets `predicate`; returns
/// (size, metrics) or size = -1 when none does.
template <typename Predicate>
std::pair<int64_t, PoolMetrics> SmallestStaticPool(
    const TimeSeries& demand, const PoolModelConfig& pool,
    Predicate predicate) {
  for (int64_t n = 0; n <= pool.max_pool_size; ++n) {
    std::vector<int64_t> schedule(demand.size(), n);
    auto metrics = EvaluateSchedule(demand, schedule, pool);
    if (metrics.ok() && predicate(*metrics)) return {n, *metrics};
  }
  return {-1, PoolMetrics{}};
}

/// One evaluated (loss knob, SAA knob) grid point of a Fig-5-style sweep.
struct CurvePoint {
  double loss_alpha;  // Eq 12 training knob (gamma for the baseline)
  double saa_alpha;   // Eq 16 optimizer knob
  PoolMetrics metrics;
};

/// Keeps only Pareto-dominant points: sorted by wait, strictly decreasing
/// idle.
std::vector<CurvePoint> ParetoFront(std::vector<CurvePoint> points);

/// The (Eq 12 loss alpha', SAA alpha') grid SweepTradeoffGrid evaluates for
/// `model` (baselines sweep gamma instead of alpha'; IPOOL_QUICK shrinks the
/// grid). Exposed so benches can flatten several sweeps into one fan-out.
std::vector<std::pair<double, double>> TradeoffGridPoints(ModelKind model);

/// Runs the full pipeline for one tradeoff grid point — fit on `train`,
/// recommend, score against `eval` — and returns the evaluated point.
CurvePoint EvalTradeoffPoint(ModelKind model, PipelineKind pipeline,
                             const TimeSeries& train, const TimeSeries& eval,
                             double loss_alpha, double saa_alpha);

/// Evaluates a grid of (Eq 12 loss alpha', SAA alpha') combinations for one
/// model and pipeline — the paper examines "various combinations of penalty
/// values" — scoring each emitted schedule against `eval`. Returns the
/// Pareto-dominant points. Grid points are independent full pipeline runs,
/// so they fan out over `exec`'s pool when one is wired in; the front is
/// bit-identical to the serial sweep.
std::vector<CurvePoint> SweepTradeoffGrid(ModelKind model,
                                          PipelineKind pipeline,
                                          const TimeSeries& train,
                                          const TimeSeries& eval,
                                          const exec::ExecContext& exec = {});

/// Threads requested for a bench binary's parallel pass: `--threads N` (or
/// `--threads=N`) first, the IPOOL_THREADS env var as fallback. 0 (the
/// default) keeps the bench serial-only.
size_t ThreadsOption(int argc, char** argv);

/// One serial-vs-parallel comparison of a bench binary: total wall-clock of
/// the serial and the fanned-out pass plus whether the parallel pass
/// reproduced the serial outputs exactly (the determinism contract). The
/// decomposition fields make regressions diagnosable from the artifact
/// alone: `chunking` / `grain` record how the fan-out was split,
/// `queue_wait_over_run` is the profiler's chunk queue-wait over run-time
/// ratio (≫1 means executors outnumber useful chunks — the PR-5 failure
/// mode), and `hw_threads` is the machine's hardware concurrency (a
/// `threads` > `hw_threads` run cannot exceed ~1× no matter the split).
struct ParallelBenchRecord {
  std::string benchmark;
  size_t threads = 0;
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  bool outputs_match = false;
  std::string chunking = "dynamic";  // "dynamic", "static" or "cost"
  size_t grain = 1;
  double queue_wait_over_run = 0.0;
  size_t hw_threads = 0;  // filled by AppendParallelBench when left 0
};

/// Sum of chunk queue-wait over sum of chunk run-time across `records`
/// (TaskKind::kChunk only); 0 when nothing was recorded. Feed it a
/// TaskProfiler attached around the parallel pass.
double QueueWaitOverRun(const std::vector<exec::TaskRecord>& records);

/// Appends the record (one JSON object per line, speedup included) to the
/// file named by IPOOL_BENCH_JSON, default "BENCH_parallel.json" in the
/// working directory.
void AppendParallelBench(const ParallelBenchRecord& record);

/// Prints the serial/parallel wall-clocks and speedup recorded above (the
/// human-readable tail of a `--threads N` run).
void PrintParallelSummary(const ParallelBenchRecord& record);

/// Prints one line per obs histogram (count, p50/p95/p99, max in ms) plus
/// counters — the per-phase breakdown of a bench run whose configs were
/// wired with an ObsContext pointing at `registry`.
void PrintPhaseBreakdown(const obs::MetricsRegistry& registry);

/// The Fig-5 / Table-2 evaluation workload: a business-hours region with
/// strong top-of-hour scheduler surges, split into a training prefix and the
/// last `eval_bins` (evening ramp-down) for scoring.
struct TradeoffDataset {
  TimeSeries train;
  TimeSeries eval;
};
TradeoffDataset MakeTradeoffDataset(uint64_t seed);

}  // namespace ipool::bench

#endif  // IPOOL_BENCH_BENCH_UTIL_H_
