// Load generator for the ipool serving layer: hammers GetRecommendation
// (plus a telemetry/health side-channel) over loopback TCP and reports
// sustained throughput and client-observed p50/p95/p99 latency.
//
// Default mode hosts the server in-process on an ephemeral port — the
// self-contained serving benchmark. With `--port P` (and optionally
// `--host H`) it drives an external `ipool_cli serve` instead, which is
// what the CI serving-smoke job does.
//
//   loadgen [--clients 4] [--server-threads 4] [--seconds 5]
//           [--port 0] [--host 127.0.0.1] [--key east-medium]
//           [--publish-every 64] [--publish-pct 0] [--inflight 64]
//           [--pools 1] [--zipf 0] [--shards 16] [--pipeline 1]
//
// `--publish-pct P` (0 < P < 100) switches to the mixed read/write
// scenario: P percent of each client's requests are PublishTelemetry
// appends to its own `demand.loadgen-<client>` stream (30 s virtual bins —
// the streams a `serve --loop-interval` live loop consumes as pools), the
// rest GetRecommendation reads. Records append to BENCH_serving.json with a
// `scenario` field, so mixed runs sit alongside the read-mostly baseline
// instead of replacing it.
//
// `--pools N` (N > 1) is the sharded-serving stress scenario (ROADMAP item
// 2): the in-process server seeds N documents `pool-0000..` and every read
// picks its key from a Zipf(`--zipf S`) distribution over them (pool-0000
// hottest; S = 0 is uniform). `--shards` sets the shard count of the
// in-process sharded stores — sweeping it (1/4/16) under a fixed workload
// is how BENCH_serving.json shows lock contention falling out of the read
// path. `--pipeline W` keeps W requests in flight per connection (one
// write + one drain per window), which lifts the per-request syscall tax
// enough that the store, not the client loop, is what's being measured;
// keep W at or below the server's --inflight budget. Latency quantiles in
// pipelined runs are per-window round trips, not per-request.
//
// Every completed run appends a JSON record (throughput, latency quantiles,
// shed/error counts) to BENCH_serving.json (IPOOL_BENCH_SERVING_JSON
// overrides the path) and exits non-zero if any client or server protocol
// error was observed — the bench doubles as the protocol-correctness gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/recommendation_engine.h"
#include "exec/thread_pool.h"
#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "service/recommendation_io.h"
#include "service/sharded_document_store.h"
#include "service/sharded_telemetry_store.h"
#include "workload/demand_generator.h"

namespace ipool::bench {
namespace {

double ArgOr(int argc, char** argv, const char* name, double fallback) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return std::atof(argv[i + 1]);
  }
  return fallback;
}

std::string ArgOr(int argc, char** argv, const char* name,
                  const std::string& fallback) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return argv[i + 1];
  }
  return fallback;
}

double Quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Pulls `name value` (no labels) out of a Prometheus scrape; -1 if absent.
double ScrapedValue(const std::string& text, const std::string& name) {
  size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const size_t after = pos + name.size();
    if ((pos == 0 || text[pos - 1] == '\n') && after < text.size() &&
        text[after] == ' ') {
      return std::atof(text.c_str() + after + 1);
    }
    pos = after;
  }
  return -1.0;
}

struct WorkerResult {
  std::vector<double> latencies_seconds;
  uint64_t ok = 0;
  uint64_t failed = 0;
  net::ClientStats stats;
};

/// Zipf(s) sampler over [0, n): rank 0 is hottest; s = 0 degenerates to
/// uniform. Inverse-CDF over the precomputed normalized weights, shared
/// read-only by every client thread.
class ZipfPicker {
 public:
  ZipfPicker(size_t n, double s) : cdf_(n) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  size_t Pick(Rng& rng) const {
    const double u = rng.Uniform(0.0, 1.0);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

int Run(int argc, char** argv) {
  const bool quick = QuickMode();
  const size_t clients =
      static_cast<size_t>(ArgOr(argc, argv, "clients", quick ? 3 : 4));
  const size_t server_threads =
      static_cast<size_t>(ArgOr(argc, argv, "server-threads", 4));
  const double seconds =
      ArgOr(argc, argv, "seconds", quick ? 1.5 : 5.0);
  const uint16_t external_port =
      static_cast<uint16_t>(ArgOr(argc, argv, "port", 0));
  const std::string host = ArgOr(argc, argv, "host", "127.0.0.1");
  const std::string key = ArgOr(argc, argv, "key", "east-medium");
  // Every Nth request publishes a telemetry point instead of reading — the
  // write path stays warm without dominating the read benchmark.
  const uint64_t publish_every =
      static_cast<uint64_t>(ArgOr(argc, argv, "publish-every", 64));
  // Mixed read/write scenario: this percentage of requests publish (takes
  // precedence over --publish-every when set).
  const double publish_pct = ArgOr(argc, argv, "publish-pct", 0.0);
  if (publish_pct < 0.0 || publish_pct >= 100.0) {
    std::fprintf(stderr, "--publish-pct must be in [0, 100)\n");
    return 1;
  }
  // Sharded-serving stress scenario (see file comment).
  const size_t pools = static_cast<size_t>(ArgOr(argc, argv, "pools", 1));
  const double zipf_s = ArgOr(argc, argv, "zipf", 0.0);
  const size_t shards = static_cast<size_t>(ArgOr(argc, argv, "shards", 16));
  const size_t pipeline =
      static_cast<size_t>(ArgOr(argc, argv, "pipeline", 1));
  if (pools == 0 || pipeline == 0) {
    std::fprintf(stderr, "--pools and --pipeline must be >= 1\n");
    return 1;
  }
  if (pools > 1 && external_port != 0) {
    std::fprintf(stderr,
                 "--pools > 1 needs the in-process server (it seeds the "
                 "pool-NNNN documents)\n");
    return 1;
  }

  PrintHeader("Serving-layer load generator (ipool::net)",
              "Sustained loopback GetRecommendation throughput; the paper's "
              "control plane serves pooling workers at fleet scale (sec 7).");

  // In-process server unless an external one was named.
  obs::MetricsRegistry registry;
  ShardedDocumentStore documents(shards);
  ShardedTelemetryStore telemetry(shards);
  std::unique_ptr<exec::ThreadPool> pool;
  std::unique_ptr<net::Router> router;
  std::unique_ptr<net::Server> server;
  uint16_t port = external_port;
  if (external_port == 0) {
    WorkloadConfig workload = RegionNodeProfile(
        Region::kEastUs2, NodeSize::kMedium, /*seed=*/7);
    workload.duration_days = 1.0;
    auto generator = CheckOk(DemandGenerator::Create(workload), "workload");
    const TimeSeries demand = generator.GenerateBinned();
    PipelineConfig pipeline;  // SSA+ 2-step, the production default
    auto engine =
        CheckOk(RecommendationEngine::Create(pipeline), "engine");
    StoredRecommendation stored;
    stored.recommendation = CheckOk(engine.Run(demand), "recommend");
    stored.start_time = demand.TimeAt(demand.size() - 1) + demand.interval();
    stored.interval_seconds = demand.interval();
    const std::string serialized = SerializeRecommendation(stored);
    documents.Put(key, serialized, stored.start_time);
    // The multi-pool scenario serves the same document bytes under every
    // key: what varies per request is the shard the lookup routes to.
    if (pools > 1) {
      for (size_t p = 0; p < pools; ++p) {
        documents.Put(StrFormat("pool-%04zu", p), serialized,
                      stored.start_time);
      }
    }

    pool = std::make_unique<exec::ThreadPool>(server_threads);
    router = std::make_unique<net::Router>(
        net::RouterConfig{&documents, &telemetry, &registry});
    net::ServerConfig config;
    config.port = 0;
    config.pool = pool.get();
    config.max_inflight_per_conn =
        static_cast<size_t>(ArgOr(argc, argv, "inflight", 64));
    config.metrics = &registry;
    server = CheckOk(
        net::Server::Start(config,
                           [r = router.get()](const net::Frame& request) {
                             return r->Handle(request);
                           }),
        "server");
    port = server->port();
  }
  std::printf("target %s:%u, %zu clients, %zu server threads, %.1fs\n",
              host.c_str(), port, clients, server_threads, seconds);
  std::printf("shards %zu, pools %zu, zipf %.2f, pipeline window %zu\n\n",
              shards, pools, zipf_s, pipeline);

  // Fan out the client threads. Telemetry times must be non-decreasing per
  // metric, so each client publishes to its own metric stream.
  const std::unique_ptr<const ZipfPicker> zipf =
      pools > 1 ? std::make_unique<ZipfPicker>(pools, zipf_s) : nullptr;
  std::vector<WorkerResult> results(clients);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::ClientConfig config;
      config.host = host;
      config.port = port;
      config.jitter_seed = 1000 + c;
      WorkerResult& out = results[c];
      net::Client client(config);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::duration<double>(seconds);
      // The mixed scenario appends to `demand.*` streams (what a live loop
      // treats as pools); the read-mostly side channel keeps its own name.
      const std::string metric =
          publish_pct > 0.0 ? StrFormat("demand.loadgen-%zu", c)
                            : StrFormat("loadgen_client_%zu", c);
      Rng key_rng(2000 + c);
      const auto read_key = [&]() -> std::string {
        if (pools <= 1) return key;
        return StrFormat("pool-%04zu", zipf->Pick(key_rng));
      };
      uint64_t i = 0;
      double publish_time = 0.0;
      // Accumulator for the publish mix: adds pct/100 per request and
      // publishes each time it crosses 1, so the ratio holds exactly
      // without randomness.
      double publish_credit = 0.0;
      if (pipeline > 1) {
        // Pipelined mode: one window of requests per round trip. Publishes
        // within a window share one timestamp — the server may execute a
        // window's handlers in any order, and equal times are the one
        // ordering every interleaving satisfies. Windows are sequential, so
        // cross-window times stay non-decreasing.
        std::vector<net::PipelinedRequest> window(pipeline);
        while (std::chrono::steady_clock::now() < deadline) {
          bool published = false;
          for (auto& request : window) {
            bool publish = false;
            if (publish_pct > 0.0) {
              publish_credit += publish_pct / 100.0;
              publish = publish_credit >= 1.0;
              if (publish) publish_credit -= 1.0;
            } else {
              publish = publish_every != 0 && (i + 1) % publish_every == 0;
            }
            ++i;
            if (publish) {
              request.method = net::Method::kPublishTelemetry;
              request.payload =
                  StrFormat("%s,%.17g,1\n", metric.c_str(), publish_time);
              published = true;
            } else {
              request.method = net::Method::kGetRecommendation;
              request.payload = read_key();
            }
          }
          if (published) publish_time += publish_pct > 0.0 ? 30.0 : 1.0;
          const auto start = std::chrono::steady_clock::now();
          auto frames = client.CallPipelined(window);
          out.latencies_seconds.push_back(
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count());
          if (!frames.ok()) {
            out.failed += window.size();
            continue;
          }
          for (const net::Frame& frame : *frames) {
            if (frame.status == net::WireStatus::kOk) {
              ++out.ok;
            } else if (frame.status != net::WireStatus::kRetryAfter) {
              ++out.failed;
            }  // RETRY_AFTER is shed, already counted in client stats
          }
        }
      } else {
        while (std::chrono::steady_clock::now() < deadline) {
          const auto start = std::chrono::steady_clock::now();
          Status status = Status::OK();
          bool publish = false;
          if (publish_pct > 0.0) {
            publish_credit += publish_pct / 100.0;
            publish = publish_credit >= 1.0;
            if (publish) publish_credit -= 1.0;
          } else {
            publish = publish_every != 0 && (i + 1) % publish_every == 0;
          }
          ++i;
          if (publish) {
            status = client.PublishTelemetry(metric, publish_time, 1.0);
            publish_time += publish_pct > 0.0 ? 30.0 : 1.0;
          } else {
            auto doc = client.GetRecommendation(read_key());
            status = doc.ok() ? Status::OK() : doc.status();
          }
          out.latencies_seconds.push_back(
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count());
          if (status.ok()) {
            ++out.ok;
          } else {
            ++out.failed;
          }
        }
      }
      out.stats = client.stats();
    });
  }
  go.store(true, std::memory_order_release);
  const WallTimer wall;
  for (auto& t : threads) t.join();
  const double elapsed = wall.Seconds();

  // Aggregate.
  std::vector<double> latencies;
  uint64_t ok = 0, failed = 0, shed = 0, client_protocol_errors = 0,
           retries = 0;
  for (const WorkerResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_seconds.begin(),
                     r.latencies_seconds.end());
    ok += r.ok;
    failed += r.failed;
    shed += r.stats.shed_responses;
    retries += r.stats.retries;
    client_protocol_errors += r.stats.protocol_errors;
  }
  std::sort(latencies.begin(), latencies.end());
  const double throughput = static_cast<double>(ok) / elapsed;
  const double p50_ms = Quantile(latencies, 0.50) * 1e3;
  const double p95_ms = Quantile(latencies, 0.95) * 1e3;
  const double p99_ms = Quantile(latencies, 0.99) * 1e3;

  // One final scrape checks the server saw a clean protocol stream too.
  double server_protocol_errors = -1.0;
  {
    net::ClientConfig config;
    config.host = host;
    config.port = port;
    net::Client probe(config);
    auto scrape = probe.ScrapeMetrics();
    if (scrape.ok()) {
      server_protocol_errors =
          ScrapedValue(*scrape, "ipool_net_protocol_errors_total");
    } else {
      std::fprintf(stderr, "final scrape failed: %s\n",
                   scrape.status().ToString().c_str());
    }
  }

  std::printf("requests            %llu ok, %llu failed\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(failed));
  std::printf("throughput          %.0f req/s over %.2fs\n", throughput,
              elapsed);
  std::printf("latency             p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n",
              p50_ms, p95_ms, p99_ms);
  std::printf("retries/shed        %llu / %llu\n",
              static_cast<unsigned long long>(retries),
              static_cast<unsigned long long>(shed));
  std::printf("protocol errors     client %llu, server %.0f\n",
              static_cast<unsigned long long>(client_protocol_errors),
              server_protocol_errors);
  if (server != nullptr) {
    server->Shutdown(2.0);
    std::printf("server totals       %llu handled, %llu shed, %llu conns\n",
                static_cast<unsigned long long>(server->requests_handled()),
                static_cast<unsigned long long>(server->requests_shed()),
                static_cast<unsigned long long>(
                    server->connections_accepted()));
  }

  const char* scenario =
      pools > 1 ? (publish_pct > 0.0 ? "zipf-mixed" : "zipf")
                : (publish_pct > 0.0 ? "mixed" : "read-mostly");
  // Append the record.
  const char* path_env = std::getenv("IPOOL_BENCH_SERVING_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_serving.json";
  if (FILE* f = std::fopen(path.c_str(), "a"); f != nullptr) {
    std::fprintf(
        f,
        "{\"benchmark\":\"loadgen\",\"mode\":\"%s\",\"scenario\":\"%s\","
        "\"publish_pct\":%.1f,\"clients\":%zu,"
        "\"server_threads\":%zu,\"shards\":%zu,\"pools\":%zu,"
        "\"zipf_s\":%.2f,\"pipeline\":%zu,\"hw_threads\":%u,"
        "\"seconds\":%.2f,\"requests_ok\":%llu,"
        "\"requests_failed\":%llu,\"throughput_rps\":%.1f,\"p50_ms\":%.4f,"
        "\"p95_ms\":%.4f,\"p99_ms\":%.4f,\"retries\":%llu,\"shed\":%llu,"
        "\"client_protocol_errors\":%llu,\"server_protocol_errors\":%.0f}\n",
        external_port == 0 ? "in-process" : "external", scenario,
        publish_pct, clients, server_threads, shards, pools, zipf_s,
        pipeline, std::thread::hardware_concurrency(), elapsed,
        static_cast<unsigned long long>(ok),
        static_cast<unsigned long long>(failed), throughput, p50_ms, p95_ms,
        p99_ms, static_cast<unsigned long long>(retries),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(client_protocol_errors),
        server_protocol_errors);
    std::fclose(f);
    std::printf("appended record to %s\n", path.c_str());
  }

  // Protocol-correctness gate: any framing/CRC error fails the bench.
  if (client_protocol_errors != 0 || server_protocol_errors > 0 ||
      failed != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu failed requests, %llu client / %.0f server "
                 "protocol errors\n",
                 static_cast<unsigned long long>(failed),
                 static_cast<unsigned long long>(client_protocol_errors),
                 server_protocol_errors);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ipool::bench

int main(int argc, char** argv) { return ipool::bench::Run(argc, argv); }
