// Figure 4 / §7.1: the optimal pool size increases in advance of demand.
// Many jobs are scheduled at round hours, so the SAA optimizer raises the
// pool ~5 minutes before each hour (5:55, 6:55, ...) to have clusters ready
// when the surge lands.
#include "bench/bench_util.h"

int main() {
  using namespace ipool;
  using namespace ipool::bench;
  PrintHeader("Figure 4: pool size increases ahead of demand",
              "Paper: pool size rises ~5 min before every round hour because "
              "jobs are scheduled at 6AM, 7AM, ... (Fig 4).");

  WorkloadConfig workload;
  workload.duration_days = 1.0;
  workload.base_rate_per_minute = 2.0;
  workload.diurnal_amplitude = 0.3;
  workload.hourly_spike_requests = 40.0;  // strong top-of-hour scheduler load
  workload.hourly_spike_width_seconds = 120.0;
  workload.noise_cv = 0.1;
  workload.seed = 5;
  auto generator = CheckOk(DemandGenerator::Create(workload), "workload");
  TimeSeries demand = generator.GenerateBinned();

  PoolModelConfig pool = EvalPool();  // 5 min STABLENESS, tau = 90 s
  SaaConfig config;
  config.pool = pool;
  config.alpha_prime = 0.05;  // target high hit rate: the spike must be covered
  auto optimizer = CheckOk(SaaOptimizer::Create(config), "saa");
  PoolSchedule schedule = CheckOk(optimizer.Optimize(demand), "optimize");

  // Print one morning window, 5-minute resolution, around the 9:00 surge.
  std::printf("\n%8s %16s %12s\n", "time", "demand (req/bin)", "pool size");
  const size_t bins_per_5min = 10;
  for (size_t bin = demand.IndexOf(8.5 * 3600); bin <= demand.IndexOf(9.5 * 3600);
       bin += bins_per_5min) {
    double window_demand = 0.0;
    for (size_t b = bin; b < bin + bins_per_5min && b < demand.size(); ++b) {
      window_demand += demand.value(b);
    }
    std::printf("%8s %16.1f %12ld\n",
                HumanClock(demand.TimeAt(bin)).c_str() + 3,  // strip day part
                window_demand / bins_per_5min,
                schedule.pool_size_per_bin[bin]);
  }

  // Quantify the anticipation: for each hour h, compare the pool during the
  // 5 minutes before the hour vs mid-hour (h:25-h:30).
  size_t anticipated = 0;
  size_t hours = 0;
  for (int h = 1; h < 24; ++h) {
    const size_t before = demand.IndexOf(h * 3600.0 - 300.0 + 1.0);
    const size_t mid = demand.IndexOf(h * 3600.0 - 1800.0);
    if (before >= schedule.pool_size_per_bin.size()) break;
    ++hours;
    if (schedule.pool_size_per_bin[before] >
        schedule.pool_size_per_bin[mid]) {
      ++anticipated;
    }
  }
  std::printf("\nPool raised in the 5 minutes before the hour (vs mid-hour) "
              "for %zu of %zu hours.\n", anticipated, hours);
  std::printf("Paper: \"the pool size increases 5 minutes before the start of "
              "every hour\".\n");
  return 0;
}
