// Figure 5 / §7.3: the wait-time vs idle-time trade-off curves of the
// end-to-end pipelines. For each model (baseline Eq 17, SSA, SSA+, mWDN) and
// each pipeline (2-step in 5a, E2E in 5b) a grid of (Eq 12 loss alpha', SAA
// alpha') combinations is evaluated and the Pareto-dominant points printed.
//
// Paper findings to reproduce:
//  (1) ML models dominate the no-intelligence baseline, most strongly at low
//      wait times;
//  (2) SSA-based prediction cannot reach very low wait times (no overshoot
//      control), while SSA+ and mWDN can (Eq 12 loss);
//  (3) the 2-step pipeline traces a better frontier than E2E.
#include <algorithm>

#include "bench/bench_util.h"
#include "forecast/forecaster.h"

int main(int argc, char** argv) {
  using namespace ipool;
  using namespace ipool::bench;
  PrintHeader(
      "Figure 5: wait time vs idle time Pareto curves (5a: 2-step, 5b: E2E)",
      "Paper: ML >> baseline at low waits; SSA cannot reach low waits; "
      "2-step beats E2E.");

  TradeoffDataset dataset = MakeTradeoffDataset(/*seed=*/21);

  const std::vector<ModelKind> models = {ModelKind::kBaseline, ModelKind::kSsa,
                                         ModelKind::kSsaPlus, ModelKind::kMwdn};
  std::vector<std::vector<CurvePoint>> fronts;
  std::vector<double> sweep_seconds;  // per model x pipeline, in fi order
  WallTimer serial_timer;
  for (PipelineKind pipeline : {PipelineKind::k2Step, PipelineKind::kEndToEnd}) {
    std::printf("\n--- Figure 5%s: %s pipeline (Pareto-dominant points) ---\n",
                pipeline == PipelineKind::k2Step ? "a" : "b",
                PipelineKindToString(pipeline).c_str());
    std::printf("%-10s %8s %8s %14s %12s %14s\n", "model", "loss-k",
                "saa-a'", "avg wait(s)", "hit rate", "idle (h)");
    for (ModelKind model : models) {
      WallTimer sweep_timer;
      auto front = SweepTradeoffGrid(model, pipeline, dataset.train,
                                     dataset.eval);
      sweep_seconds.push_back(sweep_timer.Seconds());
      for (const CurvePoint& p : front) {
        std::printf("%-10s %8.2f %8.2f %14.2f %11.1f%% %14.2f\n",
                    ModelKindToString(model).c_str(), p.loss_alpha,
                    p.saa_alpha, p.metrics.avg_wait_seconds_capped,
                    100.0 * p.metrics.hit_rate,
                    p.metrics.idle_cluster_seconds / 3600.0);
      }
      double min_wait = 1e18;
      for (const CurvePoint& p : front) {
        min_wait = std::min(min_wait, p.metrics.avg_wait_seconds_capped);
      }
      std::printf("%-10s  -> lowest reachable avg wait: %.2f s\n",
                  ModelKindToString(model).c_str(), min_wait);
      fronts.push_back(std::move(front));
    }
  }
  const double serial_seconds = serial_timer.Seconds();

  // Parallel pass: ONE flat fan-out over every (pipeline, model, grid point)
  // of every sweep — instead of eight back-to-back small fan-outs whose
  // barriers each strand executors — with per-point costs seeded from the
  // measured serial sweep times (a mWDN point costs ~10x a baseline point).
  // Points are then regrouped per sweep and fronts checked against serial.
  const size_t threads = ThreadsOption(argc, argv);
  if (threads > 0) {
    struct FlatPoint {
      PipelineKind pipeline;
      ModelKind model;
      double loss_alpha;
      double saa_alpha;
    };
    std::vector<FlatPoint> flat;
    std::vector<double> costs;
    std::vector<size_t> sweep_sizes;
    size_t fi = 0;
    for (PipelineKind pipeline :
         {PipelineKind::k2Step, PipelineKind::kEndToEnd}) {
      for (ModelKind model : models) {
        const auto grid = TradeoffGridPoints(model);
        const double per_point =
            sweep_seconds[fi++] / static_cast<double>(grid.size());
        for (const auto& [loss_alpha, saa_alpha] : grid) {
          flat.push_back({pipeline, model, loss_alpha, saa_alpha});
          costs.push_back(per_point);
        }
        sweep_sizes.push_back(grid.size());
      }
    }

    exec::ThreadPool pool(threads);
    const exec::ExecContext exec{&pool};
    exec::TaskProfiler profiler;
    pool.AttachProfiler(&profiler);
    WallTimer parallel_timer;
    std::vector<CurvePoint> points(flat.size());
    exec::ParallelFor(
        exec, 0, flat.size(),
        [&](size_t lo, size_t hi) {
          for (size_t idx = lo; idx < hi; ++idx) {
            const FlatPoint& p = flat[idx];
            points[idx] =
                EvalTradeoffPoint(p.model, p.pipeline, dataset.train,
                                  dataset.eval, p.loss_alpha, p.saa_alpha);
          }
        },
        {.label = "bench.fig5_points", .costs = costs.data()});
    const double parallel_seconds = parallel_timer.Seconds();
    pool.Wait();
    pool.AttachProfiler(nullptr);

    bool match = true;
    size_t pos = 0;
    for (size_t s = 0; s < sweep_sizes.size(); ++s) {
      std::vector<CurvePoint> sweep_points(
          points.begin() + static_cast<ptrdiff_t>(pos),
          points.begin() + static_cast<ptrdiff_t>(pos + sweep_sizes[s]));
      pos += sweep_sizes[s];
      const auto front = ParetoFront(std::move(sweep_points));
      const std::vector<CurvePoint>& serial_front = fronts[s];
      match = match && front.size() == serial_front.size();
      for (size_t i = 0; match && i < front.size(); ++i) {
        match = front[i].loss_alpha == serial_front[i].loss_alpha &&
                front[i].saa_alpha == serial_front[i].saa_alpha &&
                front[i].metrics.avg_wait_seconds_capped ==
                    serial_front[i].metrics.avg_wait_seconds_capped &&
                front[i].metrics.idle_cluster_seconds ==
                    serial_front[i].metrics.idle_cluster_seconds;
      }
    }
    ParallelBenchRecord record;
    record.benchmark = "fig5_pareto";
    record.threads = threads;
    record.serial_seconds = serial_seconds;
    record.parallel_seconds = parallel_seconds;
    record.outputs_match = match;
    record.chunking = "cost";
    record.grain = 1;
    record.queue_wait_over_run = QueueWaitOverRun(profiler.Records());
    PrintParallelSummary(record);
    AppendParallelBench(record);
  }
  std::printf("\nReading the curves: at equal wait time, the ML rows should "
              "sit at lower idle\nhours than the baseline; SSA's lowest "
              "reachable wait should exceed SSA+/mWDN's.\n");
  return 0;
}
