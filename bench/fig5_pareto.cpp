// Figure 5 / §7.3: the wait-time vs idle-time trade-off curves of the
// end-to-end pipelines. For each model (baseline Eq 17, SSA, SSA+, mWDN) and
// each pipeline (2-step in 5a, E2E in 5b) a grid of (Eq 12 loss alpha', SAA
// alpha') combinations is evaluated and the Pareto-dominant points printed.
//
// Paper findings to reproduce:
//  (1) ML models dominate the no-intelligence baseline, most strongly at low
//      wait times;
//  (2) SSA-based prediction cannot reach very low wait times (no overshoot
//      control), while SSA+ and mWDN can (Eq 12 loss);
//  (3) the 2-step pipeline traces a better frontier than E2E.
#include <algorithm>

#include "bench/bench_util.h"
#include "forecast/forecaster.h"

int main(int argc, char** argv) {
  using namespace ipool;
  using namespace ipool::bench;
  PrintHeader(
      "Figure 5: wait time vs idle time Pareto curves (5a: 2-step, 5b: E2E)",
      "Paper: ML >> baseline at low waits; SSA cannot reach low waits; "
      "2-step beats E2E.");

  TradeoffDataset dataset = MakeTradeoffDataset(/*seed=*/21);

  const std::vector<ModelKind> models = {ModelKind::kBaseline, ModelKind::kSsa,
                                         ModelKind::kSsaPlus, ModelKind::kMwdn};
  std::vector<std::vector<CurvePoint>> fronts;
  WallTimer serial_timer;
  for (PipelineKind pipeline : {PipelineKind::k2Step, PipelineKind::kEndToEnd}) {
    std::printf("\n--- Figure 5%s: %s pipeline (Pareto-dominant points) ---\n",
                pipeline == PipelineKind::k2Step ? "a" : "b",
                PipelineKindToString(pipeline).c_str());
    std::printf("%-10s %8s %8s %14s %12s %14s\n", "model", "loss-k",
                "saa-a'", "avg wait(s)", "hit rate", "idle (h)");
    for (ModelKind model : models) {
      auto front = SweepTradeoffGrid(model, pipeline, dataset.train,
                                     dataset.eval);
      for (const CurvePoint& p : front) {
        std::printf("%-10s %8.2f %8.2f %14.2f %11.1f%% %14.2f\n",
                    ModelKindToString(model).c_str(), p.loss_alpha,
                    p.saa_alpha, p.metrics.avg_wait_seconds_capped,
                    100.0 * p.metrics.hit_rate,
                    p.metrics.idle_cluster_seconds / 3600.0);
      }
      double min_wait = 1e18;
      for (const CurvePoint& p : front) {
        min_wait = std::min(min_wait, p.metrics.avg_wait_seconds_capped);
      }
      std::printf("%-10s  -> lowest reachable avg wait: %.2f s\n",
                  ModelKindToString(model).c_str(), min_wait);
      fronts.push_back(std::move(front));
    }
  }
  const double serial_seconds = serial_timer.Seconds();

  // Parallel pass: the same model x pipeline sweeps, each sweep's grid
  // fanned out over the pool, fronts checked against the serial ones.
  const size_t threads = ThreadsOption(argc, argv);
  if (threads > 0) {
    exec::ThreadPool pool(threads);
    const exec::ExecContext exec{&pool};
    WallTimer parallel_timer;
    bool match = true;
    size_t fi = 0;
    for (PipelineKind pipeline :
         {PipelineKind::k2Step, PipelineKind::kEndToEnd}) {
      for (ModelKind model : models) {
        auto front = SweepTradeoffGrid(model, pipeline, dataset.train,
                                       dataset.eval, exec);
        const std::vector<CurvePoint>& serial_front = fronts[fi++];
        match = match && front.size() == serial_front.size();
        for (size_t i = 0; match && i < front.size(); ++i) {
          match = front[i].loss_alpha == serial_front[i].loss_alpha &&
                  front[i].saa_alpha == serial_front[i].saa_alpha &&
                  front[i].metrics.avg_wait_seconds_capped ==
                      serial_front[i].metrics.avg_wait_seconds_capped &&
                  front[i].metrics.idle_cluster_seconds ==
                      serial_front[i].metrics.idle_cluster_seconds;
        }
      }
    }
    ParallelBenchRecord record;
    record.benchmark = "fig5_pareto";
    record.threads = threads;
    record.serial_seconds = serial_seconds;
    record.parallel_seconds = parallel_timer.Seconds();
    record.outputs_match = match;
    PrintParallelSummary(record);
    AppendParallelBench(record);
  }
  std::printf("\nReading the curves: at equal wait time, the ML rows should "
              "sit at lower idle\nhours than the baseline; SSA's lowest "
              "reachable wait should exceed SSA+/mWDN's.\n");
  return 0;
}
