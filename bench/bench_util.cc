#include "bench/bench_util.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "forecast/forecaster.h"
#include "obs/export.h"

namespace ipool::bench {

void PrintPhaseBreakdown(const obs::MetricsRegistry& registry) {
  std::printf("--- per-phase breakdown "
              "-------------------------------------------\n");
  std::fputs(obs::HumanSummary(registry).c_str(), stdout);
}

std::vector<CurvePoint> ParetoFront(std::vector<CurvePoint> points) {
  std::sort(points.begin(), points.end(), [](const auto& a, const auto& b) {
    if (a.metrics.avg_wait_seconds_capped !=
        b.metrics.avg_wait_seconds_capped) {
      return a.metrics.avg_wait_seconds_capped <
             b.metrics.avg_wait_seconds_capped;
    }
    return a.metrics.idle_cluster_seconds < b.metrics.idle_cluster_seconds;
  });
  std::vector<CurvePoint> front;
  double best_idle = 1e300;
  for (const CurvePoint& p : points) {
    if (p.metrics.idle_cluster_seconds < best_idle) {
      best_idle = p.metrics.idle_cluster_seconds;
      front.push_back(p);
    }
  }
  return front;
}

std::vector<std::pair<double, double>> TradeoffGridPoints(ModelKind model) {
  const bool quick = QuickMode();
  const std::vector<double> loss_alphas =
      model == ModelKind::kBaseline
          ? (quick ? std::vector<double>{0.5, 1.0}
                   : std::vector<double>{0.3, 0.6, 0.9, 1.1, 1.4})
          : (quick ? std::vector<double>{0.5, 0.9}
                   : std::vector<double>{0.5, 0.75, 0.9, 0.97, 0.99});
  const std::vector<double> saa_alphas =
      quick ? std::vector<double>{0.5, 0.1}
            : std::vector<double>{0.8, 0.5, 0.2, 0.05, 0.01, 0.002};
  std::vector<std::pair<double, double>> grid;
  grid.reserve(loss_alphas.size() * saa_alphas.size());
  for (double loss_alpha : loss_alphas) {
    for (double saa_alpha : saa_alphas) {
      grid.emplace_back(loss_alpha, saa_alpha);
    }
  }
  return grid;
}

CurvePoint EvalTradeoffPoint(ModelKind model, PipelineKind pipeline,
                             const TimeSeries& train, const TimeSeries& eval,
                             double loss_alpha, double saa_alpha) {
  const bool quick = QuickMode();
  PipelineConfig config;
  config.kind = pipeline;
  config.model = model;
  config.forecast.window = 144;  // spans > 1 hour: sees the hourly cycle
  // Long native horizon: the paper predicts 1200 steps in one shot;
  // iterating a short-horizon model over hundreds of steps compounds
  // errors.
  config.forecast.horizon = quick ? 120 : 240;
  config.forecast.epochs = quick ? 2 : 4;
  config.forecast.stride = quick ? 48 : 12;
  config.forecast.batch_size = 8;
  config.recommendation_bins = eval.size();
  config.saa.pool = EvalPool();
  config.saa.alpha_prime = saa_alpha;
  if (model == ModelKind::kBaseline) {
    config.forecast.gamma = loss_alpha;
  } else {
    config.forecast.alpha_prime = loss_alpha;
  }
  auto engine = CheckOk(RecommendationEngine::Create(config), "engine");
  auto rec = CheckOk(engine.Run(train), "pipeline");
  auto metrics = CheckOk(
      EvaluateSchedule(eval, rec.pool_size_per_bin, config.saa.pool),
      "evaluate");
  return {loss_alpha, saa_alpha, metrics};
}

std::vector<CurvePoint> SweepTradeoffGrid(ModelKind model,
                                          PipelineKind pipeline,
                                          const TimeSeries& train,
                                          const TimeSeries& eval,
                                          const exec::ExecContext& exec) {
  // Flattened grid, fanned out over the pool (each point is a full
  // independent pipeline run writing only its own slot). The point order is
  // index-fixed, so the computed front matches the serial sweep exactly.
  const std::vector<std::pair<double, double>> grid = TradeoffGridPoints(model);
  std::vector<CurvePoint> points(grid.size());
  exec::ParallelFor(
      exec, 0, grid.size(),
      [&](size_t lo, size_t hi) {
    for (size_t idx = lo; idx < hi; ++idx) {
      const auto [loss_alpha, saa_alpha] = grid[idx];
      points[idx] =
          EvalTradeoffPoint(model, pipeline, train, eval, loss_alpha,
                            saa_alpha);
    }
      },
      {.label = "bench.tradeoff_grid"});
  return ParetoFront(std::move(points));
}

size_t ThreadsOption(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      return static_cast<size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      return static_cast<size_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    }
  }
  if (const char* env = std::getenv("IPOOL_THREADS")) {
    return static_cast<size_t>(std::strtoul(env, nullptr, 10));
  }
  return 0;
}

namespace {
double Speedup(const ParallelBenchRecord& record) {
  return record.parallel_seconds > 0.0
             ? record.serial_seconds / record.parallel_seconds
             : 0.0;
}
}  // namespace

double QueueWaitOverRun(const std::vector<exec::TaskRecord>& records) {
  double wait = 0.0;
  double run = 0.0;
  for (const exec::TaskRecord& r : records) {
    if (r.kind != exec::TaskKind::kChunk) continue;
    wait += r.queue_seconds();
    run += r.run_seconds();
  }
  return run > 0.0 ? wait / run : 0.0;
}

void AppendParallelBench(const ParallelBenchRecord& record) {
  const char* env = std::getenv("IPOOL_BENCH_JSON");
  const char* path = env != nullptr ? env : "BENCH_parallel.json";
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot append to %s\n", path);
    return;
  }
  const size_t hw = record.hw_threads != 0
                        ? record.hw_threads
                        : static_cast<size_t>(std::max(
                              1u, std::thread::hardware_concurrency()));
  std::fprintf(f,
               "{\"benchmark\":\"%s\",\"threads\":%zu,"
               "\"serial_seconds\":%.6f,\"parallel_seconds\":%.6f,"
               "\"speedup\":%.3f,\"outputs_match\":%s,"
               "\"chunking\":\"%s\",\"grain\":%zu,"
               "\"queue_wait_over_run\":%.3f,\"hw_threads\":%zu}\n",
               record.benchmark.c_str(), record.threads,
               record.serial_seconds, record.parallel_seconds,
               Speedup(record), record.outputs_match ? "true" : "false",
               record.chunking.c_str(), record.grain,
               record.queue_wait_over_run, hw);
  std::fclose(f);
}

void PrintParallelSummary(const ParallelBenchRecord& record) {
  std::printf("\n--- parallel pass (%zu threads) "
              "-----------------------------------\n",
              record.threads);
  std::printf("serial %.3fs, parallel %.3fs -> %.2fx speedup; outputs %s\n",
              record.serial_seconds, record.parallel_seconds, Speedup(record),
              record.outputs_match ? "bit-identical to serial"
                                   : "DIFFER FROM SERIAL (bug!)");
  std::printf("chunking %s, grain %zu, queue_wait/run %.2f, hw threads %u\n",
              record.chunking.c_str(), record.grain,
              record.queue_wait_over_run, std::thread::hardware_concurrency());
}

TradeoffDataset MakeTradeoffDataset(uint64_t seed) {
  WorkloadConfig workload =
      RegionNodeProfile(Region::kEastUs2, NodeSize::kMedium, seed);
  // Strong top-of-hour scheduler surges (the paper's Fig 4 workload shape):
  // a static pool must hold spike capacity permanently, a forecaster only
  // around the round hours — this is where the ML-vs-baseline gap opens.
  workload.hourly_spike_requests = 25.0;
  workload.duration_days = QuickMode() ? 1.0 : 2.0;
  auto split = MakeSplit(workload, 0.8);

  const size_t eval_bins = QuickMode() ? 240 : 480;
  TradeoffDataset dataset;
  dataset.eval = split.eval.Slice(split.eval.size() - eval_bins,
                                  split.eval.size());
  std::vector<double> pre(split.train.values());
  for (size_t i = 0; i + eval_bins < split.eval.size(); ++i) {
    pre.push_back(split.eval.value(i));
  }
  dataset.train =
      TimeSeries(split.train.start(), split.train.interval(), std::move(pre));
  return dataset;
}

}  // namespace ipool::bench
