#include "bench/bench_util.h"

#include <algorithm>

#include "forecast/forecaster.h"
#include "obs/export.h"

namespace ipool::bench {

void PrintPhaseBreakdown(const obs::MetricsRegistry& registry) {
  std::printf("--- per-phase breakdown "
              "-------------------------------------------\n");
  std::fputs(obs::HumanSummary(registry).c_str(), stdout);
}

std::vector<CurvePoint> ParetoFront(std::vector<CurvePoint> points) {
  std::sort(points.begin(), points.end(), [](const auto& a, const auto& b) {
    if (a.metrics.avg_wait_seconds_capped !=
        b.metrics.avg_wait_seconds_capped) {
      return a.metrics.avg_wait_seconds_capped <
             b.metrics.avg_wait_seconds_capped;
    }
    return a.metrics.idle_cluster_seconds < b.metrics.idle_cluster_seconds;
  });
  std::vector<CurvePoint> front;
  double best_idle = 1e300;
  for (const CurvePoint& p : points) {
    if (p.metrics.idle_cluster_seconds < best_idle) {
      best_idle = p.metrics.idle_cluster_seconds;
      front.push_back(p);
    }
  }
  return front;
}

std::vector<CurvePoint> SweepTradeoffGrid(ModelKind model,
                                          PipelineKind pipeline,
                                          const TimeSeries& train,
                                          const TimeSeries& eval) {
  const bool quick = QuickMode();
  const std::vector<double> loss_alphas =
      model == ModelKind::kBaseline
          ? (quick ? std::vector<double>{0.5, 1.0}
                   : std::vector<double>{0.3, 0.6, 0.9, 1.1, 1.4})
          : (quick ? std::vector<double>{0.5, 0.9}
                   : std::vector<double>{0.5, 0.75, 0.9, 0.97, 0.99});
  const std::vector<double> saa_alphas =
      quick ? std::vector<double>{0.5, 0.1}
            : std::vector<double>{0.8, 0.5, 0.2, 0.05, 0.01, 0.002};

  std::vector<CurvePoint> points;
  for (double loss_alpha : loss_alphas) {
    for (double saa_alpha : saa_alphas) {
      PipelineConfig config;
      config.kind = pipeline;
      config.model = model;
      config.forecast.window = 144;  // spans > 1 hour: sees the hourly cycle
      // Long native horizon: the paper predicts 1200 steps in one shot;
      // iterating a short-horizon model over hundreds of steps compounds
      // errors.
      config.forecast.horizon = quick ? 120 : 240;
      config.forecast.epochs = quick ? 2 : 4;
      config.forecast.stride = quick ? 48 : 12;
      config.forecast.batch_size = 8;
      config.recommendation_bins = eval.size();
      config.saa.pool = EvalPool();
      config.saa.alpha_prime = saa_alpha;
      if (model == ModelKind::kBaseline) {
        config.forecast.gamma = loss_alpha;
      } else {
        config.forecast.alpha_prime = loss_alpha;
      }
      auto engine = CheckOk(RecommendationEngine::Create(config), "engine");
      auto rec = CheckOk(engine.Run(train), "pipeline");
      auto metrics = CheckOk(
          EvaluateSchedule(eval, rec.pool_size_per_bin, config.saa.pool),
          "evaluate");
      points.push_back({loss_alpha, saa_alpha, metrics});
    }
  }
  return ParetoFront(std::move(points));
}

TradeoffDataset MakeTradeoffDataset(uint64_t seed) {
  WorkloadConfig workload =
      RegionNodeProfile(Region::kEastUs2, NodeSize::kMedium, seed);
  // Strong top-of-hour scheduler surges (the paper's Fig 4 workload shape):
  // a static pool must hold spike capacity permanently, a forecaster only
  // around the round hours — this is where the ML-vs-baseline gap opens.
  workload.hourly_spike_requests = 25.0;
  workload.duration_days = QuickMode() ? 1.0 : 2.0;
  auto split = MakeSplit(workload, 0.8);

  const size_t eval_bins = QuickMode() ? 240 : 480;
  TradeoffDataset dataset;
  dataset.eval = split.eval.Slice(split.eval.size() - eval_bins,
                                  split.eval.size());
  std::vector<double> pre(split.train.values());
  for (size_t i = 0; i + eval_bins < split.eval.size(); ++i) {
    pre.push_back(split.eval.value(i));
  }
  dataset.train =
      TimeSeries(split.train.start(), split.train.interval(), std::move(pre));
  return dataset;
}

}  // namespace ipool::bench
