// Figure 6 / §7.4: training time vs input data size for each model. The
// paper's headline: the hybrid SSA+ trains barely slower than SSA and ~200x
// faster than the pure deep models, which is why SSA+ is the deployed model
// (it can retrain in a continuous loop every few minutes).
#include "bench/bench_util.h"
#include "forecast/forecaster.h"

int main(int argc, char** argv) {
  using namespace ipool;
  using namespace ipool::bench;
  PrintHeader("Figure 6: training time vs input data size",
              "Paper: SSA+ is slightly slower than SSA and ~200x faster than "
              "mWDN/TST/InceptionTime.");

  const std::vector<double> days = QuickMode()
                                       ? std::vector<double>{0.25, 0.5}
                                       : std::vector<double>{0.25, 0.5, 1.0};
  const std::vector<ModelKind> models = {
      ModelKind::kSsa, ModelKind::kSsaPlus, ModelKind::kMwdn, ModelKind::kTst,
      ModelKind::kInceptionTime};

  // Paper training protocol (scaled): fixed 15 epochs (no early stop),
  // dense window sampling — Fig 6 measures the cost of a full training run.
  obs::MetricsRegistry registry;
  ForecastParams params;
  params.obs.metrics = &registry;
  params.window = 96;
  params.horizon = 48;
  params.epochs = QuickMode() ? 3 : 15;
  params.early_stopping = false;
  params.stride = 4;
  params.batch_size = 8;
  params.seed = 3;

  std::printf("\n%-12s", "bins");
  for (ModelKind m : models) std::printf(" %12s", ModelKindToString(m).c_str());
  std::printf("\n");

  // Serial pass: the Fig-6 table proper (per-cell times are only meaningful
  // without co-running cells). Each cell's forecast is kept as a
  // fingerprint of the trained model for the parallel-pass equality check.
  std::vector<TimeSeries> histories;
  for (double d : days) {
    WorkloadConfig workload = RegionNodeProfile(Region::kEastUs2,
                                                NodeSize::kMedium, 41);
    workload.duration_days = d;
    auto generator = CheckOk(DemandGenerator::Create(workload), "workload");
    histories.push_back(generator.GenerateBinned());
  }
  std::vector<std::vector<double>> times(days.size(),
                                         std::vector<double>(models.size()));
  std::vector<std::vector<double>> fingerprints(days.size() * models.size());
  WallTimer serial_timer;
  for (size_t di = 0; di < days.size(); ++di) {
    std::printf("%-12zu", histories[di].size());
    for (size_t mi = 0; mi < models.size(); ++mi) {
      auto forecaster = CheckOk(CreateForecaster(models[mi], params), "create");
      WallTimer timer;
      CheckOk(forecaster->Fit(histories[di]), "fit");
      times[di][mi] = timer.Seconds();
      fingerprints[di * models.size() + mi] =
          CheckOk(forecaster->Forecast(48), "forecast");
      std::printf(" %11.3fs", times[di][mi]);
    }
    std::printf("\n");
  }
  const double serial_seconds = serial_timer.Seconds();

  // Parallel pass: the same model x size cells fanned out over the pool
  // (cells are independent trainings). Forecasts must come back
  // bit-identical — training is seeded and the cells share nothing.
  const size_t threads = ThreadsOption(argc, argv);
  if (threads > 0) {
    exec::ThreadPool pool(threads);
    const exec::ExecContext exec{&pool};
    WallTimer parallel_timer;
    std::vector<std::vector<double>> redo =
        exec::ParallelMap(
            exec, days.size() * models.size(), [&](size_t cell) {
              const size_t di = cell / models.size();
              const size_t mi = cell % models.size();
              auto forecaster =
                  CheckOk(CreateForecaster(models[mi], params), "create");
              CheckOk(forecaster->Fit(histories[di]), "fit");
              return CheckOk(forecaster->Forecast(48), "forecast");
            });
    ParallelBenchRecord record;
    record.benchmark = "fig6_training_time";
    record.threads = threads;
    record.serial_seconds = serial_seconds;
    record.parallel_seconds = parallel_timer.Seconds();
    record.outputs_match = redo == fingerprints;
    PrintParallelSummary(record);
    AppendParallelBench(record);
  }

  // Speedup of SSA+ over the slowest deep model at the largest size.
  const size_t last = days.size() - 1;
  double slowest_deep = 0.0;
  for (size_t mi = 2; mi < models.size(); ++mi) {
    slowest_deep = std::max(slowest_deep, times[last][mi]);
  }
  std::printf("\nAt %zu bins: SSA+ trains %.0fx faster than the slowest deep "
              "model (paper: ~200x,\nwith full-size deep models; ours are "
              "deliberately small), and stays near-flat as\ndata grows while "
              "the deep models scale linearly or worse.\n",
              static_cast<size_t>(days[last] * 2880), slowest_deep /
                  std::max(1e-9, times[last][1]));
  std::printf("\n");
  PrintPhaseBreakdown(registry);
  return 0;
}
