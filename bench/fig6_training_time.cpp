// Figure 6 / §7.4: training time vs input data size for each model. The
// paper's headline: the hybrid SSA+ trains barely slower than SSA and ~200x
// faster than the pure deep models, which is why SSA+ is the deployed model
// (it can retrain in a continuous loop every few minutes).
#include <cmath>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "forecast/forecaster.h"
#include "forecast/ssa.h"

namespace {

using namespace ipool;
using namespace ipool::bench;

// One window-size row of the SSA old-vs-new comparison: dense-Jacobi Fit vs
// subspace Fit (cold) vs warm Refit on the same series, with the forecast
// divergence between the paths.
struct SsaPathRecord {
  size_t window = 0;
  size_t n = 0;
  double jacobi_seconds = 0.0;
  double subspace_seconds = 0.0;
  double refit_seconds = 0.0;
  size_t subspace_iters = 0;
  size_t refit_iters = 0;
  bool subspace_path = false;  // cold fit took the fast path
  bool warm_hits = false;      // refit reused Gram + basis
  double max_rel_diff = 0.0;   // jacobi vs subspace forecast
};

void AppendSsaBench(const SsaPathRecord& r) {
  const char* env = std::getenv("IPOOL_BENCH_SSA_JSON");
  const char* path = env != nullptr ? env : "BENCH_ssa.json";
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot append to %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\"benchmark\":\"fig6_ssa_fast_path\",\"window\":%zu,"
               "\"n\":%zu,\"jacobi_seconds\":%.6f,\"subspace_seconds\":%.6f,"
               "\"refit_seconds\":%.6f,\"speedup_cold\":%.3f,"
               "\"speedup_warm\":%.3f,\"subspace_iters\":%zu,"
               "\"refit_iters\":%zu,\"subspace_path\":%s,\"warm_hits\":%s,"
               "\"max_rel_diff\":%.3e}\n",
               r.window, r.n, r.jacobi_seconds, r.subspace_seconds,
               r.refit_seconds, r.jacobi_seconds / std::max(1e-9, r.subspace_seconds),
               r.jacobi_seconds / std::max(1e-9, r.refit_seconds),
               r.subspace_iters, r.refit_iters,
               r.subspace_path ? "true" : "false",
               r.warm_hits ? "true" : "false", r.max_rel_diff);
  std::fclose(f);
}

// Strong diurnal + hourly demand with light noise — the paper's periodic
// signal regime, where the spectrum has a well-gapped low-rank head and the
// subspace fast path engages. Values stay in request-count units.
std::vector<double> PeriodicDemandSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> vals(n);
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    vals[i] = 400.0 + 180.0 * std::sin(2.0 * M_PI * t / 2880.0) +
              60.0 * std::sin(2.0 * M_PI * t / 120.0) + rng.Normal(0.0, 2.0);
  }
  return vals;
}

// Jacobi-vs-subspace SSA training comparison at control-loop scale. With
// IPOOL_REQUIRE_SUBSPACE=1 the run fails loudly when the fast path does not
// engage or its forecasts drift past 1e-6 relative from the dense oracle —
// the CI bench smoke gate.
void RunSsaFastPathSection() {
  const bool require = []() {
    const char* env = std::getenv("IPOOL_REQUIRE_SUBSPACE");
    return env != nullptr && env[0] == '1';
  }();
  const std::vector<size_t> windows =
      QuickMode() ? std::vector<size_t>{256} : std::vector<size_t>{256, 384};

  std::printf("\n--- SSA training fast path (old dense Jacobi vs subspace) "
              "--------\n");
  std::printf("%-8s %-6s %10s %10s %10s %8s %8s %12s\n", "window", "n",
              "jacobi", "cold", "refit", "cold-x", "warm-x", "max-rel-diff");

  for (size_t window : windows) {
    SsaPathRecord rec;
    rec.window = window;
    rec.n = QuickMode() ? 4 * window : 8 * window;
    const size_t shift = 2;
    const std::vector<double> vals = PeriodicDemandSeries(rec.n + shift, 9);
    const TimeSeries first(
        0.0, 30.0, std::vector<double>(vals.begin(), vals.end() - shift));
    const TimeSeries second(30.0 * static_cast<double>(shift), 30.0,
                            std::vector<double>(vals.begin() + shift,
                                                vals.end()));

    SsaForecaster::Options options;
    options.window = window;

    // Old path: dense Jacobi over all L pairs.
    SsaForecaster::Options jopt = options;
    jopt.force_jacobi = true;
    SsaForecaster jacobi(jopt);
    {
      WallTimer timer;
      CheckOk(jacobi.Fit(first), "jacobi fit");
      rec.jacobi_seconds = timer.Seconds();
    }

    // New path, cold: subspace iteration from the seeded block.
    SsaForecaster fast(options);
    {
      WallTimer timer;
      CheckOk(fast.Fit(first), "subspace fit");
      rec.subspace_seconds = timer.Seconds();
    }
    rec.subspace_path = fast.fit_path() == SsaForecaster::FitPath::kSubspace;
    rec.subspace_iters = fast.subspace_iterations();

    // New path, warm: the window slid forward two bins — Gram slide plus
    // warm-started subspace, the per-tick cost of the control loop.
    {
      WallTimer timer;
      CheckOk(fast.Refit(second), "refit");
      rec.refit_seconds = timer.Seconds();
    }
    rec.warm_hits = fast.warm_gram_hit() && fast.warm_basis_hit() &&
                    fast.fit_path() == SsaForecaster::FitPath::kSubspace;
    rec.refit_iters = fast.subspace_iterations();

    // Forecast divergence between the oracle and the fast path (same data:
    // compare the cold fits).
    SsaForecaster fast_first(options);
    CheckOk(fast_first.Fit(first), "subspace fit");
    const std::vector<double> jf = CheckOk(jacobi.Forecast(120), "forecast");
    const std::vector<double> sf =
        CheckOk(fast_first.Forecast(120), "forecast");
    for (size_t i = 0; i < jf.size(); ++i) {
      rec.max_rel_diff =
          std::max(rec.max_rel_diff, std::fabs(sf[i] - jf[i]) /
                                         std::max(1.0, std::fabs(jf[i])));
    }

    std::printf("%-8zu %-6zu %9.3fs %9.3fs %9.3fs %7.1fx %7.1fx %12.3e\n",
                rec.window, rec.n, rec.jacobi_seconds, rec.subspace_seconds,
                rec.refit_seconds,
                rec.jacobi_seconds / std::max(1e-9, rec.subspace_seconds),
                rec.jacobi_seconds / std::max(1e-9, rec.refit_seconds),
                rec.max_rel_diff);
    AppendSsaBench(rec);

    if (require) {
      if (!rec.subspace_path || !rec.warm_hits) {
        std::fprintf(stderr,
                     "IPOOL_REQUIRE_SUBSPACE: fast path did not engage at "
                     "window %zu (cold path %d, warm hits %d)\n",
                     window, static_cast<int>(rec.subspace_path),
                     static_cast<int>(rec.warm_hits));
        std::exit(1);
      }
      if (rec.max_rel_diff > 1e-6) {
        std::fprintf(stderr,
                     "IPOOL_REQUIRE_SUBSPACE: forecasts diverged from the "
                     "Jacobi oracle at window %zu (max rel diff %.3e)\n",
                     window, rec.max_rel_diff);
        std::exit(1);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ipool;
  using namespace ipool::bench;
  PrintHeader("Figure 6: training time vs input data size",
              "Paper: SSA+ is slightly slower than SSA and ~200x faster than "
              "mWDN/TST/InceptionTime.");

  const std::vector<double> days = QuickMode()
                                       ? std::vector<double>{0.25, 0.5}
                                       : std::vector<double>{0.25, 0.5, 1.0};
  const std::vector<ModelKind> models = {
      ModelKind::kSsa, ModelKind::kSsaPlus, ModelKind::kMwdn, ModelKind::kTst,
      ModelKind::kInceptionTime};

  // Paper training protocol (scaled): fixed 15 epochs (no early stop),
  // dense window sampling — Fig 6 measures the cost of a full training run.
  obs::MetricsRegistry registry;
  ForecastParams params;
  params.obs.metrics = &registry;
  params.window = 96;
  params.horizon = 48;
  params.epochs = QuickMode() ? 3 : 15;
  params.early_stopping = false;
  params.stride = 4;
  params.batch_size = 8;
  params.seed = 3;

  std::printf("\n%-12s", "bins");
  for (ModelKind m : models) std::printf(" %12s", ModelKindToString(m).c_str());
  std::printf("\n");

  // Serial pass: the Fig-6 table proper (per-cell times are only meaningful
  // without co-running cells). Each cell's forecast is kept as a
  // fingerprint of the trained model for the parallel-pass equality check.
  std::vector<TimeSeries> histories;
  for (double d : days) {
    WorkloadConfig workload = RegionNodeProfile(Region::kEastUs2,
                                                NodeSize::kMedium, 41);
    workload.duration_days = d;
    auto generator = CheckOk(DemandGenerator::Create(workload), "workload");
    histories.push_back(generator.GenerateBinned());
  }
  std::vector<std::vector<double>> times(days.size(),
                                         std::vector<double>(models.size()));
  std::vector<std::vector<double>> fingerprints(days.size() * models.size());
  WallTimer serial_timer;
  for (size_t di = 0; di < days.size(); ++di) {
    std::printf("%-12zu", histories[di].size());
    for (size_t mi = 0; mi < models.size(); ++mi) {
      auto forecaster = CheckOk(CreateForecaster(models[mi], params), "create");
      WallTimer timer;
      CheckOk(forecaster->Fit(histories[di]), "fit");
      times[di][mi] = timer.Seconds();
      fingerprints[di * models.size() + mi] =
          CheckOk(forecaster->Forecast(48), "forecast");
      std::printf(" %11.3fs", times[di][mi]);
    }
    std::printf("\n");
  }
  const double serial_seconds = serial_timer.Seconds();

  // Parallel pass: the same model x size cells fanned out over the pool
  // (cells are independent trainings). Forecasts must come back
  // bit-identical — training is seeded and the cells share nothing.
  const size_t threads = ThreadsOption(argc, argv);
  if (threads > 0) {
    // The serial table already measured every cell: reuse those times as the
    // chunker's cost model (a TST cell at 1 day costs ~100x an SSA cell at
    // 0.25 days, the exact skew that starved the even split).
    std::vector<double> cell_costs(days.size() * models.size());
    for (size_t di = 0; di < days.size(); ++di) {
      for (size_t mi = 0; mi < models.size(); ++mi) {
        cell_costs[di * models.size() + mi] = times[di][mi];
      }
    }
    exec::ThreadPool pool(threads);
    const exec::ExecContext exec{&pool};
    exec::TaskProfiler profiler;
    pool.AttachProfiler(&profiler);
    WallTimer parallel_timer;
    std::vector<std::vector<double>> redo =
        exec::ParallelMap(
            exec, days.size() * models.size(),
            [&](size_t cell) {
              const size_t di = cell / models.size();
              const size_t mi = cell % models.size();
              auto forecaster =
                  CheckOk(CreateForecaster(models[mi], params), "create");
              CheckOk(forecaster->Fit(histories[di]), "fit");
              return CheckOk(forecaster->Forecast(48), "forecast");
            },
            {.label = "bench.fig6_cells", .costs = cell_costs.data()});
    const double parallel_seconds = parallel_timer.Seconds();
    pool.Wait();
    pool.AttachProfiler(nullptr);
    ParallelBenchRecord record;
    record.benchmark = "fig6_training_time";
    record.threads = threads;
    record.serial_seconds = serial_seconds;
    record.parallel_seconds = parallel_seconds;
    record.outputs_match = redo == fingerprints;
    record.chunking = "cost";
    record.grain = 1;
    record.queue_wait_over_run = QueueWaitOverRun(profiler.Records());
    PrintParallelSummary(record);
    AppendParallelBench(record);
  }

  // Speedup of SSA+ over the slowest deep model at the largest size.
  const size_t last = days.size() - 1;
  double slowest_deep = 0.0;
  for (size_t mi = 2; mi < models.size(); ++mi) {
    slowest_deep = std::max(slowest_deep, times[last][mi]);
  }
  std::printf("\nAt %zu bins: SSA+ trains %.0fx faster than the slowest deep "
              "model (paper: ~200x,\nwith full-size deep models; ours are "
              "deliberately small), and stays near-flat as\ndata grows while "
              "the deep models scale linearly or worse.\n",
              static_cast<size_t>(days[last] * 2880), slowest_deep /
                  std::max(1e-9, times[last][1]));
  RunSsaFastPathSection();

  std::printf("\n");
  PrintPhaseBreakdown(registry);
  return 0;
}
