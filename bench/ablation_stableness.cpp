// §7.1 finding 3 (ablation): updating the pool size more frequently
// (smaller STABLENESS) shifts the Pareto curve toward the lower-left —
// better trade-offs — at the cost of operational churn.
#include "bench/bench_util.h"

int main() {
  using namespace ipool;
  using namespace ipool::bench;
  PrintHeader("Ablation: STABLENESS (pool update frequency)",
              "Paper: decreasing STABLENESS shifts the Pareto curve toward "
              "the lower left (better).");

  WorkloadConfig workload = RegionNodeProfile(Region::kWestUs2,
                                              NodeSize::kMedium, /*seed=*/61);
  workload.duration_days = 1.0;
  auto generator = CheckOk(DemandGenerator::Create(workload), "workload");
  TimeSeries demand = generator.GenerateBinned();

  // §7.1 applies SAA to historic data (in-sample optimal sizing), so the
  // planning and evaluation series coincide here.
  const std::vector<double> alphas = {0.9, 0.6, 0.3, 0.1, 0.02};
  const std::vector<std::pair<size_t, const char*>> stableness = {
      {2, "1 min"}, {10, "5 min"}, {20, "10 min"}, {60, "30 min"}};

  std::printf("\n%-12s %8s %14s %12s %14s\n", "STABLENESS", "alpha'",
              "avg wait(s)", "hit rate", "idle (h)");
  std::vector<double> idle_at_first_alpha;
  for (const auto& [bins, label] : stableness) {
    PoolModelConfig pool = EvalPool();
    pool.stableness_bins = bins;
    auto points = CheckOk(SweepPareto(demand, demand, pool, alphas), "sweep");
    for (const ParetoPoint& p : points) {
      std::printf("%-12s %8.2f %14.2f %11.1f%% %14.2f\n", label, p.alpha_prime,
                  p.metrics.avg_wait_seconds_capped, 100.0 * p.metrics.hit_rate,
                  p.metrics.idle_cluster_seconds / 3600.0);
    }
    idle_at_first_alpha.push_back(
        points.front().metrics.idle_cluster_seconds / 3600.0);
    std::printf("\n");
  }

  std::printf("Idle hours at alpha'=%.1f by STABLENESS:", alphas.front());
  for (size_t i = 0; i < stableness.size(); ++i) {
    std::printf("  %s: %.2f", stableness[i].second, idle_at_first_alpha[i]);
  }
  std::printf("\nExpected: idle (and wait) grow as STABLENESS grows — the "
              "curve moves up-right,\nmatching the paper's finding.\n");
  return 0;
}
