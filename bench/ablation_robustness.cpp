// §7.5 (ablation): the production-robustness strategies on the spiky
// region, added one at a time:
//   S1  max-filter the demand before ML training (Eq 18) — SF must span the
//       inter-spike gap so the pool stays raised across the spike-prone
//       hours ("fatter spikes"),
//   S2  extend STABLENESS to 10 minutes,
//   S3  max-filter the recommended pool size with SF = tau.
//
// Evaluation is rolling, as in production: every hour the pipeline retrains
// on all history so far and emits the next hour's schedule.
//
// Paper: with the strategies the pool absorbs irregular spikes (hit rate ->
// ~100%) while still undercutting a static pool sized for the spikes, and
// COGS savings rose from 18% to 64% because the pool shrinks toward zero
// when demand is near zero (nights).
#include "bench/bench_util.h"

namespace {

using namespace ipool;
using namespace ipool::bench;

struct StrategyConfig {
  const char* label;
  size_t smoothing_bins;  // 0 disables S1
  bool long_stableness;   // S2
  bool smooth_output;     // S3
  int64_t min_pool;       // Eq 10 floor
};

PoolMetrics RunRolling(const StrategyConfig& strategy, const TimeSeries& all,
                       size_t eval_start) {
  const size_t bins_per_hour = 120;
  PipelineConfig config;
  config.model = ModelKind::kSsaPlus;
  config.forecast.window = 96;
  config.forecast.horizon = 48;
  config.forecast.alpha_prime = 0.95;
  config.saa.alpha_prime = 0.1;
  config.saa.pool = EvalPool();
  config.saa.pool.min_pool_size = strategy.min_pool;
  config.saa.pool.stableness_bins = strategy.long_stableness ? 20 : 10;
  config.recommendation_bins = bins_per_hour;
  config.smoothing_factor_bins = strategy.smoothing_bins;
  config.smooth_recommendation = strategy.smooth_output;
  auto engine = CheckOk(RecommendationEngine::Create(config), "engine");

  std::vector<int64_t> schedule;
  for (size_t anchor = eval_start; anchor < all.size();
       anchor += bins_per_hour) {
    auto rec = CheckOk(engine.Run(all.Slice(0, anchor)), "run");
    for (size_t i = 0; i < bins_per_hour && anchor + i < all.size(); ++i) {
      schedule.push_back(rec.pool_size_per_bin[i]);
    }
  }
  TimeSeries eval = all.Slice(eval_start, all.size());
  return CheckOk(EvaluateSchedule(eval, schedule, config.saa.pool), "eval");
}

}  // namespace

int main() {
  using namespace ipool;
  using namespace ipool::bench;
  PrintHeader("Ablation: §7.5 robustness strategies on the spiky region",
              "Paper: strategies raise hit rate to ~100% on irregular spikes; "
              "COGS savings vs static rose 18% -> 64%.");

  WorkloadConfig workload = SpikyRegionProfile(/*seed=*/71);
  workload.duration_days = QuickMode() ? 1.0 : 2.0;
  auto generator = CheckOk(DemandGenerator::Create(workload), "workload");
  TimeSeries all = generator.GenerateBinned();
  const size_t eval_start = all.size() / 2;
  TimeSeries eval = all.Slice(eval_start, all.size());

  const StrategyConfig strategies[] = {
      {"none", 0, false, false, 0},
      {"S1 max-filter (SF=30m)", 60, false, false, 0},
      {"S1 max-filter (SF=3h)", 360, false, false, 0},
      {"S1+S2 stableness 10m", 360, true, false, 0},
      {"S1+S2+S3 output filter", 360, true, true, 0},
  };

  // Static reference sized for the spikes around the clock.
  auto [static_size, static_metrics] = SmallestStaticPool(
      eval, EvalPool(),
      [](const PoolMetrics& m) { return m.hit_rate >= 0.99; });
  CogsModel cogs;
  const double static_cost =
      cogs.IdleDollars(static_metrics.idle_cluster_seconds);
  std::printf("\nStatic pool reference: N=%ld, hit %.1f%%, idle $%.2f\n",
              static_size, 100.0 * static_metrics.hit_rate, static_cost);

  std::printf("\n%-26s %10s %12s %10s %12s %14s\n", "strategies", "hit rate",
              "avg wait(s)", "avg pool", "idle $", "save vs static");
  for (const StrategyConfig& strategy : strategies) {
    PoolMetrics metrics = RunRolling(strategy, all, eval_start);
    const double cost = cogs.IdleDollars(metrics.idle_cluster_seconds);
    std::printf("%-26s %9.1f%% %12.2f %10.1f %12.2f %13.1f%%\n",
                strategy.label, 100.0 * metrics.hit_rate,
                metrics.avg_wait_seconds_capped, metrics.avg_pool_size, cost,
                100.0 * (1.0 - cost / static_cost));
  }
  std::printf("\nExpected: hit rate climbs monotonically as strategies are "
              "added, approaching the\npaper's ~100%%, while every row still "
              "undercuts the always-on static pool.\n");
  return 0;
}
