// Fleet auto-tuning bench (ROADMAP item 5): tunes a fleet of pools with
// the successive-halving FleetTuner and measures the warm-start payoff —
// a re-tune over unchanged telemetry must serve from the rung-score memo
// instead of refitting, and must reproduce the cold winners exactly. A
// third pass replays the ISSUE's regime-change scenario (permanent 6x
// level shift mid-trace) and checks the tuner demotes the periodic
// incumbent while steady pools hold theirs.
//
// Appends one JSON record to $IPOOL_BENCH_JSON (default BENCH_tuning.json)
// gated in CI by tools/check_tuning_bench.sh:
//   warm_speedup >= 2.0, winners_match, switch_on_regime, hold_on_steady.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "autotune/fleet_tuner.h"
#include "bench/bench_util.h"
#include "exec/thread_pool.h"
#include "tsdata/time_series.h"
#include "workload/demand_generator.h"

namespace ipool::bench {
namespace {

using autotune::FleetTuner;
using autotune::FleetTunerConfig;
using autotune::PoolTuneResult;
using autotune::TuningCandidate;
using autotune::TuningCandidateName;

/// A regime-shift trace: strongly diurnal demand that jumps to 6x at
/// `shift_day` and stays there. With `shift_day` beyond the duration the
/// trace is purely periodic (the steady pools).
TimeSeries RegimeTrace(double duration_days, double shift_day,
                       uint64_t seed) {
  WorkloadConfig config = RegimeShiftProfile(seed, shift_day);
  config.duration_days = duration_days;
  auto generator = CheckOk(DemandGenerator::Create(config), "workload");
  return generator.GenerateBinned();
}

FleetTunerConfig TunerConfig(const exec::ExecContext& exec) {
  FleetTunerConfig config;
  if (QuickMode()) {
    config.models = {ModelKind::kBaseline, ModelKind::kSsa};
    config.alphas = {0.3, 0.5, 0.7};
    config.windows = {48};
  }
  config.eval_bins = 120;
  config.min_train_bins = 32;
  config.pool = EvalPool();
  config.exec = exec;
  return config;
}

struct TuningBenchRecord {
  size_t pools = 0;
  size_t candidates = 0;
  size_t rungs = 0;
  size_t threads = 0;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  size_t warm_memo_hits = 0;
  bool winners_match = false;
  bool switch_on_regime = false;
  bool hold_on_steady = false;
};

void AppendTuningBench(const TuningBenchRecord& record) {
  const char* env = std::getenv("IPOOL_BENCH_JSON");
  const char* path = env != nullptr ? env : "BENCH_tuning.json";
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot append to %s\n", path);
    return;
  }
  const double speedup =
      record.warm_seconds > 0.0 ? record.cold_seconds / record.warm_seconds
                                : 0.0;
  const size_t hw = static_cast<size_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::fprintf(f,
               "{\"benchmark\":\"tuning_fleet\",\"pools\":%zu,"
               "\"candidates\":%zu,\"rungs\":%zu,\"threads\":%zu,"
               "\"hw_threads\":%zu,\"cold_seconds\":%.6f,"
               "\"warm_seconds\":%.6f,\"warm_speedup\":%.3f,"
               "\"warm_memo_hits\":%zu,\"winners_match\":%s,"
               "\"switch_on_regime\":%s,\"hold_on_steady\":%s}\n",
               record.pools, record.candidates, record.rungs, record.threads,
               hw, record.cold_seconds, record.warm_seconds, speedup,
               record.warm_memo_hits,
               record.winners_match ? "true" : "false",
               record.switch_on_regime ? "true" : "false",
               record.hold_on_steady ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int Main(int argc, char** argv) {
  PrintHeader(
      "Fleet auto-tuning: cold vs memoized re-tune, regime-shift demotion",
      "Paper (§6-7): per-pool configs are retuned continuously; a re-tune "
      "over unchanged telemetry must be near-free and a regime change must "
      "swap the model. We measure both on a synthetic fleet.");

  const size_t threads = ThreadsOption(argc, argv);
  std::unique_ptr<exec::ThreadPool> pool;
  exec::ExecContext exec;
  if (threads > 0) {
    pool = std::make_unique<exec::ThreadPool>(threads);
    exec.pool = pool.get();
  }

  // The fleet: steady strongly-periodic pools (the shift never arrives
  // inside the trace) plus one pool that will face the regime change in the
  // third pass. '-'-separated names exercise neighbor-winner seeding.
  const size_t kPools = QuickMode() ? 3 : 6;
  std::vector<std::string> names;
  std::vector<TimeSeries> histories;
  for (size_t i = 0; i < kPools; ++i) {
    names.push_back(StrFormat("east-small-%zu", i));
    histories.push_back(RegimeTrace(0.5, /*shift_day=*/2.0, /*seed=*/100 + i));
  }

  auto tuner = CheckOk(FleetTuner::Create(TunerConfig(exec)), "tuner");

  // Pass 1 — cold: every candidate fit from scratch.
  std::vector<PoolTuneResult> cold(kPools);
  WallTimer cold_timer;
  for (size_t i = 0; i < kPools; ++i) {
    cold[i] = tuner->TunePool(names[i], histories[i], nullptr);
    if (!cold[i].ok) {
      std::fprintf(stderr, "cold tune failed for %s: %s\n", names[i].c_str(),
                   cold[i].error.c_str());
      return 1;
    }
  }
  const double cold_seconds = cold_timer.Seconds();

  // Pass 2 — settle: continuous re-tuning must reach a fixed point. The
  // first re-tune can legitimately switch a pool — neighbor-winner seeding
  // injects configs that won elsewhere, and one may beat this pool's
  // incumbent past the hysteresis margin. Within a few passes the fleet
  // must stop switching.
  std::vector<TuningCandidate> incumbents(kPools);
  for (size_t i = 0; i < kPools; ++i) incumbents[i] = cold[i].winner;
  size_t settle_passes = 0;
  bool settled = false;
  while (!settled && settle_passes < 4) {
    ++settle_passes;
    settled = true;
    for (size_t i = 0; i < kPools; ++i) {
      PoolTuneResult r = tuner->TunePool(names[i], histories[i],
                                         &incumbents[i]);
      if (!r.ok) {
        std::fprintf(stderr, "settle tune failed for %s: %s\n",
                     names[i].c_str(), r.error.c_str());
        return 1;
      }
      if (r.switched) settled = false;
      incumbents[i] = r.winner;
    }
  }

  // Pass 3 — warm (measured): at the fixed point every pool's rung scores
  // come from the memo and every incumbent is kept.
  std::vector<PoolTuneResult> warm(kPools);
  WallTimer warm_timer;
  for (size_t i = 0; i < kPools; ++i) {
    warm[i] = tuner->TunePool(names[i], histories[i], &incumbents[i]);
  }
  const double warm_seconds = warm_timer.Seconds();

  bool winners_match = true;
  bool hold_on_steady = settled;
  size_t warm_memo_hits = 0;
  for (size_t i = 0; i < kPools; ++i) {
    winners_match = winners_match && warm[i].ok &&
                    warm[i].winner == incumbents[i];
    hold_on_steady = hold_on_steady && !warm[i].switched;
    warm_memo_hits += warm[i].memo_hits;
  }

  // Pass 3 — the regime change hits pool 0: the same wave, but the history
  // window now trains pre-shift and evaluates on the 6x post-shift bins.
  // The periodic incumbent underpredicts 6x; the tune must demote it.
  TimeSeries shifted = RegimeTrace(0.54, /*shift_day=*/0.5, /*seed=*/100);
  PoolTuneResult regime = tuner->TunePool(names[0], shifted, &incumbents[0]);
  const bool switch_on_regime =
      regime.ok && regime.switched && regime.winner != incumbents[0];

  std::printf("\n%-16s %-28s %12s %10s %10s\n", "pool", "settled winner",
              "score", "evals", "memo(warm)");
  for (size_t i = 0; i < kPools; ++i) {
    std::printf("%-16s %-28s %12.6f %10zu %10zu\n", names[i].c_str(),
                TuningCandidateName(warm[i].winner).c_str(),
                warm[i].winner_score, cold[i].evaluations, warm[i].memo_hits);
  }
  std::printf("\nregime shift on %s: %s -> %s (%s)\n", names[0].c_str(),
              TuningCandidateName(incumbents[0]).c_str(),
              TuningCandidateName(regime.winner).c_str(),
              regime.switched ? "switched" : "kept");
  std::printf(
      "\ncold %.3fs  warm %.3fs  speedup %.2fx  settle_passes=%zu "
      "winners_match=%s hold_on_steady=%s switch_on_regime=%s\n",
      cold_seconds, warm_seconds,
      warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0, settle_passes,
      winners_match ? "true" : "false", hold_on_steady ? "true" : "false",
      switch_on_regime ? "true" : "false");
  std::printf(
      "\nPaper says: re-tuning at fleet scale is continuous, so repeat "
      "tunes must cost\nfar less than the first; a regime change swaps the "
      "serving model. We measure\nthe memoized re-tune and the demotion "
      "directly.\n");

  TuningBenchRecord record;
  record.pools = kPools;
  record.candidates = cold[0].candidates;
  record.rungs = tuner->config().rungs;
  record.threads = threads;
  record.cold_seconds = cold_seconds;
  record.warm_seconds = warm_seconds;
  record.warm_memo_hits = warm_memo_hits;
  record.winners_match = winners_match;
  record.switch_on_regime = switch_on_regime;
  record.hold_on_steady = hold_on_steady;
  AppendTuningBench(record);

  return winners_match && hold_on_steady && switch_on_regime ? 0 : 1;
}

}  // namespace ipool::bench

int main(int argc, char** argv) { return ipool::bench::Main(argc, argv); }
