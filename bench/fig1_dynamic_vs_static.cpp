// Figure 1 / §2: the savings of dynamic pooling over a static pool. A
// static pool must be sized for the peak to keep the hit rate up, burning
// idle capacity overnight; Intelligent Pooling's schedule follows demand.
//
// Paper: dynamic pooling achieves "potentially significant savings over the
// static pool"; at 99% hit rate, up to 43% idle-time reduction.
#include <cmath>

#include "bench/bench_util.h"

int main() {
  using namespace ipool;
  using namespace ipool::bench;
  PrintHeader("Figure 1: dynamic pool vs static pool",
              "Paper: dynamic sizing saves significantly vs static pools; up "
              "to 43% idle reduction at 99% hit rate (abstract, Fig 1).");

  // A diurnal region: busy days, quiet nights.
  WorkloadConfig workload = RegionNodeProfile(Region::kWestUs2,
                                              NodeSize::kMedium, /*seed=*/11);
  workload.duration_days = QuickMode() ? 2.0 : 4.0;
  auto generator = CheckOk(DemandGenerator::Create(workload), "workload");
  TimeSeries all = generator.GenerateBinned();
  auto [history, eval] = all.Split(0.5);

  PoolModelConfig pool = EvalPool();

  std::printf("\n%-28s %10s %12s %12s %12s\n", "policy", "avg pool",
              "hit rate", "avg wait(s)", "idle (h)");

  // Static pools of increasing size.
  double static_idle_at_99 = -1.0;
  for (int64_t n : {2, 4, 8, 12, 16, 24, 32}) {
    std::vector<int64_t> schedule(eval.size(), n);
    auto metrics = CheckOk(EvaluateSchedule(eval, schedule, pool), "static");
    std::printf("%-28s %10.1f %11.1f%% %12.2f %12.1f\n",
                StrFormat("static pool N=%ld", n).c_str(),
                metrics.avg_pool_size, 100.0 * metrics.hit_rate,
                metrics.avg_wait_seconds_capped,
                metrics.idle_cluster_seconds / 3600.0);
    if (static_idle_at_99 < 0 && metrics.hit_rate >= 0.99) {
      static_idle_at_99 = metrics.idle_cluster_seconds;
    }
  }

  // Dynamic: SAA on the max-filtered history (Eq 18 absorbs realization
  // noise) with increasing headroom — the role the overshoot-trained
  // forecaster (Eq 12, alpha' near 1) plays in the full ML pipeline.
  double dynamic_idle_at_99 = -1.0;
  double dynamic_hit_at_99 = 0.0;
  struct Knob {
    double alpha;
    double headroom;
  };
  for (const Knob knob : {Knob{0.5, 0.0}, Knob{0.2, 0.0}, Knob{0.1, 0.15},
                          Knob{0.05, 0.3}, Knob{0.02, 0.45},
                          Knob{0.005, 0.6}}) {
    SaaConfig config;
    config.pool = pool;
    config.alpha_prime = knob.alpha;
    auto optimizer = CheckOk(SaaOptimizer::Create(config), "saa");
    TimeSeries planning = MaxFilter(history, 10);
    for (double& v : planning.values()) v *= 1.0 + knob.headroom;
    PoolSchedule schedule = CheckOk(optimizer.Optimize(planning), "optimize");
    // The history window and eval window have equal length: reuse the
    // schedule position-by-position (same time of day/week).
    auto metrics = CheckOk(
        EvaluateSchedule(eval, schedule.pool_size_per_bin, pool), "dynamic");
    std::printf("%-28s %10.1f %11.1f%% %12.2f %12.1f\n",
                StrFormat("dynamic a'=%.3f +%.0f%%", knob.alpha,
                          100.0 * knob.headroom)
                    .c_str(),
                metrics.avg_pool_size, 100.0 * metrics.hit_rate,
                metrics.avg_wait_seconds_capped,
                metrics.idle_cluster_seconds / 3600.0);
    if (dynamic_idle_at_99 < 0 && metrics.hit_rate >= 0.99) {
      dynamic_idle_at_99 = metrics.idle_cluster_seconds;
      dynamic_hit_at_99 = metrics.hit_rate;
    }
  }

  if (static_idle_at_99 > 0 && dynamic_idle_at_99 > 0) {
    std::printf("\nAt >=99%% hit rate: static idle %.1f h vs dynamic idle %.1f h"
                " -> %.0f%% idle reduction (paper: up to 43%%; hit %.1f%%).\n",
                static_idle_at_99 / 3600.0, dynamic_idle_at_99 / 3600.0,
                100.0 * (1.0 - dynamic_idle_at_99 / static_idle_at_99),
                100.0 * dynamic_hit_at_99);
  } else {
    std::printf("\nNote: one of the policies did not reach 99%% hit rate in "
                "this configuration.\n");
  }
  return 0;
}
