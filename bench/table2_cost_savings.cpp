// Table 2 / §7.3: estimated annual cost savings of Intelligent Pooling vs
// static pooling at three wait-time SLAs (0.5 s ~ 99.9% hit, 1 s ~ 99%,
// 5 s ~ 95%), scaled to a 7-region US deployment.
//
// Paper (Table 2): static pools cost >$20M/>$15M/>$5M per year at the three
// SLAs; SSA+ and mWDN each save >$5M/>$5M/>$2M. Shapes to reproduce: the
// tighter the SLA, the bigger both the absolute cost and the absolute
// saving; both ML models land in the same band.
#include "bench/bench_util.h"
#include "forecast/forecaster.h"

namespace {

using namespace ipool;
using namespace ipool::bench;

// Cheapest Pareto point meeting the target wait, if any.
const CurvePoint* CheapestMeetingSla(const std::vector<CurvePoint>& front,
                                     double target_wait) {
  const CurvePoint* best = nullptr;
  for (const CurvePoint& p : front) {
    if (p.metrics.avg_wait_seconds_capped > target_wait) continue;
    if (best == nullptr || p.metrics.idle_cluster_seconds <
                               best->metrics.idle_cluster_seconds) {
      best = &p;
    }
  }
  return best;
}

}  // namespace

int main() {
  using namespace ipool;
  using namespace ipool::bench;
  PrintHeader("Table 2: estimated annual cost savings (7 US regions)",
              "Paper: static >$20M/>$15M/>$5M at 0.5s/1s/5s SLAs; SSA+ and "
              "mWDN each save >$5M/>$5M/>$2M.");

  TradeoffDataset dataset = MakeTradeoffDataset(/*seed=*/31);
  const TimeSeries& eval = dataset.eval;

  // One Pareto front per model (the expensive part), reused for every SLA.
  auto ssa_plus_front = SweepTradeoffGrid(ModelKind::kSsaPlus,
                                          PipelineKind::k2Step, dataset.train,
                                          eval);
  auto mwdn_front = SweepTradeoffGrid(ModelKind::kMwdn, PipelineKind::k2Step,
                                      dataset.train, eval);

  // Scale one pool's idle cost to a 7-region annual estimate: each region
  // runs a session pool and a cluster pool (x2), year = 365 eval-windows.
  const double eval_hours =
      eval.interval() * static_cast<double>(eval.size()) / 3600.0;
  const double annual_scale = 7.0 * 2.0 * (24.0 * 365.0) / eval_hours;
  CogsModel cogs;
  auto annual_dollars = [&](const PoolMetrics& m) {
    return cogs.IdleDollars(m.idle_cluster_seconds) * annual_scale;
  };

  std::printf("\n%-22s %14s %14s %14s %14s %14s\n", "Target wait (hit)",
              "Static $/yr", "SSA+ $/yr", "mWDN $/yr", "Save SSA+",
              "Save mWDN");
  for (double target : {0.5, 1.0, 5.0}) {
    // A static pool is provisioned from history: the smallest constant size
    // meeting the SLA over the training window (which contains the daytime
    // peak), then billed on the evaluation window. Sizing it on the eval
    // window itself would be an oracle no operator has.
    auto [static_size, static_sizing_metrics] = SmallestStaticPool(
        dataset.train, EvalPool(), [&](const PoolMetrics& m) {
          return m.avg_wait_seconds_capped <= target;
        });
    PoolMetrics static_metrics;
    if (static_size >= 0) {
      std::vector<int64_t> schedule(eval.size(), static_size);
      static_metrics =
          CheckOk(EvaluateSchedule(eval, schedule, EvalPool()), "static");
    }
    const CurvePoint* ssa_plus = CheapestMeetingSla(ssa_plus_front, target);
    const CurvePoint* mwdn = CheapestMeetingSla(mwdn_front, target);
    if (static_size < 0 || ssa_plus == nullptr || mwdn == nullptr) {
      std::printf("%-22s  SLA not reachable by every policy; skipped\n",
                  StrFormat("%.1fs", target).c_str());
      continue;
    }
    const double static_cost = annual_dollars(static_metrics);
    const double ssa_cost = annual_dollars(ssa_plus->metrics);
    const double mwdn_cost = annual_dollars(mwdn->metrics);
    std::printf("%-22s %13.2fM %13.2fM %13.2fM %13.2fM %13.2fM\n",
                StrFormat("%.1fs (~%.1f%%)", target,
                          100.0 * static_metrics.hit_rate)
                    .c_str(),
                static_cost / 1e6, ssa_cost / 1e6, mwdn_cost / 1e6,
                (static_cost - ssa_cost) / 1e6,
                (static_cost - mwdn_cost) / 1e6);
  }
  std::printf("\nShapes to check: the ML pipelines save vs static pooling "
              "and the savings grow\nas the SLA tightens (paper: >$5M at "
              "0.5s/1s vs >$2M at 5s); SSA+ and mWDN land\nin a similar "
              "band. EXPERIMENTS.md records the measured numbers.\n");
  return 0;
}
