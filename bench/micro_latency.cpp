// §4.2 / §7.4: end-to-end latency micro-benchmarks (google-benchmark). The
// paper requires the whole train-infer-optimize loop to finish in seconds so
// it can rerun every few minutes; these benches verify each stage's cost and
// the DP-vs-LP solver gap on this implementation.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/recommendation_engine.h"
#include "exec/thread_pool.h"
#include "forecast/forecaster.h"
#include "forecast/ssa.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/simd_kernels.h"
#include "linalg/subspace.h"
#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "obs/trace.h"
#include "solver/saa_optimizer.h"
#include "tsdata/smoothing.h"
#include "workload/demand_generator.h"

namespace {

using namespace ipool;

TimeSeries MakeDemand(size_t bins, uint64_t seed = 17) {
  WorkloadConfig config;
  config.duration_days = static_cast<double>(bins) / 2880.0;
  config.base_rate_per_minute = 6.0;
  config.hourly_spike_requests = 10.0;
  config.seed = seed;
  auto generator = DemandGenerator::Create(config);
  return generator->GenerateBinned();
}

void BM_SaaOptimizerDp(benchmark::State& state) {
  TimeSeries demand = MakeDemand(static_cast<size_t>(state.range(0)));
  SaaConfig config;
  config.pool.tau_bins = 3;
  config.pool.stableness_bins = 10;
  config.pool.max_pool_size = 200;
  config.alpha_prime = 0.3;
  auto optimizer = SaaOptimizer::Create(config);
  for (auto _ : state) {
    auto schedule = optimizer->Optimize(demand);
    benchmark::DoNotOptimize(schedule);
  }
  state.SetLabel("exact block DP");
}
BENCHMARK(BM_SaaOptimizerDp)->Arg(120)->Arg(1440)->Arg(2880)->Arg(20160)
    ->Unit(benchmark::kMillisecond);

void BM_SaaOptimizerLp(benchmark::State& state) {
  TimeSeries demand = MakeDemand(static_cast<size_t>(state.range(0)));
  SaaConfig config;
  config.pool.tau_bins = 3;
  config.pool.stableness_bins = 10;
  config.pool.max_pool_size = 200;
  config.alpha_prime = 0.3;
  auto optimizer = SaaOptimizer::Create(config);
  for (auto _ : state) {
    auto schedule = optimizer->OptimizeLp(demand);
    benchmark::DoNotOptimize(schedule);
  }
  state.SetLabel("two-phase simplex on Eqs 4-11");
}
BENCHMARK(BM_SaaOptimizerLp)->Arg(60)->Arg(120)->Unit(benchmark::kMillisecond);

// ---- SIMD microkernels ----------------------------------------------------
// Scalar vs dispatched (AVX2+FMA where the CPU has it) cost of the two
// primitives every nn/linalg/SSA inner loop is built from. Arg 0 is the
// vector length (96 = one SSA window row, 1024 = a deep-model GEMM tile);
// arg 1 == 1 pins the scalar reference via ScopedForceIsa. Results are
// bit-identical between the two rows by the simd_kernels.h contract — these
// benches measure only the speed gap.

std::vector<double> KernelOperand(size_t n, double phase) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::sin(0.37 * static_cast<double>(i) + phase);
  }
  return v;
}

void BM_SimdDot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double> a = KernelOperand(n, 0.0);
  const std::vector<double> b = KernelOperand(n, 1.0);
  std::optional<simd::ScopedForceIsa> force;
  if (state.range(1) != 0) force.emplace(simd::IsaLevel::kScalar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::Dot(a.data(), b.data(), n));
  }
  state.SetLabel(simd::IsaName(simd::ActiveIsa()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SimdDot)
    ->Args({96, 1})->Args({96, 0})->Args({1024, 1})->Args({1024, 0})
    ->Unit(benchmark::kNanosecond);

void BM_SimdMulAdd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double> src = KernelOperand(n, 0.0);
  std::vector<double> dst = KernelOperand(n, 2.0);
  std::optional<simd::ScopedForceIsa> force;
  if (state.range(1) != 0) force.emplace(simd::IsaLevel::kScalar);
  for (auto _ : state) {
    simd::MulAdd(dst.data(), src.data(), 1e-3, n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetLabel(simd::IsaName(simd::ActiveIsa()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SimdMulAdd)
    ->Args({96, 1})->Args({96, 0})->Args({1024, 1})->Args({1024, 0})
    ->Unit(benchmark::kNanosecond);

// Hankel-free Gram of the SSA trajectory matrix via the sliding-diagonal
// identity: O(L*K + L^2) time, O(L^2) space, the L x K Hankel never exists.
// This is phase 1 of every SSA fit on the control loop's hot path.
void BM_HankelGram(benchmark::State& state) {
  const size_t window = static_cast<size_t>(state.range(0));
  TimeSeries history = MakeDemand(2880);
  const std::vector<double>& series = history.values();
  for (auto _ : state) {
    auto gram = HankelGram(series, window);
    benchmark::DoNotOptimize(gram);
  }
  state.SetLabel("sliding-diagonal identity, no L x K materialization");
}
BENCHMARK(BM_HankelGram)->Arg(96)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

// The same build pinned to the scalar reference kernel: the gap to
// BM_HankelGram is the SIMD win on the first-row Dot (the O(window * K)
// term); the O(window^2) slide recurrence is scalar either way.
void BM_HankelGramScalar(benchmark::State& state) {
  const size_t window = static_cast<size_t>(state.range(0));
  TimeSeries history = MakeDemand(2880);
  const std::vector<double>& series = history.values();
  simd::ScopedForceIsa force(simd::IsaLevel::kScalar);
  for (auto _ : state) {
    auto gram = HankelGram(series, window);
    benchmark::DoNotOptimize(gram);
  }
  state.SetLabel("forced-scalar reference build");
}
BENCHMARK(BM_HankelGramScalar)->Arg(96)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

// Warm-refit path: slide an existing Gram forward by `shift` bins instead of
// rebuilding. Each iteration pays one window^2 copy (to keep the slide from
// compounding) plus the O(window^2 * shift) update itself.
void BM_SlideHankelGram(benchmark::State& state) {
  const size_t window = static_cast<size_t>(state.range(0));
  constexpr size_t kShift = 8;
  TimeSeries history = MakeDemand(2880);
  const std::vector<double>& series = history.values();
  const Matrix base = *HankelGram(
      std::vector<double>(series.begin(),
                          series.end() - static_cast<ptrdiff_t>(kShift)),
      window);
  for (auto _ : state) {
    Matrix gram = base;
    benchmark::DoNotOptimize(SlideHankelGram(gram, series, window, kShift));
  }
  state.SetLabel("shift 8: copy + incremental update");
}
BENCHMARK(BM_SlideHankelGram)->Arg(96)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

namespace {
// The eigensolver benches share one SSA-style Gram: a strong diurnal + surge
// demand window whose spectrum has a well-gapped head, the regime the
// subspace path accepts.
Matrix SsaStyleGram(size_t window) {
  TimeSeries history = MakeDemand(2880, /*seed=*/29);
  std::vector<double> y = history.values();
  const double scale = std::max(1.0, history.Max());
  for (double& v : y) v /= scale;
  auto gram = HankelGram(y, window);
  return std::move(gram).value();
}
}  // namespace

// Old SSA eigensolve: full dense Jacobi, O(L^3) per sweep, all L pairs.
void BM_TopEigenJacobi(benchmark::State& state) {
  const Matrix gram = SsaStyleGram(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto eig = SymmetricEigen(gram);
    benchmark::DoNotOptimize(eig);
  }
  state.SetLabel("dense Jacobi, all pairs");
}
BENCHMARK(BM_TopEigenJacobi)->Arg(96)->Arg(256)->Unit(benchmark::kMillisecond);

// New SSA eigensolve: block power + Rayleigh-Ritz for the top max_rank
// pairs only, O(L^2 * r) per iteration.
void BM_TopEigenSubspace(benchmark::State& state) {
  const Matrix gram = SsaStyleGram(static_cast<size_t>(state.range(0)));
  SubspaceOptions options;
  options.converge_energy = 0.995;  // SSA's rank-selection threshold
  size_t iters = 0;
  for (auto _ : state) {
    auto eig = SubspaceTopEigen(gram, 12, options);
    benchmark::DoNotOptimize(eig);
    if (eig.ok()) iters = eig->iterations;
  }
  state.SetLabel("block power + Rayleigh-Ritz, top 12+4 pairs, " +
                 std::to_string(iters) + " iters");
}
BENCHMARK(BM_TopEigenSubspace)->Arg(96)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_SsaFit(benchmark::State& state) {
  TimeSeries history = MakeDemand(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    SsaForecaster::Options options;
    options.window = 96;
    SsaForecaster ssa(options);
    benchmark::DoNotOptimize(ssa.Fit(history));
  }
}
BENCHMARK(BM_SsaFit)->Arg(720)->Arg(2880)->Unit(benchmark::kMillisecond);

void BM_SsaPlusFitAndForecast(benchmark::State& state) {
  TimeSeries history = MakeDemand(static_cast<size_t>(state.range(0)));
  ForecastParams params;
  params.window = 96;
  params.horizon = 48;
  for (auto _ : state) {
    auto forecaster = CreateForecaster(ModelKind::kSsaPlus, params);
    benchmark::DoNotOptimize((*forecaster)->Fit(history));
    auto forecast = (*forecaster)->Forecast(120);
    benchmark::DoNotOptimize(forecast);
  }
  state.SetLabel("deployed model: full retrain + 1h forecast");
}
BENCHMARK(BM_SsaPlusFitAndForecast)->Arg(720)->Arg(2880)
    ->Unit(benchmark::kMillisecond);

void BM_EndToEndPipeline(benchmark::State& state) {
  TimeSeries history = MakeDemand(2880);
  PipelineConfig config;
  config.model = ModelKind::kSsaPlus;
  config.forecast.window = 96;
  config.forecast.horizon = 48;
  config.saa.alpha_prime = 0.3;
  config.recommendation_bins = 120;
  auto engine = RecommendationEngine::Create(config);
  for (auto _ : state) {
    auto rec = engine->Run(history);
    benchmark::DoNotOptimize(rec);
  }
  state.SetLabel("train + infer + optimize, 1-day history (paper: seconds)");
}
BENCHMARK(BM_EndToEndPipeline)->Unit(benchmark::kMillisecond);

// Cost of an instrumentation point when no ObsContext is wired: every hot
// path pays exactly this (a null check per span/timer/counter site).
void BM_ObsDisabled(benchmark::State& state) {
  ObsContext ctx;  // default: disabled
  for (auto _ : state) {
    obs::ScopedSpan span(ctx.tracer, "noop");
    obs::ScopedTimer timer(nullptr);
    benchmark::DoNotOptimize(ctx);
  }
  state.SetLabel("null span + null timer (hot-path overhead when off)");
}
BENCHMARK(BM_ObsDisabled)->Unit(benchmark::kNanosecond);

// Same instrumentation point with a live registry + tracer: span begin/end,
// histogram observe, counter increment (handles pre-fetched, as hot paths
// should).
void BM_ObsEnabled(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::Histogram* latency = registry.GetHistogram("bench_phase_seconds");
  obs::Counter* runs = registry.GetCounter("bench_runs_total");
  for (auto _ : state) {
    obs::ScopedSpan span(&tracer, "phase");
    obs::ScopedTimer timer(latency);
    runs->Add(1);
    benchmark::DoNotOptimize(registry);
  }
  state.SetLabel("span + histogram timer + counter (pre-fetched handles)");
}
BENCHMARK(BM_ObsEnabled)->Unit(benchmark::kNanosecond);

void BM_MaxFilter(benchmark::State& state) {
  TimeSeries demand = MakeDemand(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    TimeSeries filtered = MaxFilter(demand, 20);
    benchmark::DoNotOptimize(filtered);
  }
}
BENCHMARK(BM_MaxFilter)->Arg(2880)->Arg(40320)->Unit(benchmark::kMicrosecond);

// Dispatch overhead of an empty-body ParallelFor over a pool of
// `state.range(0)` threads: group setup, chunk claiming and the final
// wake-up, with no useful work to amortize them. This is the fixed cost a
// hot path pays for fanning out — the grain heuristics in nn/linalg exist
// to keep real work far above it. Thread count 0 measures the serial-inline
// short-circuit (no pool), the floor every ParallelFor call site pays when
// parallelism is off.
void BM_ParallelForDispatch(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  std::unique_ptr<exec::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<exec::ThreadPool>(threads);
  const exec::ExecContext exec{pool.get()};
  for (auto _ : state) {
    exec::ParallelFor(exec, 0, 1024, [](size_t lo, size_t hi) {
      // Empty body: measure dispatch, not work.
      benchmark::DoNotOptimize(lo);
      benchmark::DoNotOptimize(hi);
    });
  }
  state.SetLabel(threads == 0 ? "serial-inline short-circuit"
                              : "empty-body fan-out + join");
}
BENCHMARK(BM_ParallelForDispatch)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
