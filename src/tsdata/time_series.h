// Fixed-interval time series: the common data representation consumed by the
// forecasting models and the SAA optimizer. The paper consolidates raw
// cluster-request events into 30-second bins (§7); BinEvents performs that
// consolidation here.
#ifndef IPOOL_TSDATA_TIME_SERIES_H_
#define IPOOL_TSDATA_TIME_SERIES_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ipool {

/// The paper's evaluation bin width (§7: "30-second intervals").
inline constexpr double kDefaultIntervalSeconds = 30.0;

/// A regularly sampled series. `value(i)` covers virtual time
/// [start + i*interval, start + (i+1)*interval).
class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(double start_seconds, double interval_seconds,
             std::vector<double> values)
      : start_(start_seconds),
        interval_(interval_seconds),
        values_(std::move(values)) {}

  static Result<TimeSeries> Create(double start_seconds,
                                   double interval_seconds,
                                   std::vector<double> values);

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double start() const { return start_; }
  double interval() const { return interval_; }
  double value(size_t i) const { return values_[i]; }
  double& value(size_t i) { return values_[i]; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// Left edge of bin i.
  double TimeAt(size_t i) const { return start_ + interval_ * static_cast<double>(i); }

  /// Index of the bin containing time t (clamped to [0, size-1]).
  size_t IndexOf(double t) const;

  void Append(double v) { values_.push_back(v); }

  /// Sub-series [begin, end) keeping the time base consistent.
  TimeSeries Slice(size_t begin, size_t end) const;

  /// Splits into (head, tail) where head holds `head_fraction` of the points
  /// (the paper's 80/20 train-test split uses head_fraction = 0.8).
  std::pair<TimeSeries, TimeSeries> Split(double head_fraction) const;

  double Sum() const;
  double Mean() const;
  double Max() const;
  double Min() const;

  /// Running total; cum[i] = sum of values[0..i]. This converts a per-bin
  /// request-count series into the paper's cumulative demand curve D(t).
  TimeSeries CumulativeSum() const;

  bool SameShape(const TimeSeries& other) const {
    return size() == other.size() && interval_ == other.interval_;
  }

 private:
  double start_ = 0.0;
  double interval_ = kDefaultIntervalSeconds;
  std::vector<double> values_;
};

/// Bins raw event timestamps (seconds, any order) into per-interval counts
/// covering [start, start + num_bins * interval). Events outside the range
/// are dropped.
TimeSeries BinEvents(const std::vector<double>& event_times, double start,
                     double interval_seconds, size_t num_bins);

/// Re-bins a count series to a coarser interval by summing groups of
/// `factor` consecutive bins (a trailing partial group is dropped). Used to
/// adapt externally exported telemetry to the pipeline's 30 s bin width.
Result<TimeSeries> Downsample(const TimeSeries& series, size_t factor);

}  // namespace ipool

#endif  // IPOOL_TSDATA_TIME_SERIES_H_
