#include "tsdata/csv.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace ipool {

namespace {

// Parses "a,b" rows after a header; returns (time, value) pairs.
Result<std::vector<std::pair<double, double>>> ReadRows(
    const std::string& path, const std::string& expected_header) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty file: " + path);
  }
  if (line != expected_header) {
    return Status::InvalidArgument(
        StrFormat("%s: expected header '%s', got '%s'", path.c_str(),
                  expected_header.c_str(), line.c_str()));
  }
  std::vector<std::pair<double, double>> rows;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: missing comma", path.c_str(), line_number));
    }
    char* end = nullptr;
    const std::string time_text = line.substr(0, comma);
    const std::string value_text = line.substr(comma + 1);
    const double time = std::strtod(time_text.c_str(), &end);
    if (end == time_text.c_str()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: bad time '%s'", path.c_str(), line_number,
                    time_text.c_str()));
    }
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: bad value '%s'", path.c_str(), line_number,
                    value_text.c_str()));
    }
    rows.push_back({time, value});
  }
  if (rows.empty()) {
    return Status::InvalidArgument("no data rows in " + path);
  }
  return rows;
}

// Checks uniform spacing and returns the interval.
Result<double> InferInterval(const std::vector<std::pair<double, double>>& rows,
                             const std::string& path) {
  if (rows.size() < 2) return kDefaultIntervalSeconds;
  const double interval = rows[1].first - rows[0].first;
  if (interval <= 0.0) {
    return Status::InvalidArgument(path + ": times must be increasing");
  }
  for (size_t i = 2; i < rows.size(); ++i) {
    const double gap = rows[i].first - rows[i - 1].first;
    if (std::fabs(gap - interval) > 1e-6 * std::max(1.0, interval)) {
      return Status::InvalidArgument(
          StrFormat("%s: non-uniform spacing at row %zu (%g vs %g)",
                    path.c_str(), i + 2, gap, interval));
    }
  }
  return interval;
}

}  // namespace

Status SaveTimeSeriesCsv(const TimeSeries& series, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Unavailable("cannot write " + path);
  }
  out << "time_seconds,value\n";
  for (size_t i = 0; i < series.size(); ++i) {
    out << StrFormat("%.6f,%.9g\n", series.TimeAt(i), series.value(i));
  }
  return out.good() ? Status::OK() : Status::Unavailable("write failed: " + path);
}

Result<TimeSeries> LoadTimeSeriesCsv(const std::string& path) {
  IPOOL_ASSIGN_OR_RETURN(auto rows, ReadRows(path, "time_seconds,value"));
  IPOOL_ASSIGN_OR_RETURN(double interval, InferInterval(rows, path));
  std::vector<double> values;
  values.reserve(rows.size());
  for (const auto& [time, value] : rows) values.push_back(value);
  return TimeSeries(rows.front().first, interval, std::move(values));
}

Status SaveScheduleCsv(const StoredSchedule& schedule,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Unavailable("cannot write " + path);
  }
  out << "time_seconds,pool_size\n";
  for (size_t i = 0; i < schedule.pool_size_per_bin.size(); ++i) {
    out << StrFormat(
        "%.6f,%ld\n",
        schedule.start_time + schedule.interval_seconds * static_cast<double>(i),
        schedule.pool_size_per_bin[i]);
  }
  return out.good() ? Status::OK() : Status::Unavailable("write failed: " + path);
}

Result<StoredSchedule> LoadScheduleCsv(const std::string& path) {
  IPOOL_ASSIGN_OR_RETURN(auto rows, ReadRows(path, "time_seconds,pool_size"));
  IPOOL_ASSIGN_OR_RETURN(double interval, InferInterval(rows, path));
  StoredSchedule schedule;
  schedule.start_time = rows.front().first;
  schedule.interval_seconds = interval;
  for (const auto& [time, value] : rows) {
    const int64_t size = static_cast<int64_t>(std::llround(value));
    if (size < 0) {
      return Status::InvalidArgument(path + ": negative pool size");
    }
    schedule.pool_size_per_bin.push_back(size);
  }
  return schedule;
}

}  // namespace ipool
