// Robustness smoothing from §7.5 of the paper: a max filter that widens
// demand spikes ("fatter spikes", Eq 18) so the forecaster and the optimizer
// keep the pool raised long enough to absorb irregular surges.
#ifndef IPOOL_TSDATA_SMOOTHING_H_
#define IPOOL_TSDATA_SMOOTHING_H_

#include <cstddef>

#include "tsdata/time_series.h"

namespace ipool {

/// Eq 18: sliding centered max over a window of `smoothing_factor` bins.
/// For t >= SF/2 the window is [t - SF/2, t + SF/2]; near the left edge the
/// window is clamped to start at 0 (exactly as the paper's two-case
/// definition). The right edge is clamped symmetrically.
/// smoothing_factor == 0 returns the input unchanged.
TimeSeries MaxFilter(const TimeSeries& series, size_t smoothing_factor);

/// Centered moving average with the same windowing convention; used as a
/// comparison point in the smoothing ablation (it fails to preserve spike
/// peaks, which is why the paper uses a max filter).
TimeSeries MeanFilter(const TimeSeries& series, size_t smoothing_factor);

}  // namespace ipool

#endif  // IPOOL_TSDATA_SMOOTHING_H_
