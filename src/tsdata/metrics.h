// Forecast-accuracy metrics used in the paper's evaluation: MAE and RMSE
// (Table 1), plus the asymmetric over/undershoot loss of Eq 12 which the
// deep and hybrid models train against.
#ifndef IPOOL_TSDATA_METRICS_H_
#define IPOOL_TSDATA_METRICS_H_

#include <vector>

#include "common/status.h"

namespace ipool {

/// Mean absolute error. Requires equal non-zero lengths.
Result<double> Mae(const std::vector<double>& truth,
                   const std::vector<double>& prediction);

/// Root mean squared error. Requires equal non-zero lengths.
Result<double> Rmse(const std::vector<double>& truth,
                    const std::vector<double>& prediction);

/// Eq 12–15: L = alpha' * mean(delta+) + (1 - alpha') * mean(delta-), where
/// delta = truth - prediction; delta+ is underprediction (prediction below
/// demand, which causes customer wait) and delta- is overprediction (idle
/// cost). alpha' in [0, 1]. alpha' = 0.5 is symmetric MAE / 2.
Result<double> AsymmetricLoss(const std::vector<double>& truth,
                              const std::vector<double>& prediction,
                              double alpha_prime);

/// Fraction of bins where prediction >= truth (pool would not drain on that
/// bin under a pool sized from the prediction); a cheap proxy for hit rate.
Result<double> CoverageRate(const std::vector<double>& truth,
                            const std::vector<double>& prediction);

}  // namespace ipool

#endif  // IPOOL_TSDATA_METRICS_H_
