#include "tsdata/time_series.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/strings.h"

namespace ipool {

Result<TimeSeries> TimeSeries::Create(double start_seconds,
                                      double interval_seconds,
                                      std::vector<double> values) {
  if (interval_seconds <= 0.0) {
    return Status::InvalidArgument(
        StrFormat("interval must be positive, got %g", interval_seconds));
  }
  return TimeSeries(start_seconds, interval_seconds, std::move(values));
}

size_t TimeSeries::IndexOf(double t) const {
  if (values_.empty()) return 0;
  const double raw = std::floor((t - start_) / interval_);
  if (raw < 0.0) return 0;
  const size_t idx = static_cast<size_t>(raw);
  return std::min(idx, values_.size() - 1);
}

TimeSeries TimeSeries::Slice(size_t begin, size_t end) const {
  begin = std::min(begin, values_.size());
  end = std::min(end, values_.size());
  if (begin >= end) return TimeSeries(TimeAt(begin), interval_, {});
  return TimeSeries(TimeAt(begin), interval_,
                    std::vector<double>(values_.begin() + static_cast<ptrdiff_t>(begin),
                                        values_.begin() + static_cast<ptrdiff_t>(end)));
}

std::pair<TimeSeries, TimeSeries> TimeSeries::Split(double head_fraction) const {
  head_fraction = std::clamp(head_fraction, 0.0, 1.0);
  const size_t head = static_cast<size_t>(
      std::llround(head_fraction * static_cast<double>(values_.size())));
  return {Slice(0, head), Slice(head, values_.size())};
}

double TimeSeries::Sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double TimeSeries::Mean() const {
  return values_.empty() ? 0.0 : Sum() / static_cast<double>(values_.size());
}

double TimeSeries::Max() const {
  return values_.empty() ? -std::numeric_limits<double>::infinity()
                         : *std::max_element(values_.begin(), values_.end());
}

double TimeSeries::Min() const {
  return values_.empty() ? std::numeric_limits<double>::infinity()
                         : *std::min_element(values_.begin(), values_.end());
}

TimeSeries TimeSeries::CumulativeSum() const {
  std::vector<double> cum(values_.size());
  double total = 0.0;
  for (size_t i = 0; i < values_.size(); ++i) {
    total += values_[i];
    cum[i] = total;
  }
  return TimeSeries(start_, interval_, std::move(cum));
}

Result<TimeSeries> Downsample(const TimeSeries& series, size_t factor) {
  if (factor == 0) return Status::InvalidArgument("factor must be >= 1");
  if (factor == 1) return series;
  const size_t groups = series.size() / factor;
  std::vector<double> values(groups, 0.0);
  for (size_t g = 0; g < groups; ++g) {
    for (size_t k = 0; k < factor; ++k) {
      values[g] += series.value(g * factor + k);
    }
  }
  return TimeSeries(series.start(),
                    series.interval() * static_cast<double>(factor),
                    std::move(values));
}

TimeSeries BinEvents(const std::vector<double>& event_times, double start,
                     double interval_seconds, size_t num_bins) {
  std::vector<double> counts(num_bins, 0.0);
  const double end = start + interval_seconds * static_cast<double>(num_bins);
  for (double t : event_times) {
    if (t < start || t >= end) continue;
    const size_t idx = static_cast<size_t>((t - start) / interval_seconds);
    if (idx < num_bins) counts[idx] += 1.0;
  }
  return TimeSeries(start, interval_seconds, std::move(counts));
}

}  // namespace ipool
