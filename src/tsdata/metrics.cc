#include "tsdata/metrics.h"

#include <cmath>

#include "common/strings.h"

namespace ipool {

namespace {

Status CheckLengths(const std::vector<double>& truth,
                    const std::vector<double>& prediction) {
  if (truth.empty()) return Status::InvalidArgument("empty series");
  if (truth.size() != prediction.size()) {
    return Status::InvalidArgument(
        StrFormat("length mismatch: truth=%zu prediction=%zu", truth.size(),
                  prediction.size()));
  }
  return Status::OK();
}

}  // namespace

Result<double> Mae(const std::vector<double>& truth,
                   const std::vector<double>& prediction) {
  IPOOL_RETURN_NOT_OK(CheckLengths(truth, prediction));
  double total = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    total += std::fabs(truth[i] - prediction[i]);
  }
  return total / static_cast<double>(truth.size());
}

Result<double> Rmse(const std::vector<double>& truth,
                    const std::vector<double>& prediction) {
  IPOOL_RETURN_NOT_OK(CheckLengths(truth, prediction));
  double total = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - prediction[i];
    total += d * d;
  }
  return std::sqrt(total / static_cast<double>(truth.size()));
}

Result<double> AsymmetricLoss(const std::vector<double>& truth,
                              const std::vector<double>& prediction,
                              double alpha_prime) {
  IPOOL_RETURN_NOT_OK(CheckLengths(truth, prediction));
  if (alpha_prime < 0.0 || alpha_prime > 1.0) {
    return Status::InvalidArgument(
        StrFormat("alpha' must be in [0,1], got %g", alpha_prime));
  }
  double under = 0.0;  // delta+ : truth above prediction
  double over = 0.0;   // delta- : prediction above truth
  for (size_t i = 0; i < truth.size(); ++i) {
    const double delta = truth[i] - prediction[i];
    if (delta > 0.0) {
      under += delta;
    } else {
      over -= delta;
    }
  }
  const double n = static_cast<double>(truth.size());
  return alpha_prime * (under / n) + (1.0 - alpha_prime) * (over / n);
}

Result<double> CoverageRate(const std::vector<double>& truth,
                            const std::vector<double>& prediction) {
  IPOOL_RETURN_NOT_OK(CheckLengths(truth, prediction));
  size_t covered = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (prediction[i] >= truth[i]) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(truth.size());
}

}  // namespace ipool
