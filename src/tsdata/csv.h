// CSV persistence for demand series and pool-size schedules: the interchange
// format of the ipool_cli tool and the easiest way to feed real telemetry
// exports into the library.
//
// TimeSeries format:  header "time_seconds,value", then one row per bin.
// Schedule format:    header "time_seconds,pool_size", integer sizes.
// Rows must be uniformly spaced; the loader infers start/interval from the
// first two rows and rejects gaps.
#ifndef IPOOL_TSDATA_CSV_H_
#define IPOOL_TSDATA_CSV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "tsdata/time_series.h"

namespace ipool {

Status SaveTimeSeriesCsv(const TimeSeries& series, const std::string& path);
Result<TimeSeries> LoadTimeSeriesCsv(const std::string& path);

struct StoredSchedule {
  double start_time = 0.0;
  double interval_seconds = kDefaultIntervalSeconds;
  std::vector<int64_t> pool_size_per_bin;
};

Status SaveScheduleCsv(const StoredSchedule& schedule,
                       const std::string& path);
Result<StoredSchedule> LoadScheduleCsv(const std::string& path);

}  // namespace ipool

#endif  // IPOOL_TSDATA_CSV_H_
