#include "tsdata/smoothing.h"

#include <algorithm>
#include <deque>

namespace ipool {

namespace {

// Window [i - half, i + half] clamped to the series bounds.
struct Window {
  size_t lo;
  size_t hi;  // inclusive
};

Window ClampedWindow(size_t i, size_t half, size_t n) {
  const size_t lo = i >= half ? i - half : 0;
  const size_t hi = std::min(i + half, n - 1);
  return {lo, hi};
}

}  // namespace

TimeSeries MaxFilter(const TimeSeries& series, size_t smoothing_factor) {
  const size_t n = series.size();
  if (smoothing_factor == 0 || n == 0) return series;
  const size_t half = smoothing_factor / 2;

  // Monotonic deque keeps this O(n) regardless of window width.
  std::vector<double> out(n);
  std::deque<size_t> deq;  // indices with decreasing values
  size_t next = 0;         // first index not yet pushed
  for (size_t i = 0; i < n; ++i) {
    const Window w = ClampedWindow(i, half, n);
    while (next <= w.hi) {
      while (!deq.empty() && series.value(deq.back()) <= series.value(next)) {
        deq.pop_back();
      }
      deq.push_back(next++);
    }
    while (!deq.empty() && deq.front() < w.lo) deq.pop_front();
    out[i] = series.value(deq.front());
  }
  return TimeSeries(series.start(), series.interval(), std::move(out));
}

TimeSeries MeanFilter(const TimeSeries& series, size_t smoothing_factor) {
  const size_t n = series.size();
  if (smoothing_factor == 0 || n == 0) return series;
  const size_t half = smoothing_factor / 2;

  // Prefix sums for O(1) window averages.
  std::vector<double> prefix(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + series.value(i);

  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    const Window w = ClampedWindow(i, half, n);
    const double sum = prefix[w.hi + 1] - prefix[w.lo];
    out[i] = sum / static_cast<double>(w.hi - w.lo + 1);
  }
  return TimeSeries(series.start(), series.interval(), std::move(out));
}

}  // namespace ipool
