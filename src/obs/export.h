// Exporters for the obs subsystem:
//   * PrometheusText — the text exposition format (counters as *_total,
//     gauges, histograms with cumulative `le` buckets + _sum/_count) ready
//     to serve from a /metrics endpoint or diff in tests;
//   * SpansJsonl / MetricsJsonl — one JSON object per line, for offline
//     analysis of phase timings (pipe into jq/pandas);
//   * HumanSummary — the operator-facing per-phase breakdown (count, p50,
//     p95, p99, max per histogram plus counter/gauge values).
#ifndef IPOOL_OBS_EXPORT_H_
#define IPOOL_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ipool::obs {

std::string PrometheusText(const MetricsRegistry& registry);

/// {"id":3,"parent":1,"trace":1,"name":"solve","start_s":0.120,"dur_s":0.034}
std::string SpansJsonl(const Tracer& tracer);
/// Same format over an explicit span list (e.g. a filtered or truncated view
/// served by the net layer's Trace method).
std::string SpansJsonl(const std::vector<SpanRecord>& spans);

/// {"type":"counter","name":"ipool_pipeline_runs_total","labels":{},"value":4}
std::string MetricsJsonl(const MetricsRegistry& registry);

std::string HumanSummary(const MetricsRegistry& registry,
                         const Tracer* tracer = nullptr);

}  // namespace ipool::obs

#endif  // IPOOL_OBS_EXPORT_H_
