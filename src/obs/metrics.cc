#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

namespace ipool::obs {

void Gauge::Add(double delta) {
  // CAS loop instead of fetch_add(double): portable to pre-C++20 atomics in
  // libstdc++ and just as cheap uncontended.
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1),
      exemplar_trace_(bounds_.size() + 1),
      exemplar_value_(bounds_.size() + 1) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(double value, uint64_t exemplar_trace_id) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  if (exemplar_trace_id != 0) {
    exemplar_value_[bucket].store(value, std::memory_order_relaxed);
    exemplar_trace_[bucket].store(exemplar_trace_id, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
  double max = max_.load(std::memory_order_relaxed);
  while (value > max && !max_.compare_exchange_weak(
                            max, value, std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q >= 1.0) return max();
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    const uint64_t next = cumulative + in_bucket;
    if (static_cast<double>(next) >= rank) {
      if (i >= bounds_.size()) return max();  // overflow bucket
      const double hi = bounds_[i];
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      // The exact max bounds any quantile tighter than the bucket edge does.
      return std::min(max(), lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0));
    }
    cumulative = next;
  }
  return max();
}

std::vector<double> DefaultLatencyBuckets() {
  // 1 us .. 120 s, roughly x2.5 per step: 4 buckets per decade keeps
  // interpolation error under ~25% anywhere in the range.
  return {1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
          1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,  0.25,   0.5,
          1.0,  2.5,    5.0,  10.0, 30.0,   60.0, 120.0};
}

namespace {

std::string SeriesKey(const std::string& name, const LabelSet& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

}  // namespace

template <typename T>
T* MetricsRegistry::FindOrNull(const std::vector<Series<T>>& all,
                               const std::string& key) {
  for (const Series<T>& series : all) {
    if (series.key == key) return series.instrument.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const LabelSet& labels) {
  const std::string key = SeriesKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (Counter* existing = FindOrNull(counters_, key)) return existing;
  counters_.push_back({name, labels, key, std::make_unique<Counter>()});
  return counters_.back().instrument.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const LabelSet& labels) {
  const std::string key = SeriesKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (Gauge* existing = FindOrNull(gauges_, key)) return existing;
  gauges_.push_back({name, labels, key, std::make_unique<Gauge>()});
  return gauges_.back().instrument.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const LabelSet& labels,
                                         std::vector<double> upper_bounds) {
  const std::string key = SeriesKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (Histogram* existing = FindOrNull(histograms_, key)) return existing;
  if (upper_bounds.empty()) upper_bounds = DefaultLatencyBuckets();
  histograms_.push_back(
      {name, labels, key, std::make_unique<Histogram>(std::move(upper_bounds))});
  return histograms_.back().instrument.get();
}

std::vector<MetricsRegistry::Entry<Counter>> MetricsRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry<Counter>> out;
  out.reserve(counters_.size());
  for (const auto& s : counters_) {
    out.push_back({s.name, s.labels, s.instrument.get()});
  }
  return out;
}

std::vector<MetricsRegistry::Entry<Gauge>> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry<Gauge>> out;
  out.reserve(gauges_.size());
  for (const auto& s : gauges_) {
    out.push_back({s.name, s.labels, s.instrument.get()});
  }
  return out;
}

std::vector<MetricsRegistry::Entry<Histogram>> MetricsRegistry::Histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry<Histogram>> out;
  out.reserve(histograms_.size());
  for (const auto& s : histograms_) {
    out.push_back({s.name, s.labels, s.instrument.get()});
  }
  return out;
}

}  // namespace ipool::obs
