#include "obs/trace.h"

#include <algorithm>

namespace ipool::obs {

Tracer::Tracer(size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

double Tracer::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

uint64_t Tracer::BeginSpan(const std::string& name) {
  const uint64_t id = next_id_++;
  const uint64_t parent = stack_.empty() ? 0 : stack_.back().id;
  stack_.push_back({id, parent, name, Now()});
  return id;
}

void Tracer::EndSpan(uint64_t id) {
  const double now = Now();
  // Close the target span and anything opened after it that was never
  // explicitly closed (early-return leak tolerance).
  while (!stack_.empty()) {
    ActiveSpan span = std::move(stack_.back());
    stack_.pop_back();
    Record({span.id, span.parent_id, std::move(span.name), span.start_seconds,
            now - span.start_seconds});
    if (span.id == id) return;
  }
}

void Tracer::Record(SpanRecord record) {
  if (ring_.size() < capacity_ && !ring_full_) {
    ring_.push_back(std::move(record));
    if (ring_.size() == capacity_) ring_full_ = true;
    return;
  }
  ring_[ring_next_] = std::move(record);
  ring_next_ = (ring_next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<SpanRecord> Tracer::FinishedSpans() const {
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (!ring_full_) {
    out = ring_;
    return out;
  }
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  return out;
}

}  // namespace ipool::obs
