#include "obs/trace.h"

#include <algorithm>

#include "obs/metrics.h"

namespace ipool::obs {
namespace {

// Tracer generations are globally unique, so a thread-local cache entry can
// only hit the tracer instance that created it — never a dead tracer whose
// address (or whose slot's address) was reused.
std::atomic<uint64_t> g_next_tracer_generation{1};

struct SlotCacheEntry {
  uint64_t generation = 0;
  void* slot = nullptr;
};

// Small direct-mapped cache so a thread touching a handful of tracers (e.g. a
// client tracer and a server tracer in loopback tests) stays on the fast path.
constexpr size_t kSlotCacheEntries = 4;
thread_local SlotCacheEntry t_slot_cache[kSlotCacheEntries];
thread_local size_t t_slot_cache_next = 0;

}  // namespace

Tracer::Tracer(size_t capacity)
    : generation_(g_next_tracer_generation.fetch_add(
          1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()),
      capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

Tracer::~Tracer() = default;

double Tracer::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

Tracer::ThreadSlot* Tracer::Slot() const {
  for (const SlotCacheEntry& entry : t_slot_cache) {
    if (entry.generation == generation_) {
      return static_cast<ThreadSlot*>(entry.slot);
    }
  }
  const std::thread::id self = std::this_thread::get_id();
  ThreadSlot* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    for (const auto& [tid, owned] : slots_) {
      if (tid == self) {
        slot = owned.get();
        break;
      }
    }
    if (slot == nullptr) {
      slots_.emplace_back(self, std::make_unique<ThreadSlot>());
      slot = slots_.back().second.get();
    }
  }
  t_slot_cache[t_slot_cache_next] = {generation_, slot};
  t_slot_cache_next = (t_slot_cache_next + 1) % kSlotCacheEntries;
  return slot;
}

Tracer::ThreadSlot* Tracer::SlotIfExists() const {
  for (const SlotCacheEntry& entry : t_slot_cache) {
    if (entry.generation == generation_) {
      return static_cast<ThreadSlot*>(entry.slot);
    }
  }
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(slots_mu_);
  for (const auto& [tid, owned] : slots_) {
    if (tid == self) return owned.get();
  }
  return nullptr;
}

uint64_t Tracer::BeginSpanInternal(const std::string& name, uint64_t parent_id,
                                   uint64_t trace_id) {
  ThreadSlot* slot = Slot();
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  slot->stack.push_back(
      {id, parent_id, trace_id == 0 ? id : trace_id, name, Now()});
  return id;
}

uint64_t Tracer::BeginSpan(const std::string& name) {
  ThreadSlot* slot = Slot();
  uint64_t parent_id = 0;
  uint64_t trace_id = 0;
  if (!slot->stack.empty()) {
    parent_id = slot->stack.back().id;
    trace_id = slot->stack.back().trace_id;
  }
  return BeginSpanInternal(name, parent_id, trace_id);
}

uint64_t Tracer::BeginSpan(const std::string& name, const SpanContext& parent) {
  return BeginSpanInternal(name, parent.span_id, parent.trace_id);
}

void Tracer::EndSpan(uint64_t id) {
  ThreadSlot* slot = SlotIfExists();
  if (slot == nullptr) return;
  // Only unwind if `id` is actually open on this thread; an unknown id (e.g.
  // an EndSpan raced from the wrong thread) must not wipe the caller's stack.
  bool found = false;
  for (const ActiveSpan& span : slot->stack) {
    if (span.id == id) {
      found = true;
      break;
    }
  }
  if (!found) return;
  const double now = Now();
  std::lock_guard<std::mutex> lock(slot->mu);
  // Close the target span and anything opened after it that was never
  // explicitly closed (early-return leak tolerance).
  while (!slot->stack.empty()) {
    ActiveSpan span = std::move(slot->stack.back());
    slot->stack.pop_back();
    const bool target = span.id == id;
    slot->pending.push_back(
        {{span.id, span.parent_id, span.trace_id, std::move(span.name),
          span.start_seconds, now - span.start_seconds},
         next_finish_seq_.fetch_add(1, std::memory_order_relaxed)});
    if (target) return;
  }
}

SpanContext Tracer::CurrentContext() const {
  ThreadSlot* slot = SlotIfExists();
  if (slot == nullptr || slot->stack.empty()) return {};
  return {slot->stack.back().trace_id, slot->stack.back().id};
}

void Tracer::FlushPending() const {
  std::vector<ThreadSlot*> slots;
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    slots.reserve(slots_.size());
    for (const auto& [tid, owned] : slots_) slots.push_back(owned.get());
  }
  std::vector<PendingSpan> staged;
  for (ThreadSlot* slot : slots) {
    std::lock_guard<std::mutex> lock(slot->mu);
    if (slot->pending.empty()) continue;
    staged.insert(staged.end(),
                  std::make_move_iterator(slot->pending.begin()),
                  std::make_move_iterator(slot->pending.end()));
    slot->pending.clear();
  }
  if (staged.empty()) return;
  std::sort(staged.begin(), staged.end(),
            [](const PendingSpan& a, const PendingSpan& b) {
              return a.finish_seq < b.finish_seq;
            });
  std::lock_guard<std::mutex> lock(ring_mu_);
  for (PendingSpan& span : staged) ring_.push_back(std::move(span.record));
  if (ring_.size() > capacity_) {
    const size_t excess = ring_.size() - capacity_;
    ring_.erase(ring_.begin(),
                ring_.begin() + static_cast<ptrdiff_t>(excess));
    dropped_ += excess;
  }
}

std::vector<SpanRecord> Tracer::FinishedSpans() const {
  FlushPending();
  std::lock_guard<std::mutex> lock(ring_mu_);
  return ring_;
}

size_t Tracer::dropped() const {
  FlushPending();
  std::lock_guard<std::mutex> lock(ring_mu_);
  return dropped_;
}

size_t Tracer::active_depth() const {
  ThreadSlot* slot = SlotIfExists();
  return slot == nullptr ? 0 : slot->stack.size();
}

void Tracer::PublishTo(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  FlushPending();
  size_t retained = 0;
  size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    retained = ring_.size();
    dropped = dropped_;
  }
  metrics->GetGauge("ipool_obs_finished_spans")
      ->Set(static_cast<double>(retained));
  metrics->GetGauge("ipool_obs_dropped_spans")
      ->Set(static_cast<double>(dropped));
}

}  // namespace ipool::obs
