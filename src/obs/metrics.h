// Process-wide metrics primitives for the control plane (§7.5 "real-time
// monitoring is an essential part of Intelligent Pooling"): counters,
// gauges and fixed-bucket latency histograms with derivable p50/p95/p99,
// collected in a MetricsRegistry that exporters (obs/export.h) serialize as
// Prometheus text exposition or JSONL.
//
// Instruments are cheap enough for hot paths: increments/observations are
// lock-free atomics; only registration (GetCounter/GetGauge/GetHistogram)
// takes a mutex, so call sites fetch handles once and hold the raw pointer
// (handles are stable for the registry's lifetime). All instruments accept
// concurrent writers, as does the tracer in obs/trace.h; histograms can
// additionally carry per-bucket exemplars linking a bucket to the trace id
// of one observation that landed in it.
#ifndef IPOOL_OBS_METRICS_H_
#define IPOOL_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ipool::obs {

/// Monotonically increasing event count (Prometheus counter).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written point-in-time value (Prometheus gauge).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: observations land in the first bucket whose upper
/// bound is >= the value (cumulative "le" semantics on export). Quantiles are
/// derived by linear interpolation inside the winning bucket, so p50/p95/p99
/// are as accurate as the bucket layout; max is tracked exactly.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; an implicit +Inf overflow
  /// bucket is always appended.
  explicit Histogram(std::vector<double> upper_bounds);

  /// A nonzero `exemplar_trace_id` additionally records (value, trace id) as
  /// the winning bucket's exemplar (last writer wins), linking the latency
  /// distribution back to a concrete trace. Zero adds no cost.
  void Observe(double value, uint64_t exemplar_trace_id = 0);

  /// One representative observation for a bucket; trace_id == 0 means none
  /// has been recorded yet.
  struct Exemplar {
    uint64_t trace_id = 0;
    double value = 0.0;
  };
  Exemplar bucket_exemplar(size_t i) const {
    return {exemplar_trace_[i].load(std::memory_order_relaxed),
            exemplar_value_[i].load(std::memory_order_relaxed)};
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  /// Interpolated quantile, q in [0, 1]. Returns 0 when empty; observations
  /// beyond the last finite bound report that bound (or the exact max for
  /// q == 1).
  double Quantile(double q) const;

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Non-cumulative count of bucket i (i == bounds().size() is overflow).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  // Parallel per-bucket exemplar slots; the (trace, value) pair is not read
  // atomically as a unit — a torn pair still names a real trace, which is all
  // an exemplar promises.
  std::vector<std::atomic<uint64_t>> exemplar_trace_;
  std::vector<std::atomic<double>> exemplar_value_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Log-spaced latency buckets from 1 us to 120 s — wide enough for both a
/// no-op span and a full deep-model training run.
std::vector<double> DefaultLatencyBuckets();

/// Prometheus-style labels, e.g. {{"model", "SSA+"}}.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Owns every instrument; instruments are identified by (name, labels) and
/// created on first access. Thread-safe; returned pointers stay valid for
/// the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const LabelSet& labels = {});
  Gauge* GetGauge(const std::string& name, const LabelSet& labels = {});
  /// `upper_bounds` is consulted only on first creation of the (name, labels)
  /// series; empty means DefaultLatencyBuckets().
  Histogram* GetHistogram(const std::string& name, const LabelSet& labels = {},
                          std::vector<double> upper_bounds = {});

  template <typename T>
  struct Entry {
    std::string name;
    LabelSet labels;
    const T* instrument;
  };
  /// Registration-ordered snapshots for exporters.
  std::vector<Entry<Counter>> Counters() const;
  std::vector<Entry<Gauge>> Gauges() const;
  std::vector<Entry<Histogram>> Histograms() const;

 private:
  template <typename T>
  struct Series {
    std::string name;
    LabelSet labels;
    std::string key;  // name + rendered labels, the identity
    std::unique_ptr<T> instrument;
  };
  template <typename T>
  static T* FindOrNull(const std::vector<Series<T>>& all,
                       const std::string& key);

  mutable std::mutex mu_;
  std::vector<Series<Counter>> counters_;
  std::vector<Series<Gauge>> gauges_;
  std::vector<Series<Histogram>> histograms_;
};

/// RAII wall-clock timer feeding a histogram on destruction. A null
/// histogram makes both constructor and destructor a single branch, so
/// disabled observability costs nothing on the hot path.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram),
        start_(histogram ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count());
    }
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ipool::obs

#endif  // IPOOL_OBS_METRICS_H_
