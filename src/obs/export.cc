#include "obs/export.h"

#include <cmath>

#include "common/strings.h"

namespace ipool::obs {

namespace {

// Prometheus label values escape backslash, double-quote and newline; JSON
// strings need the same three plus control characters, which our metric
// names never contain.
std::string EscapeValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first + "=\"" + EscapeValue(labels[i].second) + "\"";
  }
  out += '}';
  return out;
}

// Labels merged with the histogram's `le` bound.
std::string RenderBucketLabels(const LabelSet& labels, const std::string& le) {
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    out += k + "=\"" + EscapeValue(v) + "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::string s = StrFormat("%.9g", v);
  return s;
}

// OpenMetrics-style exemplar suffix for a bucket sample line; buckets with no
// recorded exemplar render nothing, so exemplar-free output is byte-identical
// to the classic exposition format.
std::string RenderExemplar(const Histogram::Exemplar& exemplar) {
  if (exemplar.trace_id == 0) return "";
  return StrFormat(" # {trace_id=\"%llu\"} %s",
                   static_cast<unsigned long long>(exemplar.trace_id),
                   FormatDouble(exemplar.value).c_str());
}

std::string JsonLabels(const LabelSet& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += "\"" + EscapeValue(labels[i].first) + "\":\"" +
           EscapeValue(labels[i].second) + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string PrometheusText(const MetricsRegistry& registry) {
  std::string out;
  std::string last_family;
  for (const auto& entry : registry.Counters()) {
    if (entry.name != last_family) {
      out += "# TYPE " + entry.name + " counter\n";
      last_family = entry.name;
    }
    out += entry.name + RenderLabels(entry.labels) + " " +
           StrFormat("%llu", static_cast<unsigned long long>(
                                 entry.instrument->value())) +
           "\n";
  }
  for (const auto& entry : registry.Gauges()) {
    if (entry.name != last_family) {
      out += "# TYPE " + entry.name + " gauge\n";
      last_family = entry.name;
    }
    out += entry.name + RenderLabels(entry.labels) + " " +
           FormatDouble(entry.instrument->value()) + "\n";
  }
  for (const auto& entry : registry.Histograms()) {
    if (entry.name != last_family) {
      out += "# TYPE " + entry.name + " histogram\n";
      last_family = entry.name;
    }
    const Histogram& h = *entry.instrument;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.upper_bounds().size(); ++i) {
      cumulative += h.bucket_count(i);
      out += entry.name + "_bucket" +
             RenderBucketLabels(entry.labels,
                                FormatDouble(h.upper_bounds()[i])) +
             " " + StrFormat("%llu", static_cast<unsigned long long>(cumulative)) +
             RenderExemplar(h.bucket_exemplar(i)) + "\n";
    }
    cumulative += h.bucket_count(h.upper_bounds().size());
    out += entry.name + "_bucket" + RenderBucketLabels(entry.labels, "+Inf") +
           " " + StrFormat("%llu", static_cast<unsigned long long>(cumulative)) +
           RenderExemplar(h.bucket_exemplar(h.upper_bounds().size())) + "\n";
    out += entry.name + "_sum" + RenderLabels(entry.labels) + " " +
           FormatDouble(h.sum()) + "\n";
    out += entry.name + "_count" + RenderLabels(entry.labels) + " " +
           StrFormat("%llu", static_cast<unsigned long long>(h.count())) + "\n";
  }
  return out;
}

std::string SpansJsonl(const std::vector<SpanRecord>& spans) {
  std::string out;
  for (const SpanRecord& span : spans) {
    out += StrFormat(
        "{\"id\":%llu,\"parent\":%llu,\"trace\":%llu,\"name\":\"%s\","
        "\"start_s\":%.9f,\"dur_s\":%.9f}\n",
        static_cast<unsigned long long>(span.id),
        static_cast<unsigned long long>(span.parent_id),
        static_cast<unsigned long long>(span.trace_id),
        EscapeValue(span.name).c_str(), span.start_seconds,
        span.duration_seconds);
  }
  return out;
}

std::string SpansJsonl(const Tracer& tracer) {
  return SpansJsonl(tracer.FinishedSpans());
}

std::string MetricsJsonl(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& entry : registry.Counters()) {
    out += StrFormat("{\"type\":\"counter\",\"name\":\"%s\",\"labels\":%s,"
                     "\"value\":%llu}\n",
                     entry.name.c_str(), JsonLabels(entry.labels).c_str(),
                     static_cast<unsigned long long>(entry.instrument->value()));
  }
  for (const auto& entry : registry.Gauges()) {
    out += StrFormat(
        "{\"type\":\"gauge\",\"name\":\"%s\",\"labels\":%s,\"value\":%.9g}\n",
        entry.name.c_str(), JsonLabels(entry.labels).c_str(),
        entry.instrument->value());
  }
  for (const auto& entry : registry.Histograms()) {
    const Histogram& h = *entry.instrument;
    out += StrFormat(
        "{\"type\":\"histogram\",\"name\":\"%s\",\"labels\":%s,"
        "\"count\":%llu,\"sum\":%.9g,\"p50\":%.9g,\"p95\":%.9g,"
        "\"p99\":%.9g,\"max\":%.9g}\n",
        entry.name.c_str(), JsonLabels(entry.labels).c_str(),
        static_cast<unsigned long long>(h.count()), h.sum(), h.Quantile(0.5),
        h.Quantile(0.95), h.Quantile(0.99), h.max());
  }
  return out;
}

std::string HumanSummary(const MetricsRegistry& registry,
                         const Tracer* tracer) {
  std::string out;
  const auto histograms = registry.Histograms();
  if (!histograms.empty()) {
    out += StrFormat("%-44s %8s %10s %10s %10s %10s\n", "phase (histogram)",
                     "count", "p50", "p95", "p99", "max");
    for (const auto& entry : histograms) {
      const Histogram& h = *entry.instrument;
      out += StrFormat("%-44s %8llu %9.3fms %9.3fms %9.3fms %9.3fms\n",
                       (entry.name + RenderLabels(entry.labels)).c_str(),
                       static_cast<unsigned long long>(h.count()),
                       1e3 * h.Quantile(0.5), 1e3 * h.Quantile(0.95),
                       1e3 * h.Quantile(0.99), 1e3 * h.max());
    }
  }
  const auto counters = registry.Counters();
  for (const auto& entry : counters) {
    out += StrFormat("%-44s %8llu\n",
                     (entry.name + RenderLabels(entry.labels)).c_str(),
                     static_cast<unsigned long long>(entry.instrument->value()));
  }
  for (const auto& entry : registry.Gauges()) {
    out += StrFormat("%-44s %8.6g\n",
                     (entry.name + RenderLabels(entry.labels)).c_str(),
                     entry.instrument->value());
  }
  if (tracer != nullptr) {
    out += StrFormat("spans retained: %zu (dropped %zu, open %zu)\n",
                     tracer->FinishedSpans().size(), tracer->dropped(),
                     tracer->active_depth());
  }
  return out;
}

}  // namespace ipool::obs
