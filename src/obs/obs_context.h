// ObsContext: the observability handle threaded through the control-plane
// configs (ControlLoopConfig, PipelineConfig, SaaConfig, ForecastParams,
// SimConfig, worker configs). It is two non-owning pointers; the default
// (both null) disables observability and every instrumented call site
// degrades to a single branch, so the hot paths stay zero-cost unless an
// operator wires a registry/tracer in (tools/ipool_cli --metrics-out /
// --trace-out).
#ifndef IPOOL_OBS_OBS_CONTEXT_H_
#define IPOOL_OBS_OBS_CONTEXT_H_

namespace ipool {

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

struct ObsContext {
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;

  bool enabled() const { return metrics != nullptr || tracer != nullptr; }

  /// Child configs default to a null context; parents propagate theirs into
  /// children that were left unset (an explicitly wired child wins).
  ObsContext OrElse(const ObsContext& fallback) const {
    return enabled() ? *this : fallback;
  }
};

}  // namespace ipool

#endif  // IPOOL_OBS_OBS_CONTEXT_H_
