// Span-based phase tracing for the control plane and the serving stack: a
// Tracer hands out RAII ScopedSpans, nests them through a per-thread
// active-span stack (child spans opened while a parent is active record its
// id), and retains the most recent finished spans in a bounded ring buffer.
//
// This answers "where did the last pipeline run spend its time?" — the §7.6
// end-to-end latency question — without a log pipeline: the JSONL exporter
// (obs/export.h) dumps the ring for offline analysis.
//
// Thread-safety model: every thread that touches a Tracer lazily gets its own
// slot holding (a) that thread's active-span stack and (b) a buffer of spans
// it finished but has not yet flushed into the shared ring. Begin/End touch
// only thread-private state plus one uncontended slot mutex on End, so hot
// paths never serialize across threads. Readers (FinishedSpans, dropped,
// PublishTo) sweep all slots and merge pending spans into the shared ring in
// global finish order. A span must be ended on the thread that began it; to
// link work across threads (e.g. a server worker continuing a client's
// request), pass an explicit SpanContext parent instead of sharing a span.
// A null Tracer* makes ScopedSpan a no-op costing one branch per end.
#ifndef IPOOL_OBS_TRACE_H_
#define IPOOL_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ipool::obs {

class MetricsRegistry;

/// Identifies a position in a trace tree so causality can cross threads and
/// processes: `trace_id` names the whole request tree, `span_id` the specific
/// parent (0 = adopt the trace with no in-process parent, as when a server
/// span continues a trace begun in the client process).
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

/// One finished span. Times are wall-clock seconds relative to the tracer's
/// construction (monotonic clock).
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root span
  uint64_t trace_id = 0;   // root span's id, shared by the whole tree
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

class Tracer {
 public:
  /// `capacity` bounds the finished-span ring; older spans are dropped (and
  /// counted in dropped()) once it is full.
  explicit Tracer(size_t capacity = 4096);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  /// Opens a span as a child of the calling thread's currently active one.
  /// Prefer ScopedSpan.
  uint64_t BeginSpan(const std::string& name);
  /// Opens a span adopting an explicit parent context: the span joins
  /// `parent.trace_id`'s tree (falling back to a fresh trace when the context
  /// is empty) regardless of what is active on the calling thread.
  uint64_t BeginSpan(const std::string& name, const SpanContext& parent);
  /// Closes `id` and any spans opened after it on the calling thread that
  /// were left open (leak tolerance for early returns that bypass inner
  /// scopes). Must run on the thread that called BeginSpan.
  void EndSpan(uint64_t id);

  /// The calling thread's innermost active span (trace_id + span_id), or an
  /// empty context when no span is open on this thread.
  SpanContext CurrentContext() const;

  /// Finished spans, oldest first. Children complete before their parent, so
  /// a parent appears after its children. Flushes every thread's pending
  /// spans into the shared ring; spans still open elsewhere are excluded.
  std::vector<SpanRecord> FinishedSpans() const;

  /// Spans evicted from the bounded ring (flushes pending spans first).
  size_t dropped() const;
  /// Open spans on the calling thread.
  size_t active_depth() const;
  /// Seconds since the tracer was constructed.
  double Now() const;

  /// Exports tracer health into `metrics` (ipool_obs_dropped_spans and
  /// ipool_obs_finished_spans gauges). Null registry is a no-op.
  void PublishTo(MetricsRegistry* metrics) const;

 private:
  struct ActiveSpan {
    uint64_t id;
    uint64_t parent_id;
    uint64_t trace_id;
    std::string name;
    double start_seconds;
  };
  struct PendingSpan {
    SpanRecord record;
    uint64_t finish_seq;  // global completion order across threads
  };
  struct ThreadSlot {
    // The owning thread alone touches `stack`; `pending` is shared with
    // reader threads and guarded by `mu`.
    std::vector<ActiveSpan> stack;
    std::mutex mu;
    std::vector<PendingSpan> pending;
  };

  ThreadSlot* Slot() const;
  ThreadSlot* SlotIfExists() const;
  uint64_t BeginSpanInternal(const std::string& name, uint64_t parent_id,
                             uint64_t trace_id);
  // Moves every slot's pending spans into ring_, in finish order. Caller must
  // not hold any tracer lock.
  void FlushPending() const;

  const uint64_t generation_;  // distinguishes tracers in thread-local caches
  std::chrono::steady_clock::time_point epoch_;
  size_t capacity_;

  mutable std::mutex slots_mu_;
  mutable std::vector<std::pair<std::thread::id, std::unique_ptr<ThreadSlot>>>
      slots_;

  mutable std::mutex ring_mu_;
  mutable std::vector<SpanRecord> ring_;  // oldest first, size <= capacity_
  mutable size_t dropped_ = 0;

  std::atomic<uint64_t> next_id_{1};
  mutable std::atomic<uint64_t> next_finish_seq_{1};
};

/// RAII span handle; a null tracer disables it.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name)
      : tracer_(tracer), id_(tracer ? tracer->BeginSpan(name) : 0) {}
  /// Adopts `parent` (e.g. a trace id received over the wire) instead of the
  /// calling thread's active span.
  ScopedSpan(Tracer* tracer, const char* name, const SpanContext& parent)
      : tracer_(tracer), id_(tracer ? tracer->BeginSpan(name, parent) : 0) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(id_);
  }

 private:
  Tracer* tracer_;
  uint64_t id_;
};

}  // namespace ipool::obs

#endif  // IPOOL_OBS_TRACE_H_
