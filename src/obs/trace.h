// Span-based phase tracing for the control plane: a Tracer hands out RAII
// ScopedSpans, nests them through an explicit active-span stack (child spans
// opened while a parent is active record its id), and retains the most
// recent finished spans in a bounded ring buffer.
//
// This answers "where did the last pipeline run spend its time?" — the §7.6
// end-to-end latency question — without a log pipeline: the JSONL exporter
// (obs/export.h) dumps the ring for offline analysis.
//
// The tracer is intentionally single-threaded (the control loop is a single
// logical thread); use one Tracer per thread if that ever changes. A null
// Tracer* makes ScopedSpan a no-op costing one branch per end.
#ifndef IPOOL_OBS_TRACE_H_
#define IPOOL_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace ipool::obs {

/// One finished span. Times are wall-clock seconds relative to the tracer's
/// construction (monotonic clock).
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root span
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

class Tracer {
 public:
  /// `capacity` bounds the finished-span ring; older spans are dropped (and
  /// counted in dropped()) once it is full.
  explicit Tracer(size_t capacity = 4096);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span as a child of the currently active one. Prefer ScopedSpan.
  uint64_t BeginSpan(const std::string& name);
  /// Closes `id` and any spans opened after it that were left open (leak
  /// tolerance for early returns that bypass inner scopes).
  void EndSpan(uint64_t id);

  /// Finished spans, oldest first. Children complete before their parent, so
  /// a parent appears after its children.
  std::vector<SpanRecord> FinishedSpans() const;

  size_t dropped() const { return dropped_; }
  size_t active_depth() const { return stack_.size(); }
  /// Seconds since the tracer was constructed.
  double Now() const;

 private:
  struct ActiveSpan {
    uint64_t id;
    uint64_t parent_id;
    std::string name;
    double start_seconds;
  };

  void Record(SpanRecord record);

  std::chrono::steady_clock::time_point epoch_;
  std::vector<ActiveSpan> stack_;
  std::vector<SpanRecord> ring_;
  size_t capacity_;
  size_t ring_next_ = 0;  // insertion cursor once the ring is full
  bool ring_full_ = false;
  size_t dropped_ = 0;
  uint64_t next_id_ = 1;
};

/// RAII span handle; a null tracer disables it.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name)
      : tracer_(tracer), id_(tracer ? tracer->BeginSpan(name) : 0) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(id_);
  }

 private:
  Tracer* tracer_;
  uint64_t id_;
};

}  // namespace ipool::obs

#endif  // IPOOL_OBS_TRACE_H_
