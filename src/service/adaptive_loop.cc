#include "service/adaptive_loop.h"

namespace ipool {

Status AdaptiveLoopConfig::Validate() const {
  IPOOL_RETURN_NOT_OK(pipeline.Validate());
  IPOOL_RETURN_NOT_OK(loop.Validate());
  IPOOL_RETURN_NOT_OK(tuner.Validate());
  return Status::OK();
}

Result<AdaptiveLoopResult> AdaptiveLoop::Run(
    const AdaptiveLoopConfig& config,
    const std::vector<DemandPeriod>& periods) {
  IPOOL_RETURN_NOT_OK(config.Validate());
  if (periods.empty()) {
    return Status::InvalidArgument("need at least one demand period");
  }

  IPOOL_ASSIGN_OR_RETURN(AutoTuner tuner, AutoTuner::Create(config.tuner));

  AdaptiveLoopResult result;
  double alpha = tuner.alpha();
  for (const DemandPeriod& period : periods) {
    PipelineConfig pipeline = config.pipeline;
    pipeline.saa.alpha_prime = alpha;
    IPOOL_ASSIGN_OR_RETURN(RecommendationEngine engine,
                           RecommendationEngine::Create(pipeline));
    IPOOL_ASSIGN_OR_RETURN(
        ControlLoopResult loop_result,
        ControlLoop::Run(engine, config.loop, period.demand,
                         period.request_events));

    AdaptivePeriodResult entry;
    entry.alpha_prime = alpha;
    entry.avg_wait_seconds = loop_result.sim.avg_wait_seconds;
    entry.hit_rate = loop_result.sim.hit_rate;
    entry.idle_cluster_seconds = loop_result.sim.idle_cluster_seconds;
    result.periods.push_back(entry);

    alpha = tuner.Observe(alpha, loop_result.sim.avg_wait_seconds);
  }
  result.final_alpha = alpha;
  return result;
}

}  // namespace ipool
