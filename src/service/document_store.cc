#include "service/document_store.h"

namespace ipool {

void DocumentStore::Put(const std::string& key, std::string value,
                        double time) {
  Document& doc = documents_[key];
  doc.value = std::move(value);
  doc.updated_at = time;
  ++doc.version;
}

Result<DocumentStore::Document> DocumentStore::Get(
    const std::string& key) const {
  auto it = documents_.find(key);
  if (it == documents_.end()) {
    return Status::NotFound("document not found: " + key);
  }
  return it->second;
}

bool DocumentStore::Delete(const std::string& key) {
  return documents_.erase(key) > 0;
}

}  // namespace ipool
