// Closes the §6 feedback loop through the whole control plane: the
// hyper-parameter tuning module runs at a lower frequency than the ML
// pipeline (§3). Each tuning period (e.g. one day) the control loop runs
// with the current alpha', the observed customer wait time is fed to the
// AutoTuner, and the next period starts with the retuned alpha' — steering
// the live system to its wait-time SLA with no engineering input.
#ifndef IPOOL_SERVICE_ADAPTIVE_LOOP_H_
#define IPOOL_SERVICE_ADAPTIVE_LOOP_H_

#include <vector>

#include "core/recommendation_engine.h"
#include "service/control_loop.h"
#include "tuning/auto_tuner.h"

namespace ipool {

struct AdaptiveLoopConfig {
  /// Pipeline template; its saa.alpha_prime is overridden by the tuner each
  /// period.
  PipelineConfig pipeline;
  ControlLoopConfig loop;
  AutoTunerConfig tuner;

  Status Validate() const;
};

struct AdaptivePeriodResult {
  double alpha_prime = 0.0;
  double avg_wait_seconds = 0.0;
  double hit_rate = 0.0;
  double idle_cluster_seconds = 0.0;
};

struct AdaptiveLoopResult {
  /// One entry per tuning period, in order.
  std::vector<AdaptivePeriodResult> periods;
  double final_alpha = 0.0;
};

/// One demand period (typically a day) to run the control loop against.
struct DemandPeriod {
  TimeSeries demand;
  std::vector<double> request_events;
};

class AdaptiveLoop {
 public:
  /// Runs the control loop over the given periods, retuning alpha' between
  /// them.
  static Result<AdaptiveLoopResult> Run(
      const AdaptiveLoopConfig& config,
      const std::vector<DemandPeriod>& periods);
};

}  // namespace ipool

#endif  // IPOOL_SERVICE_ADAPTIVE_LOOP_H_
