#include "service/sharded_telemetry_store.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <mutex>
#include <utility>

#include "common/strings.h"

namespace ipool {

namespace {

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

uint64_t Fnv1a(const std::string& key) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

ShardedTelemetryStore::ShardedTelemetryStore(size_t shards) {
  const size_t count = RoundUpPowerOfTwo(shards == 0 ? 1 : shards);
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t ShardedTelemetryStore::ShardIndex(const std::string& metric) const {
  return static_cast<size_t>(Fnv1a(metric)) & (shards_.size() - 1);
}

Status ShardedTelemetryStore::Record(const std::string& metric, double time,
                                     double value) {
  Shard& shard = *shards_[ShardIndex(metric)];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  return shard.store.Record(metric, time, value);
}

Status ShardedTelemetryStore::RecordBatch(std::vector<BatchPoint> points) {
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < points.size(); ++i) {
    by_shard[ShardIndex(points[i].metric)].push_back(i);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    // Pass 1: validate the shard's slice against the store's last-seen
    // times without mutating anything, so a mid-slice ordering violation
    // rejects the whole slice instead of leaving a prefix applied.
    std::map<std::string, double> last_time;
    for (const size_t i : by_shard[s]) {
      const BatchPoint& p = points[i];
      auto [it, inserted] = last_time.try_emplace(p.metric, 0.0);
      if (inserted) it->second = shard.store.LastTime(p.metric);
      if (p.time < it->second) {
        return Status::InvalidArgument(
            StrFormat("out-of-order telemetry for %s: %g < %g",
                      p.metric.c_str(), p.time, it->second));
      }
      it->second = p.time;
    }
    // Pass 2: apply. Record cannot fail now — ordering was just proven.
    for (const size_t i : by_shard[s]) {
      const BatchPoint& p = points[i];
      IPOOL_RETURN_NOT_OK(shard.store.Record(p.metric, p.time, p.value));
    }
  }
  return Status::OK();
}

Result<TimeSeries> ShardedTelemetryStore::QueryBinned(
    const std::string& metric, double start, double interval_seconds,
    size_t bins) const {
  const Shard& shard = *shards_[ShardIndex(metric)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.store.QueryBinned(metric, start, interval_seconds, bins);
}

Result<ShardedTelemetryStore::BinnedView> ShardedTelemetryStore::SnapshotBinned(
    const std::string& metric, double interval_seconds, size_t bins) const {
  if (interval_seconds <= 0.0) {
    return Status::InvalidArgument("interval must be positive");
  }
  const Shard& shard = *shards_[ShardIndex(metric)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  BinnedView view;
  view.point_count = shard.store.PointCount(metric);
  view.last_time = shard.store.LastTime(metric);
  if (view.point_count == 0) return view;
  const double start = view.last_time + interval_seconds -
                       interval_seconds * static_cast<double>(bins);
  IPOOL_ASSIGN_OR_RETURN(
      view.history,
      shard.store.QueryBinned(metric, start, interval_seconds, bins));
  return view;
}

double ShardedTelemetryStore::Sum(const std::string& metric, double start,
                                  double end) const {
  const Shard& shard = *shards_[ShardIndex(metric)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.store.Sum(metric, start, end);
}

size_t ShardedTelemetryStore::PointCount(const std::string& metric) const {
  const Shard& shard = *shards_[ShardIndex(metric)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.store.PointCount(metric);
}

int64_t ShardedTelemetryStore::CountInRange(const std::string& metric,
                                            double start, double end) const {
  const Shard& shard = *shards_[ShardIndex(metric)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.store.CountInRange(metric, start, end);
}

std::vector<std::string> ShardedTelemetryStore::Metrics() const {
  std::vector<std::string> names;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    std::vector<std::string> shard_names = shard->store.Metrics();
    names.insert(names.end(), std::make_move_iterator(shard_names.begin()),
                 std::make_move_iterator(shard_names.end()));
  }
  std::sort(names.begin(), names.end());
  return names;
}

double ShardedTelemetryStore::LastTime(const std::string& metric) const {
  const Shard& shard = *shards_[ShardIndex(metric)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.store.LastTime(metric);
}

void ShardedTelemetryStore::PublishTo(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    shard->store.PublishTo(registry);
  }
}

}  // namespace ipool
