#include "service/monitoring.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/metrics.h"

namespace ipool {

std::string PipelineStatusToString(PipelineStatus status) {
  switch (status) {
    case PipelineStatus::kSucceeded:
      return "succeeded";
    case PipelineStatus::kFailed:
      return "failed";
    case PipelineStatus::kGuardrailRejected:
      return "guardrail-rejected";
  }
  return "unknown";
}

Status AlertConfig::Validate() const {
  if (consecutive_failure_threshold == 0) {
    return Status::InvalidArgument("failure threshold must be >= 1");
  }
  if (min_hit_rate < 0.0 || min_hit_rate > 1.0) {
    return Status::InvalidArgument("min_hit_rate must be in [0, 1]");
  }
  if (window_seconds <= 0.0) {
    return Status::InvalidArgument("window must be positive");
  }
  if (min_requests_for_hit_alert < 1) {
    return Status::InvalidArgument("min_requests_for_hit_alert must be >= 1");
  }
  return Status::OK();
}

Result<Monitor> Monitor::Create(const AlertConfig& config,
                                const CogsModel& cogs,
                                int64_t static_reference_pool) {
  IPOOL_RETURN_NOT_OK(config.Validate());
  if (static_reference_pool < 0) {
    return Status::InvalidArgument("static reference pool must be >= 0");
  }
  return Monitor(config, cogs, static_reference_pool);
}

void Monitor::Touch(double time) {
  if (!saw_event_) {
    first_event_time_ = time;
    saw_event_ = true;
  }
  last_seen_time_ = std::max(last_seen_time_, time);
  // Drop request records strictly behind the trailing window of the most
  // recent event: WindowBegin/Snapshot only ever look back window_seconds
  // from "now", and the feeds deliver non-decreasing times, so these can
  // never be read again. Keeps a long-running monitor O(window).
  const double cutoff = last_seen_time_ - config_.window_seconds;
  while (!requests_.empty() && requests_.front().time < cutoff) {
    requests_.pop_front();
  }
}

void Monitor::RecordRequest(double time, bool hit, double wait_seconds) {
  Touch(time);
  requests_.push_back({time, hit, wait_seconds});
}

void Monitor::RecordClusterIdle(double time, double idle_seconds) {
  Touch(time);
  total_idle_seconds_ += std::max(0.0, idle_seconds);
}

void Monitor::RecordPipelineRun(double time, PipelineStatus status) {
  Touch(time);
  switch (status) {
    case PipelineStatus::kSucceeded:
      ++successes_;
      consecutive_failures_ = 0;
      failure_alert_armed_ = true;
      break;
    case PipelineStatus::kFailed:
      ++failures_;
      ++consecutive_failures_;
      break;
    case PipelineStatus::kGuardrailRejected:
      // The guardrail rejecting a bad forecast is the system working as
      // designed; it neither fails nor clears the failure streak.
      ++guardrail_rejections_;
      break;
  }
}

void Monitor::RecordRecommendation(double time, double pool_size) {
  Touch(time);
  latest_recommendation_ = pool_size;
}

void Monitor::RecordHydrationStatus(double time, int64_t provisioning,
                                    int64_t ready, int64_t targeted) {
  Touch(time);
  provisioning_ = provisioning;
  ready_ = ready;
  targeted_ = targeted;
}

size_t Monitor::WindowBegin(double now) const {
  const double start = now - config_.window_seconds;
  auto it = std::lower_bound(
      requests_.begin(), requests_.end(), start,
      [](const RequestRecord& r, double t) { return r.time < t; });
  return static_cast<size_t>(it - requests_.begin());
}

std::vector<Alert> Monitor::CheckAlerts(double now) {
  std::vector<Alert> fired;

  if (consecutive_failures_ >= config_.consecutive_failure_threshold) {
    if (failure_alert_armed_) {
      failure_alert_armed_ = false;
      fired.push_back(
          {now, "pipeline-failures",
           StrFormat("%zu consecutive pipeline failures; pooling worker "
                     "running on stale/default configuration",
                     consecutive_failures_)});
    }
  }

  DashboardSnapshot snap = Snapshot(now);
  const bool hit_breached =
      snap.window_requests >= config_.min_requests_for_hit_alert &&
      snap.window_hit_rate < config_.min_hit_rate;
  if (hit_breached) {
    if (hit_alert_armed_) {
      hit_alert_armed_ = false;
      fired.push_back({now, "hit-rate",
                       StrFormat("pool hit rate %.1f%% below SLO %.1f%% over "
                                 "the last %s (%ld requests)",
                                 100.0 * snap.window_hit_rate,
                                 100.0 * config_.min_hit_rate,
                                 HumanDuration(config_.window_seconds).c_str(),
                                 snap.window_requests)});
    }
  } else {
    hit_alert_armed_ = true;
  }

  alerts_.insert(alerts_.end(), fired.begin(), fired.end());
  return fired;
}

void Monitor::PublishTo(obs::MetricsRegistry* registry, double now) const {
  if (registry == nullptr) return;
  const DashboardSnapshot snap = Snapshot(now);
  registry->GetGauge("ipool_monitor_window_requests")
      ->Set(static_cast<double>(snap.window_requests));
  registry->GetGauge("ipool_monitor_window_hit_rate")
      ->Set(snap.window_hit_rate);
  registry->GetGauge("ipool_monitor_demand_per_minute")
      ->Set(snap.demand_per_minute);
  registry->GetGauge("ipool_monitor_avg_wait_seconds")
      ->Set(snap.avg_wait_seconds);
  registry->GetGauge("ipool_monitor_idle_cluster_seconds")
      ->Set(snap.total_idle_cluster_seconds);
  registry->GetGauge("ipool_monitor_recommended_pool_size")
      ->Set(snap.recommended_pool_size);
  registry->GetGauge("ipool_monitor_clusters_ready")
      ->Set(static_cast<double>(snap.clusters_ready));
  registry->GetGauge("ipool_monitor_clusters_provisioning")
      ->Set(static_cast<double>(snap.clusters_provisioning));
  registry->GetGauge("ipool_monitor_pipeline_successes")
      ->Set(static_cast<double>(snap.pipeline_successes));
  registry->GetGauge("ipool_monitor_pipeline_failures")
      ->Set(static_cast<double>(snap.pipeline_failures));
  registry->GetGauge("ipool_monitor_guardrail_rejections")
      ->Set(static_cast<double>(snap.guardrail_rejections));
  registry->GetGauge("ipool_monitor_cogs_saved_dollars")
      ->Set(snap.cogs_saved_dollars);
  registry->GetGauge("ipool_monitor_alerts_fired")
      ->Set(static_cast<double>(alerts_.size()));
}

DashboardSnapshot Monitor::Snapshot(double now) const {
  DashboardSnapshot snap;
  snap.time = now;
  const size_t begin = WindowBegin(now);
  double wait_total = 0.0;
  for (size_t i = begin; i < requests_.size(); ++i) {
    if (requests_[i].time > now) break;
    ++snap.window_requests;
    if (requests_[i].hit) {
      ++snap.window_hits;
    } else {
      ++snap.window_misses;
    }
    wait_total += requests_[i].wait_seconds;
  }
  snap.window_hit_rate =
      snap.window_requests > 0
          ? static_cast<double>(snap.window_hits) /
                static_cast<double>(snap.window_requests)
          : 1.0;
  const double window = std::min(
      config_.window_seconds, saw_event_ ? now - first_event_time_ : 0.0);
  snap.demand_per_minute =
      window > 0.0 ? static_cast<double>(snap.window_requests) / window * 60.0
                   : 0.0;
  snap.avg_wait_seconds =
      snap.window_requests > 0
          ? wait_total / static_cast<double>(snap.window_requests)
          : 0.0;
  snap.total_idle_cluster_seconds = total_idle_seconds_;
  snap.recommended_pool_size = latest_recommendation_;
  snap.clusters_provisioning = provisioning_;
  snap.clusters_ready = ready_;
  snap.clusters_targeted = targeted_;
  snap.pipeline_successes = successes_;
  snap.pipeline_failures = failures_;
  snap.guardrail_rejections = guardrail_rejections_;

  // COGS saved: what the static reference pool would have burnt idling since
  // the first event, minus what we actually burnt.
  if (saw_event_ && now > first_event_time_) {
    const double elapsed = now - first_event_time_;
    const double static_idle =
        static_cast<double>(static_reference_pool_) * elapsed;
    snap.cogs_saved_dollars =
        cogs_.IdleDollars(std::max(0.0, static_idle - total_idle_seconds_));
  }
  return snap;
}

}  // namespace ipool
