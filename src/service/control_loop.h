// End-to-end control-plane driver: replays a demand trace through the full
// production loop — telemetry ingestion, periodic Intelligent Pooling
// Worker runs (with guardrail and failure injection), recommendation
// persistence, Pooling Worker target maintenance with stale/default
// fallbacks — and finally evaluates the applied schedule with the
// event-driven pool simulator.
#ifndef IPOOL_SERVICE_CONTROL_LOOP_H_
#define IPOOL_SERVICE_CONTROL_LOOP_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "core/recommendation_engine.h"
#include "exec/thread_pool.h"
#include "obs/obs_context.h"
#include "service/workers.h"
#include "sim/pool_simulator.h"
#include "tsdata/time_series.h"

namespace ipool {

struct ControlLoopConfig {
  /// Cadence of Intelligent Pooling Worker runs (paper: e.g. 30 min, while
  /// each run emits a 1 h recommendation).
  double run_interval_seconds = 1800.0;
  IntelligentPoolingWorkerConfig worker;
  PoolingWorkerConfig pooling;
  SimConfig sim;
  /// Observability sink (optional). Run() propagates it into the worker,
  /// pooling and sim configs unless those were wired explicitly, so one
  /// assignment traces the whole loop: a "control_loop" root span with
  /// "telemetry_ingest", per-run "pipeline" (ingestion → forecast → solve →
  /// guardrail → apply) and "simulate" children, plus loop-level counters.
  ObsContext obs;

  Status Validate() const;
};

struct ControlLoopResult {
  SimResult sim;
  /// The pool target the Pooling Worker actually applied per bin.
  std::vector<int64_t> applied_schedule;
  size_t pipeline_runs = 0;
  size_t pipeline_failures = 0;
  size_t guardrail_rejections = 0;
  /// Bins during which the Pooling Worker was running on the default size.
  size_t fallback_bins = 0;
};

/// One pool of a fleet (a region x node-size pair): its own loop config,
/// demand trace and request events. Each pool's loop is fully independent —
/// own telemetry store, document store and simulator.
struct FleetPoolSpec {
  ControlLoopConfig config;
  TimeSeries demand;
  std::vector<double> request_events;
};

class ControlLoop {
 public:
  /// `fail_run` (optional) returns true to crash a given pipeline run
  /// (0-based index) — the §7.6 fault-injection hook.
  static Result<ControlLoopResult> Run(
      const RecommendationEngine& engine, const ControlLoopConfig& config,
      const TimeSeries& demand, const std::vector<double>& request_events,
      const std::function<bool(size_t)>& fail_run = nullptr);

  /// Runs one control loop per fleet pool, fanned out over `exec`'s pool
  /// when one is wired in; results come back in spec order, bit-identical
  /// to running the loops serially. The shared engine is read-only across
  /// loops. In the parallel case each spec's ObsContext keeps its metrics
  /// (lock-free atomics) but drops its tracer — obs::Tracer is
  /// single-threaded, as is any tracer reachable through the engine's own
  /// config, which callers must not wire when passing a pool here.
  static Result<std::vector<ControlLoopResult>> RunFleet(
      const RecommendationEngine& engine,
      const std::vector<FleetPoolSpec>& pools,
      const exec::ExecContext& exec = {});
};

}  // namespace ipool

#endif  // IPOOL_SERVICE_CONTROL_LOOP_H_
