#include "service/arbitrator.h"

#include <limits>

namespace ipool {

Status ArbitratorConfig::Validate() const {
  if (lease_duration_seconds <= 0.0) {
    return Status::InvalidArgument("lease duration must be positive");
  }
  return Status::OK();
}

Result<Arbitrator> Arbitrator::Create(const ArbitratorConfig& config) {
  IPOOL_RETURN_NOT_OK(config.Validate());
  return Arbitrator(config);
}

Status Arbitrator::AddWorker(const std::string& worker_id) {
  if (!workers_.emplace(worker_id, Worker{}).second) {
    return Status::AlreadyExists("worker already registered: " + worker_id);
  }
  return Status::OK();
}

Status Arbitrator::SetWorkerHealth(const std::string& worker_id,
                                   bool healthy) {
  auto it = workers_.find(worker_id);
  if (it == workers_.end()) {
    return Status::NotFound("unknown worker: " + worker_id);
  }
  it->second.healthy = healthy;
  return Status::OK();
}

Status Arbitrator::AddWorkItem(const std::string& item_id) {
  if (!items_.emplace(item_id, WorkItem{}).second) {
    return Status::AlreadyExists("work item already registered: " + item_id);
  }
  return Status::OK();
}

std::optional<std::string> Arbitrator::PickWorker() const {
  std::optional<std::string> best;
  size_t best_load = std::numeric_limits<size_t>::max();
  for (const auto& [id, worker] : workers_) {
    if (!worker.healthy) continue;
    const size_t load = LoadOf(id);
    if (load < best_load) {
      best_load = load;
      best = id;
    }
  }
  return best;
}

size_t Arbitrator::RunHealthCheck(double now) {
  size_t assigned = 0;
  for (auto& [id, item] : items_) {
    bool needs_owner = !item.owner.has_value();
    if (!needs_owner) {
      auto worker = workers_.find(*item.owner);
      const bool owner_healthy =
          worker != workers_.end() && worker->second.healthy;
      if (owner_healthy && item.lease_expires_at > now) {
        // Healthy and within lease: refresh.
        item.lease_expires_at = now + config_.lease_duration_seconds;
        continue;
      }
      if (owner_healthy && item.lease_expires_at <= now) {
        // Lease lapsed but the worker is healthy: renew in place (the
        // paper's "undergoes refreshment upon lease expiration").
        item.lease_expires_at = now + config_.lease_duration_seconds;
        continue;
      }
      // Unhealthy or vanished owner: replace promptly.
      item.owner.reset();
      needs_owner = true;
    }
    if (needs_owner) {
      std::optional<std::string> replacement = PickWorker();
      if (replacement.has_value()) {
        item.owner = replacement;
        item.lease_expires_at = now + config_.lease_duration_seconds;
        ++assigned;
        ++reassignments_;
      }
    }
  }
  return assigned;
}

std::optional<std::string> Arbitrator::OwnerOf(
    const std::string& item_id) const {
  auto it = items_.find(item_id);
  if (it == items_.end()) return std::nullopt;
  return it->second.owner;
}

size_t Arbitrator::LoadOf(const std::string& worker_id) const {
  size_t load = 0;
  for (const auto& [id, item] : items_) {
    if (item.owner == worker_id) ++load;
  }
  return load;
}

}  // namespace ipool
