// The sharded telemetry ingest store behind the serving write path (ROADMAP
// item 2): N power-of-two shards, FNV-1a metric-name hash -> shard, one
// plain TelemetryStore plus one shared_mutex per shard. Concurrent
// publishes to different metrics land on different shards and proceed in
// parallel; the live tick's per-pool snapshot (point count + last time +
// binned history) reads one shard under one shared lock, so it stays
// consistent per pool without any global mutex.
//
// Batch ingest contract (RecordBatch): the router parse-validates a whole
// PublishTelemetry batch before calling in; RecordBatch then groups points
// by shard and, per shard, validates time ordering against the store state
// BEFORE applying anything — a shard's slice of the batch lands
// all-or-nothing under a single lock acquisition. Shards are applied in
// index order and the first failing shard aborts the rest (strictly
// stronger than the old single-store path, which could leave a prefix of a
// batch applied).
//
// Per-metric semantics are exactly TelemetryStore's: appends must arrive in
// non-decreasing time order per metric; queries see points the moment the
// owning shard's lock releases.
#ifndef IPOOL_SERVICE_SHARDED_TELEMETRY_STORE_H_
#define IPOOL_SERVICE_SHARDED_TELEMETRY_STORE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/telemetry_store.h"
#include "tsdata/time_series.h"

namespace ipool {

namespace obs {
class MetricsRegistry;
}  // namespace obs

class ShardedTelemetryStore {
 public:
  /// One point in a RecordBatch.
  struct BatchPoint {
    std::string metric;
    double time = 0.0;
    double value = 0.0;
  };

  /// A per-pool consistent view taken under one shard lock: the live tick
  /// uses it so point_count, last_time and the binned history all describe
  /// the same instant.
  struct BinnedView {
    size_t point_count = 0;
    double last_time = 0.0;  ///< -inf when the metric has no points
    TimeSeries history;
  };

  /// `shards` is rounded up to the next power of two (minimum 1).
  explicit ShardedTelemetryStore(size_t shards = kDefaultShards);

  static constexpr size_t kDefaultShards = 16;

  /// Appends a point (locks the metric's shard). InvalidArgument if `time`
  /// is before the metric's last point.
  Status Record(const std::string& metric, double time, double value);

  /// Convenience for counting events (value = 1).
  Status RecordEvent(const std::string& metric, double time) {
    return Record(metric, time, 1.0);
  }

  /// Applies a parse-validated batch with one lock acquisition per touched
  /// shard; per-shard all-or-nothing (see file comment).
  Status RecordBatch(std::vector<BatchPoint> points);

  /// Sums point values into fixed bins over [start, start+bins*interval).
  Result<TimeSeries> QueryBinned(const std::string& metric, double start,
                                 double interval_seconds, size_t bins) const;

  /// point_count + last_time + `bins` bins ending with (and including) the
  /// newest point, all under one shard shared lock. InvalidArgument when
  /// `interval_seconds` is not positive.
  Result<BinnedView> SnapshotBinned(const std::string& metric,
                                    double interval_seconds,
                                    size_t bins) const;

  double Sum(const std::string& metric, double start, double end) const;
  size_t PointCount(const std::string& metric) const;
  int64_t CountInRange(const std::string& metric, double start,
                       double end) const;

  /// Names of every metric that has been recorded, merged across shards,
  /// sorted (same contract as TelemetryStore::Metrics).
  std::vector<std::string> Metrics() const;

  /// Most recent point time, or -infinity if none.
  double LastTime(const std::string& metric) const;

  /// Publishes every shard's contents as `ipool_telemetry_*` gauges.
  void PublishTo(obs::MetricsRegistry* registry) const;

  size_t shard_count() const { return shards_.size(); }

  /// FNV-1a(metric) & (shard_count-1). Exposed for tests.
  size_t ShardIndex(const std::string& metric) const;

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    TelemetryStore store;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ipool

#endif  // IPOOL_SERVICE_SHARDED_TELEMETRY_STORE_H_
