#include "service/tuning_io.h"

#include <sstream>

#include "common/strings.h"

namespace ipool {

std::string SerializeTuning(const StoredTuning& stored) {
  std::ostringstream out;
  out << "tune-v1\n";
  out << "pool=" << stored.pool << "\n";
  out << "model=" << ModelKindToString(stored.model) << "\n";
  out << StrFormat("alpha=%.6f\n", stored.alpha_prime);
  out << StrFormat("window=%zu\n", stored.window);
  return out.str();
}

Result<StoredTuning> ParseTuning(const std::string& text) {
  // Same posture as ParseRecommendation: cap size before touching content,
  // parse numbers strictly (ParseDouble rejects NaN/inf and trailing
  // garbage), reject duplicates and unknown fields.
  if (text.size() > kMaxTuningBytes) {
    return Status::InvalidArgument(
        StrFormat("tuning document of %zu bytes exceeds cap %zu", text.size(),
                  kMaxTuningBytes));
  }
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "tune-v1") {
    return Status::InvalidArgument("unsupported tuning format");
  }
  StoredTuning stored;
  bool saw_pool = false, saw_model = false, saw_alpha = false,
       saw_window = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("malformed tuning line: " + line);
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "pool") {
      if (saw_pool) return Status::InvalidArgument("duplicate pool field");
      saw_pool = true;
      if (value.empty()) return Status::InvalidArgument("empty pool name");
      stored.pool = value;
    } else if (key == "model") {
      if (saw_model) return Status::InvalidArgument("duplicate model field");
      saw_model = true;
      IPOOL_ASSIGN_OR_RETURN(stored.model, ModelKindFromString(value));
    } else if (key == "alpha") {
      if (saw_alpha) return Status::InvalidArgument("duplicate alpha field");
      saw_alpha = true;
      IPOOL_ASSIGN_OR_RETURN(stored.alpha_prime, ParseDouble(value));
      if (stored.alpha_prime < 0.0 || stored.alpha_prime > 1.0) {
        return Status::InvalidArgument("alpha outside [0, 1]: " + value);
      }
    } else if (key == "window") {
      if (saw_window) return Status::InvalidArgument("duplicate window field");
      saw_window = true;
      IPOOL_ASSIGN_OR_RETURN(int64_t window, ParseInt64(value));
      if (window < static_cast<int64_t>(kMinTuningWindow) ||
          window > static_cast<int64_t>(kMaxTuningWindow)) {
        return Status::InvalidArgument("window out of range: " + value);
      }
      stored.window = static_cast<size_t>(window);
    } else {
      return Status::InvalidArgument("unknown tuning field: " + key);
    }
  }
  if (!saw_pool || !saw_model || !saw_alpha || !saw_window) {
    return Status::InvalidArgument("tuning document missing required fields");
  }
  return stored;
}

}  // namespace ipool
