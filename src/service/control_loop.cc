#include "service/control_loop.h"

#include <cmath>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ipool {

Status ControlLoopConfig::Validate() const {
  if (run_interval_seconds <= 0.0) {
    return Status::InvalidArgument("run interval must be positive");
  }
  IPOOL_RETURN_NOT_OK(worker.Validate());
  IPOOL_RETURN_NOT_OK(pooling.Validate());
  IPOOL_RETURN_NOT_OK(sim.Validate());
  return Status::OK();
}

Result<ControlLoopResult> ControlLoop::Run(
    const RecommendationEngine& engine, const ControlLoopConfig& config,
    const TimeSeries& demand, const std::vector<double>& request_events,
    const std::function<bool(size_t)>& fail_run) {
  IPOOL_RETURN_NOT_OK(config.Validate());
  if (demand.empty()) return Status::InvalidArgument("empty demand");
  if (demand.interval() != config.worker.interval_seconds) {
    return Status::InvalidArgument(
        "demand bin width must match the worker's interval");
  }

  // One assignment on ControlLoopConfig::obs instruments every stage below;
  // explicitly wired sub-configs keep their own sink.
  IntelligentPoolingWorkerConfig worker_config = config.worker;
  worker_config.obs = worker_config.obs.OrElse(config.obs);
  PoolingWorkerConfig pooling_config = config.pooling;
  pooling_config.obs = pooling_config.obs.OrElse(config.obs);
  SimConfig sim_config = config.sim;
  sim_config.obs = sim_config.obs.OrElse(config.obs);
  obs::ScopedSpan loop_span(config.obs.tracer, "control_loop");

  // Telemetry ingestion: the monitoring pipeline records every cluster
  // request. Workers only ever query ranges strictly before "now", so
  // preloading preserves causality.
  TelemetryStore telemetry;
  {
    obs::ScopedSpan ingest_span(config.obs.tracer, "telemetry_ingest");
    obs::ScopedTimer ingest_timer(
        config.obs.metrics != nullptr
            ? config.obs.metrics->GetHistogram("ipool_telemetry_ingest_seconds")
            : nullptr);
    for (double t : request_events) {
      IPOOL_RETURN_NOT_OK(
          telemetry.RecordEvent(config.worker.demand_metric, t));
    }
    if (config.obs.metrics != nullptr) {
      config.obs.metrics->GetCounter("ipool_telemetry_events_total")
          ->Add(request_events.size());
    }
  }

  DocumentStore documents;
  IPOOL_ASSIGN_OR_RETURN(
      IntelligentPoolingWorker ip_worker,
      IntelligentPoolingWorker::Create(&engine, &telemetry, &documents,
                                       worker_config));
  IPOOL_ASSIGN_OR_RETURN(PoolingWorker pooling_worker,
                         PoolingWorker::Create(&documents, pooling_config));

  ControlLoopResult result;
  const size_t num_bins = demand.size();
  result.applied_schedule.resize(num_bins);
  const double interval = demand.interval();
  const size_t bins_per_run = std::max<size_t>(
      1, static_cast<size_t>(config.run_interval_seconds / interval));

  size_t run_index = 0;
  for (size_t bin = 0; bin < num_bins; ++bin) {
    const double now = demand.TimeAt(bin);
    if (bin > 0 && bin % bins_per_run == 0) {
      if (fail_run && fail_run(run_index)) ip_worker.InjectFailures(1);
      ++run_index;
      ++result.pipeline_runs;
      Status status = ip_worker.RunOnce(now);
      (void)status;  // stats carried by the worker counters
    }
    const size_t fallbacks_before = pooling_worker.fallback_count();
    result.applied_schedule[bin] = pooling_worker.TargetAt(now);
    if (pooling_worker.fallback_count() > fallbacks_before) {
      ++result.fallback_bins;
    }
  }
  result.pipeline_failures = ip_worker.runs_failed();
  result.guardrail_rejections = ip_worker.guardrail_rejections();

  if (config.obs.metrics != nullptr) {
    config.obs.metrics->GetCounter("ipool_fallback_bins_total")
        ->Add(result.fallback_bins);
  }
  // Export the Kusto-stand-in's state alongside the phase metrics.
  telemetry.PublishTo(config.obs.metrics);
  IPOOL_ASSIGN_OR_RETURN(PoolSimulator simulator,
                         PoolSimulator::Create(sim_config));
  const double horizon = demand.TimeAt(num_bins - 1) + interval;
  IPOOL_ASSIGN_OR_RETURN(
      result.sim, simulator.Run(request_events, result.applied_schedule,
                                interval, horizon));
  return result;
}

Result<std::vector<ControlLoopResult>> ControlLoop::RunFleet(
    const RecommendationEngine& engine,
    const std::vector<FleetPoolSpec>& pools,
    const exec::ExecContext& exec) {
  // Every loop owns its stores and simulator and only ever reads the shared
  // engine, so the fleet fans out over the pool with results still returned
  // in spec order. The whole obs context rides along — obs::Tracer keeps
  // per-thread span buffers, so concurrent loops record spans too.
  std::vector<ControlLoopResult> results(pools.size());
  std::vector<Status> statuses(pools.size());
  // A pool's loop cost scales with its history length (forecast fit + solve
  // + simulate are all per-bin): feed that to the chunker so one giant pool
  // doesn't serialize a chunk of small ones behind it.
  std::vector<double> costs(pools.size());
  for (size_t i = 0; i < pools.size(); ++i) {
    costs[i] = static_cast<double>(pools[i].demand.size()) + 1.0;
  }
  exec::ParallelFor(
      exec, 0, pools.size(),
      [&](size_t lo, size_t hi) {
    for (size_t idx = lo; idx < hi; ++idx) {
      statuses[idx] = [&]() -> Status {
        IPOOL_ASSIGN_OR_RETURN(
            results[idx], Run(engine, pools[idx].config, pools[idx].demand,
                              pools[idx].request_events));
        return Status::OK();
      }();
    }
      },
      {.label = "service.run_fleet", .costs = costs.data()});
  // First error by pool index wins, matching a serial left-to-right loop.
  for (const Status& s : statuses) {
    IPOOL_RETURN_NOT_OK(s);
  }
  return results;
}

}  // namespace ipool
