#include "service/sharded_document_store.h"

#include <utility>

namespace ipool {

namespace {

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

uint64_t Fnv1a(const std::string& key) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

ShardedDocumentStore::ShardedDocumentStore(size_t shards) {
  const size_t count = RoundUpPowerOfTwo(shards == 0 ? 1 : shards);
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->snapshot.store(std::make_shared<const Snapshot>(),
                          std::memory_order_relaxed);
    shards_.push_back(std::move(shard));
  }
}

size_t ShardedDocumentStore::ShardIndex(const std::string& key) const {
  return static_cast<size_t>(Fnv1a(key)) & (shards_.size() - 1);
}

void ShardedDocumentStore::ApplyToShard(Shard& shard, std::vector<PutOp>& ops,
                                        const std::vector<size_t>& indices) {
  std::lock_guard<std::mutex> lock(shard.write_mu);
  // Copy-on-write: entries share their payload buffers with the previous
  // snapshot, so the copy is cheap (map nodes, not document bytes).
  auto next = std::make_shared<Snapshot>(
      *shard.snapshot.load(std::memory_order_relaxed));
  for (const size_t i : indices) {
    PutOp& op = ops[i];
    Entry& entry = next->docs[op.key];
    if (entry.payload != nullptr && *entry.payload == op.value) {
      // Unchanged bytes: the served document is identical, so reuse the
      // cached payload and keep the version. Only the write time moves.
      entry.updated_at = op.time;
      continue;
    }
    entry.payload = std::make_shared<const std::string>(std::move(op.value));
    entry.updated_at = op.time;
    ++entry.version;
    payload_builds_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.snapshot.store(std::move(next), std::memory_order_release);
}

void ShardedDocumentStore::Put(const std::string& key, std::string value,
                               double time) {
  std::vector<PutOp> ops;
  ops.push_back(PutOp{key, std::move(value), time});
  ApplyToShard(*shards_[ShardIndex(key)], ops, {0});
}

void ShardedDocumentStore::PutBatch(std::vector<PutOp> ops) {
  // Group op indices by shard so each shard is locked and swapped once.
  // Within a shard, ops apply in batch order (last write wins per key).
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    by_shard[ShardIndex(ops[i].key)].push_back(i);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    ApplyToShard(*shards_[s], ops, by_shard[s]);
  }
}

Result<ShardedDocumentStore::Document> ShardedDocumentStore::Get(
    const std::string& key) const {
  const auto snapshot =
      shards_[ShardIndex(key)]->snapshot.load(std::memory_order_acquire);
  const auto it = snapshot->docs.find(key);
  if (it == snapshot->docs.end()) {
    return Status::NotFound("document not found: " + key);
  }
  Document doc;
  doc.value = *it->second.payload;
  doc.updated_at = it->second.updated_at;
  doc.version = it->second.version;
  return doc;
}

std::shared_ptr<const std::string> ShardedDocumentStore::GetPayload(
    const std::string& key) const {
  const auto snapshot =
      shards_[ShardIndex(key)]->snapshot.load(std::memory_order_acquire);
  const auto it = snapshot->docs.find(key);
  if (it == snapshot->docs.end()) return nullptr;
  return it->second.payload;
}

bool ShardedDocumentStore::Delete(const std::string& key) {
  Shard& shard = *shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.write_mu);
  const auto current = shard.snapshot.load(std::memory_order_relaxed);
  if (current->docs.find(key) == current->docs.end()) return false;
  auto next = std::make_shared<Snapshot>(*current);
  next->docs.erase(key);
  shard.snapshot.store(std::move(next), std::memory_order_release);
  return true;
}

size_t ShardedDocumentStore::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->snapshot.load(std::memory_order_acquire)->docs.size();
  }
  return total;
}

}  // namespace ipool
