#include "service/telemetry_store.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"
#include "obs/metrics.h"

namespace ipool {

Status TelemetryStore::Record(const std::string& metric, double time,
                              double value) {
  std::vector<Point>& points = metrics_[metric];
  if (!points.empty() && time < points.back().time) {
    return Status::InvalidArgument(
        StrFormat("out-of-order telemetry for %s: %g < %g", metric.c_str(),
                  time, points.back().time));
  }
  points.push_back({time, value});
  return Status::OK();
}

Result<TimeSeries> TelemetryStore::QueryBinned(const std::string& metric,
                                               double start,
                                               double interval_seconds,
                                               size_t bins) const {
  if (interval_seconds <= 0.0) {
    return Status::InvalidArgument("interval must be positive");
  }
  std::vector<double> values(bins, 0.0);
  auto it = metrics_.find(metric);
  if (it != metrics_.end()) {
    const double end = start + interval_seconds * static_cast<double>(bins);
    // Points are time-sorted: binary search the first in range.
    const auto& points = it->second;
    auto first = std::lower_bound(
        points.begin(), points.end(), start,
        [](const Point& p, double t) { return p.time < t; });
    for (auto p = first; p != points.end() && p->time < end; ++p) {
      const size_t idx =
          static_cast<size_t>((p->time - start) / interval_seconds);
      if (idx < bins) values[idx] += p->value;
    }
  }
  return TimeSeries(start, interval_seconds, std::move(values));
}

double TelemetryStore::Sum(const std::string& metric, double start,
                           double end) const {
  auto it = metrics_.find(metric);
  if (it == metrics_.end()) return 0.0;
  double total = 0.0;
  const auto& points = it->second;
  auto first = std::lower_bound(
      points.begin(), points.end(), start,
      [](const Point& p, double t) { return p.time < t; });
  for (auto p = first; p != points.end() && p->time < end; ++p) {
    total += p->value;
  }
  return total;
}

size_t TelemetryStore::PointCount(const std::string& metric) const {
  auto it = metrics_.find(metric);
  return it == metrics_.end() ? 0 : it->second.size();
}

int64_t TelemetryStore::CountInRange(const std::string& metric, double start,
                                     double end) const {
  auto it = metrics_.find(metric);
  if (it == metrics_.end()) return 0;
  const auto& points = it->second;
  const auto by_time = [](const Point& p, double t) { return p.time < t; };
  auto first = std::lower_bound(points.begin(), points.end(), start, by_time);
  auto last = std::lower_bound(first, points.end(), end, by_time);
  return static_cast<int64_t>(last - first);
}

std::vector<std::string> TelemetryStore::Metrics() const {
  std::vector<std::string> names;
  names.reserve(metrics_.size());
  for (const auto& [name, points] : metrics_) names.push_back(name);
  return names;  // std::map iterates in sorted key order
}

double TelemetryStore::LastTime(const std::string& metric) const {
  auto it = metrics_.find(metric);
  if (it == metrics_.end() || it->second.empty()) {
    return -std::numeric_limits<double>::infinity();
  }
  return it->second.back().time;
}

void TelemetryStore::PublishTo(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  const double inf = std::numeric_limits<double>::infinity();
  for (const std::string& name : Metrics()) {
    const obs::LabelSet labels = {{"metric", name}};
    registry->GetGauge("ipool_telemetry_points", labels)
        ->Set(static_cast<double>(CountInRange(name, -inf, inf)));
    registry->GetGauge("ipool_telemetry_value_sum", labels)
        ->Set(Sum(name, -inf, inf));
    registry->GetGauge("ipool_telemetry_last_time", labels)
        ->Set(LastTime(name));
  }
}

}  // namespace ipool
