// An append-only metric store standing in for the Kusto telemetry store
// [30]: the monitoring system records cluster-request events and pool
// health metrics here, and the ML predictor fetches its training history by
// querying a binned view. Points must be appended in non-decreasing time
// order per metric (as a real telemetry pipeline delivers them).
#ifndef IPOOL_SERVICE_TELEMETRY_STORE_H_
#define IPOOL_SERVICE_TELEMETRY_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "tsdata/time_series.h"

namespace ipool {

namespace obs {
class MetricsRegistry;
}  // namespace obs

class TelemetryStore {
 public:
  /// Appends a point. Returns InvalidArgument if `time` is before the last
  /// point of the same metric.
  Status Record(const std::string& metric, double time, double value);

  /// Convenience for counting events (value = 1).
  Status RecordEvent(const std::string& metric, double time) {
    return Record(metric, time, 1.0);
  }

  /// Sums point values into fixed bins over [start, start+bins*interval).
  /// Metrics never written yield all-zero series (a region with no traffic
  /// is not an error).
  Result<TimeSeries> QueryBinned(const std::string& metric, double start,
                                 double interval_seconds, size_t bins) const;

  /// Sum of values in [start, end).
  double Sum(const std::string& metric, double start, double end) const;

  /// Number of points recorded for the metric.
  size_t PointCount(const std::string& metric) const;

  /// Number of points (not value sum) recorded for `metric` in [start, end).
  int64_t CountInRange(const std::string& metric, double start,
                       double end) const;

  /// Names of every metric that has been recorded, sorted.
  std::vector<std::string> Metrics() const;

  /// Most recent point time, or -infinity if none.
  double LastTime(const std::string& metric) const;

  /// Publishes the store's contents as `ipool_telemetry_*` gauges (point
  /// count, value sum and last point time per recorded metric) so obs dumps
  /// include the Kusto-stand-in's state. No-op when `registry` is null.
  void PublishTo(obs::MetricsRegistry* registry) const;

 private:
  struct Point {
    double time;
    double value;
  };
  std::map<std::string, std::vector<Point>> metrics_;
};

}  // namespace ipool

#endif  // IPOOL_SERVICE_TELEMETRY_STORE_H_
