// Serialization of per-pool tuning configurations into the document store:
// the fleet auto-tuner persists each pool's winning (model, alpha', window)
// under key `tuning.<pool>`, and the live control plane parses it back to
// build that pool's serving engine. The document carries CONFIG ONLY — no
// scores, timestamps or other volatile detail — so a tune that keeps the
// incumbent re-serializes to byte-identical text and the sharded store's
// payload cache absorbs the republish (payload_builds stays flat, no
// version churn).
#ifndef IPOOL_SERVICE_TUNING_IO_H_
#define IPOOL_SERVICE_TUNING_IO_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "forecast/forecaster.h"

namespace ipool {

/// Caps applied by ParseTuning before any content is interpreted (the
/// parser faces the network through GetRecommendation on `tuning.*` keys).
/// A tuning document is four short lines; 4 KiB is far above anything the
/// tuner emits.
inline constexpr size_t kMaxTuningBytes = 4096;
inline constexpr size_t kMinTuningWindow = 4;
inline constexpr size_t kMaxTuningWindow = 65536;

/// One pool's serving configuration as chosen by the fleet auto-tuner.
struct StoredTuning {
  /// Pool key the config applies to (sanity cross-check against the
  /// document key; must be non-empty).
  std::string pool;
  ModelKind model = ModelKind::kSsaPlus;
  /// Eq 16 SAA trade-off knob, in [0, 1].
  double alpha_prime = 0.5;
  /// Forecast window / SSA embedding dimension, in
  /// [kMinTuningWindow, kMaxTuningWindow].
  size_t window = 96;

  bool operator==(const StoredTuning& other) const {
    return pool == other.pool && model == other.model &&
           alpha_prime == other.alpha_prime && window == other.window;
  }
};

/// Deterministic: equal StoredTuning values serialize to identical bytes
/// (alpha is emitted at fixed precision; callers quantize alpha to 1e-6
/// before publishing so Serialize/Parse round-trips exactly).
std::string SerializeTuning(const StoredTuning& stored);

/// Strict: rejects oversized documents, unknown/duplicate/missing fields,
/// NaN/inf/out-of-range numbers and unknown model names — a corrupt tuning
/// document must never morph into a plausible config.
Result<StoredTuning> ParseTuning(const std::string& text);

}  // namespace ipool

#endif  // IPOOL_SERVICE_TUNING_IO_H_
