// An in-memory versioned document store standing in for Cosmos DB [34]: the
// Intelligent Pooling Worker persists pool-size recommendation documents
// here and Pooling Workers fetch the latest one. Timestamps are virtual-time
// values supplied by the caller (nothing reads a wall clock).
#ifndef IPOOL_SERVICE_DOCUMENT_STORE_H_
#define IPOOL_SERVICE_DOCUMENT_STORE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace ipool {

class DocumentStore {
 public:
  struct Document {
    std::string value;
    double updated_at = 0.0;
    int64_t version = 0;
  };

  /// Creates or overwrites; the version increments monotonically per key.
  void Put(const std::string& key, std::string value, double time);

  /// NotFound if the key has never been written (or was deleted).
  Result<Document> Get(const std::string& key) const;

  /// True if something was deleted.
  bool Delete(const std::string& key);

  size_t size() const { return documents_.size(); }

 private:
  std::map<std::string, Document> documents_;
};

}  // namespace ipool

#endif  // IPOOL_SERVICE_DOCUMENT_STORE_H_
