// The sharded, snapshot-read document store behind the serving hot path
// (ROADMAP item 2): N power-of-two shards, FNV-1a pool-key hash -> shard,
// per-shard writer mutex, and an RCU-style immutable snapshot per shard so
// GetRecommendation readers never hold a lock while they look up or copy a
// document.
//
// Read path: readers atomically load the shard's `shared_ptr<const
// Snapshot>`, then do a plain map lookup and copy the pre-serialized payload
// bytes — no lock is held during the lookup or the copy, and a concurrent
// publish can never mutate a snapshot a reader already holds. Writers
// serialize per shard on the shard mutex, copy-on-write the shard map, and
// publish the new snapshot with one atomic pointer store.
//
// Payload caching: each document's response bytes live behind a
// `shared_ptr<const std::string>` that is built once per distinct value. A
// Put whose bytes equal the currently stored value reuses the existing
// payload buffer and keeps the version — so a live tick that republishes an
// unchanged fleet allocates nothing on the read path and bumps no versions.
// payload_builds() counts fresh payload materializations; tests assert it
// stays flat across ticks that publish identical documents.
//
// Semantics vs the plain DocumentStore: Get/Put/Delete behave identically
// except that a byte-identical Put does not increment the version (the
// document, as served, did not change). Timestamps are virtual-time values
// supplied by the caller, as before.
#ifndef IPOOL_SERVICE_SHARDED_DOCUMENT_STORE_H_
#define IPOOL_SERVICE_SHARDED_DOCUMENT_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/document_store.h"

namespace ipool {

class ShardedDocumentStore {
 public:
  using Document = DocumentStore::Document;

  /// One write in a PutBatch.
  struct PutOp {
    std::string key;
    std::string value;
    double time = 0.0;
  };

  /// `shards` is rounded up to the next power of two (minimum 1).
  explicit ShardedDocumentStore(size_t shards = kDefaultShards);

  static constexpr size_t kDefaultShards = 16;

  /// Creates or overwrites. The version increments per distinct value; a
  /// byte-identical overwrite refreshes `updated_at` but keeps the version
  /// and reuses the cached payload buffer.
  void Put(const std::string& key, std::string value, double time);

  /// Applies every op, grouped so each shard is locked and its snapshot
  /// swapped exactly once — readers of a shard observe either none or all of
  /// the batch's writes to that shard (the live tick's per-shard atomic
  /// publish).
  void PutBatch(std::vector<PutOp> ops);

  /// NotFound if the key has never been written (or was deleted).
  Result<Document> Get(const std::string& key) const;

  /// The serving fast path: the document's response bytes, or null when the
  /// key is absent. Lock-free after the atomic snapshot load; the returned
  /// buffer is immutable and safe to read after any number of later Puts.
  std::shared_ptr<const std::string> GetPayload(const std::string& key) const;

  /// True if something was deleted.
  bool Delete(const std::string& key);

  size_t size() const;
  size_t shard_count() const { return shards_.size(); }

  /// Times a Put materialized new payload bytes (first write of a key, or a
  /// value change). Flat across byte-identical republishes.
  uint64_t payload_builds() const {
    return payload_builds_.load(std::memory_order_relaxed);
  }

  /// FNV-1a(key) & (shard_count-1). Exposed so tests can pick colliding and
  /// non-colliding keys deliberately.
  size_t ShardIndex(const std::string& key) const;

 private:
  struct Entry {
    std::shared_ptr<const std::string> payload;
    double updated_at = 0.0;
    int64_t version = 0;
  };
  struct Snapshot {
    std::map<std::string, Entry> docs;
  };
  struct Shard {
    /// Serializes writers only; readers never take it.
    std::mutex write_mu;
    std::atomic<std::shared_ptr<const Snapshot>> snapshot;
  };

  /// Applies `ops[i]` for i in `indices` to one shard under its writer
  /// mutex, publishing a single new snapshot.
  void ApplyToShard(Shard& shard, std::vector<PutOp>& ops,
                    const std::vector<size_t>& indices);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> payload_builds_{0};
};

}  // namespace ipool

#endif  // IPOOL_SERVICE_SHARDED_DOCUMENT_STORE_H_
