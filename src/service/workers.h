// The two workers of Figure 2 plus the §7.6 fault-tolerance behavior:
//
//  * IntelligentPoolingWorker — periodically runs the ML pipeline (fetch
//    telemetry history -> RecommendationEngine -> persist recommendation in
//    the document store), with a guardrail that validates the previous
//    forecast against observed actuals before persisting a new schedule.
//  * PoolingWorker — maintains the target pool size by reading the latest
//    recommendation document; it tolerates a failed pipeline run by using
//    the (slightly outdated) previous recommendation and reverts to a
//    configurable default after consecutive failures exhaust the TTL.
#ifndef IPOOL_SERVICE_WORKERS_H_
#define IPOOL_SERVICE_WORKERS_H_

#include <functional>
#include <optional>
#include <string>

#include "common/status.h"
#include "core/recommendation_engine.h"
#include "obs/obs_context.h"
#include "service/document_store.h"
#include "service/recommendation_io.h"
#include "service/telemetry_store.h"

namespace ipool {

struct IntelligentPoolingWorkerConfig {
  std::string recommendation_key = "pool-recommendation";
  std::string demand_metric = "cluster_requests";
  double interval_seconds = kDefaultIntervalSeconds;
  /// How much history to fetch for training.
  size_t history_bins = 2880;  // one day at 30 s
  /// Guardrail: reject the run if the previous forecast's MAE against the
  /// actuals observed since then exceeds
  ///   guardrail_mae_ratio * (mean actual + 1).
  /// The default is loose enough to tolerate deliberate overshoot (a
  /// forecaster trained with alpha' near 1 systematically predicts above
  /// demand).
  bool guardrail_enabled = true;
  double guardrail_mae_ratio = 3.0;
  /// Warm-start forecaster training across runs: the worker owns a
  /// ForecastWarmState and consecutive RunOnce calls Refit from it (the SSA
  /// training fast path). Disable to force every run cold.
  bool warm_refit = true;
  /// Observability sink (optional): each RunOnce is a "pipeline" span with
  /// "ingestion" / "guardrail" / "apply" children (the engine adds
  /// "forecast" / "solve") plus run counters and a latency histogram.
  ObsContext obs;

  Status Validate() const;
};

class IntelligentPoolingWorker {
 public:
  static Result<IntelligentPoolingWorker> Create(
      const RecommendationEngine* engine, TelemetryStore* telemetry,
      DocumentStore* documents, const IntelligentPoolingWorkerConfig& config);

  /// Runs one pipeline iteration at virtual time `now`. On success a fresh
  /// recommendation document is persisted. FailedPrecondition signals a
  /// guardrail rejection (previous recommendation stays in place); other
  /// errors signal pipeline failure.
  Status RunOnce(double now);

  /// Test hook: injects a failure into the next `count` runs (simulating
  /// pipeline crashes).
  void InjectFailures(size_t count) { injected_failures_ += count; }

  size_t runs_succeeded() const { return runs_succeeded_; }
  size_t runs_failed() const { return runs_failed_; }
  size_t guardrail_rejections() const { return guardrail_rejections_; }

 private:
  IntelligentPoolingWorker(const RecommendationEngine* engine,
                           TelemetryStore* telemetry,
                           DocumentStore* documents,
                           const IntelligentPoolingWorkerConfig& config)
      : engine_(engine),
        telemetry_(telemetry),
        documents_(documents),
        config_(config) {}

  /// MAE of the previous run's forecast against observed actuals over the
  /// elapsed overlap; nullopt when there is no previous forecast.
  std::optional<double> PreviousForecastError(double now) const;

  const RecommendationEngine* engine_;
  TelemetryStore* telemetry_;
  DocumentStore* documents_;
  IntelligentPoolingWorkerConfig config_;

  std::optional<StoredRecommendation> last_output_;
  /// Per-worker (hence per-pool under RunFleet) warm training state carried
  /// across RunOnce ticks. The shared engine never stores it.
  ForecastWarmState warm_state_;
  size_t injected_failures_ = 0;
  size_t runs_succeeded_ = 0;
  size_t runs_failed_ = 0;
  size_t guardrail_rejections_ = 0;
};

struct PoolingWorkerConfig {
  std::string recommendation_key = "pool-recommendation";
  /// Recommendations older than this are distrusted entirely and the worker
  /// reverts to the default pool size (§7.6 "consecutive system failures").
  double recommendation_ttl_seconds = 3600.0;
  /// The configurable default fallback.
  int64_t default_pool_size = 4;
  /// Observability sink (optional): target reads record an apply-latency
  /// histogram and fallback counters.
  ObsContext obs;

  Status Validate() const;
};

class PoolingWorker {
 public:
  static Result<PoolingWorker> Create(const DocumentStore* documents,
                                      const PoolingWorkerConfig& config);

  /// Target pool size to maintain at virtual time `now`.
  int64_t TargetAt(double now);

  /// Times TargetAt fell back to the default (no recommendation, stale
  /// recommendation, or unparseable document).
  size_t fallback_count() const { return fallback_count_; }

 private:
  PoolingWorker(const DocumentStore* documents,
                const PoolingWorkerConfig& config)
      : documents_(documents), config_(config) {}

  int64_t TargetAtImpl(double now);

  const DocumentStore* documents_;
  PoolingWorkerConfig config_;
  size_t fallback_count_ = 0;
};

}  // namespace ipool

#endif  // IPOOL_SERVICE_WORKERS_H_
