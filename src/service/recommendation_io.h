// Serialization of pool-size recommendations into the document store: the
// production system persists recommendation files in Cosmos DB for the
// pooling workers to fetch. A compact line-oriented text format keeps the
// documents inspectable.
#ifndef IPOOL_SERVICE_RECOMMENDATION_IO_H_
#define IPOOL_SERVICE_RECOMMENDATION_IO_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "core/recommendation_engine.h"

namespace ipool {

/// Caps applied by ParseRecommendation before any content is interpreted:
/// the parser faces the network through the serving layer, so a hostile or
/// corrupt document must not be able to balloon memory. Both are far above
/// anything the pipeline emits (the production document is the next hour:
/// 120 bins).
inline constexpr size_t kMaxRecommendationBytes = 1u << 20;
inline constexpr size_t kMaxRecommendationBins = 65536;

/// A recommendation plus the time base it applies to.
struct StoredRecommendation {
  Recommendation recommendation;
  /// Virtual time of the first bin.
  double start_time = 0.0;
  double interval_seconds = kDefaultIntervalSeconds;

  /// End of the covered window.
  double EndTime() const {
    return start_time +
           interval_seconds *
               static_cast<double>(recommendation.pool_size_per_bin.size());
  }

  /// Target for time `t`: the covering bin, or the last bin when `t` is past
  /// the window (the "slightly outdated" fallback of §7.6). Requires a
  /// non-empty schedule.
  int64_t TargetAt(double t) const;
};

std::string SerializeRecommendation(const StoredRecommendation& stored);

Result<StoredRecommendation> ParseRecommendation(const std::string& text);

}  // namespace ipool

#endif  // IPOOL_SERVICE_RECOMMENDATION_IO_H_
