#include "service/recommendation_io.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/strings.h"

namespace ipool {

int64_t StoredRecommendation::TargetAt(double t) const {
  const auto& schedule = recommendation.pool_size_per_bin;
  if (t < start_time) return schedule.front();
  const double raw = (t - start_time) / interval_seconds;
  const size_t idx = static_cast<size_t>(raw);
  if (idx >= schedule.size()) return schedule.back();
  return schedule[idx];
}

std::string SerializeRecommendation(const StoredRecommendation& stored) {
  std::ostringstream out;
  out << "v1\n";
  out << "model=" << stored.recommendation.model_name << "\n";
  out << "pipeline=" << PipelineKindToString(stored.recommendation.pipeline)
      << "\n";
  out << StrFormat("start=%.6f\n", stored.start_time);
  out << StrFormat("interval=%.6f\n", stored.interval_seconds);
  out << "pool=";
  const auto& pool = stored.recommendation.pool_size_per_bin;
  for (size_t i = 0; i < pool.size(); ++i) {
    if (i > 0) out << ",";
    out << pool[i];
  }
  out << "\ndemand=";
  const auto& demand = stored.recommendation.predicted_demand;
  for (size_t i = 0; i < demand.size(); ++i) {
    if (i > 0) out << ",";
    out << StrFormat("%.6g", demand[i]);
  }
  out << "\n";
  return out.str();
}

namespace {

Result<std::pair<std::string, std::string>> SplitKeyValue(
    const std::string& line) {
  const size_t eq = line.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("malformed recommendation line: " + line);
  }
  return std::make_pair(line.substr(0, eq), line.substr(eq + 1));
}

}  // namespace

Result<StoredRecommendation> ParseRecommendation(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "v1") {
    return Status::InvalidArgument("unsupported recommendation format");
  }
  StoredRecommendation stored;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    IPOOL_ASSIGN_OR_RETURN(auto kv, SplitKeyValue(line));
    const std::string& key = kv.first;
    const std::string& value = kv.second;
    if (key == "model") {
      stored.recommendation.model_name = value;
    } else if (key == "pipeline") {
      stored.recommendation.pipeline = value == "E2E"
                                           ? PipelineKind::kEndToEnd
                                           : PipelineKind::k2Step;
    } else if (key == "start") {
      stored.start_time = std::atof(value.c_str());
    } else if (key == "interval") {
      stored.interval_seconds = std::atof(value.c_str());
      if (stored.interval_seconds <= 0.0) {
        return Status::InvalidArgument("non-positive interval");
      }
    } else if (key == "pool") {
      std::istringstream items(value);
      std::string item;
      while (std::getline(items, item, ',')) {
        if (item.empty()) continue;
        stored.recommendation.pool_size_per_bin.push_back(
            std::atoll(item.c_str()));
      }
    } else if (key == "demand") {
      std::istringstream items(value);
      std::string item;
      while (std::getline(items, item, ',')) {
        if (item.empty()) continue;
        stored.recommendation.predicted_demand.push_back(
            std::atof(item.c_str()));
      }
    } else {
      return Status::InvalidArgument("unknown recommendation field: " + key);
    }
  }
  if (stored.recommendation.pool_size_per_bin.empty()) {
    return Status::InvalidArgument("recommendation has no pool schedule");
  }
  return stored;
}

}  // namespace ipool
