#include "service/recommendation_io.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace ipool {

int64_t StoredRecommendation::TargetAt(double t) const {
  const auto& schedule = recommendation.pool_size_per_bin;
  if (t < start_time) return schedule.front();
  const double raw = (t - start_time) / interval_seconds;
  const size_t idx = static_cast<size_t>(raw);
  if (idx >= schedule.size()) return schedule.back();
  return schedule[idx];
}

std::string SerializeRecommendation(const StoredRecommendation& stored) {
  std::ostringstream out;
  out << "v1\n";
  out << "model=" << stored.recommendation.model_name << "\n";
  out << "pipeline=" << PipelineKindToString(stored.recommendation.pipeline)
      << "\n";
  out << StrFormat("start=%.6f\n", stored.start_time);
  out << StrFormat("interval=%.6f\n", stored.interval_seconds);
  out << "pool=";
  const auto& pool = stored.recommendation.pool_size_per_bin;
  for (size_t i = 0; i < pool.size(); ++i) {
    if (i > 0) out << ",";
    out << pool[i];
  }
  out << "\ndemand=";
  const auto& demand = stored.recommendation.predicted_demand;
  for (size_t i = 0; i < demand.size(); ++i) {
    if (i > 0) out << ",";
    out << StrFormat("%.6g", demand[i]);
  }
  out << "\n";
  return out.str();
}

namespace {

Result<std::pair<std::string, std::string>> SplitKeyValue(
    const std::string& line) {
  const size_t eq = line.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("malformed recommendation line: " + line);
  }
  return std::make_pair(line.substr(0, eq), line.substr(eq + 1));
}

// Splits a comma-separated list, applying `parse` to every item. Empty
// items ("1,,2", trailing commas) are corruption, not formatting slack; an
// entirely empty value yields an empty list (the serializer's shape for a
// pipeline with no demand forecast).
template <typename T, typename ParseFn>
Status ParseList(const std::string& value, size_t max_items, ParseFn parse,
                 std::vector<T>* out) {
  if (value.empty()) return Status::OK();
  size_t begin = 0;
  while (true) {
    const size_t comma = value.find(',', begin);
    const std::string item = value.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    if (item.empty()) {
      return Status::InvalidArgument("empty list item in recommendation");
    }
    if (out->size() >= max_items) {
      return Status::InvalidArgument(
          StrFormat("recommendation list exceeds %zu items", max_items));
    }
    IPOOL_ASSIGN_OR_RETURN(T parsed, parse(item));
    out->push_back(parsed);
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return Status::OK();
}

}  // namespace

Result<StoredRecommendation> ParseRecommendation(const std::string& text) {
  // This parser faces the network (GetRecommendation payloads), not just
  // operator-written files: cap sizes before touching content so a hostile
  // document cannot balloon memory, and parse numbers strictly so truncated
  // or bit-flipped values fail instead of silently reading as a prefix.
  if (text.size() > kMaxRecommendationBytes) {
    return Status::InvalidArgument(
        StrFormat("recommendation document of %zu bytes exceeds cap %zu",
                  text.size(), kMaxRecommendationBytes));
  }
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "v1") {
    return Status::InvalidArgument("unsupported recommendation format");
  }
  StoredRecommendation stored;
  bool saw_model = false, saw_pipeline = false, saw_start = false,
       saw_interval = false, saw_pool = false, saw_demand = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    IPOOL_ASSIGN_OR_RETURN(auto kv, SplitKeyValue(line));
    const std::string& key = kv.first;
    const std::string& value = kv.second;
    if (key == "model") {
      if (saw_model) return Status::InvalidArgument("duplicate model field");
      saw_model = true;
      stored.recommendation.model_name = value;
    } else if (key == "pipeline") {
      if (saw_pipeline) {
        return Status::InvalidArgument("duplicate pipeline field");
      }
      saw_pipeline = true;
      if (value == "E2E") {
        stored.recommendation.pipeline = PipelineKind::kEndToEnd;
      } else if (value == "2-step") {
        stored.recommendation.pipeline = PipelineKind::k2Step;
      } else {
        return Status::InvalidArgument("unknown pipeline kind: " + value);
      }
    } else if (key == "start") {
      if (saw_start) return Status::InvalidArgument("duplicate start field");
      saw_start = true;
      IPOOL_ASSIGN_OR_RETURN(stored.start_time, ParseDouble(value));
    } else if (key == "interval") {
      if (saw_interval) {
        return Status::InvalidArgument("duplicate interval field");
      }
      saw_interval = true;
      IPOOL_ASSIGN_OR_RETURN(stored.interval_seconds, ParseDouble(value));
      if (stored.interval_seconds <= 0.0) {
        return Status::InvalidArgument("non-positive interval");
      }
    } else if (key == "pool") {
      if (saw_pool) return Status::InvalidArgument("duplicate pool field");
      saw_pool = true;
      IPOOL_RETURN_NOT_OK(ParseList<int64_t>(
          value, kMaxRecommendationBins,
          [](const std::string& item) -> Result<int64_t> {
            IPOOL_ASSIGN_OR_RETURN(int64_t n, ParseInt64(item));
            if (n < 0) {
              return Status::InvalidArgument("negative pool size: " + item);
            }
            return n;
          },
          &stored.recommendation.pool_size_per_bin));
    } else if (key == "demand") {
      if (saw_demand) return Status::InvalidArgument("duplicate demand field");
      saw_demand = true;
      IPOOL_RETURN_NOT_OK(ParseList<double>(
          value, kMaxRecommendationBins,
          [](const std::string& item) { return ParseDouble(item); },
          &stored.recommendation.predicted_demand));
    } else {
      return Status::InvalidArgument("unknown recommendation field: " + key);
    }
  }
  if (stored.recommendation.pool_size_per_bin.empty()) {
    return Status::InvalidArgument("recommendation has no pool schedule");
  }
  return stored;
}

}  // namespace ipool
