// The real-time monitoring described in §7.5: "we track the Intelligent
// Pooling status (succeeded, failed), metrics of average idle time,
// recommended pool size, demand request rate, pool miss/hit
// count/percentage, COGS saved, hydration status ... in real-time", plus the
// alerting system for pipeline failures. This comprehensive monitoring is
// called out as "an essential part of Intelligent Pooling".
#ifndef IPOOL_SERVICE_MONITORING_H_
#define IPOOL_SERVICE_MONITORING_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"
#include "solver/pool_model.h"

namespace ipool {

namespace obs {
class MetricsRegistry;
}  // namespace obs

enum class PipelineStatus {
  kSucceeded,
  kFailed,
  kGuardrailRejected,
};

std::string PipelineStatusToString(PipelineStatus status);

struct AlertConfig {
  /// Fire after this many consecutive failed pipeline runs (guardrail
  /// rejections are not failures: the system is protecting itself).
  size_t consecutive_failure_threshold = 2;
  /// Fire when the pool hit rate over the trailing window drops below this.
  double min_hit_rate = 0.95;
  /// Trailing window for the hit-rate alert; also the dashboard's rate
  /// window.
  double window_seconds = 3600.0;
  /// Minimum requests in the window before the hit-rate alert can fire (a
  /// single missed request in a quiet hour is not an incident).
  int64_t min_requests_for_hit_alert = 20;

  Status Validate() const;
};

struct Alert {
  double time = 0.0;
  std::string kind;  // "pipeline-failures" | "hit-rate"
  std::string message;
};

/// A point-in-time view of the §7.5 dashboard.
struct DashboardSnapshot {
  double time = 0.0;
  /// Trailing-window demand and service quality.
  int64_t window_requests = 0;
  int64_t window_hits = 0;
  int64_t window_misses = 0;
  double window_hit_rate = 1.0;
  double demand_per_minute = 0.0;
  double avg_wait_seconds = 0.0;
  /// Cumulative idle time of consumed/retired pooled clusters.
  double total_idle_cluster_seconds = 0.0;
  /// Latest recommendation and hydration status.
  double recommended_pool_size = 0.0;
  int64_t clusters_provisioning = 0;
  int64_t clusters_ready = 0;
  int64_t clusters_targeted = 0;
  /// Pipeline health.
  size_t pipeline_successes = 0;
  size_t pipeline_failures = 0;
  size_t guardrail_rejections = 0;
  /// Estimated COGS saved vs the configured static reference pool.
  double cogs_saved_dollars = 0.0;
};

class Monitor {
 public:
  static Result<Monitor> Create(const AlertConfig& config,
                                const CogsModel& cogs,
                                int64_t static_reference_pool);

  /// Event feeds (times must be non-decreasing per feed).
  void RecordRequest(double time, bool hit, double wait_seconds);
  void RecordClusterIdle(double time, double idle_seconds);
  void RecordPipelineRun(double time, PipelineStatus status);
  void RecordRecommendation(double time, double pool_size);
  void RecordHydrationStatus(double time, int64_t provisioning, int64_t ready,
                             int64_t targeted);

  /// Evaluates alert conditions at `now`; newly fired alerts are appended to
  /// alerts() and returned. An alert kind re-arms once its condition clears.
  std::vector<Alert> CheckAlerts(double now);

  DashboardSnapshot Snapshot(double now) const;

  /// Bridges the §7.5 dashboard into the obs metrics registry: publishes the
  /// Snapshot(now) fields as `ipool_monitor_*` gauges so the Prometheus /
  /// JSONL exporters carry the dashboard alongside the phase latencies.
  /// No-op when `registry` is null.
  void PublishTo(obs::MetricsRegistry* registry, double now) const;

  const std::vector<Alert>& alerts() const { return alerts_; }

  /// Request records currently retained (bounded by the trailing alert
  /// window — old records are pruned as time advances; exposed for tests).
  size_t request_record_count() const { return requests_.size(); }

 private:
  Monitor(const AlertConfig& config, const CogsModel& cogs,
          int64_t static_reference_pool)
      : config_(config),
        cogs_(cogs),
        static_reference_pool_(static_reference_pool) {}

  struct RequestRecord {
    double time;
    bool hit;
    double wait_seconds;
  };

  /// Index of the first request inside the trailing window.
  size_t WindowBegin(double now) const;

  /// Marks monitoring as started at `time` if this is the first event, and
  /// prunes request records that have fallen behind the trailing window so a
  /// long-running monitor stays O(window) — cumulative counters
  /// (total_idle_cluster_seconds, pipeline counts) are unaffected.
  void Touch(double time);

  AlertConfig config_;
  CogsModel cogs_;
  int64_t static_reference_pool_;

  std::deque<RequestRecord> requests_;
  double last_seen_time_ = 0.0;
  double total_idle_seconds_ = 0.0;
  double latest_recommendation_ = 0.0;
  int64_t provisioning_ = 0;
  int64_t ready_ = 0;
  int64_t targeted_ = 0;
  size_t successes_ = 0;
  size_t failures_ = 0;
  size_t guardrail_rejections_ = 0;
  size_t consecutive_failures_ = 0;
  double first_event_time_ = 0.0;
  bool saw_event_ = false;

  bool failure_alert_armed_ = true;
  bool hit_alert_armed_ = true;
  std::vector<Alert> alerts_;
};

}  // namespace ipool

#endif  // IPOOL_SERVICE_MONITORING_H_
