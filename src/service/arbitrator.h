// The Arbitrator of §7.6: pooling tasks are leased to workers; the
// arbitrator runs periodic health checks, renews leases of healthy assigned
// workers, and promptly reassigns work from unhealthy workers or expired
// leases to a healthy replacement.
#ifndef IPOOL_SERVICE_ARBITRATOR_H_
#define IPOOL_SERVICE_ARBITRATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace ipool {

struct ArbitratorConfig {
  /// How long a lease lasts without renewal.
  double lease_duration_seconds = 300.0;

  Status Validate() const;
};

class Arbitrator {
 public:
  static Result<Arbitrator> Create(const ArbitratorConfig& config);

  /// Registers a worker (healthy by default). AlreadyExists on duplicates.
  Status AddWorker(const std::string& worker_id);

  /// Marks a worker healthy/unhealthy (as a health probe would). NotFound
  /// for unknown workers.
  Status SetWorkerHealth(const std::string& worker_id, bool healthy);

  /// Registers a work item needing an owner. AlreadyExists on duplicates.
  Status AddWorkItem(const std::string& item_id);

  /// One health-check pass at virtual time `now`:
  ///  * leases of healthy assigned workers are refreshed,
  ///  * items owned by unhealthy workers or with expired leases are
  ///    reassigned to the healthy worker owning the fewest items,
  ///  * items with no healthy candidate are left unassigned.
  /// Returns the number of (re)assignments performed.
  size_t RunHealthCheck(double now);

  /// Current owner of the item, if any.
  std::optional<std::string> OwnerOf(const std::string& item_id) const;

  /// Number of items currently assigned to the worker.
  size_t LoadOf(const std::string& worker_id) const;

  size_t reassignments() const { return reassignments_; }

 private:
  explicit Arbitrator(const ArbitratorConfig& config) : config_(config) {}

  struct Worker {
    bool healthy = true;
  };
  struct WorkItem {
    std::optional<std::string> owner;
    double lease_expires_at = 0.0;
  };

  /// Healthy worker with the fewest owned items (ties: lexicographically
  /// first, for determinism).
  std::optional<std::string> PickWorker() const;

  ArbitratorConfig config_;
  std::map<std::string, Worker> workers_;
  std::map<std::string, WorkItem> items_;
  size_t reassignments_ = 0;
};

}  // namespace ipool

#endif  // IPOOL_SERVICE_ARBITRATOR_H_
