#include "service/workers.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tsdata/metrics.h"

namespace ipool {

Status IntelligentPoolingWorkerConfig::Validate() const {
  if (interval_seconds <= 0.0) {
    return Status::InvalidArgument("interval must be positive");
  }
  if (history_bins < 8) {
    return Status::InvalidArgument("history_bins must be >= 8");
  }
  if (guardrail_mae_ratio <= 0.0) {
    return Status::InvalidArgument("guardrail_mae_ratio must be positive");
  }
  return Status::OK();
}

Result<IntelligentPoolingWorker> IntelligentPoolingWorker::Create(
    const RecommendationEngine* engine, TelemetryStore* telemetry,
    DocumentStore* documents, const IntelligentPoolingWorkerConfig& config) {
  IPOOL_RETURN_NOT_OK(config.Validate());
  if (engine == nullptr || telemetry == nullptr || documents == nullptr) {
    return Status::InvalidArgument("null dependency");
  }
  return IntelligentPoolingWorker(engine, telemetry, documents, config);
}

std::optional<double> IntelligentPoolingWorker::PreviousForecastError(
    double now) const {
  if (!last_output_.has_value() ||
      last_output_->recommendation.predicted_demand.empty()) {
    return std::nullopt;
  }
  const StoredRecommendation& prev = *last_output_;
  // Bins of the previous forecast that have elapsed by `now`.
  const double elapsed = now - prev.start_time;
  const size_t bins = std::min(
      prev.recommendation.predicted_demand.size(),
      static_cast<size_t>(std::max(0.0, elapsed / prev.interval_seconds)));
  if (bins == 0) return std::nullopt;
  auto actual = telemetry_->QueryBinned(config_.demand_metric, prev.start_time,
                                        prev.interval_seconds, bins);
  if (!actual.ok()) return std::nullopt;
  std::vector<double> predicted(
      prev.recommendation.predicted_demand.begin(),
      prev.recommendation.predicted_demand.begin() + static_cast<ptrdiff_t>(bins));
  auto mae = Mae(actual->values(), predicted);
  if (!mae.ok()) return std::nullopt;
  return *mae;
}

Status IntelligentPoolingWorker::RunOnce(double now) {
  obs::MetricsRegistry* metrics = config_.obs.metrics;
  obs::ScopedSpan pipeline_span(config_.obs.tracer, "pipeline");
  obs::ScopedTimer pipeline_timer(
      metrics != nullptr ? metrics->GetHistogram("ipool_pipeline_run_seconds")
                         : nullptr);
  if (metrics != nullptr) {
    metrics->GetCounter("ipool_pipeline_runs_total")->Add(1);
  }
  auto count_failure = [metrics] {
    if (metrics != nullptr) {
      metrics->GetCounter("ipool_pipeline_failures_total")->Add(1);
    }
  };

  if (injected_failures_ > 0) {
    --injected_failures_;
    ++runs_failed_;
    count_failure();
    return Status::Internal("injected pipeline failure");
  }

  const double history_span =
      config_.interval_seconds * static_cast<double>(config_.history_bins);
  const double start = now - history_span;
  Result<TimeSeries> history = Status::Internal("uninitialized");
  {
    obs::ScopedSpan ingest_span(config_.obs.tracer, "ingestion");
    obs::ScopedTimer ingest_timer(
        metrics != nullptr ? metrics->GetHistogram("ipool_ingest_seconds")
                           : nullptr);
    history = telemetry_->QueryBinned(config_.demand_metric, start,
                                      config_.interval_seconds,
                                      config_.history_bins);
  }
  if (!history.ok()) {
    ++runs_failed_;
    count_failure();
    return history.status();
  }

  // Guardrail (§7.5): validate the previous run's forecast against the
  // actuals observed since. A bad forecast means the model is mis-tracking
  // this region, so the new schedule is not trusted and the existing
  // recommendation stays in place.
  bool guardrail_tripped = false;
  double guardrail_error = 0.0;
  double guardrail_limit = 0.0;
  if (config_.guardrail_enabled) {
    obs::ScopedSpan guardrail_span(config_.obs.tracer, "guardrail");
    obs::ScopedTimer guardrail_timer(
        metrics != nullptr ? metrics->GetHistogram("ipool_guardrail_seconds")
                           : nullptr);
    std::optional<double> error = PreviousForecastError(now);
    if (error.has_value()) {
      const double mean_actual =
          history->Sum() / static_cast<double>(history->size());
      guardrail_limit = config_.guardrail_mae_ratio * (mean_actual + 1.0);
      guardrail_error = *error;
      guardrail_tripped = guardrail_error > guardrail_limit;
    }
  }

  auto recommendation =
      engine_->Run(*history, config_.warm_refit ? &warm_state_ : nullptr);
  if (!recommendation.ok()) {
    ++runs_failed_;
    count_failure();
    return recommendation.status();
  }

  StoredRecommendation stored;
  stored.recommendation = std::move(*recommendation);
  stored.start_time = now;
  stored.interval_seconds = config_.interval_seconds;
  // The fresh forecast always becomes the next validation reference — the
  // model retrains every run, so a single bad forecast must not poison
  // validation forever.
  last_output_ = stored;
  if (guardrail_tripped) {
    ++guardrail_rejections_;
    if (metrics != nullptr) {
      metrics->GetCounter("ipool_guardrail_rejections_total")->Add(1);
    }
    return Status::FailedPrecondition(
        StrFormat("guardrail: forecast MAE %.3f exceeds limit %.3f",
                  guardrail_error, guardrail_limit));
  }
  {
    obs::ScopedSpan apply_span(config_.obs.tracer, "apply");
    obs::ScopedTimer apply_timer(
        metrics != nullptr ? metrics->GetHistogram("ipool_apply_seconds")
                           : nullptr);
    documents_->Put(config_.recommendation_key,
                    SerializeRecommendation(stored), now);
  }
  ++runs_succeeded_;
  return Status::OK();
}

Status PoolingWorkerConfig::Validate() const {
  if (recommendation_ttl_seconds <= 0.0) {
    return Status::InvalidArgument("recommendation TTL must be positive");
  }
  if (default_pool_size < 0) {
    return Status::InvalidArgument("default pool size must be >= 0");
  }
  return Status::OK();
}

Result<PoolingWorker> PoolingWorker::Create(const DocumentStore* documents,
                                            const PoolingWorkerConfig& config) {
  IPOOL_RETURN_NOT_OK(config.Validate());
  if (documents == nullptr) return Status::InvalidArgument("null store");
  return PoolingWorker(documents, config);
}

int64_t PoolingWorker::TargetAt(double now) {
  obs::MetricsRegistry* metrics = config_.obs.metrics;
  obs::ScopedTimer timer(
      metrics != nullptr ? metrics->GetHistogram("ipool_pooling_apply_seconds")
                         : nullptr);
  if (metrics != nullptr) {
    metrics->GetCounter("ipool_pooling_applies_total")->Add(1);
  }
  const size_t fallbacks_before = fallback_count_;
  const int64_t target = TargetAtImpl(now);
  if (metrics != nullptr && fallback_count_ > fallbacks_before) {
    metrics->GetCounter("ipool_pooling_fallbacks_total")->Add(1);
  }
  return target;
}

int64_t PoolingWorker::TargetAtImpl(double now) {
  auto doc = documents_->Get(config_.recommendation_key);
  if (!doc.ok()) {
    ++fallback_count_;
    return config_.default_pool_size;
  }
  if (now - doc->updated_at > config_.recommendation_ttl_seconds) {
    ++fallback_count_;
    return config_.default_pool_size;
  }
  auto stored = ParseRecommendation(doc->value);
  if (!stored.ok()) {
    ++fallback_count_;
    return config_.default_pool_size;
  }
  return stored->TargetAt(now);
}

}  // namespace ipool
