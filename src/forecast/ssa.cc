#include "forecast/ssa.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <utility>

#include "common/strings.h"
#include "exec/scratch.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/simd_kernels.h"
#include "linalg/subspace.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ipool {

namespace {
/// Extra subspace directions iterated beyond max_rank; the whole block is
/// cached as the next tick's warm start.
constexpr size_t kSubspaceOversample = 4;
/// Incremental Gram slides tolerated before a full rebuild is forced, to
/// bound floating-point drift of the running updates.
constexpr size_t kMaxSlidesBeforeRebuild = 16;
}  // namespace

Status SsaForecaster::Fit(const TimeSeries& history) {
  return FitImpl(history, /*allow_warm=*/false);
}

Status SsaForecaster::Refit(const TimeSeries& history) {
  return FitImpl(history, /*allow_warm=*/true);
}

Status SsaForecaster::FitImpl(const TimeSeries& history, bool allow_warm) {
  const auto fit_start = std::chrono::steady_clock::now();
  obs::MetricsRegistry* metrics = options_.obs.metrics;
  obs::Tracer* tracer = options_.obs.tracer;

  const size_t n = history.size();
  if (n < 8) {
    return Status::InvalidArgument(
        StrFormat("SSA needs at least 8 points, got %zu", n));
  }
  // Clamp the embedding window into [2, n/2].
  effective_window_ = std::clamp<size_t>(options_.window, 2, n / 2);
  const size_t len = effective_window_;
  const size_t k = n - len + 1;

  // Install the configured pool as the ambient one so the eigensolve's
  // MatMuls and the reconstruction fan out; leave a caller-installed
  // ambient pool in place when none is configured here.
  std::optional<exec::ScopedPool> ambient;
  if (options_.exec.enabled()) ambient.emplace(options_.exec);

  // Normalize for numeric stability of the eigensolve.
  scale_ = std::max(1.0, history.Max());
  std::vector<double> raw = history.values();
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) y[i] = raw[i] / scale_;

  fallback_level_ = 0.0;
  for (double v : y) fallback_level_ += v;
  fallback_level_ /= static_cast<double>(n);
  use_fallback_ = false;

  SsaWarmState* warm = options_.warm != nullptr ? options_.warm : &own_warm_;
  if (!allow_warm) warm->valid = false;
  const bool geometry_match = warm->valid && warm->window == len &&
                              warm->n == n && warm->raw.size() == n &&
                              warm->interval == history.interval();

  // ---- Phase 1: Gram, raw units, Hankel-free. A refit whose window slid
  // forward over verified-identical data updates the cached Gram in place
  // (O(L^2 * shift)); everything else rebuilds via the sliding-diagonal
  // HankelGram (O(L*K + L^2)). The L x K trajectory matrix never exists.
  Matrix gram_raw;
  warm_gram_hit_ = false;
  bool gram_reused = false;
  size_t applied_shift = 0;
  {
    obs::ScopedSpan span(tracer, "ssa.gram");
    if (geometry_match && history.interval() > 0.0) {
      const double fshift =
          (history.start() - warm->start) / history.interval();
      const double rounded = std::nearbyint(fshift);
      if (rounded >= 0.0 && std::fabs(fshift - rounded) < 1e-6 &&
          rounded < static_cast<double>(n)) {
        const size_t shift = static_cast<size_t>(rounded);
        bool overlap = true;
        for (size_t i = 0; i + shift < n && overlap; ++i) {
          overlap = warm->raw[i + shift] == raw[i];
        }
        // Slide only while cheaper than a rebuild (O(L^2 * s) vs O(L * K)),
        // and rebuild periodically regardless to bound FP drift.
        const bool cheap = shift * len <= 2 * k;
        if (overlap && cheap &&
            warm->slides_since_rebuild < kMaxSlidesBeforeRebuild) {
          if (shift == 0) {
            gram_raw = std::move(warm->gram_raw);
            gram_reused = true;
          } else {
            std::vector<double> combined = std::move(warm->raw);
            combined.insert(combined.end(), raw.end() - shift, raw.end());
            gram_raw = std::move(warm->gram_raw);
            if (SlideHankelGram(gram_raw, combined, len, shift).ok()) {
              gram_reused = true;
              applied_shift = shift;
            }
          }
        }
      }
    }
    if (!gram_reused) {
      IPOOL_ASSIGN_OR_RETURN(gram_raw, HankelGram(raw, len));
    }
    warm_gram_hit_ = gram_reused;
  }

  // Scaled view for the eigensolve: HankelGram(y) == HankelGram(raw)/scale^2
  // and eigenvectors are scale-invariant, so the cached Gram survives
  // per-tick scale changes.
  const double inv_scale2 = 1.0 / (scale_ * scale_);
  Matrix gram_scaled(len, len);
  for (size_t i = 0; i < len * len; ++i) {
    gram_scaled.data()[i] = gram_raw.data()[i] * inv_scale2;
  }

  // ---- Phase 2: top-r eigensolve. Subspace iteration (warm-started from
  // the previous tick's basis when available) with the dense Jacobi solve as
  // the stall-fallback oracle.
  const size_t want = std::max<size_t>(1, std::min(options_.max_rank, len));

  // Total spectrum energy is the exact Gram trace (sum of ALL sigma^2),
  // identical on both eigensolve paths, so the rank choice never depends on
  // how many eigenpairs were extracted.
  double total_energy = 0.0;
  for (size_t i = 0; i < len; ++i) total_energy += gram_scaled(i, i);
  const auto energy_rank = [&](const std::vector<double>& vals,
                               size_t avail) {
    size_t rank = 0;
    double captured = 0.0;
    while (rank < avail && rank < options_.max_rank &&
           captured < options_.energy_threshold * total_energy) {
      captured += std::max(vals[rank], 0.0);
      ++rank;
    }
    return std::min(std::max<size_t>(rank, 1), std::max<size_t>(avail, 1));
  };

  std::vector<double> eigvals;
  Matrix eigvecs;
  fit_path_ = FitPath::kNone;
  subspace_iterations_ = 0;
  warm_basis_hit_ = false;
  {
    obs::ScopedSpan span(tracer, "ssa.eigen");
    bool solved = false;
    if (!options_.force_jacobi) {
      SubspaceOptions sopt;
      sopt.oversample = kSubspaceOversample;
      sopt.seed = options_.seed;
      // Near machine precision, not the solver default: the recurrence
      // forecast amplifies eigenvector error by orders of magnitude over a
      // recursive horizon, and downstream provisioning rounds to integers —
      // warm and cold solves must agree far below that boundary. Accepted
      // spectra are well-gapped (contraction << 1/2 per iteration), so the
      // extra digits cost only a few more block power steps.
      sopt.tol = 1e-14;
      // Rank selection below keeps components only up to energy_threshold,
      // so the eigensolve need not polish pairs past it (noise-floor
      // directions with ~unit contraction per iteration).
      sopt.converge_energy =
          std::clamp(options_.energy_threshold, 0.0, 1.0);
      const bool basis_usable = geometry_match && warm->basis.rows() == len &&
                                warm->basis.cols() > 0;
      if (basis_usable) sopt.warm_start = &warm->basis;
      Result<SubspaceEigenResult> sub =
          SubspaceTopEigen(gram_scaled, want, sopt);
      // Accept only if the residual-converged head covers every component
      // rank selection will retain. The tail past the head (a noise cluster
      // the iteration cannot split) is returned best-effort and differs
      // between warm and cold starting blocks — retaining any of it would
      // change the model vs the Jacobi reference and make refits drift from
      // cold fits. When the energy threshold reaches into that cluster the
      // dense oracle below decides, exactly as before the fast path.
      if (sub.ok() && sub->converged &&
          energy_rank(sub->values,
                      std::min(sub->values.size(), sub->vectors.cols())) <=
              sub->converged_columns) {
        eigvals = std::move(sub->values);
        eigvecs = std::move(sub->vectors);
        subspace_iterations_ = sub->iterations;
        fit_path_ =
            sub->used_dense_fallback ? FitPath::kJacobi : FitPath::kSubspace;
        warm_basis_hit_ = basis_usable;
        solved = true;
      }
    }
    if (!solved) {
      IPOOL_ASSIGN_OR_RETURN(EigenDecomposition eig,
                             SymmetricEigen(gram_scaled));
      eigvals = std::move(eig.values);
      eigvecs = std::move(eig.vectors);
      fit_path_ = FitPath::kJacobi;
    }
  }

  // Pick rank: top components until the energy threshold, capped.
  const size_t avail = std::min(eigvals.size(), eigvecs.cols());
  const size_t rank = energy_rank(eigvals, avail);
  chosen_rank_ = rank;

  // ---- Phase 3: rank-major Hankel-free reconstruction. With u_r the left
  // singular vectors, sigma_r u_r v_r^T == u_r w_r^T for w_r = H^T u_r, and
  // w_r[j] = sum_i y[i+j] u_r[i] needs only the series. Diagonal averaging
  // then reads W back per output bin. Both loops fan out over the ambient
  // pool; every element is computed independently in a fixed r-then-i
  // order, so results are bit-identical at any thread count (the PR-2
  // determinism contract).
  {
    obs::ScopedSpan span(tracer, "ssa.reconstruct");
    Matrix w(rank, k);
    exec::ParallelFor(
        exec::Current(), 0, rank,
        [&](size_t lo, size_t hi) {
          // Column gather reuses per-thread scratch across chunk iterations.
          exec::ScratchScope scratch;
          double* u = scratch.Doubles(len);
          for (size_t r = lo; r < hi; ++r) {
            for (size_t i = 0; i < len; ++i) u[i] = eigvecs(i, r);
            double* wrow = w.data().data() + r * k;
            for (size_t j = 0; j < k; ++j) {
              wrow[j] = simd::Dot(y.data() + j, u, len);
            }
          }
        },
        {exec::Chunking::kDynamic, 1});
    reconstruction_.assign(n, 0.0);
    const size_t eig_cols = eigvecs.cols();
    const double* eig_data = eigvecs.data().data();
    const double* w_data = w.data().data();
    exec::ParallelFor(
        exec::Current(), 0, n,
        [&](size_t lo, size_t hi) {
          for (size_t d = lo; d < hi; ++d) {
            const size_t i0 = d >= k ? d - k + 1 : 0;
            const size_t i1 = std::min(len - 1, d);
            // Anti-diagonal d pairs the eigvec column (strided, row-major)
            // with the W row walked backwards from d - i0 — the
            // StridedRevDot shape, vectorized as gather + reversed load.
            const size_t span = i1 - i0 + 1;
            double acc = 0.0;
            for (size_t r = 0; r < rank; ++r) {
              acc += simd::StridedRevDot(eig_data + i0 * eig_cols + r,
                                         eig_cols,
                                         w_data + r * k + (d - i0), span);
            }
            reconstruction_[d] =
                (acc / static_cast<double>(span)) * scale_;
          }
        },
        {exec::Chunking::kDynamic, 64});
  }

  // ---- Phase 4: linear recurrence from the left singular vectors:
  // R = (1 / (1 - nu^2)) * sum_r pi_r * P_r^flat, with pi_r the last
  // coordinate of u_r and P_r^flat its first L-1 coordinates.
  {
    obs::ScopedSpan span(tracer, "ssa.recurrence");
    double nu2 = 0.0;
    for (size_t r = 0; r < rank; ++r) {
      const double pi = eigvecs(len - 1, r);
      nu2 += pi * pi;
    }
    if (nu2 >= 1.0 - 1e-9) {
      // Degenerate recurrence (the series is essentially captured by the
      // last embedding coordinate); fall back to level forecasting rather
      // than emit garbage — the robustness guardrail of §7.5 in miniature.
      use_fallback_ = true;
      recurrence_.clear();
    } else {
      recurrence_.assign(len - 1, 0.0);
      for (size_t r = 0; r < rank; ++r) {
        const double pi = eigvecs(len - 1, r);
        if (pi == 0.0) continue;
        for (size_t i = 0; i + 1 < len; ++i) {
          recurrence_[i] += pi * eigvecs(i, r);
        }
      }
      const double inv = 1.0 / (1.0 - nu2);
      for (double& c : recurrence_) c *= inv;
    }
  }
  fitted_ = true;

  // ---- Warm-state write-back (always, even on the fallback path): the
  // next Refit starts from this tick's Gram and singular subspace.
  const size_t keep = std::min(eigvecs.cols(), want + kSubspaceOversample);
  Matrix basis(len, keep);
  for (size_t c = 0; c < keep; ++c) {
    for (size_t i = 0; i < len; ++i) basis(i, c) = eigvecs(i, c);
  }
  warm->window = len;
  warm->n = n;
  warm->start = history.start();
  warm->interval = history.interval();
  warm->raw = std::move(raw);
  warm->gram_raw = std::move(gram_raw);
  warm->basis = std::move(basis);
  warm->slides_since_rebuild =
      gram_reused ? warm->slides_since_rebuild + (applied_shift > 0 ? 1 : 0)
                  : 0;
  warm->valid = true;

  if (metrics != nullptr) {
    const char* path =
        fit_path_ == FitPath::kSubspace ? "subspace" : "jacobi";
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      fit_start)
            .count();
    metrics->GetHistogram("ipool_ssa_fit_seconds", {{"path", path}})
        ->Observe(seconds);
    if (fit_path_ == FitPath::kSubspace) {
      metrics
          ->GetHistogram("ipool_ssa_subspace_iters", {},
                         {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96})
          ->Observe(static_cast<double>(subspace_iterations_));
    }
    if (warm_basis_hit_ || warm_gram_hit_) {
      metrics->GetCounter("ipool_ssa_warm_start_hits_total")->Add();
    }
    if (warm_gram_hit_) {
      metrics->GetCounter("ipool_ssa_gram_reuse_total")->Add();
    }
  }
  return Status::OK();
}

Result<std::vector<double>> SsaForecaster::Forecast(size_t horizon) {
  if (!fitted_) return Status::FailedPrecondition("SSA not fitted");
  if (horizon == 0) return std::vector<double>{};

  std::vector<double> out;
  out.reserve(horizon);
  if (use_fallback_) {
    out.assign(horizon, std::max(0.0, fallback_level_ * scale_));
    return out;
  }

  const size_t len = effective_window_;
  // Rolling buffer of the last L-1 values in scaled units.
  std::vector<double> tail(len - 1);
  const size_t n = reconstruction_.size();
  for (size_t i = 0; i < len - 1; ++i) {
    tail[i] = reconstruction_[n - (len - 1) + i] / scale_;
  }
  for (size_t h = 0; h < horizon; ++h) {
    double next = 0.0;
    for (size_t i = 0; i + 1 < len; ++i) next += recurrence_[i] * tail[i];
    // Guard against numerical blow-up of an unstable recurrence: clamp to a
    // generous multiple of the observed range.
    next = std::clamp(next, -10.0, 10.0);
    out.push_back(std::max(0.0, next * scale_));
    std::rotate(tail.begin(), tail.begin() + 1, tail.end());
    tail.back() = next;
  }
  return out;
}

}  // namespace ipool
