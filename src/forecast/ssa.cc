#include "forecast/ssa.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"

namespace ipool {

Status SsaForecaster::Fit(const TimeSeries& history) {
  const size_t n = history.size();
  if (n < 8) {
    return Status::InvalidArgument(
        StrFormat("SSA needs at least 8 points, got %zu", n));
  }
  // Clamp the embedding window into [2, n/2].
  effective_window_ = std::clamp<size_t>(options_.window, 2, n / 2);
  const size_t len = effective_window_;

  // Normalize for numeric stability of the SVD.
  scale_ = std::max(1.0, history.Max());
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) y[i] = history.value(i) / scale_;

  fallback_level_ = 0.0;
  for (double v : y) fallback_level_ += v;
  fallback_level_ /= static_cast<double>(n);
  use_fallback_ = false;

  IPOOL_ASSIGN_OR_RETURN(Matrix hankel, HankelMatrix(y, len));
  IPOOL_ASSIGN_OR_RETURN(Svd svd, ThinSvd(hankel));

  // Pick rank: top components until the energy threshold, capped.
  double total_energy = 0.0;
  for (double sv : svd.singular_values) total_energy += sv * sv;
  size_t rank = 0;
  double captured = 0.0;
  while (rank < svd.singular_values.size() && rank < options_.max_rank &&
         captured < options_.energy_threshold * total_energy) {
    captured += svd.singular_values[rank] * svd.singular_values[rank];
    ++rank;
  }
  rank = std::max<size_t>(rank, 1);
  chosen_rank_ = rank;

  // Reconstruct the rank-r signal by diagonal averaging of
  // sum_i s_i u_i v_i^T.
  const size_t k = n - len + 1;
  std::vector<double> diag_sum(n, 0.0);
  std::vector<double> diag_cnt(n, 0.0);
  for (size_t i = 0; i < len; ++i) {
    for (size_t j = 0; j < k; ++j) {
      double acc = 0.0;
      for (size_t r = 0; r < rank; ++r) {
        acc += svd.singular_values[r] * svd.u(i, r) * svd.v(j, r);
      }
      diag_sum[i + j] += acc;
      diag_cnt[i + j] += 1.0;
    }
  }
  reconstruction_.assign(n, 0.0);
  std::vector<double> recon_scaled(n);
  for (size_t i = 0; i < n; ++i) {
    recon_scaled[i] = diag_sum[i] / diag_cnt[i];
    reconstruction_[i] = recon_scaled[i] * scale_;
  }

  // Linear recurrence from the left singular vectors:
  // R = (1 / (1 - nu^2)) * sum_r pi_r * P_r^flat, with pi_r the last
  // coordinate of u_r and P_r^flat its first L-1 coordinates.
  double nu2 = 0.0;
  for (size_t r = 0; r < rank; ++r) {
    const double pi = svd.u(len - 1, r);
    nu2 += pi * pi;
  }
  if (nu2 >= 1.0 - 1e-9) {
    // Degenerate recurrence (the series is essentially captured by the last
    // embedding coordinate); fall back to level forecasting rather than
    // emit garbage — the robustness guardrail of §7.5 in miniature.
    use_fallback_ = true;
    fitted_ = true;
    return Status::OK();
  }
  recurrence_.assign(len - 1, 0.0);
  for (size_t r = 0; r < rank; ++r) {
    const double pi = svd.u(len - 1, r);
    if (pi == 0.0) continue;
    for (size_t i = 0; i + 1 < len; ++i) {
      recurrence_[i] += pi * svd.u(i, r);
    }
  }
  const double inv = 1.0 / (1.0 - nu2);
  for (double& c : recurrence_) c *= inv;

  // Seed the forecast with the reconstructed (denoised) tail.
  fitted_ = true;
  // Store the scaled reconstruction tail in reconstruction_? We keep the
  // unscaled reconstruction for callers; the forecast path re-scales.
  return Status::OK();
}

Result<std::vector<double>> SsaForecaster::Forecast(size_t horizon) {
  if (!fitted_) return Status::FailedPrecondition("SSA not fitted");
  if (horizon == 0) return std::vector<double>{};

  std::vector<double> out;
  out.reserve(horizon);
  if (use_fallback_) {
    out.assign(horizon, std::max(0.0, fallback_level_ * scale_));
    return out;
  }

  const size_t len = effective_window_;
  // Rolling buffer of the last L-1 values in scaled units.
  std::vector<double> tail(len - 1);
  const size_t n = reconstruction_.size();
  for (size_t i = 0; i < len - 1; ++i) {
    tail[i] = reconstruction_[n - (len - 1) + i] / scale_;
  }
  for (size_t h = 0; h < horizon; ++h) {
    double next = 0.0;
    for (size_t i = 0; i + 1 < len; ++i) next += recurrence_[i] * tail[i];
    // Guard against numerical blow-up of an unstable recurrence: clamp to a
    // generous multiple of the observed range.
    next = std::clamp(next, -10.0, 10.0);
    out.push_back(std::max(0.0, next * scale_));
    std::rotate(tail.begin(), tail.begin() + 1, tail.end());
    tail.back() = next;
  }
  return out;
}

}  // namespace ipool
