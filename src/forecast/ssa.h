// Singular Spectrum Analysis forecasting (Golyandina & Korobeynikov style),
// the traditional-ML contender of §5.1 and the base of the hybrid SSA+
// model. Pipeline: Hankel embedding -> SVD -> top-r grouping -> diagonal-
// averaging reconstruction -> linear recurrence (R-)forecasting.
#ifndef IPOOL_FORECAST_SSA_H_
#define IPOOL_FORECAST_SSA_H_

#include <string>
#include <vector>

#include "forecast/forecaster.h"

namespace ipool {

class SsaForecaster : public Forecaster {
 public:
  struct Options {
    /// Embedding window L. Must satisfy 2 <= L <= N/2 at Fit time (clamped
    /// down when the history is short).
    size_t window = 96;
    /// Keep at most this many leading components.
    size_t max_rank = 12;
    /// Keep components until this fraction of spectrum energy is captured
    /// (whichever of max_rank / energy binds first).
    double energy_threshold = 0.995;
  };

  explicit SsaForecaster(Options options) : options_(options) {}

  std::string name() const override { return "SSA"; }
  Status Fit(const TimeSeries& history) override;
  Result<std::vector<double>> Forecast(size_t horizon) override;

  /// In-sample reconstruction of the fitted series (denoised signal),
  /// exposed for the hybrid model and for tests.
  const std::vector<double>& reconstruction() const { return reconstruction_; }
  size_t chosen_rank() const { return chosen_rank_; }

 private:
  Options options_;
  bool fitted_ = false;
  double scale_ = 1.0;
  size_t effective_window_ = 0;
  size_t chosen_rank_ = 0;
  /// Linear recurrence coefficients over the last (L-1) reconstructed values.
  std::vector<double> recurrence_;
  std::vector<double> reconstruction_;  // unscaled (original units)
  double fallback_level_ = 0.0;
  bool use_fallback_ = false;
};

}  // namespace ipool

#endif  // IPOOL_FORECAST_SSA_H_
