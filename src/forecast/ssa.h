// Singular Spectrum Analysis forecasting (Golyandina & Korobeynikov style),
// the traditional-ML contender of §5.1 and the base of the hybrid SSA+
// model. Pipeline: Hankel embedding -> SVD -> top-r grouping -> diagonal-
// averaging reconstruction -> linear recurrence (R-)forecasting.
//
// Training fast path (DESIGN.md "SSA training fast path"): the L x K Hankel
// matrix is never materialized — its L x L Gram is built by sliding-diagonal
// updates (HankelGram), only the top max_rank (+ oversample) eigenpairs are
// extracted by a warm-startable subspace iteration (SubspaceTopEigen, with
// the dense Jacobi solve as fallback oracle), and Refit reuses the previous
// tick's Gram and singular subspace across control-loop ticks.
#ifndef IPOOL_FORECAST_SSA_H_
#define IPOOL_FORECAST_SSA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "forecast/forecaster.h"

namespace ipool {

class SsaForecaster : public Forecaster {
 public:
  struct Options {
    /// Embedding window L. Must satisfy 2 <= L <= N/2 at Fit time (clamped
    /// down when the history is short).
    size_t window = 96;
    /// Keep at most this many leading components.
    size_t max_rank = 12;
    /// Keep components until this fraction of spectrum energy is captured
    /// (whichever of max_rank / energy binds first).
    double energy_threshold = 0.995;
    /// Seeds the subspace iteration's random start block.
    uint64_t seed = 7;
    /// Forces the dense Jacobi eigensolve (the reference oracle) instead of
    /// the subspace iteration. For tests and benchmarks.
    bool force_jacobi = false;
    /// Cross-tick warm state (see SsaWarmState). Null means the forecaster
    /// keeps private warm state, so Refit works standalone; wiring a shared
    /// pointer lets a fresh forecaster instance inherit a previous one's
    /// training state (the control-loop pattern).
    SsaWarmState* warm = nullptr;
    /// Observability sink (optional): fit-phase spans and path metrics.
    ObsContext obs;
    /// Execution context (optional): reconstruction and the subspace
    /// iteration fan out over this pool, bit-identical to serial.
    exec::ExecContext exec;
  };

  /// Which eigensolve produced the current fit.
  enum class FitPath { kNone, kSubspace, kJacobi };

  explicit SsaForecaster(Options options) : options_(options) {}

  std::string name() const override { return "SSA"; }
  /// Cold fit: ignores (and then refreshes) any warm state.
  Status Fit(const TimeSeries& history) override;
  /// Warm fit: reuses the previous Gram (slid incrementally when the window
  /// moved forward in place) and the previous singular subspace as the
  /// eigensolver's starting block. Falls back to cold behavior whenever the
  /// cached state does not match the new history.
  Status Refit(const TimeSeries& history) override;
  Result<std::vector<double>> Forecast(size_t horizon) override;

  /// In-sample reconstruction of the fitted series (denoised signal),
  /// exposed for the hybrid model and for tests.
  const std::vector<double>& reconstruction() const { return reconstruction_; }
  size_t chosen_rank() const { return chosen_rank_; }

  /// Fit-path introspection for tests and benches.
  FitPath fit_path() const { return fit_path_; }
  size_t subspace_iterations() const { return subspace_iterations_; }
  /// True when the last fit reused the previous tick's eigenbasis.
  bool warm_basis_hit() const { return warm_basis_hit_; }
  /// True when the last fit reused (slid or verbatim) the previous Gram.
  bool warm_gram_hit() const { return warm_gram_hit_; }

 private:
  Status FitImpl(const TimeSeries& history, bool allow_warm);

  Options options_;
  bool fitted_ = false;
  double scale_ = 1.0;
  size_t effective_window_ = 0;
  size_t chosen_rank_ = 0;
  /// Linear recurrence coefficients over the last (L-1) reconstructed values.
  std::vector<double> recurrence_;
  std::vector<double> reconstruction_;  // unscaled (original units)
  double fallback_level_ = 0.0;
  bool use_fallback_ = false;

  /// Private warm state used when Options::warm is null.
  SsaWarmState own_warm_;
  FitPath fit_path_ = FitPath::kNone;
  size_t subspace_iterations_ = 0;
  bool warm_basis_hit_ = false;
  bool warm_gram_hit_ = false;
};

}  // namespace ipool

#endif  // IPOOL_FORECAST_SSA_H_
