// Shared machinery for the trainable forecasters (InceptionTime, TST, mWDN
// and the SSA+ corrector): sliding-window dataset construction, scaling,
// mini-batch training with Adam and the Eq 12 asymmetric loss, early
// stopping on a trailing validation split (the paper's 90/10 protocol), and
// iterated multi-step forecasting.
#ifndef IPOOL_FORECAST_DEEP_BASE_H_
#define IPOOL_FORECAST_DEEP_BASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "forecast/forecaster.h"
#include "nn/tensor.h"

namespace ipool {

/// Supervised window -> horizon samples cut from a series (already scaled).
struct WindowDataset {
  std::vector<std::vector<double>> inputs;   // each of length window
  std::vector<std::vector<double>> targets;  // each of length horizon
};

/// Cuts sliding windows with the given stride. Requires
/// series.size() >= window + horizon.
Result<WindowDataset> BuildWindowDataset(const std::vector<double>& series,
                                         size_t window, size_t horizon,
                                         size_t stride);

/// Base class implementing Fit/Forecast; subclasses provide the network.
class DeepForecasterBase : public Forecaster {
 public:
  explicit DeepForecasterBase(const ForecastParams& params)
      : params_(params) {}

  Status Fit(const TimeSeries& history) override;
  Result<std::vector<double>> Forecast(size_t horizon) override;

  /// Training diagnostics from the last Fit.
  double last_train_loss() const { return last_train_loss_; }
  double last_validation_loss() const { return last_validation_loss_; }
  size_t epochs_run() const { return epochs_run_; }

 protected:
  /// Constructs (or reconstructs) the network. Called once per Fit with a
  /// deterministic RNG derived from params_.seed.
  virtual void BuildModel(Rng& rng) = 0;
  /// Forward pass: input {window} (scaled) -> prediction {horizon} (scaled).
  virtual nn::Tensor ForwardWindow(const nn::Tensor& input) const = 0;
  /// Trainable parameters of the current model.
  virtual std::vector<nn::Tensor> ModelParameters() const = 0;

  const ForecastParams& params() const { return params_; }

 private:
  ForecastParams params_;
  bool fitted_ = false;
  double scale_ = 1.0;
  std::vector<double> history_tail_;  // last `window` scaled values
  double last_train_loss_ = 0.0;
  double last_validation_loss_ = 0.0;
  size_t epochs_run_ = 0;
};

}  // namespace ipool

#endif  // IPOOL_FORECAST_DEEP_BASE_H_
