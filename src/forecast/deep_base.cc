#include "forecast/deep_base.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/strings.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"

namespace ipool {

Status ForecastParams::Validate() const {
  if (window < 4) return Status::InvalidArgument("window must be >= 4");
  if (horizon == 0) return Status::InvalidArgument("horizon must be >= 1");
  if (batch_size == 0) return Status::InvalidArgument("batch_size must be >= 1");
  if (stride == 0) return Status::InvalidArgument("stride must be >= 1");
  if (learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (alpha_prime < 0.0 || alpha_prime > 1.0) {
    return Status::InvalidArgument("alpha_prime must be in [0,1]");
  }
  if (gamma <= 0.0) return Status::InvalidArgument("gamma must be positive");
  if (ssa_rank == 0) return Status::InvalidArgument("ssa_rank must be >= 1");
  return Status::OK();
}

Result<WindowDataset> BuildWindowDataset(const std::vector<double>& series,
                                         size_t window, size_t horizon,
                                         size_t stride) {
  if (window == 0 || horizon == 0 || stride == 0) {
    return Status::InvalidArgument("window/horizon/stride must be positive");
  }
  if (series.size() < window + horizon) {
    return Status::InvalidArgument(
        StrFormat("series length %zu < window %zu + horizon %zu",
                  series.size(), window, horizon));
  }
  WindowDataset dataset;
  for (size_t start = 0; start + window + horizon <= series.size();
       start += stride) {
    dataset.inputs.emplace_back(series.begin() + static_cast<ptrdiff_t>(start),
                                series.begin() + static_cast<ptrdiff_t>(start + window));
    dataset.targets.emplace_back(
        series.begin() + static_cast<ptrdiff_t>(start + window),
        series.begin() + static_cast<ptrdiff_t>(start + window + horizon));
  }
  return dataset;
}

Status DeepForecasterBase::Fit(const TimeSeries& history) {
  IPOOL_RETURN_NOT_OK(params_.Validate());
  // Internal training telemetry: distinct from the pipeline-boundary
  // ipool_forecast_fit_seconds recorded by the RecommendationEngine, this
  // times the training loop itself and counts epochs actually run (early
  // stopping makes that data-dependent).
  obs::Histogram* train_hist = nullptr;
  if (params_.obs.metrics != nullptr) {
    train_hist = params_.obs.metrics->GetHistogram("ipool_train_seconds",
                                                   {{"model", name()}});
  }
  obs::ScopedTimer train_timer(train_hist);
  // Ambient pool for the MatMul kernels of the whole fit (forward passes and
  // Backward() both read it); null exec keeps everything serial inline.
  exec::ScopedPool pool_scope(params_.exec);
  const size_t window = params_.window;
  const size_t horizon = params_.horizon;
  if (history.size() < window + horizon + 1) {
    return Status::InvalidArgument(
        StrFormat("history length %zu too short for window %zu + horizon %zu",
                  history.size(), window, horizon));
  }

  scale_ = std::max(1.0, history.Max());
  std::vector<double> scaled(history.size());
  for (size_t i = 0; i < history.size(); ++i) {
    scaled[i] = history.value(i) / scale_;
  }

  IPOOL_ASSIGN_OR_RETURN(
      WindowDataset dataset,
      BuildWindowDataset(scaled, window, horizon, params_.stride));
  const size_t num_samples = dataset.inputs.size();

  // Trailing 10% as validation (time-ordered split, matching the paper's
  // train/validation protocol for DNN models).
  const size_t num_val = std::max<size_t>(1, num_samples / 10);
  const size_t num_train = num_samples > num_val ? num_samples - num_val : 0;
  if (num_train == 0) {
    return Status::InvalidArgument("not enough samples to train");
  }

  Rng rng(params_.seed);
  BuildModel(rng);
  std::vector<nn::Tensor> parameters = ModelParameters();
  nn::Adam adam(parameters, params_.learning_rate);

  auto sample_loss = [&](size_t idx) {
    nn::Tensor input = nn::Tensor::FromVector(dataset.inputs[idx]);
    nn::Tensor target = nn::Tensor::FromVector(dataset.targets[idx]);
    nn::Tensor pred = ForwardWindow(input);
    return nn::AsymmetricLoss(pred, target, params_.alpha_prime);
  };

  std::vector<size_t> order(num_train);
  std::iota(order.begin(), order.end(), 0);

  double best_val = std::numeric_limits<double>::infinity();
  size_t patience = 0;
  constexpr size_t kPatienceLimit = 3;
  epochs_run_ = 0;

  // Snapshot of the best parameters seen (early-stopping restore).
  std::vector<std::vector<double>> best_params;
  auto snapshot = [&]() {
    best_params.clear();
    for (const nn::Tensor& p : parameters) best_params.push_back(p.value());
  };
  auto restore = [&]() {
    for (size_t i = 0; i < parameters.size(); ++i) {
      parameters[i].mutable_value() = best_params[i];
    }
  };

  for (size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    ++epochs_run_;
    // Fisher-Yates shuffle with the deterministic RNG.
    for (size_t i = num_train; i > 1; --i) {
      const size_t j = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }

    double train_loss = 0.0;
    size_t processed = 0;
    while (processed < num_train) {
      const size_t batch_end =
          std::min(processed + params_.batch_size, num_train);
      adam.ZeroGrad();
      for (size_t i = processed; i < batch_end; ++i) {
        nn::Tensor loss = sample_loss(order[i]);
        train_loss += loss.scalar();
        IPOOL_RETURN_NOT_OK(loss.Backward());
      }
      // Average the accumulated gradients over the batch.
      const double inv = 1.0 / static_cast<double>(batch_end - processed);
      for (nn::Tensor& p : parameters) {
        for (double& g : p.mutable_grad()) g *= inv;
      }
      adam.Step();
      processed = batch_end;
    }
    last_train_loss_ = train_loss / static_cast<double>(num_train);

    // Validation.
    double val_loss = 0.0;
    for (size_t i = num_train; i < num_samples; ++i) {
      val_loss += sample_loss(i).scalar();
    }
    val_loss /= static_cast<double>(num_val);
    last_validation_loss_ = val_loss;

    if (val_loss + 1e-9 < best_val) {
      best_val = val_loss;
      patience = 0;
      snapshot();
    } else if (params_.early_stopping && ++patience >= kPatienceLimit) {
      restore();
      break;
    }
  }
  if (params_.early_stopping && !best_params.empty() &&
      last_validation_loss_ > best_val) {
    restore();
  }

  history_tail_.assign(scaled.end() - static_cast<ptrdiff_t>(window),
                       scaled.end());
  fitted_ = true;
  if (params_.obs.metrics != nullptr) {
    params_.obs.metrics
        ->GetCounter("ipool_train_epochs_total", {{"model", name()}})
        ->Add(epochs_run_);
    params_.obs.metrics
        ->GetGauge("ipool_train_last_validation_loss", {{"model", name()}})
        ->Set(last_validation_loss_);
  }
  return Status::OK();
}

Result<std::vector<double>> DeepForecasterBase::Forecast(size_t horizon) {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  exec::ScopedPool pool_scope(params_.exec);
  std::vector<double> window = history_tail_;
  std::vector<double> out;
  out.reserve(horizon);
  while (out.size() < horizon) {
    nn::Tensor input = nn::Tensor::FromVector(window);
    nn::Tensor pred = ForwardWindow(input);
    const size_t take = std::min(pred.size(), horizon - out.size());
    for (size_t i = 0; i < take; ++i) {
      const double v = std::max(0.0, pred.value()[i]);
      out.push_back(v * scale_);
    }
    // Slide the window over the model's own (clamped) predictions for
    // horizons beyond the native output length.
    const size_t shift = std::min(pred.size(), window.size());
    window.erase(window.begin(), window.begin() + static_cast<ptrdiff_t>(shift));
    for (size_t i = pred.size() - shift; i < pred.size(); ++i) {
      window.push_back(std::max(0.0, pred.value()[i]));
    }
  }
  return out;
}

}  // namespace ipool
