// The forecasting interface shared by all demand predictors of §5: SSA, the
// three deep models (InceptionTime, TST, mWDN), the hybrid SSA+ and the
// no-intelligence baseline. A forecaster is fitted on a historic
// request-rate series and then asked for `horizon` future bins.
#ifndef IPOOL_FORECAST_FORECASTER_H_
#define IPOOL_FORECAST_FORECASTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/thread_pool.h"
#include "linalg/matrix.h"
#include "obs/obs_context.h"
#include "tsdata/time_series.h"

namespace ipool {

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Human-readable model name as used in the paper's tables ("SSA+",
  /// "mWDN", ...).
  virtual std::string name() const = 0;

  /// Trains on the history. May be called repeatedly with fresh data (the
  /// production pipeline retrains every few minutes).
  virtual Status Fit(const TimeSeries& history) = 0;

  /// Incremental retrain on a history that (typically) slid forward a few
  /// bins since the previous Fit/Refit. Models with warm-startable training
  /// (SSA) override this to reuse prior state; the default is a full Fit,
  /// so every model is safely refittable.
  virtual Status Refit(const TimeSeries& history) { return Fit(history); }

  /// Predicts the `horizon` bins immediately following the fitted history.
  /// Predictions are clamped to be non-negative (they are request counts).
  virtual Result<std::vector<double>> Forecast(size_t horizon) = 0;
};

/// Warm state carried by the SSA trainer across control-loop ticks. Owned by
/// the caller (one per pool under RunFleet's fan-out); a null pointer in
/// ForecastParams keeps every run cold. All numeric state is in RAW
/// (unscaled) units so it survives per-tick changes of the normalization
/// scale.
struct SsaWarmState {
  bool valid = false;
  /// Geometry the cached Gram/basis were built for; a refit with different
  /// geometry rebuilds from scratch (but still writes fresh warm state).
  size_t window = 0;
  size_t n = 0;
  double start = 0.0;
  double interval = 0.0;
  /// The unscaled series the Gram covers (overlap is verified exactly
  /// before an incremental slide is trusted).
  std::vector<double> raw;
  /// window x window Gram of `raw`'s Hankel embedding, raw units.
  Matrix gram_raw;
  /// window x r leading eigenbasis from the previous solve — the subspace
  /// iteration's starting block (rank + oversample columns).
  Matrix basis;
  /// Incremental slides applied since the last full Gram rebuild; a rebuild
  /// is forced periodically to bound floating-point drift.
  size_t slides_since_rebuild = 0;
};

/// Per-pool warm state threaded from the control-loop worker through the
/// recommendation engine into the forecaster factory.
struct ForecastWarmState {
  SsaWarmState ssa;
};

/// The models of Table 1 / Fig 5 / Fig 6.
enum class ModelKind {
  kBaseline,       // Eq 17: gamma * max(y_train)
  kSsa,            // singular spectrum analysis
  kSsaPlus,        // hybrid: SSA + shallow error-corrector net (deployed)
  kMwdn,           // multilevel wavelet decomposition network
  kTst,            // time-series transformer
  kInceptionTime,  // 1-D inception convnet
};

std::string ModelKindToString(ModelKind kind);

/// Inverse of ModelKindToString (exact paper-table names: "SSA+", "mWDN",
/// ...). InvalidArgument on anything else — parsers of persisted tuning
/// documents must reject unknown models rather than guess.
Result<ModelKind> ModelKindFromString(const std::string& name);

/// Shared hyper-parameters (paper defaults scaled to laptop budgets; see
/// EXPERIMENTS.md for the mapping).
struct ForecastParams {
  /// Input window length for deep models / SSA embedding dimension.
  size_t window = 96;
  /// Native multi-step output length of the deep models; longer forecasts
  /// iterate the model on its own output.
  size_t horizon = 48;
  /// Training epochs for deep models.
  size_t epochs = 8;
  /// Mini-batch size (gradient accumulation).
  size_t batch_size = 16;
  double learning_rate = 1e-2;
  /// Eq 12 trade-off for trainable models: > 0.5 biases toward
  /// overprediction (lower wait times).
  double alpha_prime = 0.5;
  /// Stride between consecutive training windows.
  size_t stride = 4;
  /// Stop early (patience 3 on validation loss) and restore the best
  /// parameters. Disable to measure fixed-epoch training cost.
  bool early_stopping = true;
  /// Baseline's gamma (Eq 17).
  double gamma = 1.0;
  /// SSA rank cap.
  size_t ssa_rank = 12;
  /// Optional warm state for the SSA trainer (see SsaWarmState). Null keeps
  /// refits cold. Non-owning; must outlive the forecaster.
  SsaWarmState* ssa_warm = nullptr;
  uint64_t seed = 7;
  /// Observability sink (optional): trainable models record per-epoch
  /// counters and internal training time against it.
  ObsContext obs;
  /// Execution context (optional): when a thread pool is wired in, Fit and
  /// Forecast install it as the ambient pool so the row-blocked MatMul
  /// kernels fan out. Results are bit-identical to the serial path (the
  /// determinism contract in DESIGN.md "Execution & parallelism").
  exec::ExecContext exec;

  Status Validate() const;
};

/// Factory covering every ModelKind.
Result<std::unique_ptr<Forecaster>> CreateForecaster(
    ModelKind kind, const ForecastParams& params);

}  // namespace ipool

#endif  // IPOOL_FORECAST_FORECASTER_H_
