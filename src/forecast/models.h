// The concrete forecasting models compared in Table 1 / Fig 5 / Fig 6:
//   * NoIntelligenceForecaster — Eq 17 baseline, gamma * max(y_train);
//   * MwdnForecaster           — multilevel wavelet decomposition network;
//   * TstForecaster            — time-series transformer encoder;
//   * InceptionTimeForecaster  — 1-D inception convnet;
//   * SsaPlusForecaster        — the deployed hybrid: SSA + a ~30-parameter
//                                two-layer error corrector trained with the
//                                Eq 12 asymmetric loss.
//
// The deep models are deliberately small versions of their namesakes (the
// paper's point is that over-parameterized nets are too slow to retrain
// every few minutes); EXPERIMENTS.md records the scaling.
#ifndef IPOOL_FORECAST_MODELS_H_
#define IPOOL_FORECAST_MODELS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "forecast/deep_base.h"
#include "forecast/ssa.h"
#include "nn/layers.h"

namespace ipool {

/// Eq 17: a constant forecast of gamma * max(y_train).
class NoIntelligenceForecaster : public Forecaster {
 public:
  explicit NoIntelligenceForecaster(double gamma) : gamma_(gamma) {}

  std::string name() const override { return "Baseline"; }
  Status Fit(const TimeSeries& history) override;
  Result<std::vector<double>> Forecast(size_t horizon) override;

 private:
  double gamma_;
  bool fitted_ = false;
  double level_ = 0.0;
};

/// mWDN: 3 levels of learnable db4-initialized wavelet decomposition; as in
/// the original architecture, one recurrent network (LSTM) runs over each
/// frequency band (the detail series of every level plus the final
/// approximation) and their final hidden states feed the regression head,
/// together with a skip connection from the recent raw window.
class MwdnForecaster : public DeepForecasterBase {
 public:
  explicit MwdnForecaster(const ForecastParams& params)
      : DeepForecasterBase(params) {}

  std::string name() const override { return "mWDN"; }

 protected:
  void BuildModel(Rng& rng) override;
  nn::Tensor ForwardWindow(const nn::Tensor& input) const override;
  std::vector<nn::Tensor> ModelParameters() const override;

 private:
  static constexpr size_t kLevels = 3;
  static constexpr size_t kBandHidden = 8;
  std::vector<std::unique_ptr<nn::WaveletLevel>> levels_;
  /// One per detail band, plus one for the final approximation.
  std::vector<std::unique_ptr<nn::Lstm>> band_rnns_;
  std::unique_ptr<nn::Dense> head1_;
  std::unique_ptr<nn::Dense> head2_;
  size_t feature_dim_ = 0;
  size_t skip_dim_ = 0;
};

/// TST: per-step input projection + sinusoidal positional encoding + two
/// transformer encoder blocks + mean pooling + linear head.
class TstForecaster : public DeepForecasterBase {
 public:
  explicit TstForecaster(const ForecastParams& params)
      : DeepForecasterBase(params) {}

  std::string name() const override { return "TST"; }

 protected:
  void BuildModel(Rng& rng) override;
  nn::Tensor ForwardWindow(const nn::Tensor& input) const override;
  std::vector<nn::Tensor> ModelParameters() const override;

 private:
  static constexpr size_t kDModel = 16;
  static constexpr size_t kHeads = 2;
  static constexpr size_t kFfDim = 32;
  std::unique_ptr<nn::Dense> input_proj_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> blocks_;
  std::unique_ptr<nn::Dense> head_;
  nn::Tensor positional_;  // constant
};

/// InceptionTime: two inception blocks (parallel convolutions with kernel
/// sizes 9/19/39 plus a maxpool->1x1 branch), global average pooling and a
/// linear head.
class InceptionTimeForecaster : public DeepForecasterBase {
 public:
  explicit InceptionTimeForecaster(const ForecastParams& params)
      : DeepForecasterBase(params) {}

  std::string name() const override { return "IncpT"; }

 protected:
  void BuildModel(Rng& rng) override;
  nn::Tensor ForwardWindow(const nn::Tensor& input) const override;
  std::vector<nn::Tensor> ModelParameters() const override;

 private:
  struct InceptionBlock {
    std::unique_ptr<nn::Conv1d> bottleneck;  // 1x1, null in the first block
    std::unique_ptr<nn::Conv1d> conv_small;
    std::unique_ptr<nn::Conv1d> conv_mid;
    std::unique_ptr<nn::Conv1d> conv_large;
    std::unique_ptr<nn::Conv1d> pool_proj;  // 1x1 after maxpool
  };
  static constexpr size_t kFilters = 6;  // per branch => 4*kFilters channels
  nn::Tensor ForwardBlock(const InceptionBlock& block, const nn::Tensor& x) const;

  std::vector<InceptionBlock> blocks_;
  std::unique_ptr<nn::Dense> head_;
};

/// The deployed hybrid model (§5.3): an SSA forecaster plus a shallow
/// two-layer corrector (~30 parameters) that learns the over/undershoot
/// needed to hit the target wait time, trained with the Eq 12 loss on the
/// SSA residuals.
class SsaPlusForecaster : public Forecaster {
 public:
  explicit SsaPlusForecaster(const ForecastParams& params) : params_(params) {}

  std::string name() const override { return "SSA+"; }
  Status Fit(const TimeSeries& history) override;
  /// Warm refit: the final full-history SSA fit reuses the previous tick's
  /// training state (via ForecastParams::ssa_warm); the anchor-prefix probes
  /// and the corrector retrain as usual.
  Status Refit(const TimeSeries& history) override;
  Result<std::vector<double>> Forecast(size_t horizon) override;

  /// Number of trainable corrector parameters (paper: ~30).
  size_t corrector_parameter_count() const;

  /// The underlying SSA model of the last fit (null before Fit). For tests.
  const SsaForecaster* ssa() const { return ssa_ ? &*ssa_ : nullptr; }

 private:
  /// Corrector feature vector for a forecast step: the SSA prediction,
  /// time-of-day and minute-of-hour phases (scheduled jobs surge at round
  /// hours), the recent demand level at forecast time and the relative
  /// position within the horizon — all available at inference.
  static std::vector<double> Features(double ssa_pred_scaled,
                                      double time_of_day_fraction,
                                      double time_of_hour_fraction,
                                      double recent_level_scaled,
                                      double step_fraction);
  static constexpr size_t kFeatureCount = 7;

  ForecastParams params_;
  bool fitted_ = false;
  double scale_ = 1.0;
  double interval_seconds_ = kDefaultIntervalSeconds;
  double history_end_time_ = 0.0;
  std::optional<SsaForecaster> ssa_;
  std::unique_ptr<nn::Dense> corrector1_;
  std::unique_ptr<nn::Dense> corrector2_;
  /// False when the held-out validation showed the correction hurting; the
  /// model then behaves as plain SSA.
  bool use_corrector_ = true;
  double recent_level_scaled_ = 0.0;
  /// True while a Refit is in flight (routes the final SSA fit through its
  /// warm path).
  bool refitting_ = false;
};

}  // namespace ipool

#endif  // IPOOL_FORECAST_MODELS_H_
