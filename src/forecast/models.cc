#include "forecast/models.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace ipool {

namespace {
constexpr double kSecondsPerDay = 86400.0;
}

// ---- NoIntelligenceForecaster ----------------------------------------------

Status NoIntelligenceForecaster::Fit(const TimeSeries& history) {
  if (history.empty()) return Status::InvalidArgument("empty history");
  if (gamma_ <= 0.0) return Status::InvalidArgument("gamma must be positive");
  level_ = gamma_ * history.Max();
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> NoIntelligenceForecaster::Forecast(
    size_t horizon) {
  if (!fitted_) return Status::FailedPrecondition("baseline not fitted");
  return std::vector<double>(horizon, std::max(0.0, level_));
}

// ---- MwdnForecaster ----------------------------------------------------------

void MwdnForecaster::BuildModel(Rng& rng) {
  levels_.clear();
  band_rnns_.clear();
  for (size_t i = 0; i < kLevels; ++i) {
    levels_.push_back(std::make_unique<nn::WaveletLevel>(rng));
  }
  // One LSTM per frequency band (detail of each level + final
  // approximation), as in the original mWDN, plus a skip connection from
  // the recent raw window (the sigmoid-squashed wavelet coefficients lose
  // absolute level, which the skip restores).
  for (size_t i = 0; i < kLevels + 1; ++i) {
    band_rnns_.push_back(std::make_unique<nn::Lstm>(1, kBandHidden, rng));
  }
  const size_t w = params().window;
  skip_dim_ = std::min<size_t>(24, w);
  feature_dim_ = (kLevels + 1) * kBandHidden + skip_dim_;
  const size_t hidden = 32;
  head1_ = std::make_unique<nn::Dense>(feature_dim_, hidden, rng);
  head2_ = std::make_unique<nn::Dense>(hidden, params().horizon, rng);
}

nn::Tensor MwdnForecaster::ForwardWindow(const nn::Tensor& input) const {
  nn::Tensor x = nn::Reshape(input, {1, input.size()});
  nn::Tensor features;
  for (size_t i = 0; i < kLevels; ++i) {
    auto level = levels_[i]->Forward(x);
    // Detail band -> sequence {len, 1} -> LSTM final hidden.
    nn::Tensor detail_seq =
        nn::Reshape(level.detail, {level.detail.cols(), 1});
    nn::Tensor band = band_rnns_[i]->ForwardSequence(detail_seq);
    features = i == 0 ? band : nn::ConcatVec(features, band);
    x = level.approximation;
    if (i + 1 == kLevels) {
      nn::Tensor approx_seq = nn::Reshape(x, {x.cols(), 1});
      features = nn::ConcatVec(
          features, band_rnns_[kLevels]->ForwardSequence(approx_seq));
    }
  }
  nn::Tensor skip =
      nn::SliceVec(input, input.size() - skip_dim_, input.size());
  features = nn::ConcatVec(features, skip);
  nn::Tensor hidden = nn::Relu(head1_->Forward(features));
  return head2_->Forward(hidden);
}

std::vector<nn::Tensor> MwdnForecaster::ModelParameters() const {
  std::vector<nn::Tensor> params;
  for (const auto& level : levels_) {
    auto p = level->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  for (const auto& rnn : band_rnns_) {
    auto p = rnn->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  for (const nn::Dense* d : {head1_.get(), head2_.get()}) {
    auto p = d->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

// ---- TstForecaster -----------------------------------------------------------

void TstForecaster::BuildModel(Rng& rng) {
  input_proj_ = std::make_unique<nn::Dense>(1, kDModel, rng);
  blocks_.clear();
  for (int i = 0; i < 2; ++i) {
    blocks_.push_back(
        std::make_unique<nn::TransformerBlock>(kDModel, kHeads, kFfDim, rng));
  }
  head_ = std::make_unique<nn::Dense>(kDModel, params().horizon, rng);
  positional_ = nn::SinusoidalPositionalEncoding(params().window, kDModel);
}

nn::Tensor TstForecaster::ForwardWindow(const nn::Tensor& input) const {
  const size_t w = input.size();
  nn::Tensor steps = nn::Reshape(input, {w, 1});
  nn::Tensor embedded = input_proj_->ForwardRows(steps);  // {w, d}
  embedded = nn::Add(embedded, positional_);
  for (const auto& block : blocks_) embedded = block->Forward(embedded);
  // Mean over time steps: transpose to {d, w}, average each row.
  nn::Tensor pooled = nn::MeanRows(nn::Transpose(embedded));  // {d}
  return head_->Forward(pooled);
}

std::vector<nn::Tensor> TstForecaster::ModelParameters() const {
  std::vector<nn::Tensor> params = input_proj_->Parameters();
  for (const auto& block : blocks_) {
    auto p = block->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  auto p = head_->Parameters();
  params.insert(params.end(), p.begin(), p.end());
  return params;
}

// ---- InceptionTimeForecaster -------------------------------------------------

void InceptionTimeForecaster::BuildModel(Rng& rng) {
  blocks_.clear();
  const size_t channels = 4 * kFilters;
  for (int i = 0; i < 2; ++i) {
    InceptionBlock block;
    const size_t c_in = i == 0 ? 1 : channels;
    size_t branch_in = c_in;
    if (i > 0) {
      // Bottleneck keeps the parameter count down (as in InceptionTime).
      block.bottleneck = std::make_unique<nn::Conv1d>(c_in, kFilters, 1, rng);
      branch_in = kFilters;
    }
    block.conv_small = std::make_unique<nn::Conv1d>(branch_in, kFilters, 9, rng);
    block.conv_mid = std::make_unique<nn::Conv1d>(branch_in, kFilters, 19, rng);
    block.conv_large = std::make_unique<nn::Conv1d>(branch_in, kFilters, 39, rng);
    block.pool_proj = std::make_unique<nn::Conv1d>(c_in, kFilters, 1, rng);
    blocks_.push_back(std::move(block));
  }
  head_ = std::make_unique<nn::Dense>(channels, params().horizon, rng);
}

nn::Tensor InceptionTimeForecaster::ForwardBlock(const InceptionBlock& block,
                                                 const nn::Tensor& x) const {
  nn::Tensor branch_in = x;
  if (block.bottleneck) branch_in = block.bottleneck->Forward(x);
  nn::Tensor small = block.conv_small->Forward(branch_in);
  nn::Tensor mid = block.conv_mid->Forward(branch_in);
  nn::Tensor large = block.conv_large->Forward(branch_in);
  nn::Tensor pooled = block.pool_proj->Forward(nn::MaxPool1dSame(x, 3));
  nn::Tensor merged = nn::ConcatRows(nn::ConcatRows(small, mid),
                                     nn::ConcatRows(large, pooled));
  return nn::Relu(merged);
}

nn::Tensor InceptionTimeForecaster::ForwardWindow(
    const nn::Tensor& input) const {
  nn::Tensor x = nn::Reshape(input, {1, input.size()});
  for (const auto& block : blocks_) x = ForwardBlock(block, x);
  nn::Tensor pooled = nn::MeanRows(x);  // global average pooling -> {channels}
  return head_->Forward(pooled);
}

std::vector<nn::Tensor> InceptionTimeForecaster::ModelParameters() const {
  std::vector<nn::Tensor> params;
  auto absorb = [&params](const nn::Conv1d* conv) {
    if (conv == nullptr) return;
    auto p = conv->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  };
  for (const auto& block : blocks_) {
    absorb(block.bottleneck.get());
    absorb(block.conv_small.get());
    absorb(block.conv_mid.get());
    absorb(block.conv_large.get());
    absorb(block.pool_proj.get());
  }
  auto p = head_->Parameters();
  params.insert(params.end(), p.begin(), p.end());
  return params;
}

// ---- SsaPlusForecaster -------------------------------------------------------

std::vector<double> SsaPlusForecaster::Features(double ssa_pred_scaled,
                                                double time_of_day_fraction,
                                                double time_of_hour_fraction,
                                                double recent_level_scaled,
                                                double step_fraction) {
  return {ssa_pred_scaled,
          std::sin(2 * M_PI * time_of_day_fraction),
          std::cos(2 * M_PI * time_of_day_fraction),
          std::sin(2 * M_PI * time_of_hour_fraction),
          std::cos(2 * M_PI * time_of_hour_fraction),
          recent_level_scaled,
          step_fraction};
}

size_t SsaPlusForecaster::corrector_parameter_count() const {
  size_t count = 0;
  for (const nn::Dense* d : {corrector1_.get(), corrector2_.get()}) {
    if (d == nullptr) continue;
    for (const nn::Tensor& p : d->Parameters()) count += p.size();
  }
  return count;
}

Status SsaPlusForecaster::Refit(const TimeSeries& history) {
  refitting_ = true;
  Status status = Fit(history);
  refitting_ = false;
  return status;
}

Status SsaPlusForecaster::Fit(const TimeSeries& history) {
  IPOOL_RETURN_NOT_OK(params_.Validate());
  const size_t n = history.size();
  if (n < 64) {
    return Status::InvalidArgument(
        StrFormat("SSA+ needs at least 64 points, got %zu", n));
  }
  scale_ = std::max(1.0, history.Max());
  interval_seconds_ = history.interval();
  history_end_time_ =
      history.start() + history.interval() * static_cast<double>(n);

  // Collect (ssa prediction, truth, time-of-day) triples by fitting SSA on
  // growing prefixes and forecasting the next chunk — the residuals teach
  // the corrector the systematic over/undershoot of SSA on this workload.
  // Anchor-prefix fits are throwaway probes over varying geometries: they
  // run cold and never touch the cross-tick warm state (which the final
  // full-history fit below owns).
  SsaForecaster::Options ssa_options;
  ssa_options.window = params_.window;
  ssa_options.max_rank = params_.ssa_rank;
  ssa_options.seed = params_.seed;
  ssa_options.exec = params_.exec;

  struct Sample {
    std::vector<double> features;
    double ssa_pred_scaled;
    double truth_scaled;
  };
  std::vector<Sample> samples;
  constexpr size_t kAnchors = 8;
  const size_t first_anchor = std::max<size_t>(n / 2, 32);
  const size_t chunk = std::min(params_.horizon, n / 10 + 1);
  for (size_t a = 0; a < kAnchors; ++a) {
    const size_t anchor =
        first_anchor + a * std::max<size_t>(1, (n - first_anchor - chunk) /
                                                   std::max<size_t>(1, kAnchors - 1));
    if (anchor + 1 >= n) break;
    SsaForecaster ssa(ssa_options);
    Status fit = ssa.Fit(history.Slice(0, anchor));
    if (!fit.ok()) continue;
    const size_t steps = std::min(chunk, n - anchor);
    auto forecast = ssa.Forecast(steps);
    if (!forecast.ok()) continue;
    // Demand level over the window preceding the anchor, known at forecast
    // time.
    const size_t lookback = std::min<size_t>(anchor, 20);
    double recent = 0.0;
    for (size_t b = anchor - lookback; b < anchor; ++b) {
      recent += history.value(b);
    }
    recent /= static_cast<double>(std::max<size_t>(1, lookback)) * scale_;
    for (size_t i = 0; i < steps; ++i) {
      const double t = history.TimeAt(anchor + i);
      const double tod = std::fmod(t, kSecondsPerDay) / kSecondsPerDay;
      const double toh = std::fmod(t, 3600.0) / 3600.0;
      Sample s;
      s.ssa_pred_scaled = (*forecast)[i] / scale_;
      s.truth_scaled = history.value(anchor + i) / scale_;
      s.features = Features(s.ssa_pred_scaled, tod, toh, recent,
                            static_cast<double>(i) /
                                static_cast<double>(std::max<size_t>(1, steps)));
      samples.push_back(std::move(s));
    }
  }
  if (samples.empty()) {
    return Status::Internal("SSA+ could not assemble corrector samples");
  }

  // Shallow corrector: 7 features -> 4 hidden -> 1 correction (37 params).
  // The trailing 25% of samples are held out to validate that the learned
  // correction actually helps; if it does not, the correction is disabled
  // and SSA+ degrades gracefully to plain SSA (a §7.5-style guardrail).
  Rng rng(params_.seed);
  corrector1_ = std::make_unique<nn::Dense>(kFeatureCount, 4, rng);
  corrector2_ = std::make_unique<nn::Dense>(4, 1, rng);
  std::vector<nn::Tensor> parameters =
      nn::CollectParameters({corrector1_.get(), corrector2_.get()});
  nn::Adam adam(parameters, 0.03);

  const size_t num_train = std::max<size_t>(1, samples.size() * 3 / 4);
  const size_t corrector_epochs = std::max<size_t>(params_.epochs * 5, 60);
  for (size_t epoch = 0; epoch < corrector_epochs; ++epoch) {
    adam.ZeroGrad();
    for (size_t i = 0; i < num_train; ++i) {
      const Sample& s = samples[i];
      nn::Tensor features = nn::Tensor::FromVector(s.features);
      nn::Tensor delta =
          corrector2_->Forward(nn::Relu(corrector1_->Forward(features)));
      nn::Tensor corrected = nn::AddScalar(delta, s.ssa_pred_scaled);
      nn::Tensor target = nn::Tensor::FromVector({s.truth_scaled});
      nn::Tensor loss =
          nn::AsymmetricLoss(corrected, target, params_.alpha_prime);
      IPOOL_RETURN_NOT_OK(loss.Backward());
    }
    const double inv = 1.0 / static_cast<double>(num_train);
    for (nn::Tensor& p : parameters) {
      for (double& g : p.mutable_grad()) g *= inv;
    }
    adam.Step();
  }

  // Validation gate over the held-out tail.
  double corrected_loss = 0.0;
  double raw_loss = 0.0;
  size_t num_val = 0;
  for (size_t i = num_train; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    nn::Tensor features = nn::Tensor::FromVector(s.features);
    nn::Tensor delta =
        corrector2_->Forward(nn::Relu(corrector1_->Forward(features)));
    const double corrected = s.ssa_pred_scaled + delta.scalar();
    auto pinball = [&](double pred) {
      const double diff = s.truth_scaled - pred;
      return diff > 0 ? params_.alpha_prime * diff
                      : -(1.0 - params_.alpha_prime) * diff;
    };
    corrected_loss += pinball(corrected);
    raw_loss += pinball(s.ssa_pred_scaled);
    ++num_val;
  }
  // Engage the correction only when it beats raw SSA by a clear margin on
  // held-out data; marginal corrections are noise and are dropped.
  use_corrector_ = num_val > 0 && corrected_loss <= 0.97 * raw_loss;

  // Final SSA over the full history for inference, plus the recent level
  // feature frozen at the end of the history. This fit carries the warm
  // state: a Refit of the hybrid reuses the previous tick's SSA training
  // state here (the corrector is tiny and always retrains from scratch).
  SsaForecaster::Options final_options = ssa_options;
  final_options.warm = params_.ssa_warm;
  final_options.obs = params_.obs;
  ssa_.emplace(final_options);
  IPOOL_RETURN_NOT_OK(refitting_ ? ssa_->Refit(history) : ssa_->Fit(history));
  const size_t lookback = std::min<size_t>(n, 20);
  recent_level_scaled_ = 0.0;
  for (size_t b = n - lookback; b < n; ++b) {
    recent_level_scaled_ += history.value(b);
  }
  recent_level_scaled_ /= static_cast<double>(lookback) * scale_;
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> SsaPlusForecaster::Forecast(size_t horizon) {
  if (!fitted_) return Status::FailedPrecondition("SSA+ not fitted");
  IPOOL_ASSIGN_OR_RETURN(std::vector<double> base, ssa_->Forecast(horizon));
  if (!use_corrector_) {
    return base;
  }
  std::vector<double> out(horizon);
  for (size_t i = 0; i < horizon; ++i) {
    const double t =
        history_end_time_ + interval_seconds_ * static_cast<double>(i);
    const double tod = std::fmod(t, kSecondsPerDay) / kSecondsPerDay;
    const double toh = std::fmod(t, 3600.0) / 3600.0;
    nn::Tensor features = nn::Tensor::FromVector(
        Features(base[i] / scale_, tod, toh, recent_level_scaled_,
                 static_cast<double>(i) /
                     static_cast<double>(std::max<size_t>(1, horizon))));
    nn::Tensor delta =
        corrector2_->Forward(nn::Relu(corrector1_->Forward(features)));
    out[i] = std::max(0.0, base[i] + delta.scalar() * scale_);
  }
  return out;
}

// ---- factory -----------------------------------------------------------------

std::string ModelKindToString(ModelKind kind) {
  switch (kind) {
    case ModelKind::kBaseline:
      return "Baseline";
    case ModelKind::kSsa:
      return "SSA";
    case ModelKind::kSsaPlus:
      return "SSA+";
    case ModelKind::kMwdn:
      return "mWDN";
    case ModelKind::kTst:
      return "TST";
    case ModelKind::kInceptionTime:
      return "IncpT";
  }
  return "Unknown";
}

Result<ModelKind> ModelKindFromString(const std::string& name) {
  for (ModelKind kind :
       {ModelKind::kBaseline, ModelKind::kSsa, ModelKind::kSsaPlus,
        ModelKind::kMwdn, ModelKind::kTst, ModelKind::kInceptionTime}) {
    if (name == ModelKindToString(kind)) return kind;
  }
  return Status::InvalidArgument("unknown model kind: " + name);
}

Result<std::unique_ptr<Forecaster>> CreateForecaster(
    ModelKind kind, const ForecastParams& params) {
  IPOOL_RETURN_NOT_OK(params.Validate());
  switch (kind) {
    case ModelKind::kBaseline:
      return std::unique_ptr<Forecaster>(
          new NoIntelligenceForecaster(params.gamma));
    case ModelKind::kSsa: {
      SsaForecaster::Options options;
      options.window = params.window;
      options.max_rank = params.ssa_rank;
      options.seed = params.seed;
      options.warm = params.ssa_warm;
      options.obs = params.obs;
      options.exec = params.exec;
      return std::unique_ptr<Forecaster>(new SsaForecaster(options));
    }
    case ModelKind::kSsaPlus:
      return std::unique_ptr<Forecaster>(new SsaPlusForecaster(params));
    case ModelKind::kMwdn:
      return std::unique_ptr<Forecaster>(new MwdnForecaster(params));
    case ModelKind::kTst:
      return std::unique_ptr<Forecaster>(new TstForecaster(params));
    case ModelKind::kInceptionTime:
      return std::unique_ptr<Forecaster>(new InceptionTimeForecaster(params));
  }
  return Status::InvalidArgument("unknown model kind");
}

}  // namespace ipool
