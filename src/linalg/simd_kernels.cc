#include "linalg/simd_kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define IPOOL_SIMD_X86 1
#include <immintrin.h>
#else
#define IPOOL_SIMD_X86 0
#endif

namespace ipool::simd {

namespace {

// Test/bench override; -1 means "use the resolved default". Relaxed atomics:
// ScopedForceIsa is documented single-threaded-setup-only, the atomic just
// keeps concurrent readers defined.
std::atomic<int> g_forced{-1};

bool CpuHasAvx2Fma() {
#if IPOOL_SIMD_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

IsaLevel ResolveDefault() {
  if (const char* env = std::getenv("IPOOL_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return IsaLevel::kScalar;
    // Any other value (including "avx2") falls through to CPU detection:
    // requesting an ISA the CPU lacks must not crash the process.
  }
  return CpuHasAvx2Fma() ? IsaLevel::kAvx2 : IsaLevel::kScalar;
}

// The Dot kernel's fixed semantics: eight lane accumulators striding the
// input (lane l owns elements k with k % 8 == l), reduced as
// ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)), then a sequential fused tail.
// Eight lanes = two AVX2 vectors, enough independent FMA chains to cover the
// ~4-cycle FMA latency on one port-rich core.
constexpr size_t kDotLanes = 8;

double DotScalar(const double* a, const double* b, size_t n) {
  double lane[kDotLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t k = 0;
  for (; k + kDotLanes <= n; k += kDotLanes) {
    for (size_t l = 0; l < kDotLanes; ++l) {
      lane[l] = std::fma(a[k + l], b[k + l], lane[l]);
    }
  }
  double acc = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
               ((lane[4] + lane[5]) + (lane[6] + lane[7]));
  for (; k < n; ++k) acc = std::fma(a[k], b[k], acc);
  return acc;
}

void MulAddScalar(double* dst, const double* src, double scale, size_t n) {
  for (size_t j = 0; j < n; ++j) dst[j] += scale * src[j];
}

// StridedRevDot's fixed semantics: four lane accumulators (one AVX2 vector —
// the gather port, not FMA latency, bounds this kernel, so one chain is
// enough), lane l owns t with t % 4 == l, reduced (l0+l1)+(l2+l3), then a
// sequential fused tail.
constexpr size_t kRevDotLanes = 4;

double StridedRevDotScalar(const double* a, size_t stride, const double* b,
                           size_t n) {
  double lane[kRevDotLanes] = {0, 0, 0, 0};
  size_t t = 0;
  for (; t + kRevDotLanes <= n; t += kRevDotLanes) {
    for (size_t l = 0; l < kRevDotLanes; ++l) {
      lane[l] = std::fma(a[(t + l) * stride],
                         b[-static_cast<ptrdiff_t>(t + l)], lane[l]);
    }
  }
  double acc = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; t < n; ++t) {
    acc = std::fma(a[t * stride], b[-static_cast<ptrdiff_t>(t)], acc);
  }
  return acc;
}

#if IPOOL_SIMD_X86

__attribute__((target("avx2,fma"))) double DotAvx2(const double* a,
                                                   const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + kDotLanes <= n; k += kDotLanes) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + k), _mm256_loadu_pd(b + k),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + k + 4),
                           _mm256_loadu_pd(b + k + 4), acc1);
  }
  // Reduce in the exact lane order the scalar reference uses.
  alignas(32) double lane[kDotLanes];
  _mm256_store_pd(lane, acc0);
  _mm256_store_pd(lane + 4, acc1);
  double acc = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
               ((lane[4] + lane[5]) + (lane[6] + lane[7]));
  for (; k < n; ++k) acc = std::fma(a[k], b[k], acc);
  return acc;
}

__attribute__((target("avx2,fma"))) void MulAddAvx2(double* dst,
                                                    const double* src,
                                                    double scale, size_t n) {
  // Deliberately mul-then-add, NOT vfmadd: each element must see exactly the
  // two roundings of the scalar loop so MulAdd stays bit-identical to the
  // historical plain-C++ inner loops.
  const __m256d vs = _mm256_set1_pd(scale);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256d p0 = _mm256_mul_pd(vs, _mm256_loadu_pd(src + j));
    const __m256d p1 = _mm256_mul_pd(vs, _mm256_loadu_pd(src + j + 4));
    _mm256_storeu_pd(dst + j, _mm256_add_pd(_mm256_loadu_pd(dst + j), p0));
    _mm256_storeu_pd(dst + j + 4,
                     _mm256_add_pd(_mm256_loadu_pd(dst + j + 4), p1));
  }
  for (; j + 4 <= n; j += 4) {
    const __m256d p = _mm256_mul_pd(vs, _mm256_loadu_pd(src + j));
    _mm256_storeu_pd(dst + j, _mm256_add_pd(_mm256_loadu_pd(dst + j), p));
  }
  for (; j < n; ++j) dst[j] += scale * src[j];
}

__attribute__((target("avx2,fma"))) double StridedRevDotAvx2(
    const double* a, size_t stride, const double* b, size_t n) {
  // Lane l of the gather reads a[(t+l)*stride]; the b vector is a contiguous
  // load of b[-t-3..-t] reversed by permute so lane l holds b[-(t+l)] —
  // exactly the scalar reference's lane ownership.
  const long long s = static_cast<long long>(stride);
  const __m256i idx = _mm256_set_epi64x(3 * s, 2 * s, s, 0);
  __m256d acc = _mm256_setzero_pd();
  size_t t = 0;
  for (; t + kRevDotLanes <= n; t += kRevDotLanes) {
    const __m256d va = _mm256_i64gather_pd(a + t * stride, idx, 8);
    const __m256d vb = _mm256_permute4x64_pd(
        _mm256_loadu_pd(b - static_cast<ptrdiff_t>(t) - 3), 0x1B);
    acc = _mm256_fmadd_pd(va, vb, acc);
  }
  alignas(32) double lane[kRevDotLanes];
  _mm256_store_pd(lane, acc);
  double out = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; t < n; ++t) {
    out = std::fma(a[t * stride], b[-static_cast<ptrdiff_t>(t)], out);
  }
  return out;
}

#endif  // IPOOL_SIMD_X86

}  // namespace

bool Avx2Available() { return CpuHasAvx2Fma(); }

IsaLevel ActiveIsa() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<IsaLevel>(forced);
  static const IsaLevel resolved = ResolveDefault();
  return resolved;
}

const char* IsaName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

ScopedForceIsa::ScopedForceIsa(IsaLevel level)
    : previous_(g_forced.load(std::memory_order_relaxed)) {
  if (level == IsaLevel::kAvx2 && !CpuHasAvx2Fma()) level = IsaLevel::kScalar;
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

ScopedForceIsa::~ScopedForceIsa() {
  g_forced.store(previous_, std::memory_order_relaxed);
}

double Dot(const double* a, const double* b, size_t n) {
#if IPOOL_SIMD_X86
  if (ActiveIsa() == IsaLevel::kAvx2) return DotAvx2(a, b, n);
#endif
  return DotScalar(a, b, n);
}

void MulAdd(double* dst, const double* src, double scale, size_t n) {
#if IPOOL_SIMD_X86
  if (ActiveIsa() == IsaLevel::kAvx2) {
    MulAddAvx2(dst, src, scale, n);
    return;
  }
#endif
  MulAddScalar(dst, src, scale, n);
}

double StridedRevDot(const double* a, size_t stride, const double* b,
                     size_t n) {
#if IPOOL_SIMD_X86
  if (ActiveIsa() == IsaLevel::kAvx2) {
    return StridedRevDotAvx2(a, stride, b, n);
  }
#endif
  return StridedRevDotScalar(a, stride, b, n);
}

}  // namespace ipool::simd
