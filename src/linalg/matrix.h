// Minimal dense linear algebra used by the SSA forecaster and the neural
// network layers. Row-major double storage; sizes here are small (hundreds),
// so clarity wins over blocking/vectorization tricks.
#ifndef IPOOL_LINALG_MATRIX_H_
#define IPOOL_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace ipool {

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from row-major initializer data; data.size() must equal
  /// rows * cols.
  static Result<Matrix> FromRowMajor(size_t rows, size_t cols,
                                     std::vector<double> data);

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Matrix Transpose() const;

  /// Returns column c as a vector.
  std::vector<double> Col(size_t c) const;
  /// Returns row r as a vector.
  std::vector<double> Row(size_t r) const;

  /// Frobenius norm.
  double Norm() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B; shapes must agree.
Result<Matrix> MatMul(const Matrix& a, const Matrix& b);

/// y = A * x; x.size() must equal A.cols().
Result<std::vector<double>> MatVec(const Matrix& a,
                                   const std::vector<double>& x);

/// Dot product; sizes must agree (asserted, hot path).
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm(const std::vector<double>& v);

/// Builds the L x K Hankel (trajectory) matrix of a series:
/// H(i, j) = series[i + j], with L + K - 1 == series.size().
Result<Matrix> HankelMatrix(const std::vector<double>& series, size_t window);

/// Gram matrix G = H H^T (window x window) of the Hankel trajectory matrix,
/// built WITHOUT materializing H: G(i, j) = sum_t series[i+t] * series[j+t]
/// over t in [0, K), K = series.size() - window + 1. The first row costs
/// O(window * K); every remaining entry follows the sliding identity
///   G(i+1, j+1) = G(i, j) - series[i]*series[j]
///                         + series[i+K]*series[j+K]
/// in O(1), so the whole build is O(window * K + window^2) instead of the
/// O(window^2 * K) of an explicit Gram product — the SSA training fast
/// path's first win.
Result<Matrix> HankelGram(const std::vector<double>& series, size_t window);

/// In-place update of `gram` (previously HankelGram(combined[0..n), window)
/// with n = combined.size() - shift) to HankelGram(combined[shift..), window)
/// — the Gram of the control-loop window slid forward by `shift` bins. Each
/// entry gains the `shift` newly-entered lag products and loses the `shift`
/// departed ones, so the update is O(window^2 * shift): cheaper than a
/// rebuild whenever shift * window < K. Exact up to floating-point
/// accumulation order (callers refresh periodically to bound drift).
Status SlideHankelGram(Matrix& gram, const std::vector<double>& combined,
                       size_t window, size_t shift);

}  // namespace ipool

#endif  // IPOOL_LINALG_MATRIX_H_
