#include "linalg/subspace.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/rng.h"
#include "linalg/eigen.h"

namespace ipool {

namespace {

// Deterministic per-(column, attempt) seed stream, SplitMix-mixed so nearby
// indices decorrelate.
uint64_t MixSeed(uint64_t base, uint64_t column, uint64_t attempt) {
  SplitMix64 mix(base ^ (0x9E3779B97F4A7C15ull * (column + 1)) ^
                 (0xBF58476D1CE4E5B9ull * attempt));
  mix.Next();
  return mix.Next();
}

void SeedColumn(Matrix& q, size_t c, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < q.rows(); ++i) q(i, c) = rng.Uniform(-1.0, 1.0);
}

// Modified Gram–Schmidt with a second projection pass (re-orthogonalization
// keeps the basis orthonormal even when the power step squeezes columns
// toward the dominant direction). Columns that collapse to numerical
// dependence — the block is wider than the matrix rank, or a warm start
// duplicated a direction — are re-seeded deterministically and re-projected,
// so the returned basis always has full column rank.
void Orthonormalize(Matrix& q, uint64_t seed) {
  const size_t n = q.rows();
  const size_t cols = q.cols();
  for (size_t c = 0; c < cols; ++c) {
    for (size_t attempt = 0;; ++attempt) {
      double before2 = 0.0;
      for (size_t i = 0; i < n; ++i) before2 += q(i, c) * q(i, c);
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t p = 0; p < c; ++p) {
          double dot = 0.0;
          for (size_t i = 0; i < n; ++i) dot += q(i, p) * q(i, c);
          for (size_t i = 0; i < n; ++i) q(i, c) -= dot * q(i, p);
        }
      }
      double after2 = 0.0;
      for (size_t i = 0; i < n; ++i) after2 += q(i, c) * q(i, c);
      const double norm = std::sqrt(after2);
      // Dependence test relative to the pre-projection magnitude (power
      // iterates can be uniformly huge or tiny without being dependent).
      if (norm > 1e-300 && norm * norm > 1e-24 * std::max(before2, 1e-300)) {
        const double inv = 1.0 / norm;
        for (size_t i = 0; i < n; ++i) q(i, c) *= inv;
        break;
      }
      SeedColumn(q, c, MixSeed(seed, c, attempt + 1));
    }
  }
}

}  // namespace

Result<SubspaceEigenResult> SubspaceTopEigen(const Matrix& a, size_t want,
                                             const SubspaceOptions& options) {
  if (a.empty() || a.rows() != a.cols()) {
    return Status::InvalidArgument(
        "SubspaceTopEigen requires a non-empty square matrix");
  }
  if (want == 0) {
    return Status::InvalidArgument("SubspaceTopEigen requires want >= 1");
  }
  const size_t n = a.rows();
  const size_t block = std::min(n, want + options.oversample);
  want = std::min(want, block);

  SubspaceEigenResult out;
  if (block >= n) {
    // The block spans the whole space: Rayleigh–Ritz would just be the
    // dense eigensolve with extra steps. Delegate.
    IPOOL_ASSIGN_OR_RETURN(EigenDecomposition eig, SymmetricEigen(a));
    out.values = std::move(eig.values);
    out.vectors = std::move(eig.vectors);
    out.converged = true;
    out.converged_columns = n;
    out.used_dense_fallback = true;
    return out;
  }

  // Exact total spectral mass; with `converge_energy` < 1 only the leading
  // Ritz pairs covering that fraction of it must pass the residual test.
  double trace = 0.0;
  for (size_t i = 0; i < n; ++i) trace += a(i, i);

  Matrix q(n, block);
  size_t copied = 0;
  if (options.warm_start != nullptr && options.warm_start->rows() == n) {
    copied = std::min(block, options.warm_start->cols());
    for (size_t c = 0; c < copied; ++c) {
      for (size_t i = 0; i < n; ++i) q(i, c) = (*options.warm_start)(i, c);
    }
  }
  for (size_t c = copied; c < block; ++c) {
    SeedColumn(q, c, MixSeed(options.seed, c, 0));
  }
  Orthonormalize(q, MixSeed(options.seed, 0, 0));

  // Stall tracking (energy-gated callers only): the residual of the last
  // gated column must keep shrinking by 10% every 8 iterations, or the
  // matrix is in a regime the iteration cannot crack within any sane cap
  // (contraction > 0.987 needs 500+ iterations for 1e-10) and the caller's
  // dense fallback is cheaper than burning the rest of max_iters.
  double stall_best = std::numeric_limits<double>::infinity();
  size_t stall_iter = 0;

  for (size_t iter = 1; iter <= options.max_iters; ++iter) {
    // One block power application; MatMul is the PR-2 blocked kernel, so an
    // ambient exec pool parallelizes the O(n^2 * r) product bit-identically.
    IPOOL_ASSIGN_OR_RETURN(Matrix z, MatMul(a, q));
    // Rayleigh–Ritz: H = Q^T A Q, symmetrized against accumulation noise.
    IPOOL_ASSIGN_OR_RETURN(Matrix h, MatMul(q.Transpose(), z));
    for (size_t i = 0; i < block; ++i) {
      for (size_t j = i + 1; j < block; ++j) {
        const double s = 0.5 * (h(i, j) + h(j, i));
        h(i, j) = s;
        h(j, i) = s;
      }
    }
    IPOOL_ASSIGN_OR_RETURN(EigenDecomposition ritz, SymmetricEigen(h));
    IPOOL_ASSIGN_OR_RETURN(Matrix v, MatMul(q, ritz.vectors));    // Ritz basis
    IPOOL_ASSIGN_OR_RETURN(Matrix av, MatMul(z, ritz.vectors));   // A * basis
    // Columns whose residuals gate convergence: all wanted ones, or just the
    // leading set capturing `converge_energy` of the trace. Noise-floor
    // pairs past an energy cutoff contract at ~lambda_tail/lambda ~ 1 per
    // iteration, so demanding `tol` of them would burn hundreds of sweeps
    // polishing directions the caller's rank selection discards anyway.
    size_t checked = want;
    if (options.converge_energy < 1.0) {
      if (trace > 0.0) {
        const double target = options.converge_energy * trace;
        double captured = 0.0;
        checked = 0;
        while (checked < want && captured < target) {
          captured += std::max(ritz.values[checked], 0.0);
          ++checked;
        }
      }
      // Columns not standing clear of the block's tail eigenvalue contract
      // at lambda_tail/lambda_c per iteration — when the caller's energy
      // target reaches into such a noise plateau (rank capped mid-cluster),
      // individual vectors there are ill-determined no matter the solver,
      // so only the well-separated head gates convergence. The 2x clearance
      // guarantees contraction <= 1/2 for every gated column.
      const double tail = std::max(ritz.values[block - 1], 0.0);
      while (checked > 1 && ritz.values[checked - 1] < 2.0 * tail) --checked;
      checked = std::max<size_t>(checked, 1);
    }
    double worst = 0.0;
    for (size_t c = 0; c < checked; ++c) {
      double res2 = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double r = av(i, c) - ritz.values[c] * v(i, c);
        res2 += r * r;
      }
      worst = std::max(worst, std::sqrt(res2));
    }
    out.iterations = iter;
    out.values = std::move(ritz.values);
    out.vectors = std::move(v);
    const double scale = std::max(std::fabs(out.values[0]), 1.0);
    if (worst <= options.tol * scale) {
      out.converged = true;
      out.converged_columns = checked;
      return out;
    }
    if (options.converge_energy < 1.0) {
      if (worst < 0.9 * stall_best) {
        stall_best = worst;
        stall_iter = iter;
      } else if (iter - stall_iter >= 8) {
        break;
      }
    }
    // Next basis: the power-stepped Ritz block, re-orthonormalized.
    q = std::move(av);
    Orthonormalize(q, MixSeed(options.seed, 1000 + iter, 0));
  }
  out.converged = false;  // stalled: caller should fall back to Jacobi
  return out;
}

}  // namespace ipool
