// Warm-startable top-r symmetric eigensolver: seeded block power iteration
// with Rayleigh–Ritz projection. Extracts only the leading eigenpairs of a
// symmetric (positive semi-definite in the SSA use) matrix in O(n^2 * r) per
// iteration — replacing the full O(n^3)-per-sweep Jacobi solve on the SSA
// training hot path, where only `max_rank` components are ever kept. The
// iteration is deterministic given the seed, reports convergence against a
// residual tolerance, and accepts the previous tick's basis as a starting
// block so control-loop refits converge in a handful of iterations.
#ifndef IPOOL_LINALG_SUBSPACE_H_
#define IPOOL_LINALG_SUBSPACE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace ipool {

struct SubspaceOptions {
  /// Extra iterated directions beyond `want`: the oversampled block absorbs
  /// spectrum leakage so the wanted leading pairs converge faster. The
  /// whole block is returned (callers feed it back as the next warm start).
  size_t oversample = 4;
  /// Iteration cap before giving up (callers fall back to the dense solve).
  size_t max_iters = 96;
  /// Converged when every wanted Ritz pair satisfies
  /// ||A v - lambda v|| <= tol * max(|lambda_0|, 1).
  double tol = 1e-10;
  /// Fraction of the total spectral mass (the trace of `a`, exact and free
  /// to compute) that the residual-converged leading Ritz values must
  /// capture. 1.0 (default) requires every wanted pair to meet `tol`. Any
  /// smaller value opts into noise-floor relaxation for callers — SSA rank
  /// selection — that keep components only up to an energy threshold: pairs
  /// beyond the energy target, and pairs not standing 2x clear of the
  /// block's tail eigenvalue (a cluster the iteration cannot split and no
  /// consumer should depend on), are returned best-effort once the
  /// energetic, well-separated head is tight. Also enables early stall
  /// detection: hopeless contraction bails to the caller's dense fallback
  /// instead of burning the whole iteration cap. Meaningful for PSD
  /// matrices.
  double converge_energy = 1.0;
  /// Seeds the random start block (and deterministic re-seeds on rank
  /// collapse). Fixed default keeps un-configured callers reproducible.
  uint64_t seed = 0x55AAC0FFEEull;
  /// Optional warm start: columns of an n x r0 block from a previous solve
  /// of a nearby matrix. Missing columns (r0 < block width) are filled with
  /// seeded random directions; extra columns are ignored.
  const Matrix* warm_start = nullptr;
};

struct SubspaceEigenResult {
  /// Descending Ritz values, `want + oversample` of them (clamped to n).
  std::vector<double> values;
  /// Column i of `vectors` is the orthonormal Ritz vector for values[i].
  Matrix vectors;
  /// Block power iterations performed (0 when the dense fallback ran).
  size_t iterations = 0;
  /// Leading Ritz pairs that actually passed the residual test on the
  /// converging iteration: `want` unless the `converge_energy` relaxation
  /// accepted a noise-floor tail best-effort, `n` on the dense fallback, 0
  /// when unconverged. Callers that keep components must not keep more than
  /// this many — the tail past it is reproducible but not resolved.
  size_t converged_columns = 0;
  /// True when the wanted leading pairs met the residual tolerance. False
  /// means the iteration stalled; callers should treat `values`/`vectors`
  /// as a best effort and fall back to SymmetricEigen.
  bool converged = false;
  /// True when the block width reached n and the solve was delegated to the
  /// dense Jacobi path (tiny matrices).
  bool used_dense_fallback = false;
};

/// Leading `want` eigenpairs (plus oversample) of symmetric `a` via block
/// power iteration with Rayleigh–Ritz extraction. Matrix products route
/// through the blocked MatMul, so an ambient exec pool accelerates the
/// iteration with bit-identical results. When the oversampled block would
/// cover the whole spectrum (want + oversample >= n) the dense Jacobi solve
/// runs instead and `used_dense_fallback` is set.
Result<SubspaceEigenResult> SubspaceTopEigen(const Matrix& a, size_t want,
                                             const SubspaceOptions& options = {});

}  // namespace ipool

#endif  // IPOOL_LINALG_SUBSPACE_H_
