// Vectorized microkernels under the blocked MatMul, the nn forward/backward
// GEMM paths and the SSA Gram/reconstruction hot loops. Three primitives
// cover every inner loop in the codebase:
//
//   Dot(a, b, n)          -> sum_k a[k] * b[k]       (reduction)
//   MulAdd(dst, src, s, n) : dst[j] += s * src[j]    (axpy)
//   StridedRevDot(a, stride, b, n)
//                         -> sum_t a[t*stride] * b[-t]
//     (the SSA diagonal-averaging shape: a column of a row-major matrix
//      against a row walked backwards)
//
// Dispatch contract (see DESIGN.md "SIMD kernels & runtime dispatch"):
//  * The instruction set is resolved ONCE per process (AVX2+FMA when the CPU
//    reports both, scalar otherwise; IPOOL_SIMD=scalar forces the fallback).
//    Every caller in a process therefore runs the same kernel, which keeps
//    the serial-vs-parallel determinism contract intact: thread count never
//    changes which code computes an element.
//  * Each kernel's scalar fallback is BIT-IDENTICAL to its vector path. For
//    MulAdd that is free: the vector body performs exactly one IEEE multiply
//    and one IEEE add per element, the same as the scalar loop (no FMA
//    contraction), so MulAdd also reproduces the historical plain-loop
//    results bit for bit. For Dot the accumulation order is part of the
//    kernel's definition: eight lane accumulators striding the input, a fixed
//    ((l0+l1)+(l2+l3))+((l4+l5)+(l6+l7)) reduction, then the scalar tail — with fused
//    multiply-adds throughout (std::fma on the scalar path, vfmadd on the
//    vector path; both are correctly-rounded fused ops, so the paths agree
//    exactly). Dot's results differ from a naive sequential loop by normal
//    reassociation error; callers that need the historical order must not
//    use it.
//  * ScopedForceIsa pins the dispatch for tests and micro-benchmarks that
//    compare the paths. It is process-global and not thread-safe; use it
//    only from single-threaded setup code.
#ifndef IPOOL_LINALG_SIMD_KERNELS_H_
#define IPOOL_LINALG_SIMD_KERNELS_H_

#include <cstddef>

namespace ipool::simd {

enum class IsaLevel {
  kScalar,  // portable C++, bit-identical reference
  kAvx2,    // AVX2 + FMA (x86-64)
};

/// The instruction set the kernels below are currently dispatching to.
/// Resolved from CPUID and IPOOL_SIMD on first use, then fixed for the
/// process unless a ScopedForceIsa overrides it.
IsaLevel ActiveIsa();

/// "scalar" or "avx2" — for bench labels and log lines.
const char* IsaName(IsaLevel level);

/// True when this build/CPU can execute the kAvx2 kernels.
bool Avx2Available();

/// sum_k a[k] * b[k] under the lane-blocked fused-multiply-add semantics
/// described above. Identical results on every IsaLevel.
double Dot(const double* a, const double* b, size_t n);

/// dst[j] += scale * src[j] for j in [0, n). One IEEE multiply + one IEEE
/// add per element (never fused), so results are bit-identical to the plain
/// scalar loop on every IsaLevel.
void MulAdd(double* dst, const double* src, double scale, size_t n);

/// sum_t a[t*stride] * b[-t] for t in [0, n) — the SSA diagonal-averaging
/// inner loop (strided column of the eigvec matrix against a reversed slice
/// of a W row). Fixed semantics on every IsaLevel: four lane accumulators
/// (lane l owns t with t % 4 == l), fused multiply-adds, a
/// (l0+l1)+(l2+l3) reduction, then a sequential fused tail — the scalar
/// path mirrors the AVX2 gather/permute path bit for bit. Like Dot, results
/// differ from a naive sequential loop by normal reassociation error.
/// `b` points at the t = 0 element; the kernel reads b[-(n-1)] .. b[0].
double StridedRevDot(const double* a, size_t stride, const double* b,
                     size_t n);

/// Pins ActiveIsa() to `level` for this object's lifetime (restores the
/// previous pin on destruction). Forcing kAvx2 on a CPU without AVX2 is
/// ignored (the dispatch stays scalar). Process-global; single-threaded
/// setup code only.
class ScopedForceIsa {
 public:
  explicit ScopedForceIsa(IsaLevel level);
  ~ScopedForceIsa();
  ScopedForceIsa(const ScopedForceIsa&) = delete;
  ScopedForceIsa& operator=(const ScopedForceIsa&) = delete;

 private:
  int previous_;
};

}  // namespace ipool::simd

#endif  // IPOOL_LINALG_SIMD_KERNELS_H_
