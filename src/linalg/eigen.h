// Symmetric eigendecomposition (cyclic Jacobi) and derived factorizations:
// thin SVD via the Gram matrix (the route SSA needs) and a ridge-regularized
// least-squares solver used by the SSA linear recurrence fit.
#ifndef IPOOL_LINALG_EIGEN_H_
#define IPOOL_LINALG_EIGEN_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace ipool {

struct EigenDecomposition {
  /// Descending eigenvalues.
  std::vector<double> values;
  /// Column i of `vectors` is the unit eigenvector for values[i].
  Matrix vectors;
};

/// Eigendecomposition of a symmetric matrix via the cyclic Jacobi method.
/// Returns InvalidArgument for non-square input; symmetry is assumed (only
/// the upper triangle is read in the rotations' bookkeeping sense).
Result<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                          size_t max_sweeps = 64,
                                          double tol = 1e-12);

struct Svd {
  /// Descending non-negative singular values (rank many).
  std::vector<double> singular_values;
  /// m x r left singular vectors (columns).
  Matrix u;
  /// n x r right singular vectors (columns).
  Matrix v;
};

/// Thin SVD of an m x n matrix computed from the eigendecomposition of the
/// smaller Gram matrix. Singular values below `rank_tol * max_sv` are
/// truncated. Accurate enough for SSA's low-rank reconstruction use.
Result<Svd> ThinSvd(const Matrix& a, double rank_tol = 1e-10);

/// Solves min_x ||A x - b||^2 + ridge * ||x||^2 via normal equations and
/// Cholesky. `ridge` > 0 keeps the system well-posed when A is rank
/// deficient (as SSA's recurrence fit can be on constant segments).
Result<std::vector<double>> RidgeLeastSquares(const Matrix& a,
                                              const std::vector<double>& b,
                                              double ridge = 1e-8);

/// Cholesky solve of a symmetric positive-definite system A x = b.
Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b);

}  // namespace ipool

#endif  // IPOOL_LINALG_EIGEN_H_
