#include "linalg/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.h"
#include "exec/thread_pool.h"
#include "linalg/simd_kernels.h"

namespace ipool {

Result<Matrix> Matrix::FromRowMajor(size_t rows, size_t cols,
                                    std::vector<double> data) {
  if (data.size() != rows * cols) {
    return Status::InvalidArgument(
        StrFormat("data size %zu != %zu x %zu", data.size(), rows, cols));
  }
  Matrix m(rows, cols);
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

std::vector<double> Matrix::Col(size_t c) const {
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

std::vector<double> Matrix::Row(size_t r) const {
  return std::vector<double>(data_.begin() + static_cast<ptrdiff_t>(r * cols_),
                             data_.begin() + static_cast<ptrdiff_t>((r + 1) * cols_));
}

double Matrix::Norm() const {
  double total = 0.0;
  for (double v : data_) total += v * v;
  return std::sqrt(total);
}

Result<Matrix> MatMul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument(
        StrFormat("matmul shape mismatch: (%zux%zu) x (%zux%zu)", a.rows(),
                  a.cols(), b.rows(), b.cols()));
  }
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop contiguous in both B and C. Row
  // blocks of C are independent, so the outer loop fans out over the ambient
  // pool (exec::Current(), serial by default); each task owns its rows and
  // the per-element accumulation order is fixed, keeping results
  // bit-identical to the serial loop at any thread count.
  const size_t flops_per_row = a.cols() * b.cols();
  exec::ParallelFor(
      exec::Current(), 0, a.rows(),
      [&](size_t lo, size_t hi) {
        const double* bdata = b.data().data();
        for (size_t i = lo; i < hi; ++i) {
          double* crow = c.data().data() + i * b.cols();
          for (size_t k = 0; k < a.cols(); ++k) {
            const double aik = a(i, k);
            if (aik == 0.0) continue;
            // axpy microkernel: one multiply + one add per element, so the
            // vector path stays bit-identical to this loop's history.
            simd::MulAdd(crow, bdata + k * b.cols(), aik, b.cols());
          }
        }
      },
      {exec::Chunking::kDynamic,
       std::max<size_t>(1, (16 * 1024) / std::max<size_t>(1, flops_per_row))});
  return c;
}

Result<std::vector<double>> MatVec(const Matrix& a,
                                   const std::vector<double>& x) {
  if (a.cols() != x.size()) {
    return Status::InvalidArgument(
        StrFormat("matvec shape mismatch: (%zux%zu) x %zu", a.rows(), a.cols(),
                  x.size()));
  }
  std::vector<double> y(a.rows(), 0.0);
  const double* adata = a.data().data();
  for (size_t i = 0; i < a.rows(); ++i) {
    y[i] = simd::Dot(adata + i * a.cols(), x.data(), a.cols());
  }
  return y;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  return simd::Dot(a.data(), b.data(), a.size());
}

double Norm(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

Result<Matrix> HankelMatrix(const std::vector<double>& series, size_t window) {
  if (window == 0 || window > series.size()) {
    return Status::InvalidArgument(
        StrFormat("window %zu invalid for series of length %zu", window,
                  series.size()));
  }
  const size_t k = series.size() - window + 1;
  Matrix h(window, k);
  for (size_t i = 0; i < window; ++i) {
    for (size_t j = 0; j < k; ++j) {
      h(i, j) = series[i + j];
    }
  }
  return h;
}

Result<Matrix> HankelGram(const std::vector<double>& series, size_t window) {
  if (window == 0 || window > series.size()) {
    return Status::InvalidArgument(
        StrFormat("window %zu invalid for series of length %zu", window,
                  series.size()));
  }
  const size_t k = series.size() - window + 1;
  Matrix g(window, window);
  // First row: window dot products of length K against the leading lag.
  for (size_t j = 0; j < window; ++j) {
    const double acc = simd::Dot(series.data(), series.data() + j, k);
    g(0, j) = acc;
    g(j, 0) = acc;
  }
  // Slide each super-diagonal down-right from its first-row seed; mirror
  // into the lower triangle.
  for (size_t j = 0; j < window; ++j) {
    for (size_t i = 1; i + j < window; ++i) {
      const double v = g(i - 1, i - 1 + j) - series[i - 1] * series[i - 1 + j] +
                       series[i - 1 + k] * series[i - 1 + j + k];
      g(i, i + j) = v;
      g(i + j, i) = v;
    }
  }
  return g;
}

Status SlideHankelGram(Matrix& gram, const std::vector<double>& combined,
                       size_t window, size_t shift) {
  if (gram.rows() != window || gram.cols() != window) {
    return Status::InvalidArgument("gram shape does not match window");
  }
  if (combined.size() < shift || combined.size() - shift < window) {
    return Status::InvalidArgument(
        StrFormat("combined series of length %zu too short for window %zu "
                  "and shift %zu",
                  combined.size(), window, shift));
  }
  if (shift == 0) return Status::OK();
  const size_t n = combined.size() - shift;  // old window length
  const size_t k = n - window + 1;
  for (size_t i = 0; i < window; ++i) {
    for (size_t j = i; j < window; ++j) {
      double delta = 0.0;
      for (size_t t = 0; t < shift; ++t) {
        delta -= combined[i + t] * combined[j + t];
        delta += combined[i + k + t] * combined[j + k + t];
      }
      const double v = gram(i, j) + delta;
      gram(i, j) = v;
      gram(j, i) = v;
    }
  }
  return Status::OK();
}

}  // namespace ipool
