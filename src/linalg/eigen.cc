#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/strings.h"

namespace ipool {

Result<EigenDecomposition> SymmetricEigen(const Matrix& input,
                                          size_t max_sweeps, double tol) {
  if (input.rows() != input.cols()) {
    return Status::InvalidArgument(
        StrFormat("SymmetricEigen requires square matrix, got %zux%zu",
                  input.rows(), input.cols()));
  }
  const size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::Identity(n);

  auto exact_off2 = [&]() {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) s += a(i, j) * a(i, j);
    }
    return s;
  };

  const double scale = std::max(1.0, a.Norm());
  // Convergence when sqrt(2 * off2) <= tol * scale.
  const double off2_limit = 0.5 * (tol * scale) * (tol * scale);
  // Each Jacobi rotation zeroes a(p, q) and preserves the off-diagonal
  // Frobenius mass of every other entry, so the upper-triangle sum of
  // squares drops by exactly apq^2 per rotation. Maintaining it
  // incrementally replaces the O(n^2) per-sweep recomputation; an exact
  // refresh every few sweeps plus a verify-before-break bound FP drift in
  // both directions (premature and missed convergence).
  double off2 = exact_off2();
  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (sweep > 0 && sweep % 4 == 0) off2 = exact_off2();
    if (off2 <= off2_limit) {
      off2 = exact_off2();
      if (off2 <= off2_limit) break;
    }
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        off2 = std::max(0.0, off2 - apq * apq);
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Smaller-magnitude root for numerical stability.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return a(i, i) > a(j, j); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    out.values[i] = a(order[i], order[i]);
    for (size_t r = 0; r < n; ++r) out.vectors(r, i) = v(r, order[i]);
  }
  return out;
}

Result<Svd> ThinSvd(const Matrix& a, double rank_tol) {
  if (a.empty()) return Status::InvalidArgument("ThinSvd on empty matrix");
  const size_t m = a.rows();
  const size_t n = a.cols();
  // Work with the smaller Gram matrix: A^T A (n x n) or A A^T (m x m).
  const bool use_ata = n <= m;
  // The Gram product routes through the blocked MatMul so it picks up cache
  // blocking and the ambient exec pool. Both triangles accumulate identical
  // products in identical (k-ascending) order, so the result is exactly
  // symmetric — no symmetrization pass needed.
  const Matrix at = a.Transpose();
  IPOOL_ASSIGN_OR_RETURN(Matrix gram, use_ata ? MatMul(at, a) : MatMul(a, at));

  IPOOL_ASSIGN_OR_RETURN(EigenDecomposition eig, SymmetricEigen(gram));

  const double max_ev = eig.values.empty() ? 0.0 : std::max(eig.values[0], 0.0);
  const double max_sv = std::sqrt(max_ev);
  const double cutoff = rank_tol * std::max(max_sv, 1e-300);

  size_t rank = 0;
  for (double ev : eig.values) {
    if (ev > 0.0 && std::sqrt(ev) > cutoff) ++rank;
  }
  if (rank == 0) rank = 1;  // keep at least the dominant direction

  Svd out;
  out.singular_values.resize(rank);
  out.u = Matrix(m, rank);
  out.v = Matrix(n, rank);
  for (size_t i = 0; i < rank; ++i) {
    const double sv = std::sqrt(std::max(eig.values[i], 0.0));
    out.singular_values[i] = sv;
    if (use_ata) {
      // eigenvectors are right singular vectors; u_i = A v_i / sv.
      for (size_t r = 0; r < n; ++r) out.v(r, i) = eig.vectors(r, i);
      for (size_t r = 0; r < m; ++r) {
        double acc = 0.0;
        for (size_t k = 0; k < n; ++k) acc += a(r, k) * eig.vectors(k, i);
        out.u(r, i) = sv > 0.0 ? acc / sv : 0.0;
      }
    } else {
      // eigenvectors are left singular vectors; v_i = A^T u_i / sv.
      for (size_t r = 0; r < m; ++r) out.u(r, i) = eig.vectors(r, i);
      for (size_t r = 0; r < n; ++r) {
        double acc = 0.0;
        for (size_t k = 0; k < m; ++k) acc += a(k, r) * eig.vectors(k, i);
        out.v(r, i) = sv > 0.0 ? acc / sv : 0.0;
      }
    }
  }
  return out;
}

Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return Status::InvalidArgument("CholeskySolve shape mismatch");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double acc = a(i, j);
      for (size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      if (i == j) {
        if (acc <= 0.0) {
          return Status::FailedPrecondition(
              "matrix not positive definite in CholeskySolve");
        }
        l(i, i) = std::sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
  }
  // Forward then back substitution.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
    y[i] = acc / l(i, i);
  }
  std::vector<double> x(n);
  for (size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (size_t k = ii + 1; k < n; ++k) acc -= l(k, ii) * x[k];
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

Result<std::vector<double>> RidgeLeastSquares(const Matrix& a,
                                              const std::vector<double>& b,
                                              double ridge) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("RidgeLeastSquares shape mismatch");
  }
  const size_t n = a.cols();
  Matrix ata(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < a.rows(); ++k) acc += a(k, i) * a(k, j);
      ata(i, j) = acc;
      ata(j, i) = acc;
    }
    ata(i, i) += ridge;
  }
  std::vector<double> atb(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (size_t k = 0; k < a.rows(); ++k) acc += a(k, i) * b[k];
    atb[i] = acc;
  }
  return CholeskySolve(ata, atb);
}

}  // namespace ipool
