// The public facade of Intelligent Pooling: turns a historic cluster-request
// series into a pool-size recommendation for the next hour, combining the ML
// predictor (§5) with the SAA optimizer (§4) through either of the two
// end-to-end pipelines of §5.4:
//
//   * 2-step — forecast future demand, then run SAA on the forecast (the
//     pipeline the paper deploys: better Pareto curve at low wait times);
//   * E2E    — run SAA on history to get a historically-optimal pool-size
//     series, train the ML model on that series and forecast the pool size
//     directly.
//
// The §7.5 production-robustness strategies are included: max-filter
// smoothing of the demand before training (Eq 18), extended STABLENESS, and
// max-filter smoothing of the recommended pool size with SF = tau.
#ifndef IPOOL_CORE_RECOMMENDATION_ENGINE_H_
#define IPOOL_CORE_RECOMMENDATION_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "forecast/forecaster.h"
#include "obs/obs_context.h"
#include "solver/pool_model.h"
#include "solver/saa_optimizer.h"
#include "tsdata/time_series.h"

namespace ipool {

enum class PipelineKind {
  k2Step,
  kEndToEnd,
};

std::string PipelineKindToString(PipelineKind kind);

struct PipelineConfig {
  PipelineKind kind = PipelineKind::k2Step;
  ModelKind model = ModelKind::kSsaPlus;
  ForecastParams forecast;
  /// Pool structure + alpha' trade-off used by the SAA optimizer.
  SaaConfig saa;
  /// Recommendation length in bins (the production pipeline emits the next
  /// hour: 120 bins x 30 s).
  size_t recommendation_bins = 120;
  /// Eq 18 smoothing of the input demand before training (0 disables).
  size_t smoothing_factor_bins = 0;
  /// §7.5 strategy 3: max-filter the recommended pool sizes with SF = tau so
  /// spiky demand keeps the pool raised long enough.
  bool smooth_recommendation = false;
  /// Observability sink (optional). Create() propagates it into the nested
  /// forecast/SAA configs unless those were wired explicitly, so one
  /// assignment instruments the whole pipeline: "forecast" (fit/predict
  /// children) and "solve" spans plus per-model latency histograms.
  ObsContext obs;

  Status Validate() const;
};

struct Recommendation {
  /// Target pool size for each of the next `recommendation_bins` bins.
  std::vector<int64_t> pool_size_per_bin;
  /// The demand forecast the recommendation was derived from (empty for the
  /// E2E pipeline, which forecasts pool size directly).
  std::vector<double> predicted_demand;
  std::string model_name;
  PipelineKind pipeline = PipelineKind::k2Step;
};

class RecommendationEngine {
 public:
  static Result<RecommendationEngine> Create(const PipelineConfig& config);

  /// Runs the configured pipeline on the historic demand (per-bin request
  /// counts) and returns the pool-size recommendation for the bins
  /// immediately following the history.
  Result<Recommendation> Run(const TimeSeries& history) const;

  /// Same, threading per-pool warm training state across runs: the
  /// forecaster Refit()s from the previous tick's state (warm-started SSA
  /// training) and writes this tick's state back into `warm`. A null `warm`
  /// behaves exactly like Run(history). The engine itself stays stateless —
  /// it is shared across RunFleet's concurrent per-pool loops — so each
  /// caller owns its warm state.
  Result<Recommendation> Run(const TimeSeries& history,
                             ForecastWarmState* warm) const;

  const PipelineConfig& config() const { return config_; }

 private:
  explicit RecommendationEngine(const PipelineConfig& config)
      : config_(config) {}

  Result<Recommendation> RunTwoStep(const TimeSeries& history,
                                    ForecastWarmState* warm) const;
  Result<Recommendation> RunEndToEnd(const TimeSeries& history,
                                     ForecastWarmState* warm) const;

  PipelineConfig config_;
};

}  // namespace ipool

#endif  // IPOOL_CORE_RECOMMENDATION_ENGINE_H_
