#include "core/recommendation_engine.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tsdata/smoothing.h"

namespace ipool {

std::string PipelineKindToString(PipelineKind kind) {
  switch (kind) {
    case PipelineKind::k2Step:
      return "2-step";
    case PipelineKind::kEndToEnd:
      return "E2E";
  }
  return "Unknown";
}

Status PipelineConfig::Validate() const {
  IPOOL_RETURN_NOT_OK(forecast.Validate());
  IPOOL_RETURN_NOT_OK(saa.Validate());
  if (recommendation_bins == 0) {
    return Status::InvalidArgument("recommendation_bins must be >= 1");
  }
  return Status::OK();
}

Result<RecommendationEngine> RecommendationEngine::Create(
    const PipelineConfig& config) {
  IPOOL_RETURN_NOT_OK(config.Validate());
  PipelineConfig wired = config;
  wired.forecast.obs = wired.forecast.obs.OrElse(wired.obs);
  wired.saa.obs = wired.saa.obs.OrElse(wired.obs);
  return RecommendationEngine(wired);
}

namespace {

// §7.5 strategy 3: hold the pool up around spikes by max-filtering the
// recommended sizes over a tau-wide window.
obs::Histogram* ModelHistogram(const ObsContext& obs, const char* name,
                               const std::string& model) {
  return obs.metrics != nullptr
             ? obs.metrics->GetHistogram(name, {{"model", model}})
             : nullptr;
}

std::vector<int64_t> SmoothSchedule(const std::vector<int64_t>& schedule,
                                    size_t smoothing_bins, double interval) {
  if (smoothing_bins == 0) return schedule;
  std::vector<double> as_double(schedule.begin(), schedule.end());
  TimeSeries series(0.0, interval, std::move(as_double));
  TimeSeries filtered = MaxFilter(series, smoothing_bins);
  std::vector<int64_t> out(schedule.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<int64_t>(std::llround(filtered.value(i)));
  }
  return out;
}

}  // namespace

Result<Recommendation> RecommendationEngine::Run(
    const TimeSeries& history) const {
  return Run(history, nullptr);
}

Result<Recommendation> RecommendationEngine::Run(
    const TimeSeries& history, ForecastWarmState* warm) const {
  if (history.empty()) return Status::InvalidArgument("empty history");
  switch (config_.kind) {
    case PipelineKind::k2Step:
      return RunTwoStep(history, warm);
    case PipelineKind::kEndToEnd:
      return RunEndToEnd(history, warm);
  }
  return Status::InvalidArgument("unknown pipeline kind");
}

Result<Recommendation> RecommendationEngine::RunTwoStep(
    const TimeSeries& history, ForecastWarmState* warm) const {
  const TimeSeries training =
      config_.smoothing_factor_bins > 0
          ? MaxFilter(history, config_.smoothing_factor_bins)
          : history;

  ForecastParams fparams = config_.forecast;
  fparams.ssa_warm = warm != nullptr ? &warm->ssa : nullptr;
  IPOOL_ASSIGN_OR_RETURN(std::unique_ptr<Forecaster> forecaster,
                         CreateForecaster(config_.model, fparams));
  std::vector<double> predicted;
  {
    obs::ScopedSpan forecast_span(config_.obs.tracer, "forecast");
    {
      obs::ScopedSpan fit_span(config_.obs.tracer, "fit");
      obs::ScopedTimer fit_timer(ModelHistogram(
          config_.obs, "ipool_forecast_fit_seconds", forecaster->name()));
      IPOOL_RETURN_NOT_OK(warm != nullptr ? forecaster->Refit(training)
                                          : forecaster->Fit(training));
    }
    obs::ScopedSpan predict_span(config_.obs.tracer, "predict");
    obs::ScopedTimer predict_timer(ModelHistogram(
        config_.obs, "ipool_forecast_predict_seconds", forecaster->name()));
    IPOOL_ASSIGN_OR_RETURN(predicted,
                           forecaster->Forecast(config_.recommendation_bins));
  }

  const double forecast_start =
      history.start() + history.interval() * static_cast<double>(history.size());
  TimeSeries predicted_series(forecast_start, history.interval(), predicted);

  IPOOL_ASSIGN_OR_RETURN(SaaOptimizer optimizer,
                         SaaOptimizer::Create(config_.saa));
  IPOOL_ASSIGN_OR_RETURN(PoolSchedule schedule,
                         optimizer.Optimize(predicted_series));

  Recommendation rec;
  rec.pool_size_per_bin =
      config_.smooth_recommendation
          ? SmoothSchedule(schedule.pool_size_per_bin, config_.saa.pool.tau_bins,
                           history.interval())
          : schedule.pool_size_per_bin;
  rec.predicted_demand = std::move(predicted);
  rec.model_name = forecaster->name();
  rec.pipeline = PipelineKind::k2Step;
  return rec;
}

Result<Recommendation> RecommendationEngine::RunEndToEnd(
    const TimeSeries& history, ForecastWarmState* warm) const {
  const TimeSeries training =
      config_.smoothing_factor_bins > 0
          ? MaxFilter(history, config_.smoothing_factor_bins)
          : history;

  // Step 1: historically-optimal pool size via SAA on the history.
  IPOOL_ASSIGN_OR_RETURN(SaaOptimizer optimizer,
                         SaaOptimizer::Create(config_.saa));
  IPOOL_ASSIGN_OR_RETURN(PoolSchedule historic, optimizer.Optimize(training));

  // Step 2: train the forecaster on the optimal-pool-size series and predict
  // it forward directly.
  std::vector<double> pool_series(historic.pool_size_per_bin.begin(),
                                  historic.pool_size_per_bin.end());
  TimeSeries pool_history(history.start(), history.interval(),
                          std::move(pool_series));
  ForecastParams fparams = config_.forecast;
  fparams.ssa_warm = warm != nullptr ? &warm->ssa : nullptr;
  IPOOL_ASSIGN_OR_RETURN(std::unique_ptr<Forecaster> forecaster,
                         CreateForecaster(config_.model, fparams));
  std::vector<double> predicted_pool;
  {
    obs::ScopedSpan forecast_span(config_.obs.tracer, "forecast");
    {
      obs::ScopedSpan fit_span(config_.obs.tracer, "fit");
      obs::ScopedTimer fit_timer(ModelHistogram(
          config_.obs, "ipool_forecast_fit_seconds", forecaster->name()));
      IPOOL_RETURN_NOT_OK(warm != nullptr ? forecaster->Refit(pool_history)
                                          : forecaster->Fit(pool_history));
    }
    obs::ScopedSpan predict_span(config_.obs.tracer, "predict");
    obs::ScopedTimer predict_timer(ModelHistogram(
        config_.obs, "ipool_forecast_predict_seconds", forecaster->name()));
    IPOOL_ASSIGN_OR_RETURN(predicted_pool,
                           forecaster->Forecast(config_.recommendation_bins));
  }

  std::vector<int64_t> schedule(predicted_pool.size());
  for (size_t i = 0; i < predicted_pool.size(); ++i) {
    const int64_t rounded = static_cast<int64_t>(std::llround(predicted_pool[i]));
    schedule[i] = std::clamp(rounded, config_.saa.pool.min_pool_size,
                             config_.saa.pool.max_pool_size);
  }

  Recommendation rec;
  rec.pool_size_per_bin =
      config_.smooth_recommendation
          ? SmoothSchedule(schedule, config_.saa.pool.tau_bins,
                           history.interval())
          : schedule;
  rec.model_name = forecaster->name();
  rec.pipeline = PipelineKind::kEndToEnd;
  return rec;
}

}  // namespace ipool
