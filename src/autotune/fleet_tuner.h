// Fleet auto-tuning: the paper's §6 closes the feedback loop on one SAA
// knob per pool; at fleet scale Intelligent Pooling also retunes every
// pool's FORECASTER choice and hyper-parameters continuously (ROADMAP item
// 5). A FleetTuner runs, per pool, a deterministic successive-halving
// search over the (model, alpha', window) space:
//
//   * the pool's recent binned telemetry is split into a training prefix
//     and a fixed evaluation holdout (the last `eval_bins` bins);
//   * rung r fits each surviving candidate on a suffix of the training
//     prefix whose length doubles per rung (train >> (rungs-1-r)) — cheap
//     low-fidelity rungs kill weak candidates before the full-length fit;
//   * candidates sharing a (model, window) pair are evaluated as one GROUP:
//     a single forecaster fit + forecast, then SweepPareto scores every
//     alpha' of the group against the holdout. Groups fan out over
//     exec::ParallelFor with cost-seeded chunking (deep models next to the
//     baseline stop serializing behind the hot chunk), and each group owns
//     its scratch + warm state, so the sweep is bit-identical at any thread
//     count;
//   * a candidate's score is the Fig-5 trade-off
//         avg_wait_seconds_capped + idle_cost_weight * idle_cluster_seconds
//     (lower is better); failed fits score +inf;
//   * each rung keeps the best ceil(alive/eta) candidates (ties broken by
//     candidate index — deterministic); the incumbent, when supplied, is
//     never cut before the final rung, so the hysteresis comparison below
//     is always against a fully-evaluated incumbent;
//   * after the final rung the §6 AutoTuner refines the winner's alpha'
//     within its (model, window) group: Observe(alpha, wait) walks alpha
//     toward the wait-time target, every probe is scored, and the best
//     scoring alpha seen wins (quantized to 1e-6 so the persisted document
//     round-trips exactly). An incumbent that wins its own re-tune is not
//     re-refined — re-tuning on unchanged telemetry is a fixed point, not
//     a slow alpha drift that churns the published config every cadence;
//   * hysteresis (§7.6 posture): the refined challenger replaces the
//     incumbent only when it improves the incumbent's score by
//     `hysteresis_pct` percent. A failed or degenerate tune (no candidate
//     produced a finite score) reports ok=false and the caller keeps the
//     incumbent serving. An incumbent whose own eval fails is stale and is
//     demoted by any finite challenger.
//
// Warm starts, two layers (both preserve bit-identical results — the
// determinism tests assert warm == cold):
//   * rung-score memoization keyed by (pool, candidate, rung geometry,
//     content hash of the telemetry slice): a re-tune over unchanged
//     telemetry skips the fit entirely (this is the warm >= 2x path gated
//     by tools/check_tuning_bench.sh);
//   * per-(pool, model, window, rung) SSA warm state (ForecastWarmState):
//     when the telemetry DID slide, SSA-family refits reuse the previous
//     Gram/basis (the PR-3 fast path) instead of refitting cold.
// Seeding: the candidate grid is augmented with the pool's own previous
// winner and the previous winners of region/node-size neighbor pools
// (pools sharing a '-'-separated name token), so a new pool starts its
// search at configurations that already won nearby.
//
// Thread-safety: TunePool mutates tuner-owned caches and must not be
// called concurrently (the live control plane calls it from the tick
// thread; the CLI from main). Internal fan-out over `exec` is safe.
#ifndef IPOOL_AUTOTUNE_FLEET_TUNER_H_
#define IPOOL_AUTOTUNE_FLEET_TUNER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/thread_pool.h"
#include "forecast/forecaster.h"
#include "obs/obs_context.h"
#include "solver/pool_model.h"
#include "tsdata/time_series.h"

namespace ipool {
namespace obs {
class Counter;
class Histogram;
}  // namespace obs
}  // namespace ipool

namespace ipool::autotune {

/// One point of the search space. Equality is exact (alpha compared
/// bitwise) — candidates are deduplicated and persisted on this identity.
struct TuningCandidate {
  ModelKind model = ModelKind::kSsaPlus;
  double alpha_prime = 0.5;
  size_t window = 96;

  bool operator==(const TuningCandidate& other) const {
    return model == other.model && alpha_prime == other.alpha_prime &&
           window == other.window;
  }
  bool operator!=(const TuningCandidate& other) const {
    return !(*this == other);
  }
};

std::string TuningCandidateName(const TuningCandidate& candidate);

struct FleetTunerConfig {
  /// The search grid. The cross product (models x windows x alphas) forms
  /// rung 0, except the baseline model which ignores its window and is
  /// enumerated once per alpha. Seeded winners are appended.
  std::vector<ModelKind> models = {ModelKind::kBaseline, ModelKind::kSsa,
                                   ModelKind::kSsaPlus};
  std::vector<double> alphas = {0.1, 0.3, 0.5, 0.7, 0.9};
  std::vector<size_t> windows = {48, 96};

  /// Successive-halving shape: `rungs` fidelity levels, keep
  /// ceil(alive / eta) candidates per rung.
  size_t rungs = 3;
  size_t eta = 3;

  /// Holdout scored against real demand: the last `eval_bins` bins of the
  /// pool history. The remainder is the training prefix.
  size_t eval_bins = 120;
  /// The training suffix of the earliest rung must still hold this many
  /// bins (rung lengths are clamped up to it).
  size_t min_train_bins = 32;

  /// Score = avg_wait_seconds_capped + idle_cost_weight *
  /// idle_cluster_seconds. The default weighs one idle cluster-hour like
  /// ~0.7 s of average wait — wait-dominant, so a model that makes users
  /// wait loses to one that slightly overprovisions.
  double idle_cost_weight = 2e-4;

  /// Challenger must beat the incumbent's score by this margin (percent)
  /// to be published; below it the incumbent is kept (hysteresis).
  double hysteresis_pct = 5.0;

  /// Final-rung alpha' refinement via the §6 AutoTuner: number of
  /// Observe-and-probe steps (0 disables), walking alpha toward
  /// `target_wait_seconds`. Only the best SCORING probe is kept, so
  /// refinement can never worsen the winner.
  size_t refine_steps = 3;
  double target_wait_seconds = 1.0;

  /// Rung-score memoization across TunePool calls (see header comment).
  bool memoize = true;

  /// Pool structure the SAA solve runs against (same for every candidate).
  PoolModelConfig pool;
  /// Base forecaster hyper-parameters; candidate model/window/alpha
  /// override per evaluation. `ssa_warm`/`exec`/`obs` fields are managed by
  /// the tuner itself and ignored here.
  ForecastParams forecast;

  /// Fan-out for the per-rung group evaluations; null runs serially
  /// (bit-identical either way).
  exec::ExecContext exec;
  /// Metrics + spans (optional): ipool_tune_runs_total{status},
  /// ipool_tune_evaluations_total, ipool_tune_memo_hits_total,
  /// ipool_tune_pool_seconds, and tune.pool > tune.rung / tune.refine
  /// spans.
  ObsContext obs;

  Status Validate() const;
};

/// Outcome of one per-pool tune.
struct PoolTuneResult {
  std::string pool;
  /// True when at least one candidate produced a finite score; false is a
  /// failed/degenerate tune and the caller must keep the incumbent.
  bool ok = false;
  /// True when `winner` differs from the supplied incumbent (or no
  /// incumbent existed and a first config was chosen after one did not
  /// simply carry over). False means the incumbent was kept.
  bool switched = false;
  TuningCandidate winner;
  double winner_score = 0.0;
  /// Incumbent's holdout score; +inf when the incumbent failed its eval or
  /// none was supplied.
  double incumbent_score = 0.0;
  size_t candidates = 0;    ///< distinct candidates entering rung 0
  size_t evaluations = 0;   ///< forecaster-fit group evaluations actually run
  size_t memo_hits = 0;     ///< candidate scores served from the memo cache
  std::string error;        ///< last per-candidate error ("" when clean)
};

class FleetTuner {
 public:
  static Result<std::unique_ptr<FleetTuner>> Create(
      const FleetTunerConfig& config);

  /// Runs the full successive-halving search for one pool over `history`
  /// (binned demand, newest bin last; needs eval_bins + min_train_bins
  /// bins). `incumbent` is the currently-serving config or null. Not
  /// thread-safe (see header comment).
  PoolTuneResult TunePool(const std::string& pool, const TimeSeries& history,
                          const TuningCandidate* incumbent);

  /// Drops memoized rung scores and warm forecaster state (not the
  /// per-pool previous winners). Tests use it to force cold re-tunes.
  void InvalidateCaches();

  const FleetTunerConfig& config() const { return config_; }

 private:
  explicit FleetTuner(const FleetTunerConfig& config);

  /// Deterministic candidate set for one pool: grid first (model-major,
  /// window, alpha nested order), then incumbent, own previous winner and
  /// neighbor winners, deduplicated. Returns the incumbent's index in
  /// `incumbent_index` (SIZE_MAX when none supplied).
  std::vector<TuningCandidate> BuildCandidates(const std::string& pool,
                                               const TuningCandidate* incumbent,
                                               size_t* incumbent_index) const;

  FleetTunerConfig config_;

  /// Previous winner per pool (seeds the pool's own next tune and its
  /// neighbors' searches).
  std::map<std::string, TuningCandidate> last_winner_;

  /// Rung-score memo: key encodes pool, candidate, rung geometry and a
  /// content hash of the history; value is (score, avg capped wait).
  std::map<std::string, std::pair<double, double>> memo_;

  /// Warm forecaster state per (pool, model, window, train length). Map
  /// node pointers are stable; nodes are created serially before each
  /// rung's fan-out so parallel bodies only touch their own entry.
  std::map<std::string, ForecastWarmState> warm_;

  /// Instrument handles fetched once at Create (null when obs is unwired).
  obs::Counter* runs_switched_ = nullptr;
  obs::Counter* runs_kept_ = nullptr;
  obs::Counter* runs_failed_ = nullptr;
  obs::Counter* evaluations_ = nullptr;
  obs::Counter* memo_hits_ = nullptr;
  obs::Histogram* pool_seconds_ = nullptr;
};

}  // namespace ipool::autotune

#endif  // IPOOL_AUTOTUNE_FLEET_TUNER_H_
