#include "autotune/fleet_tuner.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <set>
#include <utility>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/tuning_io.h"
#include "solver/saa_optimizer.h"
#include "tuning/auto_tuner.h"

namespace ipool::autotune {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Relative fit cost per model, seeding CostAwarePartition so one deep-model
/// group does not serialize a whole rung behind its chunk. Ratios only.
double ModelCostWeight(ModelKind kind) {
  switch (kind) {
    case ModelKind::kBaseline:
      return 1.0;
    case ModelKind::kSsa:
      return 24.0;
    case ModelKind::kSsaPlus:
      return 60.0;
    case ModelKind::kMwdn:
    case ModelKind::kTst:
    case ModelKind::kInceptionTime:
      return 600.0;
  }
  return 1.0;
}

bool UsesSsaWarmState(ModelKind kind) {
  return kind == ModelKind::kSsa || kind == ModelKind::kSsaPlus;
}

/// FNV-1a over the series' time base and value bit patterns: the memo must
/// key on CONTENT, not object identity, so a re-tune over unchanged
/// telemetry hits and a slid window misses.
uint64_t HashSeries(const TimeSeries& series) {
  uint64_t hash = 1469598103934665603ULL;
  auto mix_bytes = [&hash](const void* data, size_t len) {
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ULL;
    }
  };
  const double start = series.start();
  const double interval = series.interval();
  mix_bytes(&start, sizeof(start));
  mix_bytes(&interval, sizeof(interval));
  if (!series.empty()) {
    mix_bytes(series.values().data(), series.size() * sizeof(double));
  }
  return hash;
}

/// Alphas are quantized to 1e-6 everywhere (grid, seeds, refinement
/// probes): SerializeTuning emits %.6f, so this is exactly the precision
/// that survives a document round-trip.
double QuantizeAlpha(double alpha) { return std::round(alpha * 1e6) / 1e6; }

double ScoreOf(const PoolMetrics& metrics, double idle_cost_weight) {
  return metrics.avg_wait_seconds_capped +
         idle_cost_weight * metrics.idle_cluster_seconds;
}

std::string MemoKey(const std::string& pool, const TuningCandidate& c,
                    size_t train_len, size_t eval_len, uint64_t content_hash) {
  return StrFormat("%s|%d|%zu|%.6f|%zu|%zu|%016llx", pool.c_str(),
                   static_cast<int>(c.model), c.window, c.alpha_prime,
                   train_len, eval_len,
                   static_cast<unsigned long long>(content_hash));
}

std::string WarmKey(const std::string& pool, ModelKind model, size_t window,
                    size_t train_len) {
  return StrFormat("%s|%d|%zu|%zu", pool.c_str(), static_cast<int>(model),
                   window, train_len);
}

std::vector<std::string> SplitTokens(const std::string& name) {
  std::vector<std::string> tokens;
  size_t begin = 0;
  while (begin <= name.size()) {
    const size_t dash = name.find('-', begin);
    const std::string token = name.substr(
        begin, dash == std::string::npos ? std::string::npos : dash - begin);
    if (!token.empty()) tokens.push_back(token);
    if (dash == std::string::npos) break;
    begin = dash + 1;
  }
  return tokens;
}

bool SharesToken(const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
  for (const std::string& token : a) {
    if (std::find(b.begin(), b.end(), token) != b.end()) return true;
  }
  return false;
}

}  // namespace

std::string TuningCandidateName(const TuningCandidate& candidate) {
  return StrFormat("%s/a=%.6f/w=%zu",
                   ModelKindToString(candidate.model).c_str(),
                   candidate.alpha_prime, candidate.window);
}

Status FleetTunerConfig::Validate() const {
  if (models.empty()) {
    return Status::InvalidArgument("tuner needs at least one model");
  }
  if (alphas.empty()) {
    return Status::InvalidArgument("tuner needs at least one alpha");
  }
  for (double alpha : alphas) {
    if (!(alpha >= 0.0 && alpha <= 1.0)) {
      return Status::InvalidArgument("tuner alphas must be in [0, 1]");
    }
  }
  if (windows.empty()) {
    return Status::InvalidArgument("tuner needs at least one window");
  }
  for (size_t window : windows) {
    if (window < kMinTuningWindow || window > kMaxTuningWindow) {
      return Status::InvalidArgument(
          StrFormat("tuner window %zu outside [%zu, %zu]", window,
                    kMinTuningWindow, kMaxTuningWindow));
    }
  }
  if (rungs < 1 || rungs > 10) {
    return Status::InvalidArgument("rungs must be in [1, 10]");
  }
  if (eta < 2) return Status::InvalidArgument("eta must be >= 2");
  if (eval_bins < 8) return Status::InvalidArgument("eval_bins must be >= 8");
  if (min_train_bins < 8) {
    return Status::InvalidArgument("min_train_bins must be >= 8");
  }
  if (idle_cost_weight < 0.0) {
    return Status::InvalidArgument("idle_cost_weight must be >= 0");
  }
  if (hysteresis_pct < 0.0 || hysteresis_pct > 90.0) {
    return Status::InvalidArgument("hysteresis_pct must be in [0, 90]");
  }
  if (refine_steps > 32) {
    return Status::InvalidArgument("refine_steps must be <= 32");
  }
  if (target_wait_seconds < 0.0) {
    return Status::InvalidArgument("target_wait_seconds must be >= 0");
  }
  return forecast.Validate();
}

Result<std::unique_ptr<FleetTuner>> FleetTuner::Create(
    const FleetTunerConfig& config) {
  IPOOL_RETURN_NOT_OK(config.Validate());
  return std::unique_ptr<FleetTuner>(new FleetTuner(config));
}

FleetTuner::FleetTuner(const FleetTunerConfig& config) : config_(config) {
  if (obs::MetricsRegistry* metrics = config_.obs.metrics;
      metrics != nullptr) {
    // Pre-register every status series so a scrape can assert
    // {status="failed"} == 0 before any tune has failed.
    runs_switched_ =
        metrics->GetCounter("ipool_tune_runs_total", {{"status", "switched"}});
    runs_kept_ =
        metrics->GetCounter("ipool_tune_runs_total", {{"status", "kept"}});
    runs_failed_ =
        metrics->GetCounter("ipool_tune_runs_total", {{"status", "failed"}});
    evaluations_ = metrics->GetCounter("ipool_tune_evaluations_total");
    memo_hits_ = metrics->GetCounter("ipool_tune_memo_hits_total");
    pool_seconds_ = metrics->GetHistogram("ipool_tune_pool_seconds");
  }
}

void FleetTuner::InvalidateCaches() {
  memo_.clear();
  warm_.clear();
}

std::vector<TuningCandidate> FleetTuner::BuildCandidates(
    const std::string& pool, const TuningCandidate* incumbent,
    size_t* incumbent_index) const {
  *incumbent_index = SIZE_MAX;
  std::vector<TuningCandidate> out;
  auto add = [&out](const TuningCandidate& candidate) -> size_t {
    for (size_t i = 0; i < out.size(); ++i) {
      if (out[i] == candidate) return i;
    }
    out.push_back(candidate);
    return out.size() - 1;
  };
  for (ModelKind model : config_.models) {
    // The baseline forecaster (gamma * max) ignores its window: enumerate
    // it once per alpha instead of once per (window, alpha).
    const size_t window_count =
        model == ModelKind::kBaseline ? 1 : config_.windows.size();
    for (size_t w = 0; w < window_count; ++w) {
      for (double alpha : config_.alphas) {
        add(TuningCandidate{model, QuantizeAlpha(alpha), config_.windows[w]});
      }
    }
  }
  if (incumbent != nullptr) *incumbent_index = add(*incumbent);
  // Warm-start seeds: the pool's own previous winner, then the previous
  // winners of region/node-size neighbors (pools sharing a '-'-separated
  // name token), in map order — deterministic.
  auto own = last_winner_.find(pool);
  if (own != last_winner_.end()) add(own->second);
  const std::vector<std::string> self_tokens = SplitTokens(pool);
  for (const auto& [other, winner] : last_winner_) {
    if (other == pool) continue;
    if (!SharesToken(self_tokens, SplitTokens(other))) continue;
    add(winner);
  }
  return out;
}

namespace {

/// One fit + forecast for a (model, window) group: everything the group's
/// alphas share. Fit errors (window too long for the rung's slice, solver
/// trouble) surface as a Status — the caller scores the whole group +inf.
Result<TimeSeries> BuildPlanning(const FleetTunerConfig& config,
                                 ModelKind model, size_t window,
                                 const TimeSeries& train,
                                 const TimeSeries& eval,
                                 ForecastWarmState* warm) {
  ForecastParams params = config.forecast;
  params.window = window;
  params.ssa_warm = warm != nullptr ? &warm->ssa : nullptr;
  // Serial inside the group body (groups are the parallel unit) and
  // metrics-only obs: instruments are lock-free atomics, safe from any
  // thread.
  params.exec = {};
  params.obs = ObsContext{config.obs.metrics, nullptr};
  IPOOL_ASSIGN_OR_RETURN(std::unique_ptr<Forecaster> forecaster,
                         CreateForecaster(model, params));
  IPOOL_RETURN_NOT_OK(forecaster->Refit(train));
  IPOOL_ASSIGN_OR_RETURN(std::vector<double> forecast,
                         forecaster->Forecast(eval.size()));
  return TimeSeries(eval.start(), eval.interval(), std::move(forecast));
}

/// Scores `alphas` against the holdout on a fixed planning forecast.
/// Returns (score, avg capped wait) per alpha, in input order.
Result<std::vector<std::pair<double, double>>> ScoreAlphas(
    const FleetTunerConfig& config, const TimeSeries& planning,
    const TimeSeries& eval, const std::vector<double>& alphas) {
  IPOOL_ASSIGN_OR_RETURN(
      std::vector<ParetoPoint> points,
      SweepPareto(planning, eval, config.pool, alphas,
                  ObsContext{config.obs.metrics, nullptr}, {}));
  std::vector<std::pair<double, double>> out;
  out.reserve(points.size());
  for (const ParetoPoint& point : points) {
    out.emplace_back(ScoreOf(point.metrics, config.idle_cost_weight),
                     point.metrics.avg_wait_seconds_capped);
  }
  return out;
}

}  // namespace

PoolTuneResult FleetTuner::TunePool(const std::string& pool,
                                    const TimeSeries& history,
                                    const TuningCandidate* incumbent) {
  obs::ScopedSpan pool_span(config_.obs.tracer, "tune.pool");
  obs::ScopedTimer pool_timer(pool_seconds_);

  PoolTuneResult result;
  result.pool = pool;
  result.winner_score = kInf;
  result.incumbent_score = kInf;

  const size_t n = history.size();
  if (n < config_.eval_bins + config_.min_train_bins) {
    result.error = StrFormat(
        "history of %zu bins is shorter than eval %zu + min train %zu", n,
        config_.eval_bins, config_.min_train_bins);
    if (runs_failed_ != nullptr) runs_failed_->Add(1);
    return result;
  }

  // Bound the caches: a fleet of ever-changing pool names must not grow
  // them without limit. Clearing only costs the next tune a cold pass.
  if (memo_.size() > 65536) memo_.clear();
  if (warm_.size() > 4096) warm_.clear();

  const TimeSeries train_full = history.Slice(0, n - config_.eval_bins);
  const TimeSeries eval = history.Slice(n - config_.eval_bins, n);
  const uint64_t content_hash = HashSeries(history);

  size_t incumbent_index = SIZE_MAX;
  const std::vector<TuningCandidate> candidates =
      BuildCandidates(pool, incumbent, &incumbent_index);
  result.candidates = candidates.size();

  // (score, avg capped wait) per candidate from the most recent rung that
  // evaluated it; failures stay +inf.
  std::vector<std::pair<double, double>> scores(candidates.size(),
                                                {kInf, kInf});
  std::vector<size_t> alive(candidates.size());
  std::iota(alive.begin(), alive.end(), 0);

  const size_t min_train = std::min(config_.min_train_bins, train_full.size());
  for (size_t r = 0; r < config_.rungs; ++r) {
    // Fidelity doubles per rung: rung r trains on the trailing
    // train_full >> (rungs-1-r) bins, the final rung on everything.
    size_t train_len = train_full.size() >> (config_.rungs - 1 - r);
    train_len = std::clamp(train_len, min_train, train_full.size());
    const TimeSeries train =
        train_full.Slice(train_full.size() - train_len, train_full.size());

    // Group the rung's survivors by (model, window): one fit + forecast
    // per group, alphas scored together via SweepPareto. Memoized
    // candidates skip their group entirely.
    struct Group {
      ModelKind model = ModelKind::kBaseline;
      size_t window = 0;
      std::vector<size_t> need;         ///< candidate ids needing evaluation
      std::vector<double> need_alphas;  ///< their alphas, same order
      ForecastWarmState* warm = nullptr;
    };
    std::vector<Group> groups;
    std::map<std::pair<int, size_t>, size_t> group_index;
    size_t rung_memo_hits = 0;
    for (size_t id : alive) {
      const TuningCandidate& candidate = candidates[id];
      if (config_.memoize) {
        auto hit = memo_.find(
            MemoKey(pool, candidate, train_len, eval.size(), content_hash));
        if (hit != memo_.end()) {
          scores[id] = hit->second;
          ++rung_memo_hits;
          continue;
        }
      }
      const auto key =
          std::make_pair(static_cast<int>(candidate.model), candidate.window);
      auto [it, inserted] = group_index.try_emplace(key, groups.size());
      if (inserted) {
        Group group;
        group.model = candidate.model;
        group.window = candidate.window;
        groups.push_back(std::move(group));
      }
      groups[it->second].need.push_back(id);
      groups[it->second].need_alphas.push_back(candidate.alpha_prime);
    }
    result.memo_hits += rung_memo_hits;
    if (memo_hits_ != nullptr && rung_memo_hits > 0) {
      memo_hits_->Add(rung_memo_hits);
    }

    if (!groups.empty()) {
      obs::ScopedSpan rung_span(config_.obs.tracer, "tune.rung");
      // Warm-state map nodes are created serially here (node pointers are
      // stable), so the parallel bodies only touch their own group's entry.
      for (Group& group : groups) {
        if (UsesSsaWarmState(group.model)) {
          group.warm = &warm_[WarmKey(pool, group.model, group.window,
                                      train_len)];
        }
      }
      std::vector<Status> errors(groups.size(), Status::OK());
      std::vector<double> costs(groups.size(), 0.0);
      for (size_t g = 0; g < groups.size(); ++g) {
        costs[g] = ModelCostWeight(groups[g].model) *
                       static_cast<double>(train_len) +
                   static_cast<double>(groups[g].need.size() * eval.size());
      }
      exec::ParallelForOptions options;
      options.label = "tune.rung";
      options.costs = costs.data();
      exec::ParallelFor(
          config_.exec, 0, groups.size(),
          [&](size_t lo, size_t hi) {
            for (size_t g = lo; g < hi; ++g) {
              Group& group = groups[g];
              auto evaluated = [&]() -> Status {
                IPOOL_ASSIGN_OR_RETURN(
                    TimeSeries planning,
                    BuildPlanning(config_, group.model, group.window, train,
                                  eval, group.warm));
                IPOOL_ASSIGN_OR_RETURN(
                    auto results,
                    ScoreAlphas(config_, planning, eval, group.need_alphas));
                for (size_t k = 0; k < group.need.size(); ++k) {
                  scores[group.need[k]] = results[k];
                }
                return Status::OK();
              }();
              if (!evaluated.ok()) errors[g] = evaluated;
            }
          },
          options);
      result.evaluations += groups.size();
      if (evaluations_ != nullptr) evaluations_->Add(groups.size());
      for (size_t g = 0; g < groups.size(); ++g) {
        if (errors[g].ok()) continue;
        result.error = StrFormat("%s at rung %zu: %s",
                                 TuningCandidateName(
                                     candidates[groups[g].need.front()])
                                     .c_str(),
                                 r, errors[g].ToString().c_str());
      }
      if (config_.memoize) {
        // Failures memoize as +inf too: they are deterministic (geometry or
        // validation), and caching them keeps warm re-tunes bit-identical
        // to cold ones.
        for (const Group& group : groups) {
          for (size_t id : group.need) {
            memo_[MemoKey(pool, candidates[id], train_len, eval.size(),
                          content_hash)] = scores[id];
          }
        }
      }
    }

    // Successive-halving cut: keep the best ceil(alive/eta), ties broken
    // by candidate index; the incumbent survives every cut so the final
    // hysteresis comparison is against a full-fidelity incumbent score.
    if (r + 1 < config_.rungs) {
      std::vector<size_t> order = alive;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (scores[a].first != scores[b].first) {
          return scores[a].first < scores[b].first;
        }
        return a < b;
      });
      const size_t keep =
          std::max<size_t>(1, (alive.size() + config_.eta - 1) / config_.eta);
      if (order.size() > keep) order.resize(keep);
      if (incumbent_index != SIZE_MAX &&
          std::find(order.begin(), order.end(), incumbent_index) ==
              order.end()) {
        order.push_back(incumbent_index);
      }
      std::sort(order.begin(), order.end());
      alive = std::move(order);
    }
  }

  // Final-rung winner: best finite score, ties to the lowest index.
  size_t winner_id = SIZE_MAX;
  for (size_t id : alive) {
    if (!std::isfinite(scores[id].first)) continue;
    if (winner_id == SIZE_MAX || scores[id].first < scores[winner_id].first) {
      winner_id = id;
    }
  }
  if (incumbent_index != SIZE_MAX) {
    result.incumbent_score = scores[incumbent_index].first;
  }
  if (winner_id == SIZE_MAX) {
    // Degenerate tune: nothing scored. §7.6 posture — the caller keeps the
    // incumbent serving; we do not record a winner.
    if (result.error.empty()) result.error = "no candidate produced a score";
    if (runs_failed_ != nullptr) runs_failed_->Add(1);
    return result;
  }

  TuningCandidate winner = candidates[winner_id];
  double winner_score = scores[winner_id].first;
  double winner_wait = scores[winner_id].second;

  // §6 AutoTuner as the within-rung alpha refinement: walk alpha toward
  // the wait-time target on the winner's full-fidelity planning forecast
  // (one extra fit, warm), keeping the best SCORING probe — refinement can
  // only improve the winner, never replace it with a worse config. An
  // incumbent that won its own re-tune is NOT re-refined: it is already a
  // refined point, and walking its alpha a little further on every tune
  // would keep beating the hysteresis margin — the serving config would
  // never reach a fixed point (endless republish churn on unchanged
  // telemetry). Refinement is for newly promoted grid candidates.
  const bool winner_is_incumbent =
      incumbent_index != SIZE_MAX && winner_id == incumbent_index;
  if (config_.refine_steps > 0 && !winner_is_incumbent) {
    obs::ScopedSpan refine_span(config_.obs.tracer, "tune.refine");
    ForecastWarmState* warm =
        UsesSsaWarmState(winner.model)
            ? &warm_[WarmKey(pool, winner.model, winner.window,
                             train_full.size())]
            : nullptr;
    auto planning = BuildPlanning(config_, winner.model, winner.window,
                                  train_full, eval, warm);
    if (planning.ok()) {
      ++result.evaluations;
      if (evaluations_ != nullptr) evaluations_->Add(1);
      AutoTunerConfig tuner_config;
      tuner_config.target_wait_seconds = config_.target_wait_seconds;
      tuner_config.initial_alpha = std::clamp(winner.alpha_prime, 0.01, 0.99);
      tuner_config.window = std::max<size_t>(2, config_.refine_steps);
      auto tuner = AutoTuner::Create(tuner_config);
      if (tuner.ok()) {
        double alpha = tuner_config.initial_alpha;
        double wait = winner_wait;
        std::set<double> probed = {winner.alpha_prime};
        for (size_t step = 0; step < config_.refine_steps; ++step) {
          const double next = QuantizeAlpha(tuner->Observe(alpha, wait));
          if (!probed.insert(next).second) break;  // revisited: converged
          TuningCandidate probe = winner;
          probe.alpha_prime = next;
          const std::string key = MemoKey(pool, probe, train_full.size(),
                                          eval.size(), content_hash);
          std::pair<double, double> outcome{kInf, kInf};
          bool have = false;
          if (config_.memoize) {
            auto hit = memo_.find(key);
            if (hit != memo_.end()) {
              outcome = hit->second;
              have = true;
              ++result.memo_hits;
              if (memo_hits_ != nullptr) memo_hits_->Add(1);
            }
          }
          if (!have) {
            auto scored = ScoreAlphas(config_, *planning, eval, {next});
            if (!scored.ok()) {
              result.error = StrFormat("refine %s: %s",
                                       TuningCandidateName(probe).c_str(),
                                       scored.status().ToString().c_str());
              break;
            }
            outcome = scored->front();
            if (config_.memoize) memo_[key] = outcome;
          }
          alpha = next;
          wait = outcome.second;
          if (outcome.first < winner_score) {
            winner_score = outcome.first;
            winner_wait = outcome.second;
            winner.alpha_prime = next;
          }
        }
      }
    }
  }

  // Hysteresis: the challenger must beat the incumbent's holdout score by
  // hysteresis_pct percent, or the incumbent is kept. An incumbent that
  // failed its own eval (+inf) is stale and loses to any finite challenger.
  result.ok = true;
  result.winner_score = winner_score;
  if (incumbent != nullptr) {
    if (winner == *incumbent) {
      result.switched = false;
    } else if (!std::isfinite(result.incumbent_score)) {
      result.switched = true;  // stale incumbent demoted
    } else if (winner_score <
               result.incumbent_score *
                   (1.0 - config_.hysteresis_pct / 100.0)) {
      result.switched = true;
    } else {
      winner = *incumbent;
      winner_score = result.incumbent_score;
      result.winner_score = winner_score;
      result.switched = false;
    }
  } else {
    result.switched = true;  // first config for this pool
  }
  result.winner = winner;
  last_winner_[pool] = winner;
  if (result.switched) {
    if (runs_switched_ != nullptr) runs_switched_->Add(1);
  } else {
    if (runs_kept_ != nullptr) runs_kept_->Add(1);
  }
  return result;
}

}  // namespace ipool::autotune
