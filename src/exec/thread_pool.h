// Shared parallel execution runtime for every independent-work hot path in
// the control plane: solver sweeps (one task per alpha'), fleet solves (one
// task per region x node-size pool), NN training kernels (row-block MatMul)
// and the benchmark matrix (one task per model x dataset cell).
//
// Design contract (see DESIGN.md "Execution & parallelism"):
//  * A fixed-size work-stealing ThreadPool. Submitted tasks land in
//    per-worker deques round-robin; idle workers steal from the back of
//    their peers' deques (counted in stolen()).
//  * ParallelFor partitions an index range into contiguous chunks. The
//    calling thread participates (it drains chunks alongside the workers),
//    so a pool of N threads applies N+1 executors and a ParallelFor on a
//    pool is never slower than the serial loop by more than the dispatch
//    cost. Chunks are claimed dynamically (atomic cursor) unless the caller
//    pins static chunking.
//  * Determinism: chunk boundaries depend only on (range, chunking, grain,
//    worker count is NOT involved) and every chunk owns a disjoint slice of
//    the output, so parallel results are bit-identical to the serial path
//    regardless of thread count or scheduling order. Stochastic tasks derive
//    their RNG stream from DeriveTaskSeed(base_seed, task_index), never from
//    the executing thread.
//  * Worker threads never block on a task group (they only execute), so
//    nested ParallelFor cannot deadlock: a ParallelFor issued from inside a
//    pool worker runs inline serially (the outer fan-out already owns the
//    hardware).
//  * A null/absent pool degrades every helper to the plain serial loop —
//    the default, so existing call sites keep working unchanged (mirrors
//    ObsContext).
#ifndef IPOOL_EXEC_THREAD_POOL_H_
#define IPOOL_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ipool::obs {
class MetricsRegistry;
}  // namespace ipool::obs

namespace ipool::exec {

class TaskProfiler;

/// Fixed-size work-stealing thread pool. Construction spawns the workers;
/// destruction drains outstanding tasks and joins them. Thread-safe.
class ThreadPool {
 public:
  /// `num_threads` == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a fire-and-forget task (round-robin across worker deques).
  /// `label` names the task in profiler timelines; it must point at storage
  /// outliving the task (string literals in practice).
  void Submit(std::function<void()> task, const char* label = "task");

  /// Blocks until every task submitted so far has finished. The caller does
  /// not execute tasks; prefer ParallelFor for caller participation.
  void Wait();

  /// Lifetime totals (relaxed reads; exact once the pool is idle).
  uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }
  uint64_t tasks_stolen() const {
    return tasks_stolen_.load(std::memory_order_relaxed);
  }
  /// Tasks currently enqueued (not yet picked up).
  size_t QueueDepth() const;

  /// Writes ipool_exec_threads / ipool_exec_tasks_executed_total /
  /// ipool_exec_tasks_stolen_total / ipool_exec_queue_depth gauges into the
  /// registry (no-op on nullptr). Call at any quiescent point.
  void PublishTo(obs::MetricsRegistry* metrics) const;

  /// True when the calling thread is one of this pool's workers.
  bool InWorkerThread() const;

  /// Routes per-task timing records (queue wait, run time, executing thread,
  /// steal provenance) into `profiler`; null detaches. Attach and detach at
  /// quiescent points (no tasks in flight) — tasks submitted while detached
  /// carry no enqueue timestamp and are never recorded. Note ParallelFor
  /// returns once its chunks are done while its driver tasks may still be
  /// winding down (and recording): call Wait() before detaching, and never
  /// destroy the profiler or its registry while the pool has tasks in
  /// flight.
  void AttachProfiler(TaskProfiler* profiler) {
    profiler_.store(profiler, std::memory_order_release);
  }
  TaskProfiler* profiler() const {
    return profiler_.load(std::memory_order_acquire);
  }

 private:
  struct TaskItem {
    std::function<void()> fn;
    const char* label = "task";
    double enqueue_seconds = -1.0;  // < 0: no profiler attached at submit
    uint32_t submit_slot = 0;
    bool stolen = false;
  };
  struct Worker {
    std::deque<TaskItem> deque;
    std::mutex mu;
  };

  void WorkerLoop(size_t index);
  /// Pops own work or steals; returns an item with a null fn when idle.
  TaskItem TakeTask(size_t self);

  std::vector<std::unique_ptr<Worker>> slots_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> pending_{0};  // submitted, not yet finished
  std::atomic<size_t> queued_{0};   // submitted, not yet picked up
  std::atomic<size_t> next_slot_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> tasks_stolen_{0};
  std::atomic<TaskProfiler*> profiler_{nullptr};
};

/// The execution handle threaded through configs, mirroring ObsContext: a
/// single non-owning pointer whose default (null) means "serial inline".
struct ExecContext {
  ThreadPool* pool = nullptr;

  bool enabled() const { return pool != nullptr; }
  size_t num_threads() const { return pool != nullptr ? pool->num_threads() : 0; }

  /// Child configs default to a null context; parents propagate theirs into
  /// children that were left unset (an explicitly wired child wins).
  ExecContext OrElse(const ExecContext& fallback) const {
    return enabled() ? *this : fallback;
  }
};

/// Thread-local "ambient" pool for compute kernels (nn/linalg MatMul) that
/// sit too deep for config plumbing. ScopedPool installs a pool for the
/// current thread; Current() reads it (null by default). Kernels running on
/// pool worker threads see null (nested parallelism runs inline).
class ScopedPool {
 public:
  explicit ScopedPool(ThreadPool* pool);
  explicit ScopedPool(const ExecContext& exec) : ScopedPool(exec.pool) {}
  ~ScopedPool();
  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

 private:
  ThreadPool* previous_;
};

/// The pool installed for this thread by the innermost live ScopedPool, or
/// null (serial).
ThreadPool* Current();

/// Contiguous half-open index ranges covering [0, n), at most `parts` of
/// them, sizes differing by at most one. parts == 0 behaves as 1.
std::vector<std::pair<size_t, size_t>> Partition(size_t n, size_t parts);

/// Cost-weighted variant: at most `parts` contiguous ranges covering [0, n)
/// whose per-range summed costs are near-equal — a deterministic greedy walk
/// that closes a range once it reaches the average remaining cost (and is at
/// least `grain` wide). Negative costs clamp to zero; an all-zero cost array
/// falls back to Partition. Boundaries depend only on (costs, n, parts,
/// grain), never on scheduling, so fan-outs stay deterministic.
std::vector<std::pair<size_t, size_t>> CostAwarePartition(const double* costs,
                                                          size_t n,
                                                          size_t parts,
                                                          size_t grain);

enum class Chunking {
  /// One chunk per executor (pool threads + caller): lowest dispatch cost,
  /// best for uniform bodies.
  kStatic,
  /// ~4 chunks per executor claimed from a shared cursor: balances skewed
  /// bodies (deep-model cells next to baseline cells).
  kDynamic,
};

struct ParallelForOptions {
  Chunking chunking = Chunking::kDynamic;
  /// Minimum indices per chunk; ranges smaller than 2*grain run inline.
  size_t grain = 1;
  /// Names this fan-out's chunks and drivers in profiler timelines; must
  /// point at storage outliving the call (string literals in practice).
  const char* label = "parallel_for";
  /// Optional per-index relative costs: costs[i] weighs index begin + i, and
  /// the array must cover the whole range (end - begin entries, outliving
  /// the call). When set, chunk boundaries come from CostAwarePartition —
  /// contiguous chunks of near-equal total cost instead of near-equal index
  /// count — and skewed bodies (a deep-model cell next to a baseline cell)
  /// stop serializing behind the one hot chunk. Units are irrelevant; only
  /// ratios matter. Callers typically seed this from a measured serial pass
  /// or a work-size proxy (rows, bins, samples).
  const double* costs = nullptr;
};

/// Runs body(begin, end) over disjoint contiguous sub-ranges of
/// [begin, end). Serial inline when `pool` is null, the range is small, or
/// the caller is already a pool worker. Blocks until the whole range is
/// done. The body must only write state owned by its sub-range.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& body,
                 const ParallelForOptions& options = {});

inline void ParallelFor(const ExecContext& exec, size_t begin, size_t end,
                        const std::function<void(size_t, size_t)>& body,
                        const ParallelForOptions& options = {}) {
  ParallelFor(exec.pool, begin, end, body, options);
}

/// Maps fn over [0, n) into a vector with results in index order (the
/// parallel schedule never reorders outputs). fn must be copyable and
/// thread-compatible.
template <typename Fn>
auto ParallelMap(ThreadPool* pool, size_t n, Fn fn,
                 const ParallelForOptions& options = {})
    -> std::vector<decltype(fn(size_t{0}))> {
  std::vector<decltype(fn(size_t{0}))> out(n);
  ParallelFor(
      pool, 0, n,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) out[i] = fn(i);
      },
      options);
  return out;
}

template <typename Fn>
auto ParallelMap(const ExecContext& exec, size_t n, Fn fn,
                 const ParallelForOptions& options = {})
    -> std::vector<decltype(fn(size_t{0}))> {
  return ParallelMap(exec.pool, n, std::move(fn), options);
}

/// Deterministic per-task RNG seed: a SplitMix64 mix of (base_seed,
/// task_index). Tasks seeded this way draw identical streams no matter which
/// thread runs them or in what order, and distinct tasks get statistically
/// independent streams.
uint64_t DeriveTaskSeed(uint64_t base_seed, uint64_t task_index);

}  // namespace ipool::exec

#endif  // IPOOL_EXEC_THREAD_POOL_H_
