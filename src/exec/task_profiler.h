// Per-task timeline profiler for the work-stealing pool: when attached to a
// ThreadPool it records, for every submitted task and every ParallelFor
// chunk, the enqueue-to-start queue wait, the run time, the executing thread
// and whether the task was stolen from another worker's deque. This is the
// substrate for diagnosing the parallel-speedup question (ROADMAP item 1):
// a slowdown decomposes into queue wait (dispatch latency / oversubscription),
// task body time (too-cheap tasks) and serial sections (wall clock no record
// covers).
//
// Records are timestamped on the profiler's own monotonic clock and kept in a
// bounded in-memory buffer (overflow is counted, newest records dropped).
// Recording takes one short mutex per finished task, which is negligible at
// the >= microsecond task granularity the pool targets; detached pools pay a
// single relaxed atomic load per task.
//
// Exports: TaskTimelineJsonl (one JSON object per record, for offline
// analysis) and, when a MetricsRegistry is attached, live
// ipool_exec_task_queue_seconds / ipool_exec_task_run_seconds histograms
// labelled by record kind.
#ifndef IPOOL_EXEC_TASK_PROFILER_H_
#define IPOOL_EXEC_TASK_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ipool::obs {
class MetricsRegistry;
class Histogram;
}  // namespace ipool::obs

namespace ipool::exec {

enum class TaskKind : uint8_t {
  kTask,   // a whole Submit()ed task (including ParallelFor drivers)
  kChunk,  // one contiguous ParallelFor chunk executed by some driver/caller
};

const char* TaskKindToString(TaskKind kind);

struct TaskRecord {
  uint64_t id = 0;         // assigned by the profiler, in completion order
  const char* label = "";  // static label supplied at the submit site
  TaskKind kind = TaskKind::kTask;
  // Seconds on the profiler's clock. For chunks, enqueue is the owning
  // ParallelFor's entry time, so queue_seconds() is the wait for an executor.
  double enqueue_seconds = 0.0;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  uint32_t submit_slot = 0;  // worker deque the task was pushed to
  int run_thread = -1;       // pool worker index; -1 = the calling thread
  bool stolen = false;       // popped from another worker's deque

  double queue_seconds() const { return start_seconds - enqueue_seconds; }
  double run_seconds() const { return end_seconds - start_seconds; }
};

/// Thread-safe. Attach to a pool with ThreadPool::AttachProfiler at a
/// quiescent point; tasks submitted while detached produce no records.
class TaskProfiler {
 public:
  /// `capacity` bounds the record buffer; once full, further records are
  /// counted in dropped() and discarded (the oldest records are kept so the
  /// timeline's origin stays intact).
  explicit TaskProfiler(size_t capacity = 1u << 20);
  TaskProfiler(const TaskProfiler&) = delete;
  TaskProfiler& operator=(const TaskProfiler&) = delete;

  /// Seconds since the profiler was constructed (monotonic clock).
  double Now() const;

  /// Appends a finished-task record (id is assigned here) and feeds the
  /// attached histograms, if any.
  void Record(TaskRecord record);

  std::vector<TaskRecord> Records() const;
  size_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Forgets all records (not the attached registry).
  void Clear();

  /// Routes every subsequent record into ipool_exec_task_queue_seconds /
  /// ipool_exec_task_run_seconds histograms labelled {kind="task"|"chunk"}
  /// in `metrics`. Null detaches. The registry must outlive the profiler's
  /// use of it.
  void AttachMetrics(obs::MetricsRegistry* metrics);

 private:
  std::chrono::steady_clock::time_point epoch_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TaskRecord> records_;
  std::atomic<size_t> dropped_{0};
  std::atomic<uint64_t> next_id_{1};
  // Indexed by TaskKind; null when no registry is attached.
  std::atomic<obs::Histogram*> queue_hist_[2] = {nullptr, nullptr};
  std::atomic<obs::Histogram*> run_hist_[2] = {nullptr, nullptr};
};

/// One JSON object per record:
/// {"id":1,"label":"solver.sweep_pareto","kind":"chunk","enqueue_s":...,
///  "start_s":...,"end_s":...,"queue_s":...,"run_s":...,"slot":0,
///  "thread":2,"stolen":false}
std::string TaskTimelineJsonl(const TaskProfiler& profiler);

}  // namespace ipool::exec

#endif  // IPOOL_EXEC_TASK_PROFILER_H_
