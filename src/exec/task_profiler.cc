#include "exec/task_profiler.h"

#include "common/strings.h"
#include "obs/metrics.h"

namespace ipool::exec {

const char* TaskKindToString(TaskKind kind) {
  switch (kind) {
    case TaskKind::kTask:
      return "task";
    case TaskKind::kChunk:
      return "chunk";
  }
  return "unknown";
}

TaskProfiler::TaskProfiler(size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity == 0 ? 1 : capacity) {}

double TaskProfiler::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void TaskProfiler::Record(TaskRecord record) {
  const size_t kind = static_cast<size_t>(record.kind);
  if (obs::Histogram* h = queue_hist_[kind].load(std::memory_order_relaxed)) {
    h->Observe(record.queue_seconds());
  }
  if (obs::Histogram* h = run_hist_[kind].load(std::memory_order_relaxed)) {
    h->Observe(record.run_seconds());
  }
  record.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  records_.push_back(record);
}

std::vector<TaskRecord> TaskProfiler::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

void TaskProfiler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void TaskProfiler::AttachMetrics(obs::MetricsRegistry* metrics) {
  for (TaskKind kind : {TaskKind::kTask, TaskKind::kChunk}) {
    const size_t i = static_cast<size_t>(kind);
    obs::Histogram* queue = nullptr;
    obs::Histogram* run = nullptr;
    if (metrics != nullptr) {
      const obs::LabelSet labels = {{"kind", TaskKindToString(kind)}};
      queue = metrics->GetHistogram("ipool_exec_task_queue_seconds", labels);
      run = metrics->GetHistogram("ipool_exec_task_run_seconds", labels);
    }
    queue_hist_[i].store(queue, std::memory_order_relaxed);
    run_hist_[i].store(run, std::memory_order_relaxed);
  }
}

std::string TaskTimelineJsonl(const TaskProfiler& profiler) {
  std::string out;
  for (const TaskRecord& r : profiler.Records()) {
    out += StrFormat(
        "{\"id\":%llu,\"label\":\"%s\",\"kind\":\"%s\",\"enqueue_s\":%.9f,"
        "\"start_s\":%.9f,\"end_s\":%.9f,\"queue_s\":%.9f,\"run_s\":%.9f,"
        "\"slot\":%u,\"thread\":%d,\"stolen\":%s}\n",
        static_cast<unsigned long long>(r.id), r.label,
        TaskKindToString(r.kind), r.enqueue_seconds, r.start_seconds,
        r.end_seconds, r.queue_seconds(), r.run_seconds(), r.submit_slot,
        r.run_thread, r.stolen ? "true" : "false");
  }
  return out;
}

}  // namespace ipool::exec
