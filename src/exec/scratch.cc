#include "exec/scratch.h"

#include <algorithm>

namespace ipool::exec {

namespace {
constexpr size_t kAlign = 64;  // cache line; SIMD loads are unaligned-safe
constexpr size_t kMinBlock = size_t{1} << 16;
}  // namespace

ScratchArena& ScratchArena::ForThread() {
  static thread_local ScratchArena arena;
  return arena;
}

void* ScratchArena::AllocBytes(size_t bytes) {
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      const auto base = reinterpret_cast<uintptr_t>(b.data.get());
      const uintptr_t aligned =
          (base + offset_ + (kAlign - 1)) & ~uintptr_t{kAlign - 1};
      const size_t aligned_offset = static_cast<size_t>(aligned - base);
      if (aligned_offset + bytes <= b.size) {
        offset_ = aligned_offset + bytes;
        return b.data.get() + aligned_offset;
      }
      // This block is exhausted for the current request; fall through to the
      // next retained block (its live bytes, if any, belong to dead inner
      // scopes — scopes are strictly stack-ordered, so reuse is safe).
      ++block_;
      offset_ = 0;
      continue;
    }
    const size_t last = blocks_.empty() ? 0 : blocks_.back().size;
    const size_t size = std::max({bytes + kAlign, last * 2, kMinBlock});
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    block_ = blocks_.size() - 1;
    offset_ = 0;
  }
}

}  // namespace ipool::exec
