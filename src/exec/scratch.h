// Per-thread scratch arenas for ParallelFor bodies and compute kernels that
// otherwise re-allocate identical temporaries on every chunk iteration (the
// PR-5 profiler showed sweep/fleet chunk bodies spending real time in the
// allocator). A ScratchArena is a chunked bump allocator owned by one
// thread: Alloc() hands out 64-byte-aligned uninitialized storage in O(1),
// ScratchScope restores the high-water mark on exit so an enclosing body can
// reuse the same bytes on its next iteration, and the underlying blocks are
// retained for the thread's lifetime — after the first iteration of a hot
// loop, scratch costs zero allocations.
//
// Rules:
//  * Storage is valid until the enclosing ScratchScope (or the thread) dies.
//    Never return arena pointers past the scope that allocated them.
//  * Only trivially-destructible element types (no destructors run).
//  * One arena per thread (ForThread()); the arena itself is not
//    thread-safe and must not be shared across threads.
#ifndef IPOOL_EXEC_SCRATCH_H_
#define IPOOL_EXEC_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace ipool::exec {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// The calling thread's arena (created on first use, lives until thread
  /// exit). Pool workers and the ParallelFor caller each get their own.
  static ScratchArena& ForThread();

  /// n elements of uninitialized, 64-byte-aligned storage. Pointers stay
  /// valid across later Alloc calls (blocks are never moved), until the
  /// enclosing ScratchScope rolls the arena back.
  template <typename T>
  T* Alloc(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "ScratchArena runs no destructors");
    return static_cast<T*>(AllocBytes(n * sizeof(T)));
  }

  /// Total bytes currently reserved across all blocks (capacity, not use).
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  friend class ScratchScope;
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };
  struct Mark {
    size_t block = 0;
    size_t offset = 0;
  };

  void* AllocBytes(size_t bytes);

  std::vector<Block> blocks_;
  size_t block_ = 0;   // current block index (== blocks_.size() when empty)
  size_t offset_ = 0;  // bump offset within blocks_[block_]
};

/// RAII watermark: everything Alloc'd through the referenced arena after
/// construction is released (capacity retained) on destruction. Scopes nest;
/// destroy in reverse construction order (automatic with stack objects).
class ScratchScope {
 public:
  /// Binds the calling thread's arena.
  ScratchScope() : ScratchScope(ScratchArena::ForThread()) {}
  explicit ScratchScope(ScratchArena& arena)
      : arena_(arena), mark_{arena.block_, arena.offset_} {}
  ~ScratchScope() {
    arena_.block_ = mark_.block;
    arena_.offset_ = mark_.offset;
  }
  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

  template <typename T>
  T* Alloc(size_t n) {
    return arena_.Alloc<T>(n);
  }
  double* Doubles(size_t n) { return arena_.Alloc<double>(n); }
  size_t* Indices(size_t n) { return arena_.Alloc<size_t>(n); }

 private:
  ScratchArena& arena_;
  ScratchArena::Mark mark_;
};

}  // namespace ipool::exec

#endif  // IPOOL_EXEC_SCRATCH_H_
