#include "exec/thread_pool.h"

#include <algorithm>
#include <memory>

#include "common/rng.h"
#include "exec/task_profiler.h"
#include "obs/metrics.h"

namespace ipool::exec {

namespace {

// Owning pool of the current thread when it is a pool worker. Used to run
// nested ParallelFor inline: the outer fan-out already owns the hardware,
// and workers must never block on a task group.
thread_local ThreadPool* t_worker_of = nullptr;

// Worker index within its owning pool; -1 on non-worker threads. Profiler
// records use it to attribute chunks to executors.
thread_local int t_worker_index = -1;

// Innermost ScopedPool installation for this thread.
thread_local ThreadPool* t_current = nullptr;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  slots_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    slots_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task, const char* label) {
  const size_t slot =
      next_slot_.fetch_add(1, std::memory_order_relaxed) % slots_.size();
  TaskItem item;
  item.fn = std::move(task);
  item.label = label;
  item.submit_slot = static_cast<uint32_t>(slot);
  if (TaskProfiler* profiler = profiler_.load(std::memory_order_acquire)) {
    item.enqueue_seconds = profiler->Now();
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(slots_[slot]->mu);
    slots_[slot]->deque.push_back(std::move(item));
  }
  {
    // queued_ is the workers' sleep predicate; updating it under wake_mu_
    // orders the push against a worker's decision to sleep.
    std::lock_guard<std::mutex> lock(wake_mu_);
    queued_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_cv_.notify_one();
}

ThreadPool::TaskItem ThreadPool::TakeTask(size_t self) {
  {
    Worker& own = *slots_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.deque.empty()) {
      TaskItem item = std::move(own.deque.front());
      own.deque.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return item;
    }
  }
  // Steal from the back of a peer's deque (classic Chase-Lev orientation:
  // owners pop the front, thieves the back, minimizing contention).
  for (size_t off = 1; off < slots_.size(); ++off) {
    Worker& victim = *slots_[(self + off) % slots_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.deque.empty()) {
      TaskItem item = std::move(victim.deque.back());
      victim.deque.pop_back();
      item.stolen = true;
      queued_.fetch_sub(1, std::memory_order_relaxed);
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      return item;
    }
  }
  return {};
}

void ThreadPool::WorkerLoop(size_t index) {
  t_worker_of = this;
  t_worker_index = static_cast<int>(index);
  for (;;) {
    TaskItem item = TakeTask(index);
    if (item.fn == nullptr) {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) ||
               queued_.load(std::memory_order_relaxed) > 0;
      });
      if (stop_.load(std::memory_order_acquire)) return;
      continue;
    }
    TaskProfiler* profiler = profiler_.load(std::memory_order_acquire);
    // Record only tasks that were stamped at submit time (a profiler attached
    // mid-flight would otherwise report garbage queue waits).
    if (profiler != nullptr && item.enqueue_seconds >= 0.0) {
      TaskRecord record;
      record.label = item.label;
      record.kind = TaskKind::kTask;
      record.enqueue_seconds = item.enqueue_seconds;
      record.start_seconds = profiler->Now();
      item.fn();
      record.end_seconds = profiler->Now();
      record.submit_slot = item.submit_slot;
      record.run_thread = static_cast<int>(index);
      record.stolen = item.stolen;
      profiler->Record(record);
    } else {
      item.fn();
    }
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      { std::lock_guard<std::mutex> lock(wake_mu_); }
      idle_cv_.notify_all();
    }
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

size_t ThreadPool::QueueDepth() const {
  size_t depth = 0;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    depth += slot->deque.size();
  }
  return depth;
}

void ThreadPool::PublishTo(obs::MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->GetGauge("ipool_exec_threads")
      ->Set(static_cast<double>(num_threads()));
  metrics->GetGauge("ipool_exec_tasks_executed_total")
      ->Set(static_cast<double>(tasks_executed()));
  metrics->GetGauge("ipool_exec_tasks_stolen_total")
      ->Set(static_cast<double>(tasks_stolen()));
  metrics->GetGauge("ipool_exec_queue_depth")
      ->Set(static_cast<double>(QueueDepth()));
}

bool ThreadPool::InWorkerThread() const { return t_worker_of == this; }

ScopedPool::ScopedPool(ThreadPool* pool) : previous_(t_current) {
  t_current = pool;
}

ScopedPool::~ScopedPool() { t_current = previous_; }

ThreadPool* Current() { return t_current; }

std::vector<std::pair<size_t, size_t>> Partition(size_t n, size_t parts) {
  parts = std::max<size_t>(1, std::min(parts, n));
  std::vector<std::pair<size_t, size_t>> ranges;
  if (n == 0) return ranges;
  ranges.reserve(parts);
  const size_t base = n / parts;
  const size_t extra = n % parts;  // first `extra` parts get one more
  size_t begin = 0;
  for (size_t p = 0; p < parts; ++p) {
    const size_t len = base + (p < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + len);
    begin += len;
  }
  return ranges;
}

std::vector<std::pair<size_t, size_t>> CostAwarePartition(const double* costs,
                                                          size_t n,
                                                          size_t parts,
                                                          size_t grain) {
  parts = std::max<size_t>(1, std::min(parts, n));
  grain = std::max<size_t>(1, grain);
  std::vector<std::pair<size_t, size_t>> ranges;
  if (n == 0) return ranges;
  double remaining = 0.0;
  for (size_t i = 0; i < n; ++i) remaining += std::max(0.0, costs[i]);
  if (remaining <= 0.0) return Partition(n, parts);  // no signal: even split
  ranges.reserve(parts);
  size_t begin = 0;
  for (size_t p = 0; p < parts && begin < n; ++p) {
    const size_t parts_left = parts - p;
    size_t end;
    if (parts_left == 1) {
      end = n;
    } else {
      // Close the chunk once it reaches the average remaining cost; always
      // leave one index for each later part so none comes up empty.
      const double target = remaining / static_cast<double>(parts_left);
      const size_t limit = n - (parts_left - 1);
      double acc = 0.0;
      end = begin;
      while (end < limit && (acc < target || end - begin < grain)) {
        acc += std::max(0.0, costs[end]);
        ++end;
      }
      if (end == begin) end = begin + 1;
      remaining = std::max(0.0, remaining - acc);
    }
    ranges.emplace_back(begin, end);
    begin = end;
  }
  return ranges;
}

namespace {

// Shared state of one ParallelFor call. Chunks are claimed from an atomic
// cursor by the submitted drivers and the calling thread alike; the caller
// blocks on `done_cv` only after the cursor is drained.
struct ForGroup {
  std::vector<std::pair<size_t, size_t>> chunks;
  const std::function<void(size_t, size_t)>* body = nullptr;
  std::atomic<size_t> cursor{0};
  std::atomic<size_t> completed{0};
  std::mutex mu;
  std::condition_variable done_cv;
  // Chunk profiling (null when the pool has no profiler attached). Chunks
  // share the fan-out's enqueue time, so a chunk's queue wait measures how
  // long the range sat before an executor reached it.
  TaskProfiler* profiler = nullptr;
  const char* label = "parallel_for";
  double enqueue_seconds = 0.0;

  // Claims and runs chunks until the cursor is exhausted.
  void Drain() {
    for (;;) {
      const size_t idx = cursor.fetch_add(1, std::memory_order_relaxed);
      if (idx >= chunks.size()) return;
      if (profiler != nullptr) {
        TaskRecord record;
        record.label = label;
        record.kind = TaskKind::kChunk;
        record.enqueue_seconds = enqueue_seconds;
        record.start_seconds = profiler->Now();
        (*body)(chunks[idx].first, chunks[idx].second);
        record.end_seconds = profiler->Now();
        record.run_thread = t_worker_index;
        profiler->Record(record);
      } else {
        (*body)(chunks[idx].first, chunks[idx].second);
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          chunks.size()) {
        { std::lock_guard<std::mutex> lock(mu); }
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& body,
                 const ParallelForOptions& options) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t grain = std::max<size_t>(1, options.grain);
  // Serial path: no pool, a tiny range, or a nested call from a worker (the
  // outer fan-out already owns the hardware; blocking a worker on a group
  // could deadlock the pool).
  if (pool == nullptr || n < 2 * grain || t_worker_of != nullptr) {
    body(begin, end);
    return;
  }
  const size_t executors = pool->num_threads() + 1;  // workers + caller
  const size_t chunks_wanted =
      options.chunking == Chunking::kStatic ? executors : 4 * executors;
  const size_t parts = std::min(chunks_wanted, n / grain);
  auto group = std::make_shared<ForGroup>();
  // With a cost model the chunks are already load-balanced, so boundaries
  // come from the costs; without one, fall back to the even split.
  group->chunks = options.costs != nullptr
                      ? CostAwarePartition(options.costs, n, parts, grain)
                      : Partition(n, parts);
  for (auto& range : group->chunks) {
    range.first += begin;
    range.second += begin;
  }
  group->body = &body;
  if (group->chunks.size() == 1) {
    body(begin, end);
    return;
  }
  if (TaskProfiler* profiler = pool->profiler()) {
    group->profiler = profiler;
    group->label = options.label;
    group->enqueue_seconds = profiler->Now();
  }
  // Drivers, not per-chunk tasks: each submitted task drains the shared
  // cursor, so a late-starting worker costs nothing and an idle one steals a
  // whole driver.
  const size_t drivers = std::min(pool->num_threads(), group->chunks.size() - 1);
  for (size_t d = 0; d < drivers; ++d) {
    pool->Submit([group] { group->Drain(); }, options.label);
  }
  group->Drain();  // caller participates
  std::unique_lock<std::mutex> lock(group->mu);
  group->done_cv.wait(lock, [&] {
    return group->completed.load(std::memory_order_acquire) ==
           group->chunks.size();
  });
}

uint64_t DeriveTaskSeed(uint64_t base_seed, uint64_t task_index) {
  // Golden-ratio stride keeps adjacent task indices far apart in the
  // SplitMix64 state space; two mix rounds decorrelate the outputs.
  SplitMix64 mix(base_seed ^ (0x9E3779B97F4A7C15ULL * (task_index + 1)));
  mix.Next();
  return mix.Next();
}

}  // namespace ipool::exec
