// Neural-network building blocks assembled from the autograd ops: dense
// layers, 1-D convolution blocks, layer normalization, multi-head attention
// (for the TST forecaster) and the learnable wavelet decomposition pair (for
// the mWDN forecaster).
#ifndef IPOOL_NN_LAYERS_H_
#define IPOOL_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace ipool::nn {

/// Common interface so optimizers can harvest parameters from any stack of
/// layers.
class Layer {
 public:
  virtual ~Layer() = default;
  /// All trainable parameter tensors (shared handles, not copies).
  virtual std::vector<Tensor> Parameters() const = 0;
};

/// Fully connected layer, weight layout {in, out}.
class Dense : public Layer {
 public:
  Dense(size_t in, size_t out, Rng& rng);

  /// x: {in} -> {out}.
  Tensor Forward(const Tensor& x) const;
  /// x: {m, in} -> {m, out} (row-wise application).
  Tensor ForwardRows(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override { return {weight_, bias_}; }

  size_t in() const { return in_; }
  size_t out() const { return out_; }

 private:
  size_t in_;
  size_t out_;
  Tensor weight_;  // {in, out}
  Tensor bias_;    // {out}
};

/// 1-D convolution (same padding, stride 1) with bias, over {c_in, L} maps.
class Conv1d : public Layer {
 public:
  Conv1d(size_t c_in, size_t c_out, size_t kernel, Rng& rng);

  /// x: {c_in, L} -> {c_out, L}.
  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override { return {weight_, bias_}; }

  size_t kernel() const { return kernel_; }

 private:
  size_t c_in_;
  size_t c_out_;
  size_t kernel_;
  Tensor weight_;  // {c_out, c_in * kernel}
  Tensor bias_;    // {c_out}
};

/// Layer normalization over the last dimension with learned gain/bias.
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(size_t dim);

  /// x: {m, dim} or {dim}.
  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override { return {gain_, bias_}; }

 private:
  size_t dim_;
  Tensor gain_;  // {dim}, ones
  Tensor bias_;  // {dim}, zeros
};

/// Scaled dot-product multi-head self attention over a {L, d_model}
/// sequence. Head projections are stored per head to avoid column slicing.
class MultiHeadAttention : public Layer {
 public:
  MultiHeadAttention(size_t d_model, size_t num_heads, Rng& rng);

  /// x: {L, d_model} -> {L, d_model}.
  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;

  size_t num_heads() const { return num_heads_; }
  size_t head_dim() const { return head_dim_; }

 private:
  size_t d_model_;
  size_t num_heads_;
  size_t head_dim_;
  std::vector<Tensor> wq_, wk_, wv_;  // each {d_model, head_dim}
  Tensor wo_;                         // {num_heads * head_dim, d_model}
};

/// One transformer encoder block: MHA + residual + LayerNorm, then a
/// position-wise feed-forward + residual + LayerNorm (post-norm, as in the
/// original TST formulation).
class TransformerBlock : public Layer {
 public:
  TransformerBlock(size_t d_model, size_t num_heads, size_t ff_dim, Rng& rng);

  /// x: {L, d_model} -> {L, d_model}.
  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;

 private:
  MultiHeadAttention attention_;
  LayerNorm norm1_;
  Dense ff1_;
  Dense ff2_;
  LayerNorm norm2_;
};

/// One level of the multilevel wavelet decomposition network (mWDN): a
/// learnable low-pass / high-pass convolution pair initialized from
/// epsilon-perturbed Daubechies-4 coefficients, sigmoid activations, and
/// dyadic downsampling. Returns (approximation, detail), each {1, ceil(L/2)}.
class WaveletLevel : public Layer {
 public:
  explicit WaveletLevel(Rng& rng);

  struct Output {
    Tensor approximation;
    Tensor detail;
  };
  /// x: {1, L}.
  Output Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;

  static constexpr size_t kFilterLength = 8;

 private:
  Conv1d lowpass_;
  Conv1d highpass_;
};

/// A single-layer LSTM over a sequence, returning the final hidden state.
/// Used by the mWDN forecaster, whose original architecture runs one
/// recurrent network per frequency band. Gates are fused into one
/// {4*hidden, input+hidden} weight; layout i|f|o|g. The forget-gate bias is
/// initialized to 1 (the standard trick for gradient flow).
class Lstm : public Layer {
 public:
  Lstm(size_t input_dim, size_t hidden_dim, Rng& rng);

  /// seq: {len, input_dim} (rows are time steps) -> final hidden {hidden}.
  Tensor ForwardSequence(const Tensor& seq) const;

  std::vector<Tensor> Parameters() const override { return {weight_, bias_}; }

  size_t hidden_dim() const { return hidden_dim_; }

 private:
  size_t input_dim_;
  size_t hidden_dim_;
  Tensor weight_;  // {4*hidden, input+hidden}
  Tensor bias_;    // {4*hidden}
};

/// Fixed (non-trainable) sinusoidal positional encoding, {len, d_model}.
Tensor SinusoidalPositionalEncoding(size_t len, size_t d_model);

/// Collects parameters from several layers into one flat list.
std::vector<Tensor> CollectParameters(
    std::initializer_list<const Layer*> layers);

}  // namespace ipool::nn

#endif  // IPOOL_NN_LAYERS_H_
