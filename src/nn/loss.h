// Training losses. AsymmetricLoss is the paper's Eq 12: an over/undershoot
// weighted absolute error that lets a forecaster deliberately overshoot
// demand (lower customer wait time at the cost of idle clusters) or
// undershoot it, controlled by alpha'.
#ifndef IPOOL_NN_LOSS_H_
#define IPOOL_NN_LOSS_H_

#include "nn/ops.h"
#include "nn/tensor.h"

namespace ipool::nn {

/// Eq 12: alpha' * mean(relu(y - yhat)) + (1 - alpha') * mean(relu(yhat - y)).
/// alpha' > 0.5 punishes underprediction harder (forecast overshoots, wait
/// time drops); alpha' < 0.5 punishes overprediction (idle cost drops).
Tensor AsymmetricLoss(const Tensor& prediction, const Tensor& target,
                      double alpha_prime);

/// Mean squared error, for symmetric baselines and unit tests.
Tensor MseLoss(const Tensor& prediction, const Tensor& target);

}  // namespace ipool::nn

#endif  // IPOOL_NN_LOSS_H_
