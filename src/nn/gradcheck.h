// Numeric gradient checking: the correctness oracle for every op and layer.
// Compares reverse-mode gradients against central finite differences.
#ifndef IPOOL_NN_GRADCHECK_H_
#define IPOOL_NN_GRADCHECK_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace ipool::nn {

struct GradCheckReport {
  /// Largest |analytic - numeric| / max(1, |numeric|) over all checked
  /// parameter elements.
  double max_relative_error = 0.0;
  size_t elements_checked = 0;
};

/// Evaluates `forward` (which must rebuild the graph from `params` each call
/// and return a scalar tensor), backprops once for analytic gradients, then
/// perturbs every element of every parameter by +/- `epsilon` for the
/// numeric estimate.
Result<GradCheckReport> CheckGradients(
    const std::function<Tensor()>& forward, std::vector<Tensor> params,
    double epsilon = 1e-6);

}  // namespace ipool::nn

#endif  // IPOOL_NN_GRADCHECK_H_
