#include "nn/optimizer.h"

#include <cmath>

namespace ipool::nn {

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) {
    p.impl()->EnsureGrad();
    std::fill(p.mutable_grad().begin(), p.mutable_grad().end(), 0.0);
  }
}

void Sgd::Step() {
  for (Tensor& p : params_) {
    p.impl()->EnsureGrad();
    auto& value = p.mutable_value();
    const auto& grad = p.grad();
    for (size_t i = 0; i < value.size(); ++i) value[i] -= lr_ * grad[i];
  }
}

Adam::Adam(std::vector<Tensor> params, double lr, double beta1, double beta2,
           double epsilon)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    m_.emplace_back(p.size(), 0.0);
    v_.emplace_back(p.size(), 0.0);
  }
}

void Adam::Step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& p = params_[pi];
    p.impl()->EnsureGrad();
    auto& value = p.mutable_value();
    const auto& grad = p.grad();
    auto& m = m_[pi];
    auto& v = v_[pi];
    for (size_t i = 0; i < value.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0 - beta1_) * grad[i];
      v[i] = beta2_ * v[i] + (1.0 - beta2_) * grad[i] * grad[i];
      const double mhat = m[i] / bias1;
      const double vhat = v[i] / bias2;
      value[i] -= lr_ * mhat / (std::sqrt(vhat) + epsilon_);
    }
  }
}

}  // namespace ipool::nn
