#include "nn/tensor.h"

#include <cmath>
#include <unordered_set>

#include "common/strings.h"

namespace ipool::nn {

size_t NumElements(const Shape& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

bool SameShape(const Shape& a, const Shape& b) { return a == b; }

std::string ShapeToString(const Shape& shape) {
  std::vector<std::string> dims;
  dims.reserve(shape.size());
  for (size_t d : shape) dims.push_back(StrFormat("%zu", d));
  return "[" + Join(dims, ", ") + "]";
}

void TensorImpl::EnsureGrad() {
  if (grad.size() != value.size()) grad.assign(value.size(), 0.0);
}

Tensor Tensor::FromVector(std::vector<double> values, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = {values.size()};
  impl->value = std::move(values);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromMatrix(size_t rows, size_t cols, std::vector<double> values,
                          bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = {rows, cols};
  impl->value = std::move(values);
  impl->value.resize(rows * cols, 0.0);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  return Full(shape, 0.0, requires_grad);
}

Tensor Tensor::Full(const Shape& shape, double fill, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->value.assign(NumElements(shape), fill);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Glorot(const Shape& shape, Rng& rng, double gain) {
  const size_t fan_in = shape.size() == 2 ? shape[1] : shape[0];
  const size_t fan_out = shape[0];
  const double limit =
      gain * std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  Tensor t = Zeros(shape, /*requires_grad=*/true);
  for (double& v : t.mutable_value()) v = rng.Uniform(-limit, limit);
  return t;
}

Status Tensor::Backward() {
  if (!defined()) return Status::FailedPrecondition("Backward on undefined tensor");
  if (size() != 1) {
    return Status::FailedPrecondition(
        StrFormat("Backward requires scalar output, got shape %s",
                  ShapeToString(shape()).c_str()));
  }

  // Iterative post-order DFS to get a topological order (children first).
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      TensorImpl* p = f.node->parents[f.next_parent++].get();
      if (visited.insert(p).second) stack.push_back({p, 0});
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }

  for (TensorImpl* node : order) node->EnsureGrad();
  impl_->grad[0] = 1.0;

  // order is children-before-parents; iterate outputs-first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward) node->backward(*node);
  }
  return Status::OK();
}

Tensor Tensor::Detach() const {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->value = impl_->value;
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

Tensor MakeNode(Shape shape, std::vector<std::shared_ptr<TensorImpl>> parents,
                std::function<void(TensorImpl&)> backward) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->value.assign(NumElements(impl->shape), 0.0);
  bool needs_grad = false;
  for (const auto& p : parents) needs_grad = needs_grad || p->requires_grad;
  impl->requires_grad = needs_grad;
  if (needs_grad) {
    impl->parents = std::move(parents);
    impl->backward = std::move(backward);
  }
  return Tensor(std::move(impl));
}

}  // namespace ipool::nn
