#include "nn/gradcheck.h"

#include <cmath>

namespace ipool::nn {

Result<GradCheckReport> CheckGradients(
    const std::function<Tensor()>& forward, std::vector<Tensor> params,
    double epsilon) {
  // Analytic pass.
  for (Tensor& p : params) {
    p.impl()->EnsureGrad();
    std::fill(p.mutable_grad().begin(), p.mutable_grad().end(), 0.0);
  }
  Tensor out = forward();
  if (!out.defined() || out.size() != 1) {
    return Status::InvalidArgument("forward must return a scalar tensor");
  }
  IPOOL_RETURN_NOT_OK(out.Backward());

  std::vector<std::vector<double>> analytic;
  analytic.reserve(params.size());
  for (Tensor& p : params) analytic.push_back(p.grad());

  GradCheckReport report;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& p = params[pi];
    for (size_t i = 0; i < p.size(); ++i) {
      const double original = p.value()[i];
      p.mutable_value()[i] = original + epsilon;
      const double plus = forward().scalar();
      p.mutable_value()[i] = original - epsilon;
      const double minus = forward().scalar();
      p.mutable_value()[i] = original;
      const double numeric = (plus - minus) / (2.0 * epsilon);
      const double err = std::fabs(analytic[pi][i] - numeric) /
                         std::max(1.0, std::fabs(numeric));
      report.max_relative_error = std::max(report.max_relative_error, err);
      ++report.elements_checked;
    }
  }
  return report;
}

}  // namespace ipool::nn
