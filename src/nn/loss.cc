#include "nn/loss.h"

#include "common/check.h"

namespace ipool::nn {

Tensor AsymmetricLoss(const Tensor& prediction, const Tensor& target,
                      double alpha_prime) {
  IPOOL_CHECK(alpha_prime >= 0.0 && alpha_prime <= 1.0, "alpha' out of [0,1]");
  Tensor delta = Sub(target, prediction);  // positive = underprediction
  Tensor under = MeanAll(Relu(delta));
  Tensor over = MeanAll(Relu(Neg(delta)));
  return Add(MulScalar(under, alpha_prime), MulScalar(over, 1.0 - alpha_prime));
}

Tensor MseLoss(const Tensor& prediction, const Tensor& target) {
  Tensor delta = Sub(prediction, target);
  return MeanAll(Mul(delta, delta));
}

}  // namespace ipool::nn
