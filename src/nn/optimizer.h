// First-order optimizers over a fixed parameter list. The trainer calls
// ZeroGrad(), accumulates gradients over a mini-batch (one backward pass per
// sample), then Step().
#ifndef IPOOL_NN_OPTIMIZER_H_
#define IPOOL_NN_OPTIMIZER_H_

#include <vector>

#include "nn/tensor.h"

namespace ipool::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Clears accumulated gradients on all parameters.
  void ZeroGrad();

  /// Applies one update from the currently accumulated gradients.
  virtual void Step() = 0;

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, double lr) : Optimizer(std::move(params)), lr_(lr) {}
  void Step() override;

 private:
  double lr_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double epsilon = 1e-8);
  void Step() override;

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double epsilon_;
  int64_t t_ = 0;
  std::vector<std::vector<double>> m_;
  std::vector<std::vector<double>> v_;
};

}  // namespace ipool::nn

#endif  // IPOOL_NN_OPTIMIZER_H_
