// A small reverse-mode automatic differentiation engine. Each op builds a
// node in a dynamic computation graph; Backward() on a scalar output
// topologically sorts the graph and accumulates gradients into every tensor
// with requires_grad set (model parameters).
//
// The engine supports rank-1/2 double tensors, which is all the forecasting
// models here need: deep models process one window sample at a time and
// mini-batching is done by gradient accumulation in the trainer. This keeps
// every op simple enough to verify with the numeric grad-checker in
// nn/gradcheck.h.
#ifndef IPOOL_NN_TENSOR_H_
#define IPOOL_NN_TENSOR_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace ipool::nn {

/// Tensor shape; rank 1 ({n}) or rank 2 ({rows, cols}).
using Shape = std::vector<size_t>;

size_t NumElements(const Shape& shape);
bool SameShape(const Shape& a, const Shape& b);
std::string ShapeToString(const Shape& shape);

struct TensorImpl {
  Shape shape;
  std::vector<double> value;
  std::vector<double> grad;  // allocated lazily by Backward()
  bool requires_grad = false;

  std::vector<std::shared_ptr<TensorImpl>> parents;
  /// Pushes this node's grad into parents' grads. Null for leaves.
  std::function<void(TensorImpl&)> backward;

  size_t rows() const { return shape.empty() ? 0 : shape[0]; }
  size_t cols() const { return shape.size() < 2 ? 1 : shape[1]; }
  void EnsureGrad();
};

/// Value-semantics handle to a graph node. Copies share the node.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  /// Leaf constructors -------------------------------------------------
  static Tensor FromVector(std::vector<double> values,
                           bool requires_grad = false);
  static Tensor FromMatrix(size_t rows, size_t cols,
                           std::vector<double> values,
                           bool requires_grad = false);
  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  static Tensor Full(const Shape& shape, double fill,
                     bool requires_grad = false);
  /// Xavier/Glorot uniform init for a parameter of the given shape.
  static Tensor Glorot(const Shape& shape, Rng& rng, double gain = 1.0);

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const { return impl_->shape; }
  size_t size() const { return impl_->value.size(); }
  size_t rows() const { return impl_->rows(); }
  size_t cols() const { return impl_->cols(); }
  bool requires_grad() const { return impl_->requires_grad; }

  const std::vector<double>& value() const { return impl_->value; }
  std::vector<double>& mutable_value() { return impl_->value; }
  const std::vector<double>& grad() const { return impl_->grad; }
  std::vector<double>& mutable_grad() { return impl_->grad; }

  /// Scalar accessor; valid when size() == 1.
  double scalar() const { return impl_->value[0]; }

  std::shared_ptr<TensorImpl> impl() const { return impl_; }

  /// Runs reverse-mode autodiff from this scalar node. Gradients accumulate
  /// (callers zero parameter grads between steps via Optimizer/ZeroGrad).
  Status Backward();

  /// Drops graph history (parents/backward), keeping value. Used to detach
  /// SSA output before feeding the hybrid corrector.
  Tensor Detach() const;

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Creates an interior node wired to its parents.
Tensor MakeNode(Shape shape, std::vector<std::shared_ptr<TensorImpl>> parents,
                std::function<void(TensorImpl&)> backward);

}  // namespace ipool::nn

#endif  // IPOOL_NN_TENSOR_H_
