#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "exec/scratch.h"
#include "exec/thread_pool.h"
#include "linalg/simd_kernels.h"

namespace ipool::nn {

namespace {

using ImplPtr = std::shared_ptr<TensorImpl>;

// Row blocks below this many multiply-adds are not worth a dispatch; the
// ParallelFor grain is sized so every chunk clears it.
constexpr size_t kMinFlopsPerChunk = 16 * 1024;

size_t RowGrain(size_t flops_per_row) {
  return std::max<size_t>(1, kMinFlopsPerChunk / std::max<size_t>(1, flops_per_row));
}

// C (m x n) = A (m x k) * B (k x n), B packed transposed so each output
// element is one contiguous dot product. Row-blocked over the ambient
// thread pool (exec::Current()); each task owns a disjoint block of C rows
// and accumulates over kk in ascending order, so results are bit-identical
// to the serial loop at any thread count.
void MatMulForward(const double* a, const double* b, double* c, size_t m,
                   size_t k, size_t n) {
  // The packed B^T lives in the calling thread's scratch arena: training
  // loops call this every step, and the arena hands back the same bytes
  // each time instead of a fresh heap allocation.
  exec::ScratchScope scratch;
  double* bt = scratch.Doubles(n * k);
  for (size_t kk = 0; kk < k; ++kk) {
    for (size_t j = 0; j < n; ++j) bt[j * k + kk] = b[kk * n + j];
  }
  exec::ParallelFor(
      exec::Current(), 0, m,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          const double* arow = a + i * k;
          for (size_t j = 0; j < n; ++j) {
            c[i * n + j] = simd::Dot(arow, bt + j * k, k);
          }
        }
      },
      {exec::Chunking::kDynamic, RowGrain(k * n)});
}

// dA += dC * B^T and dB += A^T * dC, each phase row-blocked over the rows it
// owns (dA over i, dB over kk), so no two tasks touch the same gradient slot
// and the per-element accumulation order never depends on the thread count.
void MatMulBackward(const TensorImpl& self, TensorImpl& a, TensorImpl& b,
                    size_t m, size_t k, size_t n) {
  const double* g = self.grad.data();
  const double* av = a.value.data();
  const double* bv = b.value.data();
  double* ga = a.grad.data();
  double* gb = b.grad.data();
  exec::ParallelFor(
      exec::Current(), 0, m,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          const double* grow = g + i * n;
          for (size_t kk = 0; kk < k; ++kk) {
            ga[i * k + kk] += simd::Dot(grow, bv + kk * n, n);
          }
        }
      },
      {exec::Chunking::kDynamic, RowGrain(k * n)});
  exec::ParallelFor(
      exec::Current(), 0, k,
      [&](size_t lo, size_t hi) {
        for (size_t kk = lo; kk < hi; ++kk) {
          double* gbrow = gb + kk * n;
          for (size_t i = 0; i < m; ++i) {
            const double aik = av[i * k + kk];
            if (aik == 0.0) continue;
            simd::MulAdd(gbrow, g + i * n, aik, n);
          }
        }
      },
      {exec::Chunking::kDynamic, RowGrain(m * n)});
}

// Shorthand for unary elementwise ops: out[i] = f(a[i]),
// da[i] += dout[i] * dfda(a[i], out[i]).
Tensor UnaryElementwise(const Tensor& a, double (*f)(double),
                        double (*dfda)(double /*x*/, double /*y*/)) {
  ImplPtr pa = a.impl();
  Tensor out = MakeNode(a.shape(), {pa}, [pa, dfda](TensorImpl& self) {
    for (size_t i = 0; i < self.value.size(); ++i) {
      pa->grad[i] += self.grad[i] * dfda(pa->value[i], self.value[i]);
    }
  });
  auto& v = out.mutable_value();
  for (size_t i = 0; i < v.size(); ++i) v[i] = f(a.value()[i]);
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  IPOOL_CHECK(SameShape(a.shape(), b.shape()), "Add shape mismatch");
  ImplPtr pa = a.impl(), pb = b.impl();
  Tensor out = MakeNode(a.shape(), {pa, pb}, [pa, pb](TensorImpl& self) {
    for (size_t i = 0; i < self.value.size(); ++i) {
      pa->grad[i] += self.grad[i];
      pb->grad[i] += self.grad[i];
    }
  });
  auto& v = out.mutable_value();
  for (size_t i = 0; i < v.size(); ++i) v[i] = a.value()[i] + b.value()[i];
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  IPOOL_CHECK(SameShape(a.shape(), b.shape()), "Sub shape mismatch");
  ImplPtr pa = a.impl(), pb = b.impl();
  Tensor out = MakeNode(a.shape(), {pa, pb}, [pa, pb](TensorImpl& self) {
    for (size_t i = 0; i < self.value.size(); ++i) {
      pa->grad[i] += self.grad[i];
      pb->grad[i] -= self.grad[i];
    }
  });
  auto& v = out.mutable_value();
  for (size_t i = 0; i < v.size(); ++i) v[i] = a.value()[i] - b.value()[i];
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  IPOOL_CHECK(SameShape(a.shape(), b.shape()), "Mul shape mismatch");
  ImplPtr pa = a.impl(), pb = b.impl();
  Tensor out = MakeNode(a.shape(), {pa, pb}, [pa, pb](TensorImpl& self) {
    for (size_t i = 0; i < self.value.size(); ++i) {
      pa->grad[i] += self.grad[i] * pb->value[i];
      pb->grad[i] += self.grad[i] * pa->value[i];
    }
  });
  auto& v = out.mutable_value();
  for (size_t i = 0; i < v.size(); ++i) v[i] = a.value()[i] * b.value()[i];
  return out;
}

Tensor AddScalar(const Tensor& a, double s) {
  ImplPtr pa = a.impl();
  Tensor out = MakeNode(a.shape(), {pa}, [pa](TensorImpl& self) {
    for (size_t i = 0; i < self.value.size(); ++i) pa->grad[i] += self.grad[i];
  });
  auto& v = out.mutable_value();
  for (size_t i = 0; i < v.size(); ++i) v[i] = a.value()[i] + s;
  return out;
}

Tensor MulScalar(const Tensor& a, double s) {
  ImplPtr pa = a.impl();
  Tensor out = MakeNode(a.shape(), {pa}, [pa, s](TensorImpl& self) {
    for (size_t i = 0; i < self.value.size(); ++i) {
      pa->grad[i] += self.grad[i] * s;
    }
  });
  auto& v = out.mutable_value();
  for (size_t i = 0; i < v.size(); ++i) v[i] = a.value()[i] * s;
  return out;
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0); }

Tensor Relu(const Tensor& a) {
  return UnaryElementwise(
      a, [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryElementwise(
      a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      [](double, double y) { return y * (1.0 - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryElementwise(a, [](double x) { return std::tanh(x); },
                          [](double, double y) { return 1.0 - y * y; });
}

Tensor Exp(const Tensor& a) {
  return UnaryElementwise(a, [](double x) { return std::exp(x); },
                          [](double, double y) { return y; });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryElementwise(a, [](double x) { return std::sqrt(x); },
                          [](double, double y) { return 0.5 / y; });
}

Tensor RowBroadcastAdd(const Tensor& a, const Tensor& v) {
  IPOOL_CHECK(a.shape().size() == 2 && v.shape().size() == 1 &&
                  a.cols() == v.size(),
              "RowBroadcastAdd shape mismatch");
  ImplPtr pa = a.impl(), pv = v.impl();
  const size_t n = a.cols();
  Tensor out = MakeNode(a.shape(), {pa, pv}, [pa, pv, n](TensorImpl& self) {
    for (size_t i = 0; i < self.value.size(); ++i) {
      pa->grad[i] += self.grad[i];
      pv->grad[i % n] += self.grad[i];
    }
  });
  auto& o = out.mutable_value();
  for (size_t i = 0; i < o.size(); ++i) o[i] = a.value()[i] + v.value()[i % n];
  return out;
}

Tensor RowBroadcastMul(const Tensor& a, const Tensor& v) {
  IPOOL_CHECK(a.shape().size() == 2 && v.shape().size() == 1 &&
                  a.cols() == v.size(),
              "RowBroadcastMul shape mismatch");
  ImplPtr pa = a.impl(), pv = v.impl();
  const size_t n = a.cols();
  Tensor out = MakeNode(a.shape(), {pa, pv}, [pa, pv, n](TensorImpl& self) {
    for (size_t i = 0; i < self.value.size(); ++i) {
      pa->grad[i] += self.grad[i] * pv->value[i % n];
      pv->grad[i % n] += self.grad[i] * pa->value[i];
    }
  });
  auto& o = out.mutable_value();
  for (size_t i = 0; i < o.size(); ++i) o[i] = a.value()[i] * v.value()[i % n];
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  IPOOL_CHECK(a.shape().size() == 2 && b.shape().size() == 2 &&
                  a.cols() == b.rows(),
              "MatMul shape mismatch");
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  ImplPtr pa = a.impl(), pb = b.impl();
  Tensor out =
      MakeNode({m, n}, {pa, pb}, [pa, pb, m, k, n](TensorImpl& self) {
        MatMulBackward(self, *pa, *pb, m, k, n);
      });
  MatMulForward(a.value().data(), b.value().data(),
                out.mutable_value().data(), m, k, n);
  return out;
}

Tensor MatVec(const Tensor& w, const Tensor& x) {
  IPOOL_CHECK(w.shape().size() == 2 && x.shape().size() == 1 &&
                  w.cols() == x.size(),
              "MatVec shape mismatch");
  const size_t m = w.rows(), n = w.cols();
  ImplPtr pw = w.impl(), px = x.impl();
  Tensor out = MakeNode({m}, {pw, px}, [pw, px, m, n](TensorImpl& self) {
    for (size_t i = 0; i < m; ++i) {
      const double g = self.grad[i];
      if (g == 0.0) continue;
      // Two disjoint axpys; each gradient slot keeps its historical
      // accumulation order, so this is bit-identical to the fused loop.
      simd::MulAdd(pw->grad.data() + i * n, px->value.data(), g, n);
      simd::MulAdd(px->grad.data(), pw->value.data() + i * n, g, n);
    }
  });
  auto& o = out.mutable_value();
  for (size_t i = 0; i < m; ++i) {
    o[i] = simd::Dot(w.value().data() + i * n, x.value().data(), n);
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  IPOOL_CHECK(a.shape().size() == 2, "Transpose requires rank-2");
  const size_t m = a.rows(), n = a.cols();
  ImplPtr pa = a.impl();
  Tensor out = MakeNode({n, m}, {pa}, [pa, m, n](TensorImpl& self) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < m; ++j) {
        pa->grad[j * n + i] += self.grad[i * m + j];
      }
    }
  });
  auto& o = out.mutable_value();
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) o[j * m + i] = a.value()[i * n + j];
  }
  return out;
}

Tensor SumAll(const Tensor& a) {
  ImplPtr pa = a.impl();
  Tensor out = MakeNode({1}, {pa}, [pa](TensorImpl& self) {
    for (double& g : pa->grad) g += self.grad[0];
  });
  double acc = 0.0;
  for (double v : a.value()) acc += v;
  out.mutable_value()[0] = acc;
  return out;
}

Tensor MeanAll(const Tensor& a) {
  IPOOL_CHECK(a.size() > 0, "MeanAll on empty tensor");
  return MulScalar(SumAll(a), 1.0 / static_cast<double>(a.size()));
}

Tensor MeanRows(const Tensor& a) {
  IPOOL_CHECK(a.shape().size() == 2 && a.cols() > 0, "MeanRows requires rank-2");
  const size_t m = a.rows(), n = a.cols();
  ImplPtr pa = a.impl();
  Tensor out = MakeNode({m}, {pa}, [pa, m, n](TensorImpl& self) {
    const double inv = 1.0 / static_cast<double>(n);
    for (size_t i = 0; i < m; ++i) {
      const double g = self.grad[i] * inv;
      for (size_t j = 0; j < n; ++j) pa->grad[i * n + j] += g;
    }
  });
  auto& o = out.mutable_value();
  for (size_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < n; ++j) acc += a.value()[i * n + j];
    o[i] = acc / static_cast<double>(n);
  }
  return out;
}

Tensor Reshape(const Tensor& a, Shape shape) {
  IPOOL_CHECK(NumElements(shape) == a.size(), "Reshape element count mismatch");
  ImplPtr pa = a.impl();
  Tensor out = MakeNode(shape, {pa}, [pa](TensorImpl& self) {
    for (size_t i = 0; i < self.value.size(); ++i) pa->grad[i] += self.grad[i];
  });
  out.mutable_value() = a.value();
  return out;
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  IPOOL_CHECK(a.shape().size() == 2 && b.shape().size() == 2 &&
                  a.cols() == b.cols(),
              "ConcatRows shape mismatch");
  const size_t na = a.size();
  ImplPtr pa = a.impl(), pb = b.impl();
  Tensor out =
      MakeNode({a.rows() + b.rows(), a.cols()}, {pa, pb},
               [pa, pb, na](TensorImpl& self) {
                 for (size_t i = 0; i < na; ++i) pa->grad[i] += self.grad[i];
                 for (size_t i = na; i < self.value.size(); ++i) {
                   pb->grad[i - na] += self.grad[i];
                 }
               });
  auto& o = out.mutable_value();
  std::copy(a.value().begin(), a.value().end(), o.begin());
  std::copy(b.value().begin(), b.value().end(), o.begin() + static_cast<ptrdiff_t>(na));
  return out;
}

Tensor ConcatVec(const Tensor& a, const Tensor& b) {
  IPOOL_CHECK(a.shape().size() == 1 && b.shape().size() == 1,
              "ConcatVec requires rank-1");
  const size_t na = a.size();
  ImplPtr pa = a.impl(), pb = b.impl();
  Tensor out = MakeNode({na + b.size()}, {pa, pb}, [pa, pb, na](TensorImpl& self) {
    for (size_t i = 0; i < na; ++i) pa->grad[i] += self.grad[i];
    for (size_t i = na; i < self.value.size(); ++i) {
      pb->grad[i - na] += self.grad[i];
    }
  });
  auto& o = out.mutable_value();
  std::copy(a.value().begin(), a.value().end(), o.begin());
  std::copy(b.value().begin(), b.value().end(), o.begin() + static_cast<ptrdiff_t>(na));
  return out;
}

Tensor SliceVec(const Tensor& a, size_t begin, size_t end) {
  IPOOL_CHECK(a.shape().size() == 1 && begin <= end && end <= a.size(),
              "SliceVec out of range");
  ImplPtr pa = a.impl();
  Tensor out = MakeNode({end - begin}, {pa}, [pa, begin](TensorImpl& self) {
    for (size_t i = 0; i < self.value.size(); ++i) {
      pa->grad[begin + i] += self.grad[i];
    }
  });
  auto& o = out.mutable_value();
  for (size_t i = 0; i < o.size(); ++i) o[i] = a.value()[begin + i];
  return out;
}

Tensor DownsampleRows2(const Tensor& a) {
  IPOOL_CHECK(a.shape().size() == 2 && a.cols() > 0,
              "DownsampleRows2 requires rank-2");
  const size_t m = a.rows(), n = a.cols();
  const size_t half = (n + 1) / 2;
  ImplPtr pa = a.impl();
  Tensor out = MakeNode({m, half}, {pa}, [pa, m, n, half](TensorImpl& self) {
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < half; ++j) {
        pa->grad[i * n + 2 * j] += self.grad[i * half + j];
      }
    }
  });
  auto& o = out.mutable_value();
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < half; ++j) o[i * half + j] = a.value()[i * n + 2 * j];
  }
  return out;
}

Tensor SoftmaxRows(const Tensor& a) {
  const bool rank1 = a.shape().size() == 1;
  const size_t m = rank1 ? 1 : a.rows();
  const size_t n = rank1 ? a.size() : a.cols();
  IPOOL_CHECK(n > 0, "SoftmaxRows on empty rows");
  ImplPtr pa = a.impl();
  Tensor out = MakeNode(a.shape(), {pa}, [pa, m, n](TensorImpl& self) {
    // dx_j = y_j * (dy_j - sum_k dy_k y_k), per row.
    for (size_t i = 0; i < m; ++i) {
      double dot = 0.0;
      for (size_t j = 0; j < n; ++j) {
        dot += self.grad[i * n + j] * self.value[i * n + j];
      }
      for (size_t j = 0; j < n; ++j) {
        pa->grad[i * n + j] +=
            self.value[i * n + j] * (self.grad[i * n + j] - dot);
      }
    }
  });
  auto& o = out.mutable_value();
  for (size_t i = 0; i < m; ++i) {
    double mx = a.value()[i * n];
    for (size_t j = 1; j < n; ++j) mx = std::max(mx, a.value()[i * n + j]);
    double denom = 0.0;
    for (size_t j = 0; j < n; ++j) {
      o[i * n + j] = std::exp(a.value()[i * n + j] - mx);
      denom += o[i * n + j];
    }
    for (size_t j = 0; j < n; ++j) o[i * n + j] /= denom;
  }
  return out;
}

Tensor NormalizeRows(const Tensor& a, double epsilon) {
  const bool rank1 = a.shape().size() == 1;
  const size_t m = rank1 ? 1 : a.rows();
  const size_t n = rank1 ? a.size() : a.cols();
  IPOOL_CHECK(n > 0, "NormalizeRows on empty rows");
  ImplPtr pa = a.impl();

  // Precompute per-row mean and inverse stddev; shared with backward.
  auto mean = std::make_shared<std::vector<double>>(m);
  auto inv_std = std::make_shared<std::vector<double>>(m);
  for (size_t i = 0; i < m; ++i) {
    double mu = 0.0;
    for (size_t j = 0; j < n; ++j) mu += a.value()[i * n + j];
    mu /= static_cast<double>(n);
    double var = 0.0;
    for (size_t j = 0; j < n; ++j) {
      const double d = a.value()[i * n + j] - mu;
      var += d * d;
    }
    var /= static_cast<double>(n);
    (*mean)[i] = mu;
    (*inv_std)[i] = 1.0 / std::sqrt(var + epsilon);
  }

  Tensor out =
      MakeNode(a.shape(), {pa}, [pa, m, n, inv_std](TensorImpl& self) {
        // With y = (x - mu) * s where s = 1/sqrt(var + eps):
        // dx_j = s * (dy_j - mean(dy) - y_j * mean(dy * y)).
        for (size_t i = 0; i < m; ++i) {
          double gmean = 0.0, gy = 0.0;
          for (size_t j = 0; j < n; ++j) {
            gmean += self.grad[i * n + j];
            gy += self.grad[i * n + j] * self.value[i * n + j];
          }
          gmean /= static_cast<double>(n);
          gy /= static_cast<double>(n);
          for (size_t j = 0; j < n; ++j) {
            pa->grad[i * n + j] +=
                (*inv_std)[i] *
                (self.grad[i * n + j] - gmean - self.value[i * n + j] * gy);
          }
        }
      });
  auto& o = out.mutable_value();
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      o[i * n + j] = (a.value()[i * n + j] - (*mean)[i]) * (*inv_std)[i];
    }
  }
  return out;
}

Tensor Conv1dSame(const Tensor& input, const Tensor& weight, size_t kernel) {
  IPOOL_CHECK(input.shape().size() == 2 && weight.shape().size() == 2,
              "Conv1dSame requires rank-2 input and weight");
  const size_t c_in = input.rows(), len = input.cols();
  const size_t c_out = weight.rows();
  IPOOL_CHECK(weight.cols() == c_in * kernel, "Conv1dSame weight layout");
  const size_t pad = kernel / 2;
  ImplPtr pin = input.impl(), pw = weight.impl();
  Tensor out = MakeNode(
      {c_out, len}, {pin, pw},
      [pin, pw, c_in, c_out, len, kernel, pad](TensorImpl& self) {
        for (size_t o = 0; o < c_out; ++o) {
          for (size_t t = 0; t < len; ++t) {
            const double g = self.grad[o * len + t];
            if (g == 0.0) continue;
            // Valid taps are the contiguous run k in [k0, k1): both the
            // weight row and the (shifted) input row advance by one per tap.
            const size_t k0 = pad > t ? pad - t : 0;
            const size_t k1 = std::min(kernel, len + pad - t);
            if (k0 >= k1) continue;
            const size_t src0 = t + k0 - pad;
            for (size_t c = 0; c < c_in; ++c) {
              const size_t widx = o * (c_in * kernel) + c * kernel + k0;
              simd::MulAdd(pin->grad.data() + c * len + src0,
                           pw->value.data() + widx, g, k1 - k0);
              simd::MulAdd(pw->grad.data() + widx,
                           pin->value.data() + c * len + src0, g, k1 - k0);
            }
          }
        }
      });
  auto& ov = out.mutable_value();
  for (size_t o = 0; o < c_out; ++o) {
    for (size_t t = 0; t < len; ++t) {
      const size_t k0 = pad > t ? pad - t : 0;
      const size_t k1 = std::min(kernel, len + pad - t);
      const size_t src0 = t + k0 - pad;
      double acc = 0.0;
      for (size_t c = 0; c < c_in && k0 < k1; ++c) {
        acc += simd::Dot(
            weight.value().data() + o * (c_in * kernel) + c * kernel + k0,
            input.value().data() + c * len + src0, k1 - k0);
      }
      ov[o * len + t] = acc;
    }
  }
  return out;
}

Tensor MaxPool1dSame(const Tensor& a, size_t kernel) {
  IPOOL_CHECK(a.shape().size() == 2 && kernel > 0,
              "MaxPool1dSame requires rank-2");
  const size_t m = a.rows(), n = a.cols();
  const size_t pad = kernel / 2;
  ImplPtr pa = a.impl();
  // argmax indices recorded at forward time for the backward route.
  auto argmax = std::make_shared<std::vector<size_t>>(m * n);
  Tensor out = MakeNode({m, n}, {pa}, [pa, argmax](TensorImpl& self) {
    for (size_t i = 0; i < self.value.size(); ++i) {
      pa->grad[(*argmax)[i]] += self.grad[i];
    }
  });
  auto& o = out.mutable_value();
  for (size_t i = 0; i < m; ++i) {
    for (size_t t = 0; t < n; ++t) {
      double best = -1e300;
      size_t best_idx = i * n + t;
      for (size_t k = 0; k < kernel; ++k) {
        const ptrdiff_t src =
            static_cast<ptrdiff_t>(t + k) - static_cast<ptrdiff_t>(pad);
        if (src < 0 || src >= static_cast<ptrdiff_t>(n)) continue;
        const size_t idx = i * n + static_cast<size_t>(src);
        if (a.value()[idx] > best) {
          best = a.value()[idx];
          best_idx = idx;
        }
      }
      o[i * n + t] = best;
      (*argmax)[i * n + t] = best_idx;
    }
  }
  return out;
}

}  // namespace ipool::nn
