// Differentiable operations over Tensor. Shape preconditions are programming
// errors and are enforced with IPOOL_CHECK; model-level configuration is
// validated with Status at construction time in nn/layers.h and the
// forecasters.
//
// Conventions:
//  * rank-1 tensors are column vectors of length n, shape {n};
//  * rank-2 tensors are row-major matrices, shape {rows, cols};
//  * "Rows" variants treat each row of a rank-2 tensor independently.
#ifndef IPOOL_NN_OPS_H_
#define IPOOL_NN_OPS_H_

#include "nn/tensor.h"

namespace ipool::nn {

// ---- elementwise ----------------------------------------------------------
Tensor Add(const Tensor& a, const Tensor& b);        // same shape
Tensor Sub(const Tensor& a, const Tensor& b);        // same shape
Tensor Mul(const Tensor& a, const Tensor& b);        // same shape (Hadamard)
Tensor AddScalar(const Tensor& a, double s);
Tensor MulScalar(const Tensor& a, double s);
Tensor Neg(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Sqrt(const Tensor& a);  // elementwise; input must be positive

// ---- broadcasting over rows (bias-style) ----------------------------------
/// a: {m, n}, v: {n}; adds v to every row.
Tensor RowBroadcastAdd(const Tensor& a, const Tensor& v);
/// a: {m, n}, v: {n}; multiplies every row elementwise by v.
Tensor RowBroadcastMul(const Tensor& a, const Tensor& v);

// ---- linear algebra --------------------------------------------------------
/// a: {m, k}, b: {k, n} -> {m, n}.
Tensor MatMul(const Tensor& a, const Tensor& b);
/// w: {m, n}, x: {n} -> {m}.
Tensor MatVec(const Tensor& w, const Tensor& x);
/// {m, n} -> {n, m}.
Tensor Transpose(const Tensor& a);

// ---- reductions ------------------------------------------------------------
Tensor SumAll(const Tensor& a);   // -> scalar {1}
Tensor MeanAll(const Tensor& a);  // -> scalar {1}
/// {m, n} -> {m}: mean over each row (global average pooling over length
/// when rows are channels).
Tensor MeanRows(const Tensor& a);

// ---- shape ------------------------------------------------------------------
/// Reinterprets the buffer with a new shape of equal element count.
Tensor Reshape(const Tensor& a, Shape shape);
/// Stacks two rank-2 tensors with equal cols along rows: {m1+m2, n}.
Tensor ConcatRows(const Tensor& a, const Tensor& b);
/// Concatenates two rank-1 tensors.
Tensor ConcatVec(const Tensor& a, const Tensor& b);
/// Rank-1 slice [begin, end).
Tensor SliceVec(const Tensor& a, size_t begin, size_t end);
/// Keeps every second element of each row (even indices): {m, ceil(n/2)}.
/// This is the dyadic downsampling step of the wavelet decomposition.
Tensor DownsampleRows2(const Tensor& a);

// ---- nonlinarities over rows -----------------------------------------------
/// Softmax over each row of a rank-2 tensor (or over the whole rank-1
/// vector). Numerically stabilized by row-max subtraction.
Tensor SoftmaxRows(const Tensor& a);
/// Normalizes each row to zero mean / unit variance (epsilon-guarded).
/// Affine gain/bias are applied by the LayerNorm layer via broadcasts.
Tensor NormalizeRows(const Tensor& a, double epsilon = 1e-5);

// ---- convolution / pooling --------------------------------------------------
/// 1-D convolution with "same" zero padding and stride 1.
/// input: {c_in, len}; weight: {c_out, c_in * k}; -> {c_out, len}.
/// Row o of weight holds the kernel for output channel o laid out as
/// [c_in][k].
Tensor Conv1dSame(const Tensor& input, const Tensor& weight, size_t kernel);
/// Max pooling over each row with "same" padding and stride 1 (window k).
Tensor MaxPool1dSame(const Tensor& a, size_t kernel);

}  // namespace ipool::nn

#endif  // IPOOL_NN_OPS_H_
