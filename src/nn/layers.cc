#include "nn/layers.h"

#include <cmath>

#include "common/check.h"

namespace ipool::nn {

Dense::Dense(size_t in, size_t out, Rng& rng)
    : in_(in),
      out_(out),
      weight_(Tensor::Glorot({in, out}, rng)),
      bias_(Tensor::Zeros({out}, /*requires_grad=*/true)) {}

Tensor Dense::Forward(const Tensor& x) const {
  IPOOL_CHECK(x.shape().size() == 1 && x.size() == in_, "Dense input shape");
  Tensor row = Reshape(x, {1, in_});
  Tensor y = RowBroadcastAdd(MatMul(row, weight_), bias_);
  return Reshape(y, {out_});
}

Tensor Dense::ForwardRows(const Tensor& x) const {
  IPOOL_CHECK(x.shape().size() == 2 && x.cols() == in_, "Dense rows input");
  return RowBroadcastAdd(MatMul(x, weight_), bias_);
}

Conv1d::Conv1d(size_t c_in, size_t c_out, size_t kernel, Rng& rng)
    : c_in_(c_in), c_out_(c_out), kernel_(kernel) {
  // He-style fan-in init suited to the ReLU/sigmoid activations downstream.
  const double limit = std::sqrt(6.0 / static_cast<double>(c_in * kernel + c_out));
  weight_ = Tensor::Zeros({c_out, c_in * kernel}, /*requires_grad=*/true);
  for (double& v : weight_.mutable_value()) v = rng.Uniform(-limit, limit);
  bias_ = Tensor::Zeros({c_out}, /*requires_grad=*/true);
}

Tensor Conv1d::Forward(const Tensor& x) const {
  IPOOL_CHECK(x.shape().size() == 2 && x.rows() == c_in_, "Conv1d input shape");
  Tensor y = Conv1dSame(x, weight_, kernel_);
  // Bias per output channel: broadcast over length via transpose round-trip.
  Tensor yt = Transpose(y);                      // {L, c_out}
  Tensor biased = RowBroadcastAdd(yt, bias_);    // add bias to each time step
  return Transpose(biased);                      // {c_out, L}
}

LayerNorm::LayerNorm(size_t dim)
    : dim_(dim),
      gain_(Tensor::Full({dim}, 1.0, /*requires_grad=*/true)),
      bias_(Tensor::Zeros({dim}, /*requires_grad=*/true)) {}

Tensor LayerNorm::Forward(const Tensor& x) const {
  const bool rank1 = x.shape().size() == 1;
  IPOOL_CHECK((rank1 ? x.size() : x.cols()) == dim_, "LayerNorm input shape");
  if (rank1) {
    Tensor row = Reshape(x, {1, dim_});
    Tensor y = RowBroadcastAdd(
        RowBroadcastMul(NormalizeRows(row), gain_), bias_);
    return Reshape(y, {dim_});
  }
  return RowBroadcastAdd(RowBroadcastMul(NormalizeRows(x), gain_), bias_);
}

MultiHeadAttention::MultiHeadAttention(size_t d_model, size_t num_heads,
                                       Rng& rng)
    : d_model_(d_model),
      num_heads_(num_heads),
      head_dim_(d_model / num_heads) {
  IPOOL_CHECK(num_heads > 0 && d_model % num_heads == 0,
              "d_model must be divisible by num_heads");
  for (size_t h = 0; h < num_heads_; ++h) {
    wq_.push_back(Tensor::Glorot({d_model_, head_dim_}, rng));
    wk_.push_back(Tensor::Glorot({d_model_, head_dim_}, rng));
    wv_.push_back(Tensor::Glorot({d_model_, head_dim_}, rng));
  }
  wo_ = Tensor::Glorot({num_heads_ * head_dim_, d_model_}, rng);
}

Tensor MultiHeadAttention::Forward(const Tensor& x) const {
  IPOOL_CHECK(x.shape().size() == 2 && x.cols() == d_model_,
              "MultiHeadAttention input shape");
  const double scale = 1.0 / std::sqrt(static_cast<double>(head_dim_));

  // Build {head_dim, L} outputs and stack them along rows, then transpose
  // back to {L, num_heads * head_dim}. Avoids a column-concat op.
  Tensor stacked;  // {h * head_dim, L}
  for (size_t h = 0; h < num_heads_; ++h) {
    Tensor q = MatMul(x, wq_[h]);  // {L, hd}
    Tensor k = MatMul(x, wk_[h]);  // {L, hd}
    Tensor v = MatMul(x, wv_[h]);  // {L, hd}
    Tensor scores = MulScalar(MatMul(q, Transpose(k)), scale);  // {L, L}
    Tensor attn = SoftmaxRows(scores);
    Tensor head = Transpose(MatMul(attn, v));  // {hd, L}
    stacked = h == 0 ? head : ConcatRows(stacked, head);
  }
  Tensor merged = Transpose(stacked);  // {L, h * hd}
  return MatMul(merged, wo_);
}

std::vector<Tensor> MultiHeadAttention::Parameters() const {
  std::vector<Tensor> params;
  for (size_t h = 0; h < num_heads_; ++h) {
    params.push_back(wq_[h]);
    params.push_back(wk_[h]);
    params.push_back(wv_[h]);
  }
  params.push_back(wo_);
  return params;
}

TransformerBlock::TransformerBlock(size_t d_model, size_t num_heads,
                                   size_t ff_dim, Rng& rng)
    : attention_(d_model, num_heads, rng),
      norm1_(d_model),
      ff1_(d_model, ff_dim, rng),
      ff2_(ff_dim, d_model, rng),
      norm2_(d_model) {}

Tensor TransformerBlock::Forward(const Tensor& x) const {
  Tensor attended = norm1_.Forward(Add(x, attention_.Forward(x)));
  Tensor ff = ff2_.ForwardRows(Relu(ff1_.ForwardRows(attended)));
  return norm2_.Forward(Add(attended, ff));
}

std::vector<Tensor> TransformerBlock::Parameters() const {
  return CollectParameters({&attention_, &norm1_, &ff1_, &ff2_, &norm2_});
}

namespace {

// Daubechies-4 low-pass decomposition coefficients (length 8). The
// corresponding high-pass filter is the quadrature mirror.
constexpr double kDb4Lowpass[WaveletLevel::kFilterLength] = {
    -0.0105974018, 0.0328830117, 0.0308413818, -0.1870348117,
    -0.0279837694, 0.6308807679, 0.7148465706, 0.2303778133};

}  // namespace

WaveletLevel::WaveletLevel(Rng& rng)
    : lowpass_(1, 1, kFilterLength, rng), highpass_(1, 1, kFilterLength, rng) {
  // Re-initialize the filters to epsilon-perturbed db4 coefficients, the
  // mWDN paper's trick to start from a true wavelet transform while keeping
  // the filters trainable.
  Tensor low_w = lowpass_.Parameters()[0];
  Tensor high_w = highpass_.Parameters()[0];
  for (size_t k = 0; k < kFilterLength; ++k) {
    const double eps_l = rng.Normal(0.0, 0.01);
    const double eps_h = rng.Normal(0.0, 0.01);
    low_w.mutable_value()[k] = kDb4Lowpass[k] + eps_l;
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    high_w.mutable_value()[k] =
        sign * kDb4Lowpass[kFilterLength - 1 - k] + eps_h;
  }
}

WaveletLevel::Output WaveletLevel::Forward(const Tensor& x) const {
  Output out;
  out.approximation = DownsampleRows2(Sigmoid(lowpass_.Forward(x)));
  out.detail = DownsampleRows2(Sigmoid(highpass_.Forward(x)));
  return out;
}

std::vector<Tensor> WaveletLevel::Parameters() const {
  return CollectParameters({&lowpass_, &highpass_});
}

Lstm::Lstm(size_t input_dim, size_t hidden_dim, Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      weight_(Tensor::Glorot({4 * hidden_dim, input_dim + hidden_dim}, rng)),
      bias_(Tensor::Zeros({4 * hidden_dim}, /*requires_grad=*/true)) {
  IPOOL_CHECK(input_dim > 0 && hidden_dim > 0, "Lstm dims must be positive");
  // Forget-gate bias starts at 1 so early training does not erase state.
  for (size_t i = hidden_dim_; i < 2 * hidden_dim_; ++i) {
    bias_.mutable_value()[i] = 1.0;
  }
}

Tensor Lstm::ForwardSequence(const Tensor& seq) const {
  IPOOL_CHECK(seq.shape().size() == 2 && seq.cols() == input_dim_,
              "Lstm input shape");
  const size_t len = seq.rows();
  Tensor flat = Reshape(seq, {len * input_dim_});
  Tensor h = Tensor::Zeros({hidden_dim_});
  Tensor c = Tensor::Zeros({hidden_dim_});
  for (size_t t = 0; t < len; ++t) {
    Tensor x = SliceVec(flat, t * input_dim_, (t + 1) * input_dim_);
    Tensor xh = ConcatVec(x, h);
    Tensor z = Add(MatVec(weight_, xh), bias_);
    Tensor i_gate = Sigmoid(SliceVec(z, 0, hidden_dim_));
    Tensor f_gate = Sigmoid(SliceVec(z, hidden_dim_, 2 * hidden_dim_));
    Tensor o_gate = Sigmoid(SliceVec(z, 2 * hidden_dim_, 3 * hidden_dim_));
    Tensor g_gate = Tanh(SliceVec(z, 3 * hidden_dim_, 4 * hidden_dim_));
    c = Add(Mul(f_gate, c), Mul(i_gate, g_gate));
    h = Mul(o_gate, Tanh(c));
  }
  return h;
}

Tensor SinusoidalPositionalEncoding(size_t len, size_t d_model) {
  Tensor pe = Tensor::Zeros({len, d_model});
  auto& v = pe.mutable_value();
  for (size_t pos = 0; pos < len; ++pos) {
    for (size_t i = 0; i < d_model; ++i) {
      const double exponent =
          static_cast<double>(2 * (i / 2)) / static_cast<double>(d_model);
      const double angle =
          static_cast<double>(pos) / std::pow(10000.0, exponent);
      v[pos * d_model + i] = (i % 2 == 0) ? std::sin(angle) : std::cos(angle);
    }
  }
  return pe;
}

std::vector<Tensor> CollectParameters(
    std::initializer_list<const Layer*> layers) {
  std::vector<Tensor> params;
  for (const Layer* layer : layers) {
    auto p = layer->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

}  // namespace ipool::nn
