#include "solver/simplex.h"

#include <cmath>
#include <limits>

#include "common/strings.h"

namespace ipool {

Status LpProblem::Validate() const {
  if (num_vars == 0) return Status::InvalidArgument("LP has no variables");
  if (objective.size() != num_vars) {
    return Status::InvalidArgument(
        StrFormat("objective size %zu != num_vars %zu", objective.size(),
                  num_vars));
  }
  for (size_t i = 0; i < constraints.size(); ++i) {
    for (const auto& [var, coeff] : constraints[i].terms) {
      if (var >= num_vars) {
        return Status::InvalidArgument(
            StrFormat("constraint %zu references variable %zu out of %zu", i,
                      var, num_vars));
      }
      if (!std::isfinite(coeff)) {
        return Status::InvalidArgument("non-finite constraint coefficient");
      }
    }
    if (!std::isfinite(constraints[i].rhs)) {
      return Status::InvalidArgument("non-finite constraint rhs");
    }
  }
  return Status::OK();
}

namespace {

// Dense tableau: rows = constraints, cols = all variables + rhs.
class Tableau {
 public:
  Tableau(size_t rows, size_t cols) : cols_(cols), data_(rows * cols, 0.0) {}

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  size_t rows() const { return data_.size() / cols_; }
  size_t cols() const { return cols_; }

  void Pivot(size_t pivot_row, size_t pivot_col) {
    const double pivot = at(pivot_row, pivot_col);
    for (size_t c = 0; c < cols_; ++c) at(pivot_row, c) /= pivot;
    for (size_t r = 0; r < rows(); ++r) {
      if (r == pivot_row) continue;
      const double factor = at(r, pivot_col);
      if (factor == 0.0) continue;
      for (size_t c = 0; c < cols_; ++c) {
        at(r, c) -= factor * at(pivot_row, c);
      }
    }
  }

 private:
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace

Result<LpSolution> SimplexSolver::Solve(const LpProblem& problem) const {
  IPOOL_RETURN_NOT_OK(problem.Validate());
  const double tol = options_.tolerance;
  const size_t n = problem.num_vars;
  const size_t m = problem.constraints.size();

  // Column layout: [original n][slack/surplus per inequality][artificials].
  size_t num_slack = 0;
  for (const auto& c : problem.constraints) {
    if (c.type != ConstraintType::kEqual) ++num_slack;
  }
  // Worst case every row needs an artificial.
  const size_t slack_base = n;
  const size_t art_base = n + num_slack;
  const size_t total_cols = art_base + m + 1;  // +1 for rhs
  const size_t rhs_col = total_cols - 1;

  Tableau tab(m, total_cols);
  std::vector<size_t> basis(m);
  size_t slack_idx = 0;
  size_t num_art = 0;
  std::vector<size_t> artificial_cols;

  for (size_t i = 0; i < m; ++i) {
    const LpConstraint& c = problem.constraints[i];
    double sign = 1.0;
    ConstraintType type = c.type;
    if (c.rhs < 0.0) {
      sign = -1.0;
      if (type == ConstraintType::kLessEqual) {
        type = ConstraintType::kGreaterEqual;
      } else if (type == ConstraintType::kGreaterEqual) {
        type = ConstraintType::kLessEqual;
      }
    }
    for (const auto& [var, coeff] : c.terms) {
      tab.at(i, var) += sign * coeff;
    }
    tab.at(i, rhs_col) = sign * c.rhs;

    if (type == ConstraintType::kLessEqual) {
      const size_t col = slack_base + slack_idx++;
      tab.at(i, col) = 1.0;
      basis[i] = col;
    } else if (type == ConstraintType::kGreaterEqual) {
      const size_t scol = slack_base + slack_idx++;
      tab.at(i, scol) = -1.0;
      const size_t acol = art_base + num_art++;
      tab.at(i, acol) = 1.0;
      artificial_cols.push_back(acol);
      basis[i] = acol;
    } else {
      const size_t acol = art_base + num_art++;
      tab.at(i, acol) = 1.0;
      artificial_cols.push_back(acol);
      basis[i] = acol;
    }
  }

  const size_t num_structural = art_base;  // original + slack columns
  std::vector<bool> is_artificial(total_cols, false);
  for (size_t col : artificial_cols) is_artificial[col] = true;

  size_t iterations = 0;

  // Runs simplex iterations for the given cost vector (indexed over all
  // columns except rhs). `allow` masks which columns may enter the basis.
  auto run_phase = [&](const std::vector<double>& cost,
                       const std::vector<bool>& allow) -> Status {
    // Reduced-cost row: z[j] = cost[j] - sum_i cost[basis_i] * tab[i][j].
    std::vector<double> z(total_cols, 0.0);
    auto recompute_z = [&]() {
      for (size_t j = 0; j < rhs_col; ++j) {
        double acc = cost[j];
        for (size_t i = 0; i < m; ++i) {
          const double cb = cost[basis[i]];
          if (cb != 0.0) acc -= cb * tab.at(i, j);
        }
        z[j] = acc;
      }
    };
    recompute_z();

    while (true) {
      if (++iterations > options_.max_iterations) {
        return Status::DeadlineExceeded("simplex iteration cap reached");
      }
      // Bland's rule: smallest-index column with negative reduced cost.
      size_t enter = total_cols;
      for (size_t j = 0; j < rhs_col; ++j) {
        if (!allow[j]) continue;
        if (z[j] < -tol) {
          enter = j;
          break;
        }
      }
      if (enter == total_cols) return Status::OK();  // optimal

      // Ratio test, Bland tie-break on basis index.
      size_t leave = m;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < m; ++i) {
        const double a = tab.at(i, enter);
        if (a > tol) {
          const double ratio = tab.at(i, rhs_col) / a;
          if (ratio < best_ratio - tol ||
              (std::fabs(ratio - best_ratio) <= tol &&
               (leave == m || basis[i] < basis[leave]))) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == m) {
        return Status::OutOfRange("LP is unbounded");
      }
      tab.Pivot(leave, enter);
      basis[leave] = enter;
      // Incremental update of z: z -= z[enter] * (pivot row).
      const double ze = z[enter];
      if (ze != 0.0) {
        for (size_t j = 0; j < rhs_col; ++j) z[j] -= ze * tab.at(leave, j);
      }
      z[enter] = 0.0;  // numerically exact
    }
  };

  // Phase 1: drive artificials to zero.
  if (num_art > 0) {
    std::vector<double> phase1_cost(total_cols, 0.0);
    for (size_t col : artificial_cols) phase1_cost[col] = 1.0;
    std::vector<bool> allow(total_cols, true);
    IPOOL_RETURN_NOT_OK(run_phase(phase1_cost, allow));

    double infeasibility = 0.0;
    for (size_t i = 0; i < m; ++i) {
      if (is_artificial[basis[i]]) infeasibility += tab.at(i, rhs_col);
    }
    if (infeasibility > 1e-6) {
      return Status::FailedPrecondition(
          StrFormat("LP infeasible (phase-1 objective %g)", infeasibility));
    }
    // Pivot any zero-valued artificial out of the basis where possible so
    // phase 2 starts from a clean structural basis.
    for (size_t i = 0; i < m; ++i) {
      if (!is_artificial[basis[i]]) continue;
      for (size_t j = 0; j < num_structural; ++j) {
        if (std::fabs(tab.at(i, j)) > tol) {
          tab.Pivot(i, j);
          basis[i] = j;
          break;
        }
      }
      // If the row is all-zero across structural columns it is redundant;
      // the artificial stays basic at value zero and is barred from phase 2.
    }
  }

  // Phase 2: original objective; artificials may not re-enter.
  std::vector<double> phase2_cost(total_cols, 0.0);
  for (size_t j = 0; j < n; ++j) phase2_cost[j] = problem.objective[j];
  std::vector<bool> allow(total_cols, true);
  for (size_t col : artificial_cols) allow[col] = false;
  IPOOL_RETURN_NOT_OK(run_phase(phase2_cost, allow));

  LpSolution solution;
  solution.x.assign(n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    if (basis[i] < n) solution.x[basis[i]] = tab.at(i, rhs_col);
  }
  double obj = 0.0;
  for (size_t j = 0; j < n; ++j) obj += problem.objective[j] * solution.x[j];
  solution.objective = obj;
  solution.iterations = iterations;
  return solution;
}

}  // namespace ipool
