// The Sample Average Approximation (SAA) optimizer of §4.2: chooses the
// target pool size N(t) minimizing
//     alpha' * sum_t Delta+(t)  +  (1 - alpha') * sum_t Delta-(t)
// subject to Eqs 1-11 (re-hydration lag tau, pool-size bounds, STABLENESS
// blocks, ramp limit), where Delta+ is idle clusters and Delta- queued
// demand.
//
// Two interchangeable solution paths:
//  * OptimizeLp  — the faithful LP formulation solved with the dense
//    simplex (what the paper hands to a commercial solver);
//  * Optimize    — an exact dynamic program that exploits the LP's block
//    structure: with N constant per block, the objective separates into
//    per-block piecewise-linear convex costs over the integer pool size,
//    coupled only by the ramp constraint. The DP scans blocks left to right
//    with a suffix-min over the previous block's states.
// Tests assert both paths agree (the LP relaxation is tight at integer
// demand counts).
#ifndef IPOOL_SOLVER_SAA_OPTIMIZER_H_
#define IPOOL_SOLVER_SAA_OPTIMIZER_H_

#include <vector>

#include "common/status.h"
#include "exec/thread_pool.h"
#include "obs/obs_context.h"
#include "solver/pool_model.h"
#include "solver/simplex.h"
#include "tsdata/time_series.h"

namespace ipool {

struct SaaConfig {
  PoolModelConfig pool;
  /// Eq 16 trade-off knob in [0, 1]: weight on idle time (Delta+). Larger
  /// alpha' shrinks the pool (cheaper, slower); smaller alpha' grows it.
  double alpha_prime = 0.5;
  /// Observability sink (optional): every solve records an
  /// `ipool_solve_seconds` histogram sample, a "solve" span and (on the LP
  /// path) the simplex iteration count.
  ObsContext obs;

  Status Validate() const;
};

class SaaOptimizer {
 public:
  static Result<SaaOptimizer> Create(const SaaConfig& config);

  /// Exact block DP over integer pool sizes. O(bins + blocks * sizes).
  Result<PoolSchedule> Optimize(const TimeSeries& demand) const;

  /// §4.2's simplified periodic policy: one pool-size template per
  /// time-of-period slot (e.g. period_bins = 2880 for a daily template),
  /// optimal across all occurrences in the sample. period_bins must be a
  /// multiple of stableness_bins and no longer than the demand.
  Result<PoolSchedule> OptimizePeriodic(const TimeSeries& demand,
                                        size_t period_bins) const;

  /// LP formulation (Eqs 4-11) via two-phase simplex. Intended for small
  /// instances and cross-validation; cost grows quickly with bins.
  Result<PoolSchedule> OptimizeLp(const TimeSeries& demand) const;

  /// Builds the LP without solving it (exposed for tests/inspection).
  /// Variable layout: [Delta+ (T), Delta- (T), N_b (num blocks)].
  Result<LpProblem> BuildLp(const TimeSeries& demand) const;

  const SaaConfig& config() const { return config_; }

 private:
  explicit SaaOptimizer(const SaaConfig& config) : config_(config) {}

  /// w_t = D(t) - D(t - tau): demand arriving during the in-flight window
  /// attributed to the block supplying bin t's ready clusters.
  std::vector<double> InFlightDemand(const TimeSeries& demand) const;

  /// Same computation written into caller-provided storage (demand.size()
  /// doubles) so hot paths can point it at per-thread scratch.
  void InFlightDemandInto(const TimeSeries& demand, double* out) const;

  /// Shared exact DP over grouped in-flight demand in flattened form: group
  /// g's values are values[offsets[g], offsets[g+1]). Returns the optimal
  /// integer pool size per group (ramp-constrained between consecutive
  /// groups) and the objective value. All DP working storage lives in the
  /// calling thread's scratch arena, so sweep bodies solving thousands of
  /// candidates stop allocating after their first iteration.
  std::pair<std::vector<int64_t>, double> SolveGroupedDp(
      const double* values, const size_t* offsets, size_t num_groups) const;

  SaaConfig config_;
};

/// One point of the wait-time / idle-time trade-off curve (Fig 5).
struct ParetoPoint {
  double alpha_prime = 0.0;
  PoolMetrics metrics;
};

/// Solves the SAA program for each alpha' against `planning_demand` and
/// evaluates the schedule against `actual_demand` (they differ when planning
/// uses a forecast). Series must share bin count and width.
///
/// `obs` is threaded into every per-alpha solve (metrics always; the tracer
/// only on the serial path, since obs::Tracer is single-threaded). `exec`
/// fans the alphas out over the pool when one is wired in; the returned
/// points are in alpha order and bit-identical to the serial sweep.
Result<std::vector<ParetoPoint>> SweepPareto(
    const TimeSeries& planning_demand, const TimeSeries& actual_demand,
    const PoolModelConfig& pool_config, const std::vector<double>& alphas,
    const ObsContext& obs = {}, const exec::ExecContext& exec = {});

}  // namespace ipool

#endif  // IPOOL_SOLVER_SAA_OPTIMIZER_H_
