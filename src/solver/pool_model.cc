#include "solver/pool_model.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace ipool {

Status PoolModelConfig::Validate() const {
  if (stableness_bins == 0) {
    return Status::InvalidArgument("stableness_bins must be >= 1");
  }
  if (min_pool_size < 0) {
    return Status::InvalidArgument("min_pool_size must be non-negative");
  }
  if (max_pool_size < min_pool_size) {
    return Status::InvalidArgument(StrFormat(
        "max_pool_size %ld < min_pool_size %ld", max_pool_size, min_pool_size));
  }
  if (max_new_requests_per_bin < 0) {
    return Status::InvalidArgument("max_new_requests_per_bin must be >= 0");
  }
  return Status::OK();
}

size_t PoolModelConfig::NumBlocks(size_t num_bins) const {
  return (num_bins + stableness_bins - 1) / stableness_bins;
}

std::vector<int64_t> ExpandBlockSchedule(const std::vector<int64_t>& per_block,
                                         size_t num_bins,
                                         size_t stableness_bins) {
  std::vector<int64_t> out(num_bins, 0);
  for (size_t t = 0; t < num_bins; ++t) {
    const size_t b = std::min(t / stableness_bins, per_block.size() - 1);
    out[t] = per_block[b];
  }
  return out;
}

Result<PoolMetrics> EvaluateSchedule(const TimeSeries& demand,
                                     const std::vector<int64_t>& schedule,
                                     const PoolModelConfig& config) {
  IPOOL_RETURN_NOT_OK(config.Validate());
  const size_t num_bins = demand.size();
  if (schedule.size() != num_bins) {
    return Status::InvalidArgument(
        StrFormat("schedule size %zu != demand size %zu", schedule.size(),
                  num_bins));
  }
  if (num_bins == 0) return Status::InvalidArgument("empty demand");
  const double interval = demand.interval();
  const size_t tau = config.tau_bins;

  // Cumulative demand D(t) and clusters-ready A'(t) per §4.1.
  std::vector<double> cum_demand(num_bins);
  double running = 0.0;
  for (size_t t = 0; t < num_bins; ++t) {
    running += demand.value(t);
    cum_demand[t] = running;
  }
  std::vector<double> ready(num_bins);
  for (size_t t = 0; t < num_bins; ++t) {
    if (t < tau) {
      // Before the first re-hydration completes, only the initial pool is
      // ready: A'(t) = N(0).
      ready[t] = static_cast<double>(schedule[0]);
    } else {
      ready[t] =
          cum_demand[t - tau] + static_cast<double>(schedule[t - tau]);
    }
  }

  PoolMetrics metrics;
  double idle_area = 0.0;
  double wait_area = 0.0;
  for (size_t t = 0; t < num_bins; ++t) {
    const double gap = ready[t] - cum_demand[t];
    if (gap > 0.0) {
      idle_area += gap;
    } else {
      wait_area -= gap;
    }
  }
  metrics.idle_cluster_seconds = idle_area * interval;
  metrics.wait_request_seconds = wait_area * interval;

  // Per-request FCFS wait: request k (1-based) arrives in the first bin with
  // D >= k and is served by the k-th ready cluster (first bin with A' >= k).
  const int64_t total_requests = static_cast<int64_t>(std::llround(running));
  metrics.total_requests = total_requests;
  double capped_wait = 0.0;
  int64_t hits = 0;
  double total_wait = 0.0;
  {
    size_t arrive_bin = 0;
    size_t ready_bin = 0;
    for (int64_t k = 1; k <= total_requests; ++k) {
      const double kd = static_cast<double>(k);
      while (arrive_bin < num_bins && cum_demand[arrive_bin] < kd) ++arrive_bin;
      while (ready_bin < num_bins && ready[ready_bin] < kd) ++ready_bin;
      size_t served_bin;
      if (ready_bin >= num_bins) {
        // Never enough pooled clusters within the horizon: the request goes
        // on-demand and waits the full startup latency.
        served_bin = arrive_bin + tau;
      } else {
        served_bin = std::max(ready_bin, arrive_bin);
      }
      const double wait_bins =
          static_cast<double>(served_bin - arrive_bin);
      total_wait += wait_bins * interval;
      capped_wait += std::min(wait_bins, static_cast<double>(tau)) * interval;
      if (served_bin == arrive_bin) ++hits;
    }
  }
  metrics.pool_hits = hits;
  metrics.hit_rate = total_requests > 0
                         ? static_cast<double>(hits) /
                               static_cast<double>(total_requests)
                         : 1.0;
  metrics.avg_wait_seconds =
      total_requests > 0 ? total_wait / static_cast<double>(total_requests)
                         : 0.0;
  metrics.wait_request_seconds_capped = capped_wait;
  metrics.avg_wait_seconds_capped =
      total_requests > 0 ? capped_wait / static_cast<double>(total_requests)
                         : 0.0;

  double pool_sum = 0.0;
  double pool_max = 0.0;
  for (int64_t n : schedule) {
    pool_sum += static_cast<double>(n);
    pool_max = std::max(pool_max, static_cast<double>(n));
  }
  metrics.avg_pool_size = pool_sum / static_cast<double>(num_bins);
  metrics.max_pool_size = pool_max;
  return metrics;
}

}  // namespace ipool
