#include "solver/saa_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ipool {

namespace {

// Shared solve instrumentation: times the whole solve into
// `ipool_solve_seconds{path=...}` and counts solved blocks.
class SolveScope {
 public:
  SolveScope(const ObsContext& obs, const char* path)
      : span_(obs.tracer, "solve"),
        timer_(obs.metrics != nullptr
                   ? obs.metrics->GetHistogram("ipool_solve_seconds",
                                               {{"path", path}})
                   : nullptr),
        obs_(obs) {}

  void RecordBlocks(size_t blocks) {
    if (obs_.metrics != nullptr) {
      obs_.metrics->GetCounter("ipool_solve_blocks_total")->Add(blocks);
    }
  }

 private:
  obs::ScopedSpan span_;
  obs::ScopedTimer timer_;
  ObsContext obs_;
};

}  // namespace

Status SaaConfig::Validate() const {
  IPOOL_RETURN_NOT_OK(pool.Validate());
  if (alpha_prime < 0.0 || alpha_prime > 1.0) {
    return Status::InvalidArgument(
        StrFormat("alpha_prime must be in [0,1], got %g", alpha_prime));
  }
  return Status::OK();
}

Result<SaaOptimizer> SaaOptimizer::Create(const SaaConfig& config) {
  IPOOL_RETURN_NOT_OK(config.Validate());
  return SaaOptimizer(config);
}

std::vector<double> SaaOptimizer::InFlightDemand(
    const TimeSeries& demand) const {
  const size_t num_bins = demand.size();
  const size_t tau = config_.pool.tau_bins;
  std::vector<double> cum(num_bins);
  double running = 0.0;
  for (size_t t = 0; t < num_bins; ++t) {
    running += demand.value(t);
    cum[t] = running;
  }
  std::vector<double> w(num_bins);
  for (size_t t = 0; t < num_bins; ++t) {
    // For t < tau nothing re-hydrated has landed yet, so the ready side is
    // the initial pool N(0) and the full cumulative demand weighs on it.
    w[t] = t < tau ? cum[t] : cum[t] - cum[t - tau];
  }
  return w;
}

std::pair<std::vector<int64_t>, double> SaaOptimizer::SolveGroupedDp(
    const std::vector<std::vector<double>>& group_w) const {
  const PoolModelConfig& pool = config_.pool;
  const size_t num_groups = group_w.size();
  const int64_t min_n = pool.min_pool_size;
  const int64_t max_n = pool.max_pool_size;
  const size_t num_sizes = static_cast<size_t>(max_n - min_n + 1);
  const double alpha = config_.alpha_prime;

  // Per-group piecewise-linear convex cost over the integer pool size:
  // g(N) = sum_w alpha * max(0, N - w) + (1 - alpha) * max(0, w - N).
  // Computed for all N via sorted w + prefix sums. The sorted-w, prefix and
  // cost buffers are hoisted out of the per-group call and reused (their
  // capacity stabilizes after the largest group), keeping the DP
  // allocation-free past the first few groups.
  std::vector<double> cost(num_sizes, 0.0);
  std::vector<double> ws;
  std::vector<double> prefix;
  auto group_cost = [&](size_t g) {
    ws.assign(group_w[g].begin(), group_w[g].end());
    std::sort(ws.begin(), ws.end());
    prefix.resize(ws.size() + 1);
    prefix[0] = 0.0;
    for (size_t i = 0; i < ws.size(); ++i) prefix[i + 1] = prefix[i] + ws[i];
    const double total = prefix[ws.size()];
    size_t below = 0;  // count of ws <= N
    for (size_t s = 0; s < num_sizes; ++s) {
      const double n = static_cast<double>(min_n + static_cast<int64_t>(s));
      while (below < ws.size() && ws[below] <= n) ++below;
      const double cnt_below = static_cast<double>(below);
      const double sum_below = prefix[below];
      const double cnt_above = static_cast<double>(ws.size()) - cnt_below;
      const double sum_above = total - sum_below;
      cost[s] = alpha * (n * cnt_below - sum_below) +
                (1.0 - alpha) * (sum_above - n * cnt_above);
    }
  };

  // DP over groups. f[s] = best cost through group g ending at size s.
  const int64_t ramp = pool.max_new_requests_per_bin;
  group_cost(0);
  std::vector<double> f = cost;
  std::vector<std::vector<size_t>> choice(num_groups);  // predecessor index
  for (size_t g = 1; g < num_groups; ++g) {
    // suffix_min[s] = argmin/valmin of f over indices >= s (ties -> smallest
    // index, i.e. smallest predecessor pool size).
    std::vector<double> suffix_val(num_sizes);
    std::vector<size_t> suffix_arg(num_sizes);
    suffix_val[num_sizes - 1] = f[num_sizes - 1];
    suffix_arg[num_sizes - 1] = num_sizes - 1;
    for (size_t s = num_sizes - 1; s-- > 0;) {
      if (f[s] <= suffix_val[s + 1]) {
        suffix_val[s] = f[s];
        suffix_arg[s] = s;
      } else {
        suffix_val[s] = suffix_val[s + 1];
        suffix_arg[s] = suffix_arg[s + 1];
      }
    }
    group_cost(g);
    std::vector<double> next(num_sizes);
    choice[g].resize(num_sizes);
    for (size_t s = 0; s < num_sizes; ++s) {
      // Ramp limits the *increase* N_g - N_{g-1} <= ramp, so the predecessor
      // index must be >= s - ramp.
      const int64_t lo = static_cast<int64_t>(s) - ramp;
      const size_t from = lo <= 0 ? 0 : static_cast<size_t>(lo);
      next[s] = cost[s] + suffix_val[from];
      choice[g][s] = suffix_arg[from];
    }
    f = std::move(next);
  }

  // Best terminal state (ties -> smallest pool).
  size_t best = 0;
  for (size_t s = 1; s < num_sizes; ++s) {
    if (f[s] < f[best]) best = s;
  }

  // Backtrack the per-group sizes.
  std::vector<int64_t> per_group(num_groups);
  size_t state = best;
  for (size_t g = num_groups; g-- > 0;) {
    per_group[g] = min_n + static_cast<int64_t>(state);
    if (g > 0) state = choice[g][state];
  }
  return {std::move(per_group), f[best]};
}

Result<PoolSchedule> SaaOptimizer::Optimize(const TimeSeries& demand) const {
  const size_t num_bins = demand.size();
  if (num_bins == 0) return Status::InvalidArgument("empty demand");
  SolveScope scope(config_.obs, "dp");
  const PoolModelConfig& pool = config_.pool;
  const size_t tau = pool.tau_bins;
  const size_t num_blocks = pool.NumBlocks(num_bins);
  scope.RecordBlocks(num_blocks);

  // Group in-flight demand values by the block whose pool size serves them.
  const std::vector<double> w = InFlightDemand(demand);
  std::vector<std::vector<double>> block_w(num_blocks);
  // Every block serves ~stableness_bins bins; block 0 additionally absorbs
  // the first tau bins. Reserving exactly that avoids push_back regrowth.
  for (size_t b = 0; b < num_blocks; ++b) {
    block_w[b].reserve(pool.stableness_bins + (b == 0 ? tau : 0));
  }
  for (size_t t = 0; t < num_bins; ++t) {
    const size_t b = t < tau ? 0 : pool.BlockOf(t - tau);
    block_w[b].push_back(w[t]);
  }

  auto [per_block, objective] = SolveGroupedDp(block_w);
  PoolSchedule schedule;
  schedule.pool_size_per_bin =
      ExpandBlockSchedule(per_block, num_bins, pool.stableness_bins);
  schedule.objective = objective;
  return schedule;
}

Result<PoolSchedule> SaaOptimizer::OptimizePeriodic(const TimeSeries& demand,
                                                    size_t period_bins) const {
  const size_t num_bins = demand.size();
  if (num_bins == 0) return Status::InvalidArgument("empty demand");
  const PoolModelConfig& pool = config_.pool;
  if (period_bins == 0 || period_bins % pool.stableness_bins != 0) {
    return Status::InvalidArgument(
        "period_bins must be a positive multiple of stableness_bins");
  }
  if (num_bins < period_bins) {
    return Status::InvalidArgument("demand shorter than one period");
  }
  SolveScope scope(config_.obs, "periodic");
  const size_t tau = pool.tau_bins;
  const size_t groups_per_period = period_bins / pool.stableness_bins;
  scope.RecordBlocks(groups_per_period);

  // Fold every block onto its position within the period: the pool size at
  // 06:00 is the same on every day of the sample (§4.2's simplified
  // "same time of day" policy).
  const std::vector<double> w = InFlightDemand(demand);
  std::vector<std::vector<double>> group_w(groups_per_period);
  // Each period slot collects one stableness block per period occurrence
  // (slot 0 also absorbs the first tau bins).
  const size_t occurrences = (num_bins + period_bins - 1) / period_bins;
  for (size_t g = 0; g < groups_per_period; ++g) {
    group_w[g].reserve(occurrences * pool.stableness_bins +
                       (g == 0 ? tau : 0));
  }
  for (size_t t = 0; t < num_bins; ++t) {
    const size_t b = t < tau ? 0 : pool.BlockOf(t - tau);
    group_w[b % groups_per_period].push_back(w[t]);
  }

  auto [per_group, objective] = SolveGroupedDp(group_w);
  // Tile the template across the whole horizon. The ramp constraint is
  // enforced within the period; the wrap-around boundary is not constrained
  // (a decrease at midnight is always feasible, and increases there are rare
  // because demand troughs overnight).
  std::vector<int64_t> per_block(pool.NumBlocks(num_bins));
  for (size_t b = 0; b < per_block.size(); ++b) {
    per_block[b] = per_group[b % groups_per_period];
  }
  PoolSchedule schedule;
  schedule.pool_size_per_bin =
      ExpandBlockSchedule(per_block, num_bins, pool.stableness_bins);
  schedule.objective = objective;
  return schedule;
}

Result<LpProblem> SaaOptimizer::BuildLp(const TimeSeries& demand) const {
  const size_t num_bins = demand.size();
  if (num_bins == 0) return Status::InvalidArgument("empty demand");
  const PoolModelConfig& pool = config_.pool;
  const size_t tau = pool.tau_bins;
  const size_t num_blocks = pool.NumBlocks(num_bins);
  const double alpha = config_.alpha_prime;

  const std::vector<double> w = InFlightDemand(demand);

  // Variable layout: [Delta+ 0..T), [Delta- 0..T), [N_b 0..B).
  LpProblem lp;
  lp.num_vars = 2 * num_bins + num_blocks;
  lp.objective.assign(lp.num_vars, 0.0);
  for (size_t t = 0; t < num_bins; ++t) {
    lp.objective[t] = alpha;                  // Delta+
    lp.objective[num_bins + t] = 1.0 - alpha;  // Delta-
  }
  const auto n_var = [&](size_t b) { return 2 * num_bins + b; };

  for (size_t t = 0; t < num_bins; ++t) {
    const size_t b = t < tau ? 0 : pool.BlockOf(t - tau);
    // Delta+(t) >= A'(t) - D(t) = N_b - w_t   =>  Delta+ - N_b >= -w_t.
    lp.constraints.push_back(
        {{{t, 1.0}, {n_var(b), -1.0}}, ConstraintType::kGreaterEqual, -w[t]});
    // Delta-(t) >= D(t) - A'(t) = w_t - N_b   =>  Delta- + N_b >= w_t.
    lp.constraints.push_back({{{num_bins + t, 1.0}, {n_var(b), 1.0}},
                              ConstraintType::kGreaterEqual,
                              w[t]});
  }
  for (size_t b = 0; b < num_blocks; ++b) {
    lp.constraints.push_back({{{n_var(b), 1.0}},
                              ConstraintType::kGreaterEqual,
                              static_cast<double>(pool.min_pool_size)});
    lp.constraints.push_back({{{n_var(b), 1.0}},
                              ConstraintType::kLessEqual,
                              static_cast<double>(pool.max_pool_size)});
    if (b > 0) {
      lp.constraints.push_back(
          {{{n_var(b), 1.0}, {n_var(b - 1), -1.0}},
           ConstraintType::kLessEqual,
           static_cast<double>(pool.max_new_requests_per_bin)});
    }
  }
  return lp;
}

Result<PoolSchedule> SaaOptimizer::OptimizeLp(const TimeSeries& demand) const {
  SolveScope scope(config_.obs, "lp");
  IPOOL_ASSIGN_OR_RETURN(LpProblem lp, BuildLp(demand));
  SimplexSolver solver;
  IPOOL_ASSIGN_OR_RETURN(LpSolution solution, solver.Solve(lp));
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->GetCounter("ipool_simplex_iterations_total")
        ->Add(solution.iterations);
  }

  const size_t num_bins = demand.size();
  const PoolModelConfig& pool = config_.pool;
  const size_t num_blocks = pool.NumBlocks(num_bins);
  std::vector<int64_t> per_block(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    per_block[b] =
        static_cast<int64_t>(std::llround(solution.x[2 * num_bins + b]));
  }
  PoolSchedule schedule;
  schedule.pool_size_per_bin =
      ExpandBlockSchedule(per_block, num_bins, pool.stableness_bins);
  schedule.objective = solution.objective;
  return schedule;
}

Result<std::vector<ParetoPoint>> SweepPareto(
    const TimeSeries& planning_demand, const TimeSeries& actual_demand,
    const PoolModelConfig& pool_config, const std::vector<double>& alphas,
    const ObsContext& obs, const exec::ExecContext& exec) {
  if (!planning_demand.SameShape(actual_demand)) {
    return Status::InvalidArgument(
        "planning and actual demand must share bin count and width");
  }
  // Per-alpha solves are independent: each writes only its own slot, so the
  // sweep fans out over the pool and still returns points in alpha order,
  // bit-identical to the serial loop. The caller's obs rides along whole:
  // MetricsRegistry instruments are lock-free atomics and obs::Tracer keeps
  // per-thread span buffers, so every solve records spans even when the
  // sweep fans out.
  std::vector<ParetoPoint> points(alphas.size());
  std::vector<Status> statuses(alphas.size());
  exec::ParallelFor(
      exec, 0, alphas.size(),
      [&](size_t lo, size_t hi) {
    for (size_t idx = lo; idx < hi; ++idx) {
      statuses[idx] = [&]() -> Status {
        SaaConfig config;
        config.pool = pool_config;
        config.alpha_prime = alphas[idx];
        config.obs = obs;
        IPOOL_ASSIGN_OR_RETURN(SaaOptimizer optimizer,
                               SaaOptimizer::Create(config));
        IPOOL_ASSIGN_OR_RETURN(PoolSchedule schedule,
                               optimizer.Optimize(planning_demand));
        IPOOL_ASSIGN_OR_RETURN(
            PoolMetrics metrics,
            EvaluateSchedule(actual_demand, schedule.pool_size_per_bin,
                             pool_config));
        points[idx] = {alphas[idx], metrics};
        return Status::OK();
      }();
    }
      },
      {.label = "solver.sweep_pareto"});
  // First error by alpha index wins, matching what the serial loop reports.
  for (const Status& s : statuses) {
    IPOOL_RETURN_NOT_OK(s);
  }
  return points;
}

}  // namespace ipool
