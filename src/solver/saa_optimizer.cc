#include "solver/saa_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"
#include "exec/scratch.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ipool {

namespace {

// Shared solve instrumentation: times the whole solve into
// `ipool_solve_seconds{path=...}` and counts solved blocks.
class SolveScope {
 public:
  SolveScope(const ObsContext& obs, const char* path)
      : span_(obs.tracer, "solve"),
        timer_(obs.metrics != nullptr
                   ? obs.metrics->GetHistogram("ipool_solve_seconds",
                                               {{"path", path}})
                   : nullptr),
        obs_(obs) {}

  void RecordBlocks(size_t blocks) {
    if (obs_.metrics != nullptr) {
      obs_.metrics->GetCounter("ipool_solve_blocks_total")->Add(blocks);
    }
  }

 private:
  obs::ScopedSpan span_;
  obs::ScopedTimer timer_;
  ObsContext obs_;
};

}  // namespace

Status SaaConfig::Validate() const {
  IPOOL_RETURN_NOT_OK(pool.Validate());
  if (alpha_prime < 0.0 || alpha_prime > 1.0) {
    return Status::InvalidArgument(
        StrFormat("alpha_prime must be in [0,1], got %g", alpha_prime));
  }
  return Status::OK();
}

Result<SaaOptimizer> SaaOptimizer::Create(const SaaConfig& config) {
  IPOOL_RETURN_NOT_OK(config.Validate());
  return SaaOptimizer(config);
}

std::vector<double> SaaOptimizer::InFlightDemand(
    const TimeSeries& demand) const {
  std::vector<double> w(demand.size());
  InFlightDemandInto(demand, w.data());
  return w;
}

void SaaOptimizer::InFlightDemandInto(const TimeSeries& demand,
                                      double* out) const {
  const size_t num_bins = demand.size();
  const size_t tau = config_.pool.tau_bins;
  // Cumulative sums first, then the windowed difference in place. Walking t
  // downward keeps out[t - tau] a still-unmodified cumulative value. For
  // t < tau nothing re-hydrated has landed yet, so the ready side is the
  // initial pool N(0) and the full cumulative demand weighs on it.
  double running = 0.0;
  for (size_t t = 0; t < num_bins; ++t) {
    running += demand.value(t);
    out[t] = running;
  }
  for (size_t t = num_bins; t-- > tau;) {
    out[t] = out[t] - out[t - tau];
  }
}

std::pair<std::vector<int64_t>, double> SaaOptimizer::SolveGroupedDp(
    const double* values, const size_t* offsets, size_t num_groups) const {
  const PoolModelConfig& pool = config_.pool;
  const int64_t min_n = pool.min_pool_size;
  const int64_t max_n = pool.max_pool_size;
  const size_t num_sizes = static_cast<size_t>(max_n - min_n + 1);
  const double alpha = config_.alpha_prime;

  // Every working buffer comes from the per-thread scratch arena: a sweep
  // body solving thousands of candidates reuses the same bytes each
  // iteration instead of hitting the allocator ~7 times per solve (plus
  // once per group for the old per-group choice rows).
  exec::ScratchScope scratch;
  size_t max_group = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    max_group = std::max(max_group, offsets[g + 1] - offsets[g]);
  }
  double* cost = scratch.Doubles(num_sizes);
  double* ws = scratch.Doubles(max_group);
  double* prefix = scratch.Doubles(max_group + 1);

  // Per-group piecewise-linear convex cost over the integer pool size:
  // g(N) = sum_w alpha * max(0, N - w) + (1 - alpha) * max(0, w - N).
  // Computed for all N via sorted w + prefix sums.
  auto group_cost = [&](size_t g) {
    const size_t len = offsets[g + 1] - offsets[g];
    std::copy(values + offsets[g], values + offsets[g + 1], ws);
    std::sort(ws, ws + len);
    prefix[0] = 0.0;
    for (size_t i = 0; i < len; ++i) prefix[i + 1] = prefix[i] + ws[i];
    const double total = prefix[len];
    size_t below = 0;  // count of ws <= N
    for (size_t s = 0; s < num_sizes; ++s) {
      const double n = static_cast<double>(min_n + static_cast<int64_t>(s));
      while (below < len && ws[below] <= n) ++below;
      const double cnt_below = static_cast<double>(below);
      const double sum_below = prefix[below];
      const double cnt_above = static_cast<double>(len) - cnt_below;
      const double sum_above = total - sum_below;
      cost[s] = alpha * (n * cnt_below - sum_below) +
                (1.0 - alpha) * (sum_above - n * cnt_above);
    }
  };

  // DP over groups. f[s] = best cost through group g ending at size s.
  const int64_t ramp = pool.max_new_requests_per_bin;
  group_cost(0);
  double* f = scratch.Doubles(num_sizes);
  std::copy(cost, cost + num_sizes, f);
  double* suffix_val = scratch.Doubles(num_sizes);
  size_t* suffix_arg = scratch.Indices(num_sizes);
  double* next = scratch.Doubles(num_sizes);
  size_t* choice = scratch.Indices(num_groups * num_sizes);  // predecessors
  for (size_t g = 1; g < num_groups; ++g) {
    // suffix_min[s] = argmin/valmin of f over indices >= s (ties -> smallest
    // index, i.e. smallest predecessor pool size).
    suffix_val[num_sizes - 1] = f[num_sizes - 1];
    suffix_arg[num_sizes - 1] = num_sizes - 1;
    for (size_t s = num_sizes - 1; s-- > 0;) {
      if (f[s] <= suffix_val[s + 1]) {
        suffix_val[s] = f[s];
        suffix_arg[s] = s;
      } else {
        suffix_val[s] = suffix_val[s + 1];
        suffix_arg[s] = suffix_arg[s + 1];
      }
    }
    group_cost(g);
    size_t* choice_g = choice + g * num_sizes;
    for (size_t s = 0; s < num_sizes; ++s) {
      // Ramp limits the *increase* N_g - N_{g-1} <= ramp, so the predecessor
      // index must be >= s - ramp.
      const int64_t lo = static_cast<int64_t>(s) - ramp;
      const size_t from = lo <= 0 ? 0 : static_cast<size_t>(lo);
      next[s] = cost[s] + suffix_val[from];
      choice_g[s] = suffix_arg[from];
    }
    std::swap(f, next);
  }

  // Best terminal state (ties -> smallest pool).
  size_t best = 0;
  for (size_t s = 1; s < num_sizes; ++s) {
    if (f[s] < f[best]) best = s;
  }

  // Backtrack the per-group sizes.
  std::vector<int64_t> per_group(num_groups);
  size_t state = best;
  for (size_t g = num_groups; g-- > 0;) {
    per_group[g] = min_n + static_cast<int64_t>(state);
    if (g > 0) state = choice[g * num_sizes + state];
  }
  return {std::move(per_group), f[best]};
}

Result<PoolSchedule> SaaOptimizer::Optimize(const TimeSeries& demand) const {
  const size_t num_bins = demand.size();
  if (num_bins == 0) return Status::InvalidArgument("empty demand");
  SolveScope scope(config_.obs, "dp");
  const PoolModelConfig& pool = config_.pool;
  const size_t tau = pool.tau_bins;
  const size_t num_blocks = pool.NumBlocks(num_bins);
  scope.RecordBlocks(num_blocks);

  // Group in-flight demand values by the block whose pool size serves them.
  // The bin -> block map is nondecreasing in t (t < tau lands in block 0),
  // so the flattened grouping is the w array itself plus block offsets —
  // no per-block vectors, and the whole thing lives in per-thread scratch.
  exec::ScratchScope scratch;
  double* w = scratch.Doubles(num_bins);
  InFlightDemandInto(demand, w);
  size_t* offsets = scratch.Indices(num_blocks + 1);
  std::fill(offsets, offsets + num_blocks + 1, size_t{0});
  for (size_t t = 0; t < num_bins; ++t) {
    const size_t b = t < tau ? 0 : pool.BlockOf(t - tau);
    ++offsets[b + 1];
  }
  for (size_t b = 0; b < num_blocks; ++b) offsets[b + 1] += offsets[b];

  auto [per_block, objective] = SolveGroupedDp(w, offsets, num_blocks);
  PoolSchedule schedule;
  schedule.pool_size_per_bin =
      ExpandBlockSchedule(per_block, num_bins, pool.stableness_bins);
  schedule.objective = objective;
  return schedule;
}

Result<PoolSchedule> SaaOptimizer::OptimizePeriodic(const TimeSeries& demand,
                                                    size_t period_bins) const {
  const size_t num_bins = demand.size();
  if (num_bins == 0) return Status::InvalidArgument("empty demand");
  const PoolModelConfig& pool = config_.pool;
  if (period_bins == 0 || period_bins % pool.stableness_bins != 0) {
    return Status::InvalidArgument(
        "period_bins must be a positive multiple of stableness_bins");
  }
  if (num_bins < period_bins) {
    return Status::InvalidArgument("demand shorter than one period");
  }
  SolveScope scope(config_.obs, "periodic");
  const size_t tau = pool.tau_bins;
  const size_t groups_per_period = period_bins / pool.stableness_bins;
  scope.RecordBlocks(groups_per_period);

  // Fold every block onto its position within the period: the pool size at
  // 06:00 is the same on every day of the sample (§4.2's simplified
  // "same time of day" policy). The slot map wraps, so flattening is a
  // counting sort: per-slot counts -> offsets -> a scatter pass that keeps
  // each slot's values in ascending-t order (same as the old push_back).
  exec::ScratchScope scratch;
  double* w = scratch.Doubles(num_bins);
  InFlightDemandInto(demand, w);
  size_t* offsets = scratch.Indices(groups_per_period + 1);
  std::fill(offsets, offsets + groups_per_period + 1, size_t{0});
  const auto slot_of = [&](size_t t) {
    const size_t b = t < tau ? 0 : pool.BlockOf(t - tau);
    return b % groups_per_period;
  };
  for (size_t t = 0; t < num_bins; ++t) ++offsets[slot_of(t) + 1];
  for (size_t g = 0; g < groups_per_period; ++g) offsets[g + 1] += offsets[g];
  double* values = scratch.Doubles(num_bins);
  size_t* cursor = scratch.Indices(groups_per_period);
  std::copy(offsets, offsets + groups_per_period, cursor);
  for (size_t t = 0; t < num_bins; ++t) values[cursor[slot_of(t)]++] = w[t];

  auto [per_group, objective] = SolveGroupedDp(values, offsets, groups_per_period);
  // Tile the template across the whole horizon. The ramp constraint is
  // enforced within the period; the wrap-around boundary is not constrained
  // (a decrease at midnight is always feasible, and increases there are rare
  // because demand troughs overnight).
  std::vector<int64_t> per_block(pool.NumBlocks(num_bins));
  for (size_t b = 0; b < per_block.size(); ++b) {
    per_block[b] = per_group[b % groups_per_period];
  }
  PoolSchedule schedule;
  schedule.pool_size_per_bin =
      ExpandBlockSchedule(per_block, num_bins, pool.stableness_bins);
  schedule.objective = objective;
  return schedule;
}

Result<LpProblem> SaaOptimizer::BuildLp(const TimeSeries& demand) const {
  const size_t num_bins = demand.size();
  if (num_bins == 0) return Status::InvalidArgument("empty demand");
  const PoolModelConfig& pool = config_.pool;
  const size_t tau = pool.tau_bins;
  const size_t num_blocks = pool.NumBlocks(num_bins);
  const double alpha = config_.alpha_prime;

  const std::vector<double> w = InFlightDemand(demand);

  // Variable layout: [Delta+ 0..T), [Delta- 0..T), [N_b 0..B).
  LpProblem lp;
  lp.num_vars = 2 * num_bins + num_blocks;
  lp.objective.assign(lp.num_vars, 0.0);
  for (size_t t = 0; t < num_bins; ++t) {
    lp.objective[t] = alpha;                  // Delta+
    lp.objective[num_bins + t] = 1.0 - alpha;  // Delta-
  }
  const auto n_var = [&](size_t b) { return 2 * num_bins + b; };

  for (size_t t = 0; t < num_bins; ++t) {
    const size_t b = t < tau ? 0 : pool.BlockOf(t - tau);
    // Delta+(t) >= A'(t) - D(t) = N_b - w_t   =>  Delta+ - N_b >= -w_t.
    lp.constraints.push_back(
        {{{t, 1.0}, {n_var(b), -1.0}}, ConstraintType::kGreaterEqual, -w[t]});
    // Delta-(t) >= D(t) - A'(t) = w_t - N_b   =>  Delta- + N_b >= w_t.
    lp.constraints.push_back({{{num_bins + t, 1.0}, {n_var(b), 1.0}},
                              ConstraintType::kGreaterEqual,
                              w[t]});
  }
  for (size_t b = 0; b < num_blocks; ++b) {
    lp.constraints.push_back({{{n_var(b), 1.0}},
                              ConstraintType::kGreaterEqual,
                              static_cast<double>(pool.min_pool_size)});
    lp.constraints.push_back({{{n_var(b), 1.0}},
                              ConstraintType::kLessEqual,
                              static_cast<double>(pool.max_pool_size)});
    if (b > 0) {
      lp.constraints.push_back(
          {{{n_var(b), 1.0}, {n_var(b - 1), -1.0}},
           ConstraintType::kLessEqual,
           static_cast<double>(pool.max_new_requests_per_bin)});
    }
  }
  return lp;
}

Result<PoolSchedule> SaaOptimizer::OptimizeLp(const TimeSeries& demand) const {
  SolveScope scope(config_.obs, "lp");
  IPOOL_ASSIGN_OR_RETURN(LpProblem lp, BuildLp(demand));
  SimplexSolver solver;
  IPOOL_ASSIGN_OR_RETURN(LpSolution solution, solver.Solve(lp));
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->GetCounter("ipool_simplex_iterations_total")
        ->Add(solution.iterations);
  }

  const size_t num_bins = demand.size();
  const PoolModelConfig& pool = config_.pool;
  const size_t num_blocks = pool.NumBlocks(num_bins);
  std::vector<int64_t> per_block(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    per_block[b] =
        static_cast<int64_t>(std::llround(solution.x[2 * num_bins + b]));
  }
  PoolSchedule schedule;
  schedule.pool_size_per_bin =
      ExpandBlockSchedule(per_block, num_bins, pool.stableness_bins);
  schedule.objective = solution.objective;
  return schedule;
}

Result<std::vector<ParetoPoint>> SweepPareto(
    const TimeSeries& planning_demand, const TimeSeries& actual_demand,
    const PoolModelConfig& pool_config, const std::vector<double>& alphas,
    const ObsContext& obs, const exec::ExecContext& exec) {
  if (!planning_demand.SameShape(actual_demand)) {
    return Status::InvalidArgument(
        "planning and actual demand must share bin count and width");
  }
  // Per-alpha solves are independent: each writes only its own slot, so the
  // sweep fans out over the pool and still returns points in alpha order,
  // bit-identical to the serial loop. The caller's obs rides along whole:
  // MetricsRegistry instruments are lock-free atomics and obs::Tracer keeps
  // per-thread span buffers, so every solve records spans even when the
  // sweep fans out.
  std::vector<ParetoPoint> points(alphas.size());
  std::vector<Status> statuses(alphas.size());
  // Seed the chunker with the per-α′ solve shape, which is known up front:
  // the grouped DP scans num_blocks × num_sizes cells and the evaluation
  // adds a num_bins pass, and neither depends on α′ itself. Today that
  // makes every index cost the same — the point is that CostAwarePartition
  // balances on solve size, not index count, so the boundaries stay correct
  // if a future per-α′ config (e.g. α′-dependent pool bounds) skews them.
  const size_t num_bins = planning_demand.size();
  const double solve_cost =
      static_cast<double>(pool_config.NumBlocks(num_bins)) *
          static_cast<double>(std::max<int64_t>(
              1, pool_config.max_pool_size - pool_config.min_pool_size + 1)) +
      static_cast<double>(num_bins);
  std::vector<double> costs(alphas.size(), solve_cost);
  exec::ParallelFor(
      exec, 0, alphas.size(),
      [&](size_t lo, size_t hi) {
    for (size_t idx = lo; idx < hi; ++idx) {
      statuses[idx] = [&]() -> Status {
        SaaConfig config;
        config.pool = pool_config;
        config.alpha_prime = alphas[idx];
        config.obs = obs;
        IPOOL_ASSIGN_OR_RETURN(SaaOptimizer optimizer,
                               SaaOptimizer::Create(config));
        IPOOL_ASSIGN_OR_RETURN(PoolSchedule schedule,
                               optimizer.Optimize(planning_demand));
        IPOOL_ASSIGN_OR_RETURN(
            PoolMetrics metrics,
            EvaluateSchedule(actual_demand, schedule.pool_size_per_bin,
                             pool_config));
        points[idx] = {alphas[idx], metrics};
        return Status::OK();
      }();
    }
      },
      {.label = "solver.sweep_pareto", .costs = costs.data()});
  // First error by alpha index wins, matching what the serial loop reports.
  for (const Status& s : statuses) {
    IPOOL_RETURN_NOT_OK(s);
  }
  return points;
}

}  // namespace ipool
