// The live-pool queueing model of §4.1: cumulative demand D(t), re-hydration
// requests A(t) = D(t) + N(t), clusters ready A'(t) = A(t - tau), and the
// idle/wait areas between A'(t) and D(t). This analytical model is what the
// SAA optimizer minimizes over and what the Pareto benches evaluate
// schedules against; the discrete-event simulator in src/sim cross-checks it
// with explicit cluster lifecycles.
#ifndef IPOOL_SOLVER_POOL_MODEL_H_
#define IPOOL_SOLVER_POOL_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "tsdata/time_series.h"

namespace ipool {

struct PoolModelConfig {
  /// Cluster creation latency tau, in bins (e.g. 3 bins x 30 s = 90 s).
  size_t tau_bins = 3;
  /// Hard bounds on the target pool size N(t) (Eq 10). In production these
  /// come from regional capacity.
  int64_t min_pool_size = 0;
  int64_t max_pool_size = 200;
  /// N(t) is held constant for this many bins (Eq 11); 10 bins x 30 s =
  /// 5 min, the paper's default.
  size_t stableness_bins = 10;
  /// Cap on pool-size increase per bin (Eq 9).
  int64_t max_new_requests_per_bin = 1'000'000;

  Status Validate() const;

  /// Number of STABLENESS blocks covering `num_bins` bins.
  size_t NumBlocks(size_t num_bins) const;
  /// Block index of bin t.
  size_t BlockOf(size_t bin) const { return bin / stableness_bins; }
};

/// A target-pool-size schedule, one value per bin.
struct PoolSchedule {
  std::vector<int64_t> pool_size_per_bin;
  /// Objective value reported by the optimizer that produced it
  /// (alpha'-weighted idle + wait area, in cluster-bins).
  double objective = 0.0;
};

/// Expands per-block sizes into a per-bin schedule of length num_bins.
std::vector<int64_t> ExpandBlockSchedule(const std::vector<int64_t>& per_block,
                                         size_t num_bins,
                                         size_t stableness_bins);

struct PoolMetrics {
  /// Grey area: cluster-seconds spent idle in the pool.
  double idle_cluster_seconds = 0.0;
  /// Red area: request-seconds spent waiting (analytical FCFS model).
  double wait_request_seconds = 0.0;
  /// Same, but each request's wait is capped at tau: a drained pool falls
  /// back to on-demand creation, so no request waits longer than a full
  /// cluster startup (footnote 1 of the paper).
  double wait_request_seconds_capped = 0.0;
  int64_t total_requests = 0;
  /// Requests served with zero wait.
  int64_t pool_hits = 0;
  double hit_rate = 1.0;
  double avg_wait_seconds = 0.0;
  double avg_wait_seconds_capped = 0.0;
  double avg_pool_size = 0.0;
  double max_pool_size = 0.0;
};

/// Evaluates a schedule against a demand series (per-bin request counts)
/// under the cumulative-curve model. schedule size must equal demand size.
Result<PoolMetrics> EvaluateSchedule(const TimeSeries& demand,
                                     const std::vector<int64_t>& schedule,
                                     const PoolModelConfig& config);

/// Cost-of-goods-sold model: translates idle cluster time into dollars.
struct CogsModel {
  double cores_per_cluster = 24.0;  // e.g. 3 medium nodes x 8 cores
  double dollars_per_core_hour = 0.09;

  double IdleDollars(double idle_cluster_seconds) const {
    return idle_cluster_seconds / 3600.0 * cores_per_cluster *
           dollars_per_core_hour;
  }
};

}  // namespace ipool

#endif  // IPOOL_SOLVER_POOL_MODEL_H_
