// A dense two-phase primal simplex solver for linear programs in the form
//   minimize    c^T x
//   subject to  a_i^T x {<=,>=,==} b_i   for each constraint i
//               x >= 0.
//
// This is the stand-in for the commercial LP solver the paper uses for the
// SAA formulation (§4.2). It targets correctness and transparency over raw
// speed: Bland's rule guards against cycling, and the tableau is dense. The
// structured block-DP solver in saa_optimizer.h is the production path for
// long traces; this solver cross-validates it on small instances and solves
// arbitrary side LPs.
#ifndef IPOOL_SOLVER_SIMPLEX_H_
#define IPOOL_SOLVER_SIMPLEX_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ipool {

enum class ConstraintType { kLessEqual, kGreaterEqual, kEqual };

struct LpConstraint {
  /// Sparse row: (variable index, coefficient) pairs.
  std::vector<std::pair<size_t, double>> terms;
  ConstraintType type = ConstraintType::kLessEqual;
  double rhs = 0.0;
};

struct LpProblem {
  size_t num_vars = 0;
  /// Minimization objective; must have size num_vars.
  std::vector<double> objective;
  std::vector<LpConstraint> constraints;

  Status Validate() const;
};

struct LpSolution {
  std::vector<double> x;
  double objective = 0.0;
  size_t iterations = 0;
};

class SimplexSolver {
 public:
  struct Options {
    size_t max_iterations = 200000;
    double tolerance = 1e-9;
  };

  SimplexSolver() : options_(Options()) {}
  explicit SimplexSolver(Options options) : options_(options) {}

  /// Returns the optimal solution, InvalidArgument for malformed problems,
  /// FailedPrecondition for infeasible ones, OutOfRange for unbounded ones,
  /// and DeadlineExceeded if the iteration cap is hit.
  Result<LpSolution> Solve(const LpProblem& problem) const;

 private:
  Options options_;
};

}  // namespace ipool

#endif  // IPOOL_SOLVER_SIMPLEX_H_
