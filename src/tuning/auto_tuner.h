// Self-adaptive hyper-parameter tuning (§6): closes the feedback loop
// between the observed customer wait time and the single remaining SAA knob
// alpha'. The relation alpha' = f(t_wait) is approximated as piece-wise
// linear; the tuner fits a line through the last `window` (alpha', wait)
// observations and inverts it toward the wait-time SLA, with damping and a
// slope-degenerate fallback so it cannot oscillate or divide by zero.
#ifndef IPOOL_TUNING_AUTO_TUNER_H_
#define IPOOL_TUNING_AUTO_TUNER_H_

#include <cstdint>
#include <deque>

#include "common/status.h"

namespace ipool {

struct AutoTunerConfig {
  /// The wait-time SLA to steer toward (seconds, average per request).
  double target_wait_seconds = 1.0;
  double initial_alpha = 0.5;
  /// Number of trailing observations used for the local linear fit (the
  /// paper uses 10).
  size_t window = 10;
  double min_alpha = 0.01;
  double max_alpha = 0.99;
  /// Fraction of the fitted correction applied per step (1 = jump straight
  /// to the fitted value; smaller damps oscillation).
  double damping = 0.5;
  /// Fallback multiplicative step when the fit is degenerate (fewer than two
  /// distinct alphas observed, or a slope with the wrong sign).
  double fallback_step = 0.05;

  Status Validate() const;
};

class AutoTuner {
 public:
  static Result<AutoTuner> Create(const AutoTunerConfig& config);

  /// Current recommended alpha'.
  double alpha() const { return alpha_; }

  /// Records the wait time observed while running with `alpha_used`, then
  /// retunes. Returns the new alpha'.
  ///
  /// Clamp saturation: when the trailing window holds only observations at
  /// one alpha pinned to min_alpha/max_alpha, the least-squares fit is
  /// degenerate by construction (identical alphas, zero spread) and the
  /// fallback step would oscillate against the clamp on noisy waits —
  /// stepping into the bound is a no-op, stepping out reverses on the next
  /// noisy sample. Saturation is therefore held: the tuner leaves the bound
  /// only when EVERY wait in the window sits on the escape side of the
  /// target (persistently low wait at min_alpha, persistently high at
  /// max_alpha).
  double Observe(double alpha_used, double wait_seconds);

  size_t observation_count() const { return history_.size(); }

  /// Observations answered by holding a saturated clamp bound (see
  /// Observe). Exposed for the regression tests.
  uint64_t hold_count() const { return hold_count_; }

 private:
  explicit AutoTuner(const AutoTunerConfig& config)
      : config_(config), alpha_(config.initial_alpha) {}

  struct Observation {
    double alpha;
    double wait;
  };

  AutoTunerConfig config_;
  double alpha_;
  std::deque<Observation> history_;
  uint64_t hold_count_ = 0;
};

}  // namespace ipool

#endif  // IPOOL_TUNING_AUTO_TUNER_H_
