#include "tuning/auto_tuner.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace ipool {

Status AutoTunerConfig::Validate() const {
  if (target_wait_seconds < 0.0) {
    return Status::InvalidArgument("target wait must be >= 0");
  }
  if (window < 2) return Status::InvalidArgument("window must be >= 2");
  if (min_alpha < 0.0 || max_alpha > 1.0 || min_alpha >= max_alpha) {
    return Status::InvalidArgument("need 0 <= min_alpha < max_alpha <= 1");
  }
  if (initial_alpha < min_alpha || initial_alpha > max_alpha) {
    return Status::InvalidArgument("initial_alpha outside [min, max]");
  }
  if (damping <= 0.0 || damping > 1.0) {
    return Status::InvalidArgument("damping must be in (0, 1]");
  }
  if (fallback_step <= 0.0) {
    return Status::InvalidArgument("fallback_step must be positive");
  }
  return Status::OK();
}

Result<AutoTuner> AutoTuner::Create(const AutoTunerConfig& config) {
  IPOOL_RETURN_NOT_OK(config.Validate());
  return AutoTuner(config);
}

double AutoTuner::Observe(double alpha_used, double wait_seconds) {
  history_.push_back({alpha_used, std::max(0.0, wait_seconds)});
  while (history_.size() > config_.window) history_.pop_front();

  // Fit wait = a + b * alpha over the trailing window (simple least
  // squares). A larger alpha' shrinks the pool, so b should be positive.
  const size_t n = history_.size();
  double sum_a = 0.0, sum_w = 0.0, sum_aa = 0.0, sum_aw = 0.0;
  for (const Observation& o : history_) {
    sum_a += o.alpha;
    sum_w += o.wait;
    sum_aa += o.alpha * o.alpha;
    sum_aw += o.alpha * o.wait;
  }
  const double denom = static_cast<double>(n) * sum_aa - sum_a * sum_a;
  const double latest_wait = history_.back().wait;

  double next = alpha_;
  bool fitted = false;
  if (n >= 2 && std::fabs(denom) > 1e-12) {
    const double b = (static_cast<double>(n) * sum_aw - sum_a * sum_w) / denom;
    const double a = (sum_w - b * sum_a) / static_cast<double>(n);
    if (b > 1e-9) {
      const double alpha_star = (config_.target_wait_seconds - a) / b;
      next = alpha_ + config_.damping * (alpha_star - alpha_);
      fitted = true;
    }
  }
  if (!fitted) {
    // Degenerate fit: nudge in the direction that should correct the error.
    double step = 0.0;
    if (latest_wait > config_.target_wait_seconds) {
      step = -config_.fallback_step;  // grow the pool
    } else if (latest_wait < config_.target_wait_seconds) {
      step = config_.fallback_step;  // shrink the pool
    }
    if (step != 0.0 && n == config_.window) {
      // Clamp saturation: a full window of observations at one alpha pinned
      // to a bound. Stepping INTO the bound is a no-op and stepping OUT on
      // a single sample oscillates against the clamp when waits are noisy,
      // because the window stays degenerate and the next above/below-target
      // sample reverses the step. Hold the bound unless every wait in the
      // window agrees the bound is wrong (all below target at min_alpha /
      // all above at max_alpha) — a persistent error is the escape path.
      double alpha_min = history_.front().alpha;
      double alpha_max = alpha_min;
      size_t below_target = 0, above_target = 0;
      for (const Observation& o : history_) {
        alpha_min = std::min(alpha_min, o.alpha);
        alpha_max = std::max(alpha_max, o.alpha);
        if (o.wait < config_.target_wait_seconds) ++below_target;
        if (o.wait > config_.target_wait_seconds) ++above_target;
      }
      const bool uniform = alpha_max - alpha_min <= 1e-12;
      const bool at_min =
          uniform && std::fabs(alpha_min - config_.min_alpha) <= 1e-12;
      const bool at_max =
          uniform && std::fabs(alpha_max - config_.max_alpha) <= 1e-12;
      const bool escapes_min = at_min && step > 0.0 && below_target == n;
      const bool escapes_max = at_max && step < 0.0 && above_target == n;
      if ((at_min || at_max) && !escapes_min && !escapes_max) {
        step = 0.0;
        ++hold_count_;
      }
    }
    next = alpha_ + step;
  }
  alpha_ = std::clamp(next, config_.min_alpha, config_.max_alpha);
  return alpha_;
}

}  // namespace ipool
