// Blocking client for the ipool serving layer with the retry discipline a
// pooling worker needs against a loaded control plane:
//   * connect and per-request deadlines (nonblocking sockets + poll);
//   * exponential backoff with deterministic jitter between attempts
//     (seeded Rng — tests reproduce byte-for-byte);
//   * retries only when safe: RETRY_AFTER / UNAVAILABLE responses mean the
//     request was shed before execution and always retry; transport errors
//     and timeouts retry only for idempotent methods (everything except
//     PublishTelemetry, whose append is not idempotent) unless the caller
//     overrides via RequestOptions.
//
// One Client drives one connection serially; it reconnects transparently
// after transport errors. Not thread-safe — give each load-generator
// thread its own Client.
#ifndef IPOOL_NET_CLIENT_H_
#define IPOOL_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "net/frame.h"

namespace ipool::obs {
class Tracer;
}  // namespace ipool::obs

namespace ipool::net {

struct ClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  double connect_timeout_seconds = 1.0;
  /// Deadline for one attempt (send + receive).
  double request_timeout_seconds = 2.0;
  /// Total tries per Call (1 = no retry).
  int max_attempts = 4;
  double backoff_initial_seconds = 0.002;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 0.25;
  /// Jitter stream seed; attempts sleep backoff * U[0.5, 1.5). Also seeds
  /// the trace-id stream, so clients with distinct seeds stamp distinct
  /// trace ids.
  uint64_t jitter_seed = 1;
  size_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// Client-side spans (client.call / client.attempt / client.backoff),
  /// rooted at the trace id stamped into each request, so client timing and
  /// the server's spans for the same request share one trace. Null disables
  /// spans; trace ids are stamped either way.
  obs::Tracer* tracer = nullptr;
};

struct ClientStats {
  uint64_t requests = 0;         ///< Call() invocations
  uint64_t attempts = 0;         ///< wire round-trips tried
  uint64_t retries = 0;          ///< attempts beyond the first
  uint64_t reconnects = 0;       ///< sockets re-established
  uint64_t shed_responses = 0;   ///< RETRY_AFTER answers seen
  uint64_t protocol_errors = 0;  ///< bad magic / CRC / id mismatches
  uint64_t last_trace_id = 0;    ///< trace id stamped by the latest Call
};

struct RequestOptions {
  /// Tri-state: unset defers to the per-method default.
  enum class Idempotency { kDefault, kIdempotent, kNotIdempotent };
  Idempotency idempotency = Idempotency::kDefault;
};

/// One request in a CallPipelined window.
struct PipelinedRequest {
  Method method = Method::kGetRecommendation;
  std::string payload;
};

class Client {
 public:
  explicit Client(ClientConfig config);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One request/response exchange with retry. Returns the response frame
  /// on any wire status except RETRY_AFTER/UNAVAILABLE (those are retried
  /// until attempts run out, then surface as Unavailable). Application
  /// errors (e.g. NOT_FOUND) are returned as frames, not Status errors —
  /// the exchange itself succeeded.
  Result<Frame> Call(Method method, std::string payload,
                     const RequestOptions& options = {});

  /// Pipelined exchange: encodes every request, writes them in one stream,
  /// then drains the responses (the server may answer out of order; frames
  /// are matched by request id and returned in request order). One deadline
  /// covers the whole window. No retries — a transport error or mismatched
  /// frame drops the connection and fails the window, because replaying a
  /// partially-executed window is not idempotent in general. Keep the
  /// window at or below the server's per-connection inflight budget or the
  /// tail of the window is load-shed (RETRY_AFTER frames, counted in
  /// stats().shed_responses, returned to the caller unretried).
  Result<std::vector<Frame>> CallPipelined(
      const std::vector<PipelinedRequest>& requests);

  /// Typed conveniences over Call (errors fold the wire status in).
  Result<std::string> GetRecommendation(const std::string& pool_key);
  Status PublishTelemetry(const std::string& metric, double time,
                          double value);
  Result<std::string> Health();
  Result<std::string> ScrapeMetrics();
  /// Recent finished server spans as JSONL (newest last); `limit` caps the
  /// span count, 0 uses the server default.
  Result<std::string> FetchTrace(size_t limit = 0);

  const ClientStats& stats() const { return stats_; }
  bool connected() const { return fd_ >= 0; }

  /// Drops the connection (the next Call reconnects).
  void Disconnect();

 private:
  Status EnsureConnected();
  Status SendAll(const std::string& bytes, double deadline);
  Result<Frame> ReadResponse(double deadline);
  /// Turns a non-OK wire response into the equivalent Status.
  static Status FrameError(const Frame& frame);
  /// Next nonzero trace id from the deterministic per-client stream.
  uint64_t NextTraceId();

  ClientConfig config_;
  Rng jitter_;
  SplitMix64 trace_ids_;
  int fd_ = -1;
  FrameDecoder decoder_;
  uint32_t next_request_id_ = 1;
  ClientStats stats_;
};

}  // namespace ipool::net

#endif  // IPOOL_NET_CLIENT_H_
