#include "net/router.h"

#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "live/live_control_plane.h"
#include "obs/export.h"
#include "service/sharded_document_store.h"
#include "service/sharded_telemetry_store.h"

namespace ipool::net {

namespace {

/// Caps a PublishTelemetry batch: a single request appending more points
/// than this is a malformed client, not a workload.
constexpr size_t kMaxTelemetryLines = 4096;

/// Spans returned by a Trace request with an empty payload.
constexpr size_t kDefaultTraceSpanLimit = 256;

}  // namespace

Result<std::string> ParseTelemetryLine(const std::string& line, double* time,
                                       double* value) {
  const size_t first = line.find(',');
  if (first == std::string::npos) {
    return Status::InvalidArgument("telemetry line needs metric,time,value: " +
                                   line);
  }
  const size_t second = line.find(',', first + 1);
  if (second == std::string::npos ||
      line.find(',', second + 1) != std::string::npos) {
    return Status::InvalidArgument("telemetry line needs exactly 3 fields: " +
                                   line);
  }
  std::string metric = line.substr(0, first);
  if (metric.empty()) {
    return Status::InvalidArgument("telemetry line has empty metric name");
  }
  IPOOL_ASSIGN_OR_RETURN(*time,
                         ParseDouble(line.substr(first + 1,
                                                 second - first - 1)));
  IPOOL_ASSIGN_OR_RETURN(*value, ParseDouble(line.substr(second + 1)));
  return metric;
}

Result<std::string> Router::Dispatch(Method method,
                                     const std::string& payload) {
  switch (method) {
    case Method::kGetRecommendation: {
      obs::ScopedSpan span(config_.tracer, "router.GetRecommendation");
      if (config_.documents == nullptr) {
        return Status::Unavailable("no document store wired");
      }
      if (payload.empty()) {
        return Status::InvalidArgument("GetRecommendation needs a pool key");
      }
      // The snapshot read path: one atomic shard-snapshot load, a map
      // lookup, and a copy of the pre-serialized payload bytes — no lock
      // held, no serialization work on the hot path.
      std::shared_ptr<const std::string> doc =
          config_.documents->GetPayload(payload);
      if (doc == nullptr) {
        return Status::NotFound("document not found: " + payload);
      }
      return std::string(*doc);
    }
    case Method::kPublishTelemetry: {
      obs::ScopedSpan span(config_.tracer, "router.PublishTelemetry");
      if (config_.telemetry == nullptr) {
        return Status::Unavailable("no telemetry store wired");
      }
      // Validate the whole batch before touching the store so a malformed
      // tail cannot leave a half-applied append behind a retry.
      std::vector<ShardedTelemetryStore::BatchPoint> points;
      std::istringstream in(payload);
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (points.size() >= kMaxTelemetryLines) {
          return Status::InvalidArgument(
              StrFormat("telemetry batch exceeds %zu lines",
                        kMaxTelemetryLines));
        }
        ShardedTelemetryStore::BatchPoint point;
        IPOOL_ASSIGN_OR_RETURN(
            point.metric, ParseTelemetryLine(line, &point.time, &point.value));
        points.push_back(std::move(point));
      }
      if (points.empty()) {
        return Status::InvalidArgument("PublishTelemetry got no points");
      }
      // One lock acquisition per touched shard; each shard's slice of the
      // batch is validated against store order and applied all-or-nothing.
      IPOOL_RETURN_NOT_OK(config_.telemetry->RecordBatch(std::move(points)));
      return std::string();
    }
    case Method::kHealth: {
      // A Health probe carries no arguments; a payload means the client is
      // confused (wrong method byte, corrupted frame) and silently serving
      // it would mask the bug.
      if (!payload.empty()) {
        return Status::InvalidArgument("Health takes no payload");
      }
      if (config_.live == nullptr) return std::string("ok");
      const live::LiveStatus live = config_.live->Snapshot();
      return StrFormat(
          "ok\n"
          "live_ticks_total %llu\n"
          "live_ticks_failed %llu\n"
          "live_last_tick_status %s\n"
          "live_pools_published %zu\n"
          "live_max_recommendation_age_seconds %.3f\n"
          "live_tunes_total %llu\n"
          "live_tunes_switched %llu\n"
          "live_tunes_failed %llu\n"
          "live_pools_tuned %zu\n",
          static_cast<unsigned long long>(live.ticks_total),
          static_cast<unsigned long long>(live.ticks_failed),
          live::TickStatusName(live.last_tick_status), live.pools_published,
          live.max_recommendation_age_seconds,
          static_cast<unsigned long long>(live.tunes_total),
          static_cast<unsigned long long>(live.tunes_switched),
          static_cast<unsigned long long>(live.tunes_failed),
          live.pools_tuned);
    }
    case Method::kMetrics: {
      obs::ScopedSpan span(config_.tracer, "router.Metrics");
      if (config_.metrics == nullptr) {
        return Status::Unavailable("no metrics registry wired");
      }
      // Fold tracer health (dropped/finished span gauges) into the scrape so
      // the loopback tests — and dashboards — can assert dropped == 0.
      if (config_.tracer != nullptr) {
        config_.tracer->PublishTo(config_.metrics);
      }
      // PrometheusText reads instruments via atomics; no store lock is
      // taken, so a scrape never contends with publishes or the live tick.
      return obs::PrometheusText(*config_.metrics);
    }
    case Method::kTrace: {
      if (config_.tracer == nullptr) {
        return Status::Unavailable("no tracer wired");
      }
      size_t limit = kDefaultTraceSpanLimit;
      if (!payload.empty()) {
        IPOOL_ASSIGN_OR_RETURN(const double parsed, ParseDouble(payload));
        if (parsed < 1.0) {
          return Status::InvalidArgument("trace span limit must be >= 1");
        }
        limit = static_cast<size_t>(parsed);
      }
      // The request's own span is still open, so it never shows up in its
      // own answer; newest spans last, truncated from the front.
      std::vector<obs::SpanRecord> spans = config_.tracer->FinishedSpans();
      if (spans.size() > limit) {
        spans.erase(spans.begin(),
                    spans.end() - static_cast<ptrdiff_t>(limit));
      }
      return obs::SpansJsonl(spans);
    }
  }
  return Status::InvalidArgument(
      StrFormat("unknown method %u", static_cast<unsigned>(method)));
}

Frame Router::Handle(const Frame& request) {
  Frame response;
  response.type = FrameType::kResponse;
  response.method = request.method;
  response.trace_id = request.trace_id;
  response.request_id = request.request_id;
  auto result = Dispatch(request.method, request.payload);
  if (result.ok()) {
    response.status = WireStatus::kOk;
    response.payload = std::move(result).value();
  } else {
    response.status = StatusToWireStatus(result.status());
    response.payload = result.status().message();
  }
  return response;
}

}  // namespace ipool::net
