// Nonblocking epoll TCP service host for the ipool control plane.
//
// Threading model (see DESIGN.md "Serving layer"):
//   * One event-loop thread owns epoll, every socket, and all frame
//     decoding. Sockets are nonblocking and level-triggered.
//   * Request frames are dispatched onto an exec::ThreadPool (the handler
//     runs on a pool worker); with no pool wired, handlers run inline on
//     the event loop (fine for tests and tiny deployments).
//   * Workers never touch sockets: a finished handler appends the encoded
//     response to the connection's outbound buffer under its mutex and
//     nudges the event loop through an eventfd; the loop flushes.
//
// Backpressure: each connection has a bounded in-flight budget
// (`max_inflight_per_conn`). A request arriving over budget is shed — it is
// NOT executed and the client gets an explicit RETRY_AFTER response (count:
// ipool_net_shed_total), making retry unconditionally safe. A connection
// whose outbound buffer exceeds `max_outbuf_bytes` is closed (the peer
// stopped reading).
//
// Shutdown: Shutdown(t) stops accepting, lets in-flight handlers finish and
// responses flush for up to t seconds (new requests during the drain answer
// UNAVAILABLE), then closes everything. The destructor drains with the
// configured default.
#ifndef IPOOL_NET_SERVER_H_
#define IPOOL_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "net/frame.h"

namespace ipool {
namespace exec {
class ThreadPool;
}  // namespace exec
namespace obs {
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
class Tracer;
}  // namespace obs
}  // namespace ipool

namespace ipool::net {

struct ServerConfig {
  /// Loopback by default; the serving layer is not hardened for the open
  /// internet.
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Handler executor. Null runs handlers inline on the event loop.
  exec::ThreadPool* pool = nullptr;
  /// Bounded per-connection queue: requests queued or executing. At the
  /// limit, new requests are shed with RETRY_AFTER.
  size_t max_inflight_per_conn = 64;
  /// Accept backlog + concurrent connection cap; excess accepts are closed
  /// immediately.
  size_t max_connections = 1024;
  size_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// Close a connection whose unflushed responses exceed this.
  size_t max_outbuf_bytes = 64u << 20;
  /// Drain budget used by the destructor.
  double default_drain_timeout_seconds = 5.0;
  /// Server-side instruments (request/shed/error counters, connection
  /// gauge, per-method latency, dispatch queue wait). Null disables.
  obs::MetricsRegistry* metrics = nullptr;
  /// Request spans: each handled request records a per-method span adopting
  /// the trace id stamped in the frame header, so server-side timing joins
  /// the client's trace. Null disables. The tracer must be thread-safe for
  /// the wired pool (obs::Tracer is).
  obs::Tracer* tracer = nullptr;
};

struct NetInstruments;

class Server {
 public:
  /// Handles one decoded request; must be thread-safe when a pool is wired.
  using Handler = std::function<Frame(const Frame&)>;

  /// Binds, listens, and starts the event loop. The returned server is
  /// pinned (unique_ptr) because workers capture a pointer to it.
  static Result<std::unique_ptr<Server>> Start(const ServerConfig& config,
                                               Handler handler);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (resolved when config.port was 0).
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, finish in-flight work and flush
  /// responses for up to `drain_timeout_seconds`, then close. Idempotent;
  /// later calls return immediately.
  void Shutdown(double drain_timeout_seconds);
  void Shutdown() { Shutdown(config_.default_drain_timeout_seconds); }

  /// Lifetime counters (exact once shut down).
  uint64_t requests_handled() const {
    return requests_handled_.load(std::memory_order_relaxed);
  }
  uint64_t requests_shed() const {
    return requests_shed_.load(std::memory_order_relaxed);
  }
  uint64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;

  Server(const ServerConfig& config, Handler handler);
  Status Bind();
  void EventLoop();
  void HandleAccept();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  void DispatchFrame(const std::shared_ptr<Conn>& conn, Frame frame);
  /// Encodes and enqueues `response`, bumps the request counters, and
  /// observes latency when `elapsed_seconds` >= 0. The Locked variant
  /// requires `conn->mu` to be held by the caller.
  void FinishRequest(const std::shared_ptr<Conn>& conn, const Frame& response,
                     double elapsed_seconds);
  void FinishRequestLocked(const std::shared_ptr<Conn>& conn,
                           const Frame& response, double elapsed_seconds);
  void FlushWrites(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void UpdateEpollOut(const std::shared_ptr<Conn>& conn, bool want_write);
  void Wake();
  /// True when no connection has queued work or unflushed output.
  bool Idle();

  ServerConfig config_;
  Handler handler_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread loop_;
  std::map<int, std::shared_ptr<Conn>> conns_;  // event-loop thread only

  std::atomic<bool> draining_{false};
  std::once_flag shutdown_once_;
  std::atomic<double> drain_deadline_seconds_{0.0};  // from loop start

  std::atomic<size_t> inflight_tasks_{0};  // handler tasks not yet finished
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;

  std::atomic<uint64_t> requests_handled_{0};
  std::atomic<uint64_t> requests_shed_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> connections_accepted_{0};

  // Instrument handles fetched once at Start (null when metrics disabled).
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* protocol_error_counter_ = nullptr;
  obs::Gauge* connections_gauge_ = nullptr;
  std::unique_ptr<NetInstruments> instruments_;
};

}  // namespace ipool::net

#endif  // IPOOL_NET_SERVER_H_
