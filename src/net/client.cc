#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "obs/trace.h"

namespace ipool::net {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

/// Polls one fd for `events` until the deadline; OK when ready.
Status PollFd(int fd, short events, double deadline) {
  while (true) {
    const double remaining = deadline - NowSeconds();
    if (remaining <= 0.0) return Status::DeadlineExceeded("request timed out");
    pollfd pfd{fd, events, 0};
    const int n = poll(&pfd, 1, static_cast<int>(remaining * 1000.0) + 1);
    if (n > 0) return Status::OK();
    if (n < 0 && errno != EINTR) return Errno("poll");
  }
}

bool DefaultIdempotent(Method method) {
  // PublishTelemetry appends; replaying a timed-out publish could record
  // the batch twice. Everything else is a pure read.
  return method != Method::kPublishTelemetry;
}

}  // namespace

Client::Client(ClientConfig config)
    : config_(std::move(config)),
      jitter_(config_.jitter_seed),
      // Decorrelated from the jitter stream so adding tracing never shifts
      // the backoff schedule tests pin down.
      trace_ids_(config_.jitter_seed ^ 0x9E3779B97F4A7C15ULL),
      decoder_(config_.max_payload_bytes) {}

uint64_t Client::NextTraceId() {
  uint64_t id = 0;
  while (id == 0) id = trace_ids_.Next();
  return id;
}

Client::~Client() { Disconnect(); }

void Client::Disconnect() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  decoder_ = FrameDecoder(config_.max_payload_bytes);
}

Status Client::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    close(fd);
    return Errno("fcntl(O_NONBLOCK)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host address: " + config_.host);
  }
  const double deadline = NowSeconds() + config_.connect_timeout_seconds;
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    close(fd);
    return Errno("connect");
  }
  if (Status ready = PollFd(fd, POLLOUT, deadline); !ready.ok()) {
    close(fd);
    return ready;
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
    close(fd);
    errno = err != 0 ? err : errno;
    return Errno("connect");
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  ++stats_.reconnects;
  return Status::OK();
}

Status Client::SendAll(const std::string& bytes, double deadline) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      IPOOL_RETURN_NOT_OK(PollFd(fd_, POLLOUT, deadline));
      continue;
    }
    return Errno("write");
  }
  return Status::OK();
}

Result<Frame> Client::ReadResponse(double deadline) {
  char buf[64 * 1024];
  while (!decoder_.HasFrame()) {
    IPOOL_RETURN_NOT_OK(PollFd(fd_, POLLIN, deadline));
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n == 0) return Status::Unavailable("server closed connection");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("read");
    }
    if (Status fed = decoder_.Feed(buf, static_cast<size_t>(n)); !fed.ok()) {
      ++stats_.protocol_errors;
      return fed;
    }
  }
  return decoder_.Next();
}

Status Client::FrameError(const Frame& frame) {
  return WireStatusToStatus(frame.status,
                            StrFormat("%s: %s", WireStatusToString(frame.status),
                                      frame.payload.c_str()));
}

Result<Frame> Client::Call(Method method, std::string payload,
                           const RequestOptions& options) {
  ++stats_.requests;
  const bool idempotent =
      options.idempotency == RequestOptions::Idempotency::kDefault
          ? DefaultIdempotent(method)
          : options.idempotency == RequestOptions::Idempotency::kIdempotent;

  // One trace id per logical Call, shared by every retry attempt, so the
  // whole exchange — backoffs, reconnects, the server's handler — reads as a
  // single tree. Stamped even with no tracer wired: the id is what links the
  // server's spans and exemplars back to this request.
  const uint64_t trace_id = NextTraceId();
  stats_.last_trace_id = trace_id;
  obs::ScopedSpan call_span(config_.tracer, "client.call",
                            obs::SpanContext{trace_id, 0});

  double backoff = config_.backoff_initial_seconds;
  Status last = Status::Unavailable("no attempts made");
  for (int attempt = 0; attempt < std::max(1, config_.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      {
        obs::ScopedSpan backoff_span(config_.tracer, "client.backoff");
        const double sleep = backoff * jitter_.Uniform(0.5, 1.5);
        std::this_thread::sleep_for(std::chrono::duration<double>(sleep));
      }
      backoff = std::min(backoff * config_.backoff_multiplier,
                         config_.backoff_max_seconds);
    }
    ++stats_.attempts;
    obs::ScopedSpan attempt_span(config_.tracer, "client.attempt");

    if (Status st = EnsureConnected(); !st.ok()) {
      // Nothing reached the server; always safe to retry.
      last = st;
      continue;
    }
    Frame request;
    request.type = FrameType::kRequest;
    request.method = method;
    request.trace_id = trace_id;
    request.request_id = next_request_id_++;
    request.payload = payload;
    const double deadline = NowSeconds() + config_.request_timeout_seconds;
    Status sent = SendAll(EncodeFrame(request), deadline);
    if (!sent.ok()) {
      Disconnect();
      last = sent;
      if (!idempotent) return last;  // may or may not have executed
      continue;
    }
    auto response = ReadResponse(deadline);
    if (!response.ok()) {
      // A timed-out or torn response leaves the stream unsynchronized;
      // a late response must never be matched to the next request.
      Disconnect();
      last = response.status();
      if (!idempotent) return last;
      continue;
    }
    if (response->type != FrameType::kResponse ||
        response->request_id != request.request_id) {
      ++stats_.protocol_errors;
      Disconnect();
      last = Status::Internal(
          StrFormat("response id %u does not match request %u",
                    response->request_id, request.request_id));
      if (!idempotent) return last;
      continue;
    }
    if (response->trace_id != request.trace_id) {
      // A mismatched echo means the stream delivered someone else's frame;
      // treat it exactly like a request-id mismatch.
      ++stats_.protocol_errors;
      Disconnect();
      last = Status::Internal(
          StrFormat("response trace %llu does not match request %llu",
                    static_cast<unsigned long long>(response->trace_id),
                    static_cast<unsigned long long>(request.trace_id)));
      if (!idempotent) return last;
      continue;
    }
    if (response->status == WireStatus::kRetryAfter ||
        response->status == WireStatus::kUnavailable) {
      // Explicitly shed before execution: retryable regardless of method.
      if (response->status == WireStatus::kRetryAfter) {
        ++stats_.shed_responses;
      }
      last = FrameError(*response);
      continue;
    }
    return std::move(response).value();
  }
  return last;
}

Result<std::vector<Frame>> Client::CallPipelined(
    const std::vector<PipelinedRequest>& requests) {
  std::vector<Frame> out(requests.size());
  if (requests.empty()) return out;
  IPOOL_RETURN_NOT_OK(EnsureConnected());

  // One trace id for the whole window: the server's per-request spans all
  // join the same tree, mirroring how a fleet worker batches fetches.
  const uint64_t trace_id = NextTraceId();
  stats_.last_trace_id = trace_id;
  obs::ScopedSpan call_span(config_.tracer, "client.pipeline",
                            obs::SpanContext{trace_id, 0});
  const double deadline = NowSeconds() + config_.request_timeout_seconds;

  const uint32_t first_id = next_request_id_;
  std::string wire;
  for (const PipelinedRequest& request : requests) {
    ++stats_.requests;
    ++stats_.attempts;
    Frame frame;
    frame.type = FrameType::kRequest;
    frame.method = request.method;
    frame.trace_id = trace_id;
    frame.request_id = next_request_id_++;
    frame.payload = request.payload;
    wire += EncodeFrame(frame);
  }
  if (Status sent = SendAll(wire, deadline); !sent.ok()) {
    Disconnect();
    return sent;
  }

  // Handlers run on a pool, so responses may interleave arbitrarily; match
  // each one back to its slot by request id.
  std::vector<bool> seen(requests.size(), false);
  for (size_t received = 0; received < requests.size(); ++received) {
    auto response = ReadResponse(deadline);
    if (!response.ok()) {
      Disconnect();
      return response.status();
    }
    const size_t idx =
        static_cast<size_t>(response->request_id - first_id);  // mod 2^32
    if (response->type != FrameType::kResponse || idx >= requests.size() ||
        seen[idx] || response->trace_id != trace_id) {
      ++stats_.protocol_errors;
      Disconnect();
      return Status::Internal(
          StrFormat("pipelined response id %u outside window [%u, %zu)",
                    response->request_id, first_id,
                    static_cast<size_t>(first_id) + requests.size()));
    }
    if (response->status == WireStatus::kRetryAfter) ++stats_.shed_responses;
    seen[idx] = true;
    out[idx] = std::move(*response);
  }
  return out;
}

Result<std::string> Client::GetRecommendation(const std::string& pool_key) {
  IPOOL_ASSIGN_OR_RETURN(auto frame,
                         Call(Method::kGetRecommendation, pool_key));
  if (frame.status != WireStatus::kOk) return FrameError(frame);
  return std::move(frame.payload);
}

Status Client::PublishTelemetry(const std::string& metric, double time,
                                double value) {
  IPOOL_ASSIGN_OR_RETURN(
      auto frame,
      Call(Method::kPublishTelemetry,
           StrFormat("%s,%.17g,%.17g\n", metric.c_str(), time, value)));
  if (frame.status != WireStatus::kOk) return FrameError(frame);
  return Status::OK();
}

Result<std::string> Client::Health() {
  IPOOL_ASSIGN_OR_RETURN(auto frame, Call(Method::kHealth, ""));
  if (frame.status != WireStatus::kOk) return FrameError(frame);
  return std::move(frame.payload);
}

Result<std::string> Client::ScrapeMetrics() {
  IPOOL_ASSIGN_OR_RETURN(auto frame, Call(Method::kMetrics, ""));
  if (frame.status != WireStatus::kOk) return FrameError(frame);
  return std::move(frame.payload);
}

Result<std::string> Client::FetchTrace(size_t limit) {
  IPOOL_ASSIGN_OR_RETURN(
      auto frame,
      Call(Method::kTrace, limit == 0 ? std::string() : StrFormat("%zu", limit)));
  if (frame.status != WireStatus::kOk) return FrameError(frame);
  return std::move(frame.payload);
}

}  // namespace ipool::net
