// Wire framing for the ipool serving layer: a fixed 28-byte little-endian
// header followed by an opaque payload, integrity-checked end to end.
//
//   offset  size  field
//        0     4  magic "IPL2"
//        4     1  frame type (request / response)
//        5     1  method (Method enum)
//        6     1  wire status (WireStatus enum; 0 in requests)
//        7     1  reserved, must be 0
//        8     8  trace id (stamped by the client, echoed in the response)
//       16     4  request id (echoed verbatim in the response)
//       20     4  payload length in bytes
//       24     4  CRC-32 (IEEE) of header bytes [4, 24) + the payload
//       28   len  payload
//
// The CRC covers every mutable header field, not just the payload, so a
// corrupted trace or request id cannot silently re-route a response — it
// poisons the connection like any other integrity failure.
//
// The decoder is incremental: feed it whatever the socket produced and it
// yields zero or more complete frames. Any malformed input (bad magic, a
// length beyond the configured cap, a CRC mismatch) is a hard protocol
// error — the connection carrying it cannot be trusted to be in sync again
// and must be closed.
#ifndef IPOOL_NET_FRAME_H_
#define IPOOL_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

#include "common/status.h"

namespace ipool::net {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `size` bytes.
uint32_t Crc32(const void* data, size_t size);

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
};

enum class Method : uint8_t {
  kGetRecommendation = 1,
  kPublishTelemetry = 2,
  kHealth = 3,
  kMetrics = 4,
  /// Fetches recent finished server spans as JSONL; the request payload is
  /// an optional decimal span limit.
  kTrace = 5,
};

const char* MethodToString(Method method);

/// Response status carried on the wire. Mirrors StatusCode where a mapping
/// exists; kRetryAfter is the explicit load-shedding answer (the request
/// was NOT executed, so retrying is always safe).
enum class WireStatus : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kUnavailable = 3,
  kDeadlineExceeded = 4,
  kInternal = 5,
  kRetryAfter = 6,
};

const char* WireStatusToString(WireStatus status);

/// WireStatus -> Status for client-side error surfaces (kOk maps to OK()).
Status WireStatusToStatus(WireStatus status, const std::string& message);
/// StatusCode -> the closest WireStatus (anything unmapped becomes
/// kInternal).
WireStatus StatusToWireStatus(const Status& status);

inline constexpr size_t kFrameHeaderBytes = 28;
inline constexpr uint32_t kFrameMagic = 0x324c5049;  // "IPL2" little-endian
/// Default cap on a single frame's payload. Large enough for a /metrics
/// scrape of a busy registry, small enough that a hostile length field
/// cannot balloon a connection buffer.
inline constexpr size_t kDefaultMaxPayloadBytes = 4u << 20;

struct Frame {
  FrameType type = FrameType::kRequest;
  Method method = Method::kHealth;
  WireStatus status = WireStatus::kOk;
  /// Names the end-to-end trace this request belongs to (0 = untraced).
  /// Servers adopt it for their spans and echo it in the response.
  uint64_t trace_id = 0;
  uint32_t request_id = 0;
  std::string payload;
};

/// Serializes header + payload (CRC computed here).
std::string EncodeFrame(const Frame& frame);

/// Incremental frame parser over a byte stream. Not thread-safe; one
/// decoder per connection.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload_bytes = kDefaultMaxPayloadBytes)
      : max_payload_bytes_(max_payload_bytes) {}

  /// Appends raw socket bytes. Returns a protocol error on bad magic, an
  /// unknown frame type, a reserved-byte violation, an oversized length, or
  /// a CRC mismatch; after an error the decoder is poisoned (every later
  /// Feed fails) because stream sync is unrecoverable.
  Status Feed(const char* data, size_t size);

  /// True when at least one complete frame is ready.
  bool HasFrame() const { return !ready_.empty(); }
  /// Pops the oldest complete frame. Requires HasFrame().
  Frame Next();

  /// Bytes buffered but not yet forming a complete frame.
  size_t PendingBytes() const { return buffer_.size(); }

 private:
  size_t max_payload_bytes_;
  std::string buffer_;
  std::deque<Frame> ready_;
  bool poisoned_ = false;
};

}  // namespace ipool::net

#endif  // IPOOL_NET_FRAME_H_
