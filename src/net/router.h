// The request router: maps decoded request frames onto the control-plane
// stores, mirroring the production topology of §7 (pooling workers fetch
// recommendation documents, the monitoring pipeline appends telemetry, the
// dashboard scrapes metrics).
//
// Payloads are the repo's existing text formats, so the wire layer adds no
// second serialization scheme:
//   * GetRecommendation  — request: document key (e.g. "east-medium");
//                          response: the stored recommendation document
//                          (ParseRecommendation-compatible).
//   * PublishTelemetry   — request: one `metric,time,value` triple per
//                          line; response: empty. Appends must arrive in
//                          non-decreasing time order per metric (the
//                          telemetry-store contract).
//   * Health             — request: must be empty (anything else is
//                          rejected as INVALID_ARGUMENT); response: "ok",
//                          followed by live-control-plane fields
//                          (`live_<field> <value>` lines: tick counts, last
//                          tick status, max recommendation age) when a
//                          LiveControlPlane is wired in.
//   * Metrics            — response: Prometheus text exposition of the
//                          wired registry (obs::PrometheusText).
//   * Trace              — request: optional decimal span limit; response:
//                          the most recent finished server spans as JSONL
//                          (obs::SpansJsonl), newest last.
//
// Concurrency: the router itself holds no lock — the stores it fronts are
// sharded and internally synchronized (per-shard mutexes; see
// service/sharded_document_store.h and service/sharded_telemetry_store.h),
// replacing the single store_mutex() the pre-shard router exposed.
// GetRecommendation is lock-free-in-practice: one atomic shard-snapshot
// load, a map lookup, and a copy of the pre-serialized payload bytes.
// PublishTelemetry applies each parse-validated batch with one lock
// acquisition per touched shard. Health and Metrics never touch a store
// lock at all (live status and instruments are read via atomics), so
// scrapes cannot contend with publishes. Handle() is therefore safe to
// dispatch from every worker of an exec::ThreadPool.
#ifndef IPOOL_NET_ROUTER_H_
#define IPOOL_NET_ROUTER_H_

#include <string>

#include "common/status.h"
#include "net/frame.h"

namespace ipool {
class ShardedDocumentStore;
class ShardedTelemetryStore;
namespace live {
class LiveControlPlane;
}  // namespace live
namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs
}  // namespace ipool

namespace ipool::net {

struct RouterConfig {
  /// Recommendation documents served to GetRecommendation. May be null
  /// (every lookup answers UNAVAILABLE).
  ShardedDocumentStore* documents = nullptr;
  /// Sink for PublishTelemetry. May be null (publishes answer UNAVAILABLE).
  ShardedTelemetryStore* telemetry = nullptr;
  /// Scrape target for Metrics. May be null (scrapes answer UNAVAILABLE).
  obs::MetricsRegistry* metrics = nullptr;
  /// Source for Trace and for per-method handler child spans. May be null
  /// (traces answer UNAVAILABLE, no spans are recorded). Typically the same
  /// tracer wired into ServerConfig so handler spans nest under the server's
  /// request span.
  obs::Tracer* tracer = nullptr;
  /// In-process streaming control plane (optional): Health folds its tick
  /// counters and recommendation staleness into the payload. The plane
  /// publishes through the same sharded stores, so its document swaps are
  /// atomic per shard with respect to served reads.
  const live::LiveControlPlane* live = nullptr;
};

/// Parses one `metric,time,value` telemetry line. Exposed for tests.
Result<std::string> ParseTelemetryLine(const std::string& line, double* time,
                                       double* value);

class Router {
 public:
  explicit Router(RouterConfig config) : config_(config) {}
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Builds the response frame for one request (request_id echoed, type
  /// kResponse). Errors become wire statuses with the Status message as
  /// payload; this never fails out-of-band.
  Frame Handle(const Frame& request);

  /// Wires the live control plane after construction — the plane is built
  /// against the same stores this router serves, so it typically does not
  /// exist yet when the RouterConfig is assembled. Call before serving
  /// starts; Handle() reads the pointer unsynchronized.
  void set_live(const live::LiveControlPlane* live) { config_.live = live; }

 private:
  Result<std::string> Dispatch(Method method, const std::string& payload);

  RouterConfig config_;
};

}  // namespace ipool::net

#endif  // IPOOL_NET_ROUTER_H_
