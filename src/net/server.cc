#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <fcntl.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ipool::net {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

// The instrument tables are indexed by method (1-based on the wire).
size_t MethodIndex(Method method) {
  return static_cast<size_t>(method) - 1;
}

constexpr size_t kNumMethods = 5;
constexpr size_t kNumStatuses = 7;

// Static span names so ScopedSpan costs no allocation for the label itself.
const char* MethodSpanName(Method method) {
  switch (method) {
    case Method::kGetRecommendation:
      return "net.GetRecommendation";
    case Method::kPublishTelemetry:
      return "net.PublishTelemetry";
    case Method::kHealth:
      return "net.Health";
    case Method::kMetrics:
      return "net.Metrics";
    case Method::kTrace:
      return "net.Trace";
  }
  return "net.Unknown";
}

}  // namespace

// All mutable connection state shared with handler workers sits behind
// `mu`; the decoder and epoll bookkeeping are event-loop-only.
struct Server::Conn {
  explicit Conn(size_t max_payload) : decoder(max_payload) {}

  int fd = -1;
  FrameDecoder decoder;   // event-loop thread only
  bool want_write = false;  // EPOLLOUT registered; event-loop thread only

  std::mutex mu;
  std::string outbuf;   // encoded, unflushed responses
  size_t inflight = 0;  // requests queued or executing
  bool closed = false;  // fd gone; late responses are dropped
};

// Per-(method, status) request counters + per-method latency histograms,
// created eagerly so scrapes show the full family at zero.
struct NetInstruments {
  obs::Counter* requests[kNumMethods][kNumStatuses] = {};
  obs::Histogram* latency[kNumMethods] = {};
  obs::Histogram* dispatch_queue[kNumMethods] = {};
};
namespace {
NetInstruments MakeInstruments(obs::MetricsRegistry* metrics) {
  NetInstruments out;
  for (size_t m = 0; m < kNumMethods; ++m) {
    const Method method = static_cast<Method>(m + 1);
    for (size_t s = 0; s < kNumStatuses; ++s) {
      out.requests[m][s] = metrics->GetCounter(
          "ipool_net_requests_total",
          {{"method", MethodToString(method)},
           {"status", WireStatusToString(static_cast<WireStatus>(s))}});
    }
    out.latency[m] = metrics->GetHistogram(
        "ipool_net_request_seconds", {{"method", MethodToString(method)}});
    out.dispatch_queue[m] = metrics->GetHistogram(
        "ipool_net_dispatch_queue_seconds",
        {{"method", MethodToString(method)}});
  }
  return out;
}
}  // namespace

Server::Server(const ServerConfig& config, Handler handler)
    : config_(config), handler_(std::move(handler)) {}

Result<std::unique_ptr<Server>> Server::Start(const ServerConfig& config,
                                              Handler handler) {
  if (handler == nullptr) {
    return Status::InvalidArgument("server needs a handler");
  }
  std::unique_ptr<Server> server(new Server(config, std::move(handler)));
  IPOOL_RETURN_NOT_OK(server->Bind());
  if (config.metrics != nullptr) {
    server->shed_counter_ = config.metrics->GetCounter("ipool_net_shed_total");
    server->protocol_error_counter_ =
        config.metrics->GetCounter("ipool_net_protocol_errors_total");
    server->connections_gauge_ =
        config.metrics->GetGauge("ipool_net_connections");
    server->connections_gauge_->Set(0.0);
    server->instruments_ =
        std::make_unique<NetInstruments>(MakeInstruments(config.metrics));
  }
  server->loop_ = std::thread([s = server.get()] { s->EventLoop(); });
  return server;
}

Status Server::Bind() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " +
                                   config_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind " + config_.bind_address +
                 StrFormat(":%u", config_.port));
  }
  if (listen(listen_fd_, static_cast<int>(
                             std::min<size_t>(config_.max_connections, 512))) <
      0) {
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  IPOOL_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return Errno("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.data.fd = wake_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return Errno("epoll_ctl(wake)");
  }
  return Status::OK();
}

void Server::Wake() {
  const uint64_t one = 1;
  // A full eventfd counter is impossible in practice; ignore short writes.
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void Server::EventLoop() {
  std::vector<epoll_event> events(128);
  while (true) {
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining) {
      if (Idle() || NowSeconds() >= drain_deadline_seconds_.load(
                                        std::memory_order_acquire)) {
        break;
      }
    }
    const int n = epoll_wait(epoll_fd_, events.data(),
                             static_cast<int>(events.size()), 20);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sensible left to do
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drop = 0;
        [[maybe_unused]] ssize_t r = read(wake_fd_, &drop, sizeof(drop));
        continue;
      }
      if (fd == listen_fd_) {
        if (!draining) HandleAccept();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<Conn> conn = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) HandleReadable(conn);
      if ((events[i].events & EPOLLOUT) != 0) FlushWrites(conn);
    }
    // Responses enqueued by workers since the last pass: flush every
    // connection with pending output (cheap scan; connection counts in this
    // control plane are modest).
    for (auto it = conns_.begin(); it != conns_.end();) {
      std::shared_ptr<Conn> conn = it->second;
      ++it;  // FlushWrites may erase
      bool pending;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        pending = !conn->outbuf.empty();
      }
      if (pending) FlushWrites(conn);
    }
  }
  // Drain finished (or timed out): close whatever is left.
  for (auto& [fd, conn] : conns_) {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed = true;
    close(conn->fd);
  }
  conns_.clear();
  if (connections_gauge_ != nullptr) connections_gauge_->Set(0.0);
}

void Server::HandleAccept() {
  while (true) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: try next wakeup
    if (conns_.size() >= config_.max_connections) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(config_.max_payload_bytes);
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (connections_gauge_ != nullptr) {
      connections_gauge_->Set(static_cast<double>(conns_.size()));
    }
  }
}

void Server::HandleReadable(const std::shared_ptr<Conn>& conn) {
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n == 0) {
      CloseConn(conn);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConn(conn);
      return;
    }
    Status fed = conn->decoder.Feed(buf, static_cast<size_t>(n));
    if (!fed.ok()) {
      // The stream cannot be re-synchronized after a framing error; a
      // response could itself be misread, so just close.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      if (protocol_error_counter_ != nullptr) protocol_error_counter_->Add();
      CloseConn(conn);
      return;
    }
    while (conn->decoder.HasFrame()) {
      DispatchFrame(conn, conn->decoder.Next());
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->closed) return;  // DispatchFrame rejected the stream
    }
    if (static_cast<size_t>(n) < sizeof(buf)) break;
  }
}

void Server::DispatchFrame(const std::shared_ptr<Conn>& conn, Frame frame) {
  if (frame.type != FrameType::kRequest) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    if (protocol_error_counter_ != nullptr) protocol_error_counter_->Add();
    CloseConn(conn);
    return;
  }
  Frame reject;
  reject.type = FrameType::kResponse;
  reject.method = frame.method;
  reject.trace_id = frame.trace_id;
  reject.request_id = frame.request_id;
  if (draining_.load(std::memory_order_acquire)) {
    reject.status = WireStatus::kUnavailable;
    reject.payload = "server draining";
    FinishRequest(conn, reject, -1.0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->inflight >= config_.max_inflight_per_conn) {
      requests_shed_.fetch_add(1, std::memory_order_relaxed);
      if (shed_counter_ != nullptr) shed_counter_->Add();
      reject.status = WireStatus::kRetryAfter;
      reject.payload = "per-connection queue full";
      // Shed before execution: the client may retry unconditionally.
      FinishRequestLocked(conn, reject, -1.0);
      return;
    }
    ++conn->inflight;
  }
  inflight_tasks_.fetch_add(1, std::memory_order_acq_rel);
  const double start = NowSeconds();
  auto task = [this, conn, request = std::move(frame), start]() {
    // Epoll-accept-to-worker-start latency: separates dispatch/queueing
    // pressure from handler cost. Measured for the inline path too, where it
    // reads ~0 and anchors the histogram's floor.
    const size_t mi = MethodIndex(request.method);
    if (instruments_ != nullptr && mi < kNumMethods) {
      instruments_->dispatch_queue[mi]->Observe(NowSeconds() - start,
                                                request.trace_id);
    }
    Frame response;
    {
      // The server-side request span adopts the client's trace id, so one
      // trace covers both processes; handler child spans nest under it.
      obs::ScopedSpan span(config_.tracer, MethodSpanName(request.method),
                           obs::SpanContext{request.trace_id, 0});
      response = handler_(request);
    }
    response.type = FrameType::kResponse;
    response.trace_id = request.trace_id;
    response.request_id = request.request_id;
    response.method = request.method;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      --conn->inflight;
      FinishRequestLocked(conn, response, NowSeconds() - start);
    }
    if (inflight_tasks_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_cv_.notify_all();
    }
  };
  if (config_.pool != nullptr) {
    config_.pool->Submit(std::move(task), "net.request");
  } else {
    task();
  }
}

void Server::FinishRequest(const std::shared_ptr<Conn>& conn,
                           const Frame& response, double elapsed_seconds) {
  std::lock_guard<std::mutex> lock(conn->mu);
  FinishRequestLocked(conn, response, elapsed_seconds);
}

void Server::FinishRequestLocked(const std::shared_ptr<Conn>& conn,
                                 const Frame& response,
                                 double elapsed_seconds) {
  requests_handled_.fetch_add(1, std::memory_order_relaxed);
  const size_t m = MethodIndex(response.method);
  const size_t s = static_cast<size_t>(response.status);
  if (instruments_ != nullptr && m < kNumMethods && s < kNumStatuses) {
    instruments_->requests[m][s]->Add();
    if (elapsed_seconds >= 0.0) {
      // The trace id doubles as the bucket exemplar, so a slow bucket in a
      // scrape points straight at a trace to pull via the Trace method.
      instruments_->latency[m]->Observe(elapsed_seconds, response.trace_id);
    }
  }
  if (conn->closed) return;  // peer went away while we worked
  conn->outbuf.append(EncodeFrame(response));
  // Opportunistic inline flush: a wake costs two eventfd syscalls plus an
  // event-loop pass per response, and nearly every response fits the socket
  // buffer. All fd writes happen under conn->mu, so this does not race the
  // event loop's FlushWrites; whatever does not fit (or a write error) is
  // left for the loop to flush or close on.
  while (!conn->outbuf.empty()) {
    const ssize_t n =
        write(conn->fd, conn->outbuf.data(), conn->outbuf.size());
    if (n > 0) {
      conn->outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN or hard error: hand off to the event loop
  }
  if (!conn->outbuf.empty()) Wake();
}

void Server::FlushWrites(const std::shared_ptr<Conn>& conn) {
  bool close_now = false;
  bool residue = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    while (!conn->outbuf.empty()) {
      const ssize_t n =
          write(conn->fd, conn->outbuf.data(), conn->outbuf.size());
      if (n > 0) {
        conn->outbuf.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_now = true;  // broken pipe etc.
      break;
    }
    if (conn->outbuf.size() > config_.max_outbuf_bytes) close_now = true;
    residue = !conn->outbuf.empty();
  }
  if (close_now) {
    CloseConn(conn);
    return;
  }
  UpdateEpollOut(conn, residue);
}

void Server::UpdateEpollOut(const std::shared_ptr<Conn>& conn,
                            bool want_write) {
  if (conn->want_write == want_write) return;
  conn->want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Server::CloseConn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    close(conn->fd);  // also removes it from the epoll set
  }
  conns_.erase(conn->fd);
  if (connections_gauge_ != nullptr) {
    connections_gauge_->Set(static_cast<double>(conns_.size()));
  }
}

bool Server::Idle() {
  if (inflight_tasks_.load(std::memory_order_acquire) != 0) return false;
  for (auto& [fd, conn] : conns_) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->inflight != 0 || !conn->outbuf.empty()) return false;
  }
  return true;
}

void Server::Shutdown(double drain_timeout_seconds) {
  std::call_once(shutdown_once_, [&] {
    drain_deadline_seconds_.store(
        NowSeconds() + std::max(0.0, drain_timeout_seconds),
        std::memory_order_release);
    draining_.store(true, std::memory_order_release);
    Wake();
    if (loop_.joinable()) loop_.join();
    // Handler tasks that missed the drain window may still be running on
    // the pool; they only touch Conn (kept alive by shared_ptr) and the
    // wake fd, so wait for them before tearing those down.
    {
      std::unique_lock<std::mutex> lock(inflight_mu_);
      inflight_cv_.wait(lock, [this] {
        return inflight_tasks_.load(std::memory_order_acquire) == 0;
      });
    }
    if (listen_fd_ >= 0) close(listen_fd_);
    if (wake_fd_ >= 0) close(wake_fd_);
    if (epoll_fd_ >= 0) close(epoll_fd_);
    listen_fd_ = wake_fd_ = epoll_fd_ = -1;
  });
}

Server::~Server() { Shutdown(config_.default_drain_timeout_seconds); }

}  // namespace ipool::net
