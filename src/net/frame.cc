#include "net/frame.h"

#include <array>
#include <cstring>

#include "common/strings.h"

namespace ipool::net {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void PutU32(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutU64(std::string& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

// The frame CRC covers header bytes [4, 24) — everything mutable except the
// magic and the CRC itself — followed by the payload.
constexpr size_t kCrcHeaderBegin = 4;
constexpr size_t kCrcHeaderEnd = 24;

uint32_t FrameCrc(const char* header, const char* payload,
                  size_t payload_len) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = 0xffffffffu;
  for (size_t i = kCrcHeaderBegin; i < kCrcHeaderEnd; ++i) {
    crc = table[(crc ^ static_cast<uint8_t>(header[i])) & 0xff] ^ (crc >> 8);
  }
  for (size_t i = 0; i < payload_len; ++i) {
    crc = table[(crc ^ static_cast<uint8_t>(payload[i])) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

const char* MethodToString(Method method) {
  switch (method) {
    case Method::kGetRecommendation:
      return "GetRecommendation";
    case Method::kPublishTelemetry:
      return "PublishTelemetry";
    case Method::kHealth:
      return "Health";
    case Method::kMetrics:
      return "Metrics";
    case Method::kTrace:
      return "Trace";
  }
  return "Unknown";
}

const char* WireStatusToString(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "OK";
    case WireStatus::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case WireStatus::kNotFound:
      return "NOT_FOUND";
    case WireStatus::kUnavailable:
      return "UNAVAILABLE";
    case WireStatus::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case WireStatus::kInternal:
      return "INTERNAL";
    case WireStatus::kRetryAfter:
      return "RETRY_AFTER";
  }
  return "UNKNOWN";
}

Status WireStatusToStatus(WireStatus status, const std::string& message) {
  switch (status) {
    case WireStatus::kOk:
      return Status::OK();
    case WireStatus::kInvalidArgument:
      return Status::InvalidArgument(message);
    case WireStatus::kNotFound:
      return Status::NotFound(message);
    case WireStatus::kUnavailable:
    case WireStatus::kRetryAfter:
      return Status::Unavailable(message);
    case WireStatus::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case WireStatus::kInternal:
      return Status::Internal(message);
  }
  return Status::Internal(message);
}

WireStatus StatusToWireStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireStatus::kOk;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kAlreadyExists:
      return WireStatus::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireStatus::kNotFound;
    case StatusCode::kUnavailable:
      return WireStatus::kUnavailable;
    case StatusCode::kDeadlineExceeded:
      return WireStatus::kDeadlineExceeded;
    case StatusCode::kInternal:
      return WireStatus::kInternal;
  }
  return WireStatus::kInternal;
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  PutU32(out, kFrameMagic);
  out.push_back(static_cast<char>(frame.type));
  out.push_back(static_cast<char>(frame.method));
  out.push_back(static_cast<char>(frame.status));
  out.push_back(0);  // reserved
  PutU64(out, frame.trace_id);
  PutU32(out, frame.request_id);
  PutU32(out, static_cast<uint32_t>(frame.payload.size()));
  PutU32(out, FrameCrc(out.data(), frame.payload.data(),
                       frame.payload.size()));
  out.append(frame.payload);
  return out;
}

Status FrameDecoder::Feed(const char* data, size_t size) {
  if (poisoned_) {
    return Status::InvalidArgument("frame decoder poisoned by earlier error");
  }
  buffer_.append(data, size);
  while (buffer_.size() >= kFrameHeaderBytes) {
    const char* head = buffer_.data();
    const uint32_t magic = GetU32(head);
    if (magic != kFrameMagic) {
      poisoned_ = true;
      return Status::InvalidArgument(
          StrFormat("bad frame magic 0x%08x", magic));
    }
    const uint8_t type = static_cast<uint8_t>(head[4]);
    if (type != static_cast<uint8_t>(FrameType::kRequest) &&
        type != static_cast<uint8_t>(FrameType::kResponse)) {
      poisoned_ = true;
      return Status::InvalidArgument(StrFormat("bad frame type %u", type));
    }
    if (head[7] != 0) {
      poisoned_ = true;
      return Status::InvalidArgument("reserved frame byte is non-zero");
    }
    const uint32_t payload_len = GetU32(head + 20);
    if (payload_len > max_payload_bytes_) {
      poisoned_ = true;
      return Status::InvalidArgument(
          StrFormat("frame payload %u exceeds cap %zu", payload_len,
                    max_payload_bytes_));
    }
    if (buffer_.size() < kFrameHeaderBytes + payload_len) break;
    const uint32_t want_crc = GetU32(head + 24);
    const uint32_t got_crc = FrameCrc(head, head + kFrameHeaderBytes,
                                      payload_len);
    if (want_crc != got_crc) {
      poisoned_ = true;
      return Status::InvalidArgument(
          StrFormat("frame CRC mismatch: header 0x%08x payload 0x%08x",
                    want_crc, got_crc));
    }
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.method = static_cast<Method>(static_cast<uint8_t>(head[5]));
    frame.status = static_cast<WireStatus>(static_cast<uint8_t>(head[6]));
    frame.trace_id = GetU64(head + 8);
    frame.request_id = GetU32(head + 16);
    frame.payload.assign(head + kFrameHeaderBytes, payload_len);
    ready_.push_back(std::move(frame));
    buffer_.erase(0, kFrameHeaderBytes + payload_len);
  }
  return Status::OK();
}

Frame FrameDecoder::Next() {
  Frame frame = std::move(ready_.front());
  ready_.pop_front();
  return frame;
}

}  // namespace ipool::net
