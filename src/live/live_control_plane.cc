#include "live/live_control_plane.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/recommendation_io.h"
#include "service/sharded_document_store.h"
#include "service/sharded_telemetry_store.h"
#include "tsdata/time_series.h"

namespace ipool::live {

namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* TickStatusName(TickStatus status) {
  switch (status) {
    case TickStatus::kIdle:
      return "idle";
    case TickStatus::kOk:
      return "ok";
    case TickStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

Status LiveControlPlaneConfig::Validate() const {
  if (tick_interval_seconds <= 0.0) {
    return Status::InvalidArgument("tick interval must be positive");
  }
  if (demand_metric_prefix.empty()) {
    return Status::InvalidArgument("demand metric prefix must be non-empty");
  }
  if (bin_interval_seconds <= 0.0) {
    return Status::InvalidArgument("bin interval must be positive");
  }
  if (history_bins < 8) {
    return Status::InvalidArgument("history_bins must be >= 8");
  }
  if (min_history_points == 0) {
    return Status::InvalidArgument("min_history_points must be >= 1");
  }
  return Status::OK();
}

struct LiveControlPlane::PoolWork {
  std::string key;
  TimeSeries history;
  /// Virtual time of the newest telemetry point (the recommendation starts
  /// one bin later).
  double last_time = 0.0;
  Result<Recommendation> result = Status::Internal("not computed");
};

Result<std::unique_ptr<LiveControlPlane>> LiveControlPlane::Create(
    const RecommendationEngine* engine, ShardedTelemetryStore* telemetry,
    ShardedDocumentStore* documents, const LiveControlPlaneConfig& config) {
  IPOOL_RETURN_NOT_OK(config.Validate());
  if (engine == nullptr || telemetry == nullptr || documents == nullptr) {
    return Status::InvalidArgument("null dependency");
  }
  return std::unique_ptr<LiveControlPlane>(
      new LiveControlPlane(engine, telemetry, documents, config));
}

LiveControlPlane::LiveControlPlane(const RecommendationEngine* engine,
                                   ShardedTelemetryStore* telemetry,
                                   ShardedDocumentStore* documents,
                                   const LiveControlPlaneConfig& config)
    : engine_(engine),
      telemetry_(telemetry),
      documents_(documents),
      config_(config) {
  if (!config_.clock) config_.clock = SteadySeconds;
  if (obs::MetricsRegistry* metrics = config_.obs.metrics;
      metrics != nullptr) {
    // Pre-register every status series so a scrape can assert
    // {status="failed"} == 0 before any tick has failed.
    ticks_ok_ = metrics->GetCounter("ipool_live_ticks_total",
                                    {{"status", "ok"}});
    ticks_failed_ = metrics->GetCounter("ipool_live_ticks_total",
                                        {{"status", "failed"}});
    ticks_idle_ = metrics->GetCounter("ipool_live_ticks_total",
                                      {{"status", "idle"}});
    pool_failures_ = metrics->GetCounter("ipool_live_pool_failures_total");
    pools_skipped_ = metrics->GetCounter("ipool_live_pools_skipped_total");
    pools_published_gauge_ = metrics->GetGauge("ipool_live_pools_published");
    tick_seconds_ = metrics->GetHistogram("ipool_live_tick_seconds");
  }
}

LiveControlPlane::~LiveControlPlane() { Stop(); }

void LiveControlPlane::Start() {
  std::lock_guard<std::mutex> lock(ticker_mu_);
  if (ticker_.joinable()) return;
  stop_requested_ = false;
  ticker_ = std::thread([this] { ThreadMain(); });
}

void LiveControlPlane::Stop() {
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    stop_requested_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
}

void LiveControlPlane::ThreadMain() {
  std::unique_lock<std::mutex> lock(ticker_mu_);
  while (!stop_requested_) {
    lock.unlock();
    TickOnce();
    lock.lock();
    ticker_cv_.wait_for(
        lock,
        std::chrono::duration<double>(config_.tick_interval_seconds),
        [this] { return stop_requested_; });
  }
}

TickStatus LiveControlPlane::TickOnce() {
  obs::ScopedSpan tick_span(config_.obs.tracer, "live.tick");
  obs::ScopedTimer tick_timer(tick_seconds_);

  // Stage 1: snapshot. No global lock: each pool's point count, last time
  // and binned history come from ONE shard shared-lock acquisition
  // (SnapshotBinned), so every pool's view is internally consistent even
  // while publishers keep appending to other shards.
  std::vector<PoolWork> work;
  size_t skipped = 0;
  {
    obs::ScopedSpan span(config_.obs.tracer, "live.snapshot");
    for (const std::string& metric : telemetry_->Metrics()) {
      if (metric.rfind(config_.demand_metric_prefix, 0) != 0) continue;
      std::string key = metric.substr(config_.demand_metric_prefix.size());
      if (key.empty()) continue;
      auto view = telemetry_->SnapshotBinned(
          metric, config_.bin_interval_seconds, config_.history_bins);
      if (!view.ok()) {
        PoolWork item;
        item.key = std::move(key);
        item.result = view.status();  // pipeline failure for this pool
        work.push_back(std::move(item));
        continue;
      }
      if (view->point_count < config_.min_history_points) {
        ++skipped;
        continue;
      }
      PoolWork item;
      item.key = std::move(key);
      // `history_bins` bins ending with (and including) the newest point.
      item.last_time = view->last_time;
      item.history = std::move(view->history);
      work.push_back(std::move(item));
    }
  }
  if (pools_skipped_ != nullptr && skipped > 0) pools_skipped_->Add(skipped);

  // Stage 2: compute, store lock released. Warm-state map nodes are created
  // serially here so the parallel bodies only touch their own pool's entry.
  if (!work.empty()) {
    obs::ScopedSpan span(config_.obs.tracer, "live.refit_solve");
    std::vector<ForecastWarmState*> warm(work.size(), nullptr);
    if (config_.warm_refit) {
      for (size_t i = 0; i < work.size(); ++i) {
        warm[i] = &warm_[work[i].key];
      }
    }
    exec::ParallelForOptions options;
    options.label = "live.pool";
    exec::ParallelFor(
        config_.exec, 0, work.size(),
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            PoolWork& item = work[i];
            if (item.history.empty()) continue;  // snapshot already failed
            size_t budget =
                injected_failures_.load(std::memory_order_relaxed);
            bool inject = false;
            while (budget > 0 && !inject) {
              inject = injected_failures_.compare_exchange_weak(
                  budget, budget - 1, std::memory_order_relaxed);
            }
            if (inject) {
              item.result = Status::Internal("injected live-tick failure");
              continue;
            }
            obs::ScopedSpan pool_span(config_.obs.tracer, "live.pool");
            item.result = engine_->Run(item.history, warm[i]);
          }
        },
        options);
  }

  // Stage 3: publish every fresh recommendation through PutBatch — ops are
  // grouped by shard and each shard's snapshot swaps exactly once, so
  // readers of a shard see either none or all of this tick's writes to it.
  // Unchanged serialized documents reuse the store's cached payload bytes
  // (payload_builds stays flat). Failed pools are not touched: their
  // previous document keeps serving (§7.6).
  const double wall = Now();
  size_t published = 0;
  size_t failed = 0;
  std::string last_error;
  {
    obs::ScopedSpan span(config_.obs.tracer, "live.publish");
    std::vector<ShardedDocumentStore::PutOp> puts;
    for (PoolWork& item : work) {
      if (!item.result.ok()) continue;
      StoredRecommendation stored;
      stored.recommendation = std::move(*item.result);
      stored.start_time = item.last_time + config_.bin_interval_seconds;
      stored.interval_seconds = config_.bin_interval_seconds;
      puts.push_back(ShardedDocumentStore::PutOp{
          item.key, SerializeRecommendation(stored), stored.start_time});
      ++published;
    }
    if (!puts.empty()) documents_->PutBatch(std::move(puts));
  }
  for (const PoolWork& item : work) {
    if (item.result.ok()) continue;
    ++failed;
    last_error = StrFormat("pool %s: %s", item.key.c_str(),
                           item.result.status().ToString().c_str());
  }
  if (pool_failures_ != nullptr && failed > 0) pool_failures_->Add(failed);

  const TickStatus status = failed > 0   ? TickStatus::kFailed
                            : published > 0 ? TickStatus::kOk
                                            : TickStatus::kIdle;
  switch (status) {
    case TickStatus::kOk:
      if (ticks_ok_ != nullptr) ticks_ok_->Add(1);
      break;
    case TickStatus::kFailed:
      if (ticks_failed_ != nullptr) ticks_failed_->Add(1);
      break;
    case TickStatus::kIdle:
      if (ticks_idle_ != nullptr) ticks_idle_->Add(1);
      break;
  }

  // Status + per-pool bookkeeping, then the age gauges (ages refresh once
  // per tick; between ticks the scrape sees the last tick's view).
  double max_age = 0.0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++status_.ticks_total;
    status_.ticks_ok += status == TickStatus::kOk ? 1 : 0;
    status_.ticks_failed += status == TickStatus::kFailed ? 1 : 0;
    status_.ticks_idle += status == TickStatus::kIdle ? 1 : 0;
    status_.last_tick_status = status;
    if (!last_error.empty()) status_.last_error = last_error;
    for (const PoolWork& item : work) {
      PoolState& state = pool_states_[item.key];
      if (item.result.ok()) {
        state.last_published = wall;
        ++state.publishes;
        state.consecutive_failures = 0;
      } else {
        ++state.consecutive_failures;
      }
    }
    for (const auto& [key, state] : pool_states_) {
      if (state.publishes == 0) continue;
      const double age = std::max(0.0, wall - state.last_published);
      max_age = std::max(max_age, age);
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics
            ->GetGauge("ipool_live_recommendation_age_seconds",
                       {{"pool", key}})
            ->Set(age);
      }
    }
    status_.pools_published = 0;
    for (const auto& [key, state] : pool_states_) {
      if (state.publishes > 0) ++status_.pools_published;
    }
    status_.max_recommendation_age_seconds = max_age;
    if (pools_published_gauge_ != nullptr) {
      pools_published_gauge_->Set(
          static_cast<double>(status_.pools_published));
    }
  }
  return status;
}

LiveStatus LiveControlPlane::Snapshot() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  LiveStatus out = status_;
  // Recompute ages against "now" so Health reports staleness that keeps
  // rising while ticks fail, not the age frozen at the last tick.
  const double wall = Now();
  double max_age = 0.0;
  for (const auto& [key, state] : pool_states_) {
    if (state.publishes == 0) continue;
    max_age = std::max(max_age, std::max(0.0, wall - state.last_published));
  }
  out.max_recommendation_age_seconds = max_age;
  return out;
}

}  // namespace ipool::live
