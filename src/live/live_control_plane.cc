#include "live/live_control_plane.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/recommendation_io.h"
#include "service/tuning_io.h"
#include "service/sharded_document_store.h"
#include "service/sharded_telemetry_store.h"
#include "tsdata/time_series.h"

namespace ipool::live {

namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* TickStatusName(TickStatus status) {
  switch (status) {
    case TickStatus::kIdle:
      return "idle";
    case TickStatus::kOk:
      return "ok";
    case TickStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

Status LiveControlPlaneConfig::Validate() const {
  if (tick_interval_seconds <= 0.0) {
    return Status::InvalidArgument("tick interval must be positive");
  }
  if (demand_metric_prefix.empty()) {
    return Status::InvalidArgument("demand metric prefix must be non-empty");
  }
  if (bin_interval_seconds <= 0.0) {
    return Status::InvalidArgument("bin interval must be positive");
  }
  if (history_bins < 8) {
    return Status::InvalidArgument("history_bins must be >= 8");
  }
  if (min_history_points == 0) {
    return Status::InvalidArgument("min_history_points must be >= 1");
  }
  if (tune_interval_seconds < 0.0) {
    return Status::InvalidArgument("tune interval must be >= 0");
  }
  if (tune_interval_seconds > 0.0) {
    if (tuning_doc_prefix.empty()) {
      return Status::InvalidArgument("tuning doc prefix must be non-empty");
    }
    // The tuner backtests on the tick's own snapshots, which are always
    // exactly history_bins long — reject geometries where every tune would
    // fail for lack of bins.
    if (history_bins < tuner.eval_bins + tuner.min_train_bins) {
      return Status::InvalidArgument(StrFormat(
          "history_bins %zu cannot cover tuner eval_bins %zu + "
          "min_train_bins %zu",
          history_bins, tuner.eval_bins, tuner.min_train_bins));
    }
  }
  return Status::OK();
}

struct LiveControlPlane::PoolWork {
  std::string key;
  TimeSeries history;
  /// Virtual time of the newest telemetry point (the recommendation starts
  /// one bin later).
  double last_time = 0.0;
  /// Per-pool engine override resolved from the pool's tuning document;
  /// null serves with the shared engine.
  const RecommendationEngine* engine = nullptr;
  Result<Recommendation> result = Status::Internal("not computed");
};

Result<std::unique_ptr<LiveControlPlane>> LiveControlPlane::Create(
    const RecommendationEngine* engine, ShardedTelemetryStore* telemetry,
    ShardedDocumentStore* documents, const LiveControlPlaneConfig& config) {
  IPOOL_RETURN_NOT_OK(config.Validate());
  if (engine == nullptr || telemetry == nullptr || documents == nullptr) {
    return Status::InvalidArgument("null dependency");
  }
  auto plane = std::unique_ptr<LiveControlPlane>(
      new LiveControlPlane(engine, telemetry, documents, config));
  if (config.tune_interval_seconds > 0.0) {
    // Pin the tuner's backtest geometry to the serving engine so a tuning
    // score means exactly what serving with that config would do; callers
    // only shape the search (grid, rungs, hysteresis...).
    autotune::FleetTunerConfig tuner_config = config.tuner;
    tuner_config.pool = engine->config().saa.pool;
    tuner_config.forecast = engine->config().forecast;
    tuner_config.forecast.ssa_warm = nullptr;
    tuner_config.forecast.exec = {};
    tuner_config.forecast.obs = {};
    if (tuner_config.exec.pool == nullptr) {
      tuner_config.exec = plane->config_.exec;
    }
    if (!tuner_config.obs.enabled()) tuner_config.obs = plane->config_.obs;
    IPOOL_ASSIGN_OR_RETURN(plane->tuner_,
                           autotune::FleetTuner::Create(tuner_config));
  }
  return plane;
}

LiveControlPlane::LiveControlPlane(const RecommendationEngine* engine,
                                   ShardedTelemetryStore* telemetry,
                                   ShardedDocumentStore* documents,
                                   const LiveControlPlaneConfig& config)
    : engine_(engine),
      telemetry_(telemetry),
      documents_(documents),
      config_(config) {
  if (!config_.clock) config_.clock = SteadySeconds;
  if (obs::MetricsRegistry* metrics = config_.obs.metrics;
      metrics != nullptr) {
    // Pre-register every status series so a scrape can assert
    // {status="failed"} == 0 before any tick has failed.
    ticks_ok_ = metrics->GetCounter("ipool_live_ticks_total",
                                    {{"status", "ok"}});
    ticks_failed_ = metrics->GetCounter("ipool_live_ticks_total",
                                        {{"status", "failed"}});
    ticks_idle_ = metrics->GetCounter("ipool_live_ticks_total",
                                      {{"status", "idle"}});
    pool_failures_ = metrics->GetCounter("ipool_live_pool_failures_total");
    pools_skipped_ = metrics->GetCounter("ipool_live_pools_skipped_total");
    pools_published_gauge_ = metrics->GetGauge("ipool_live_pools_published");
    tick_seconds_ = metrics->GetHistogram("ipool_live_tick_seconds");
    tuning_docs_rejected_ =
        metrics->GetCounter("ipool_live_tuning_docs_rejected_total");
    pools_tuned_gauge_ = metrics->GetGauge("ipool_live_pools_tuned");
  }
}

const RecommendationEngine* LiveControlPlane::ResolveEngine(
    const std::string& pool) {
  auto doc = documents_->Get(config_.tuning_doc_prefix + pool);
  if (!doc.ok()) {
    // No (or deleted) tuning document: the pool serves with the shared
    // engine again.
    pool_engines_.erase(pool);
    return nullptr;
  }
  auto it = pool_engines_.find(pool);
  if (it != pool_engines_.end() && it->second.doc_version == doc->version) {
    return it->second.engine.get();
  }
  Status error = Status::OK();
  auto parsed = ParseTuning(doc->value);
  if (parsed.ok()) {
    PipelineConfig pipeline = engine_->config();
    pipeline.model = parsed->model;
    pipeline.forecast.window = parsed->window;
    pipeline.saa.alpha_prime = parsed->alpha_prime;
    auto built = RecommendationEngine::Create(pipeline);
    if (built.ok()) {
      PoolEngine& slot = pool_engines_[pool];
      slot.doc_version = doc->version;
      slot.active = autotune::TuningCandidate{parsed->model,
                                              parsed->alpha_prime,
                                              parsed->window};
      slot.engine =
          std::make_unique<RecommendationEngine>(std::move(*built));
      return slot.engine.get();
    }
    error = built.status();
  } else {
    error = parsed.status();
  }
  // §7.6 posture: a corrupt or unbuildable tuning document must not take
  // the pool down — whatever engine served before keeps serving, and the
  // document is re-tried next tick (a fixed document is picked up without
  // a restart).
  if (tuning_docs_rejected_ != nullptr) tuning_docs_rejected_->Add(1);
  it = pool_engines_.find(pool);
  return it != pool_engines_.end() ? it->second.engine.get() : nullptr;
}

LiveControlPlane::~LiveControlPlane() { Stop(); }

void LiveControlPlane::Start() {
  std::lock_guard<std::mutex> lock(ticker_mu_);
  if (ticker_.joinable()) return;
  stop_requested_ = false;
  ticker_ = std::thread([this] { ThreadMain(); });
}

void LiveControlPlane::Stop() {
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    stop_requested_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
}

void LiveControlPlane::ThreadMain() {
  std::unique_lock<std::mutex> lock(ticker_mu_);
  while (!stop_requested_) {
    lock.unlock();
    TickOnce();
    lock.lock();
    ticker_cv_.wait_for(
        lock,
        std::chrono::duration<double>(config_.tick_interval_seconds),
        [this] { return stop_requested_; });
  }
}

TickStatus LiveControlPlane::TickOnce() {
  obs::ScopedSpan tick_span(config_.obs.tracer, "live.tick");
  obs::ScopedTimer tick_timer(tick_seconds_);

  // Stage 1: snapshot. No global lock: each pool's point count, last time
  // and binned history come from ONE shard shared-lock acquisition
  // (SnapshotBinned), so every pool's view is internally consistent even
  // while publishers keep appending to other shards.
  std::vector<PoolWork> work;
  size_t skipped = 0;
  {
    obs::ScopedSpan span(config_.obs.tracer, "live.snapshot");
    for (const std::string& metric : telemetry_->Metrics()) {
      if (metric.rfind(config_.demand_metric_prefix, 0) != 0) continue;
      std::string key = metric.substr(config_.demand_metric_prefix.size());
      if (key.empty()) continue;
      auto view = telemetry_->SnapshotBinned(
          metric, config_.bin_interval_seconds, config_.history_bins);
      if (!view.ok()) {
        PoolWork item;
        item.key = std::move(key);
        item.result = view.status();  // pipeline failure for this pool
        work.push_back(std::move(item));
        continue;
      }
      if (view->point_count < config_.min_history_points) {
        ++skipped;
        continue;
      }
      PoolWork item;
      item.key = std::move(key);
      // `history_bins` bins ending with (and including) the newest point.
      item.last_time = view->last_time;
      item.history = std::move(view->history);
      work.push_back(std::move(item));
    }
  }
  if (pools_skipped_ != nullptr && skipped > 0) pools_skipped_->Add(skipped);

  // Stage 1.5: resolve each pool's serving engine from its `tuning.<pool>`
  // document (serial — it touches the pool_engines_ cache). Documents
  // published by the PREVIOUS tick's tune stage take effect here, so the
  // tuning document is the single source of truth for what serves.
  if (tuner_ != nullptr) {
    obs::ScopedSpan span(config_.obs.tracer, "live.resolve");
    for (PoolWork& item : work) {
      item.engine = ResolveEngine(item.key);
    }
  }

  // Stage 2: compute, store lock released. Warm-state map nodes are created
  // serially here so the parallel bodies only touch their own pool's entry.
  if (!work.empty()) {
    obs::ScopedSpan span(config_.obs.tracer, "live.refit_solve");
    std::vector<ForecastWarmState*> warm(work.size(), nullptr);
    if (config_.warm_refit) {
      for (size_t i = 0; i < work.size(); ++i) {
        warm[i] = &warm_[work[i].key];
      }
    }
    exec::ParallelForOptions options;
    options.label = "live.pool";
    exec::ParallelFor(
        config_.exec, 0, work.size(),
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            PoolWork& item = work[i];
            if (item.history.empty()) continue;  // snapshot already failed
            size_t budget =
                injected_failures_.load(std::memory_order_relaxed);
            bool inject = false;
            while (budget > 0 && !inject) {
              inject = injected_failures_.compare_exchange_weak(
                  budget, budget - 1, std::memory_order_relaxed);
            }
            if (inject) {
              item.result = Status::Internal("injected live-tick failure");
              continue;
            }
            obs::ScopedSpan pool_span(config_.obs.tracer, "live.pool");
            const RecommendationEngine* engine =
                item.engine != nullptr ? item.engine : engine_;
            item.result = engine->Run(item.history, warm[i]);
          }
        },
        options);
  }

  // Stage 3: publish every fresh recommendation through PutBatch — ops are
  // grouped by shard and each shard's snapshot swaps exactly once, so
  // readers of a shard see either none or all of this tick's writes to it.
  // Unchanged serialized documents reuse the store's cached payload bytes
  // (payload_builds stays flat). Failed pools are not touched: their
  // previous document keeps serving (§7.6).
  const double wall = Now();
  size_t published = 0;
  size_t failed = 0;
  std::string last_error;
  {
    obs::ScopedSpan span(config_.obs.tracer, "live.publish");
    std::vector<ShardedDocumentStore::PutOp> puts;
    for (PoolWork& item : work) {
      if (!item.result.ok()) continue;
      StoredRecommendation stored;
      stored.recommendation = std::move(*item.result);
      stored.start_time = item.last_time + config_.bin_interval_seconds;
      stored.interval_seconds = config_.bin_interval_seconds;
      puts.push_back(ShardedDocumentStore::PutOp{
          item.key, SerializeRecommendation(stored), stored.start_time});
      ++published;
    }
    if (!puts.empty()) documents_->PutBatch(std::move(puts));
  }
  for (const PoolWork& item : work) {
    if (item.result.ok()) continue;
    ++failed;
    last_error = StrFormat("pool %s: %s", item.key.c_str(),
                           item.result.status().ToString().c_str());
  }
  if (pool_failures_ != nullptr && failed > 0) pool_failures_->Add(failed);

  // Stage 4: tune. Pools whose last tune is at least tune_interval_seconds
  // old re-run the successive-halving search over the history snapshotted
  // in stage 1, and every successful tune republishes `tuning.<pool>` — a
  // kept incumbent re-serializes byte-identically, so the store's payload
  // cache absorbs it (no version bump, stage 1.5's engine cache stays
  // warm). A failed/degenerate tune publishes nothing and does NOT fail
  // the tick: the incumbent config keeps serving (§7.6).
  size_t tunes_run = 0, tunes_switched = 0, tunes_failed = 0;
  std::string last_tune_error;
  if (tuner_ != nullptr) {
    obs::ScopedSpan span(config_.obs.tracer, "live.tune");
    std::vector<ShardedDocumentStore::PutOp> puts;
    for (PoolWork& item : work) {
      if (item.history.empty()) continue;  // snapshot failed this tick
      auto it = last_tuned_.find(item.key);
      if (it != last_tuned_.end() &&
          wall - it->second < config_.tune_interval_seconds) {
        continue;
      }
      last_tuned_[item.key] = wall;
      const autotune::TuningCandidate* incumbent = nullptr;
      auto active = pool_engines_.find(item.key);
      if (active != pool_engines_.end() && active->second.engine != nullptr) {
        incumbent = &active->second.active;
      }
      autotune::PoolTuneResult tuned =
          tuner_->TunePool(item.key, item.history, incumbent);
      ++tunes_run;
      if (!tuned.ok) {
        ++tunes_failed;
        if (!tuned.error.empty()) {
          last_tune_error = StrFormat("pool %s: %s", item.key.c_str(),
                                      tuned.error.c_str());
        }
        continue;
      }
      if (tuned.switched) ++tunes_switched;
      StoredTuning stored;
      stored.pool = item.key;
      stored.model = tuned.winner.model;
      stored.alpha_prime = tuned.winner.alpha_prime;
      stored.window = tuned.winner.window;
      puts.push_back(ShardedDocumentStore::PutOp{
          config_.tuning_doc_prefix + item.key, SerializeTuning(stored),
          wall});
    }
    if (!puts.empty()) documents_->PutBatch(std::move(puts));
  }

  const TickStatus status = failed > 0   ? TickStatus::kFailed
                            : published > 0 ? TickStatus::kOk
                                            : TickStatus::kIdle;
  switch (status) {
    case TickStatus::kOk:
      if (ticks_ok_ != nullptr) ticks_ok_->Add(1);
      break;
    case TickStatus::kFailed:
      if (ticks_failed_ != nullptr) ticks_failed_->Add(1);
      break;
    case TickStatus::kIdle:
      if (ticks_idle_ != nullptr) ticks_idle_->Add(1);
      break;
  }

  // Status + per-pool bookkeeping, then the age gauges (ages refresh once
  // per tick; between ticks the scrape sees the last tick's view).
  double max_age = 0.0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++status_.ticks_total;
    status_.ticks_ok += status == TickStatus::kOk ? 1 : 0;
    status_.ticks_failed += status == TickStatus::kFailed ? 1 : 0;
    status_.ticks_idle += status == TickStatus::kIdle ? 1 : 0;
    status_.last_tick_status = status;
    if (!last_error.empty()) status_.last_error = last_error;
    for (const PoolWork& item : work) {
      PoolState& state = pool_states_[item.key];
      if (item.result.ok()) {
        state.last_published = wall;
        ++state.publishes;
        state.consecutive_failures = 0;
      } else {
        ++state.consecutive_failures;
      }
    }
    for (const auto& [key, state] : pool_states_) {
      if (state.publishes == 0) continue;
      const double age = std::max(0.0, wall - state.last_published);
      max_age = std::max(max_age, age);
      if (config_.obs.metrics != nullptr) {
        config_.obs.metrics
            ->GetGauge("ipool_live_recommendation_age_seconds",
                       {{"pool", key}})
            ->Set(age);
      }
    }
    status_.pools_published = 0;
    for (const auto& [key, state] : pool_states_) {
      if (state.publishes > 0) ++status_.pools_published;
    }
    status_.max_recommendation_age_seconds = max_age;
    if (pools_published_gauge_ != nullptr) {
      pools_published_gauge_->Set(
          static_cast<double>(status_.pools_published));
    }
    status_.tunes_total += tunes_run;
    status_.tunes_switched += tunes_switched;
    status_.tunes_failed += tunes_failed;
    if (!last_tune_error.empty()) status_.last_tune_error = last_tune_error;
    status_.pools_tuned = 0;
    for (const auto& [key, slot] : pool_engines_) {
      if (slot.engine != nullptr) ++status_.pools_tuned;
    }
    if (pools_tuned_gauge_ != nullptr) {
      pools_tuned_gauge_->Set(static_cast<double>(status_.pools_tuned));
    }
  }
  return status;
}

LiveStatus LiveControlPlane::Snapshot() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  LiveStatus out = status_;
  // Recompute ages against "now" so Health reports staleness that keeps
  // rising while ticks fail, not the age frozen at the last tick.
  const double wall = Now();
  double max_age = 0.0;
  for (const auto& [key, state] : pool_states_) {
    if (state.publishes == 0) continue;
    max_age = std::max(max_age, std::max(0.0, wall - state.last_published));
  }
  out.max_recommendation_age_seconds = max_age;
  return out;
}

}  // namespace ipool::live
