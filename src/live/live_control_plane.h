// The in-process streaming control plane: the paper's production shape
// (§7, Fabric's Intelligent Pooling Worker) where telemetry streams in,
// the forecaster + SAA loop periodically republishes pool-size
// recommendations, and serving falls back to the last good recommendation
// when a pipeline run fails (§7.6).
//
// A LiveControlPlane runs inside the serving process on a periodic tick
// (own thread, condition-variable timed wait, clean shutdown on Stop). Each
// tick:
//
//   1. snapshot  — discover pools from the ShardedTelemetryStore (every
//      metric named `<prefix><pool>` is a pool) and copy out each eligible
//      pool's recent binned demand; each pool's point count, last time and
//      history are read under ONE shard shared lock (SnapshotBinned), so
//      the view is consistent per pool without any global mutex;
//   2. compute   — with no lock held, warm-refit the per-pool forecaster
//      state and run the SAA solve, fanned out over the exec pool
//      (RunFleet-style: one task per pool, per-pool warm state owned here);
//   3. publish   — PutBatch every fresh recommendation into the
//      ShardedDocumentStore: ops are grouped by shard and each shard's
//      snapshot is swapped exactly once, so GetRecommendation readers of a
//      shard observe either none or all of this tick's writes to it
//      (document + version swap atomically within a shard). Documents whose
//      serialized bytes did not change reuse the store's cached payload —
//      no re-serialization cost on the read path, no version churn
//      (ShardedDocumentStore::payload_builds stays flat).
//
// Fault tolerance (§7.6): a pool whose pipeline fails this tick — engine
// error, solver infeasibility, injected fault — keeps its previous document
// (readers serve the stale recommendation) and the tick is counted under
// ipool_live_ticks_total{status="failed"}; per-pool recommendation age keeps
// rising (ipool_live_recommendation_age_seconds{pool=...}) until a later
// tick succeeds. Pools with fewer than `min_history_points` telemetry
// points are not yet pools: they are skipped without failing the tick.
#ifndef IPOOL_LIVE_LIVE_CONTROL_PLANE_H_
#define IPOOL_LIVE_LIVE_CONTROL_PLANE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "autotune/fleet_tuner.h"
#include "common/status.h"
#include "core/recommendation_engine.h"
#include "exec/thread_pool.h"
#include "obs/obs_context.h"

namespace ipool {
class ShardedDocumentStore;
class ShardedTelemetryStore;
namespace obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace obs
}  // namespace ipool

namespace ipool::live {

struct LiveControlPlaneConfig {
  /// Wall-clock cadence of the tick thread started by Start().
  double tick_interval_seconds = 5.0;
  /// Telemetry metrics named `<prefix><pool>` define the fleet; the
  /// recommendation for `<pool>` is published under document key `<pool>`.
  std::string demand_metric_prefix = "demand.";
  /// Binning of raw telemetry points into the model's history series. Times
  /// in telemetry are virtual (the store never reads a wall clock), so this
  /// is the virtual bin width, normally the recommendation interval.
  double bin_interval_seconds = 30.0;
  /// History window fed to the engine, in bins ending at the pool's newest
  /// telemetry point. Bins before the first point are zero.
  size_t history_bins = 480;
  /// A pool must have at least this many telemetry points before it is
  /// forecast at all; below the floor it is skipped, not failed.
  size_t min_history_points = 64;
  /// Carry per-pool ForecastWarmState across ticks (the SSA training fast
  /// path). Disable to force every tick cold.
  bool warm_refit = true;
  /// Fan-out for the per-pool compute stage; null runs pools serially.
  exec::ExecContext exec;
  /// Metrics + spans sink (optional): ipool_live_ticks_total{status},
  /// ipool_live_tick_seconds, ipool_live_recommendation_age_seconds{pool},
  /// and live.tick > live.snapshot / live.refit_solve / live.publish spans.
  ObsContext obs;
  /// Wall clock in seconds used for recommendation ages and document
  /// timestamps; null uses std::chrono::steady_clock. Tests inject a
  /// virtual clock to make staleness deterministic.
  std::function<double()> clock;

  /// Fleet auto-tuning cadence, in clock seconds per pool (0 disables the
  /// tuner entirely). When enabled, each tick appends a TUNE stage: every
  /// pool whose last tune is at least this old re-runs the
  /// successive-halving search over its snapshotted history, and the
  /// winning config is published as document `<tuning_doc_prefix><pool>` —
  /// a kept incumbent re-serializes byte-identically, so the store's
  /// payload cache absorbs the republish. The next tick's engine-resolve
  /// stage picks the document up and serves with it. A failed/degenerate
  /// tune never fails the tick: the incumbent config keeps serving (§7.6).
  double tune_interval_seconds = 0.0;
  std::string tuning_doc_prefix = "tuning.";
  /// Search-space shape for the tuner (grid, rungs, hysteresis...). The
  /// backtest geometry is pinned to the serving engine at Create: `pool`
  /// and `forecast` are overwritten from the engine's own config so tuning
  /// scores and serving behavior can't drift apart, and exec/obs default to
  /// the plane's own when left unset. Ignored unless
  /// tune_interval_seconds > 0.
  autotune::FleetTunerConfig tuner;

  Status Validate() const;
};

enum class TickStatus {
  /// No pool had enough telemetry (or none exists yet); nothing changed.
  kIdle,
  /// Every eligible pool published a fresh recommendation.
  kOk,
  /// At least one pool's pipeline failed; its stale document kept serving.
  kFailed,
};

const char* TickStatusName(TickStatus status);

/// Point-in-time view of the loop, served through net::Router::Health.
struct LiveStatus {
  uint64_t ticks_total = 0;
  uint64_t ticks_ok = 0;
  uint64_t ticks_failed = 0;
  uint64_t ticks_idle = 0;
  TickStatus last_tick_status = TickStatus::kIdle;
  /// Message of the most recent per-pool pipeline failure ("" when none).
  std::string last_error;
  /// Pools that have ever published a live recommendation.
  size_t pools_published = 0;
  /// Oldest live recommendation across pools, in clock seconds; 0 before
  /// the first publish.
  double max_recommendation_age_seconds = 0.0;
  /// Fleet auto-tuning (all 0 when the tuner is disabled).
  uint64_t tunes_total = 0;
  uint64_t tunes_switched = 0;
  uint64_t tunes_failed = 0;
  /// Pools currently served by a per-pool tuned engine (vs the shared one).
  size_t pools_tuned = 0;
  /// Message of the most recent failed tune ("" when none).
  std::string last_tune_error;
};

class LiveControlPlane {
 public:
  /// The stores are internally synchronized (per-shard mutexes), so the
  /// plane needs no external coordination with the serving router — its
  /// reads and publishes are atomic per shard by construction. `engine` and
  /// the stores must outlive the plane.
  static Result<std::unique_ptr<LiveControlPlane>> Create(
      const RecommendationEngine* engine, ShardedTelemetryStore* telemetry,
      ShardedDocumentStore* documents,
      const LiveControlPlaneConfig& config);

  /// Stops the tick thread if running.
  ~LiveControlPlane();
  LiveControlPlane(const LiveControlPlane&) = delete;
  LiveControlPlane& operator=(const LiveControlPlane&) = delete;

  /// Starts the periodic tick thread. Idempotent.
  void Start();

  /// Signals the tick thread (condition variable, no polling) and joins it.
  /// The in-flight tick, if any, completes first. Idempotent; safe when
  /// Start was never called.
  void Stop();

  /// Runs one tick synchronously on the calling thread and returns its
  /// status. Ticks never run concurrently with each other: callers must not
  /// race TickOnce against a Start()ed thread — drive the loop one way or
  /// the other (tests call TickOnce for determinism).
  TickStatus TickOnce();

  /// §7.6 fault injection: the next `count` per-pool pipeline runs fail
  /// before reaching the engine. Thread-safe.
  void InjectFailures(size_t count) {
    injected_failures_.fetch_add(count, std::memory_order_relaxed);
  }

  /// Thread-safe status snapshot (ages computed against the config clock).
  LiveStatus Snapshot() const;

  const LiveControlPlaneConfig& config() const { return config_; }

 private:
  /// A pool discovered in the snapshot stage, history copied out so the
  /// compute stage runs without the store lock.
  struct PoolWork;
  /// Publication bookkeeping for one pool.
  struct PoolState {
    double last_published = 0.0;  ///< clock seconds of the last good Put
    uint64_t publishes = 0;
    uint64_t consecutive_failures = 0;
  };

  /// Per-pool serving override built from a parsed `tuning.<pool>`
  /// document. Touched only inside TickOnce (single-threaded by contract).
  struct PoolEngine {
    /// Document version the engine was built from; a version bump (new
    /// bytes) rebuilds, a byte-identical republish (same version) doesn't.
    int64_t doc_version = -1;
    autotune::TuningCandidate active;
    std::unique_ptr<RecommendationEngine> engine;
  };

  LiveControlPlane(const RecommendationEngine* engine,
                   ShardedTelemetryStore* telemetry,
                   ShardedDocumentStore* documents,
                   const LiveControlPlaneConfig& config);

  void ThreadMain();
  double Now() const { return config_.clock(); }

  /// Resolves the engine serving `pool` this tick: the cached per-pool
  /// engine when its tuning document is unchanged, a freshly built one when
  /// the document moved, the shared engine when no document exists. A
  /// document that fails to parse (or to build an engine) keeps whatever
  /// served before — §7.6 — and counts against
  /// ipool_live_tuning_docs_rejected_total.
  const RecommendationEngine* ResolveEngine(const std::string& pool);

  const RecommendationEngine* engine_;
  ShardedTelemetryStore* telemetry_;
  ShardedDocumentStore* documents_;
  LiveControlPlaneConfig config_;

  /// Per-pool warm forecaster state; touched only inside TickOnce (map node
  /// pointers are stable, so the parallel compute stage can write each
  /// pool's entry concurrently).
  std::map<std::string, ForecastWarmState> warm_;

  /// Fleet auto-tuner (null when tune_interval_seconds == 0) and its
  /// per-pool bookkeeping; all touched only inside TickOnce.
  std::unique_ptr<autotune::FleetTuner> tuner_;
  std::map<std::string, PoolEngine> pool_engines_;
  std::map<std::string, double> last_tuned_;

  /// Tick thread machinery.
  std::thread ticker_;
  std::mutex ticker_mu_;
  std::condition_variable ticker_cv_;
  bool stop_requested_ = false;

  std::atomic<size_t> injected_failures_{0};

  /// Guards the status block below (written at the end of each tick, read
  /// by Snapshot from any thread).
  mutable std::mutex state_mu_;
  LiveStatus status_;
  std::map<std::string, PoolState> pool_states_;

  /// Instrument handles fetched once at Create (null when obs is unwired).
  obs::Counter* ticks_ok_ = nullptr;
  obs::Counter* ticks_failed_ = nullptr;
  obs::Counter* ticks_idle_ = nullptr;
  obs::Counter* pool_failures_ = nullptr;
  obs::Counter* pools_skipped_ = nullptr;
  obs::Gauge* pools_published_gauge_ = nullptr;
  obs::Histogram* tick_seconds_ = nullptr;
  obs::Counter* tuning_docs_rejected_ = nullptr;
  obs::Gauge* pools_tuned_gauge_ = nullptr;
};

}  // namespace ipool::live

#endif  // IPOOL_LIVE_LIVE_CONTROL_PLANE_H_
