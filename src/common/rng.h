// Deterministic pseudo-random number generation for workload synthesis and
// model initialization. Every stochastic component in the library takes an
// explicit seed so experiments reproduce bit-for-bit across runs; nothing in
// the library reads wall-clock entropy.
#ifndef IPOOL_COMMON_RNG_H_
#define IPOOL_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace ipool {

/// SplitMix64: used to expand a single 64-bit seed into the state of the
/// main generator. Also usable standalone for cheap hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next();

 private:
  uint64_t state_;
};

/// Xoshiro256** — the library-wide PRNG. Small, fast, and high quality for
/// simulation purposes (not cryptographic).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform on the full 64-bit range.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller (cached spare).
  double Normal();
  double Normal(double mean, double stddev);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64 to stay O(1)).
  int64_t Poisson(double mean);

  /// Exponential inter-arrival with the given rate (events per unit time).
  double Exponential(double rate);

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Forks an independent stream; children with distinct tags are
  /// statistically independent of the parent and of each other.
  Rng Fork(uint64_t tag);

 private:
  uint64_t s_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace ipool

#endif  // IPOOL_COMMON_RNG_H_
