// Small string/formatting helpers shared across the library. Kept minimal on
// purpose; this is not a general-purpose strings library.
#ifndef IPOOL_COMMON_STRINGS_H_
#define IPOOL_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace ipool {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins elements with a separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Renders seconds as "1h 02m 03s" / "42.5s" for human-readable reports.
std::string HumanDuration(double seconds);

/// Renders a virtual-time offset (seconds since trace start) as "Dd HH:MM:SS".
std::string HumanClock(double seconds);

}  // namespace ipool

#endif  // IPOOL_COMMON_STRINGS_H_
