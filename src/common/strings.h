// Small string/formatting helpers shared across the library. Kept minimal on
// purpose; this is not a general-purpose strings library.
#ifndef IPOOL_COMMON_STRINGS_H_
#define IPOOL_COMMON_STRINGS_H_

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ipool {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins elements with a separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Renders seconds as "1h 02m 03s" / "42.5s" for human-readable reports.
std::string HumanDuration(double seconds);

/// Renders a virtual-time offset (seconds since trace start) as "Dd HH:MM:SS".
std::string HumanClock(double seconds);

/// Strict full-string numeric parsing for untrusted input (network payloads,
/// operator files): the whole token must be consumed, so "12abc", "", and
/// bare whitespace are errors rather than silently truncating the way
/// atof/atoll do. ParseDouble additionally rejects NaN and infinities —
/// nothing in the control plane stores non-finite telemetry.
Result<double> ParseDouble(const std::string& token);
Result<int64_t> ParseInt64(const std::string& token);

}  // namespace ipool

#endif  // IPOOL_COMMON_STRINGS_H_
