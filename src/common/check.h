// IPOOL_CHECK: invariant checks for programming errors (shape mismatches in
// internal hot paths, violated preconditions that indicate a bug rather than
// bad user input). Aborts with a message in all build types. User-facing
// validation should use Status/Result instead.
#ifndef IPOOL_COMMON_CHECK_H_
#define IPOOL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define IPOOL_CHECK(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "IPOOL_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#endif  // IPOOL_COMMON_CHECK_H_
