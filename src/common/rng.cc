#include "common/rng.h"

#include <cmath>

namespace ipool {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
  // All-zero state is the one forbidden state for xoshiro; SplitMix64 cannot
  // produce four zeros from any seed in practice, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // Modulo bias is negligible for the span sizes used here (< 2^32).
  return lo + static_cast<int64_t>(NextUint64() % span);
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    double product = NextDouble();
    int64_t count = 0;
    while (product > limit) {
      product *= NextDouble();
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double draw = Normal(mean, std::sqrt(mean));
  return draw < 0.0 ? 0 : static_cast<int64_t>(draw + 0.5);
}

double Rng::Exponential(double rate) {
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork(uint64_t tag) {
  // Mix the fork tag with fresh output so children are decorrelated from the
  // parent's future stream as well as from each other.
  SplitMix64 sm(NextUint64() ^ (tag * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL));
  return Rng(sm.Next());
}

}  // namespace ipool
