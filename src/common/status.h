// Status and Result<T>: exception-free error propagation for the ipool
// library, in the style of Arrow/RocksDB. Library entry points that can fail
// return Status (no payload) or Result<T> (payload or error); callers are
// expected to check before use.
#ifndef IPOOL_COMMON_STATUS_H_
#define IPOOL_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ipool {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kAlreadyExists,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
};

/// Returns a short human-readable name, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value of type T or an error Status. Accessing the value of an errored
/// Result is a programming bug and asserts in debug builds.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, mirrors
  // arrow::Result so `return value;` works from functions returning Result.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::Internal("uninitialized Result");
};

// Propagates an error Status from an expression, Arrow-style:
//   IPOOL_RETURN_NOT_OK(DoThing());
#define IPOOL_RETURN_NOT_OK(expr)          \
  do {                                     \
    ::ipool::Status _st = (expr);          \
    if (!_st.ok()) return _st;             \
  } while (false)

// Assigns the value of a Result expression or propagates its error:
//   IPOOL_ASSIGN_OR_RETURN(auto x, MakeX());
#define IPOOL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()
#define IPOOL_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define IPOOL_ASSIGN_OR_RETURN_NAME(a, b) IPOOL_ASSIGN_OR_RETURN_CONCAT(a, b)
#define IPOOL_ASSIGN_OR_RETURN(lhs, expr)                                     \
  IPOOL_ASSIGN_OR_RETURN_IMPL(                                                \
      IPOOL_ASSIGN_OR_RETURN_NAME(_ipool_result_, __LINE__), lhs, expr)

}  // namespace ipool

#endif  // IPOOL_COMMON_STATUS_H_
