#include "common/strings.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ipool {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string HumanDuration(double seconds) {
  if (seconds < 0) return "-" + HumanDuration(-seconds);
  if (seconds < 60.0) return StrFormat("%.1fs", seconds);
  const int64_t whole = static_cast<int64_t>(seconds);
  const int64_t h = whole / 3600;
  const int64_t m = (whole % 3600) / 60;
  const int64_t s = whole % 60;
  if (h > 0) return StrFormat("%ldh %02ldm %02lds", h, m, s);
  return StrFormat("%ldm %02lds", m, s);
}

Result<double> ParseDouble(const std::string& token) {
  if (token.empty()) return Status::InvalidArgument("empty number");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) {
    return Status::InvalidArgument("not a number: '" + token + "'");
  }
  if (errno == ERANGE || !std::isfinite(value)) {
    return Status::InvalidArgument("number out of range: '" + token + "'");
  }
  return value;
}

Result<int64_t> ParseInt64(const std::string& token) {
  if (token.empty()) return Status::InvalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) {
    return Status::InvalidArgument("not an integer: '" + token + "'");
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument("integer out of range: '" + token + "'");
  }
  return static_cast<int64_t>(value);
}

std::string HumanClock(double seconds) {
  const int64_t whole = static_cast<int64_t>(std::floor(seconds));
  const int64_t d = whole / 86400;
  const int64_t h = (whole % 86400) / 3600;
  const int64_t m = (whole % 3600) / 60;
  const int64_t s = whole % 60;
  return StrFormat("%ldd %02ld:%02ld:%02ld", d, h, m, s);
}

}  // namespace ipool
