#include "sim/pool_simulator.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_engine.h"
#include "sim/live_pool.h"

namespace ipool {

Status SimConfig::Validate() const {
  if (creation_latency_mean_seconds <= 0.0) {
    return Status::InvalidArgument("creation latency must be positive");
  }
  if (creation_latency_cv < 0.0) {
    return Status::InvalidArgument("creation latency cv must be >= 0");
  }
  if (session_startup_seconds < 0.0) {
    return Status::InvalidArgument("session startup must be >= 0");
  }
  if (max_cluster_lifetime_seconds <= 0.0) {
    return Status::InvalidArgument("cluster lifetime must be positive");
  }
  if (failure_rate_per_hour < 0.0) {
    return Status::InvalidArgument("failure rate must be >= 0");
  }
  return Status::OK();
}

Result<PoolSimulator> PoolSimulator::Create(const SimConfig& config) {
  IPOOL_RETURN_NOT_OK(config.Validate());
  return PoolSimulator(config);
}

Result<SimResult> PoolSimulator::Run(const std::vector<double>& request_times,
                                     const std::vector<int64_t>& schedule,
                                     double interval_seconds,
                                     double horizon_seconds) {
  IPOOL_RETURN_NOT_OK(ValidateRunInputs(request_times, schedule,
                                        interval_seconds, horizon_seconds));
  obs::ScopedSpan span(config_.obs.tracer, "simulate");
  obs::ScopedTimer timer(
      config_.obs.metrics != nullptr
          ? config_.obs.metrics->GetHistogram("ipool_sim_run_seconds")
          : nullptr);
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->GetCounter("ipool_sim_requests_total")
        ->Add(request_times.size());
    config_.obs.metrics->GetCounter("ipool_sim_retargets_total")
        ->Add(schedule.empty() ? 0 : schedule.size() - 1);
  }

  EventEngine engine;
  LivePool pool(&engine, config_, schedule[0]);
  pool.InitialFill();

  // Retarget events at every bin boundary.
  for (size_t i = 1; i < schedule.size(); ++i) {
    const double at = static_cast<double>(i) * interval_seconds;
    if (at > horizon_seconds) break;
    const int64_t target = schedule[i];
    IPOOL_RETURN_NOT_OK(
        engine.Schedule(at, [&pool, target] { pool.SetTarget(target); }));
  }
  int64_t hits = 0;
  for (double t : request_times) {
    IPOOL_RETURN_NOT_OK(engine.Schedule(t, [&pool, &hits, &engine] {
      if (pool.TryAcquire()) {
        ++hits;
      } else {
        pool.QueueOnDemand(engine.now());
      }
    }));
  }

  // Run the pool to the horizon, close maintenance (so finite cluster
  // lifetimes cannot re-hydrate forever), then drain the remaining events:
  // in-flight creations finishing and late waiting requests being served.
  engine.RunUntil(horizon_seconds);
  pool.Close();
  engine.RunAll();
  pool.FinishAt(horizon_seconds);

  // Pool hits waited zero; queued requests' waits were recorded by the pool.
  std::vector<double> waits(static_cast<size_t>(hits), 0.0);
  waits.insert(waits.end(), pool.queued_waits().begin(),
               pool.queued_waits().end());
  return AssembleSimResult(pool.stats(),
                           static_cast<int64_t>(request_times.size()), hits,
                           std::move(waits));
}

}  // namespace ipool
