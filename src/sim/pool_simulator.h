// Event-driven simulation of the live-pool mechanism (§2, §4.1): a pool of
// pre-created clusters, eviction on customer request, re-hydration through a
// simulated Cluster Service with stochastic creation latency, on-demand
// fallback when the pool is drained, optional cluster lifetime expiry and
// random failures, and pool-size retargeting at bin boundaries (including
// cancellation of in-flight re-hydrations on downsizing).
//
// This is the ground-truth executable model against which the analytical
// cumulative-curve evaluator (solver/pool_model.h) is validated.
#ifndef IPOOL_SIM_POOL_SIMULATOR_H_
#define IPOOL_SIM_POOL_SIMULATOR_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "obs/obs_context.h"

namespace ipool {

struct SimConfig {
  /// Mean cluster creation latency (VM allocation + stitching + libraries;
  /// the paper cites 60-120 s for clusters).
  double creation_latency_mean_seconds = 90.0;
  /// Coefficient of variation of the (log-normal) creation latency; 0 makes
  /// creation deterministic.
  double creation_latency_cv = 0.0;
  /// Extra latency for session pools (Spark session startup, 30-40 s in the
  /// paper); 0 simulates a cluster pool.
  double session_startup_seconds = 0.0;
  /// Pooled clusters are recycled after this long (Infinity disables).
  double max_cluster_lifetime_seconds =
      std::numeric_limits<double>::infinity();
  /// Poisson failure rate for pooled (ready, idle) clusters.
  double failure_rate_per_hour = 0.0;
  uint64_t seed = 1;
  /// Observability sink (optional): each Run records a "simulate" span, its
  /// wall time and request/retarget event counters.
  ObsContext obs;

  Status Validate() const;
};

struct SimResult {
  int64_t total_requests = 0;
  int64_t pool_hits = 0;
  double hit_rate = 1.0;
  double total_wait_seconds = 0.0;
  double avg_wait_seconds = 0.0;
  double p99_wait_seconds = 0.0;
  double max_wait_seconds = 0.0;
  /// Cluster-seconds spent ready-but-unused in the pool.
  double idle_cluster_seconds = 0.0;
  int64_t clusters_created = 0;    // successful re-hydrations + initial fill
  int64_t on_demand_created = 0;   // drained-pool fallbacks
  int64_t hydrations_cancelled = 0;
  int64_t clusters_expired = 0;
  int64_t clusters_failed = 0;
  int64_t clusters_deleted = 0;  // downsizing removals of ready clusters
};

class PoolSimulator {
 public:
  static Result<PoolSimulator> Create(const SimConfig& config);

  /// Replays `request_times` (sorted, seconds) against the target-size
  /// schedule (`schedule[i]` applies during
  /// [i * interval, (i+1) * interval)). The simulation runs to
  /// `horizon_seconds`, which must cover the last request.
  Result<SimResult> Run(const std::vector<double>& request_times,
                        const std::vector<int64_t>& schedule,
                        double interval_seconds, double horizon_seconds);

 private:
  explicit PoolSimulator(const SimConfig& config) : config_(config) {}

  SimConfig config_;
};

}  // namespace ipool

#endif  // IPOOL_SIM_POOL_SIMULATOR_H_
