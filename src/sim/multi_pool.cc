#include "sim/multi_pool.h"

#include <memory>

#include "common/strings.h"
#include "sim/event_engine.h"
#include "sim/live_pool.h"

namespace ipool {

Result<MultiPoolSimulator> MultiPoolSimulator::Create(
    std::vector<PoolClass> classes, bool allow_upgrade) {
  if (classes.empty()) {
    return Status::InvalidArgument("need at least one pool class");
  }
  for (const PoolClass& c : classes) {
    IPOOL_RETURN_NOT_OK(c.sim.Validate());
    if (c.cores_per_cluster <= 0.0) {
      return Status::InvalidArgument("cores_per_cluster must be positive");
    }
  }
  return MultiPoolSimulator(std::move(classes), allow_upgrade);
}

Result<std::vector<PoolSchedule>> SolveFleetSchedules(
    const std::vector<FleetSolveSpec>& specs,
    const exec::ExecContext& exec) {
  // Each spec's solve touches only its own slot, so the fleet fans out over
  // the pool with schedules still returned in spec order. Tracers are
  // stripped from the per-spec obs when the solves actually run concurrently
  // (obs::Tracer is single-threaded); lock-free metrics ride along.
  const bool concurrent = exec.enabled() && specs.size() > 1;
  std::vector<PoolSchedule> schedules(specs.size());
  std::vector<Status> statuses(specs.size());
  exec::ParallelFor(exec, 0, specs.size(), [&](size_t lo, size_t hi) {
    for (size_t idx = lo; idx < hi; ++idx) {
      statuses[idx] = [&]() -> Status {
        SaaConfig config = specs[idx].saa;
        if (concurrent) config.obs.tracer = nullptr;
        IPOOL_ASSIGN_OR_RETURN(SaaOptimizer optimizer,
                               SaaOptimizer::Create(config));
        if (specs[idx].period_bins == 0) {
          IPOOL_ASSIGN_OR_RETURN(schedules[idx],
                                 optimizer.Optimize(specs[idx].demand));
        } else {
          IPOOL_ASSIGN_OR_RETURN(
              schedules[idx],
              optimizer.OptimizePeriodic(specs[idx].demand,
                                         specs[idx].period_bins));
        }
        return Status::OK();
      }();
    }
  });
  // First error by spec index wins, matching a serial left-to-right loop.
  for (const Status& s : statuses) {
    IPOOL_RETURN_NOT_OK(s);
  }
  return schedules;
}

std::vector<std::vector<double>> SplitByClass(
    const std::vector<SizedRequest>& requests, size_t num_classes) {
  std::vector<std::vector<double>> split(num_classes);
  for (const SizedRequest& r : requests) {
    if (r.size_class < num_classes) split[r.size_class].push_back(r.time);
  }
  return split;
}

Result<MultiPoolResult> MultiPoolSimulator::Run(
    const std::vector<SizedRequest>& requests,
    const std::vector<std::vector<int64_t>>& schedules,
    double interval_seconds, double horizon_seconds) const {
  const size_t num_classes = classes_.size();
  if (schedules.size() != num_classes) {
    return Status::InvalidArgument(
        StrFormat("%zu schedules for %zu pool classes", schedules.size(),
                  num_classes));
  }
  double previous = 0.0;
  bool first = true;
  for (const SizedRequest& r : requests) {
    if (r.size_class >= num_classes) {
      return Status::InvalidArgument(
          StrFormat("request at %g references class %zu of %zu", r.time,
                    r.size_class, num_classes));
    }
    if (!first && r.time < previous) {
      return Status::InvalidArgument("requests must be sorted by time");
    }
    previous = r.time;
    first = false;
  }
  const std::vector<std::vector<double>> per_class_times =
      SplitByClass(requests, num_classes);
  for (size_t c = 0; c < num_classes; ++c) {
    IPOOL_RETURN_NOT_OK(ValidateRunInputs(per_class_times[c], schedules[c],
                                          interval_seconds, horizon_seconds));
  }

  // One shared virtual clock: all pools, retargets and arrivals interleave.
  EventEngine engine;
  std::vector<std::unique_ptr<LivePool>> pools;
  for (size_t c = 0; c < num_classes; ++c) {
    pools.push_back(std::make_unique<LivePool>(&engine, classes_[c].sim,
                                               schedules[c][0]));
    pools.back()->InitialFill();
  }
  for (size_t c = 0; c < num_classes; ++c) {
    for (size_t i = 1; i < schedules[c].size(); ++i) {
      const double at = static_cast<double>(i) * interval_seconds;
      if (at > horizon_seconds) break;
      LivePool* pool = pools[c].get();
      const int64_t target = schedules[c][i];
      IPOOL_RETURN_NOT_OK(
          engine.Schedule(at, [pool, target] { pool->SetTarget(target); }));
    }
  }

  // Routing: own class first, then (optionally) larger classes, else queue
  // on-demand in the origin class.
  std::vector<int64_t> hits_per_class(num_classes, 0);
  int64_t upgrades = 0;
  const bool upgrade = allow_upgrade_;
  for (const SizedRequest& r : requests) {
    const size_t origin = r.size_class;
    IPOOL_RETURN_NOT_OK(engine.Schedule(
        r.time, [&, origin] {
          if (pools[origin]->TryAcquire()) {
            ++hits_per_class[origin];
            return;
          }
          if (upgrade) {
            for (size_t c = origin + 1; c < pools.size(); ++c) {
              if (pools[c]->TryAcquire()) {
                ++hits_per_class[origin];
                ++upgrades;
                return;
              }
            }
          }
          pools[origin]->QueueOnDemand(engine.now());
        }));
  }

  engine.RunUntil(horizon_seconds);
  for (auto& pool : pools) pool->Close();
  engine.RunAll();
  for (auto& pool : pools) pool->FinishAt(horizon_seconds);

  MultiPoolResult result;
  result.upgrades = upgrades;
  double wait_total = 0.0;
  for (size_t c = 0; c < num_classes; ++c) {
    std::vector<double> waits(static_cast<size_t>(hits_per_class[c]), 0.0);
    waits.insert(waits.end(), pools[c]->queued_waits().begin(),
                 pools[c]->queued_waits().end());
    SimResult sim = AssembleSimResult(
        pools[c]->stats(),
        static_cast<int64_t>(per_class_times[c].size()), hits_per_class[c],
        std::move(waits));
    result.total_requests += sim.total_requests;
    result.pool_hits += sim.pool_hits;
    wait_total += sim.total_wait_seconds;
    result.idle_core_seconds +=
        sim.idle_cluster_seconds * classes_[c].cores_per_cluster;
    result.per_pool.push_back(std::move(sim));
  }
  result.hit_rate = result.total_requests > 0
                        ? static_cast<double>(result.pool_hits) /
                              static_cast<double>(result.total_requests)
                        : 1.0;
  result.avg_wait_seconds =
      result.total_requests > 0
          ? wait_total / static_cast<double>(result.total_requests)
          : 0.0;
  return result;
}

}  // namespace ipool
