#include "sim/live_pool.h"

#include <algorithm>
#include <cmath>

namespace ipool {

LivePool::LivePool(EventEngine* engine, const SimConfig& config,
                   int64_t initial_target)
    : engine_(engine),
      config_(config),
      rng_(config.seed),
      target_(initial_target) {}

double LivePool::SampleLatency() {
  double latency = config_.creation_latency_mean_seconds;
  if (config_.creation_latency_cv > 0.0) {
    const double cv2 = config_.creation_latency_cv * config_.creation_latency_cv;
    const double sigma = std::sqrt(std::log1p(cv2));
    const double mu = std::log(latency) - 0.5 * sigma * sigma;
    latency = std::exp(rng_.Normal(mu, sigma));
  }
  return latency + config_.session_startup_seconds;
}

void LivePool::InitialFill() {
  for (int64_t i = 0; i < target_; ++i) AddReadyCluster();
}

void LivePool::SetTarget(int64_t target) {
  if (closed_) return;
  target_ = target;
  TrimExcess();
  MaintainTarget();
}

void LivePool::Close() { closed_ = true; }

bool LivePool::TryAcquire() {
  if (pool_.empty()) return false;
  const Cluster cluster = pool_.front();
  ConsumeFrontCluster();
  stats_.idle_cluster_seconds += engine_->now() - cluster.ready_time;
  MaintainTarget();
  return true;
}

void LivePool::QueueOnDemand(double arrival_time) {
  waiting_.push_back(arrival_time);
  ++stats_.on_demand_created;
  const double ready_at = engine_->now() + SampleLatency();
  (void)engine_->Schedule(ready_at,
                          [this] { OnClusterReady(/*hydration_id=*/-1); });
}

void LivePool::FinishAt(double horizon) {
  for (const Cluster& cluster : pool_) {
    if (horizon > cluster.ready_time) {
      stats_.idle_cluster_seconds += horizon - cluster.ready_time;
    }
  }
  pool_.clear();
  in_pool_.clear();
}

void LivePool::MaintainTarget() {
  if (closed_) return;
  while (static_cast<int64_t>(pool_.size()) +
             static_cast<int64_t>(pending_hydrations_.size()) <
         target_) {
    Hydrate();
  }
}

void LivePool::Hydrate() {
  const int64_t id = next_hydration_id_++;
  pending_hydrations_.insert(id);
  const double ready_at = engine_->now() + SampleLatency();
  (void)engine_->Schedule(ready_at, [this, id] { OnClusterReady(id); });
}

// hydration_id == -1 marks an on-demand creation (never cancellable).
void LivePool::OnClusterReady(int64_t hydration_id) {
  if (hydration_id >= 0) {
    if (cancelled_.count(hydration_id) > 0) {
      cancelled_.erase(hydration_id);
      return;  // already accounted when cancelled
    }
    pending_hydrations_.erase(hydration_id);
  }
  ++stats_.clusters_created;
  if (!waiting_.empty()) {
    const double arrival = waiting_.front();
    waiting_.pop_front();
    queued_waits_.push_back(engine_->now() - arrival);
    MaintainTarget();
    return;
  }
  AddReadyCluster();
  TrimExcess();
}

void LivePool::AddReadyCluster() {
  const int64_t id = next_cluster_id_++;
  pool_.push_back({id, engine_->now()});
  in_pool_.insert(id);
  if (std::isfinite(config_.max_cluster_lifetime_seconds)) {
    const double expiry = engine_->now() + config_.max_cluster_lifetime_seconds;
    (void)engine_->Schedule(expiry,
                            [this, id] { OnClusterGone(id, /*failed=*/false); });
  }
  if (config_.failure_rate_per_hour > 0.0) {
    const double ttf = rng_.Exponential(config_.failure_rate_per_hour / 3600.0);
    (void)engine_->Schedule(engine_->now() + ttf,
                            [this, id] { OnClusterGone(id, /*failed=*/true); });
  }
}

void LivePool::ConsumeFrontCluster() {
  in_pool_.erase(pool_.front().id);
  pool_.pop_front();
}

void LivePool::OnClusterGone(int64_t id, bool failed) {
  if (closed_) return;
  if (in_pool_.count(id) == 0) return;  // already consumed or deleted
  in_pool_.erase(id);
  for (auto it = pool_.begin(); it != pool_.end(); ++it) {
    if (it->id == id) {
      stats_.idle_cluster_seconds += engine_->now() - it->ready_time;
      pool_.erase(it);
      break;
    }
  }
  if (failed) {
    ++stats_.clusters_failed;
  } else {
    ++stats_.clusters_expired;
  }
  MaintainTarget();
}

void LivePool::TrimExcess() {
  // Downsizing first cancels in-flight hydrations (cheapest: they never
  // become clusters), newest first, then deletes the oldest ready clusters.
  while (static_cast<int64_t>(pool_.size()) +
                 static_cast<int64_t>(pending_hydrations_.size()) >
             target_ &&
         !pending_hydrations_.empty()) {
    const auto newest = std::prev(pending_hydrations_.end());
    cancelled_.insert(*newest);
    pending_hydrations_.erase(newest);
    ++stats_.hydrations_cancelled;
  }
  while (static_cast<int64_t>(pool_.size()) > target_) {
    const Cluster cluster = pool_.front();
    ConsumeFrontCluster();
    stats_.idle_cluster_seconds += engine_->now() - cluster.ready_time;
    ++stats_.clusters_deleted;
  }
}

Status ValidateRunInputs(const std::vector<double>& request_times,
                         const std::vector<int64_t>& schedule,
                         double interval_seconds, double horizon_seconds) {
  if (schedule.empty()) return Status::InvalidArgument("empty schedule");
  if (interval_seconds <= 0.0) {
    return Status::InvalidArgument("interval must be positive");
  }
  for (int64_t n : schedule) {
    if (n < 0) return Status::InvalidArgument("negative pool target");
  }
  for (size_t i = 1; i < request_times.size(); ++i) {
    if (request_times[i] < request_times[i - 1]) {
      return Status::InvalidArgument("request times must be sorted");
    }
  }
  if (!request_times.empty() &&
      (request_times.front() < 0.0 || request_times.back() > horizon_seconds)) {
    return Status::InvalidArgument("request outside [0, horizon]");
  }
  return Status::OK();
}

SimResult AssembleSimResult(const LivePool::Stats& stats,
                            int64_t total_requests, int64_t hits,
                            std::vector<double> waits) {
  SimResult result;
  result.total_requests = total_requests;
  result.pool_hits = hits;
  result.idle_cluster_seconds = stats.idle_cluster_seconds;
  result.clusters_created = stats.clusters_created;
  result.on_demand_created = stats.on_demand_created;
  result.hydrations_cancelled = stats.hydrations_cancelled;
  result.clusters_expired = stats.clusters_expired;
  result.clusters_failed = stats.clusters_failed;
  result.clusters_deleted = stats.clusters_deleted;

  for (double w : waits) result.total_wait_seconds += w;
  if (!waits.empty()) {
    result.avg_wait_seconds =
        result.total_wait_seconds / static_cast<double>(waits.size());
    std::sort(waits.begin(), waits.end());
    result.max_wait_seconds = waits.back();
    const size_t idx = static_cast<size_t>(std::min<double>(
        static_cast<double>(waits.size()) - 1.0,
        std::ceil(0.99 * static_cast<double>(waits.size())) - 1.0));
    result.p99_wait_seconds = waits[idx];
  }
  result.hit_rate = total_requests > 0
                        ? static_cast<double>(hits) /
                              static_cast<double>(total_requests)
                        : 1.0;
  return result;
}

}  // namespace ipool
