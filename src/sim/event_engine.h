// A minimal discrete-event simulation engine on a virtual clock. Events are
// (time, callback) pairs; ties are broken by insertion order so runs are
// fully deterministic. Nothing here reads wall-clock time.
#ifndef IPOOL_SIM_EVENT_ENGINE_H_
#define IPOOL_SIM_EVENT_ENGINE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/status.h"

namespace ipool {

class EventEngine {
 public:
  using Callback = std::function<void()>;

  /// Schedules `callback` at absolute virtual time `time`. Scheduling in the
  /// past (before now()) is a programming error and returns InvalidArgument.
  Status Schedule(double time, Callback callback);

  /// Convenience: schedule `delay` seconds from now.
  Status ScheduleAfter(double delay, Callback callback);

  /// Runs events until the queue is empty or the next event is later than
  /// `end_time`; the clock finishes at min(end_time, last event time).
  void RunUntil(double end_time);

  /// Runs until the queue is empty.
  void RunAll();

  double now() const { return now_; }
  size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    double time;
    uint64_t seq;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace ipool

#endif  // IPOOL_SIM_EVENT_ENGINE_H_
