#include "sim/event_engine.h"

#include <utility>

#include "common/strings.h"

namespace ipool {

Status EventEngine::Schedule(double time, Callback callback) {
  if (time < now_) {
    return Status::InvalidArgument(
        StrFormat("cannot schedule at %g before now %g", time, now_));
  }
  queue_.push(Event{time, next_seq_++, std::move(callback)});
  return Status::OK();
}

Status EventEngine::ScheduleAfter(double delay, Callback callback) {
  if (delay < 0.0) {
    return Status::InvalidArgument("negative delay");
  }
  return Schedule(now_ + delay, std::move(callback));
}

void EventEngine::RunUntil(double end_time) {
  while (!queue_.empty() && queue_.top().time <= end_time) {
    // Copy out before pop: the callback may schedule new events.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    event.callback();
  }
  if (now_ < end_time) now_ = end_time;
}

void EventEngine::RunAll() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    event.callback();
  }
}

}  // namespace ipool
