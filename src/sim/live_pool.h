// A single live pool driven by an external EventEngine: pre-created
// clusters handed out on request, re-hydration through the (simulated)
// cluster service, target retargeting with in-flight cancellation, optional
// lifetime expiry and random failures, and an on-demand queue for requests
// that found no pooled cluster anywhere.
//
// Extracted from the single-pool simulator so that PoolSimulator and the
// multi-pool fleet (which routes one request stream across several pools on
// one shared virtual clock) share exactly one implementation of the pool
// mechanics.
#ifndef IPOOL_SIM_LIVE_POOL_H_
#define IPOOL_SIM_LIVE_POOL_H_

#include <cstdint>
#include <deque>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "sim/event_engine.h"
#include "sim/pool_simulator.h"

namespace ipool {

class LivePool {
 public:
  /// Cluster-side counters (request-side metrics belong to the caller).
  struct Stats {
    double idle_cluster_seconds = 0.0;
    int64_t clusters_created = 0;
    int64_t on_demand_created = 0;
    int64_t hydrations_cancelled = 0;
    int64_t clusters_expired = 0;
    int64_t clusters_failed = 0;
    int64_t clusters_deleted = 0;
  };

  /// The pool schedules its own events on `engine`, which must outlive it.
  /// `config` is copied. The initial target is installed without clusters;
  /// call InitialFill() to pre-create them ready at the current time.
  LivePool(EventEngine* engine, const SimConfig& config,
           int64_t initial_target);

  /// Pre-fills the pool with `target` ready clusters (A'(t) = N(0)).
  void InitialFill();

  /// Retargets the pool: cancels in-flight hydrations / deletes ready
  /// clusters on downsizing, hydrates on upsizing. No-op once closed.
  void SetTarget(int64_t target);

  /// Stops maintenance (retargeting, re-hydration, expiry handling) so the
  /// shared event queue drains after the horizon.
  void Close();

  /// Hands out a ready cluster if one exists (FIFO), accounting its idle
  /// time and triggering re-hydration. Returns false when drained.
  bool TryAcquire();

  /// Queues a request that missed every eligible pool and fires an
  /// on-demand creation in this pool's class; the wait is recorded when a
  /// cluster (on-demand or hydrated) serves it.
  void QueueOnDemand(double arrival_time);

  /// Accounts idle time for clusters still pooled at the horizon and empties
  /// the pool. Call once, after the event queue has drained.
  void FinishAt(double horizon);

  const Stats& stats() const { return stats_; }
  /// Waits (seconds) of the requests that went through QueueOnDemand, in
  /// service order.
  const std::vector<double>& queued_waits() const { return queued_waits_; }
  int64_t ready_count() const { return static_cast<int64_t>(pool_.size()); }

 private:
  struct Cluster {
    int64_t id;
    double ready_time;
  };

  double SampleLatency();
  void MaintainTarget();
  void Hydrate();
  void OnClusterReady(int64_t hydration_id);
  void AddReadyCluster();
  void ConsumeFrontCluster();
  void OnClusterGone(int64_t id, bool failed);
  void TrimExcess();

  EventEngine* engine_;
  SimConfig config_;
  Rng rng_;
  int64_t target_ = 0;
  bool closed_ = false;

  std::deque<Cluster> pool_;
  std::unordered_set<int64_t> in_pool_;
  std::deque<double> waiting_;
  std::vector<double> queued_waits_;

  int64_t next_hydration_id_ = 0;
  int64_t next_cluster_id_ = 0;
  std::set<int64_t> pending_hydrations_;
  std::unordered_set<int64_t> cancelled_;

  Stats stats_;
};

/// Validates the common Run() inputs shared by the pool drivers.
Status ValidateRunInputs(const std::vector<double>& request_times,
                         const std::vector<int64_t>& schedule,
                         double interval_seconds, double horizon_seconds);

/// Assembles a SimResult from a pool's cluster-side stats and the recorded
/// request waits (hits contribute zero-wait entries).
SimResult AssembleSimResult(const LivePool::Stats& stats,
                            int64_t total_requests, int64_t hits,
                            std::vector<double> waits);

}  // namespace ipool

#endif  // IPOOL_SIM_LIVE_POOL_H_
