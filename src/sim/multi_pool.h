// Multi-pool operation — the paper's stated future work (§9): "operation of
// multiple pools with different configurations (cluster size, etc.)".
// Production Fabric runs one session pool and one cluster pool per region
// with a fixed cluster shape; here several pools with different cluster
// sizes run side by side on one shared virtual clock, each serving the
// requests of its size class with its own target-size schedule, and results
// aggregate into fleet-level metrics (idle cost weighted by cores per
// cluster).
//
// With `allow_upgrade` enabled, a request whose own class pool is drained is
// served instantly from the next larger class with a ready cluster (an
// upgrade: more cores than asked for, but zero wait); only if every eligible
// pool is drained does the request fall back to on-demand creation in its
// own class.
#ifndef IPOOL_SIM_MULTI_POOL_H_
#define IPOOL_SIM_MULTI_POOL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "exec/thread_pool.h"
#include "sim/pool_simulator.h"
#include "solver/saa_optimizer.h"

namespace ipool {

struct PoolClass {
  std::string name;               // e.g. "3-node medium"
  double cores_per_cluster = 24;  // weight for fleet COGS
  SimConfig sim;                  // creation latency etc. for this shape
};

/// A cluster request annotated with the pool class it needs. Classes are
/// ordered smallest to largest; upgrades only go upward.
struct SizedRequest {
  double time = 0.0;
  size_t size_class = 0;
};

struct MultiPoolResult {
  /// Cluster-side stats per pool class; request-side counts are attributed
  /// to the request's *origin* class (an upgraded request counts as a hit
  /// for its own class).
  std::vector<SimResult> per_pool;
  int64_t total_requests = 0;
  int64_t pool_hits = 0;
  /// Hits served by a larger class than requested (0 unless allow_upgrade).
  int64_t upgrades = 0;
  double hit_rate = 1.0;
  double avg_wait_seconds = 0.0;
  /// Idle cost in core-seconds: sum over pools of idle cluster-seconds
  /// weighted by that class's cores per cluster.
  double idle_core_seconds = 0.0;
};

class MultiPoolSimulator {
 public:
  /// `classes` must be ordered smallest to largest when upgrades are used.
  /// Validation rejects empty class lists and invalid per-class sim configs.
  static Result<MultiPoolSimulator> Create(std::vector<PoolClass> classes,
                                           bool allow_upgrade = false);

  /// Replays the sized requests against one schedule per class (each
  /// schedule[i] has one target per bin, as in PoolSimulator::Run).
  /// Requests must be sorted by time; each request's size_class must index
  /// into the class list.
  Result<MultiPoolResult> Run(
      const std::vector<SizedRequest>& requests,
      const std::vector<std::vector<int64_t>>& schedules,
      double interval_seconds, double horizon_seconds) const;

  size_t num_classes() const { return classes_.size(); }
  const PoolClass& pool_class(size_t i) const { return classes_[i]; }
  bool allow_upgrade() const { return allow_upgrade_; }

 private:
  MultiPoolSimulator(std::vector<PoolClass> classes, bool allow_upgrade)
      : classes_(std::move(classes)), allow_upgrade_(allow_upgrade) {}

  std::vector<PoolClass> classes_;
  bool allow_upgrade_;
};

/// Splits a sized-request stream into per-class event streams (helper for
/// running per-class forecasting pipelines).
std::vector<std::vector<double>> SplitByClass(
    const std::vector<SizedRequest>& requests, size_t num_classes);

/// One per-class SAA solve of a fleet: its planning demand and optimizer
/// config, plus the periodic-template period (0 runs the full block DP,
/// anything else runs OptimizePeriodic with that period).
struct FleetSolveSpec {
  TimeSeries demand;
  SaaConfig saa;
  size_t period_bins = 0;
};

/// Solves every class's schedule for a fleet (region x node-size pools).
/// The solves are independent, so they fan out over `exec`'s pool when one
/// is wired in; schedules come back in spec order, bit-identical to solving
/// serially. Any per-spec ObsContext keeps its metrics in the parallel case
/// but drops its tracer (obs::Tracer is single-threaded).
Result<std::vector<PoolSchedule>> SolveFleetSchedules(
    const std::vector<FleetSolveSpec>& specs,
    const exec::ExecContext& exec = {});

}  // namespace ipool

#endif  // IPOOL_SIM_MULTI_POOL_H_
