#include "workload/demand_generator.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace ipool {

namespace {
constexpr double kSecondsPerDay = 86400.0;
constexpr double kSecondsPerHour = 3600.0;
}  // namespace

Status WorkloadConfig::Validate() const {
  if (interval_seconds <= 0.0) {
    return Status::InvalidArgument("interval_seconds must be positive");
  }
  if (duration_days <= 0.0) {
    return Status::InvalidArgument("duration_days must be positive");
  }
  if (base_rate_per_minute < 0.0 || hourly_spike_requests < 0.0 ||
      irregular_spike_requests < 0.0 || irregular_spike_rate_per_day < 0.0) {
    return Status::InvalidArgument("rates and magnitudes must be non-negative");
  }
  if (diurnal_amplitude < 0.0 || diurnal_amplitude > 1.0) {
    return Status::InvalidArgument("diurnal_amplitude must be in [0, 1]");
  }
  if (weekend_factor < 0.0) {
    return Status::InvalidArgument("weekend_factor must be non-negative");
  }
  if (hourly_spike_width_seconds <= 0.0 ||
      irregular_spike_width_seconds <= 0.0) {
    return Status::InvalidArgument("spike widths must be positive");
  }
  if (noise_cv < 0.0) {
    return Status::InvalidArgument("noise_cv must be non-negative");
  }
  if (level_shift_factor <= 0.0) {
    return Status::InvalidArgument("level_shift_factor must be positive");
  }
  if (level_shift_day < 0.0) {
    return Status::InvalidArgument("level_shift_day must be non-negative");
  }
  return Status::OK();
}

std::string RegionToString(Region region) {
  switch (region) {
    case Region::kWestUs2:
      return "West US 2";
    case Region::kEastUs2:
      return "East US 2";
  }
  return "Unknown";
}

std::string NodeSizeToString(NodeSize size) {
  switch (size) {
    case NodeSize::kSmall:
      return "Small";
    case NodeSize::kMedium:
      return "Medium";
    case NodeSize::kLarge:
      return "Large";
  }
  return "Unknown";
}

WorkloadConfig RegionNodeProfile(Region region, NodeSize size, uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  // Volume ordering mirrors Table 1: small-node pools carry the most
  // traffic, large the least; West US 2 is busier and noisier than East.
  switch (size) {
    case NodeSize::kSmall:
      config.base_rate_per_minute = 10.0;
      config.hourly_spike_requests = 25.0;
      break;
    case NodeSize::kMedium:
      config.base_rate_per_minute = 3.5;
      config.hourly_spike_requests = 8.0;
      break;
    case NodeSize::kLarge:
      config.base_rate_per_minute = 1.2;
      config.hourly_spike_requests = 3.0;
      break;
  }
  switch (region) {
    case Region::kWestUs2:
      config.noise_cv = 0.35;
      config.diurnal_amplitude = 0.7;
      config.peak_hour = 13.0;
      break;
    case Region::kEastUs2:
      config.base_rate_per_minute *= 0.6;
      config.hourly_spike_requests *= 0.6;
      config.noise_cv = 0.15;
      config.diurnal_amplitude = 0.55;
      config.peak_hour = 15.0;
      break;
  }
  return config;
}

WorkloadConfig SpikyRegionProfile(uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.base_rate_per_minute = 0.25;  // demand close to zero off-spike
  config.diurnal_amplitude = 0.2;
  config.weekend_factor = 0.8;
  config.hourly_spike_requests = 0.0;
  config.irregular_spike_rate_per_day = 8.0;  // ~ every 3 hours
  config.irregular_spike_requests = 30.0;
  config.irregular_spike_width_seconds = 120.0;
  config.irregular_spikes_business_hours_only = true;
  config.noise_cv = 0.25;
  return config;
}

WorkloadConfig RegimeShiftProfile(uint64_t seed, double shift_day,
                                  double shift_factor) {
  WorkloadConfig config;
  config.seed = seed;
  // Pre-shift: a smooth, low-noise diurnal wave — the regime a periodic
  // forecaster (SSA) models near-perfectly, so it wins any pre-shift tune.
  // Post-shift the same wave runs at `shift_factor` times the level; a
  // forecaster trained only on pre-shift history keeps predicting the old
  // level and under-provisions, which is what the auto-tuner's e2e
  // scenario detects. The amplitude keeps the trough at 20% of base (the
  // shift is visible at any hour) and the default shift lands at noon,
  // near the peak, not in the overnight trough.
  config.base_rate_per_minute = 6.0;
  config.diurnal_amplitude = 0.4;
  config.peak_hour = 14.0;
  config.weekend_factor = 1.0;  // pure diurnal: no weekly confound
  config.hourly_spike_requests = 0.0;
  config.noise_cv = 0.05;
  config.level_shift_day = shift_day;
  config.level_shift_factor = shift_factor;
  return config;
}

Result<DemandGenerator> DemandGenerator::Create(const WorkloadConfig& config) {
  IPOOL_RETURN_NOT_OK(config.Validate());
  return DemandGenerator(config);
}

DemandGenerator::DemandGenerator(const WorkloadConfig& config)
    : config_(config) {
  BuildIrregularSpikes();
}

void DemandGenerator::BuildIrregularSpikes() {
  if (config_.irregular_spike_rate_per_day <= 0.0 ||
      config_.irregular_spike_requests <= 0.0) {
    return;
  }
  // Homogeneous Poisson arrival of spike events over the trace. Seed stream
  // is separate (tag 0xA5) from the per-bin noise so changing noise settings
  // does not move the spike schedule.
  Rng base(config_.seed);
  Rng rng = base.Fork(0xA5);
  const double horizon = config_.duration_days * kSecondsPerDay;
  const double rate = config_.irregular_spike_rate_per_day / kSecondsPerDay;
  double t = rng.Exponential(rate);
  while (t < horizon) {
    const double hour = std::fmod(t, kSecondsPerDay) / kSecondsPerHour;
    if (!config_.irregular_spikes_business_hours_only ||
        (hour >= 6.0 && hour < 22.0)) {
      spike_times_.push_back(t);
    }
    t += rng.Exponential(rate);
  }
}

size_t DemandGenerator::num_bins() const {
  return static_cast<size_t>(std::ceil(
      config_.duration_days * kSecondsPerDay / config_.interval_seconds));
}

double DemandGenerator::RateAt(double t) const {
  const double day = std::fmod(t / kSecondsPerDay, 7.0);
  const double hour = std::fmod(t, kSecondsPerDay) / kSecondsPerHour;

  // Diurnal cosine: 1 at peak_hour, (1 - 2*amplitude) clipped at >= 0 at the
  // opposite point, mean ~ (1 - amplitude).
  const double phase = 2.0 * M_PI * (hour - config_.peak_hour) / 24.0;
  double rate = config_.base_rate_per_minute / 60.0 *
                std::max(0.0, 1.0 - config_.diurnal_amplitude +
                                  config_.diurnal_amplitude * std::cos(phase));

  const bool weekend = day >= 5.0;
  if (weekend) rate *= config_.weekend_factor;

  // Top-of-hour burst: a rectangular bump of `hourly_spike_requests` spread
  // over `hourly_spike_width_seconds` right after each round hour.
  if (config_.hourly_spike_requests > 0.0) {
    const double since_hour = std::fmod(t, kSecondsPerHour);
    if (since_hour < config_.hourly_spike_width_seconds) {
      double burst = config_.hourly_spike_requests /
                     config_.hourly_spike_width_seconds;
      if (weekend) burst *= config_.weekend_factor;
      rate += burst;
    }
  }

  // Sporadic spikes.
  for (double spike_t : spike_times_) {
    if (t >= spike_t && t < spike_t + config_.irregular_spike_width_seconds) {
      rate += config_.irregular_spike_requests /
              config_.irregular_spike_width_seconds;
    }
  }

  // Regime change: the permanent level shift scales EVERYTHING (diurnal
  // curve, hourly bursts, sporadic spikes) — the workload's whole level
  // moved, not one component.
  if (config_.level_shift_factor != 1.0 &&
      t >= config_.level_shift_day * kSecondsPerDay) {
    rate *= config_.level_shift_factor;
  }
  return rate;
}

TimeSeries DemandGenerator::GenerateBinned() const {
  Rng base(config_.seed);
  Rng rng = base.Fork(0xB1);
  const size_t bins = num_bins();
  std::vector<double> counts(bins, 0.0);
  // Log-normal multiplicative noise with unit mean and the configured CV.
  const double cv2 = config_.noise_cv * config_.noise_cv;
  const double sigma = std::sqrt(std::log1p(cv2));
  const double mu = -0.5 * sigma * sigma;
  for (size_t i = 0; i < bins; ++i) {
    const double t_mid =
        (static_cast<double>(i) + 0.5) * config_.interval_seconds;
    double lambda = RateAt(t_mid) * config_.interval_seconds;
    if (config_.noise_cv > 0.0) {
      lambda *= std::exp(rng.Normal(mu, sigma));
    }
    counts[i] = static_cast<double>(rng.Poisson(lambda));
  }
  return TimeSeries(0.0, config_.interval_seconds, std::move(counts));
}

std::vector<double> DemandGenerator::GenerateEvents() const {
  // Same bin-level counts as GenerateBinned (same sub-stream), with
  // uniformly scattered arrival offsets inside each bin so the event view
  // and the binned view of one seed agree exactly.
  Rng base(config_.seed);
  Rng count_rng = base.Fork(0xB1);
  Rng offset_rng = base.Fork(0xC2);
  const size_t bins = num_bins();
  const double cv2 = config_.noise_cv * config_.noise_cv;
  const double sigma = std::sqrt(std::log1p(cv2));
  const double mu = -0.5 * sigma * sigma;

  std::vector<double> events;
  for (size_t i = 0; i < bins; ++i) {
    const double t_mid =
        (static_cast<double>(i) + 0.5) * config_.interval_seconds;
    double lambda = RateAt(t_mid) * config_.interval_seconds;
    if (config_.noise_cv > 0.0) {
      lambda *= std::exp(count_rng.Normal(mu, sigma));
    }
    const int64_t count = count_rng.Poisson(lambda);
    const double bin_start = static_cast<double>(i) * config_.interval_seconds;
    for (int64_t k = 0; k < count; ++k) {
      events.push_back(bin_start +
                       offset_rng.NextDouble() * config_.interval_seconds);
    }
  }
  std::sort(events.begin(), events.end());
  return events;
}

}  // namespace ipool
