// Synthetic cluster-request workload generator: the stand-in for the
// proprietary Azure Synapse / Fabric production traces used in the paper's
// evaluation. Demand is a non-homogeneous Poisson process whose rate
// combines:
//   * a diurnal curve (business-hours peak, overnight trough),
//   * a weekday/weekend scale,
//   * top-of-the-hour scheduler surges (the paper's Fig 4 observes pool size
//     rising at 5:55, 6:55, ... because many jobs are scheduled at round
//     hours),
//   * irregular sporadic spikes every ~3 hours (the troublesome region of
//     §7.5), and
//   * multiplicative log-normal noise.
#ifndef IPOOL_WORKLOAD_DEMAND_GENERATOR_H_
#define IPOOL_WORKLOAD_DEMAND_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tsdata/time_series.h"

namespace ipool {

struct WorkloadConfig {
  /// Bin width for the generated series.
  double interval_seconds = kDefaultIntervalSeconds;
  /// Trace length.
  double duration_days = 14.0;
  /// Mean request rate at the diurnal midpoint, requests per minute.
  double base_rate_per_minute = 4.0;
  /// Fraction of the base rate the diurnal cycle swings (0 = flat,
  /// 0.8 = overnight rate is 20% of daytime peak).
  double diurnal_amplitude = 0.6;
  /// Hour of peak demand (local time of the simulated region).
  double peak_hour = 14.0;
  /// Multiplier applied on Saturday/Sunday (day 5, 6 of each week).
  double weekend_factor = 0.35;
  /// Extra scheduled-job requests arriving in a burst at each round hour.
  double hourly_spike_requests = 0.0;
  /// Width of the top-of-hour burst.
  double hourly_spike_width_seconds = 120.0;
  /// Mean count of sporadic spikes per day (0 disables; §7.5's region sees
  /// one roughly every 3 hours => 8/day).
  double irregular_spike_rate_per_day = 0.0;
  /// Requests injected by each sporadic spike.
  double irregular_spike_requests = 0.0;
  /// Width of a sporadic spike.
  double irregular_spike_width_seconds = 90.0;
  /// Restrict sporadic spikes to working hours (06:00-22:00): they are
  /// user-triggered job storms, not uniformly random across the night.
  bool irregular_spikes_business_hours_only = false;
  /// Coefficient of variation of the per-bin multiplicative noise.
  double noise_cv = 0.15;
  /// Regime change: a PERMANENT multiplicative level shift applied to the
  /// whole rate (diurnal curve, bursts and spikes included) from
  /// `level_shift_day` onward. 1.0 disables. Unlike the transient spikes
  /// above, the shift never reverts — history straddling it mixes two
  /// regimes, which is exactly the case that invalidates a forecaster's
  /// learned basis (an SSA basis trained pre-shift keeps predicting the old
  /// level; see ROADMAP item 4).
  double level_shift_factor = 1.0;
  /// Day offset (fractional days from trace start) at which the shift
  /// lands.
  double level_shift_day = 0.0;
  /// PRNG seed; same seed + config => identical trace.
  uint64_t seed = 1;

  /// Rejects non-positive durations/intervals and negative magnitudes.
  Status Validate() const;
};

/// Identifiers matching the datasets of Table 1 (two regions x three node
/// sizes) plus the spiky region of §7.5.
enum class Region { kWestUs2, kEastUs2 };
enum class NodeSize { kSmall, kMedium, kLarge };

std::string RegionToString(Region region);
std::string NodeSizeToString(NodeSize size);

/// A workload profile shaped like one row of Table 1. Request volume falls
/// with node size (small-node pools serve the most requests) and West US 2
/// runs hotter and noisier than East US 2.
WorkloadConfig RegionNodeProfile(Region region, NodeSize size, uint64_t seed);

/// The §7.5 region: low baseline demand with sporadic spikes roughly every
/// three hours, irregularly timed.
WorkloadConfig SpikyRegionProfile(uint64_t seed);

/// Regime-change family: a smooth, low-noise diurnal workload (the regime a
/// periodic forecaster models near-perfectly) that permanently jumps to
/// `shift_factor` times its level at `shift_day` — the mid-trace level
/// shift of ROADMAP item 4 and the fleet auto-tuner's e2e scenario (the
/// pre-shift winner's basis goes stale and must be demoted).
WorkloadConfig RegimeShiftProfile(uint64_t seed, double shift_day = 7.5,
                                  double shift_factor = 6.0);

class DemandGenerator {
 public:
  /// Validates the config.
  static Result<DemandGenerator> Create(const WorkloadConfig& config);

  /// Expected request rate (requests/second) at virtual time t, before
  /// noise. Exposed for tests and for rate-model inspection.
  double RateAt(double t_seconds) const;

  /// Per-bin request counts over the configured duration.
  TimeSeries GenerateBinned() const;

  /// Raw request arrival timestamps (sorted), for the event-driven pool
  /// simulator.
  std::vector<double> GenerateEvents() const;

  const WorkloadConfig& config() const { return config_; }
  size_t num_bins() const;

 private:
  explicit DemandGenerator(const WorkloadConfig& config);

  /// Deterministic per-trace spike schedule (times and magnitudes).
  void BuildIrregularSpikes();

  WorkloadConfig config_;
  std::vector<double> spike_times_;
};

}  // namespace ipool

#endif  // IPOOL_WORKLOAD_DEMAND_GENERATOR_H_
