// The troublesome region of §7.5: near-zero baseline demand with sporadic
// spikes roughly every 3 hours during working hours, irregularly timed.
// Plain forecasting misses the spikes; the paper's robustness strategies
// (max-filter the demand before training with an SF spanning the
// inter-spike gap, extend STABLENESS, max-filter the recommended pool sizes
// with SF = tau, and a small MIN POOL SIZE floor) keep the pool raised
// through the spike-prone hours while still shrinking toward zero at night.
//
// As in production, recommendations roll: every hour the pipeline retrains
// on all history so far and emits the next hour's schedule.
#include <cstdio>

#include "common/strings.h"
#include "core/recommendation_engine.h"
#include "solver/pool_model.h"
#include "workload/demand_generator.h"

namespace {

using namespace ipool;

PoolMetrics RunRolling(bool robust, const TimeSeries& all, size_t eval_start) {
  const size_t bins_per_hour = 120;
  PipelineConfig config;
  config.model = ModelKind::kSsaPlus;
  config.forecast.window = 96;
  config.forecast.horizon = 48;
  config.forecast.alpha_prime = robust ? 0.95 : 0.5;
  config.saa.alpha_prime = robust ? 0.1 : 0.3;
  config.saa.pool.tau_bins = 3;
  config.saa.pool.max_pool_size = 200;
  config.recommendation_bins = bins_per_hour;
  if (robust) {
    config.smoothing_factor_bins = 360;     // S1: SF ~ inter-spike gap
    config.saa.pool.stableness_bins = 20;   // S2: 10 min stability
    config.smooth_recommendation = true;    // S3: SF = tau output filter
    config.saa.pool.min_pool_size = 2;      // Eq 10 floor for stray requests
  } else {
    config.saa.pool.stableness_bins = 10;
  }
  auto engine = RecommendationEngine::Create(config);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    std::exit(1);
  }

  std::vector<int64_t> schedule;
  for (size_t anchor = eval_start; anchor < all.size();
       anchor += bins_per_hour) {
    auto rec = engine->Run(all.Slice(0, anchor));
    if (!rec.ok()) {
      std::fprintf(stderr, "pipeline: %s\n", rec.status().ToString().c_str());
      std::exit(1);
    }
    for (size_t i = 0; i < bins_per_hour && anchor + i < all.size(); ++i) {
      schedule.push_back(rec->pool_size_per_bin[i]);
    }
  }
  TimeSeries eval = all.Slice(eval_start, all.size());
  auto metrics = EvaluateSchedule(eval, schedule, config.saa.pool);
  return *metrics;
}

}  // namespace

int main() {
  using namespace ipool;
  WorkloadConfig workload = SpikyRegionProfile(/*seed=*/99);
  workload.duration_days = 2.0;
  auto generator = DemandGenerator::Create(workload);
  TimeSeries all = generator->GenerateBinned();
  const size_t eval_start = all.size() / 2;
  std::printf("Spiky region: %.0f requests/day, max %.0f requests/bin, "
              "spikes every ~3 h in working hours\n",
              all.Sum() / 2.0, all.Max());

  PoolMetrics plain = RunRolling(/*robust=*/false, all, eval_start);
  PoolMetrics robust = RunRolling(/*robust=*/true, all, eval_start);

  CogsModel cogs;
  std::printf("\n%-26s %14s %16s\n", "", "plain", "with §7.5 fixes");
  std::printf("%-26s %13.1f%% %15.1f%%\n", "pool hit rate",
              100.0 * plain.hit_rate, 100.0 * robust.hit_rate);
  std::printf("%-26s %14.2f %16.2f\n", "avg wait (s)",
              plain.avg_wait_seconds_capped, robust.avg_wait_seconds_capped);
  std::printf("%-26s %14.1f %16.1f\n", "avg pool size", plain.avg_pool_size,
              robust.avg_pool_size);
  std::printf("%-26s %14.2f %16.2f\n", "idle COGS ($/day)",
              cogs.IdleDollars(plain.idle_cluster_seconds),
              cogs.IdleDollars(robust.idle_cluster_seconds));
  std::printf("\nThe robustness strategies trade idle time for a hit rate "
              "that stays high through\nirregular spikes (paper: hit rate -> "
              "100%% while COGS savings vs static pooling\nrose from 18%% to "
              "64%%, because the pool shrinks when demand is near zero).\n");
  return 0;
}
