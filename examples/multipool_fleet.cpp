// Multi-pool fleet — the paper's §9 future work: several live pools with
// different cluster configurations (small / medium / large) operated side by
// side. Each size class gets its own Intelligent Pooling pipeline sized from
// its own demand history; the fleet is compared against serving everyone
// from a single pool of the largest shape (the one-size-fits-all strawman
// that motivates multiple pools).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/strings.h"
#include "sim/multi_pool.h"
#include "solver/saa_optimizer.h"
#include "tsdata/smoothing.h"
#include "workload/demand_generator.h"

namespace {

using namespace ipool;

// Sized request stream: classes draw from independent demand processes with
// different volumes (small jobs dominate).
std::vector<SizedRequest> BuildFleetDemand(double days, uint64_t seed,
                                           std::vector<TimeSeries>* binned) {
  const double rates[] = {6.0, 2.5, 0.8};  // requests/min per class
  std::vector<SizedRequest> requests;
  for (size_t c = 0; c < 3; ++c) {
    WorkloadConfig config;
    config.duration_days = days;
    config.base_rate_per_minute = rates[c];
    config.hourly_spike_requests = 4.0 * rates[c];
    config.seed = seed + c;
    auto generator = DemandGenerator::Create(config);
    binned->push_back(generator->GenerateBinned());
    for (double t : generator->GenerateEvents()) {
      requests.push_back({t, c});
    }
  }
  std::sort(requests.begin(), requests.end(),
            [](const SizedRequest& a, const SizedRequest& b) {
              return a.time < b.time;
            });
  return requests;
}

// Builds one class's solve spec for the fleet solver: a daily template
// (§4.2's periodic policy) from the SAA on the max-filtered day-1 history,
// one pool size per time-of-day slot, reused for day 2.
FleetSolveSpec ClassSolveSpec(const TimeSeries& day1) {
  FleetSolveSpec spec;
  spec.saa.alpha_prime = 0.1;
  spec.saa.pool.tau_bins = 3;
  spec.saa.pool.stableness_bins = 10;
  spec.saa.pool.max_pool_size = 300;
  // Eq 18 margin absorbs day-to-day realization noise.
  spec.demand = MaxFilter(day1, 10);
  spec.period_bins = day1.size();
  return spec;
}

}  // namespace

int main() {
  using namespace ipool;
  std::vector<TimeSeries> binned;
  std::vector<SizedRequest> all_requests =
      BuildFleetDemand(/*days=*/2.0, /*seed=*/777, &binned);

  // Day 2 only, for evaluation.
  const double day = 86400.0;
  std::vector<SizedRequest> day2;
  for (const SizedRequest& r : all_requests) {
    if (r.time >= day) day2.push_back({r.time - day, r.size_class});
  }
  const size_t day2_bins = 2880;

  std::vector<PoolClass> classes = {
      {"small  (1 node,  8 cores)", 8.0, {}},
      {"medium (3 nodes, 24 cores)", 24.0, {}},
      {"large  (8 nodes, 64 cores)", 64.0, {}},
  };
  for (auto& c : classes) {
    c.sim.creation_latency_mean_seconds = 90.0;
    c.sim.creation_latency_cv = 0.1;
    c.sim.seed = 3;
  }

  // Per-class pipelines sized from each class's own day-1 history. The
  // per-class solves are independent, so they go through the fleet solver
  // (which fans out over a pool when IPOOL_THREADS asks for one; results
  // are identical either way).
  std::vector<FleetSolveSpec> specs;
  for (size_t c = 0; c < classes.size(); ++c) {
    specs.push_back(ClassSolveSpec(binned[c].Slice(0, day2_bins)));
  }
  std::unique_ptr<exec::ThreadPool> pool;
  if (const char* env = std::getenv("IPOOL_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) pool = std::make_unique<exec::ThreadPool>(static_cast<size_t>(n));
  }
  auto solved = SolveFleetSchedules(specs, {pool.get()});
  if (!solved.ok()) {
    std::fprintf(stderr, "optimize: %s\n", solved.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<int64_t>> schedules;
  std::printf("Per-class recommendations (from each class's own history):\n");
  for (size_t c = 0; c < classes.size(); ++c) {
    std::vector<int64_t> schedule = (*solved)[c].pool_size_per_bin;
    schedule.resize(day2_bins, schedule.back());
    schedules.push_back(std::move(schedule));
    double mean = 0;
    for (int64_t n : schedules.back()) mean += static_cast<double>(n);
    std::printf("  %-28s avg target %.1f clusters\n", classes[c].name.c_str(),
                mean / static_cast<double>(day2_bins));
  }

  auto fleet = MultiPoolSimulator::Create(classes);
  auto fleet_result = fleet->Run(day2, schedules, 30.0, day + 600.0);
  if (!fleet_result.ok()) {
    std::fprintf(stderr, "fleet: %s\n", fleet_result.status().ToString().c_str());
    return 1;
  }
  // Same fleet with upgrade-on-miss routing: a drained class borrows a ready
  // cluster from the next larger class instead of going on-demand.
  auto upgrading = MultiPoolSimulator::Create(classes, /*allow_upgrade=*/true);
  auto upgrade_result = upgrading->Run(day2, schedules, 30.0, day + 600.0);

  // One-size-fits-all: a single large-cluster pool serves every class; its
  // schedule is the per-bin sum of the class schedules (same cluster count).
  std::vector<PoolClass> mono_class = {{"large-only", 64.0, classes[2].sim}};
  auto mono = MultiPoolSimulator::Create(mono_class);
  std::vector<int64_t> mono_schedule(day2_bins, 0);
  for (const auto& schedule : schedules) {
    for (size_t i = 0; i < day2_bins; ++i) mono_schedule[i] += schedule[i];
  }
  std::vector<SizedRequest> coerced = day2;
  for (auto& r : coerced) r.size_class = 0;
  auto mono_result =
      mono->Run(coerced, {mono_schedule}, 30.0, day + 600.0);

  const double core_hour = 3600.0;
  std::printf("\n%-28s %12s %12s %16s\n", "fleet policy", "hit rate",
              "avg wait(s)", "idle core-hours");
  std::printf("%-28s %11.1f%% %12.2f %16.1f\n", "3 right-sized pools",
              100.0 * fleet_result->hit_rate, fleet_result->avg_wait_seconds,
              fleet_result->idle_core_seconds / core_hour);
  std::printf("%-28s %11.1f%% %12.2f %16.1f\n",
              StrFormat("3 pools + upgrades (%ld)", upgrade_result->upgrades)
                  .c_str(),
              100.0 * upgrade_result->hit_rate,
              upgrade_result->avg_wait_seconds,
              upgrade_result->idle_core_seconds / core_hour);
  std::printf("%-28s %11.1f%% %12.2f %16.1f\n", "single large-only pool",
              100.0 * mono_result->hit_rate, mono_result->avg_wait_seconds,
              mono_result->idle_core_seconds / core_hour);
  std::printf("\nRight-sizing the pools cuts idle core-hours by %.0f%% at a "
              "comparable hit rate —\nthe case for the paper's future work "
              "of operating multiple pool configurations.\n",
              100.0 * (1.0 - fleet_result->idle_core_seconds /
                                 mono_result->idle_core_seconds));
  return 0;
}
