// Region simulation: a full day of the production control plane for one
// region, exercising every moving part of Figure 2 — telemetry ingestion,
// the Intelligent Pooling Worker retraining every 30 minutes (with two
// injected crashes), recommendation documents in the Cosmos DB stand-in,
// the Pooling Worker's stale/default fallbacks, Arbitrator lease
// management with an unhealthy worker replacement, and the event-driven
// live-pool simulation scoring the final outcome.
#include <cstdio>

#include "common/strings.h"
#include "service/monitoring.h"
#include "service/arbitrator.h"
#include "service/control_loop.h"
#include "workload/demand_generator.h"

int main() {
  using namespace ipool;

  // --- the region's demand ----------------------------------------------------
  WorkloadConfig workload;
  workload.duration_days = 1.0;
  workload.base_rate_per_minute = 8.0;
  workload.hourly_spike_requests = 15.0;
  workload.diurnal_amplitude = 0.4;
  workload.seed = 2024;
  auto generator = DemandGenerator::Create(workload);
  TimeSeries demand = generator->GenerateBinned();
  auto events = generator->GenerateEvents();
  std::printf("Region demand: %zu requests over 24 h\n", events.size());

  // --- Arbitrator: pooling tasks leased to workers ------------------------------
  auto arbitrator = Arbitrator::Create({});
  for (const char* w : {"worker-a", "worker-b", "worker-c"}) {
    (void)arbitrator->AddWorker(w);
  }
  for (const char* item : {"session-pool", "cluster-pool", "ip-pipeline"}) {
    (void)arbitrator->AddWorkItem(item);
  }
  arbitrator->RunHealthCheck(0.0);
  std::printf("\nArbitrator assignments:\n");
  for (const char* item : {"session-pool", "cluster-pool", "ip-pipeline"}) {
    std::printf("  %-12s -> %s\n", item, arbitrator->OwnerOf(item)->c_str());
  }
  // worker-a goes down mid-day; its items must move.
  (void)arbitrator->SetWorkerHealth("worker-a", false);
  arbitrator->RunHealthCheck(12 * 3600.0);
  std::printf("After worker-a failure at 12:00:\n");
  for (const char* item : {"session-pool", "cluster-pool", "ip-pipeline"}) {
    std::printf("  %-12s -> %s\n", item, arbitrator->OwnerOf(item)->c_str());
  }

  // --- the ML pipeline ----------------------------------------------------------
  PipelineConfig pipeline;
  pipeline.model = ModelKind::kSsaPlus;
  pipeline.forecast.window = 96;
  pipeline.forecast.horizon = 48;
  pipeline.forecast.alpha_prime = 0.92;  // overshoot for high hit rate
  pipeline.saa.alpha_prime = 0.25;
  pipeline.saa.pool.tau_bins = 3;
  pipeline.saa.pool.stableness_bins = 10;
  pipeline.saa.pool.max_pool_size = 300;
  pipeline.recommendation_bins = 120;
  auto engine = RecommendationEngine::Create(pipeline);

  ControlLoopConfig loop;
  loop.run_interval_seconds = 1800.0;
  loop.worker.history_bins = 720;  // train on the trailing 6 h
  loop.pooling.default_pool_size = 6;
  loop.sim.creation_latency_mean_seconds = 90.0;
  loop.sim.creation_latency_cv = 0.2;
  loop.sim.seed = 7;

  // Crash pipeline runs 10 and 11 (~5:00-5:30) to exercise §7.6 fallbacks.
  auto result = ControlLoop::Run(
      *engine, loop, demand, events,
      [](size_t run) { return run == 10 || run == 11; });
  if (!result.ok()) {
    std::fprintf(stderr, "control loop: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // --- the day's dashboard (the §7.5 monitoring metrics) ------------------------
  // Feed the monitoring system (the Kusto-backed dashboard of §7.5) and pull
  // a snapshot + alerts.
  AlertConfig alert_config;
  alert_config.min_hit_rate = 0.95;
  auto monitor = Monitor::Create(alert_config, CogsModel{},
                                 /*static_reference_pool=*/40);
  {
    double t = 0.0;
    for (size_t i = 0; i < result->pipeline_runs; ++i) {
      t += loop.run_interval_seconds;
      // Replay pipeline statuses in order: failures were runs 10 and 11.
      const PipelineStatus status = (i == 10 || i == 11)
                                        ? PipelineStatus::kFailed
                                        : PipelineStatus::kSucceeded;
      monitor->RecordPipelineRun(t, status);
      (void)monitor->CheckAlerts(t);
    }
    monitor->RecordClusterIdle(86400.0, result->sim.idle_cluster_seconds);
    monitor->RecordRecommendation(86400.0,
                                  static_cast<double>(result->applied_schedule.back()));
  }

  std::printf("\n===== Intelligent Pooling daily dashboard =====\n");
  std::printf("pipeline runs          : %zu (%zu failed, %zu guardrail)\n",
              result->pipeline_runs, result->pipeline_failures,
              result->guardrail_rejections);
  std::printf("fallback-to-default    : %zu bins\n", result->fallback_bins);
  const SimResult& sim = result->sim;
  std::printf("requests served        : %ld\n", sim.total_requests);
  std::printf("pool hit rate          : %.2f%%\n", 100.0 * sim.hit_rate);
  std::printf("avg / p99 / max wait   : %.2f / %.1f / %.1f s\n",
              sim.avg_wait_seconds, sim.p99_wait_seconds, sim.max_wait_seconds);
  std::printf("clusters created       : %ld (+%ld on-demand)\n",
              sim.clusters_created, sim.on_demand_created);
  std::printf("hydrations cancelled   : %ld, deleted on downsize: %ld\n",
              sim.hydrations_cancelled, sim.clusters_deleted);
  std::printf("idle cluster time      : %s\n",
              HumanDuration(sim.idle_cluster_seconds).c_str());
  CogsModel cogs;
  std::printf("idle COGS              : $%.2f\n",
              cogs.IdleDollars(sim.idle_cluster_seconds));
  DashboardSnapshot snap = monitor->Snapshot(86400.0);
  std::printf("COGS saved vs static-40: $%.2f\n", snap.cogs_saved_dollars);
  std::printf("alerts fired           : %zu\n", monitor->alerts().size());
  for (const Alert& alert : monitor->alerts()) {
    std::printf("  [%s] %s: %s\n", HumanClock(alert.time).c_str(),
                alert.kind.c_str(), alert.message.c_str());
  }
  return 0;
}
