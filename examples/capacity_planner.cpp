// Capacity planner: an operator-facing walk along the wait-time / idle-cost
// Pareto frontier (§4.2, Fig 5). For a given region workload it sweeps the
// alpha' trade-off knob, prints the frontier with dollarized COGS, and picks
// the cheapest configuration meeting a wait-time SLA — the decision the
// paper's Table 2 is about.
//
// Usage: capacity_planner [target_wait_seconds]   (default 5.0)
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "solver/saa_optimizer.h"
#include "workload/demand_generator.h"

int main(int argc, char** argv) {
  using namespace ipool;
  const double sla_wait = argc > 1 ? std::atof(argv[1]) : 5.0;

  // Two days of a busy region; plan on day 1, evaluate on day 2.
  WorkloadConfig workload = RegionNodeProfile(Region::kWestUs2,
                                              NodeSize::kMedium, /*seed=*/7);
  workload.duration_days = 2.0;
  auto generator = DemandGenerator::Create(workload);
  TimeSeries both = generator->GenerateBinned();
  auto [day1, day2] = both.Split(0.5);

  PoolModelConfig pool;
  pool.tau_bins = 3;
  pool.stableness_bins = 10;
  pool.max_pool_size = 400;

  const std::vector<double> alphas = {0.999, 0.99, 0.95, 0.9, 0.8, 0.6,
                                      0.4,   0.2,  0.1,  0.05, 0.01};
  // Plan on yesterday's demand, score on today's (the SAA-on-history mode).
  auto points = SweepPareto(day1, day2, pool, alphas);
  if (!points.ok()) {
    std::fprintf(stderr, "sweep: %s\n", points.status().ToString().c_str());
    return 1;
  }

  CogsModel cogs;
  std::printf("Pareto frontier for %s / %s (plan on day 1, evaluate on day 2)\n",
              RegionToString(Region::kWestUs2).c_str(),
              NodeSizeToString(NodeSize::kMedium).c_str());
  std::printf("%8s %14s %12s %10s %14s %14s\n", "alpha'", "avg wait (s)",
              "hit rate", "avg pool", "idle (h)", "idle $/day");
  const ParetoPoint* chosen = nullptr;
  for (const ParetoPoint& p : *points) {
    std::printf("%8.3f %14.2f %11.1f%% %10.1f %14.1f %14.2f\n", p.alpha_prime,
                p.metrics.avg_wait_seconds_capped, 100.0 * p.metrics.hit_rate,
                p.metrics.avg_pool_size,
                p.metrics.idle_cluster_seconds / 3600.0,
                cogs.IdleDollars(p.metrics.idle_cluster_seconds));
    // Cheapest (= largest alpha') point that still meets the SLA. The sweep
    // is ordered from cheap to expensive, so keep the first that qualifies.
    if (chosen == nullptr && p.metrics.avg_wait_seconds_capped <= sla_wait) {
      chosen = &p;
    }
  }

  if (chosen == nullptr) {
    std::printf("\nNo configuration meets an average wait of %.2f s; "
                "raise MAX_POOL_SIZE or relax the SLA.\n", sla_wait);
    return 0;
  }
  std::printf("\nSLA: average wait <= %.2f s\n", sla_wait);
  std::printf("Pick alpha' = %.3f  ->  wait %.2f s, hit rate %.1f%%, "
              "idle cost $%.2f/day\n",
              chosen->alpha_prime, chosen->metrics.avg_wait_seconds_capped,
              100.0 * chosen->metrics.hit_rate,
              cogs.IdleDollars(chosen->metrics.idle_cluster_seconds));

  // Compare with static pooling sized for the same SLA: the savings story of
  // Fig 1 / Table 2.
  PoolMetrics best_static;
  int64_t best_static_size = -1;
  for (int64_t n = 0; n <= pool.max_pool_size; ++n) {
    std::vector<int64_t> schedule(day2.size(), n);
    auto metrics = EvaluateSchedule(day2, schedule, pool);
    if (metrics.ok() && metrics->avg_wait_seconds_capped <= sla_wait) {
      best_static = *metrics;
      best_static_size = n;
      break;  // smallest static pool meeting the SLA
    }
  }
  if (best_static_size >= 0) {
    const double dynamic_cost =
        cogs.IdleDollars(chosen->metrics.idle_cluster_seconds);
    const double static_cost = cogs.IdleDollars(best_static.idle_cluster_seconds);
    std::printf("\nStatic pool meeting the same SLA: %ld clusters, idle cost "
                "$%.2f/day\n", best_static_size, static_cost);
    std::printf("Dynamic pooling saves %.1f%% of idle COGS.\n",
                100.0 * (1.0 - dynamic_cost / static_cost));
  }
  return 0;
}
