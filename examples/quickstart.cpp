// Quickstart: the minimal end-to-end use of the Intelligent Pooling API.
//
//   1. synthesize a day of cluster-request demand (stand-in for telemetry),
//   2. run the deployed 2-step pipeline (SSA+ forecast -> SAA optimizer),
//   3. print the next hour's pool-size recommendation, and
//   4. evaluate what that schedule would have cost against the demand that
//      actually arrives.
//
// Build: cmake --build build --target quickstart && ./build/examples/quickstart
#include <cstdio>

#include "core/recommendation_engine.h"
#include "common/strings.h"
#include "solver/pool_model.h"
#include "workload/demand_generator.h"

int main() {
  using namespace ipool;

  // --- 1. demand history -----------------------------------------------------
  WorkloadConfig workload;
  workload.duration_days = 1.0;
  workload.base_rate_per_minute = 6.0;
  workload.hourly_spike_requests = 12.0;  // jobs scheduled at round hours
  workload.diurnal_amplitude = 0.0;       // flat day keeps the demo readable
  workload.seed = 42;
  auto generator = DemandGenerator::Create(workload);
  if (!generator.ok()) {
    std::fprintf(stderr, "workload: %s\n", generator.status().ToString().c_str());
    return 1;
  }
  TimeSeries history = generator->GenerateBinned();
  std::printf("History: %zu bins of %.0f s, %.0f total requests (%.2f/bin)\n",
              history.size(), history.interval(), history.Sum(),
              history.Mean());

  // --- 2. configure and run the pipeline --------------------------------------
  PipelineConfig config;
  config.kind = PipelineKind::k2Step;
  config.model = ModelKind::kSsaPlus;      // the deployed hybrid model
  config.forecast.window = 96;
  config.forecast.horizon = 48;
  config.forecast.alpha_prime = 0.9;       // bias toward overshoot: low waits
  config.saa.alpha_prime = 0.3;            // idle-vs-wait trade-off
  config.saa.pool.tau_bins = 3;            // 90 s cluster creation
  config.saa.pool.stableness_bins = 10;    // hold pool 5 min
  config.recommendation_bins = 120;        // recommend the next hour

  auto engine = RecommendationEngine::Create(config);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  auto rec = engine->Run(history);
  if (!rec.ok()) {
    std::fprintf(stderr, "pipeline: %s\n", rec.status().ToString().c_str());
    return 1;
  }

  // --- 3. print the recommendation --------------------------------------------
  std::printf("\nModel %s via %s pipeline. Pool size for the next hour (per 5 min):\n",
              rec->model_name.c_str(),
              PipelineKindToString(rec->pipeline).c_str());
  for (size_t i = 0; i < rec->pool_size_per_bin.size(); i += 10) {
    std::printf("  t+%2zu min: pool = %ld (forecast demand %.1f req/bin)\n",
                i / 2, rec->pool_size_per_bin[i],
                rec->predicted_demand.empty() ? 0.0 : rec->predicted_demand[i]);
  }

  // --- 4. evaluate against the demand that actually arrives -------------------
  WorkloadConfig next_hour = workload;
  next_hour.seed = 43;  // a different realization of the same process
  next_hour.duration_days = 1.0 / 24.0;
  auto future = DemandGenerator::Create(next_hour);
  TimeSeries actual = future->GenerateBinned();

  auto metrics =
      EvaluateSchedule(actual, rec->pool_size_per_bin, config.saa.pool);
  if (!metrics.ok()) {
    std::fprintf(stderr, "evaluate: %s\n", metrics.status().ToString().c_str());
    return 1;
  }
  // --- Figure 3 in miniature: the cumulative curves of §4.1 ------------------
  // D(t): cumulative demand; A(t) = D(t) + N(t): re-hydration requests;
  // A'(t) = A(t - tau): clusters ready. Idle = (A' - D)+, queued = (D - A')+.
  std::printf("\nCumulative-curve view of the first 10 bins (Figure 3):\n");
  std::printf("%6s %8s %8s %8s %8s %8s\n", "bin", "D(t)", "N(t)", "A(t)",
              "A'(t)", "gap");
  {
    const size_t tau = config.saa.pool.tau_bins;
    double cumulative = 0.0;
    std::vector<double> demand_curve;
    std::vector<double> request_curve;
    for (size_t t = 0; t < 10; ++t) {
      cumulative += actual.value(t);
      demand_curve.push_back(cumulative);
      request_curve.push_back(
          cumulative + static_cast<double>(rec->pool_size_per_bin[t]));
      const double ready = t < tau
                               ? static_cast<double>(rec->pool_size_per_bin[0])
                               : request_curve[t - tau];
      std::printf("%6zu %8.0f %8ld %8.0f %8.0f %+8.0f\n", t, demand_curve[t],
                  rec->pool_size_per_bin[t], request_curve[t], ready,
                  ready - demand_curve[t]);
    }
    std::printf("(positive gap = idle clusters in the pool; negative = "
                "queued demand)\n");
  }

  CogsModel cogs;
  std::printf("\nAgainst the hour that actually arrives:\n");
  std::printf("  requests        : %ld\n", metrics->total_requests);
  std::printf("  pool hit rate   : %.1f%%\n", 100.0 * metrics->hit_rate);
  std::printf("  avg wait        : %.2f s\n", metrics->avg_wait_seconds_capped);
  std::printf("  idle time       : %s (cluster-time)\n",
              HumanDuration(metrics->idle_cluster_seconds).c_str());
  std::printf("  idle COGS       : $%.2f (at %.0f cores x $%.2f/core-h)\n",
              cogs.IdleDollars(metrics->idle_cluster_seconds),
              cogs.cores_per_cluster, cogs.dollars_per_core_hour);
  return 0;
}
