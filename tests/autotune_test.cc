// Tests for the fleet auto-tuner (src/autotune) and its persisted document
// format (service/tuning_io): config validation, the successive-halving
// search on smooth and regime-shifted workloads, hysteresis against the
// incumbent, stale-incumbent demotion, rung-score memoization (the warm
// path), and the ParseTuning hardening that faces the network.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "autotune/fleet_tuner.h"
#include "service/tuning_io.h"
#include "tsdata/time_series.h"
#include "workload/demand_generator.h"

namespace ipool {
namespace {

using autotune::FleetTuner;
using autotune::FleetTunerConfig;
using autotune::PoolTuneResult;
using autotune::TuningCandidate;

// ---------------------------------------------------------------------------
// tuning_io: the persisted `tuning.<pool>` document.

StoredTuning SampleTuning() {
  StoredTuning stored;
  stored.pool = "west-small";
  stored.model = ModelKind::kSsa;
  stored.alpha_prime = 0.3;
  stored.window = 48;
  return stored;
}

TEST(TuningIoTest, RoundTrips) {
  const StoredTuning stored = SampleTuning();
  auto parsed = ParseTuning(SerializeTuning(stored));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, stored);
}

TEST(TuningIoTest, EqualConfigsSerializeToIdenticalBytes) {
  // The payload-cache contract: a kept incumbent republishes byte-identical
  // text, so the sharded store never re-serializes or bumps the version.
  EXPECT_EQ(SerializeTuning(SampleTuning()), SerializeTuning(SampleTuning()));
}

TEST(TuningIoTest, QuantizedAlphaRoundTripsExactly) {
  // The tuner quantizes every alpha to 1e-6 before persisting; such values
  // must survive the %.6f round trip bit-for-bit.
  StoredTuning stored = SampleTuning();
  stored.alpha_prime = 0.414213;  // an exact multiple of 1e-6
  auto parsed = ParseTuning(SerializeTuning(stored));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->alpha_prime, stored.alpha_prime);
}

TEST(TuningIoTest, RejectsOversizedDocument) {
  std::string text = SerializeTuning(SampleTuning());
  text.append(kMaxTuningBytes, ' ');
  EXPECT_FALSE(ParseTuning(text).ok());
}

TEST(TuningIoTest, RejectsWrongHeader) {
  EXPECT_FALSE(ParseTuning("tune-v2\npool=p\nmodel=SSA\nalpha=0.5\n"
                           "window=48\n")
                   .ok());
  EXPECT_FALSE(ParseTuning("").ok());
}

TEST(TuningIoTest, RejectsDuplicateField) {
  EXPECT_FALSE(
      ParseTuning("tune-v1\npool=p\npool=q\nmodel=SSA\nalpha=0.5\n"
                  "window=48\n")
          .ok());
}

TEST(TuningIoTest, RejectsMissingField) {
  EXPECT_FALSE(ParseTuning("tune-v1\npool=p\nmodel=SSA\nalpha=0.5\n").ok());
}

TEST(TuningIoTest, RejectsUnknownField) {
  EXPECT_FALSE(
      ParseTuning("tune-v1\npool=p\nmodel=SSA\nalpha=0.5\nwindow=48\n"
                  "score=1.0\n")
          .ok());
}

TEST(TuningIoTest, RejectsNonFiniteAndOutOfRangeAlpha) {
  for (const char* alpha : {"nan", "inf", "-inf", "1.5", "-0.1", "0.5x"}) {
    const std::string text = std::string("tune-v1\npool=p\nmodel=SSA\n") +
                             "alpha=" + alpha + "\nwindow=48\n";
    EXPECT_FALSE(ParseTuning(text).ok()) << alpha;
  }
}

TEST(TuningIoTest, RejectsOutOfRangeWindow) {
  for (const char* window : {"0", "3", "65537", "-48", "48.5"}) {
    const std::string text = std::string("tune-v1\npool=p\nmodel=SSA\n") +
                             "alpha=0.5\nwindow=" + window + "\n";
    EXPECT_FALSE(ParseTuning(text).ok()) << window;
  }
}

TEST(TuningIoTest, RejectsUnknownModel) {
  EXPECT_FALSE(
      ParseTuning("tune-v1\npool=p\nmodel=LSTM\nalpha=0.5\nwindow=48\n").ok());
}

TEST(TuningIoTest, RejectsEmptyPool) {
  EXPECT_FALSE(
      ParseTuning("tune-v1\npool=\nmodel=SSA\nalpha=0.5\nwindow=48\n").ok());
}

TEST(ModelKindFromStringTest, RoundTripsEveryKind) {
  for (ModelKind kind :
       {ModelKind::kBaseline, ModelKind::kSsa, ModelKind::kSsaPlus,
        ModelKind::kMwdn, ModelKind::kTst, ModelKind::kInceptionTime}) {
    auto parsed = ModelKindFromString(ModelKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ModelKindFromString("prophet").ok());
}

// ---------------------------------------------------------------------------
// FleetTuner: search behavior.

// A tuner grid small enough for a sub-second test yet rich enough to
// discriminate: the baseline (gamma * max, shift-robust) against SSA
// (periodic, tight on smooth waves), two alphas, one window.
FleetTunerConfig SmallConfig() {
  FleetTunerConfig config;
  config.models = {ModelKind::kBaseline, ModelKind::kSsa};
  config.alphas = {0.3, 0.7};
  config.windows = {48};
  config.eval_bins = 120;
  config.min_train_bins = 32;
  config.refine_steps = 2;
  return config;
}

// The regime-change scenario trace: a smooth diurnal wave that jumps to 6x
// its level at `shift_day` (fractional days). 30 s bins.
TimeSeries RegimeTrace(double duration_days, double shift_day,
                       uint64_t seed = 7) {
  WorkloadConfig workload = RegimeShiftProfile(seed, shift_day);
  workload.duration_days = duration_days;
  auto generator = DemandGenerator::Create(workload);
  EXPECT_TRUE(generator.ok());
  return generator->GenerateBinned();
}

TEST(FleetTunerConfigTest, ValidateRejectsBadValues) {
  EXPECT_TRUE(SmallConfig().Validate().ok());

  FleetTunerConfig c = SmallConfig();
  c.models.clear();
  EXPECT_FALSE(c.Validate().ok());

  c = SmallConfig();
  c.alphas = {1.5};
  EXPECT_FALSE(c.Validate().ok());

  c = SmallConfig();
  c.windows = {0};
  EXPECT_FALSE(c.Validate().ok());

  c = SmallConfig();
  c.rungs = 0;
  EXPECT_FALSE(c.Validate().ok());

  c = SmallConfig();
  c.eta = 1;
  EXPECT_FALSE(c.Validate().ok());

  c = SmallConfig();
  c.eval_bins = 0;
  EXPECT_FALSE(c.Validate().ok());

  c = SmallConfig();
  c.hysteresis_pct = -1.0;
  EXPECT_FALSE(c.Validate().ok());

  c = SmallConfig();
  c.idle_cost_weight = -1.0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(FleetTunerTest, ShortHistoryFailsGracefully) {
  auto tuner = FleetTuner::Create(SmallConfig());
  ASSERT_TRUE(tuner.ok());
  const TimeSeries tiny(0.0, 30.0, std::vector<double>(64, 1.0));
  const PoolTuneResult result = (*tuner)->TunePool("p", tiny, nullptr);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(FleetTunerTest, SmoothPeriodicWorkloadPicksSsa) {
  // All pre-shift (the shift lands past the end of the trace): the periodic
  // forecaster tracks the wave tightly, the baseline's gamma * max
  // overprovisions and pays idle cost.
  const TimeSeries trace = RegimeTrace(/*duration_days=*/0.5,
                                       /*shift_day=*/2.0);
  auto tuner = FleetTuner::Create(SmallConfig());
  ASSERT_TRUE(tuner.ok());
  const PoolTuneResult result = (*tuner)->TunePool("p", trace, nullptr);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.winner.model, ModelKind::kSsa);
  EXPECT_TRUE(result.switched);  // first config for the pool
  EXPECT_TRUE(std::isinf(result.incumbent_score));
  EXPECT_GT(result.candidates, 0u);
  EXPECT_GT(result.evaluations, 0u);
}

TEST(FleetTunerTest, RegimeShiftDemotesThePeriodicIncumbent) {
  // Train ends at the shift, the holdout is post-shift: the SSA basis only
  // ever saw the old level and underpredicts 6x; the baseline adapts
  // within its max window. The pre-shift winner must be demoted.
  const TimeSeries trace = RegimeTrace(/*duration_days=*/0.54,
                                       /*shift_day=*/0.5);
  auto tuner = FleetTuner::Create(SmallConfig());
  ASSERT_TRUE(tuner.ok());
  const TuningCandidate incumbent{ModelKind::kSsa, 0.3, 48};
  const PoolTuneResult result = (*tuner)->TunePool("p", trace, &incumbent);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.switched);
  EXPECT_EQ(result.winner.model, ModelKind::kBaseline);
  EXPECT_LT(result.winner_score, result.incumbent_score);
}

TEST(FleetTunerTest, HysteresisKeepsTheIncumbent) {
  // Re-tuning over the unchanged trace with the previous winner installed
  // must keep it: the winner cannot beat itself by the hysteresis margin.
  const TimeSeries trace = RegimeTrace(0.5, 2.0);
  auto tuner = FleetTuner::Create(SmallConfig());
  ASSERT_TRUE(tuner.ok());
  const PoolTuneResult first = (*tuner)->TunePool("p", trace, nullptr);
  ASSERT_TRUE(first.ok) << first.error;
  const PoolTuneResult second =
      (*tuner)->TunePool("p", trace, &first.winner);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_FALSE(second.switched);
  EXPECT_EQ(second.winner, first.winner);
}

TEST(FleetTunerTest, StaleIncumbentIsDemotedByAnyFiniteChallenger) {
  // An incumbent whose own evaluation fails (window below the forecaster's
  // floor of 4, so CreateForecaster rejects it) scores +inf and must lose
  // to any finite challenger even inside the hysteresis margin.
  const TimeSeries trace = RegimeTrace(0.5, 2.0);
  auto tuner = FleetTuner::Create(SmallConfig());
  ASSERT_TRUE(tuner.ok());
  const TuningCandidate broken{ModelKind::kSsa, 0.3, 2};
  const PoolTuneResult result = (*tuner)->TunePool("p", trace, &broken);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.switched);
  EXPECT_TRUE(std::isinf(result.incumbent_score));
  EXPECT_TRUE(std::isfinite(result.winner_score));
}

TEST(FleetTunerTest, MemoizationServesRepeatTunesWithoutRefits) {
  const TimeSeries trace = RegimeTrace(0.5, 2.0);
  auto tuner = FleetTuner::Create(SmallConfig());
  ASSERT_TRUE(tuner.ok());
  const PoolTuneResult cold = (*tuner)->TunePool("p", trace, nullptr);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.memo_hits, 0u);

  const PoolTuneResult warm = (*tuner)->TunePool("p", trace, &cold.winner);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_GT(warm.memo_hits, 0u);
  EXPECT_EQ(warm.winner, cold.winner);
  EXPECT_EQ(warm.winner_score, cold.winner_score);

  // Dropping the caches forces the refits back.
  (*tuner)->InvalidateCaches();
  const PoolTuneResult recold = (*tuner)->TunePool("p", trace, &cold.winner);
  ASSERT_TRUE(recold.ok) << recold.error;
  EXPECT_EQ(recold.memo_hits, 0u);
  EXPECT_GT(recold.evaluations, 0u);
  EXPECT_EQ(recold.winner, cold.winner);
  EXPECT_EQ(recold.winner_score, cold.winner_score);
}

TEST(FleetTunerTest, RetuneOnUnchangedHistoryIsAFixedPoint) {
  // Regression: the winner's alpha used to be re-refined on every tune,
  // so a re-tune over unchanged telemetry kept walking alpha downhill past
  // the hysteresis margin — the "serving config" never stopped switching.
  // An incumbent that wins its own re-tune must come back verbatim.
  const TimeSeries trace = RegimeTrace(0.5, 2.0);
  auto tuner = FleetTuner::Create(SmallConfig());
  ASSERT_TRUE(tuner.ok());
  const PoolTuneResult cold = (*tuner)->TunePool("p", trace, nullptr);
  ASSERT_TRUE(cold.ok) << cold.error;

  TuningCandidate incumbent = cold.winner;
  for (int pass = 0; pass < 3; ++pass) {
    const PoolTuneResult again = (*tuner)->TunePool("p", trace, &incumbent);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_FALSE(again.switched) << "pass " << pass;
    EXPECT_EQ(again.winner, incumbent) << "pass " << pass;
    incumbent = again.winner;
  }
}

TEST(FleetTunerTest, MemoKeysOnHistoryContent) {
  // Sliding the telemetry by one bin must invalidate the memoized scores
  // (the key hashes the slice content), not serve stale ones.
  const TimeSeries trace = RegimeTrace(0.5, 2.0);
  auto tuner = FleetTuner::Create(SmallConfig());
  ASSERT_TRUE(tuner.ok());
  const PoolTuneResult cold = (*tuner)->TunePool("p", trace, nullptr);
  ASSERT_TRUE(cold.ok);

  std::vector<double> shifted(trace.values().begin() + 1,
                              trace.values().end());
  const TimeSeries slid(trace.start() + trace.interval(), trace.interval(),
                        std::move(shifted));
  const PoolTuneResult moved = (*tuner)->TunePool("p", slid, &cold.winner);
  ASSERT_TRUE(moved.ok) << moved.error;
  EXPECT_EQ(moved.memo_hits, 0u);
  EXPECT_GT(moved.evaluations, 0u);
}

TEST(FleetTunerTest, NeighborWinnerSeedsTheGrid) {
  // A pool sharing a name token with a previously tuned pool starts its
  // search with the neighbor's winner appended; with an off-grid alpha the
  // candidate count visibly grows.
  const TimeSeries trace = RegimeTrace(0.5, 2.0);
  FleetTunerConfig config = SmallConfig();
  config.refine_steps = 5;  // drive the winner's alpha off the grid
  auto tuner = FleetTuner::Create(config);
  ASSERT_TRUE(tuner.ok());
  const PoolTuneResult first =
      (*tuner)->TunePool("west-small", trace, nullptr);
  ASSERT_TRUE(first.ok) << first.error;

  const PoolTuneResult neighbor =
      (*tuner)->TunePool("west-large", trace, nullptr);
  ASSERT_TRUE(neighbor.ok) << neighbor.error;
  const PoolTuneResult stranger =
      (*tuner)->TunePool("east2.medium", trace, nullptr);
  ASSERT_TRUE(stranger.ok) << stranger.error;
  EXPECT_GE(neighbor.candidates, stranger.candidates);
}

TEST(FleetTunerTest, AlphasAreQuantizedForExactPersistence) {
  // Whatever refinement does, the winning alpha must survive the %.6f
  // document round trip exactly — the byte-identity contract.
  const TimeSeries trace = RegimeTrace(0.5, 2.0);
  FleetTunerConfig config = SmallConfig();
  config.alphas = {1.0 / 3.0, 0.7};  // not representable at 1e-6 as given
  config.refine_steps = 3;
  auto tuner = FleetTuner::Create(config);
  ASSERT_TRUE(tuner.ok());
  const PoolTuneResult result = (*tuner)->TunePool("p", trace, nullptr);
  ASSERT_TRUE(result.ok) << result.error;

  StoredTuning stored;
  stored.pool = "p";
  stored.model = result.winner.model;
  stored.alpha_prime = result.winner.alpha_prime;
  stored.window = result.winner.window;
  auto parsed = ParseTuning(SerializeTuning(stored));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->alpha_prime, result.winner.alpha_prime);
  EXPECT_EQ(parsed->window, result.winner.window);
  EXPECT_EQ(parsed->model, result.winner.model);
}

}  // namespace
}  // namespace ipool
