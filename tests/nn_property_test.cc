// Randomized property tests for the autodiff engine: gradients of randomly
// composed graphs check against finite differences, and algebraic identities
// of the losses hold on arbitrary inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "linalg/simd_kernels.h"
#include "nn/gradcheck.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/ops.h"
#include "nn/optimizer.h"

namespace ipool::nn {
namespace {

Tensor RandomParam(const Shape& shape, Rng& rng, double lo = -1.0,
                   double hi = 1.0) {
  Tensor t = Tensor::Zeros(shape, /*requires_grad=*/true);
  for (double& v : t.mutable_value()) v = rng.Uniform(lo, hi);
  return t;
}

// Builds a random smooth computation graph from a parameter matrix and
// vector, mixing the differentiable ops. Kink-free ops only (no relu/max)
// so finite differences are valid everywhere.
Tensor RandomSmoothGraph(const Tensor& a, const Tensor& v, Rng& rng) {
  Tensor x = a;  // {m, n}
  for (int depth = 0; depth < 3; ++depth) {
    switch (rng.UniformInt(0, 4)) {
      case 0:
        x = Tanh(x);
        break;
      case 1:
        x = Sigmoid(x);
        break;
      case 2:
        x = RowBroadcastAdd(x, v);
        break;
      case 3:
        x = RowBroadcastMul(x, v);
        break;
      case 4:
        x = NormalizeRows(x);
        break;
    }
  }
  Tensor sym = MatMul(x, Transpose(x));  // {m, m}
  return MeanAll(Mul(sym, sym));
}

class AutogradFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AutogradFuzzTest, RandomGraphGradientsMatchFiniteDifferences) {
  Rng rng(500 + static_cast<uint64_t>(GetParam()));
  const size_t m = 2 + static_cast<size_t>(rng.UniformInt(0, 3));
  const size_t n = 2 + static_cast<size_t>(rng.UniformInt(0, 3));
  Tensor a = RandomParam({m, n}, rng);
  Tensor v = RandomParam({n}, rng, 0.1, 1.0);
  Rng graph_rng(900 + static_cast<uint64_t>(GetParam()));
  auto forward = [&]() {
    Rng local = graph_rng;  // same graph every call
    return RandomSmoothGraph(a, v, local);
  };
  auto report = CheckGradients(forward, {a, v});
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->max_relative_error, 5e-4);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, AutogradFuzzTest,
                         ::testing::Range(0, 10));

TEST(LossPropertyTest, AsymmetricLossesSumToAbsoluteError) {
  // L(alpha) + L(1 - alpha) == mean |delta| for every alpha.
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + static_cast<size_t>(rng.UniformInt(0, 10));
    std::vector<double> p(n), t(n);
    for (size_t i = 0; i < n; ++i) {
      p[i] = rng.Uniform(-5, 5);
      t[i] = rng.Uniform(-5, 5);
    }
    const double alpha = rng.Uniform(0.0, 1.0);
    Tensor pred = Tensor::FromVector(p);
    Tensor target = Tensor::FromVector(t);
    const double a = AsymmetricLoss(pred, target, alpha).scalar();
    const double b = AsymmetricLoss(pred, target, 1.0 - alpha).scalar();
    double mae = 0.0;
    for (size_t i = 0; i < n; ++i) mae += std::fabs(p[i] - t[i]);
    mae /= static_cast<double>(n);
    EXPECT_NEAR(a + b, mae, 1e-12);
  }
}

TEST(LossPropertyTest, MinimizerIsQuantile) {
  // Minimizing the Eq 12 loss over a constant prediction recovers the
  // alpha'-quantile of the data — the mechanism behind controlled overshoot.
  Rng rng(11);
  std::vector<double> data(400);
  for (double& v : data) v = rng.Uniform(0, 10);
  Tensor target = Tensor::FromVector(data);
  for (double alpha : {0.2, 0.5, 0.9}) {
    Tensor c = Tensor::FromVector({5.0}, /*requires_grad=*/true);
    Adam adam({c}, 0.05);
    for (int step = 0; step < 800; ++step) {
      adam.ZeroGrad();
      // Broadcast the scalar parameter across the data points.
      Tensor row = Reshape(c, {1, 1});
      Tensor ones = Tensor::Full({1, data.size()}, 1.0);
      Tensor constant = Reshape(MatMul(row, ones), {data.size()});
      Tensor loss = AsymmetricLoss(constant, target, alpha);
      ASSERT_TRUE(loss.Backward().ok());
      adam.Step();
    }
    // With uniform data on [0, 10], the alpha-quantile is 10 * alpha.
    EXPECT_NEAR(c.value()[0], 10.0 * alpha, 0.5) << "alpha " << alpha;
  }
}

TEST(LayerPropertyTest, SoftmaxInvariantToRowShift) {
  Rng rng(13);
  Tensor a = RandomParam({3, 6}, rng, -3, 3);
  Tensor shifted = AddScalar(a, 42.0);
  Tensor sa = SoftmaxRows(a);
  Tensor sb = SoftmaxRows(shifted);
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_NEAR(sa.value()[i], sb.value()[i], 1e-12);
  }
}

TEST(LayerPropertyTest, AttentionIsPermutationSensitiveButShapeStable) {
  Rng rng(17);
  MultiHeadAttention attn(8, 2, rng);
  for (size_t len : {2u, 5u, 9u}) {
    Tensor x = RandomParam({len, 8}, rng);
    Tensor y = attn.Forward(x);
    EXPECT_EQ(y.shape(), (Shape{len, 8}));
  }
}

TEST(LayerPropertyTest, WaveletFiltersFormQuadratureMirrorAtInit) {
  // Up to the epsilon perturbation, the high-pass filter is the alternating
  // mirror of the low-pass filter, so their inner product is near zero.
  Rng rng(19);
  WaveletLevel level(rng);
  auto params = level.Parameters();
  const auto& low = params[0].value();   // lowpass weight
  const auto& high = params[2].value();  // highpass weight
  double dot = 0.0;
  for (size_t i = 0; i < WaveletLevel::kFilterLength; ++i) {
    dot += low[i] * high[i];
  }
  EXPECT_NEAR(dot, 0.0, 0.1);
}

TEST(OptimizerPropertyTest, AdamAndSgdAgreeOnConvexQuadraticLimit) {
  // Both optimizers must reach the same unique minimum of a convex
  // quadratic.
  Rng rng(23);
  std::vector<double> target(6);
  for (double& v : target) v = rng.Uniform(-2, 2);
  auto optimize = [&](bool use_adam) {
    Tensor w = Tensor::Zeros({6}, /*requires_grad=*/true);
    Sgd sgd({w}, 0.1);
    Adam adam({w}, 0.1);
    Optimizer& opt = use_adam ? static_cast<Optimizer&>(adam)
                              : static_cast<Optimizer&>(sgd);
    Tensor t = Tensor::FromVector(target);
    for (int step = 0; step < 600; ++step) {
      opt.ZeroGrad();
      Tensor d = Sub(w, t);
      Tensor loss = MeanAll(Mul(d, d));
      EXPECT_TRUE(loss.Backward().ok());
      opt.Step();
    }
    return w.value();
  };
  auto adam_w = optimize(true);
  auto sgd_w = optimize(false);
  for (size_t i = 0; i < target.size(); ++i) {
    EXPECT_NEAR(adam_w[i], target[i], 1e-2);
    EXPECT_NEAR(sgd_w[i], target[i], 1e-2);
  }
}

// ---- SIMD bit-identity across the autodiff kernels ------------------------
// The nn forward/backward GEMM paths dispatch into simd::Dot / simd::MulAdd;
// their scalar fallback is bit-identical to the vector path by contract
// (simd_kernels.h), so values AND gradients must match exactly between a
// forced-scalar run and the default dispatch. Odd shapes keep row lengths
// off the 8-wide boundary so tails are always exercised.

TEST(SimdBitIdentityTest, MatMulForwardBackwardMatchForcedScalar) {
  auto run = [] {
    Rng rng(61);
    Tensor a = RandomParam({9, 13}, rng);
    Tensor b = RandomParam({13, 7}, rng);
    Tensor loss = SumAll(Mul(MatMul(a, b), MatMul(a, b)));
    EXPECT_TRUE(loss.Backward().ok());
    return std::tuple<std::vector<double>, std::vector<double>,
                      std::vector<double>>(loss.value(), a.grad(), b.grad());
  };
  auto under = [&](simd::IsaLevel level) {
    simd::ScopedForceIsa force(level);
    return run();
  };
  EXPECT_EQ(under(simd::IsaLevel::kScalar), under(simd::IsaLevel::kAvx2));
}

TEST(SimdBitIdentityTest, MatVecAndConv1dMatchForcedScalar) {
  auto run = [] {
    Rng rng(67);
    Tensor w = RandomParam({5, 9}, rng);
    Tensor x = RandomParam({9}, rng);
    Tensor input = RandomParam({3, 11}, rng);   // {c_in, len}
    Tensor weight = RandomParam({2, 15}, rng);  // {c_out, c_in * k}, k = 5
    Tensor mv = MatVec(w, x);
    Tensor conv = Conv1dSame(input, weight, 5);
    Tensor loss = Add(SumAll(Mul(mv, mv)), SumAll(Mul(conv, conv)));
    EXPECT_TRUE(loss.Backward().ok());
    return std::tuple<std::vector<double>, std::vector<double>,
                      std::vector<double>, std::vector<double>,
                      std::vector<double>>(loss.value(), w.grad(), x.grad(),
                                           input.grad(), weight.grad());
  };
  auto under = [&](simd::IsaLevel level) {
    simd::ScopedForceIsa force(level);
    return run();
  };
  EXPECT_EQ(under(simd::IsaLevel::kScalar), under(simd::IsaLevel::kAvx2));
}

}  // namespace
}  // namespace ipool::nn
