#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace ipool {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad pool size");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad pool size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad pool size");
}

TEST(StatusTest, AllCodesStringify) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Doubler(Result<int> in) {
  IPOOL_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  Result<int> err = Doubler(Status::Internal("boom"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(99);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(5);
  for (double lambda : {0.5, 3.0, 20.0, 120.0}) {
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(lambda));
    EXPECT_NEAR(sum / n, lambda, 0.05 * lambda + 0.05) << "lambda=" << lambda;
  }
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ForkedStreamsDecorrelated) {
  Rng parent(42);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(StringsTest, HumanDuration) {
  EXPECT_EQ(HumanDuration(42.5), "42.5s");
  EXPECT_EQ(HumanDuration(125), "2m 05s");
  EXPECT_EQ(HumanDuration(3723), "1h 02m 03s");
}

TEST(StringsTest, HumanClock) {
  EXPECT_EQ(HumanClock(0), "0d 00:00:00");
  EXPECT_EQ(HumanClock(90061), "1d 01:01:01");
}

}  // namespace
}  // namespace ipool
