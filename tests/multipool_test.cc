#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/multi_pool.h"

namespace ipool {
namespace {

SimConfig Deterministic(double latency = 60.0) {
  SimConfig config;
  config.creation_latency_mean_seconds = latency;
  config.creation_latency_cv = 0.0;
  return config;
}

std::vector<PoolClass> ThreeClasses() {
  return {
      {"small", 8.0, Deterministic(60.0)},
      {"medium", 24.0, Deterministic(90.0)},
      {"large", 64.0, Deterministic(120.0)},
  };
}

TEST(MultiPoolTest, CreateValidates) {
  EXPECT_FALSE(MultiPoolSimulator::Create({}).ok());
  auto classes = ThreeClasses();
  classes[1].cores_per_cluster = 0.0;
  EXPECT_FALSE(MultiPoolSimulator::Create(classes).ok());
  classes = ThreeClasses();
  classes[0].sim.creation_latency_mean_seconds = -1.0;
  EXPECT_FALSE(MultiPoolSimulator::Create(classes).ok());
  EXPECT_TRUE(MultiPoolSimulator::Create(ThreeClasses()).ok());
}

TEST(MultiPoolTest, SplitByClassRoutes) {
  std::vector<SizedRequest> requests = {
      {1.0, 0}, {2.0, 2}, {3.0, 0}, {4.0, 1}, {5.0, 9}};  // 9 = out of range
  auto split = SplitByClass(requests, 3);
  ASSERT_EQ(split.size(), 3u);
  EXPECT_EQ(split[0], (std::vector<double>{1.0, 3.0}));
  EXPECT_EQ(split[1], (std::vector<double>{4.0}));
  EXPECT_EQ(split[2], (std::vector<double>{2.0}));
}

TEST(MultiPoolTest, RunValidatesInputs) {
  auto sim = MultiPoolSimulator::Create(ThreeClasses());
  std::vector<std::vector<int64_t>> schedules(2, std::vector<int64_t>(10, 1));
  EXPECT_FALSE(sim->Run({}, schedules, 30.0, 300.0).ok());  // schedule count
  schedules.emplace_back(10, 1);
  EXPECT_FALSE(
      sim->Run({{1.0, 7}}, schedules, 30.0, 300.0).ok());  // bad class
}

TEST(MultiPoolTest, EachClassServedByItsPool) {
  auto sim = MultiPoolSimulator::Create(ThreeClasses());
  std::vector<SizedRequest> requests = {{10.0, 0}, {20.0, 1}, {30.0, 2}};
  std::vector<std::vector<int64_t>> schedules(3, std::vector<int64_t>(10, 2));
  auto result = sim->Run(requests, schedules, 30.0, 300.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_requests, 3);
  EXPECT_EQ(result->pool_hits, 3);
  EXPECT_DOUBLE_EQ(result->hit_rate, 1.0);
  for (const SimResult& pool : result->per_pool) {
    EXPECT_EQ(pool.total_requests, 1);
  }
}

TEST(MultiPoolTest, EmptyClassPoolCausesMissesOnlyThere) {
  auto sim = MultiPoolSimulator::Create(ThreeClasses());
  std::vector<SizedRequest> requests = {{10.0, 0}, {20.0, 1}};
  std::vector<std::vector<int64_t>> schedules = {
      std::vector<int64_t>(10, 2),  // small pool stocked
      std::vector<int64_t>(10, 0),  // medium pool empty
      std::vector<int64_t>(10, 2),
  };
  auto result = sim->Run(requests, schedules, 30.0, 300.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pool_hits, 1);
  EXPECT_EQ(result->per_pool[0].pool_hits, 1);
  EXPECT_EQ(result->per_pool[1].pool_hits, 0);
  EXPECT_EQ(result->per_pool[1].on_demand_created, 1);
}

TEST(MultiPoolTest, IdleCostWeightedByCores) {
  auto sim = MultiPoolSimulator::Create(ThreeClasses());
  // No requests: every pooled cluster idles the whole horizon.
  std::vector<std::vector<int64_t>> schedules = {
      std::vector<int64_t>(10, 1),  // 1 small:  8 cores
      std::vector<int64_t>(10, 0),
      std::vector<int64_t>(10, 1),  // 1 large: 64 cores
  };
  auto result = sim->Run({}, schedules, 30.0, 300.0);
  ASSERT_TRUE(result.ok());
  // 300 s idle each, weighted 8 + 64 cores.
  EXPECT_DOUBLE_EQ(result->idle_core_seconds, 300.0 * 8 + 300.0 * 64);
}

TEST(MultiPoolTest, RightSizedPoolsBeatOneSizeFitsAll) {
  // The §9 motivation: serving every size class from a single pool of the
  // largest shape wastes cores. Compare fleet idle cost at equal hit rate.
  Rng rng(5);
  std::vector<SizedRequest> requests;
  double t = 0.0;
  while (t < 3600.0 * 4) {
    t += rng.Exponential(1.0 / 30.0);  // a request every ~30 s
    // 60% small, 30% medium, 10% large.
    const double u = rng.NextDouble();
    requests.push_back({t, u < 0.6 ? 0u : (u < 0.9 ? 1u : 2u)});
  }
  requests.pop_back();
  const double horizon = 3600.0 * 4 + 600.0;
  const size_t bins = static_cast<size_t>(horizon / 30.0) + 1;

  auto multi = MultiPoolSimulator::Create(ThreeClasses());
  std::vector<std::vector<int64_t>> sized = {
      std::vector<int64_t>(bins, 5),  // sized ~ to class demand
      std::vector<int64_t>(bins, 3),
      std::vector<int64_t>(bins, 2),
  };
  auto multi_result = multi->Run(requests, sized, 30.0, horizon);
  ASSERT_TRUE(multi_result.ok());

  // One-size-fits-all: everything served from large clusters.
  std::vector<PoolClass> single = {{"large-only", 64.0, Deterministic(120.0)}};
  auto mono = MultiPoolSimulator::Create(single);
  std::vector<SizedRequest> coerced = requests;
  for (auto& r : coerced) r.size_class = 0;
  std::vector<std::vector<int64_t>> mono_schedule = {
      std::vector<int64_t>(bins, 10)};  // same total cluster count
  auto mono_result = mono->Run(coerced, mono_schedule, 30.0, horizon);
  ASSERT_TRUE(mono_result.ok());

  // Comparable (or better) hit rate at a much lower core-weighted idle cost.
  EXPECT_GE(multi_result->hit_rate, mono_result->hit_rate - 0.05);
  EXPECT_LT(multi_result->idle_core_seconds,
            0.8 * mono_result->idle_core_seconds);
}

// §2: production runs two pools per region — a cluster pool and a session
// pool whose resources also carry a pre-started Spark session (30-40 s more
// to create). Model both as classes of a multi-pool fleet.
TEST(MultiPoolTest, SessionPoolMissesWaitLongerThanClusterPoolMisses) {
  std::vector<PoolClass> pools = {
      {"cluster-pool", 24.0, Deterministic(90.0)},
      {"session-pool", 24.0, Deterministic(90.0)},
  };
  pools[1].sim.session_startup_seconds = 35.0;  // Spark session startup

  auto sim = MultiPoolSimulator::Create(pools);
  // Both pools empty: every request goes on-demand; session requests pay
  // the extra session startup.
  std::vector<SizedRequest> requests = {{10.0, 0}, {10.0, 1}};
  std::vector<std::vector<int64_t>> schedules(2,
                                              std::vector<int64_t>(20, 0));
  auto result = sim->Run(requests, schedules, 30.0, 600.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->per_pool[0].avg_wait_seconds, 90.0, 1e-9);
  EXPECT_NEAR(result->per_pool[1].avg_wait_seconds, 125.0, 1e-9);
}

TEST(MultiPoolTest, PooledSessionHitIsInstantDespiteStartupCost) {
  // The whole point of session pooling: the startup cost is paid during
  // re-hydration, not by the customer.
  std::vector<PoolClass> pools = {
      {"session-pool", 24.0, Deterministic(90.0)},
  };
  pools[0].sim.session_startup_seconds = 35.0;
  auto sim = MultiPoolSimulator::Create(pools);
  std::vector<SizedRequest> requests = {{10.0, 0}};
  std::vector<std::vector<int64_t>> schedules = {std::vector<int64_t>(20, 2)};
  auto result = sim->Run(requests, schedules, 30.0, 600.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pool_hits, 1);
  EXPECT_DOUBLE_EQ(result->avg_wait_seconds, 0.0);
}

// ---- upgrade routing (integrated fleet on one clock) --------------------------

TEST(MultiPoolUpgradeTest, DrainedClassServedByLargerPool) {
  auto sim = MultiPoolSimulator::Create(ThreeClasses(), /*allow_upgrade=*/true);
  ASSERT_TRUE(sim.ok());
  // Small pool empty, medium stocked: a small request upgrades instantly.
  std::vector<SizedRequest> requests = {{10.0, 0}};
  std::vector<std::vector<int64_t>> schedules = {
      std::vector<int64_t>(10, 0),
      std::vector<int64_t>(10, 2),
      std::vector<int64_t>(10, 0),
  };
  auto result = sim->Run(requests, schedules, 30.0, 300.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pool_hits, 1);
  EXPECT_EQ(result->upgrades, 1);
  EXPECT_DOUBLE_EQ(result->avg_wait_seconds, 0.0);
  // The hit is attributed to the origin (small) class...
  EXPECT_EQ(result->per_pool[0].pool_hits, 1);
  // ...while the consumed cluster shows in the medium pool's books: its
  // re-hydration fires even though it received no request of its own.
  EXPECT_GE(result->per_pool[1].clusters_created, 1);
}

TEST(MultiPoolUpgradeTest, UpgradesGoUpwardOnly) {
  auto sim = MultiPoolSimulator::Create(ThreeClasses(), /*allow_upgrade=*/true);
  // Large pool empty, smaller pools stocked: a large request must NOT be
  // downgraded; it goes on-demand in its own class.
  std::vector<SizedRequest> requests = {{10.0, 2}};
  std::vector<std::vector<int64_t>> schedules = {
      std::vector<int64_t>(10, 3),
      std::vector<int64_t>(10, 3),
      std::vector<int64_t>(10, 0),
  };
  auto result = sim->Run(requests, schedules, 30.0, 600.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pool_hits, 0);
  EXPECT_EQ(result->upgrades, 0);
  EXPECT_EQ(result->per_pool[2].on_demand_created, 1);
}

TEST(MultiPoolUpgradeTest, AllDrainedFallsBackToOnDemandInOriginClass) {
  auto sim = MultiPoolSimulator::Create(ThreeClasses(), /*allow_upgrade=*/true);
  std::vector<SizedRequest> requests = {{10.0, 0}};
  std::vector<std::vector<int64_t>> schedules(3, std::vector<int64_t>(10, 0));
  auto result = sim->Run(requests, schedules, 30.0, 600.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pool_hits, 0);
  EXPECT_EQ(result->per_pool[0].on_demand_created, 1);
  // Own-class on-demand latency (small: 60 s).
  EXPECT_NEAR(result->per_pool[0].avg_wait_seconds, 60.0, 1e-9);
}

TEST(MultiPoolUpgradeTest, UpgradeDisabledLeavesMissesInPlace) {
  auto sim = MultiPoolSimulator::Create(ThreeClasses(), /*allow_upgrade=*/false);
  std::vector<SizedRequest> requests = {{10.0, 0}};
  std::vector<std::vector<int64_t>> schedules = {
      std::vector<int64_t>(10, 0),
      std::vector<int64_t>(10, 2),
      std::vector<int64_t>(10, 0),
  };
  auto result = sim->Run(requests, schedules, 30.0, 600.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pool_hits, 0);
  EXPECT_EQ(result->upgrades, 0);
  EXPECT_EQ(result->per_pool[0].on_demand_created, 1);
}

TEST(MultiPoolUpgradeTest, UpgradeImprovesFleetHitRateUnderSkew) {
  // Demand skews toward small requests beyond its pool's capacity; upgrades
  // soak the overflow into the medium/large pools' spare clusters.
  Rng rng(7);
  std::vector<SizedRequest> requests;
  double t = 0.0;
  while (t < 3600.0) {
    t += rng.Exponential(1.0 / 12.0);
    requests.push_back({t, rng.NextDouble() < 0.85 ? 0u : 1u});
  }
  requests.pop_back();
  const double horizon = 3600.0 + 600.0;
  const size_t bins = static_cast<size_t>(horizon / 30.0) + 1;
  std::vector<std::vector<int64_t>> schedules = {
      std::vector<int64_t>(bins, 2),  // undersized for the small demand
      std::vector<int64_t>(bins, 4),  // oversized for the medium demand
      std::vector<int64_t>(bins, 2),
  };
  auto without = MultiPoolSimulator::Create(ThreeClasses(), false);
  auto with = MultiPoolSimulator::Create(ThreeClasses(), true);
  auto base = without->Run(requests, schedules, 30.0, horizon);
  auto upgraded = with->Run(requests, schedules, 30.0, horizon);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(upgraded.ok());
  EXPECT_GT(upgraded->upgrades, 0);
  EXPECT_GT(upgraded->hit_rate, base->hit_rate);
}

TEST(MultiPoolUpgradeTest, DeterministicOnSharedClock) {
  Rng rng(9);
  std::vector<SizedRequest> requests;
  double t = 0.0;
  while (t < 1800.0) {
    t += rng.Exponential(1.0 / 20.0);
    requests.push_back({t, static_cast<size_t>(rng.UniformInt(0, 2))});
  }
  requests.pop_back();
  const size_t bins = 80;
  std::vector<std::vector<int64_t>> schedules(3,
                                              std::vector<int64_t>(bins, 2));
  MultiPoolResult first;
  for (int run = 0; run < 2; ++run) {
    auto classes = ThreeClasses();
    for (auto& c : classes) c.sim.creation_latency_cv = 0.3;
    auto sim = MultiPoolSimulator::Create(classes, true);
    auto result = sim->Run(requests, schedules, 30.0, 2400.0);
    ASSERT_TRUE(result.ok());
    if (run == 0) {
      first = *result;
    } else {
      EXPECT_EQ(result->pool_hits, first.pool_hits);
      EXPECT_EQ(result->upgrades, first.upgrades);
      EXPECT_DOUBLE_EQ(result->idle_core_seconds, first.idle_core_seconds);
    }
  }
}

}  // namespace
}  // namespace ipool
