// Tests for the ipool::net serving layer: frame codec + CRC integrity,
// router semantics, and live loopback server/client behavior (retry,
// backoff, load shedding, graceful drain, corruption rejection). All
// sockets are loopback with ephemeral ports; every test is deterministic
// and ctest/sanitizer-safe.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "exec/thread_pool.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/router.h"
#include "net/server.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/sharded_document_store.h"
#include "service/sharded_telemetry_store.h"

namespace ipool::net {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---- CRC and frame codec ----------------------------------------------------

TEST(Crc32Test, MatchesKnownVectors) {
  // The standard IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(FrameTest, RoundTripsThroughDecoder) {
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.method = Method::kGetRecommendation;
  frame.request_id = 42;
  frame.payload = "east-medium";
  const std::string wire = EncodeFrame(frame);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + frame.payload.size());

  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()).ok());
  ASSERT_TRUE(decoder.HasFrame());
  Frame out = decoder.Next();
  EXPECT_EQ(out.type, FrameType::kRequest);
  EXPECT_EQ(out.method, Method::kGetRecommendation);
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.payload, "east-medium");
  EXPECT_FALSE(decoder.HasFrame());
}

TEST(FrameTest, DecodesByteByByteAndBackToBack) {
  Frame a;
  a.method = Method::kHealth;
  a.request_id = 1;
  Frame b;
  b.method = Method::kPublishTelemetry;
  b.request_id = 2;
  b.payload = "m,0,1\n";
  const std::string wire = EncodeFrame(a) + EncodeFrame(b);

  FrameDecoder decoder;
  for (char c : wire) ASSERT_TRUE(decoder.Feed(&c, 1).ok());
  ASSERT_TRUE(decoder.HasFrame());
  EXPECT_EQ(decoder.Next().request_id, 1u);
  ASSERT_TRUE(decoder.HasFrame());
  EXPECT_EQ(decoder.Next().payload, "m,0,1\n");
  EXPECT_EQ(decoder.PendingBytes(), 0u);
}

TEST(FrameTest, RejectsCorruptPayloadByCrc) {
  Frame frame;
  frame.payload = "intelligent pooling";
  std::string wire = EncodeFrame(frame);
  wire[kFrameHeaderBytes + 3] ^= 0x20;  // flip one payload bit

  FrameDecoder decoder;
  Status fed = decoder.Feed(wire.data(), wire.size());
  EXPECT_FALSE(fed.ok());
  EXPECT_TRUE(Contains(fed.message(), "CRC"));
  // The decoder is poisoned: even a pristine frame is refused now.
  const std::string good = EncodeFrame(Frame{});
  EXPECT_FALSE(decoder.Feed(good.data(), good.size()).ok());
}

TEST(FrameTest, TraceIdRoundTripsThroughDecoder) {
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.method = Method::kTrace;
  frame.trace_id = 0xDEADBEEFCAFEF00DULL;
  frame.request_id = 7;
  frame.payload = "32";
  const std::string wire = EncodeFrame(frame);

  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()).ok());
  ASSERT_TRUE(decoder.HasFrame());
  Frame out = decoder.Next();
  EXPECT_EQ(out.method, Method::kTrace);
  EXPECT_EQ(out.trace_id, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(out.request_id, 7u);
}

TEST(FrameTest, CorruptTraceIdPoisonsDecoderByCrc) {
  // The CRC covers the trace-id field: a flipped bit anywhere in the id must
  // poison the stream, never deliver a frame attributed to the wrong trace.
  Frame frame;
  frame.trace_id = 0x0123456789ABCDEFULL;
  frame.payload = "payload";
  for (size_t byte = 8; byte < 16; ++byte) {  // the 8 trace-id header bytes
    std::string wire = EncodeFrame(frame);
    wire[byte] ^= 0x01;
    FrameDecoder decoder;
    Status fed = decoder.Feed(wire.data(), wire.size());
    EXPECT_FALSE(fed.ok()) << "trace-id byte " << byte << " not covered";
    EXPECT_TRUE(Contains(fed.message(), "CRC"));
    // Poisoned: a pristine follow-up frame is refused too.
    const std::string good = EncodeFrame(Frame{});
    EXPECT_FALSE(decoder.Feed(good.data(), good.size()).ok());
  }
}

TEST(FrameTest, RejectsBadMagicAndReservedByte) {
  std::string wire = EncodeFrame(Frame{});
  wire[0] = 'X';
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(wire.data(), wire.size()).ok());

  std::string reserved = EncodeFrame(Frame{});
  reserved[7] = 1;
  FrameDecoder decoder2;
  EXPECT_FALSE(decoder2.Feed(reserved.data(), reserved.size()).ok());
}

TEST(FrameTest, RejectsOversizedLengthWithoutBuffering) {
  Frame frame;
  frame.payload = std::string(128, 'x');
  const std::string wire = EncodeFrame(frame);
  FrameDecoder decoder(/*max_payload_bytes=*/64);
  Status fed = decoder.Feed(wire.data(), wire.size());
  EXPECT_FALSE(fed.ok());
  EXPECT_TRUE(Contains(fed.message(), "exceeds cap"));
}

TEST(FrameTest, StatusMappingsRoundTrip) {
  EXPECT_EQ(StatusToWireStatus(Status::NotFound("x")), WireStatus::kNotFound);
  EXPECT_EQ(WireStatusToStatus(WireStatus::kNotFound, "x").code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(WireStatusToStatus(WireStatus::kOk, "").ok());
  // RETRY_AFTER surfaces as Unavailable to callers that run out of retries.
  EXPECT_EQ(WireStatusToStatus(WireStatus::kRetryAfter, "x").code(),
            StatusCode::kUnavailable);
}

// ---- router -----------------------------------------------------------------

Frame MakeRequest(Method method, std::string payload) {
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.method = method;
  frame.request_id = 7;
  frame.payload = std::move(payload);
  return frame;
}

TEST(RouterTest, ServesDocumentsAndHealth) {
  ShardedDocumentStore documents;
  documents.Put("east-medium", "v1\npool=1,2,3\n", 0.0);
  obs::MetricsRegistry registry;
  Router router(RouterConfig{&documents, nullptr, &registry});

  Frame ok = router.Handle(MakeRequest(Method::kGetRecommendation,
                                       "east-medium"));
  EXPECT_EQ(ok.type, FrameType::kResponse);
  EXPECT_EQ(ok.status, WireStatus::kOk);
  EXPECT_EQ(ok.request_id, 7u);
  EXPECT_EQ(ok.payload, "v1\npool=1,2,3\n");

  EXPECT_EQ(router.Handle(MakeRequest(Method::kGetRecommendation, "nope"))
                .status,
            WireStatus::kNotFound);
  EXPECT_EQ(router.Handle(MakeRequest(Method::kGetRecommendation, ""))
                .status,
            WireStatus::kInvalidArgument);
  EXPECT_EQ(router.Handle(MakeRequest(Method::kHealth, "")).payload, "ok");
}

TEST(RouterTest, HealthRejectsPayload) {
  // A Health probe carries no arguments: a payload means the client sent
  // the wrong method byte (or a corrupted frame slipped through), and
  // serving it anyway would mask that bug.
  Router router(RouterConfig{});
  Frame bad = router.Handle(MakeRequest(Method::kHealth, "x"));
  EXPECT_EQ(bad.status, WireStatus::kInvalidArgument);
  EXPECT_TRUE(Contains(bad.payload, "no payload"));
  EXPECT_EQ(router.Handle(MakeRequest(Method::kHealth, "")).status,
            WireStatus::kOk);
}

TEST(RouterTest, PublishesTelemetryAtomically) {
  ShardedTelemetryStore telemetry;
  Router router(RouterConfig{nullptr, &telemetry, nullptr});

  Frame ok = router.Handle(
      MakeRequest(Method::kPublishTelemetry, "m,1.0,2.0\nm,2.0,3.0\n"));
  EXPECT_EQ(ok.status, WireStatus::kOk) << ok.payload;
  EXPECT_EQ(telemetry.PointCount("m"), 2u);

  // A batch with a malformed tail must not be half-applied.
  Frame bad = router.Handle(
      MakeRequest(Method::kPublishTelemetry, "m,3.0,1.0\nm,notanumber,1\n"));
  EXPECT_EQ(bad.status, WireStatus::kInvalidArgument);
  EXPECT_EQ(telemetry.PointCount("m"), 2u);

  EXPECT_EQ(router.Handle(MakeRequest(Method::kPublishTelemetry, "")).status,
            WireStatus::kInvalidArgument);
  EXPECT_EQ(router.Handle(MakeRequest(Method::kPublishTelemetry,
                                      "a,b,c,d\n"))
                .status,
            WireStatus::kInvalidArgument);
}

TEST(RouterTest, ScrapesPrometheusText) {
  obs::MetricsRegistry registry;
  registry.GetCounter("ipool_pipeline_runs_total")->Add(3);
  Router router(RouterConfig{nullptr, nullptr, &registry});
  Frame scrape = router.Handle(MakeRequest(Method::kMetrics, ""));
  EXPECT_EQ(scrape.status, WireStatus::kOk);
  EXPECT_TRUE(Contains(scrape.payload, "ipool_pipeline_runs_total 3"));
}

TEST(RouterTest, UnwiredBackendsAnswerUnavailable) {
  Router router(RouterConfig{});
  EXPECT_EQ(router.Handle(MakeRequest(Method::kGetRecommendation, "k"))
                .status,
            WireStatus::kUnavailable);
  EXPECT_EQ(router.Handle(MakeRequest(Method::kMetrics, "")).status,
            WireStatus::kUnavailable);
  EXPECT_EQ(router.Handle(MakeRequest(Method::kHealth, "")).status,
            WireStatus::kOk);
}

TEST(TelemetryLineTest, ParsesStrictly) {
  double time = 0.0, value = 0.0;
  auto metric = ParseTelemetryLine("cpu,1.5,0.25", &time, &value);
  ASSERT_TRUE(metric.ok());
  EXPECT_EQ(*metric, "cpu");
  EXPECT_DOUBLE_EQ(time, 1.5);
  EXPECT_DOUBLE_EQ(value, 0.25);
  EXPECT_FALSE(ParseTelemetryLine("cpu,1.5", &time, &value).ok());
  EXPECT_FALSE(ParseTelemetryLine(",1,2", &time, &value).ok());
  EXPECT_FALSE(ParseTelemetryLine("cpu,1x,2", &time, &value).ok());
  EXPECT_FALSE(ParseTelemetryLine("cpu,1,2,3", &time, &value).ok());
}

// ---- live server/client -----------------------------------------------------

struct TestService {
  ShardedDocumentStore documents;
  ShardedTelemetryStore telemetry;
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  std::unique_ptr<Router> router;
  std::unique_ptr<exec::ThreadPool> pool;
  std::unique_ptr<Server> server;

  explicit TestService(size_t threads = 2, ServerConfig config = {}) {
    documents.Put("east-medium", "v1\npool=4,5,6\n", 0.0);
    router = std::make_unique<Router>(
        RouterConfig{&documents, &telemetry, &registry, &tracer});
    if (threads > 0) pool = std::make_unique<exec::ThreadPool>(threads);
    config.pool = pool.get();
    config.metrics = &registry;
    config.tracer = &tracer;
    auto started = Server::Start(config, [this](const Frame& request) {
      return router->Handle(request);
    });
    EXPECT_TRUE(started.ok()) << started.status().ToString();
    server = std::move(started).value();
  }

  ClientConfig ClientCfg() const {
    ClientConfig config;
    config.port = server->port();
    return config;
  }
};

TEST(ServerTest, EndToEndRoundTrips) {
  TestService service;
  Client client(service.ClientCfg());

  auto doc = client.GetRecommendation("east-medium");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(*doc, "v1\npool=4,5,6\n");

  auto missing = client.GetRecommendation("west-large");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  EXPECT_TRUE(client.PublishTelemetry("requests", 10.0, 3.0).ok());
  EXPECT_TRUE(client.PublishTelemetry("requests", 20.0, 4.0).ok());
  // Out-of-order appends surface the store's error over the wire.
  EXPECT_FALSE(client.PublishTelemetry("requests", 5.0, 1.0).ok());

  auto health = client.Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(*health, "ok");

  auto scrape = client.ScrapeMetrics();
  ASSERT_TRUE(scrape.ok());
  EXPECT_TRUE(Contains(*scrape, "ipool_net_requests_total{"
                                "method=\"GetRecommendation\","
                                "status=\"OK\"} 1"));
  EXPECT_TRUE(Contains(*scrape, "ipool_net_connections"));
  EXPECT_TRUE(Contains(
      *scrape, "ipool_net_request_seconds_count{method=\"Health\"} 1"));

  service.server->Shutdown(1.0);
  EXPECT_EQ(service.server->protocol_errors(), 0u);
  EXPECT_EQ(service.server->requests_shed(), 0u);
}

TEST(ServerTest, ManyConcurrentClients) {
  TestService service(/*threads=*/4);
  constexpr int kClients = 8;
  constexpr int kPerClient = 50;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&service, &ok] {
      Client client(service.ClientCfg());
      for (int i = 0; i < kPerClient; ++i) {
        auto doc = client.GetRecommendation("east-medium");
        if (doc.ok() && *doc == "v1\npool=4,5,6\n") {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * kPerClient);
  service.server->Shutdown(1.0);
  EXPECT_EQ(service.server->requests_handled(),
            static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(service.server->protocol_errors(), 0u);
}

TEST(ServerTest, InlineHandlersWorkWithoutPool) {
  TestService service(/*threads=*/0);
  Client client(service.ClientCfg());
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
}

// Tentpole acceptance: one client Call produces a coherent cross-process
// trace — the client's spans and the server's spans share the trace id the
// client stamped into the frame, and nothing is dropped on either side.
TEST(ServerTest, TraceIdPropagatesEndToEndThroughLoopback) {
  TestService service;
  obs::Tracer client_tracer;
  ClientConfig config = service.ClientCfg();
  config.tracer = &client_tracer;
  Client client(config);

  auto doc = client.GetRecommendation("east-medium");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const uint64_t trace_id = client.stats().last_trace_id;
  ASSERT_NE(trace_id, 0u);

  // Client half: call + attempt spans rooted at the stamped trace id.
  const auto client_spans = client_tracer.FinishedSpans();
  EXPECT_EQ(client_tracer.dropped(), 0u);
  bool saw_call = false;
  for (const auto& span : client_spans) {
    EXPECT_EQ(span.trace_id, trace_id);
    if (span.name == std::string("client.call")) saw_call = true;
  }
  EXPECT_TRUE(saw_call);

  // Server half: the request's handler + router spans carry the same id.
  // Poll briefly — FinishRequest runs on the event loop after the response.
  bool saw_net = false;
  bool saw_router = false;
  for (int attempt = 0; attempt < 100 && !(saw_net && saw_router);
       ++attempt) {
    saw_net = saw_router = false;
    for (const auto& span : service.tracer.FinishedSpans()) {
      if (span.trace_id != trace_id) continue;
      if (span.name == std::string("net.GetRecommendation")) saw_net = true;
      if (span.name == std::string("router.GetRecommendation")) {
        saw_router = true;
      }
    }
    if (!(saw_net && saw_router)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(saw_net) << "server request span missing for trace";
  EXPECT_TRUE(saw_router) << "router child span missing for trace";
  EXPECT_EQ(service.tracer.dropped(), 0u);

  // The Trace method serves those spans over the wire, JSONL-encoded.
  auto fetched = client.FetchTrace();
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_TRUE(Contains(*fetched, StrFormat("\"trace\":%llu,",
                                           static_cast<unsigned long long>(
                                               trace_id))));

  // Metrics half: the dispatch-queue histogram saw the request and the
  // request-latency histogram carries a trace-id exemplar linking a bucket
  // back to a trace.
  auto scrape = client.ScrapeMetrics();
  ASSERT_TRUE(scrape.ok());
  EXPECT_TRUE(
      Contains(*scrape, "ipool_net_dispatch_queue_seconds_count{"
                        "method=\"GetRecommendation\"} 1"));
  EXPECT_TRUE(Contains(*scrape, "# {trace_id=\""));
  // The satellite-1 gauge: zero dropped spans over the whole exchange.
  EXPECT_TRUE(Contains(*scrape, "ipool_obs_dropped_spans 0\n"));

  service.server->Shutdown(1.0);
}

TEST(ServerTest, TraceMethodHonorsSpanLimit) {
  TestService service;
  Client client(service.ClientCfg());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client.Health().ok());
  }
  auto limited = client.FetchTrace(/*limit=*/2);
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  // 2 spans per line-pair: each Health request leaves net.Health +
  // router.Health; a limit of 2 returns exactly 2 JSONL lines.
  EXPECT_EQ(std::count(limited->begin(), limited->end(), '\n'), 2);
  service.server->Shutdown(1.0);
}

// A handler that fails the first N requests with UNAVAILABLE, then
// delegates — the "server that fails first N requests" retry fixture.
TEST(ClientRetryTest, RetriesUntilServerRecovers) {
  std::atomic<int> failures_left{3};
  obs::MetricsRegistry registry;
  ServerConfig config;
  config.metrics = &registry;
  auto server = Server::Start(config, [&](const Frame& request) {
    Frame response;
    response.method = request.method;
    if (failures_left.fetch_sub(1, std::memory_order_acq_rel) > 0) {
      response.status = WireStatus::kUnavailable;
      response.payload = "warming up";
    } else {
      response.status = WireStatus::kOk;
      response.payload = "ok";
    }
    return response;
  });
  ASSERT_TRUE(server.ok());

  ClientConfig client_config;
  client_config.port = (*server)->port();
  client_config.max_attempts = 5;
  client_config.backoff_initial_seconds = 0.001;
  Client client(client_config);
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(client.stats().retries, 3u);
  EXPECT_EQ(client.stats().attempts, 4u);

  // With the budget exhausted before recovery, the last error surfaces.
  failures_left.store(10);
  ClientConfig small = client_config;
  small.max_attempts = 2;
  Client impatient(small);
  auto failed = impatient.Health();
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(impatient.stats().attempts, 2u);
}

TEST(ClientRetryTest, BackoffGrowsAndIsJittered) {
  // Connect against a port nothing listens on: every attempt fails fast
  // (loopback RST), so Call's elapsed time is dominated by backoff sleeps.
  int probe = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const uint16_t dead_port = ntohs(addr.sin_port);
  close(probe);  // released: connections now get ECONNREFUSED

  ClientConfig config;
  config.port = dead_port;
  config.max_attempts = 4;
  config.backoff_initial_seconds = 0.02;
  config.backoff_multiplier = 2.0;
  config.backoff_max_seconds = 1.0;
  Client client(config);
  const auto start = std::chrono::steady_clock::now();
  auto result = client.Health();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(client.stats().attempts, 4u);
  EXPECT_EQ(client.stats().retries, 3u);
  // Backoffs 20ms + 40ms + 80ms jittered by U[0.5, 1.5): at least 70ms.
  EXPECT_GE(elapsed, 0.07);
}

// Raw socket helper for protocol-level tests the Client (correctly)
// refuses to express.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ =
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = write(fd_, bytes.data() + sent, bytes.size() - sent);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  /// Reads until `count` frames decoded or EOF; returns frames received.
  std::vector<Frame> ReadFrames(size_t count) {
    std::vector<Frame> frames;
    char buf[4096];
    while (frames.size() < count) {
      const ssize_t n = read(fd_, buf, sizeof(buf));
      if (n <= 0) break;
      if (!decoder_.Feed(buf, static_cast<size_t>(n)).ok()) break;
      while (decoder_.HasFrame()) frames.push_back(decoder_.Next());
    }
    return frames;
  }

  /// True when the server closed the connection (read EOF).
  bool ReadEof() {
    char buf[256];
    while (true) {
      const ssize_t n = read(fd_, buf, sizeof(buf));
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  FrameDecoder decoder_;
};

TEST(ServerTest, ShedsWhenPerConnectionQueueIsFull) {
  // Handlers block until released; inflight budget is 1, so of 4 pipelined
  // requests on one connection the first occupies the slot and the other
  // three are shed (admission happens in frame order on the event loop).
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  obs::MetricsRegistry registry;
  exec::ThreadPool pool(2);
  ServerConfig config;
  config.pool = &pool;
  config.max_inflight_per_conn = 1;
  config.metrics = &registry;
  auto server = Server::Start(config, [released](const Frame&) {
    released.wait();
    Frame response;
    response.status = WireStatus::kOk;
    response.payload = "done";
    return response;
  });
  ASSERT_TRUE(server.ok());

  RawConn conn((*server)->port());
  ASSERT_TRUE(conn.connected());
  std::string burst;
  for (uint32_t id = 1; id <= 4; ++id) {
    Frame request;
    request.type = FrameType::kRequest;
    request.method = Method::kHealth;
    request.request_id = id;
    burst += EncodeFrame(request);
  }
  conn.Send(burst);

  // Shed responses arrive while the admitted request is still blocked.
  std::vector<Frame> sheds = conn.ReadFrames(3);
  ASSERT_EQ(sheds.size(), 3u);
  for (const Frame& frame : sheds) {
    EXPECT_EQ(frame.status, WireStatus::kRetryAfter);
    EXPECT_NE(frame.request_id, 1u);  // the admitted request is still running
  }
  release.set_value();
  std::vector<Frame> rest = conn.ReadFrames(1);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].status, WireStatus::kOk);
  EXPECT_EQ(rest[0].request_id, 1u);
  EXPECT_EQ((*server)->requests_shed(), 3u);
  EXPECT_EQ(registry.GetCounter("ipool_net_shed_total")->value(), 3u);
  (*server)->Shutdown(1.0);
}

TEST(ServerTest, GracefulDrainCompletesInFlightRequests) {
  // A slow handler is caught mid-request by Shutdown; the drain must still
  // deliver its response.
  obs::MetricsRegistry registry;
  exec::ThreadPool pool(2);
  ServerConfig config;
  config.pool = &pool;
  config.metrics = &registry;
  std::atomic<bool> entered{false};
  auto server = Server::Start(config, [&entered](const Frame&) {
    entered.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    Frame response;
    response.status = WireStatus::kOk;
    response.payload = "finished";
    return response;
  });
  ASSERT_TRUE(server.ok());

  ClientConfig client_config;
  client_config.port = (*server)->port();
  client_config.request_timeout_seconds = 3.0;
  std::promise<Result<std::string>> result_promise;
  std::thread caller([&] {
    Client client(client_config);
    result_promise.set_value(client.Health());
  });
  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (*server)->Shutdown(/*drain_timeout_seconds=*/5.0);

  auto result = result_promise.get_future().get();
  caller.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, "finished");
  EXPECT_EQ((*server)->requests_handled(), 1u);
}

TEST(ServerTest, CorruptFrameClosesConnectionAndCounts) {
  TestService service;
  Frame request;
  request.type = FrameType::kRequest;
  request.method = Method::kHealth;
  request.request_id = 9;
  std::string wire = EncodeFrame(request);
  wire[kFrameHeaderBytes - 1] ^= 0xff;  // corrupt the CRC field

  RawConn conn(service.server->port());
  ASSERT_TRUE(conn.connected());
  conn.Send(wire);
  EXPECT_TRUE(conn.ReadEof());  // no response; connection dropped
  // The loop observed the error before closing.
  for (int i = 0; i < 100 && service.server->protocol_errors() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(service.server->protocol_errors(), 1u);
  EXPECT_EQ(
      service.registry.GetCounter("ipool_net_protocol_errors_total")->value(),
      1u);
  // A fresh, well-formed connection still works: the fault was contained.
  Client client(service.ClientCfg());
  EXPECT_TRUE(client.Health().ok());
}

TEST(ServerTest, GarbageBytesAreRejected) {
  TestService service;
  RawConn conn(service.server->port());
  ASSERT_TRUE(conn.connected());
  conn.Send("GET / HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_TRUE(conn.ReadEof());
  for (int i = 0; i < 100 && service.server->protocol_errors() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(service.server->protocol_errors(), 1u);
}

TEST(ClientTest, RejectsCorruptedResponseCrc) {
  // A "server" that answers with a bit-flipped response frame.
  int listener = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(listen(listener, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);

  std::thread evil([listener] {
    for (int i = 0; i < 2; ++i) {
      const int fd = accept(listener, nullptr, nullptr);
      if (fd < 0) return;
      char buf[4096];
      FrameDecoder decoder;
      Frame request;
      bool got = false;
      while (!got) {
        const ssize_t n = read(fd, buf, sizeof(buf));
        if (n <= 0) break;
        if (!decoder.Feed(buf, static_cast<size_t>(n)).ok()) break;
        if (decoder.HasFrame()) {
          request = decoder.Next();
          got = true;
        }
      }
      if (got) {
        Frame response;
        response.type = FrameType::kResponse;
        response.method = request.method;
        response.request_id = request.request_id;
        response.payload = "tampered";
        std::string wire = EncodeFrame(response);
        wire[kFrameHeaderBytes + 1] ^= 0x01;  // payload no longer matches CRC
        size_t sent = 0;
        while (sent < wire.size()) {
          const ssize_t n = write(fd, wire.data() + sent, wire.size() - sent);
          if (n <= 0) break;
          sent += static_cast<size_t>(n);
        }
      }
      close(fd);
    }
  });

  ClientConfig config;
  config.port = ntohs(addr.sin_port);
  config.max_attempts = 2;
  config.backoff_initial_seconds = 0.001;
  Client client(config);
  auto result = client.Health();
  EXPECT_FALSE(result.ok());
  EXPECT_GE(client.stats().protocol_errors, 1u);
  close(listener);
  evil.join();
}

TEST(ClientTest, NonIdempotentPublishStillRetriesShedResponses) {
  // RETRY_AFTER means "not executed", so even the write path retries it.
  std::atomic<int> sheds_left{2};
  auto server = Server::Start(ServerConfig{}, [&](const Frame& request) {
    Frame response;
    response.method = request.method;
    if (sheds_left.fetch_sub(1, std::memory_order_acq_rel) > 0) {
      response.status = WireStatus::kRetryAfter;
      response.payload = "busy";
    } else {
      response.status = WireStatus::kOk;
    }
    return response;
  });
  ASSERT_TRUE(server.ok());
  ClientConfig config;
  config.port = (*server)->port();
  config.max_attempts = 4;
  config.backoff_initial_seconds = 0.001;
  Client client(config);
  EXPECT_TRUE(client.PublishTelemetry("m", 1.0, 1.0).ok());
  EXPECT_EQ(client.stats().shed_responses, 2u);
  EXPECT_EQ(client.stats().retries, 2u);
}

}  // namespace
}  // namespace ipool::net
