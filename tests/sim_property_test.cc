// Randomized property tests for the pool simulators: accounting identities
// and monotonicity laws that must hold on any workload, pool schedule and
// failure configuration.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sim/multi_pool.h"
#include "sim/pool_simulator.h"
#include "solver/pool_model.h"
#include "workload/demand_generator.h"

namespace ipool {
namespace {

struct RandomScenario {
  std::vector<double> requests;
  std::vector<int64_t> schedule;
  double interval = 30.0;
  double horizon = 0.0;
};

RandomScenario MakeScenario(uint64_t seed, bool jittery_schedule = true) {
  Rng rng(seed);
  RandomScenario scenario;
  const size_t bins = 60 + static_cast<size_t>(rng.UniformInt(0, 120));
  scenario.horizon = static_cast<double>(bins) * scenario.interval;
  const double rate = rng.Uniform(0.01, 0.2);  // requests per second
  double t = rng.Exponential(rate);
  while (t < scenario.horizon) {
    scenario.requests.push_back(t);
    t += rng.Exponential(rate);
  }
  scenario.schedule.resize(bins);
  int64_t level = rng.UniformInt(0, 8);
  for (size_t i = 0; i < bins; ++i) {
    if (jittery_schedule && i % 10 == 0) {
      level = std::max<int64_t>(0, level + rng.UniformInt(-3, 3));
    }
    scenario.schedule[i] = level;
  }
  return scenario;
}

SimConfig RandomSimConfig(Rng& rng) {
  SimConfig config;
  config.creation_latency_mean_seconds = rng.Uniform(30.0, 150.0);
  config.creation_latency_cv = rng.Uniform(0.0, 0.4);
  config.seed = rng.NextUint64();
  if (rng.Bernoulli(0.3)) {
    config.max_cluster_lifetime_seconds = rng.Uniform(600.0, 3600.0);
  }
  if (rng.Bernoulli(0.3)) {
    config.failure_rate_per_hour = rng.Uniform(0.0, 2.0);
  }
  return config;
}

class SimInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(SimInvariantTest, AccountingIdentitiesHold) {
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  RandomScenario scenario = MakeScenario(rng.NextUint64());
  SimConfig config = RandomSimConfig(rng);
  auto simulator = PoolSimulator::Create(config);
  ASSERT_TRUE(simulator.ok());
  auto result = simulator->Run(scenario.requests, scenario.schedule,
                               scenario.interval, scenario.horizon);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every request is either a hit or created an on-demand cluster.
  EXPECT_EQ(result->total_requests,
            static_cast<int64_t>(scenario.requests.size()));
  EXPECT_EQ(result->total_requests,
            result->pool_hits + result->on_demand_created);
  EXPECT_GE(result->pool_hits, 0);
  EXPECT_LE(result->hit_rate, 1.0);
  EXPECT_GE(result->hit_rate, 0.0);

  // Waits and idle time are non-negative and consistent with averages.
  EXPECT_GE(result->total_wait_seconds, 0.0);
  EXPECT_GE(result->idle_cluster_seconds, 0.0);
  if (result->total_requests > 0) {
    EXPECT_NEAR(result->avg_wait_seconds,
                result->total_wait_seconds /
                    static_cast<double>(result->total_requests),
                1e-9);
    EXPECT_LE(result->p99_wait_seconds, result->max_wait_seconds + 1e-9);
  }

  // Idle time cannot exceed what the peak pool could have idled.
  int64_t peak = 0;
  for (int64_t n : scenario.schedule) peak = std::max(peak, n);
  EXPECT_LE(result->idle_cluster_seconds,
            static_cast<double>(peak) * scenario.horizon + 1e-6);
}

TEST_P(SimInvariantTest, BiggerConstantPoolNeverHurtsHitRate) {
  Rng rng(2000 + static_cast<uint64_t>(GetParam()));
  RandomScenario scenario = MakeScenario(rng.NextUint64());
  SimConfig config;
  config.creation_latency_mean_seconds = rng.Uniform(30.0, 150.0);
  config.creation_latency_cv = 0.0;  // deterministic for clean dominance
  config.seed = 5;
  auto simulator = PoolSimulator::Create(config);

  double previous_hit = -1.0;
  double previous_idle = -1.0;
  for (int64_t n : {0, 2, 5, 10, 20}) {
    std::vector<int64_t> schedule(scenario.schedule.size(), n);
    auto result = simulator->Run(scenario.requests, schedule,
                                 scenario.interval, scenario.horizon);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->hit_rate, previous_hit - 1e-12) << "pool " << n;
    EXPECT_GE(result->idle_cluster_seconds, previous_idle - 1e-9);
    previous_hit = result->hit_rate;
    previous_idle = result->idle_cluster_seconds;
  }
}

TEST_P(SimInvariantTest, MultiPoolAggregatesMatchPerPoolSums) {
  Rng rng(3000 + static_cast<uint64_t>(GetParam()));
  std::vector<PoolClass> classes;
  for (int c = 0; c < 3; ++c) {
    PoolClass pc;
    pc.name = "class-" + std::to_string(c);
    pc.cores_per_cluster = rng.Uniform(4.0, 64.0);
    pc.sim.creation_latency_mean_seconds = rng.Uniform(30.0, 120.0);
    pc.sim.seed = rng.NextUint64();
    classes.push_back(pc);
  }
  auto simulator = MultiPoolSimulator::Create(classes);
  ASSERT_TRUE(simulator.ok());

  RandomScenario base = MakeScenario(rng.NextUint64());
  std::vector<SizedRequest> requests;
  for (double t : base.requests) {
    requests.push_back({t, static_cast<size_t>(rng.UniformInt(0, 2))});
  }
  std::vector<std::vector<int64_t>> schedules(
      3, std::vector<int64_t>(base.schedule.size(), 3));
  auto result =
      simulator->Run(requests, schedules, base.interval, base.horizon);
  ASSERT_TRUE(result.ok());

  int64_t total = 0, hits = 0;
  double idle_cores = 0.0;
  for (size_t c = 0; c < 3; ++c) {
    total += result->per_pool[c].total_requests;
    hits += result->per_pool[c].pool_hits;
    idle_cores += result->per_pool[c].idle_cluster_seconds *
                  classes[c].cores_per_cluster;
  }
  EXPECT_EQ(result->total_requests, total);
  EXPECT_EQ(result->total_requests, static_cast<int64_t>(requests.size()));
  EXPECT_EQ(result->pool_hits, hits);
  EXPECT_NEAR(result->idle_core_seconds, idle_cores, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, SimInvariantTest,
                         ::testing::Range(0, 12));

// The analytical evaluator and the event simulator must stay close across
// random workloads when the model's assumptions hold (deterministic latency
// aligned to bins, stable schedules).
class ModelVsSimTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelVsSimTest, AnalyticalModelTracksSimulator) {
  const uint64_t seed = 4000 + static_cast<uint64_t>(GetParam());
  WorkloadConfig wconfig;
  wconfig.duration_days = 0.15;
  wconfig.base_rate_per_minute = 2.0 + static_cast<double>(GetParam());
  wconfig.diurnal_amplitude = 0.3;
  wconfig.seed = seed;
  auto generator = DemandGenerator::Create(wconfig);
  TimeSeries demand = generator->GenerateBinned();
  auto events = generator->GenerateEvents();

  PoolModelConfig pool;
  pool.tau_bins = 2;
  pool.stableness_bins = 10;
  Rng rng(seed);
  std::vector<int64_t> schedule(demand.size());
  int64_t level = 2 + rng.UniformInt(0, 8);
  for (size_t i = 0; i < schedule.size(); ++i) {
    if (i % 40 == 0) level = std::max<int64_t>(0, level + rng.UniformInt(-2, 2));
    schedule[i] = level;
  }

  auto model = EvaluateSchedule(demand, schedule, pool);
  ASSERT_TRUE(model.ok());

  SimConfig sconfig;
  sconfig.creation_latency_mean_seconds = 60.0;  // = tau_bins * interval
  sconfig.creation_latency_cv = 0.0;
  auto simulator = PoolSimulator::Create(sconfig);
  const double horizon = wconfig.duration_days * 86400.0;
  auto sim = simulator->Run(events, schedule, 30.0, horizon);
  ASSERT_TRUE(sim.ok());

  EXPECT_EQ(sim->total_requests, model->total_requests);
  // Tolerance: 15% relative plus one bin of rounding per served request (the
  // analytical model quantizes every idle interval to 30 s bins).
  const double rounding =
      0.5 * 30.0 * static_cast<double>(model->total_requests);
  EXPECT_NEAR(sim->idle_cluster_seconds, model->idle_cluster_seconds,
              0.15 * model->idle_cluster_seconds + 600.0 + rounding);
  EXPECT_NEAR(sim->hit_rate, model->hit_rate, 0.08);
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, ModelVsSimTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace ipool
