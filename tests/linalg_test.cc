#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/simd_kernels.h"
#include "linalg/subspace.h"

namespace ipool {
namespace {

TEST(MatrixTest, FromRowMajorValidatesSize) {
  EXPECT_FALSE(Matrix::FromRowMajor(2, 2, {1, 2, 3}).ok());
  auto m = Matrix::FromRowMajor(2, 2, {1, 2, 3, 4});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ((*m)(0, 1), 2.0);
  EXPECT_DOUBLE_EQ((*m)(1, 0), 3.0);
}

TEST(MatrixTest, IdentityAndTranspose) {
  Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);

  auto m = *Matrix::FromRowMajor(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, MatMul) {
  auto a = *Matrix::FromRowMajor(2, 3, {1, 2, 3, 4, 5, 6});
  auto b = *Matrix::FromRowMajor(3, 2, {7, 8, 9, 10, 11, 12});
  auto c = MatMul(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ((*c)(0, 0), 58.0);
  EXPECT_DOUBLE_EQ((*c)(0, 1), 64.0);
  EXPECT_DOUBLE_EQ((*c)(1, 0), 139.0);
  EXPECT_DOUBLE_EQ((*c)(1, 1), 154.0);
}

TEST(MatrixTest, MatMulRejectsMismatch) {
  EXPECT_FALSE(MatMul(Matrix(2, 3), Matrix(2, 3)).ok());
}

TEST(MatrixTest, MatVec) {
  auto a = *Matrix::FromRowMajor(2, 2, {1, 2, 3, 4});
  auto y = MatVec(a, {5, 6});
  ASSERT_TRUE(y.ok());
  EXPECT_DOUBLE_EQ((*y)[0], 17.0);
  EXPECT_DOUBLE_EQ((*y)[1], 39.0);
  EXPECT_FALSE(MatVec(a, {1, 2, 3}).ok());
}

TEST(MatrixTest, DotAndNorm) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Norm({3, 4}), 5.0);
}

TEST(HankelTest, Layout) {
  auto h = HankelMatrix({1, 2, 3, 4, 5}, 3);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->rows(), 3u);
  EXPECT_EQ(h->cols(), 3u);
  EXPECT_DOUBLE_EQ((*h)(0, 0), 1.0);
  EXPECT_DOUBLE_EQ((*h)(2, 2), 5.0);
  EXPECT_DOUBLE_EQ((*h)(1, 1), 3.0);
}

TEST(HankelTest, RejectsBadWindow) {
  EXPECT_FALSE(HankelMatrix({1, 2}, 0).ok());
  EXPECT_FALSE(HankelMatrix({1, 2}, 3).ok());
}

TEST(HankelGramTest, MatchesExplicitProduct) {
  Rng rng(17);
  std::vector<double> series(23);
  for (double& v : series) v = rng.Uniform(-2, 2);
  const size_t window = 7;
  auto gram = HankelGram(series, window);
  ASSERT_TRUE(gram.ok());
  auto h = *HankelMatrix(series, window);
  auto reference = *MatMul(h, h.Transpose());
  for (size_t i = 0; i < window; ++i) {
    for (size_t j = 0; j < window; ++j) {
      EXPECT_NEAR((*gram)(i, j), reference(i, j), 1e-10) << i << "," << j;
      EXPECT_DOUBLE_EQ((*gram)(i, j), (*gram)(j, i));
    }
  }
}

TEST(HankelGramTest, RejectsBadWindow) {
  EXPECT_FALSE(HankelGram({1, 2}, 0).ok());
  EXPECT_FALSE(HankelGram({1, 2}, 3).ok());
}

TEST(HankelGramTest, SlideMatchesRebuild) {
  Rng rng(91);
  std::vector<double> combined(40);
  for (double& v : combined) v = rng.Uniform(-1, 3);
  const size_t window = 6;
  for (size_t shift : {size_t{1}, size_t{3}, size_t{7}}) {
    const size_t n = combined.size() - shift;
    std::vector<double> old_series(combined.begin(),
                                   combined.begin() + static_cast<ptrdiff_t>(n));
    std::vector<double> new_series(combined.begin() + static_cast<ptrdiff_t>(shift),
                                   combined.end());
    Matrix gram = *HankelGram(old_series, window);
    ASSERT_TRUE(SlideHankelGram(gram, combined, window, shift).ok());
    Matrix rebuilt = *HankelGram(new_series, window);
    for (size_t i = 0; i < window; ++i) {
      for (size_t j = 0; j < window; ++j) {
        EXPECT_NEAR(gram(i, j), rebuilt(i, j), 1e-9)
            << "shift " << shift << " @" << i << "," << j;
      }
    }
  }
}

TEST(HankelGramTest, SlideValidatesShapes) {
  Matrix gram(4, 4);
  EXPECT_FALSE(SlideHankelGram(gram, {1, 2, 3}, 6, 1).ok());
  Matrix wrong(3, 4);
  EXPECT_FALSE(
      SlideHankelGram(wrong, {1, 2, 3, 4, 5, 6, 7, 8}, 4, 1).ok());
}

TEST(SubspaceTest, MatchesJacobiOnRandomPsd) {
  Rng rng(7);
  const size_t n = 24;
  Matrix b(n, n);
  for (auto& v : b.data()) v = rng.Uniform(-1, 1);
  Matrix a = *MatMul(b, b.Transpose());  // symmetric PSD
  const size_t want = 5;
  auto sub = SubspaceTopEigen(a, want);
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(sub->converged);
  EXPECT_FALSE(sub->used_dense_fallback);
  auto jac = *SymmetricEigen(a);
  for (size_t i = 0; i < want; ++i) {
    EXPECT_NEAR(sub->values[i], jac.values[i],
                1e-7 * std::max(1.0, std::fabs(jac.values[i])))
        << "eigenvalue " << i;
    // Eigenvectors match up to sign.
    double dot = 0.0;
    for (size_t r = 0; r < n; ++r) dot += sub->vectors(r, i) * jac.vectors(r, i);
    EXPECT_NEAR(std::fabs(dot), 1.0, 1e-5) << "eigenvector " << i;
  }
}

TEST(SubspaceTest, RankDeficientMatrix) {
  // Rank-2 PSD matrix of size 16: the wanted block is wider than the rank.
  Rng rng(13);
  const size_t n = 16;
  Matrix b(n, 2);
  for (auto& v : b.data()) v = rng.Uniform(-1, 1);
  Matrix a = *MatMul(b, b.Transpose());
  auto sub = SubspaceTopEigen(a, 5);
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(sub->converged);
  auto jac = *SymmetricEigen(a);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(sub->values[i], jac.values[i], 1e-8 * std::max(1.0, jac.values[0]));
  }
  // Trailing eigenvalues are (numerically) zero.
  EXPECT_NEAR(sub->values[2], 0.0, 1e-8 * std::max(1.0, jac.values[0]));
}

TEST(SubspaceTest, NearDegenerateSpectrum) {
  // Two leading eigenvalues separated by 1e-9: the subspace they span is
  // well-conditioned even though the individual vectors are not.
  const size_t n = 12;
  Rng rng(29);
  // Random orthogonal basis via Gram matrix eigenvectors.
  Matrix b(n, n);
  for (auto& v : b.data()) v = rng.Uniform(-1, 1);
  auto basis = (*SymmetricEigen(*MatMul(b, b.Transpose()))).vectors;
  std::vector<double> spectrum = {2.0, 2.0 - 1e-9, 1.0, 0.5, 0.25,
                                  0.1, 0.05, 0.01, 0.005, 0.001, 0.0005, 0.0};
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < n; ++k) {
        acc += basis(i, k) * spectrum[k] * basis(j, k);
      }
      a(i, j) = acc;
    }
  }
  auto sub = SubspaceTopEigen(a, 4);
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(sub->converged);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(sub->values[i], spectrum[i], 1e-7);
  }
  // The degenerate pair's 2-D Ritz subspace matches the planted one: the
  // projection of each Ritz vector onto span{basis_0, basis_1} has unit
  // norm even if the individual vectors rotated within the plane.
  for (size_t i = 0; i < 2; ++i) {
    double p0 = 0.0;
    double p1 = 0.0;
    for (size_t r = 0; r < n; ++r) {
      p0 += sub->vectors(r, i) * basis(r, 0);
      p1 += sub->vectors(r, i) * basis(r, 1);
    }
    EXPECT_NEAR(p0 * p0 + p1 * p1, 1.0, 1e-5) << "Ritz vector " << i;
  }
}

TEST(SubspaceTest, DenseFallbackOnTinyMatrix) {
  auto a = *Matrix::FromRowMajor(2, 2, {2, 1, 1, 2});
  auto sub = SubspaceTopEigen(a, 2);
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(sub->used_dense_fallback);
  EXPECT_TRUE(sub->converged);
  EXPECT_NEAR(sub->values[0], 3.0, 1e-10);
  EXPECT_NEAR(sub->values[1], 1.0, 1e-10);
}

TEST(SubspaceTest, DeterministicGivenSeed) {
  Rng rng(55);
  const size_t n = 20;
  Matrix b(n, n);
  for (auto& v : b.data()) v = rng.Uniform(-1, 1);
  Matrix a = *MatMul(b, b.Transpose());
  auto first = SubspaceTopEigen(a, 4);
  auto second = SubspaceTopEigen(a, 4);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->iterations, second->iterations);
  ASSERT_EQ(first->values.size(), second->values.size());
  for (size_t i = 0; i < first->values.size(); ++i) {
    EXPECT_DOUBLE_EQ(first->values[i], second->values[i]);
  }
  for (size_t i = 0; i < first->vectors.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(first->vectors.data()[i], second->vectors.data()[i]);
  }
}

TEST(SubspaceTest, WarmStartConvergesFaster) {
  Rng rng(99);
  const size_t n = 32;
  Matrix b(n, n);
  for (auto& v : b.data()) v = rng.Uniform(-1, 1);
  Matrix a = *MatMul(b, b.Transpose());
  auto cold = SubspaceTopEigen(a, 4);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold->converged);
  // Perturb the matrix slightly (a control-loop tick) and restart from the
  // previous basis: convergence should take no more iterations than cold.
  Matrix perturbed = a;
  for (size_t i = 0; i < n; ++i) perturbed(i, i) += 1e-6;
  SubspaceOptions warm_options;
  warm_options.warm_start = &cold->vectors;
  auto warm = SubspaceTopEigen(perturbed, 4, warm_options);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->converged);
  EXPECT_LE(warm->iterations, cold->iterations);
  EXPECT_LE(warm->iterations, 3u);
}

TEST(SubspaceTest, RejectsBadInput) {
  EXPECT_FALSE(SubspaceTopEigen(Matrix(2, 3), 1).ok());
  EXPECT_FALSE(SubspaceTopEigen(Matrix(), 1).ok());
  EXPECT_FALSE(SubspaceTopEigen(Matrix::Identity(4), 0).ok());
}

TEST(EigenTest, DiagonalMatrix) {
  auto m = *Matrix::FromRowMajor(3, 3, {3, 0, 0, 0, 1, 0, 0, 0, 2});
  auto eig = SymmetricEigen(m);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 2.0, 1e-10);
  EXPECT_NEAR(eig->values[2], 1.0, 1e-10);
}

TEST(EigenTest, KnownSymmetric) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  auto m = *Matrix::FromRowMajor(2, 2, {2, 1, 1, 2});
  auto eig = SymmetricEigen(m);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  const double v0 = eig->vectors(0, 0);
  const double v1 = eig->vectors(1, 0);
  EXPECT_NEAR(std::fabs(v0), 1.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(v0, v1, 1e-8);
}

TEST(EigenTest, RejectsNonSquare) {
  EXPECT_FALSE(SymmetricEigen(Matrix(2, 3)).ok());
}

TEST(EigenTest, ReconstructsRandomSymmetric) {
  Rng rng(21);
  const size_t n = 12;
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = rng.Uniform(-2, 2);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  auto eig = SymmetricEigen(m);
  ASSERT_TRUE(eig.ok());
  // Check A v_i = lambda_i v_i for each pair.
  for (size_t i = 0; i < n; ++i) {
    auto vi = eig->vectors.Col(i);
    auto av = *MatVec(m, vi);
    for (size_t r = 0; r < n; ++r) {
      EXPECT_NEAR(av[r], eig->values[i] * vi[r], 1e-8);
    }
  }
}

TEST(SvdTest, RankOneMatrix) {
  // outer product u v^T with |u|=sqrt(14), |v|=sqrt(5).
  auto a = *Matrix::FromRowMajor(3, 2, {1 * 1., 1 * 2., 2 * 1., 2 * 2., 3 * 1., 3 * 2.});
  auto svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok());
  ASSERT_EQ(svd->singular_values.size(), 1u);
  EXPECT_NEAR(svd->singular_values[0], std::sqrt(14.0 * 5.0), 1e-8);
}

TEST(SvdTest, ReconstructsRandomMatrix) {
  Rng rng(33);
  for (auto [m, n] : {std::pair<size_t, size_t>{8, 5}, {5, 8}, {6, 6}}) {
    Matrix a(m, n);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) a(i, j) = rng.Uniform(-1, 1);
    }
    auto svd = ThinSvd(a);
    ASSERT_TRUE(svd.ok());
    // Reconstruct A = U diag(s) V^T and compare.
    const size_t r = svd->singular_values.size();
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (size_t k = 0; k < r; ++k) {
          acc += svd->u(i, k) * svd->singular_values[k] * svd->v(j, k);
        }
        EXPECT_NEAR(acc, a(i, j), 1e-7) << m << "x" << n << " @" << i << "," << j;
      }
    }
  }
}

TEST(SvdTest, SingularValuesDescending) {
  Rng rng(44);
  Matrix a(10, 7);
  for (auto& v : a.data()) v = rng.Uniform(-3, 3);
  auto svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok());
  for (size_t i = 1; i < svd->singular_values.size(); ++i) {
    EXPECT_GE(svd->singular_values[i - 1], svd->singular_values[i] - 1e-12);
  }
}

TEST(CholeskyTest, SolvesSpdSystem) {
  auto a = *Matrix::FromRowMajor(2, 2, {4, 1, 1, 3});
  auto x = CholeskySolve(a, {1, 2});
  ASSERT_TRUE(x.ok());
  // Verify A x = b.
  EXPECT_NEAR(4 * (*x)[0] + 1 * (*x)[1], 1.0, 1e-12);
  EXPECT_NEAR(1 * (*x)[0] + 3 * (*x)[1], 2.0, 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  auto a = *Matrix::FromRowMajor(2, 2, {1, 2, 2, 1});  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskySolve(a, {1, 1}).ok());
}

TEST(RidgeLeastSquaresTest, ExactOnFullRank) {
  // Overdetermined system with exact solution x = (1, 2).
  auto a = *Matrix::FromRowMajor(3, 2, {1, 0, 0, 1, 1, 1});
  std::vector<double> b = {1, 2, 3};
  auto x = RidgeLeastSquares(a, b, 1e-12);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-5);
  EXPECT_NEAR((*x)[1], 2.0, 1e-5);
}

TEST(RidgeLeastSquaresTest, HandlesRankDeficiency) {
  // Two identical columns: plain normal equations would be singular.
  auto a = *Matrix::FromRowMajor(3, 2, {1, 1, 2, 2, 3, 3});
  auto x = RidgeLeastSquares(a, {2, 4, 6}, 1e-6);
  ASSERT_TRUE(x.ok());
  // Fitted values should reproduce b.
  for (size_t i = 0; i < 3; ++i) {
    const double fit = a(i, 0) * (*x)[0] + a(i, 1) * (*x)[1];
    EXPECT_NEAR(fit, 2.0 * static_cast<double>(i + 1), 1e-4);
  }
}

// ---- SIMD microkernels: the dispatch contract of simd_kernels.h ----------
// Every kernel must produce BIT-IDENTICAL results on every IsaLevel, across
// odd lengths that exercise the 8-wide main loop, the 4-wide loop and the
// scalar tail in every combination. On hosts without AVX2+FMA forcing kAvx2
// degrades to scalar and the comparisons hold trivially.

std::vector<double> RandomKernelVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(-3.0, 3.0);
  return v;
}

// The odd sizes: empty, pure tail, one full vector, vector+tail, etc.
const size_t kKernelSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9,
                               12, 15, 16, 17, 31, 32, 33, 100};

TEST(SimdKernelTest, ScopedForceIsaPinsAndRestoresDispatch) {
  const simd::IsaLevel ambient = simd::ActiveIsa();
  if (!simd::Avx2Available()) {
    EXPECT_EQ(ambient, simd::IsaLevel::kScalar);
  }
  {
    simd::ScopedForceIsa force(simd::IsaLevel::kScalar);
    EXPECT_EQ(simd::ActiveIsa(), simd::IsaLevel::kScalar);
    {
      // Nested force restores the outer pin, not the ambient default.
      simd::ScopedForceIsa inner(simd::IsaLevel::kAvx2);
      EXPECT_EQ(simd::ActiveIsa(), simd::Avx2Available()
                                       ? simd::IsaLevel::kAvx2
                                       : simd::IsaLevel::kScalar);
    }
    EXPECT_EQ(simd::ActiveIsa(), simd::IsaLevel::kScalar);
  }
  EXPECT_EQ(simd::ActiveIsa(), ambient);
  EXPECT_STREQ(simd::IsaName(simd::IsaLevel::kScalar), "scalar");
  EXPECT_STREQ(simd::IsaName(simd::IsaLevel::kAvx2), "avx2");
}

TEST(SimdKernelTest, DotBitIdenticalAcrossIsaLevels) {
  for (size_t n : kKernelSizes) {
    const auto a = RandomKernelVec(n, 900 + n);
    const auto b = RandomKernelVec(n, 1900 + n);
    double scalar = 0.0;
    double dispatched = 0.0;
    {
      simd::ScopedForceIsa force(simd::IsaLevel::kScalar);
      scalar = simd::Dot(a.data(), b.data(), n);
    }
    {
      simd::ScopedForceIsa force(simd::IsaLevel::kAvx2);
      dispatched = simd::Dot(a.data(), b.data(), n);
    }
    EXPECT_EQ(scalar, dispatched) << "n=" << n;
    // And against the definition itself: eight strided fma lanes, the fixed
    // pairwise reduction, then a sequential fused tail.
    double lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    size_t k = 0;
    for (; k + 8 <= n; k += 8) {
      for (size_t l = 0; l < 8; ++l) {
        lane[l] = std::fma(a[k + l], b[k + l], lane[l]);
      }
    }
    double want = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
                  ((lane[4] + lane[5]) + (lane[6] + lane[7]));
    for (; k < n; ++k) want = std::fma(a[k], b[k], want);
    EXPECT_EQ(scalar, want) << "n=" << n;
  }
}

TEST(SimdKernelTest, MulAddBitIdenticalToPlainLoopOnEveryIsa) {
  for (size_t n : kKernelSizes) {
    const auto src = RandomKernelVec(n, 300 + n);
    const auto init = RandomKernelVec(n, 1300 + n);
    const double scale = 1.0 / 3.0;  // not exactly representable: real
                                     // rounding on every element
    std::vector<double> want = init;
    for (size_t j = 0; j < n; ++j) want[j] += scale * src[j];
    for (simd::IsaLevel level :
         {simd::IsaLevel::kScalar, simd::IsaLevel::kAvx2}) {
      simd::ScopedForceIsa force(level);
      std::vector<double> dst = init;
      simd::MulAdd(dst.data(), src.data(), scale, n);
      EXPECT_EQ(dst, want) << "n=" << n << " isa "
                           << simd::IsaName(simd::ActiveIsa());
    }
  }
}

TEST(SimdKernelTest, StridedRevDotBitIdenticalAcrossIsaLevels) {
  // a is a strided column of a row-major matrix; b is walked backwards from
  // its anchor. Odd strides and the kKernelSizes lengths hit the gather
  // main loop and every tail shape.
  for (const size_t stride : {1u, 3u, 8u}) {
    for (size_t n : kKernelSizes) {
      const auto a = RandomKernelVec(n * stride + 1, 700 + n * stride);
      const auto rev = RandomKernelVec(n + 1, 1700 + n);
      // Anchor b at its last element so b[-t] stays in bounds for t < n.
      const double* b = rev.data() + (n == 0 ? 0 : n - 1);
      double scalar = 0.0;
      double dispatched = 0.0;
      {
        simd::ScopedForceIsa force(simd::IsaLevel::kScalar);
        scalar = simd::StridedRevDot(a.data(), stride, b, n);
      }
      {
        simd::ScopedForceIsa force(simd::IsaLevel::kAvx2);
        dispatched = simd::StridedRevDot(a.data(), stride, b, n);
      }
      EXPECT_EQ(scalar, dispatched) << "n=" << n << " stride=" << stride;
      // And against the definition itself: four strided fma lanes, the
      // fixed (l0+l1)+(l2+l3) reduction, then a sequential fused tail.
      double lane[4] = {0, 0, 0, 0};
      size_t t = 0;
      for (; t + 4 <= n; t += 4) {
        for (size_t l = 0; l < 4; ++l) {
          lane[l] = std::fma(a[(t + l) * stride],
                             b[-static_cast<ptrdiff_t>(t + l)], lane[l]);
        }
      }
      double want = (lane[0] + lane[1]) + (lane[2] + lane[3]);
      for (; t < n; ++t) {
        want = std::fma(a[t * stride], b[-static_cast<ptrdiff_t>(t)], want);
      }
      EXPECT_EQ(scalar, want) << "n=" << n << " stride=" << stride;
    }
  }
}

TEST(SimdKernelTest, MatMulMatVecDotBitIdenticalAcrossIsa) {
  // Odd shapes so row lengths hit main loop + tail; compare the full
  // public entry points under forced scalar vs dispatched.
  const std::vector<std::array<size_t, 3>> shapes = {
      {1, 1, 1}, {3, 7, 5}, {17, 9, 11}, {5, 33, 2}, {23, 16, 8}};
  for (const auto& [m, k, n] : shapes) {
    const Matrix a = *Matrix::FromRowMajor(m, k, RandomKernelVec(m * k, m + k));
    const Matrix b = *Matrix::FromRowMajor(k, n, RandomKernelVec(k * n, k + n));
    const auto x = RandomKernelVec(k, 7 * k + 1);
    auto run = [&] {
      auto c = *MatMul(a, b);
      auto y = *MatVec(a, x);
      auto d = Dot(x, x);
      return std::tuple<std::vector<double>, std::vector<double>, double>(
          c.data(), std::move(y), d);
    };
    simd::ScopedForceIsa scalar(simd::IsaLevel::kScalar);
    const auto want = run();
    {
      simd::ScopedForceIsa dispatched(simd::IsaLevel::kAvx2);
      EXPECT_EQ(run(), want) << m << "x" << k << "x" << n;
    }
  }
}

TEST(SimdKernelTest, HankelGramBitIdenticalAcrossIsaAndSlideConsistent) {
  const auto series = RandomKernelVec(97, 4242);
  const size_t window = 31;
  auto run = [&] { return (*HankelGram(series, window)).data(); };
  simd::ScopedForceIsa scalar(simd::IsaLevel::kScalar);
  const auto want = run();
  {
    simd::ScopedForceIsa dispatched(simd::IsaLevel::kAvx2);
    EXPECT_EQ(run(), want);
    // The incremental slide must land on the same Gram the kernelized
    // from-scratch build produces for the shifted series.
    const size_t shift = 8;
    auto gram = *HankelGram(
        std::vector<double>(series.begin(), series.end() - shift), window);
    ASSERT_TRUE(SlideHankelGram(gram, series, window, shift).ok());
    const auto shifted = *HankelGram(
        std::vector<double>(series.begin() + shift, series.end()), window);
    for (size_t i = 0; i < window; ++i) {
      for (size_t j = 0; j < window; ++j) {
        EXPECT_NEAR(gram(i, j), shifted(i, j), 1e-9 * (1.0 + std::fabs(gram(i, j))));
      }
    }
  }
}

}  // namespace
}  // namespace ipool
